/**
 * @file
 * FFT offload scenario: the SDK-style batched FFT under PDT, with the
 * DMA latency histogram and the self-contained HTML report.
 *
 * Demonstrates the remaining analyzer surfaces the other examples
 * don't: the latency histogram (how the EIB treats the FFT's large
 * streaming transfers) and `ta::writeHtmlReport`, the one-file
 * replacement for the original tool's interactive window.
 */

#include <iostream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/report.h"
#include "wl/fft.h"

int
main()
{
    using namespace cell;

    rt::CellSystem sys;
    pdt::Pdt tracer(sys);

    wl::FftParams p;
    p.fft_size = 1024;
    p.n_ffts = 64;
    p.batch = 4;
    p.n_spes = 8;
    wl::Fft fft(sys, p);
    fft.start();
    sys.run();
    if (!fft.verify()) {
        std::cerr << "FFT verification failed!\n";
        return 1;
    }

    const double mflop =
        5.0 * p.fft_size * std::log2(p.fft_size) * p.n_ffts / 1e6;
    std::cout << "batched FFT verified: " << p.n_ffts << " x "
              << p.fft_size << "-point (" << mflop << " Mflop) in "
              << fft.elapsed() << " cycles\n\n";

    const ta::Analysis a = ta::analyze(tracer.finalize());
    ta::printSummary(std::cout, a);
    std::cout << "\n";
    ta::printStallBreakdown(std::cout, a);
    std::cout << "\n";
    ta::printDmaHistogram(std::cout, a);

    ta::writeHtmlReport("fft_report.html", a, "Batched FFT, 8 SPEs");
    std::cout << "\nwrote fft_report.html (open in any browser)\n";
    return 0;
}
