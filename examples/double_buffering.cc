/**
 * @file
 * The paper's flagship use case: diagnosing buffering depth.
 *
 * Runs the same streaming kernel single-, double-, and triple-
 * buffered under PDT and lets TA explain the difference: with one
 * buffer the timeline is dominated by DMA-wait; with two the
 * transfers hide behind compute (high overlap score); a third buffer
 * adds little once the memory pipeline is full. Emits an SVG timeline
 * per configuration so the pictures can be compared side by side.
 */

#include <iomanip>
#include <iostream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/timeline.h"
#include "wl/triad.h"

int
main()
{
    using namespace cell;

    std::cout << "Buffering-depth use case: triad, 2 SPEs, 64K elements\n"
              << "(compute per tile ~= DMA per tile: the regime where\n"
              << " buffering depth decides who waits)\n\n"
              << "buffers  elapsed(cycles)  speedup  dma_wait%  overlap\n";

    sim::Tick base = 0;
    for (std::uint32_t buffering = 1; buffering <= 3; ++buffering) {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);

        wl::TriadParams p;
        p.n_elements = 65536;
        p.n_spes = 2;
        p.tile_elems = 1024;
        p.buffering = buffering;
        p.compute_per_elem = 2;
        wl::Triad triad(sys, p);
        triad.start();
        sys.run();
        if (!triad.verify()) {
            std::cerr << "verification failed!\n";
            return 1;
        }

        const ta::Analysis a = ta::analyze(tracer.finalize());
        // Average DMA-wait share and overlap over the SPEs.
        double wait = 0;
        double overlap = 0;
        for (std::uint32_t s = 0; s < p.n_spes; ++s) {
            const auto& b = a.stats.spu[s];
            wait += 100.0 * static_cast<double>(b.dma_wait_tb) /
                    static_cast<double>(b.run_tb);
            overlap += a.stats.overlapScore(s);
        }
        wait /= p.n_spes;
        overlap /= p.n_spes;

        if (buffering == 1)
            base = triad.elapsed();
        std::cout << std::setw(7) << buffering << std::setw(17)
                  << triad.elapsed() << std::fixed << std::setprecision(2)
                  << std::setw(9)
                  << static_cast<double>(base) /
                         static_cast<double>(triad.elapsed())
                  << std::setw(11) << std::setprecision(1) << wait
                  << std::setw(9) << std::setprecision(2) << overlap << "\n";

        const std::string svg =
            "double_buffering_b" + std::to_string(buffering) + ".svg";
        ta::writeSvg(svg, a.model, a.intervals,
                     ta::TimelineOptions{.width = 900, .show_ppe = false});
    }

    std::cout << "\nwrote double_buffering_b{1,2,3}.svg — compare the red\n"
                 "(DMA-wait) share of each SPE row across the three files.\n";
    return 0;
}
