/**
 * @file
 * Quickstart: trace a small DMA workload with PDT and inspect it with
 * TA — the 60-second tour of the whole toolchain.
 *
 *   1. Build a simulated Cell system (PPE + 8 SPEs).
 *   2. Attach the PDT tracer.
 *   3. Run a 2-SPE streaming triad.
 *   4. Finalize the trace, write it to disk, and re-read it.
 *   5. Print TA's summary, stall breakdown, and ASCII timeline.
 */

#include <iostream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/timeline.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/triad.h"

int
main()
{
    using namespace cell;

    // 1. The machine: defaults model a 3.2 GHz Cell BE with 8 SPEs.
    rt::CellSystem sys;

    // 2. The tracer instruments every runtime call from here on.
    pdt::Pdt tracer(sys);

    // 3. A small streaming triad on 2 SPEs, double buffered.
    wl::TriadParams params;
    params.n_elements = 32768;
    params.n_spes = 2;
    params.tile_elems = 1024;
    params.buffering = 2;
    wl::Triad triad(sys, params);
    triad.start();
    sys.run();

    std::cout << "triad verified: " << (triad.verify() ? "yes" : "NO")
              << ", elapsed " << triad.elapsed() << " cycles\n\n";

    // 4. Assemble the trace, round-trip it through the file format.
    trace::writeFile("quickstart.pdt", tracer.finalize());
    const ta::Analysis a = ta::analyzeFile("quickstart.pdt");

    // 5. The analyzer's views.
    ta::printSummary(std::cout, a);
    std::cout << "\n";
    ta::printStallBreakdown(std::cout, a);
    std::cout << "\n";
    ta::printDmaReport(std::cout, a);
    std::cout << "\n"
              << ta::renderAscii(a.model, a.intervals,
                                 ta::TimelineOptions{.width = 96})
              << "\n";
    ta::writeSvg("quickstart.svg", a.model, a.intervals,
                 ta::TimelineOptions{.width = 900});
    std::cout << "wrote quickstart.pdt and quickstart.svg\n";
    return triad.verify() ? 0 : 1;
}
