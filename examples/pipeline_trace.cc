/**
 * @file
 * Use case: custom (user) trace events and CSV export.
 *
 * Runs the SPE-to-SPE pipeline with per-tile user events enabled.
 * PDT records them like any runtime event; TA surfaces them in the
 * event counts and the interval CSV, from which the per-stage tile
 * cadence can be read. Also demonstrates signal-notification traffic
 * (the pipeline's flow control) in the breakdown, and dumps both CSV
 * exports for spreadsheet-side analysis.
 */

#include <fstream>
#include <iostream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/timeline.h"
#include "wl/pipeline.h"

int
main()
{
    using namespace cell;

    rt::CellSystem sys;
    pdt::Pdt tracer(sys);

    wl::PipelineParams p;
    p.n_elements = 16384;
    p.tile_elems = 512;
    p.n_stages = 4;
    p.user_events = true;
    wl::Pipeline pipe(sys, p);
    pipe.start();
    sys.run();
    if (!pipe.verify()) {
        std::cerr << "verification failed!\n";
        return 1;
    }
    std::cout << "pipeline of " << p.n_stages << " stages verified, "
              << pipe.elapsed() << " cycles\n\n";

    const ta::Analysis a = ta::analyze(tracer.finalize());
    ta::printSummary(std::cout, a);
    std::cout << "\n";
    ta::printStallBreakdown(std::cout, a);
    std::cout << "\n";
    ta::printEventCounts(std::cout, a);

    // Count the user events per stage (a = stage id).
    const std::uint32_t n_tiles = p.n_elements / p.tile_elems;
    std::cout << "\nuser events per stage (expected " << n_tiles << "):\n";
    for (std::uint32_t s = 0; s < p.n_stages; ++s) {
        std::uint64_t n = 0;
        for (const ta::Event& ev : a.model.spe(s).events) {
            if (!ev.isToolRecord() &&
                ev.op() == rt::ApiOp::SpuUserEvent && ev.a == s)
                ++n;
        }
        std::cout << "  stage " << s << ": " << n << "\n";
    }

    std::ofstream csv1("pipeline_breakdown.csv");
    ta::exportBreakdownCsv(csv1, a);
    std::ofstream csv2("pipeline_intervals.csv");
    ta::exportIntervalsCsv(csv2, a);
    ta::writeSvg("pipeline_trace.svg", a.model, a.intervals,
                 ta::TimelineOptions{.width = 900});
    std::cout << "\nwrote pipeline_breakdown.csv, pipeline_intervals.csv, "
                 "pipeline_trace.svg\n";
    return 0;
}
