/**
 * @file
 * Use case: diagnosing load imbalance with TA's per-SPE view.
 *
 * A blocked matmul is first launched with a skewed tile distribution
 * (SPE 7 gets many times SPE 0's share). TA's per-SPE busy times and
 * the load-imbalance metric expose the skew; redistributing evenly
 * recovers the lost time. This mirrors the paper's "understand the
 * performance of several workloads" use cases: the trace, not the
 * source, points at the problem.
 */

#include <iomanip>
#include <iostream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/timeline.h"
#include "wl/matmul.h"

namespace {

struct RunResult
{
    cell::sim::Tick elapsed;
    double imbalance;
};

RunResult
runOnce(std::uint32_t skew, const char* svg_name)
{
    using namespace cell;
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);

    wl::MatmulParams p;
    p.n = 256;
    p.n_spes = 8;
    p.skew = skew;
    wl::Matmul mm(sys, p);

    std::cout << "skew=" << skew << ": tile shares =";
    for (std::uint32_t s = 0; s < p.n_spes; ++s)
        std::cout << " " << mm.tilesForSpe(s);
    std::cout << "\n";

    mm.start();
    sys.run();
    if (!mm.verify()) {
        std::cerr << "verification failed!\n";
        std::exit(1);
    }

    const ta::Analysis a = ta::analyze(tracer.finalize());
    std::cout << "  per-SPE busy (us):";
    for (const auto& b : a.stats.spu) {
        if (b.ran)
            std::cout << " " << std::fixed << std::setprecision(0)
                      << a.model.tbToUs(b.busy_tb());
    }
    std::cout << "\n  elapsed " << mm.elapsed()
              << " cycles, imbalance (max/mean busy) " << std::setprecision(2)
              << a.stats.loadImbalance() << "\n\n";

    ta::writeSvg(svg_name, a.model, a.intervals,
                 ta::TimelineOptions{.width = 900, .show_ppe = false});
    return RunResult{mm.elapsed(), a.stats.loadImbalance()};
}

} // namespace

int
main()
{
    std::cout << "Load-balance use case: 256x256 matmul on 8 SPEs\n\n";
    const RunResult skewed = runOnce(4, "load_balance_skewed.svg");
    const RunResult fixed = runOnce(0, "load_balance_even.svg");

    std::cout << "rebalancing recovered "
              << std::fixed << std::setprecision(1)
              << 100.0 *
                     (1.0 - static_cast<double>(fixed.elapsed) /
                                static_cast<double>(skewed.elapsed))
              << "% of the skewed run time (imbalance " << std::setprecision(2)
              << skewed.imbalance << " -> " << fixed.imbalance << ")\n"
              << "wrote load_balance_{skewed,even}.svg\n";
    return 0;
}
