/**
 * @file
 * `pdt_dump` — raw trace record dump.
 *
 * Prints every record of a PDT trace file in stream order with raw
 * timestamps and decoded op names; `--resolved` additionally shows the
 * reconstructed global time in microseconds. The debugging companion
 * to the analyzer: when TA's view looks wrong, this shows what PDT
 * actually wrote.
 *
 * `--from T` / `--to T` (absolute timebase ticks, same convention as
 * `ta window`) restrict the dump to records whose reconstructed time
 * lies in [from, to). Filtering needs every record placed on the
 * global clock; if some records are unplaceable (salvage lost their
 * sync), the tool refuses with a diagnostic rather than misalign.
 *
 * A damaged file fails with a diagnostic naming the byte offset and
 * record index where parsing stopped (exit 1). `--salvage` instead
 * prints everything recoverable — the parsable prefix plus whatever
 * resynchronizes after the damage — and lists what was skipped.
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "ta/model.h"
#include "ta/parallel.h"
#include "trace/block.h"
#include "trace/reader.h"

#include "cli_flags.h"

namespace {

int
usage()
{
    std::cerr << "usage: pdt_dump [--resolved] [--salvage] [--threads N] "
                 "[--from T] [--to T] <trace.pdt> [max]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cell;
    if (argc < 2)
        return usage();
    cli::FlagSpec spec;
    spec.salvage = true;
    spec.threads = true;
    spec.resolved = true;
    spec.window = true;
    cli::Flags f;
    f.threads = 1; // model build threads; 1 = serial builder
    if (!cli::parseFlags(argc, argv, spec, f)) {
        std::cerr << "pdt_dump: " << f.error << "\n";
        return usage();
    }
    const bool salvage = f.salvage;
    const bool windowed = f.have_from || f.have_to;
    bool resolved = f.resolved || windowed;
    std::string path;
    std::size_t max = ~std::size_t{0};
    if (f.positionals.empty()) {
        std::cerr << "pdt_dump: missing trace file\n";
        return 2;
    }
    path = f.positionals[0];
    if (f.positionals.size() >= 2) {
        std::uint64_t v = 0;
        if (!cli::parseU64(f.positionals[1], v)) {
            std::cerr << "pdt_dump: max must be a record count\n";
            return usage();
        }
        max = static_cast<std::size_t>(v);
    }
    if (f.positionals.size() > 2)
        return usage();
    if (f.have_from && f.have_to && f.from > f.to) {
        std::cerr << "pdt_dump: --from exceeds --to\n";
        return usage();
    }

    try {
        trace::ReadReport report;
        const trace::TraceData data =
            salvage ? trace::readFileSalvage(path, report)
                    : trace::readFile(path);
        if (salvage && report.salvaged) {
            std::cerr << "pdt_dump: " << report.summary() << "\n";
            for (const std::string& note : report.notes)
                std::cerr << "pdt_dump:   " << note << "\n";
        }
        std::cout << "# " << path << ": " << data.records.size()
                  << " records, " << data.header.num_spes << " SPEs, core "
                  << data.header.core_hz / 1'000'000 << " MHz, timebase /"
                  << data.header.timebase_divider << "\n";
        const trace::BlockRegionProbe probe =
            trace::probeBlockRegionFile(path);
        if (probe.present && probe.region.record_count > 0) {
            const double raw_bytes = static_cast<double>(
                probe.region.record_count * sizeof(trace::Record));
            std::cout << "# v3 compressed: " << probe.region.block_count
                      << " blocks x " << probe.region.block_capacity
                      << " records, region " << probe.region_bytes
                      << " bytes (" << std::fixed << std::setprecision(2)
                      << raw_bytes / static_cast<double>(probe.region_bytes)
                      << "x vs 32 B/record)"
                      << std::defaultfloat << "\n";
        }
        for (std::uint32_t i = 0; i < data.header.num_spes; ++i) {
            if (!data.spe_programs[i].empty())
                std::cout << "# SPE" << i << ": " << data.spe_programs[i]
                          << "\n";
        }

        // Resolved-time column / window filter: per-record global
        // times, aligned 1:1 with the record stream.
        std::vector<double> times_us;
        std::vector<std::uint64_t> times_tb;
        if (resolved) {
            ta::WorkerPool pool(f.threads);
            const ta::TraceModel model =
                pool.threads() > 1
                    ? ta::buildModelParallel(data, pool, salvage)
                    : ta::TraceModel::build(data, salvage);
            if (model.leniencySkipped() > 0) {
                // Some records could not be placed on the clock, so
                // the 1:1 stream-order alignment below would mispair.
                if (windowed) {
                    std::cerr << "pdt_dump: " << model.leniencySkipped()
                              << " records unplaceable (sync lost); "
                                 "--from/--to cannot align times\n";
                    return 1;
                }
                std::cerr << "pdt_dump: " << model.leniencySkipped()
                          << " records unplaceable (sync lost); raw "
                             "timestamps only\n";
                resolved = false;
            } else {
                // Walk per-core cursors in stream order to align 1:1.
                std::vector<std::size_t> cursor(model.cores().size(), 0);
                times_us.reserve(data.records.size());
                times_tb.reserve(data.records.size());
                for (const trace::Record& rec : data.records) {
                    const auto& tl = model.cores()[rec.core];
                    const std::uint64_t tb =
                        tl.events[cursor[rec.core]++].time_tb;
                    times_tb.push_back(tb);
                    times_us.push_back(model.tbToUs(tb - model.startTb()));
                }
            }
        }
        const bool show_resolved = resolved && f.resolved;

        std::size_t printed = 0;
        for (std::size_t i = 0; i < data.records.size(); ++i) {
            const trace::Record& rec = data.records[i];
            if (printed >= max)
                break;
            if (windowed &&
                (times_tb[i] < f.from || times_tb[i] >= f.to))
                continue;
            std::cout << std::setw(7) << i << "  core=" << std::setw(2)
                      << rec.core << "  raw=" << std::setw(10)
                      << rec.timestamp << "  ";
            if (show_resolved)
                std::cout << std::fixed << std::setprecision(3)
                          << std::setw(12) << times_us[i] << "us  ";
            if (rec.kind == trace::kSyncRecord) {
                std::cout << "SYNC raw=" << rec.a << " tb=" << rec.b;
            } else if (rec.kind == trace::kFlushRecord) {
                std::cout << "FLUSH records=" << rec.a << " wait=" << rec.b;
            } else if (rec.kind == trace::kDropRecord) {
                std::cout << "DROP gap=" << rec.a << " total=" << rec.b;
            } else {
                std::cout << rt::apiOpName(static_cast<rt::ApiOp>(rec.kind))
                          << (rec.phase == trace::kPhaseBegin ? " BEGIN"
                                                              : " END")
                          << "  a=0x" << std::hex << rec.a << " b=0x"
                          << rec.b << std::dec << " c=" << rec.c
                          << " d=" << rec.d;
            }
            std::cout << "\n";
            ++printed;
        }
    } catch (const std::exception& e) {
        std::cerr << "pdt_dump: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
