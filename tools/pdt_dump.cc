/**
 * @file
 * `pdt_dump` — raw trace record dump.
 *
 * Prints every record of a PDT trace file in stream order with raw
 * timestamps and decoded op names; `--resolved` additionally shows the
 * reconstructed global time in microseconds. The debugging companion
 * to the analyzer: when TA's view looks wrong, this shows what PDT
 * actually wrote.
 *
 * A damaged file fails with a diagnostic naming the byte offset and
 * record index where parsing stopped (exit 1). `--salvage` instead
 * prints everything recoverable — the parsable prefix plus whatever
 * resynchronizes after the damage — and lists what was skipped.
 */

#include <iomanip>
#include <iostream>
#include <string>

#include "ta/model.h"
#include "ta/parallel.h"
#include "trace/reader.h"

namespace {

int
usage()
{
    std::cerr << "usage: pdt_dump [--resolved] [--salvage] [--threads N] "
                 "<trace.pdt> [max]\n";
    return 2;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cell;
    if (argc < 2)
        return usage();
    bool resolved = false;
    bool salvage = false;
    unsigned threads = 1; // model build threads; 1 = serial builder
    std::string path;
    std::size_t max = ~std::size_t{0};
    int positionals = 0;
    for (int argi = 1; argi < argc; ++argi) {
        const std::string arg = argv[argi];
        if (arg == "--resolved") {
            resolved = true;
        } else if (arg == "--salvage") {
            salvage = true;
        } else if (arg == "--threads" && argi + 1 < argc) {
            try {
                threads = static_cast<unsigned>(std::stoul(argv[++argi]));
            } catch (const std::exception&) {
                return usage();
            }
        } else if (arg.rfind("-", 0) == 0 && arg.size() > 1) {
            return usage();
        } else if (positionals == 0) {
            path = arg;
            ++positionals;
        } else if (positionals == 1) {
            try {
                max = std::stoull(arg);
            } catch (const std::exception&) {
                return usage();
            }
            ++positionals;
        } else {
            return usage();
        }
    }
    if (positionals == 0) {
        std::cerr << "pdt_dump: missing trace file\n";
        return 2;
    }

    try {
        trace::ReadReport report;
        const trace::TraceData data =
            salvage ? trace::readFileSalvage(path, report)
                    : trace::readFile(path);
        if (salvage && report.salvaged) {
            std::cerr << "pdt_dump: " << report.summary() << "\n";
            for (const std::string& note : report.notes)
                std::cerr << "pdt_dump:   " << note << "\n";
        }
        std::cout << "# " << path << ": " << data.records.size()
                  << " records, " << data.header.num_spes << " SPEs, core "
                  << data.header.core_hz / 1'000'000 << " MHz, timebase /"
                  << data.header.timebase_divider << "\n";
        for (std::uint32_t i = 0; i < data.header.num_spes; ++i) {
            if (!data.spe_programs[i].empty())
                std::cout << "# SPE" << i << ": " << data.spe_programs[i]
                          << "\n";
        }

        // Optional resolved-time column.
        std::vector<double> times_us;
        if (resolved) {
            ta::WorkerPool pool(threads);
            const ta::TraceModel model =
                pool.threads() > 1
                    ? ta::buildModelParallel(data, pool, salvage)
                    : ta::TraceModel::build(data, salvage);
            if (model.leniencySkipped() > 0) {
                // Some records could not be placed on the clock, so
                // the 1:1 stream-order alignment below would mispair.
                std::cerr << "pdt_dump: " << model.leniencySkipped()
                          << " records unplaceable (sync lost); raw "
                             "timestamps only\n";
                resolved = false;
            } else {
                // Walk per-core cursors in stream order to align 1:1.
                std::vector<std::size_t> cursor(model.cores().size(), 0);
                times_us.reserve(data.records.size());
                for (const trace::Record& rec : data.records) {
                    const auto& tl = model.cores()[rec.core];
                    times_us.push_back(
                        model.tbToUs(tl.events[cursor[rec.core]++].time_tb -
                                     model.startTb()));
                }
            }
        }

        std::size_t n = 0;
        for (const trace::Record& rec : data.records) {
            if (n >= max)
                break;
            std::cout << std::setw(7) << n << "  core=" << std::setw(2)
                      << rec.core << "  raw=" << std::setw(10)
                      << rec.timestamp << "  ";
            if (resolved)
                std::cout << std::fixed << std::setprecision(3)
                          << std::setw(12) << times_us[n] << "us  ";
            if (rec.kind == trace::kSyncRecord) {
                std::cout << "SYNC raw=" << rec.a << " tb=" << rec.b;
            } else if (rec.kind == trace::kFlushRecord) {
                std::cout << "FLUSH records=" << rec.a << " wait=" << rec.b;
            } else if (rec.kind == trace::kDropRecord) {
                std::cout << "DROP gap=" << rec.a << " total=" << rec.b;
            } else {
                std::cout << rt::apiOpName(static_cast<rt::ApiOp>(rec.kind))
                          << (rec.phase == trace::kPhaseBegin ? " BEGIN"
                                                              : " END")
                          << "  a=0x" << std::hex << rec.a << " b=0x"
                          << rec.b << std::dec << " c=" << rec.c
                          << " d=" << rec.d;
            }
            std::cout << "\n";
            ++n;
        }
    } catch (const std::exception& e) {
        std::cerr << "pdt_dump: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
