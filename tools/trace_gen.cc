/**
 * @file
 * `trace_gen` — seeded scenario trace generator.
 *
 *   trace_gen --list-scenarios
 *   trace_gen [--seed N] [--scenario NAME] [--spes N] [--records N]
 *             [--index N] [--compress] [--adversarial] <out.pdt>
 *   trace_gen --sweep N --out-dir DIR [--seed N] [--scenario NAME]
 *             [--adversarial | --perturb]
 *
 * With --perturb, sweep mode emits A/B trace *pairs* plus a pairs.txt
 * manifest for `ta diff-corpus`: A is the strict-valid scenario trace,
 * B is A surgically delayed (trace::delay) at a deterministic
 * mid-stream tick — so the diff engine must localize the divergence to
 * the window containing that tick. The chosen tick and delta are
 * printed per pair and recorded as pairs.txt comments.
 *
 * Single-file mode writes one strict-valid trace shaped by the
 * scenario (container picked by --index/--compress), or — with
 * --adversarial — a deterministically mauled byte stream for the
 * fuzz corpus and salvage paths (container derived from the seed).
 *
 * Sweep mode writes N specimens (seeds base..base+N-1) into DIR,
 * named after their seed and scenario tag, and prints corpus stats
 * plus generator throughput. Identical options always reproduce
 * identical bytes, so a failing seed is a complete bug report.
 */

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/gen.h"
#include "trace/replay.h"
#include "trace/surgery.h"
#include "trace/writer.h"

#include "cli_flags.h"

namespace {

int
usage()
{
    std::cerr
        << "usage: trace_gen [flags] <out.pdt>\n"
           "       trace_gen --sweep N --out-dir DIR [flags]\n"
           "       trace_gen --list-scenarios\n"
           "  --seed N        generator seed (default 1; sweep mode uses\n"
           "                  seeds N..N+count-1)\n"
           "  --scenario S    fix the scenario (default: derived from the\n"
           "                  seed; see --list-scenarios)\n"
           "  --spes N        SPE count override (<= 255)\n"
           "  --records N     record count override\n"
           "  --index N       write a v2 footer index at stride N\n"
           "  --compress      write the v3 block container\n"
           "  --adversarial   apply deterministic structural mutations\n"
           "                  (corpus specimens; container derived from\n"
           "                  the seed)\n"
           "  --perturb       sweep mode: emit A/B pairs (B = A delayed\n"
           "                  at a deterministic tick) plus pairs.txt\n"
           "                  for `ta diff-corpus`\n";
    return 2;
}

/** "drop_storm v3 adv[truncate]" -> "drop_storm_v3_adv_truncate". */
std::string
sanitizeTag(const std::string& desc)
{
    std::string out;
    for (const char c : desc) {
        if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9'))
            out += c;
        else if (!out.empty() && out.back() != '_')
            out += '_';
    }
    while (!out.empty() && out.back() == '_')
        out.pop_back();
    return out;
}

bool
writeBytes(const std::string& path, const std::vector<std::uint8_t>& bytes)
{
    std::ofstream os(path, std::ios::binary);
    if (!os)
        return false;
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    return static_cast<bool>(os);
}

/**
 * --perturb sweep: for each seed, write the strict-valid scenario
 * trace A, a delayed variant B, and a pairs.txt manifest consumable by
 * `ta diff-corpus`. The perturbation tick is the median placed event
 * time (deterministic per seed), the delta a quarter of the span — big
 * enough that the rolling-window scan cannot miss it, small enough to
 * stay within the 32-bit re-encode range.
 */
int
perturbSweep(const cell::cli::Flags& f, cell::trace::gen::GenOptions gopt)
{
    using namespace cell;
    namespace gen = trace::gen;

    const std::string manifest =
        (std::filesystem::path(f.out_dir) / "pairs.txt").string();
    std::ofstream pf(manifest);
    if (!pf) {
        std::cerr << "trace_gen: cannot write " << manifest << "\n";
        return 1;
    }
    pf << "# A/B perturbation pairs for `ta diff-corpus` (seed base "
       << f.seed << ")\n";

    std::uint64_t written = 0;
    for (std::uint64_t i = 0; i < f.sweep; ++i) {
        gopt.seed = f.seed + i;
        const trace::TraceData a = gen::generate(gopt);

        // Placed clamped event times, in stream order — the same
        // placements the analyzer derives.
        std::vector<trace::ClockReplay> clk(a.header.num_spes + 1);
        std::vector<std::uint64_t> prev(a.header.num_spes + 1, 0);
        std::vector<std::uint64_t> times;
        times.reserve(a.records.size());
        for (const trace::Record& rec : a.records) {
            if (rec.core >= clk.size())
                continue;
            std::uint64_t t = 0;
            if (!clk[rec.core].feed(rec, t))
                continue;
            t = std::max(t, prev[rec.core]);
            prev[rec.core] = t;
            times.push_back(t);
        }
        if (times.size() < 2) {
            std::cerr << "trace_gen: seed " << gopt.seed
                      << " produced too few events to perturb; skipped\n";
            continue;
        }
        const std::uint64_t lo = *std::min_element(times.begin(),
                                                   times.end());
        const std::uint64_t hi = *std::max_element(times.begin(),
                                                   times.end());
        trace::DelayOptions dopt;
        dopt.at = times[times.size() / 2];
        dopt.delta = (hi - lo) / 4 + 64;
        const trace::TraceData b = trace::delay(a, dopt);

        // Rotate the pair through the three containers by seed.
        trace::WriteOptions wopt;
        const char* tag = "v1";
        switch (gopt.seed % 3) {
        case 1:
            wopt.index_stride = 64;
            tag = "v2";
            break;
        case 2:
            wopt.compress = true;
            tag = "v3";
            break;
        default:
            break;
        }
        const std::string base =
            "s" + std::to_string(gopt.seed) + "_" +
            sanitizeTag(std::string(
                gen::scenarioName(gen::scenarioFor(gopt)))) +
            "_" + tag;
        const std::string path_a =
            (std::filesystem::path(f.out_dir) / (base + "_a.pdt"))
                .string();
        const std::string path_b =
            (std::filesystem::path(f.out_dir) / (base + "_b.pdt"))
                .string();
        trace::writeFile(path_a, a, wopt);
        trace::writeFile(path_b, b, wopt);
        pf << "# seed " << gopt.seed << ": delayed all cores by "
           << dopt.delta << " ticks from tick " << dopt.at << "\n"
           << base << " " << path_a << " " << path_b << "\n";
        std::cout << "pair " << base << ": perturbed at tick " << dopt.at
                  << " (+" << dopt.delta << ")\n";
        ++written;
    }
    std::cout << "perturb sweep: " << written << " pair(s) -> "
              << manifest << "\n";
    return written == 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cell;
    namespace gen = trace::gen;

    cli::FlagSpec spec;
    spec.gen = true;
    spec.index = true;
    spec.compress = true;
    cli::Flags f;
    if (!cli::parseFlags(argc, argv, spec, f)) {
        std::cerr << "trace_gen: " << f.error << "\n";
        return usage();
    }

    if (f.list_scenarios) {
        for (std::size_t s = 0; s < gen::kNumScenarios; ++s)
            std::cout << gen::scenarioName(static_cast<gen::Scenario>(s))
                      << "\n";
        return 0;
    }

    gen::GenOptions gopt;
    gopt.seed = f.seed;
    if (!f.scenario.empty()) {
        gen::Scenario s{};
        if (!gen::scenarioFromName(f.scenario, s)) {
            std::cerr << "trace_gen: unknown scenario: '" << f.scenario
                      << "' (see --list-scenarios)\n";
            return usage();
        }
        gopt.scenario = static_cast<int>(s);
    }
    if (f.spes > 255) {
        std::cerr << "trace_gen: --spes must be <= 255\n";
        return usage();
    }
    gopt.num_spes = static_cast<std::uint32_t>(f.spes);
    gopt.records = f.records;

    try {
        if (f.sweep != 0 || !f.out_dir.empty()) {
            if (f.sweep == 0 || f.out_dir.empty()) {
                std::cerr << "trace_gen: sweep mode needs both --sweep N "
                             "and --out-dir DIR\n";
                return usage();
            }
            if (f.perturb && f.adversarial) {
                std::cerr << "trace_gen: --perturb needs strict-valid "
                             "traces; it cannot combine with "
                             "--adversarial\n";
                return usage();
            }
            std::filesystem::create_directories(f.out_dir);
            if (f.perturb)
                return perturbSweep(f, gopt);
            // Warm up one untimed iteration first: the first
            // generateBytes pays one-time costs (page faults, lazy
            // allocator growth, scenario table setup) that would
            // otherwise land in the first timed sample and skew the
            // traces/sec figure for short sweeps.
            {
                gen::BytesOptions warm;
                warm.gen = gopt;
                warm.gen.seed = f.seed;
                warm.adversarial = f.adversarial;
                (void)gen::generateBytes(warm, nullptr);
            }
            const auto t0 = std::chrono::steady_clock::now();
            std::uint64_t total_records = 0;
            std::uint64_t total_bytes = 0;
            for (std::uint64_t i = 0; i < f.sweep; ++i) {
                gen::BytesOptions bopt;
                bopt.gen = gopt;
                bopt.gen.seed = f.seed + i;
                bopt.adversarial = f.adversarial;
                std::string desc;
                const std::vector<std::uint8_t> bytes =
                    gen::generateBytes(bopt, &desc);
                // The specimen's record count, from the same seed (the
                // mutated bytes may lie about theirs).
                total_records += gen::generate(bopt.gen).records.size();
                total_bytes += bytes.size();
                const std::string name =
                    std::string(f.adversarial ? "adv_" : "gen_") + "s" +
                    std::to_string(bopt.gen.seed) + "_" +
                    sanitizeTag(desc) + ".pdt";
                const std::string path =
                    (std::filesystem::path(f.out_dir) / name).string();
                if (!writeBytes(path, bytes)) {
                    std::cerr << "trace_gen: cannot write " << path << "\n";
                    return 1;
                }
            }
            const auto dt = std::chrono::duration_cast<
                std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0);
            const double secs =
                static_cast<double>(dt.count()) / 1e6;
            std::cout << "sweep: " << f.sweep << " traces, "
                      << total_records << " records, " << total_bytes
                      << " bytes -> " << f.out_dir << "\n";
            if (secs > 0.0) {
                std::cout << "throughput: "
                          << static_cast<std::uint64_t>(
                                 static_cast<double>(total_records) / secs)
                          << " records/s, "
                          << static_cast<std::uint64_t>(
                                 static_cast<double>(total_bytes) / secs)
                          << " bytes/s\n";
            }
            return 0;
        }

        if (f.positionals.size() != 1) {
            std::cerr << "trace_gen: exactly one output path expected\n";
            return usage();
        }
        const std::string& out_path = f.positionals[0];
        if (f.adversarial) {
            gen::BytesOptions bopt;
            bopt.gen = gopt;
            bopt.adversarial = true;
            std::string desc;
            const std::vector<std::uint8_t> bytes =
                gen::generateBytes(bopt, &desc);
            if (!writeBytes(out_path, bytes)) {
                std::cerr << "trace_gen: cannot write " << out_path << "\n";
                return 1;
            }
            std::cout << "wrote " << desc << " seed " << gopt.seed << ": "
                      << bytes.size() << " bytes -> " << out_path << "\n";
            return 0;
        }
        const trace::TraceData data = gen::generate(gopt);
        trace::WriteOptions wopt;
        wopt.index_stride = static_cast<std::size_t>(f.index_stride);
        wopt.compress = f.compress;
        trace::writeFile(out_path, data, wopt);
        std::cout << "wrote "
                  << gen::scenarioName(gen::scenarioFor(gopt)) << " seed "
                  << gopt.seed << ": " << data.records.size()
                  << " records, "
                  << static_cast<unsigned>(data.header.num_spes)
                  << " SPEs -> " << out_path << "\n";
    } catch (const std::exception& e) {
        std::cerr << "trace_gen: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
