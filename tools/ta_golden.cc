/**
 * @file
 * `ta_golden` — golden-trace fixture maintenance.
 *
 * The golden fixtures under tests/ta/golden/ are small committed PDT
 * traces plus a `.digest` file per trace holding the FNV-1a 64 hash of
 * the serial analyzer's full report. tests/ta/test_golden.cc fails if
 * either the serial or the parallel analyzer stops reproducing a
 * digest — i.e. if an analyzer change silently alters any number any
 * report prints.
 *
 * Each fixture exists in three on-disk variants sharing ONE digest:
 * `<name>.pdt` (plain v1), `<name>.v2.pdt` (same trace written with a
 * footer index, stride 64), and `<name>.v3.pdt` (compressed blocks +
 * footer index). The v1 reader ignores the footer and the v3 decode is
 * transparent, so all variants must analyze to the identical report —
 * `check` verifies that, that the indexes validate, and that windowed
 * queries through them byte-match the brute-force filter.
 *
 *   ta_golden gen   <dir> [--force]   regenerate every fixture
 *   ta_golden check <dir>             re-analyze, verify digests
 *
 * `gen` refuses to overwrite a fixture whose committed digest differs
 * from the regenerated one unless --force is given — it prints the
 * digest diff instead, so a digest change is always a deliberate,
 * visible act. Regenerate (and commit the diff) only when an analyzer
 * change is *supposed* to change reported numbers; `check` is what CI
 * runs.
 */

#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "ta/analyzer.h"
#include "ta/compare.h"
#include "ta/intervals.h"
#include "ta/parallel.h"
#include "ta/query.h"
#include "trace/gen.h"
#include "trace/index.h"
#include "trace/surgery.h"
#include "trace/writer.h"
#include "wl/matmul.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace {

using namespace cell;

/** One deterministic fixture: a named trace-producing run. */
struct Fixture
{
    const char* name;
    trace::TraceData (*produce)();
};

trace::TraceData
runTriad()
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys, {});
    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    if (!wl.verify())
        throw std::runtime_error("triad verification failed");
    return tracer.finalize();
}

trace::TraceData
runMatmul()
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys, {});
    wl::MatmulParams p;
    p.n = 64;
    p.n_spes = 2;
    wl::Matmul wl(sys, p);
    wl.start();
    sys.run();
    if (!wl.verify())
        throw std::runtime_error("matmul verification failed");
    return tracer.finalize();
}

trace::TraceData
runWorkQueue()
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys, {});
    wl::WorkQueueParams p;
    p.n_items = 32;
    p.tile_elems = 256;
    p.n_spes = 2;
    wl::WorkQueue wl(sys, p);
    wl.start();
    sys.run();
    if (!wl.verify())
        throw std::runtime_error("workqueue verification failed");
    return tracer.finalize();
}

/** Triad under injected faults and a tiny SPU buffer with the
 *  drop-with-marker overflow policy: a trace full of drop markers and
 *  gap epochs — the bookkeeping the merge must preserve exactly. */
trace::TraceData
runTriadDrops()
{
    sim::MachineConfig mcfg;
    mcfg.faults.seed = 42;
    mcfg.faults.dma_delay_permille = 150;
    mcfg.faults.dma_delay_cycles = 3'000;
    mcfg.faults.mbox_stall_permille = 200;
    mcfg.faults.arena_exhaust_begin = 1; // flush attempts 1..3 fail →
    mcfg.faults.arena_exhaust_end = 4;   // guaranteed drop markers
    rt::CellSystem sys(mcfg);
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
    pdt::Pdt tracer(sys, pcfg);
    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    if (!wl.verify())
        throw std::runtime_error("triad (drops) verification failed");
    return tracer.finalize();
}

/** The middle half of the workqueue trace, cut by `ta surgery slice`:
 *  the synthetic preamble (seed sync, drop accounting, re-opened
 *  Begins) is part of the digest, so a surgery change that altered it
 *  — or an analyzer change that read it differently — trips the
 *  golden test. */
trace::TraceData
runWorkQueueSlice()
{
    const trace::TraceData data = runWorkQueue();
    const ta::Analysis a = ta::analyze(data);
    const std::uint64_t s = a.model.startTb();
    const std::uint64_t span = a.model.spanTb();
    return trace::slice(data, s + span / 4, s + (3 * span) / 4,
                        ta::surgeryOpSemantics());
}

/** Triad cut in half and spliced back at the cut — the round-trip
 *  composition. Analyzes identically to the original triad, but its
 *  record stream (entry preambles, junction) is surgery's own. */
trace::TraceData
runTriadSplice()
{
    const trace::TraceData data = runTriad();
    const ta::Analysis a = ta::analyze(data);
    const std::uint64_t m = a.model.startTb() + a.model.spanTb() / 2;
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    trace::SpliceOptions jopt;
    jopt.cuts = {m};
    return trace::splice(
        {trace::slice(data, 0, m, sem),
         trace::slice(data, m, ~std::uint64_t{0}, sem)},
        jopt);
}

/** The triad trace delayed on every core from its midpoint — the B
 *  side of the committed differential pair. `gen` also derives a
 *  digest of `ta diff --json triad triad_perturbed` from it, so a
 *  change to the diff engine's alignment, attribution or localization
 *  output is as visible (and as deliberate) as an analyzer change. */
trace::TraceData
runTriadPerturbed()
{
    const trace::TraceData data = runTriad();
    const ta::Analysis a = ta::analyze(data);
    trace::DelayOptions dopt;
    dopt.at = a.model.startTb() + a.model.spanTb() / 2;
    dopt.delta = a.model.spanTb() / 8 + 100;
    return trace::delay(data, dopt);
}

/** A generated clock-skew scenario: backward sync steps exercise the
 *  monotonic clamp on every analyzer path that replays the fixture. */
trace::TraceData
runGenSkew()
{
    trace::gen::GenOptions opt;
    opt.seed = 20'08; // ISPASS'08
    opt.scenario = static_cast<int>(trace::gen::Scenario::ClockSkew);
    return trace::gen::generate(opt);
}

const std::vector<Fixture> kFixtures = {
    {"triad", runTriad},
    {"matmul", runMatmul},
    {"workqueue", runWorkQueue},
    {"triad_drops", runTriadDrops},
    {"workqueue_slice", runWorkQueueSlice},
    {"triad_splice", runTriadSplice},
    {"gen_skew", runGenSkew},
    {"triad_perturbed", runTriadPerturbed},
};

/** FNV-1a 64 hex of the triad -> triad_perturbed diff JSON. */
std::string
diffDigestHex(const std::filesystem::path& dir)
{
    ta::DiffFileOptions opt;
    opt.threads = 1;
    const ta::DiffFileOutcome out =
        ta::diffFiles((dir / "triad.pdt").string(),
                      (dir / "triad_perturbed.pdt").string(), opt);
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << ta::fnv1a64(ta::diffJson(out.result));
    return os.str();
}

std::string
digestHex(const trace::TraceData& data)
{
    const ta::Analysis a = ta::analyze(data, /*lenient=*/false);
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << ta::fnv1a64(ta::fullReport(a));
    return os.str();
}

std::string
readDigestFile(const std::filesystem::path& p)
{
    std::ifstream is(p);
    std::string s;
    is >> s;
    return s;
}

int
gen(const std::filesystem::path& dir, bool force)
{
    std::filesystem::create_directories(dir);
    int refused = 0;
    for (const Fixture& f : kFixtures) {
        const trace::TraceData data = f.produce();
        const std::string digest = digestHex(data);
        const auto digest_path = dir / (std::string(f.name) + ".digest");
        const std::string committed = readDigestFile(digest_path);
        if (!committed.empty() && committed != digest && !force) {
            // A digest change rewrites committed history — make it a
            // deliberate act, never a silent side effect of a rerun.
            std::cerr << f.name << ": digest would change\n"
                      << "  committed   " << committed << "\n"
                      << "  regenerated " << digest << "\n"
                      << "  (analyzer output changed; rerun with --force "
                         "to overwrite, then commit the diff)\n";
            ++refused;
            continue;
        }
        const auto trace_path = dir / (std::string(f.name) + ".pdt");
        trace::writeFile(trace_path.string(), data);
        const auto v2_path = dir / (std::string(f.name) + ".v2.pdt");
        trace::WriteOptions wopt;
        wopt.index_stride = 64; // small stride: several entries even
                                // on these tiny fixture traces
        trace::writeFile(v2_path.string(), data, wopt);
        const auto v3_path = dir / (std::string(f.name) + ".v3.pdt");
        trace::WriteOptions w3 = wopt;
        w3.compress = true;
        trace::writeFile(v3_path.string(), data, w3);
        std::ofstream os(digest_path);
        os << digest << "\n";
        std::cout << f.name << ": " << data.records.size() << " records, "
                  << "digest " << digest << "\n";
    }
    if (refused)
        return 1;

    // The cross-trace differential digest rides on the fixtures just
    // written: `ta diff --json` of triad vs triad_perturbed.
    const auto diff_path = dir / "triad_diff.digest";
    const std::string diff_digest = diffDigestHex(dir);
    const std::string diff_committed = readDigestFile(diff_path);
    if (!diff_committed.empty() && diff_committed != diff_digest &&
        !force) {
        std::cerr << "triad_diff: digest would change\n"
                  << "  committed   " << diff_committed << "\n"
                  << "  regenerated " << diff_digest << "\n"
                  << "  (diff output changed; rerun with --force to "
                     "overwrite, then commit the diff)\n";
        return 1;
    }
    std::ofstream dos(diff_path);
    dos << diff_digest << "\n";
    std::cout << "triad_diff: digest " << diff_digest << "\n";
    return 0;
}

int
check(const std::filesystem::path& dir)
{
    int failures = 0;
    for (const Fixture& f : kFixtures) {
        const auto trace_path = dir / (std::string(f.name) + ".pdt");
        const auto digest_path = dir / (std::string(f.name) + ".digest");
        const std::string expect = readDigestFile(digest_path);
        if (expect.empty()) {
            std::cerr << f.name << ": missing digest file\n";
            ++failures;
            continue;
        }
        // Serial and the sharded parallel pipeline must both hit it.
        const std::string serial =
            digestHex(trace::readFile(trace_path.string()));
        ta::ParallelOptions popt;
        popt.threads = 4;
        popt.shard_records = 64; // force many shards even on tiny traces
        const ta::Analysis par =
            ta::analyzeParallel(trace::readFile(trace_path.string()), popt);
        std::ostringstream ps;
        ps << std::hex << std::setw(16) << std::setfill('0')
           << ta::fnv1a64(ta::fullReport(par));
        if (serial != expect || ps.str() != expect) {
            std::cerr << f.name << ": digest mismatch (expect " << expect
                      << ", serial " << serial << ", parallel " << ps.str()
                      << ")\n";
            ++failures;
            continue;
        }

        // The v2 variant must be invisible to the v1 reader: same
        // trace, same digest, footer ignored.
        const auto v2_path = dir / (std::string(f.name) + ".v2.pdt");
        const std::string v2_digest =
            digestHex(trace::readFile(v2_path.string()));
        if (v2_digest != expect) {
            std::cerr << f.name << ": v2 variant digest mismatch (expect "
                      << expect << ", got " << v2_digest << ")\n";
            ++failures;
            continue;
        }
        const trace::IndexReadResult ir =
            trace::readIndexFile(v2_path.string());
        if (!ir.present || !ir.valid) {
            std::cerr << f.name << ": v2 index invalid ("
                      << (ir.reason.empty() ? "absent" : ir.reason)
                      << ")\n";
            ++failures;
            continue;
        }
        // Windowed query through the index == brute-force filter of
        // the full analysis, byte for byte (middle half of the span).
        const ta::Analysis full =
            ta::analyze(trace::readFile(v2_path.string()));
        const std::uint64_t span = full.model.spanTb();
        const std::uint64_t from = full.model.startTb() + span / 4;
        const std::uint64_t to = full.model.startTb() + (3 * span) / 4;
        ta::BlockCache cache;
        ta::QueryOptions qopt;
        qopt.threads = 1;
        qopt.cache = &cache;
        const ta::WindowResult indexed =
            ta::queryWindowFile(v2_path.string(), from, to, qopt);
        const ta::WindowResult brute = ta::queryWindow(full, from, to);
        if (!indexed.used_index ||
            ta::windowReport(indexed) != ta::windowReport(brute)) {
            std::cerr << f.name << ": windowed query mismatch (index "
                      << (indexed.used_index ? "used" : "unused") << ")\n";
            ++failures;
            continue;
        }

        // The v3 variant: transparent decode (same digest, serial and
        // sharded-parallel), a valid index, and exact indexed windowed
        // answers — compression must be invisible everywhere.
        const auto v3_path = dir / (std::string(f.name) + ".v3.pdt");
        const std::string v3_digest =
            digestHex(trace::readFile(v3_path.string()));
        std::ostringstream v3p;
        v3p << std::hex << std::setw(16) << std::setfill('0')
            << ta::fnv1a64(ta::fullReport(ta::analyzeFileParallel(
                   v3_path.string(), ta::ParallelOptions{4, 0})));
        if (v3_digest != expect || v3p.str() != expect) {
            std::cerr << f.name << ": v3 variant digest mismatch (expect "
                      << expect << ", serial " << v3_digest << ", parallel "
                      << v3p.str() << ")\n";
            ++failures;
            continue;
        }
        const trace::IndexReadResult ir3 =
            trace::readIndexFile(v3_path.string());
        if (!ir3.present || !ir3.valid) {
            std::cerr << f.name << ": v3 index invalid ("
                      << (ir3.reason.empty() ? "absent" : ir3.reason)
                      << ")\n";
            ++failures;
            continue;
        }
        const ta::WindowResult indexed3 =
            ta::queryWindowFile(v3_path.string(), from, to, qopt);
        if (!indexed3.used_index ||
            ta::windowReport(indexed3) != ta::windowReport(brute)) {
            std::cerr << f.name << ": v3 windowed query mismatch (index "
                      << (indexed3.used_index ? "used" : "unused") << ")\n";
            ++failures;
            continue;
        }
        std::cout << f.name << ": ok (" << expect << ")\n";
    }

    // The committed diff digest: single- and multi-threaded diffFiles
    // must both keep rendering the identical JSON.
    const std::string diff_expect =
        readDigestFile(dir / "triad_diff.digest");
    if (diff_expect.empty()) {
        std::cerr << "triad_diff: missing digest file\n";
        ++failures;
    } else {
        const std::string serial = diffDigestHex(dir);
        ta::DiffFileOptions opt4;
        opt4.threads = 4;
        const ta::DiffFileOutcome out4 =
            ta::diffFiles((dir / "triad.pdt").string(),
                          (dir / "triad_perturbed.pdt").string(), opt4);
        std::ostringstream p4;
        p4 << std::hex << std::setw(16) << std::setfill('0')
           << ta::fnv1a64(ta::diffJson(out4.result));
        if (serial != diff_expect || p4.str() != diff_expect) {
            std::cerr << "triad_diff: digest mismatch (expect "
                      << diff_expect << ", serial " << serial
                      << ", 4-thread " << p4.str() << ")\n";
            ++failures;
        } else {
            std::cout << "triad_diff: ok (" << diff_expect << ")\n";
        }
    }
    return failures ? 1 : 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const auto usage = [] {
        std::cerr << "usage: ta_golden {gen [--force]|check} <dir>\n";
        return 2;
    };
    std::string mode, dir;
    bool force = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--force")
            force = true;
        else if (mode.empty())
            mode = arg;
        else if (dir.empty())
            dir = arg;
        else
            return usage();
    }
    if (mode.empty() || dir.empty())
        return usage();
    try {
        if (mode == "gen")
            return gen(dir, force);
        if (mode == "check") {
            if (force)
                return usage(); // --force only applies to gen
            return check(dir);
        }
    } catch (const std::exception& e) {
        std::cerr << "ta_golden: " << e.what() << "\n";
        return 1;
    }
    return usage();
}
