/**
 * @file
 * `ta` — the trace analyzer command-line tool.
 *
 * The paper's TA was an interactive (Eclipse-based) viewer; this CLI
 * exposes the same analyses over PDT trace files:
 *
 *   ta summary    <trace.pdt>              overview
 *   ta breakdown  <trace.pdt>              per-SPE stall breakdown
 *   ta dma        <trace.pdt>              DMA statistics
 *   ta events     <trace.pdt>              event counts
 *   ta tracing    <trace.pdt>              tracer self-observation
 *   ta loss       <trace.pdt>              per-core event-loss report
 *   ta timeline   <trace.pdt> [width]      ASCII timeline
 *   ta svg        <trace.pdt> <out.svg>    SVG timeline
 *   ta csv        <trace.pdt> <out.csv>    per-SPE breakdown CSV
 *   ta intervals  <trace.pdt> <out.csv>    raw interval CSV
 *   ta compare    <a.pdt> <b.pdt>          A/B comparison
 *   ta all        <trace.pdt>              every textual view
 *
 * A damaged trace fails with a diagnostic naming where parsing stopped
 * (exit 1). `ta --salvage <command> <trace.pdt>` analyzes whatever a
 * salvage read recovers, reporting what was skipped on stderr.
 *
 * `--threads N` selects the analysis thread count (default: hardware
 * concurrency). The parallel path shards the file on the record
 * stride, ingests and analyzes the shards concurrently, and produces
 * byte-identical output to the serial analyzer; `--threads 1` forces
 * the legacy serial path.
 */

#include <fstream>
#include <iostream>
#include <string>

#include "ta/analyzer.h"
#include "ta/parallel.h"
#include "ta/compare.h"
#include "ta/profile.h"
#include "ta/report.h"
#include "ta/timeline.h"

namespace {

int
usage()
{
    std::cerr
        << "usage: ta [--salvage] [--threads N] <command> <trace.pdt> [args]\n"
           "commands: summary breakdown dma events tracing loss timeline\n"
           "          activity"
           "          svg html csv intervals transfers compare all\n"
           "--threads N: analysis threads (default: hardware concurrency;\n"
           "             1 forces the serial path; output is identical)\n";
    return 2;
}

cell::ta::Analysis
load(const std::string& path, bool salvage, unsigned threads)
{
    const cell::ta::ParallelOptions popt{threads, 0};
    if (!salvage)
        return cell::ta::analyzeFileParallel(path, popt);
    cell::trace::ReadReport report;
    cell::ta::Analysis a =
        cell::ta::analyzeFileSalvageParallel(path, report, popt);
    if (report.salvaged) {
        std::cerr << "ta: " << report.summary() << "\n";
        for (const std::string& note : report.notes)
            std::cerr << "ta:   " << note << "\n";
    }
    return a;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cell;
    bool salvage = false;
    unsigned threads = 0; // 0 = hardware concurrency
    // Accept flags anywhere; compact the positionals to argv[1..] so
    // argv[3] is the first extra argument below.
    int nkeep = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--salvage") {
            salvage = true;
        } else if (arg == "--threads" && i + 1 < argc) {
            try {
                threads = static_cast<unsigned>(std::stoul(argv[++i]));
            } catch (const std::exception&) {
                return usage();
            }
        } else if (arg.rfind("-", 0) == 0 && arg.size() > 1) {
            return usage();
        } else {
            argv[nkeep++] = argv[i];
        }
    }
    argc = nkeep;
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];

    try {
        if (cmd == "compare") {
            if (argc < 4)
                return usage();
            const ta::Analysis a = load(path, salvage, threads);
            const ta::Analysis b = load(argv[3], salvage, threads);
            ta::printComparison(std::cout, a, b);
            return 0;
        }

        const ta::Analysis a = load(path, salvage, threads);
        if (cmd == "summary") {
            ta::printSummary(std::cout, a);
        } else if (cmd == "breakdown") {
            ta::printStallBreakdown(std::cout, a);
        } else if (cmd == "dma") {
            ta::printDmaReport(std::cout, a);
            std::cout << "\n";
            ta::printDmaHistogram(std::cout, a);
        } else if (cmd == "events") {
            ta::printEventCounts(std::cout, a);
        } else if (cmd == "tracing") {
            ta::printTracingReport(std::cout, a);
        } else if (cmd == "loss") {
            ta::printLossReport(std::cout, a);
        } else if (cmd == "timeline") {
            ta::TimelineOptions opt;
            if (argc > 3)
                opt.width = static_cast<unsigned>(std::stoul(argv[3]));
            std::cout << ta::renderAscii(a.model, a.intervals, opt);
        } else if (cmd == "activity") {
            unsigned buckets = 60;
            if (argc > 3)
                buckets = static_cast<unsigned>(std::stoul(argv[3]));
            ta::printActivity(std::cout, a, buckets);
        } else if (cmd == "html") {
            if (argc < 4)
                return usage();
            ta::writeHtmlReport(argv[3], a, path);
            std::cout << "wrote " << argv[3] << "\n";
        } else if (cmd == "svg") {
            if (argc < 4)
                return usage();
            ta::writeSvg(argv[3], a.model, a.intervals,
                         ta::TimelineOptions{.width = 900});
            std::cout << "wrote " << argv[3] << "\n";
        } else if (cmd == "csv") {
            if (argc < 4)
                return usage();
            std::ofstream os(argv[3]);
            ta::exportBreakdownCsv(os, a);
            std::cout << "wrote " << argv[3] << "\n";
        } else if (cmd == "intervals") {
            if (argc < 4)
                return usage();
            std::ofstream os(argv[3]);
            ta::exportIntervalsCsv(os, a);
            std::cout << "wrote " << argv[3] << "\n";
        } else if (cmd == "transfers") {
            if (argc < 4)
                return usage();
            std::ofstream os(argv[3]);
            ta::exportDmaTransfersCsv(os, a);
            std::cout << "wrote " << argv[3] << "\n";
        } else if (cmd == "all") {
            ta::printSummary(std::cout, a);
            std::cout << "\n";
            ta::printStallBreakdown(std::cout, a);
            std::cout << "\n";
            ta::printDmaReport(std::cout, a);
            std::cout << "\n";
            ta::printDmaHistogram(std::cout, a);
            std::cout << "\n";
            ta::printEventCounts(std::cout, a);
            std::cout << "\n";
            ta::printTracingReport(std::cout, a);
            std::cout << "\n";
            ta::printLossReport(std::cout, a);
            std::cout << "\n"
                      << ta::renderAscii(a.model, a.intervals) << "\n";
            ta::printActivity(std::cout, a);
        } else {
            return usage();
        }
    } catch (const std::exception& e) {
        std::cerr << "ta: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
