/**
 * @file
 * `ta` — the trace analyzer command-line tool.
 *
 * The paper's TA was an interactive (Eclipse-based) viewer; this CLI
 * exposes the same analyses over PDT trace files:
 *
 *   ta summary    <trace.pdt>              overview
 *   ta breakdown  <trace.pdt>              per-SPE stall breakdown
 *   ta dma        <trace.pdt>              DMA statistics
 *   ta events     <trace.pdt>              event counts
 *   ta tracing    <trace.pdt>              tracer self-observation
 *   ta loss       <trace.pdt>              per-core event-loss report
 *   ta timeline   <trace.pdt> [width]      ASCII timeline
 *   ta svg        <trace.pdt> <out.svg>    SVG timeline
 *   ta csv        <trace.pdt> <out.csv>    per-SPE breakdown CSV
 *   ta intervals  <trace.pdt> <out.csv>    raw interval CSV
 *   ta compare    <a.pdt> <b.pdt>          A/B comparison
 *   ta diff       <a.pdt> <b.pdt>          differential: aligned-interval
 *                                          delta attribution + first
 *                                          divergent window localization
 *   ta diff-corpus <pairs-file>            batch diff over trace pairs
 *   ta all        <trace.pdt>              every textual view
 *   ta window     <trace.pdt> <from> <to>  windowed query report (ticks)
 *   ta profile    <trace.pdt> [buckets]    activity profile; --from/--to
 *                                          restrict it to a time window
 *   ta convert    <in.pdt> <out.pdt>       rewrite a trace; --compress
 *                                          selects the v3 block
 *                                          container (a valid footer
 *                                          index is carried over at
 *                                          its original stride)
 *
 * `window` and windowed `profile` seek via the v2 footer index when the
 * trace carries one (see docs/TRACE_FORMAT.md), falling back to a full
 * scan otherwise; `--full-scan` forces the fallback. Results are
 * identical either way.
 *
 * A damaged trace fails with a diagnostic naming where parsing stopped
 * (exit 1). `ta --salvage <command> <trace.pdt>` analyzes whatever a
 * salvage read recovers, reporting what was skipped on stderr.
 *
 * `--threads N` selects the analysis thread count (default: hardware
 * concurrency). The parallel path shards the file on the record
 * stride, ingests and analyzes the shards concurrently, and produces
 * byte-identical output to the serial analyzer; `--threads 1` forces
 * the legacy serial path.
 */

#include <cctype>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>

#include "rt/hooks.h"
#include "ta/analyzer.h"
#include "ta/intervals.h"
#include "ta/parallel.h"
#include "ta/compare.h"
#include "ta/profile.h"
#include "ta/query.h"
#include "ta/report.h"
#include "ta/serve.h"
#include "ta/timeline.h"
#include "trace/block.h"
#include "trace/index.h"
#include "trace/reader.h"
#include "trace/surgery.h"
#include "trace/writer.h"

#include "cli_flags.h"

namespace {

int
usage()
{
    std::cerr
        << "usage: ta [--salvage] [--threads N] [--full-scan] <command> "
           "<trace.pdt> [args]\n"
           "commands: summary breakdown dma events tracing loss timeline\n"
           "          activity window profile convert serve query surgery\n"
           "          svg html csv intervals transfers compare diff\n"
           "          diff-corpus all\n"
           "  window  <trace.pdt> <from> <to>   windowed query report\n"
           "          (timebase ticks; seeks via the v2 index if present)\n"
           "  profile <trace.pdt> [buckets]     activity profile;\n"
           "          --from T --to T restricts it to a time window\n"
           "  convert <in.pdt> <out.pdt>        rewrite; --compress "
           "selects\n"
           "          the v3 block container (any valid footer index is\n"
           "          carried over at its original stride)\n"
           "  serve   <socket> <name=trace.pdt> [more...]   query daemon\n"
           "          (docs/SERVE.md); --workers N --queue-depth N\n"
           "          --per-query N --max-conns N --deadline-ms N\n"
           "          --threads N (total analysis-thread budget)\n"
           "          --faults PLAN (Serve* fault-injection plan file)\n"
           "  query   --connect <socket> <op> [name] [args]  served query\n"
           "          ops: ping | server-stats | shutdown |\n"
           "               window <name> <from> <to> |\n"
           "               profile <name> [buckets] (--from/--to) |\n"
           "               loss <name> | stats <name>\n"
           "          --deadline-ms N --attempts N --salvage\n"
           "          exits 0 ok, 3 typed shed/timeout, 1 error\n"
           "  surgery slice  <in.pdt> <out.pdt> <from> <to>\n"
           "          cut [from, to) ticks into a standalone trace whose\n"
           "          windowed report matches the original's\n"
           "  surgery splice <out.pdt> <a.pdt> <b.pdt> [more...]\n"
           "          merge traces; one --cut T per junction band-stitches\n"
           "          slices of a common recording back together;\n"
           "          --blades stacks core spaces; --align shifts inputs\n"
           "          to a common start\n"
           "  surgery filter <in.pdt> <out.pdt>\n"
           "          rewrite keeping --cores 0,2 and/or --kinds groups\n"
           "          (lifecycle dma dma_wait mailbox signal decrementer\n"
           "          user); tool records always survive\n"
           "  surgery delay  <in.pdt> <out.pdt> <at> <delta>\n"
           "          shift every placement at tick >= <at> by <delta>\n"
           "          ticks (--cores N restricts to one core) — the\n"
           "          perturbation primitive the diff suites localize\n"
           "          surgery output: --index N / --compress pick the\n"
           "          container; --salvage reads damaged inputs\n"
           "  diff    <a.pdt> <b.pdt>           differential report:\n"
           "          aligned-interval delta attribution per core plus\n"
           "          the first divergent rolling window; --window N\n"
           "          sets the window width in ticks (default span/64),\n"
           "          --threshold N the divergence score floor, --json\n"
           "          machine-readable output (docs/DIFF.md)\n"
           "  diff-corpus <pairs-file>          batch diff: each line\n"
           "          'name a.pdt b.pdt' (# comments ok), fanned over\n"
           "          --threads N workers; per-pair strict reads\n"
           "          downgrade to salvage with a note; --deadline-ms N\n"
           "          bounds each pair; output is input-ordered and\n"
           "          byte-identical at any thread count\n"
           "--threads N: analysis threads (default: hardware concurrency;\n"
           "             1 forces the serial path; output is identical)\n"
           "--full-scan: ignore any v2 footer index\n";
    return 2;
}

cell::ta::Analysis
load(const std::string& path, bool salvage, unsigned threads)
{
    const cell::ta::ParallelOptions popt{threads, 0};
    if (!salvage)
        return cell::ta::analyzeFileParallel(path, popt);
    cell::trace::ReadReport report;
    cell::ta::Analysis a =
        cell::ta::analyzeFileSalvageParallel(path, report, popt);
    if (report.salvaged) {
        std::cerr << "ta: " << report.summary() << "\n";
        for (const std::string& note : report.notes)
            std::cerr << "ta:   " << note << "\n";
    }
    return a;
}

volatile std::sig_atomic_t g_signalled = 0;

void
onSignal(int)
{
    g_signalled = 1;
}

/** `ta serve <socket> <name=trace.pdt>...` — run the query daemon
 *  until SIGINT/SIGTERM or a client's shutdown request. */
int
runServe(const cell::cli::Flags& f)
{
    using namespace cell;
    const auto& pos = f.positionals;
    if (pos.size() < 3) {
        std::cerr << "ta: serve needs a socket path and at least one "
                     "name=trace.pdt registration\n";
        return usage();
    }
    ta::serve::ServerConfig cfg;
    cfg.socket_path = pos[1];
    if (f.workers != 0)
        cfg.workers = f.workers;
    if (f.queue_depth != 0)
        cfg.queue_depth = static_cast<std::size_t>(f.queue_depth);
    if (f.threads != 0)
        cfg.thread_budget = f.threads;
    if (f.per_query != 0)
        cfg.per_query_threads = f.per_query;
    if (f.max_conns != 0)
        cfg.max_connections = f.max_conns;
    if (f.deadline_ms != 0)
        cfg.default_deadline_ms = static_cast<std::uint32_t>(f.deadline_ms);
    if (!f.faults_path.empty()) {
        std::ifstream in(f.faults_path);
        if (!in) {
            std::cerr << "ta: cannot read fault plan: " << f.faults_path
                      << "\n";
            return 1;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        cfg.faults = sim::FaultPlan::parse(ss.str());
    }

    ta::serve::Server server(cfg);
    for (std::size_t i = 2; i < pos.size(); ++i) {
        const std::size_t eq = pos[i].find('=');
        if (eq == std::string::npos || eq == 0 || eq + 1 == pos[i].size()) {
            std::cerr << "ta: registrations are name=trace.pdt, got: "
                      << pos[i] << "\n";
            return usage();
        }
        server.registerTrace(pos[i].substr(0, eq), pos[i].substr(eq + 1));
    }
    server.start();
    std::cerr << "ta: serving " << (pos.size() - 2) << " trace(s) on "
              << cfg.socket_path << "\n";
    std::signal(SIGINT, onSignal);
    std::signal(SIGTERM, onSignal);
    while (!server.shutdownRequested() && !g_signalled)
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    std::cerr << "ta: shutting down\n";
    server.stop();
    return 0;
}

/** `ta query --connect <socket> <op> [name] [args]` — the daemon's
 *  client. Report bodies go to stdout (byte-identical to the serial
 *  CLI); degradation warnings to stderr. Exit: 0 ok, 3 typed
 *  shed/timeout, 1 error, 2 usage. */
int
runQuery(const cell::cli::Flags& f)
{
    using namespace cell;
    using namespace cell::ta::serve;
    const auto& pos = f.positionals;
    if (f.connect.empty()) {
        std::cerr << "ta: query requires --connect <socket>\n";
        return usage();
    }
    const std::string& op = pos[1];
    Request req;
    req.salvage = f.salvage;
    req.deadline_ms = static_cast<std::uint32_t>(f.deadline_ms);
    if (op == "ping" || op == "server-stats" || op == "shutdown") {
        req.op = op == "ping" ? Op::Ping
                 : op == "server-stats" ? Op::ServerStats
                                        : Op::Shutdown;
        if (pos.size() != 2)
            return usage();
    } else if (op == "window") {
        req.op = Op::Window;
        if (pos.size() != 5) {
            std::cerr << "ta: query window needs <name> <from> <to>\n";
            return usage();
        }
        req.name = pos[2];
        if (!cli::parseU64(pos[3], req.from) ||
            !cli::parseU64(pos[4], req.to)) {
            std::cerr << "ta: window bounds must be timebase ticks\n";
            return usage();
        }
        if (req.from > req.to) {
            std::cerr << "ta: window 'from' exceeds 'to'\n";
            return usage();
        }
    } else if (op == "profile") {
        req.op = Op::Profile;
        if (pos.size() < 3 || pos.size() > 4) {
            std::cerr << "ta: query profile needs <name> [buckets]\n";
            return usage();
        }
        req.name = pos[2];
        if (pos.size() == 4) {
            std::uint64_t b = 0;
            if (!cli::parseU64(pos[3], b) || b == 0 || b > 0xFFFF) {
                std::cerr << "ta: buckets must be a count in [1, 65535]\n";
                return usage();
            }
            req.buckets = static_cast<std::uint16_t>(b);
        }
        if (f.have_from || f.have_to) {
            if (f.from > f.to) {
                std::cerr << "ta: --from exceeds --to\n";
                return usage();
            }
            req.windowed = true;
            req.from = f.from;
            req.to = f.to;
        }
    } else if (op == "loss" || op == "stats") {
        req.op = op == "loss" ? Op::Loss : Op::Stats;
        if (pos.size() != 3) {
            std::cerr << "ta: query " << op << " needs <name>\n";
            return usage();
        }
        req.name = pos[2];
    } else {
        std::cerr << "ta: unknown query op: " << op << "\n";
        return usage();
    }

    ClientOptions copt;
    if (f.attempts != 0)
        copt.max_attempts = f.attempts;
    Client client(f.connect, copt);
    const Response rsp = client.callWithRetry(req);
    if (!rsp.warning.empty())
        std::cerr << rsp.warning; // newline-terminated by the server
    if (rsp.status == Status::Ok) {
        std::cout << rsp.body;
        return 0;
    }
    std::cerr << "ta: " << statusName(rsp.status) << ": " << rsp.body
              << "\n";
    const bool typed = rsp.status == Status::RetryAfter ||
                       rsp.status == Status::Timeout ||
                       rsp.status == Status::ShuttingDown;
    return typed ? 3 : 1;
}

/** `ta diff <a.pdt> <b.pdt>` — full differential report or JSON.
 *  Bad values exit 2 with usage; unreadable inputs exit 1. */
int
runDiff(const cell::cli::Flags& f)
{
    using namespace cell;
    const auto& pos = f.positionals;
    if (pos.size() != 3) {
        std::cerr << "ta: diff needs <a.pdt> <b.pdt>\n";
        return usage();
    }
    ta::DiffFileOptions dopt;
    dopt.diff.window = f.window;
    dopt.diff.threshold = f.threshold;
    dopt.threads = f.threads;
    dopt.salvage = f.salvage;
    ta::CancelToken token;
    if (f.deadline_ms != 0) {
        token.setDeadlineAfter(std::chrono::milliseconds(f.deadline_ms));
        dopt.cancel = &token;
    }
    ta::DiffFileOutcome o;
    try {
        o = ta::diffFiles(pos[1], pos[2], dopt);
    } catch (const std::invalid_argument& e) {
        // A window width that explodes the scan is an operator typo.
        std::cerr << "ta: " << e.what() << "\n";
        return usage();
    }
    if (!o.note_a.empty())
        std::cerr << "ta: A: " << o.note_a << "\n";
    if (!o.note_b.empty())
        std::cerr << "ta: B: " << o.note_b << "\n";
    if (f.json)
        std::cout << ta::diffJson(o.result) << "\n";
    else
        std::cout << ta::diffReport(o.result);
    return 0;
}

/** `ta diff-corpus <pairs-file>` — fan trace pairs through a
 *  WorkerPool. Results print in input order whatever the thread
 *  count, so the output is byte-identical at 1/2/4/8 threads. Exit:
 *  0 all pairs ok, 3 some pair hit its deadline, 1 harder errors,
 *  2 usage (malformed pairs file / bad values). */
int
runDiffCorpus(const cell::cli::Flags& f)
{
    using namespace cell;
    const auto& pos = f.positionals;
    if (pos.size() != 2) {
        std::cerr << "ta: diff-corpus needs a pairs file "
                     "(lines: name a.pdt b.pdt)\n";
        return usage();
    }
    struct Pair
    {
        std::string name, a, b;
    };
    std::vector<Pair> pairs;
    {
        std::ifstream in(pos[1]);
        if (!in) {
            std::cerr << "ta: cannot read pairs file: " << pos[1] << "\n";
            return 1;
        }
        std::string line;
        std::size_t lineno = 0;
        while (std::getline(in, line)) {
            ++lineno;
            const std::size_t hash = line.find('#');
            if (hash != std::string::npos)
                line.resize(hash);
            std::istringstream ss(line);
            Pair p;
            std::string extra_tok;
            if (!(ss >> p.name))
                continue; // blank / comment-only line
            if (!(ss >> p.a >> p.b) || (ss >> extra_tok)) {
                std::cerr << "ta: malformed pairs line " << lineno
                          << " (want: name a.pdt b.pdt): " << line << "\n";
                return usage();
            }
            pairs.push_back(std::move(p));
        }
    }

    struct Outcome
    {
        bool ok = false;
        bool timeout = false;
        std::string error;
        std::string note_a, note_b;
        cell::ta::DiffResult diff;
    };
    std::vector<Outcome> results(pairs.size());

    ta::WorkerPool pool(f.threads);
    pool.parallelFor(pairs.size(), [&](std::uint64_t i) {
        Outcome& out = results[i];
        ta::DiffFileOptions dopt;
        dopt.diff.window = f.window;
        dopt.diff.threshold = f.threshold;
        dopt.threads = 1; // corpus-level parallelism only
        dopt.salvage = f.salvage;
        dopt.auto_downgrade = true;
        ta::CancelToken token;
        if (f.deadline_ms != 0) {
            token.setDeadlineAfter(
                std::chrono::milliseconds(f.deadline_ms));
            dopt.cancel = &token;
        }
        try {
            ta::DiffFileOutcome o =
                ta::diffFiles(pairs[i].a, pairs[i].b, dopt);
            out.diff = std::move(o.result);
            out.note_a = std::move(o.note_a);
            out.note_b = std::move(o.note_b);
            out.ok = true;
        } catch (const ta::DeadlineExceeded& e) {
            out.timeout = true;
            out.error = e.what();
        } catch (const std::exception& e) {
            out.error = e.what();
        }
    });

    std::uint64_t diverged = 0, errors = 0, timeouts = 0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
        const Outcome& out = results[i];
        if (f.json) {
            // One JSON object per line, input order.
            std::cout << "{\"pair\":\"" << pairs[i].name << "\",";
            if (out.ok) {
                if (!out.note_a.empty() || !out.note_b.empty())
                    std::cout << "\"degraded\":true,";
                std::cout << "\"diff\":" << ta::diffJson(out.diff) << "}";
            } else {
                std::cout << (out.timeout ? "\"timeout\":true,"
                                          : "\"error\":true,")
                          << "\"message\":\"" << out.error << "\"}";
            }
            std::cout << "\n";
        } else {
            std::cout << "== pair " << pairs[i].name << " ==\n";
            if (!out.note_a.empty())
                std::cout << "A: " << out.note_a << "\n";
            if (!out.note_b.empty())
                std::cout << "B: " << out.note_b << "\n";
            if (out.ok)
                std::cout << ta::diffReport(out.diff) << "\n";
            else
                std::cout << (out.timeout ? "TIMEOUT: " : "ERROR: ")
                          << out.error << "\n\n";
        }
        diverged += out.ok && out.diff.diverged;
        errors += !out.ok && !out.timeout;
        timeouts += out.timeout;
    }
    std::cerr << "ta: diff-corpus: " << pairs.size() << " pair(s), "
              << diverged << " diverged, " << timeouts << " timeout(s), "
              << errors << " error(s)\n";
    if (errors)
        return 1;
    if (timeouts)
        return 3;
    return 0;
}

/** Build a record-kind keep mask from a comma-separated list of API
 *  group names (case-insensitive). Kinds above the known-op range are
 *  always kept — the filter cannot claim to know what they are. */
bool
kindsMaskFromGroups(const std::string& list, std::uint64_t& mask,
                    std::string& error)
{
    using cell::rt::ApiGroup;
    using cell::rt::ApiOp;
    const auto lower = [](std::string s) {
        for (char& c : s)
            c = static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        return s;
    };
    mask = ~std::uint64_t{0} << cell::rt::kNumApiOps;
    std::stringstream ss(list);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
        bool matched = false;
        for (std::size_t g = 0; g < cell::rt::kNumApiGroups; ++g) {
            const auto group = static_cast<ApiGroup>(g);
            if (lower(tok) != lower(cell::rt::apiGroupName(group)))
                continue;
            for (std::size_t k = 0; k < cell::rt::kNumApiOps; ++k) {
                if (cell::rt::apiOpGroup(static_cast<ApiOp>(k)) == group)
                    mask |= std::uint64_t{1} << k;
            }
            matched = true;
            break;
        }
        if (!matched) {
            error = "unknown event group: '" + tok +
                    "' (groups: lifecycle dma dma_wait mailbox signal "
                    "decrementer user)";
            return false;
        }
    }
    return true;
}

/** `ta surgery slice|splice|filter` — structural trace rewrites (see
 *  docs/SURGERY.md). Bad values exit 2 with usage; analysis-grade
 *  failures (unreadable input, splice shape errors detected inside
 *  the library) exit 1 via main's catch. */
int
runSurgery(const cell::cli::Flags& f)
{
    using namespace cell;
    const auto& pos = f.positionals;
    if (pos.size() < 2) {
        std::cerr << "ta: surgery needs an operation: slice, splice, "
                     "filter or delay\n";
        return usage();
    }
    const std::string sub = pos[1];
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    trace::WriteOptions wopt;
    wopt.index_stride = static_cast<std::size_t>(f.index_stride);
    wopt.compress = f.compress;
    const auto loadTrace = [&f](const std::string& p) {
        if (!f.salvage)
            return trace::readFile(p);
        trace::ReadReport report;
        trace::TraceData d = trace::readFileSalvage(p, report);
        if (report.salvaged)
            std::cerr << "ta: " << report.summary() << "\n";
        return d;
    };

    if (sub == "slice") {
        if (pos.size() != 6) {
            std::cerr << "ta: surgery slice needs "
                         "<in.pdt> <out.pdt> <from> <to>\n";
            return usage();
        }
        std::uint64_t from = 0;
        std::uint64_t to = 0;
        if (!cli::parseU64(pos[4], from) || !cli::parseU64(pos[5], to)) {
            std::cerr << "ta: window bounds must be timebase ticks\n";
            return usage();
        }
        if (from > to) {
            std::cerr << "ta: window 'from' exceeds 'to'\n";
            return usage();
        }
        const trace::TraceData in = loadTrace(pos[2]);
        trace::SliceOptions sopt;
        sopt.lenient = f.salvage;
        const trace::TraceData out = trace::slice(in, from, to, sem, sopt);
        trace::writeFile(pos[3], out, wopt);
        std::cout << "sliced " << in.records.size() << " -> "
                  << out.records.size() << " records [" << from << ", "
                  << to << ") -> " << pos[3] << "\n";
        return 0;
    }
    if (sub == "splice") {
        if (pos.size() < 5) {
            std::cerr << "ta: surgery splice needs "
                         "<out.pdt> <a.pdt> <b.pdt> [more...]\n";
            return usage();
        }
        const std::size_t n_inputs = pos.size() - 3;
        if (!f.cuts.empty() && f.cuts.size() != n_inputs - 1) {
            std::cerr << "ta: splice takes one --cut per junction ("
                      << (n_inputs - 1) << " for " << n_inputs
                      << " inputs, got " << f.cuts.size() << ")\n";
            return usage();
        }
        if (f.align && f.blades) {
            std::cerr << "ta: --align shifts onto a shared clock; it "
                         "cannot combine with --blades\n";
            return usage();
        }
        std::vector<trace::TraceData> inputs;
        inputs.reserve(n_inputs);
        for (std::size_t i = 3; i < pos.size(); ++i)
            inputs.push_back(loadTrace(pos[i]));
        trace::SpliceOptions sopt;
        sopt.cuts = f.cuts;
        sopt.align = f.align;
        sopt.blades = f.blades;
        sopt.lenient = f.salvage;
        const trace::TraceData out = trace::splice(inputs, sopt);
        trace::writeFile(pos[2], out, wopt);
        std::cout << "spliced " << n_inputs << " inputs -> "
                  << out.records.size() << " records ("
                  << static_cast<unsigned>(out.header.num_spes)
                  << " SPEs) -> " << pos[2] << "\n";
        return 0;
    }
    if (sub == "filter") {
        if (pos.size() != 4) {
            std::cerr << "ta: surgery filter needs <in.pdt> <out.pdt>\n";
            return usage();
        }
        trace::FilterOptions fopt;
        fopt.lenient = f.salvage;
        if (!f.cores_list.empty()) {
            std::stringstream ss(f.cores_list);
            std::string tok;
            while (std::getline(ss, tok, ',')) {
                std::uint64_t c = 0;
                if (!cli::parseU64(tok, c) || c > 0xFFFF) {
                    std::cerr << "ta: --cores takes comma-separated "
                                 "core ids, got: '" << tok << "'\n";
                    return usage();
                }
                fopt.cores.push_back(static_cast<std::uint16_t>(c));
            }
        }
        if (!f.kinds_list.empty()) {
            std::string err;
            if (!kindsMaskFromGroups(f.kinds_list, fopt.kind_mask, err)) {
                std::cerr << "ta: " << err << "\n";
                return usage();
            }
        }
        const trace::TraceData in = loadTrace(pos[2]);
        trace::TraceData out;
        try {
            out = trace::filter(in, fopt);
        } catch (const std::invalid_argument& e) {
            // A core id beyond the trace's range is an operator typo,
            // not an analysis failure.
            std::cerr << "ta: " << e.what() << "\n";
            return usage();
        }
        trace::writeFile(pos[3], out, wopt);
        std::cout << "filtered " << in.records.size() << " -> "
                  << out.records.size() << " records -> " << pos[3]
                  << "\n";
        return 0;
    }
    if (sub == "delay") {
        if (pos.size() != 6) {
            std::cerr << "ta: surgery delay needs "
                         "<in.pdt> <out.pdt> <at> <delta>\n";
            return usage();
        }
        trace::DelayOptions dopt;
        dopt.lenient = f.salvage;
        if (!cli::parseU64(pos[4], dopt.at) ||
            !cli::parseU64(pos[5], dopt.delta)) {
            std::cerr << "ta: delay <at> and <delta> must be timebase "
                         "ticks\n";
            return usage();
        }
        if (!f.cores_list.empty()) {
            std::uint64_t c = 0;
            if (!cli::parseU64(f.cores_list, c) || c > 0xFFFF) {
                std::cerr << "ta: delay takes a single core id via "
                             "--cores, got: '" << f.cores_list << "'\n";
                return usage();
            }
            dopt.core = static_cast<int>(c);
        }
        const trace::TraceData in = loadTrace(pos[2]);
        trace::TraceData out;
        try {
            out = trace::delay(in, dopt);
        } catch (const std::invalid_argument& e) {
            std::cerr << "ta: " << e.what() << "\n";
            return usage();
        }
        trace::writeFile(pos[3], out, wopt);
        std::cout << "delayed "
                  << (dopt.core < 0 ? std::string("all cores")
                                    : "core " + std::to_string(dopt.core))
                  << " by " << dopt.delta << " ticks from tick " << dopt.at
                  << " -> " << pos[3] << "\n";
        return 0;
    }
    std::cerr << "ta: unknown surgery op: " << sub << "\n";
    return usage();
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace cell;
    cli::FlagSpec spec;
    spec.salvage = true;
    spec.threads = true;
    spec.window = true;
    spec.full_scan = true;
    spec.compress = true;
    spec.serve = true;
    spec.connect = true;
    spec.deadline = true;
    spec.surgery = true;
    spec.index = true;
    spec.diff = true;
    cli::Flags f;
    f.threads = 0; // 0 = hardware concurrency
    if (!cli::parseFlags(argc, argv, spec, f)) {
        std::cerr << "ta: " << f.error << "\n";
        return usage();
    }
    const bool salvage = f.salvage;
    const unsigned threads = f.threads;
    const auto& pos = f.positionals;
    if (pos.size() < 2)
        return usage();
    const std::string cmd = pos[0];
    const std::string path = pos[1];
    const auto extra = [&pos](std::size_t i) -> const std::string& {
        return pos[i + 2];
    };
    const std::size_t n_extra = pos.size() - 2;

    try {
        if (cmd == "serve")
            return runServe(f);
        if (cmd == "query")
            return runQuery(f);
        if (cmd == "surgery")
            return runSurgery(f);
        if (cmd == "diff")
            return runDiff(f);
        if (cmd == "diff-corpus")
            return runDiffCorpus(f);
        if (cmd == "convert") {
            if (n_extra < 1)
                return usage();
            const std::string out_path = extra(0);
            const trace::TraceData data = trace::readFile(path);
            trace::WriteOptions wopt;
            wopt.compress = f.compress;
            // Carry a valid footer index over at its original stride;
            // a damaged or absent one is simply not rewritten.
            const trace::IndexReadResult ir = trace::readIndexFile(path);
            if (ir.valid)
                wopt.index_stride = ir.index.header.stride;
            trace::writeFile(out_path, data, wopt);
            const trace::BlockRegionProbe probe =
                trace::probeBlockRegionFile(out_path);
            std::cout << "converted " << data.records.size() << " records -> "
                      << out_path << " ("
                      << (probe.present ? "v3 compressed" : "v1")
                      << (wopt.index_stride
                              ? ", index stride " +
                                    std::to_string(wopt.index_stride)
                              : std::string())
                      << ")\n";
            return 0;
        }
        if (cmd == "compare") {
            if (n_extra < 1)
                return usage();
            const ta::Analysis a = load(path, salvage, threads);
            const ta::Analysis b = load(extra(0), salvage, threads);
            // A misaligned table is worse than no table: refuse
            // mismatched core maps with both maps printed (use `ta
            // diff`, which aligns by label, for cross-shape runs).
            const std::string mismatch = ta::coreMapMismatch(a, b);
            if (!mismatch.empty()) {
                std::cerr << "ta: " << mismatch;
                return 1;
            }
            ta::printComparison(std::cout, a, b);
            return 0;
        }
        if (cmd == "window") {
            if (n_extra < 2)
                return usage();
            std::uint64_t from = 0;
            std::uint64_t to = 0;
            if (!cli::parseU64(extra(0), from) ||
                !cli::parseU64(extra(1), to)) {
                std::cerr << "ta: window bounds must be timebase ticks\n";
                return usage();
            }
            if (from > to) {
                std::cerr << "ta: window 'from' exceeds 'to'\n";
                return usage();
            }
            ta::QueryOptions qopt;
            qopt.threads = threads;
            qopt.salvage = salvage;
            qopt.force_full_scan = f.full_scan;
            const ta::WindowResult w =
                ta::queryWindowFile(path, from, to, qopt);
            std::cerr << "ta: " << (w.used_index ? "indexed" : "full-scan")
                      << " query, " << w.records_scanned
                      << " records scanned\n";
            std::cout << ta::windowReport(w);
            return 0;
        }
        if (cmd == "profile") {
            unsigned buckets = 60;
            if (n_extra >= 1) {
                std::uint64_t b = 0;
                if (!cli::parseU64(extra(0), b) || b == 0) {
                    std::cerr << "ta: buckets must be a positive count\n";
                    return usage();
                }
                buckets = static_cast<unsigned>(b);
            }
            if (f.have_from && f.have_to && f.from > f.to) {
                std::cerr << "ta: --from exceeds --to\n";
                return usage();
            }
            if (f.have_from || f.have_to) {
                ta::QueryOptions qopt;
                qopt.threads = threads;
                qopt.salvage = salvage;
                qopt.force_full_scan = f.full_scan;
                const ta::WindowResult w =
                    ta::queryWindowFile(path, f.from, f.to, qopt);
                std::cerr << "ta: "
                          << (w.used_index ? "indexed" : "full-scan")
                          << " query, " << w.records_scanned
                          << " records scanned\n";
                ta::printActivity(std::cout, ta::windowAnalysis(w), buckets);
            } else {
                ta::printActivity(std::cout, load(path, salvage, threads),
                                  buckets);
            }
            return 0;
        }

        const ta::Analysis a = load(path, salvage, threads);
        if (cmd == "summary") {
            ta::printSummary(std::cout, a);
        } else if (cmd == "breakdown") {
            ta::printStallBreakdown(std::cout, a);
        } else if (cmd == "dma") {
            ta::printDmaReport(std::cout, a);
            std::cout << "\n";
            ta::printDmaHistogram(std::cout, a);
        } else if (cmd == "events") {
            ta::printEventCounts(std::cout, a);
        } else if (cmd == "tracing") {
            ta::printTracingReport(std::cout, a);
        } else if (cmd == "loss") {
            ta::printLossReport(std::cout, a);
        } else if (cmd == "timeline") {
            ta::TimelineOptions opt;
            if (n_extra >= 1) {
                std::uint64_t w = 0;
                if (!cli::parseU64(extra(0), w) || w == 0) {
                    std::cerr << "ta: width must be a positive count\n";
                    return usage();
                }
                opt.width = static_cast<unsigned>(w);
            }
            std::cout << ta::renderAscii(a.model, a.intervals, opt);
        } else if (cmd == "activity") {
            unsigned buckets = 60;
            if (n_extra >= 1) {
                std::uint64_t b = 0;
                if (!cli::parseU64(extra(0), b) || b == 0) {
                    std::cerr << "ta: buckets must be a positive count\n";
                    return usage();
                }
                buckets = static_cast<unsigned>(b);
            }
            ta::printActivity(std::cout, a, buckets);
        } else if (cmd == "html") {
            if (n_extra < 1)
                return usage();
            ta::writeHtmlReport(extra(0), a, path);
            std::cout << "wrote " << extra(0) << "\n";
        } else if (cmd == "svg") {
            if (n_extra < 1)
                return usage();
            ta::writeSvg(extra(0), a.model, a.intervals,
                         ta::TimelineOptions{.width = 900});
            std::cout << "wrote " << extra(0) << "\n";
        } else if (cmd == "csv") {
            if (n_extra < 1)
                return usage();
            std::ofstream os(extra(0));
            ta::exportBreakdownCsv(os, a);
            std::cout << "wrote " << extra(0) << "\n";
        } else if (cmd == "intervals") {
            if (n_extra < 1)
                return usage();
            std::ofstream os(extra(0));
            ta::exportIntervalsCsv(os, a);
            std::cout << "wrote " << extra(0) << "\n";
        } else if (cmd == "transfers") {
            if (n_extra < 1)
                return usage();
            std::ofstream os(extra(0));
            ta::exportDmaTransfersCsv(os, a);
            std::cout << "wrote " << extra(0) << "\n";
        } else if (cmd == "all") {
            ta::printSummary(std::cout, a);
            std::cout << "\n";
            ta::printStallBreakdown(std::cout, a);
            std::cout << "\n";
            ta::printDmaReport(std::cout, a);
            std::cout << "\n";
            ta::printDmaHistogram(std::cout, a);
            std::cout << "\n";
            ta::printEventCounts(std::cout, a);
            std::cout << "\n";
            ta::printTracingReport(std::cout, a);
            std::cout << "\n";
            ta::printLossReport(std::cout, a);
            std::cout << "\n"
                      << ta::renderAscii(a.model, a.intervals) << "\n";
            ta::printActivity(std::cout, a);
        } else {
            return usage();
        }
    } catch (const std::exception& e) {
        std::cerr << "ta: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
