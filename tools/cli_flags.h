/**
 * @file
 * Shared command-line flag parsing for the trace tools (`ta`,
 * `pdt_dump`). Each tool declares which flags it understands via
 * FlagSpec; flags may appear anywhere and are compacted out, leaving
 * the positionals in order. An unknown flag (or a flag missing its
 * argument) fails the parse with a message — the tools print it plus
 * their usage and exit non-zero, so a typo never silently becomes a
 * file name.
 */

#ifndef CELL_TOOLS_CLI_FLAGS_H
#define CELL_TOOLS_CLI_FLAGS_H

#include <cstdint>
#include <string>
#include <vector>

namespace cell::cli {

/** Which flags a tool accepts. */
struct FlagSpec
{
    bool salvage = false;   ///< --salvage
    bool threads = false;   ///< --threads N
    bool resolved = false;  ///< --resolved (pdt_dump)
    bool window = false;    ///< --from T / --to T (timebase ticks)
    bool full_scan = false; ///< --full-scan (ignore any v2 index)
    bool compress = false;  ///< --compress (write v3 blocks)
    bool serve = false;     ///< --workers/--queue-depth/--per-query/
                            ///  --max-conns/--faults (ta serve)
    bool connect = false;   ///< --connect PATH/--attempts (ta query)
    bool deadline = false;  ///< --deadline-ms N (serve + query)
    bool surgery = false;   ///< --cut T (repeatable)/--cores LIST/
                            ///  --kinds LIST/--blades/--align
                            ///  (ta surgery)
    bool gen = false;       ///< --seed/--scenario/--spes/--records/
                            ///  --sweep/--out-dir/--adversarial/
                            ///  --list-scenarios (trace_gen)
    bool index = false;     ///< --index N (output index stride)
    bool diff = false;      ///< --window N/--threshold N/--json
                            ///  (ta diff / diff-corpus)
};

/** Parsed flags + remaining positionals. Defaults that differ per
 *  tool (e.g. thread count) are set by the caller BEFORE parsing;
 *  parseFlags only overwrites what was given on the command line. */
struct Flags
{
    bool salvage = false;
    bool resolved = false;
    bool full_scan = false;
    bool compress = false;
    unsigned threads = 0;
    bool have_from = false;
    bool have_to = false;
    std::uint64_t from = 0;
    std::uint64_t to = ~std::uint64_t{0};
    unsigned workers = 0;          ///< 0 = tool default
    std::uint64_t queue_depth = 0; ///< 0 = tool default
    unsigned per_query = 0;        ///< 0 = tool default
    unsigned max_conns = 0;        ///< 0 = tool default
    unsigned attempts = 0;         ///< 0 = tool default
    std::uint64_t deadline_ms = 0; ///< 0 = server default
    std::string faults_path;       ///< --faults FILE (fault plan)
    std::string connect;           ///< --connect SOCKET
    std::vector<std::uint64_t> cuts; ///< --cut T, one per junction
    std::string cores_list;        ///< --cores 0,2 (comma separated)
    std::string kinds_list;        ///< --kinds dma,mailbox (groups)
    bool blades = false;           ///< --blades (stack core spaces)
    bool align = false;            ///< --align (shift to common start)
    std::uint64_t index_stride = 0; ///< --index N (0 = no index)
    std::uint64_t seed = 1;        ///< --seed N (generator)
    std::string scenario;          ///< --scenario NAME ("" = derived)
    std::uint64_t spes = 0;        ///< --spes N (0 = scenario default)
    std::uint64_t records = 0;     ///< --records N (0 = default)
    std::uint64_t sweep = 0;       ///< --sweep N (corpus mode)
    std::string out_dir;           ///< --out-dir DIR (corpus mode)
    bool adversarial = false;      ///< --adversarial (mutate output)
    bool perturb = false;          ///< --perturb (sweep A/B pairs)
    bool list_scenarios = false;   ///< --list-scenarios
    std::uint64_t window = 0;      ///< --window N ticks (0 = auto)
    std::uint64_t threshold = 0;   ///< --threshold N (divergence score)
    bool json = false;             ///< --json (machine-readable diff)
    std::vector<std::string> positionals;
    std::string error; ///< set when parseFlags returns false
};

/** Parse argv[1..argc) against @p spec into @p out. Returns false
 *  (with out.error set) on an unknown flag or a malformed argument. */
bool parseFlags(int argc, char** argv, const FlagSpec& spec, Flags& out);

/** Strict unsigned parse: the whole string must be a number. The
 *  tools use it on numeric positionals too, so a typo'd value exits
 *  with usage (2) instead of an analysis error (1). */
bool parseU64(const std::string& s, std::uint64_t& out);

} // namespace cell::cli

#endif // CELL_TOOLS_CLI_FLAGS_H
