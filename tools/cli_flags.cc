/**
 * @file
 * Shared tool flag parser implementation.
 */

#include "cli_flags.h"

#include <stdexcept>

namespace cell::cli {

bool
parseU64(const std::string& s, std::uint64_t& out)
{
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (const std::exception&) {
        return false;
    }
}

namespace {

/** Flags taking a numeric argument share this shape. */
bool
numericArg(int argc, char** argv, int& i, const char* what,
           std::uint64_t& v, std::string& error)
{
    if (i + 1 >= argc || !parseU64(argv[++i], v)) {
        error = std::string(what) + " requires a number";
        return false;
    }
    return true;
}

} // namespace

bool
parseFlags(int argc, char** argv, const FlagSpec& spec, Flags& out)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool is_flag = arg.rfind("-", 0) == 0 && arg.size() > 1;
        if (!is_flag) {
            out.positionals.push_back(arg);
            continue;
        }
        if (spec.salvage && arg == "--salvage") {
            out.salvage = true;
        } else if (spec.resolved && arg == "--resolved") {
            out.resolved = true;
        } else if (spec.full_scan && arg == "--full-scan") {
            out.full_scan = true;
        } else if (spec.compress && arg == "--compress") {
            out.compress = true;
        } else if (spec.threads && arg == "--threads") {
            std::uint64_t v = 0;
            if (i + 1 >= argc || !parseU64(argv[++i], v)) {
                out.error = "--threads requires a number";
                return false;
            }
            out.threads = static_cast<unsigned>(v);
        } else if (spec.window && arg == "--from") {
            if (i + 1 >= argc || !parseU64(argv[++i], out.from)) {
                out.error = "--from requires a timebase tick";
                return false;
            }
            out.have_from = true;
        } else if (spec.window && arg == "--to") {
            if (i + 1 >= argc || !parseU64(argv[++i], out.to)) {
                out.error = "--to requires a timebase tick";
                return false;
            }
            out.have_to = true;
        } else if (spec.serve && arg == "--workers") {
            std::uint64_t v = 0;
            if (!numericArg(argc, argv, i, "--workers", v, out.error))
                return false;
            out.workers = static_cast<unsigned>(v);
        } else if (spec.serve && arg == "--queue-depth") {
            if (!numericArg(argc, argv, i, "--queue-depth",
                            out.queue_depth, out.error))
                return false;
        } else if (spec.serve && arg == "--per-query") {
            std::uint64_t v = 0;
            if (!numericArg(argc, argv, i, "--per-query", v, out.error))
                return false;
            out.per_query = static_cast<unsigned>(v);
        } else if (spec.serve && arg == "--max-conns") {
            std::uint64_t v = 0;
            if (!numericArg(argc, argv, i, "--max-conns", v, out.error))
                return false;
            out.max_conns = static_cast<unsigned>(v);
        } else if (spec.serve && arg == "--faults") {
            if (i + 1 >= argc) {
                out.error = "--faults requires a plan file";
                return false;
            }
            out.faults_path = argv[++i];
        } else if (spec.connect && arg == "--connect") {
            if (i + 1 >= argc) {
                out.error = "--connect requires a socket path";
                return false;
            }
            out.connect = argv[++i];
        } else if (spec.connect && arg == "--attempts") {
            std::uint64_t v = 0;
            if (!numericArg(argc, argv, i, "--attempts", v, out.error))
                return false;
            out.attempts = static_cast<unsigned>(v);
        } else if (spec.deadline && arg == "--deadline-ms") {
            if (!numericArg(argc, argv, i, "--deadline-ms",
                            out.deadline_ms, out.error))
                return false;
        } else if (spec.surgery && arg == "--cut") {
            std::uint64_t v = 0;
            if (!numericArg(argc, argv, i, "--cut", v, out.error))
                return false;
            out.cuts.push_back(v);
        } else if (spec.surgery && arg == "--cores") {
            if (i + 1 >= argc) {
                out.error = "--cores requires a core list (e.g. 0,2)";
                return false;
            }
            out.cores_list = argv[++i];
        } else if (spec.surgery && arg == "--kinds") {
            if (i + 1 >= argc) {
                out.error = "--kinds requires a group list "
                            "(e.g. dma,mailbox)";
                return false;
            }
            out.kinds_list = argv[++i];
        } else if (spec.surgery && arg == "--blades") {
            out.blades = true;
        } else if (spec.surgery && arg == "--align") {
            out.align = true;
        } else if (spec.index && arg == "--index") {
            if (!numericArg(argc, argv, i, "--index",
                            out.index_stride, out.error))
                return false;
        } else if (spec.gen && arg == "--seed") {
            if (!numericArg(argc, argv, i, "--seed", out.seed,
                            out.error))
                return false;
        } else if (spec.gen && arg == "--scenario") {
            if (i + 1 >= argc) {
                out.error = "--scenario requires a name "
                            "(see --list-scenarios)";
                return false;
            }
            out.scenario = argv[++i];
        } else if (spec.gen && arg == "--spes") {
            if (!numericArg(argc, argv, i, "--spes", out.spes,
                            out.error))
                return false;
        } else if (spec.gen && arg == "--records") {
            if (!numericArg(argc, argv, i, "--records", out.records,
                            out.error))
                return false;
        } else if (spec.gen && arg == "--sweep") {
            if (!numericArg(argc, argv, i, "--sweep", out.sweep,
                            out.error))
                return false;
        } else if (spec.gen && arg == "--out-dir") {
            if (i + 1 >= argc) {
                out.error = "--out-dir requires a directory";
                return false;
            }
            out.out_dir = argv[++i];
        } else if (spec.diff && arg == "--window") {
            if (!numericArg(argc, argv, i, "--window", out.window,
                            out.error))
                return false;
            if (out.window == 0) {
                out.error = "--window must be a positive tick width";
                return false;
            }
        } else if (spec.diff && arg == "--threshold") {
            if (!numericArg(argc, argv, i, "--threshold", out.threshold,
                            out.error))
                return false;
        } else if (spec.diff && arg == "--json") {
            out.json = true;
        } else if (spec.gen && arg == "--adversarial") {
            out.adversarial = true;
        } else if (spec.gen && arg == "--perturb") {
            out.perturb = true;
        } else if (spec.gen && arg == "--list-scenarios") {
            out.list_scenarios = true;
        } else {
            out.error = "unknown flag: " + arg;
            return false;
        }
    }
    return true;
}

} // namespace cell::cli
