/**
 * @file
 * Shared tool flag parser implementation.
 */

#include "cli_flags.h"

#include <stdexcept>

namespace cell::cli {

namespace {

bool
parseU64(const std::string& s, std::uint64_t& out)
{
    try {
        std::size_t pos = 0;
        out = std::stoull(s, &pos);
        return pos == s.size();
    } catch (const std::exception&) {
        return false;
    }
}

} // namespace

bool
parseFlags(int argc, char** argv, const FlagSpec& spec, Flags& out)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const bool is_flag = arg.rfind("-", 0) == 0 && arg.size() > 1;
        if (!is_flag) {
            out.positionals.push_back(arg);
            continue;
        }
        if (spec.salvage && arg == "--salvage") {
            out.salvage = true;
        } else if (spec.resolved && arg == "--resolved") {
            out.resolved = true;
        } else if (spec.full_scan && arg == "--full-scan") {
            out.full_scan = true;
        } else if (spec.compress && arg == "--compress") {
            out.compress = true;
        } else if (spec.threads && arg == "--threads") {
            std::uint64_t v = 0;
            if (i + 1 >= argc || !parseU64(argv[++i], v)) {
                out.error = "--threads requires a number";
                return false;
            }
            out.threads = static_cast<unsigned>(v);
        } else if (spec.window && arg == "--from") {
            if (i + 1 >= argc || !parseU64(argv[++i], out.from)) {
                out.error = "--from requires a timebase tick";
                return false;
            }
            out.have_from = true;
        } else if (spec.window && arg == "--to") {
            if (i + 1 >= argc || !parseU64(argv[++i], out.to)) {
                out.error = "--to requires a timebase tick";
                return false;
            }
            out.have_to = true;
        } else {
            out.error = "unknown flag: " + arg;
            return false;
        }
    }
    return true;
}

} // namespace cell::cli
