/**
 * @file
 * `pdt_record` — run a workload under PDT and write the trace.
 *
 * The command-line face of the tracer (the paper's PDT shipped as a
 * runtime plus launcher scripts; this plays the launcher):
 *
 *   pdt_record <workload> <out.pdt> [--config file] [--spes N]
 *              [--compress]
 *
 * `--compress` writes the v3 block container (smaller on disk, decoded
 * transparently by every reader — see docs/TRACE_FORMAT.md).
 *
 * Workloads: triad triad1 triad3 matmul matmul-skewed conv2d fft
 *            reduction reduction-chatty pipeline gather
 *
 * The optional config file uses PDT's key=value format, e.g.
 *   groups=DMA,DMA_WAIT
 *   buffer=8192
 *   double_buffer=1
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "pdt/tracer.h"
#include "trace/writer.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/gather.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/reduction.h"
#include "wl/triad.h"

namespace {

using namespace cell;

std::unique_ptr<wl::WorkloadBase>
makeWorkload(const std::string& name, rt::CellSystem& sys,
             std::uint32_t spes)
{
    if (name == "triad" || name == "triad1" || name == "triad3") {
        wl::TriadParams p;
        p.n_spes = spes;
        p.buffering = name == "triad1" ? 1 : (name == "triad3" ? 3 : 2);
        return std::make_unique<wl::Triad>(sys, p);
    }
    if (name == "matmul" || name == "matmul-skewed") {
        wl::MatmulParams p;
        p.n_spes = spes;
        p.skew = name == "matmul-skewed" ? 4 : 0;
        return std::make_unique<wl::Matmul>(sys, p);
    }
    if (name == "conv2d") {
        wl::Conv2dParams p;
        p.n_spes = spes;
        return std::make_unique<wl::Conv2d>(sys, p);
    }
    if (name == "fft") {
        wl::FftParams p;
        p.n_spes = spes;
        return std::make_unique<wl::Fft>(sys, p);
    }
    if (name == "reduction" || name == "reduction-chatty") {
        wl::ReductionParams p;
        p.n_spes = spes;
        p.report_every_tile = name == "reduction-chatty";
        return std::make_unique<wl::Reduction>(sys, p);
    }
    if (name == "pipeline") {
        wl::PipelineParams p;
        p.n_stages = std::max(2u, spes);
        return std::make_unique<wl::Pipeline>(sys, p);
    }
    if (name == "gather") {
        wl::GatherParams p;
        p.n_spes = spes;
        return std::make_unique<wl::Gather>(sys, p);
    }
    throw std::invalid_argument("unknown workload '" + name + "'");
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 3) {
        std::cerr << "usage: pdt_record <workload> <out.pdt> "
                     "[--config file] [--spes N] [--compress]\n";
        return 2;
    }
    const std::string workload = argv[1];
    const std::string out_path = argv[2];
    pdt::PdtConfig cfg;
    std::uint32_t spes = 8;
    bool compress = false;
    for (int i = 3; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--compress") {
            compress = true;
        } else if (flag == "--config" && i + 1 < argc) {
            std::ifstream is(argv[++i]);
            if (!is) {
                std::cerr << "pdt_record: cannot open config " << argv[i]
                          << "\n";
                return 1;
            }
            std::ostringstream ss;
            ss << is.rdbuf();
            cfg = pdt::PdtConfig::parse(ss.str(), cfg);
        } else if (flag == "--spes" && i + 1 < argc) {
            spes = static_cast<std::uint32_t>(std::stoul(argv[++i]));
        } else {
            std::cerr << "pdt_record: unknown flag " << flag << "\n";
            return 2;
        }
    }

    try {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys, cfg);
        auto w = makeWorkload(workload, sys, spes);
        w->start();
        sys.run();
        if (!w->verify()) {
            std::cerr << "pdt_record: workload verification FAILED\n";
            return 1;
        }
        const trace::TraceData data = tracer.finalize();
        trace::WriteOptions wopt;
        wopt.compress = compress;
        trace::writeFile(out_path, data, wopt);
        std::cout << "recorded " << data.records.size() << " records ("
                  << data.records.size() * sizeof(trace::Record)
                  << " bytes" << (compress ? ", v3 compressed" : "")
                  << ") in " << w->elapsed() << " cycles -> " << out_path
                  << "\n";
    } catch (const std::exception& e) {
        std::cerr << "pdt_record: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
