/**
 * @file
 * Overflow-policy tests: every OverflowPolicy under arena pressure,
 * exact drop accounting (in-trace drop markers sum to the dropped
 * counter), and recovery from fault-injected transient exhaustion.
 */

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "ta/model.h"

namespace cell::pdt {
namespace {

using rt::CellSystem;
using rt::CoTask;
using rt::SpuEnv;
using rt::SpuProgramImage;

CoTask<void>
emitUserEvents(SpuEnv& env)
{
    for (std::uint32_t i = 0; i < 100; ++i)
        co_await env.userEvent(i, i * 10);
}

struct TracedRun
{
    trace::TraceData data;
    PdtStats stats;
    bool accounting_ok = false;
};

/** Run a one-SPE program under @p cfg on a machine with @p mcfg. */
TracedRun
runTraced(PdtConfig cfg, sim::MachineConfig mcfg = {})
{
    CellSystem sys(mcfg);
    Pdt tracer(sys, cfg);
    sys.runPpe([&](rt::PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.name = "overflow";
        img.main = emitUserEvents;
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();
    TracedRun out;
    out.data = tracer.finalize();
    out.stats = tracer.stats();
    out.accounting_ok = tracer.dropAccountingConsistent(0);
    return out;
}

/** Sum of drop-marker gap counts (record.a) for one core. */
std::uint64_t
sumDropMarkers(const trace::TraceData& data, std::uint16_t core)
{
    std::uint64_t sum = 0;
    for (const auto& rec : data.records) {
        if (rec.core == core && rec.kind == trace::kDropRecord)
            sum += rec.a;
    }
    return sum;
}

/** The tiny-arena config that forces overflow for every policy. */
PdtConfig
tinyArena(OverflowPolicy policy)
{
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256;     // 8 records per half
    cfg.arena_bytes_per_spe = 512;  // 2 flushed halves max
    cfg.overflow_policy = policy;
    return cfg;
}

TEST(Overflow, StopPolicyMarkersCoverEveryDrop)
{
    const TracedRun r = runTraced(tinyArena(OverflowPolicy::Stop));
    EXPECT_TRUE(r.stats.spu[0].overflowed);
    EXPECT_GT(r.stats.spu[0].dropped, 0u);
    EXPECT_GT(r.stats.spu[0].failed_flushes, 0u);
    EXPECT_TRUE(r.accounting_ok);
    // Exactness: the drop markers in the final trace account for every
    // single lost event.
    EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped);
    EXPECT_NO_THROW(ta::TraceModel::build(r.data));
}

TEST(Overflow, DropWithMarkerKeepsTracing)
{
    const TracedRun r = runTraced(tinyArena(OverflowPolicy::DropWithMarker));
    // Unlike Stop, the tracer keeps going: it never flips overflowed.
    EXPECT_FALSE(r.stats.spu[0].overflowed);
    EXPECT_GT(r.stats.spu[0].dropped, 0u);
    EXPECT_TRUE(r.accounting_ok);
    EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped);
    EXPECT_NO_THROW(ta::TraceModel::build(r.data));
}

TEST(Overflow, WrapOldestKeepsMostRecentWindowWithExactMarkers)
{
    const TracedRun r = runTraced(tinyArena(OverflowPolicy::WrapOldest));
    EXPECT_FALSE(r.stats.spu[0].overflowed);
    EXPECT_GT(r.stats.spu[0].dropped, 0u);
    EXPECT_TRUE(r.accounting_ok);
    EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped);

    // The surviving user events are the most recent, in order.
    std::vector<std::uint64_t> ids;
    for (const auto& rec : r.data.records) {
        if (rec.kind == static_cast<std::uint8_t>(rt::ApiOp::SpuUserEvent))
            ids.push_back(rec.a);
    }
    ASSERT_FALSE(ids.empty());
    EXPECT_EQ(ids.back(), 99u);
    for (std::size_t i = 1; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], ids[i - 1] + 1);
    EXPECT_NO_THROW(ta::TraceModel::build(r.data));
}

TEST(Overflow, LegacyWrapArenaFlagStillWraps)
{
    PdtConfig cfg = tinyArena(OverflowPolicy::Stop);
    cfg.wrap_arena = true;
    EXPECT_EQ(cfg.effectivePolicy(), OverflowPolicy::WrapOldest);
    const TracedRun r = runTraced(cfg);
    EXPECT_FALSE(r.stats.spu[0].overflowed);
    EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped);
}

TEST(Overflow, BlockAndFlushSurvivesTransientExhaustion)
{
    // Fault injection: flush attempts 1 and 2 see a full arena; the
    // block policy waits them out, so nothing is lost.
    sim::MachineConfig mcfg;
    mcfg.faults.arena_exhaust_begin = 1;
    mcfg.faults.arena_exhaust_end = 3;

    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256;
    cfg.overflow_policy = OverflowPolicy::BlockAndFlush;
    cfg.block_max_retries = 4;
    cfg.block_backoff_cycles = 500;

    const TracedRun r = runTraced(cfg, mcfg);
    EXPECT_EQ(r.stats.spu[0].dropped, 0u);
    EXPECT_GT(r.stats.spu[0].block_retries, 0u);
    EXPECT_GT(r.stats.spu[0].flush_wait_cycles, 0u);
    EXPECT_TRUE(r.accounting_ok);
    EXPECT_EQ(sumDropMarkers(r.data, 1), 0u);

    // All 100 user events made it.
    std::uint64_t n = 0;
    for (const auto& rec : r.data.records) {
        if (rec.kind == static_cast<std::uint8_t>(rt::ApiOp::SpuUserEvent))
            ++n;
    }
    EXPECT_EQ(n, 100u);
}

TEST(Overflow, DropPolicyLosesWhatBlockSavesUnderSameFaults)
{
    sim::MachineConfig mcfg;
    mcfg.faults.arena_exhaust_begin = 1;
    mcfg.faults.arena_exhaust_end = 3;

    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256;
    cfg.overflow_policy = OverflowPolicy::DropWithMarker;

    const TracedRun r = runTraced(cfg, mcfg);
    EXPECT_GT(r.stats.spu[0].dropped, 0u);
    EXPECT_TRUE(r.accounting_ok);
    EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped);
}

TEST(Overflow, BlockFallsBackToDroppingWhenArenaStaysFull)
{
    // A genuinely full (tiny) arena never frees: block must exhaust
    // its retries and then shed the half rather than hang.
    PdtConfig cfg = tinyArena(OverflowPolicy::BlockAndFlush);
    cfg.block_max_retries = 2;
    cfg.block_backoff_cycles = 100;
    const TracedRun r = runTraced(cfg);
    EXPECT_GT(r.stats.spu[0].dropped, 0u);
    EXPECT_GT(r.stats.spu[0].block_retries, 0u);
    EXPECT_GT(r.stats.spu[0].failed_flushes, 0u);
    EXPECT_TRUE(r.accounting_ok);
    EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped);
}

TEST(Overflow, EveryPolicyYieldsAnalyzableTraceWithExactAccounting)
{
    for (const OverflowPolicy policy :
         {OverflowPolicy::Stop, OverflowPolicy::DropWithMarker,
          OverflowPolicy::BlockAndFlush, OverflowPolicy::WrapOldest}) {
        PdtConfig cfg = tinyArena(policy);
        cfg.block_max_retries = 2;
        const TracedRun r = runTraced(cfg);
        EXPECT_TRUE(r.accounting_ok) << overflowPolicyName(policy);
        EXPECT_EQ(sumDropMarkers(r.data, 1), r.stats.spu[0].dropped)
            << overflowPolicyName(policy);
        EXPECT_NO_THROW(ta::TraceModel::build(r.data))
            << overflowPolicyName(policy);
    }
}

TEST(Overflow, ConfigParsesPolicies)
{
    EXPECT_EQ(PdtConfig::parse("overflow=stop").overflow_policy,
              OverflowPolicy::Stop);
    EXPECT_EQ(PdtConfig::parse("overflow=drop").overflow_policy,
              OverflowPolicy::DropWithMarker);
    const PdtConfig blk = PdtConfig::parse("overflow=block\n"
                                           "block_retries=3\n"
                                           "block_backoff=750\n");
    EXPECT_EQ(blk.overflow_policy, OverflowPolicy::BlockAndFlush);
    EXPECT_EQ(blk.block_max_retries, 3u);
    EXPECT_EQ(blk.block_backoff_cycles, 750u);
    EXPECT_EQ(PdtConfig::parse("overflow=wrap").overflow_policy,
              OverflowPolicy::WrapOldest);
    EXPECT_THROW(PdtConfig::parse("overflow=bogus"), std::invalid_argument);
    EXPECT_THROW(PdtConfig::parse("overflow=block\nblock_retries=0"),
                 std::invalid_argument);
}

} // namespace
} // namespace cell::pdt
