/**
 * @file
 * PDT tracer tests: buffer mechanics, flushing, filtering, overhead
 * accounting, LS reservation, arena overflow.
 */

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "ta/model.h"
#include "wl/triad.h"

namespace cell::pdt {
namespace {

using rt::CellSystem;
using rt::CoTask;
using rt::SpuEnv;
using rt::SpuProgramImage;

/** Run a one-SPE program under a tracer with config @p cfg. */
template <typename Fn>
trace::TraceData
traceProgram(Fn body, PdtConfig cfg = {}, CellSystem* ext_sys = nullptr,
             PdtStats* out_stats = nullptr)
{
    CellSystem local_sys;
    CellSystem& sys = ext_sys ? *ext_sys : local_sys;
    Pdt tracer(sys, cfg);
    sys.runPpe([&](rt::PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.name = "traced";
        img.main = body;
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();
    if (out_stats)
        *out_stats = tracer.stats();
    return tracer.finalize();
}

CoTask<void>
emitUserEvents(SpuEnv& env)
{
    for (std::uint32_t i = 0; i < 100; ++i)
        co_await env.userEvent(i, i * 10);
}

TEST(Pdt, RecordsUserEventsInOrder)
{
    const trace::TraceData data = traceProgram(emitUserEvents);
    std::vector<std::uint64_t> ids;
    for (const auto& rec : data.records) {
        if (rec.kind == static_cast<std::uint8_t>(rt::ApiOp::SpuUserEvent))
            ids.push_back(rec.a);
    }
    ASSERT_EQ(ids.size(), 100u);
    for (std::uint32_t i = 0; i < 100; ++i)
        EXPECT_EQ(ids[i], i);
}

TEST(Pdt, EveryHalfStartsWithASyncRecord)
{
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256; // 8 records per half -> many flushes
    PdtStats stats;
    const trace::TraceData data =
        traceProgram(emitUserEvents, cfg, nullptr, &stats);

    // SPE stream: count sync records; there must be one per flushed
    // half (plus the in-LS remainder's).
    std::uint64_t syncs = 0;
    for (const auto& rec : data.records) {
        if (rec.core == 1 && rec.kind == trace::kSyncRecord)
            ++syncs;
    }
    EXPECT_GE(syncs, stats.spu[0].flushes);
    EXPECT_GT(stats.spu[0].flushes, 5u);
}

TEST(Pdt, FlushMarkersDescribeFlushes)
{
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256;
    PdtStats stats;
    const trace::TraceData data =
        traceProgram(emitUserEvents, cfg, nullptr, &stats);

    std::uint64_t marker_records = 0;
    std::uint64_t markers = 0;
    for (const auto& rec : data.records) {
        if (rec.core == 1 && rec.kind == trace::kFlushRecord) {
            ++markers;
            marker_records += rec.a;
        }
    }
    // Every flush except possibly the final one gets a marker in the
    // next half.
    EXPECT_GE(markers + 1, stats.spu[0].flushes);
    EXPECT_GT(marker_records, 0u);
}

TEST(Pdt, GroupFilteringDropsRecordsButKeepsCheckCost)
{
    PdtConfig cfg;
    cfg.groups = groupBit(rt::ApiGroup::Lifecycle);
    PdtStats stats;
    CellSystem sys;
    const trace::TraceData data =
        traceProgram(emitUserEvents, cfg, &sys, &stats);

    for (const auto& rec : data.records)
        EXPECT_NE(rec.kind, static_cast<std::uint8_t>(rt::ApiOp::SpuUserEvent));
    EXPECT_EQ(stats.spu[0].filtered, 100u);
    // Filtered events still charged the check.
    EXPECT_GE(sys.machine().spe(0).stats().tracer_cycles,
              100u * cfg.filtered_check_cost);
}

TEST(Pdt, SpeMaskDisablesPerSpe)
{
    CellSystem sys;
    PdtConfig cfg;
    cfg.spe_mask = 0x2; // only SPE1
    Pdt tracer(sys, cfg);
    sys.runPpe([&](rt::PpeEnv&) -> CoTask<void> {
        for (std::uint32_t s : {0u, 1u}) {
            SpuProgramImage img;
            img.name = "m";
            img.main = emitUserEvents;
            co_await sys.context(s).start(img);
        }
        co_await sys.context(0).join();
        co_await sys.context(1).join();
    });
    sys.run();
    const trace::TraceData data = tracer.finalize();
    std::uint64_t spe0 = 0, spe1 = 0;
    for (const auto& rec : data.records) {
        if (rec.core == 1)
            ++spe0;
        if (rec.core == 2)
            ++spe1;
    }
    EXPECT_EQ(spe0, 0u);
    EXPECT_GT(spe1, 100u);
}

TEST(Pdt, TracePpeFalseSilencesPpeStream)
{
    CellSystem sys;
    PdtConfig cfg;
    cfg.trace_ppe = false;
    PdtStats stats;
    const trace::TraceData data =
        traceProgram(emitUserEvents, cfg, &sys, &stats);
    for (const auto& rec : data.records)
        EXPECT_NE(rec.core, 0u);
    EXPECT_EQ(stats.ppe_records, 0u);
}

TEST(Pdt, ReservesLocalStoreForBuffers)
{
    CellSystem sys;
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 8192;
    Pdt tracer(sys, cfg);
    EXPECT_EQ(sys.spuLsLimit(), (sim::kLocalStoreSize - 2 * 8192) & ~15u);

    // Single-buffered reserves one half only.
    CellSystem sys2;
    cfg.double_buffered = false;
    Pdt tracer2(sys2, cfg);
    EXPECT_EQ(sys2.spuLsLimit(), (sim::kLocalStoreSize - 8192) & ~15u);

    tracer.detach();
    EXPECT_EQ(sys.spuLsLimit(), sim::kLocalStoreSize);
}

TEST(Pdt, ArenaOverflowStopsTracingNotTheProgram)
{
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256;
    cfg.arena_bytes_per_spe = 512; // absurdly small: 2 flushes max
    PdtStats stats;
    const trace::TraceData data =
        traceProgram(emitUserEvents, cfg, nullptr, &stats);
    EXPECT_TRUE(stats.spu[0].overflowed);
    EXPECT_GT(stats.spu[0].dropped, 0u);
    // Whatever was flushed is still a readable trace.
    EXPECT_GT(data.records.size(), 0u);
    EXPECT_LE(data.records.size() * 32, 512u + 4096u /* ppe */);
}

TEST(Pdt, WrapArenaKeepsMostRecentWindow)
{
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 256;        // 8 records per half
    cfg.arena_bytes_per_spe = 1024;    // 4 flushed halves max
    cfg.wrap_arena = true;
    PdtStats stats;
    const trace::TraceData data =
        traceProgram(emitUserEvents, cfg, nullptr, &stats);

    EXPECT_FALSE(stats.spu[0].overflowed);
    EXPECT_GT(stats.spu[0].dropped, 0u); // old flushes overwritten

    // The surviving user events must be the most recent ones, in
    // order, ending at id 99.
    std::vector<std::uint64_t> ids;
    for (const auto& rec : data.records) {
        if (rec.kind == static_cast<std::uint8_t>(rt::ApiOp::SpuUserEvent))
            ids.push_back(rec.a);
    }
    ASSERT_FALSE(ids.empty());
    EXPECT_LT(ids.size(), 100u); // some were lost, by design
    EXPECT_EQ(ids.back(), 99u);
    for (std::size_t i = 1; i < ids.size(); ++i)
        EXPECT_EQ(ids[i], ids[i - 1] + 1);

    // The wrapped trace must still be analyzable (a sync record leads
    // every surviving half).
    EXPECT_NO_THROW(ta::TraceModel::build(data));
}

TEST(Pdt, SingleBufferFlushesBlock)
{
    // Identical program; single-buffered tracing must cost at least
    // as much as double-buffered (it waits for every flush DMA).
    auto elapsed = [](bool dbl) {
        CellSystem sys;
        PdtConfig cfg;
        cfg.spu_buffer_bytes = 256;
        cfg.double_buffered = dbl;
        Pdt tracer(sys, cfg);
        sim::Tick t = 0;
        sys.runPpe([&](rt::PpeEnv&) -> CoTask<void> {
            SpuProgramImage img;
            img.main = emitUserEvents;
            co_await sys.context(0).start(img);
            co_await sys.context(0).join();
            t = sys.engine().now();
        });
        sys.run();
        return t;
    };
    EXPECT_LE(elapsed(true), elapsed(false));
}

TEST(Pdt, HeaderCarriesMachineParameters)
{
    CellSystem sys;
    Pdt tracer(sys);
    sys.run();
    const trace::TraceData data = tracer.finalize();
    EXPECT_EQ(data.header.core_hz, sys.config().core_hz);
    EXPECT_EQ(data.header.timebase_divider, sys.config().timebase_divider);
    EXPECT_EQ(data.header.num_spes, sys.numSpes());
}

TEST(Pdt, TracerCyclesAccountedPerSpe)
{
    CellSystem sys;
    PdtStats stats;
    traceProgram(emitUserEvents, {}, &sys, &stats);
    // 100 user events + start/stop ~= 102 records at 40 cycles.
    const auto cycles = sys.machine().spe(0).stats().tracer_cycles;
    EXPECT_GE(cycles, 100u * PdtConfig{}.spu_record_cost);
    EXPECT_EQ(sys.machine().spe(1).stats().tracer_cycles, 0u);
}

TEST(Pdt, TracedRunIsDeterministic)
{
    auto run = [] {
        PdtConfig cfg;
        cfg.spu_buffer_bytes = 512;
        return traceProgram(emitUserEvents, cfg);
    };
    const trace::TraceData a = run();
    const trace::TraceData b = run();
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].kind, b.records[i].kind);
        EXPECT_EQ(a.records[i].timestamp, b.records[i].timestamp);
        EXPECT_EQ(a.records[i].a, b.records[i].a);
    }
}

TEST(Pdt, WorksAcrossManySpesConcurrently)
{
    CellSystem sys;
    Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 16384;
    p.n_spes = 8;
    wl::Triad triad(sys, p);
    triad.start();
    sys.run();
    EXPECT_TRUE(triad.verify());
    const trace::TraceData data = tracer.finalize();
    for (std::uint32_t s = 0; s < 8; ++s) {
        std::uint64_t n = 0;
        for (const auto& rec : data.records)
            n += rec.core == s + 1 ? 1 : 0;
        EXPECT_GT(n, 10u) << "SPE" << s;
    }
}

} // namespace
} // namespace cell::pdt
