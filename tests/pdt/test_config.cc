/**
 * @file
 * PdtConfig validation and parser tests.
 */

#include <gtest/gtest.h>

#include "pdt/config.h"

namespace cell::pdt {
namespace {

TEST(PdtConfig, DefaultsAreValid)
{
    PdtConfig cfg;
    EXPECT_NO_THROW(cfg.validate());
    EXPECT_EQ(cfg.recordsPerHalf(), 128u);
    EXPECT_EQ(cfg.groups, kAllGroups);
}

TEST(PdtConfig, RejectsBadBufferSizes)
{
    PdtConfig cfg;
    cfg.spu_buffer_bytes = 0;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.spu_buffer_bytes = 100; // not multiple of 32
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.spu_buffer_bytes = 64; // < 4 records
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.spu_buffer_bytes = 32768; // > one DMA
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.spu_buffer_bytes = 128;
    EXPECT_NO_THROW(cfg.validate());
}

TEST(PdtConfig, RejectsBadTagAndArena)
{
    PdtConfig cfg;
    cfg.trace_tag = 32;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    cfg.trace_tag = 31;
    cfg.arena_bytes_per_spe = 100;
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(PdtConfigParse, ParsesGroupsList)
{
    const PdtConfig cfg = PdtConfig::parse("groups=DMA,MAILBOX\n");
    EXPECT_EQ(cfg.groups, groupBit(rt::ApiGroup::Dma) |
                              groupBit(rt::ApiGroup::Mailbox));
}

TEST(PdtConfigParse, ParsesAllAndNone)
{
    EXPECT_EQ(PdtConfig::parse("groups=ALL").groups, kAllGroups);
    EXPECT_EQ(PdtConfig::parse("groups=NONE").groups, 0u);
}

TEST(PdtConfigParse, ParsesNumbersAndHex)
{
    const PdtConfig cfg = PdtConfig::parse(
        "buffer=8192\n"
        "spes=0x0F\n"
        "double_buffer=0\n"
        "record_cost=55\n"
        "arena=1048576\n"
        "trace_ppe=1\n");
    EXPECT_EQ(cfg.spu_buffer_bytes, 8192u);
    EXPECT_EQ(cfg.spe_mask, 0x0Fu);
    EXPECT_FALSE(cfg.double_buffered);
    EXPECT_EQ(cfg.spu_record_cost, 55u);
    EXPECT_EQ(cfg.arena_bytes_per_spe, 1048576u);
    EXPECT_TRUE(cfg.trace_ppe);
}

TEST(PdtConfigParse, SkipsCommentsAndBlankLines)
{
    const PdtConfig cfg = PdtConfig::parse(
        "# a comment\n"
        "\n"
        "   buffer=256   # trailing comment\n");
    EXPECT_EQ(cfg.spu_buffer_bytes, 256u);
}

TEST(PdtConfigParse, RejectsUnknownKeysAndGroups)
{
    EXPECT_THROW(PdtConfig::parse("bogus=1"), std::invalid_argument);
    EXPECT_THROW(PdtConfig::parse("groups=NOPE"), std::invalid_argument);
    EXPECT_THROW(PdtConfig::parse("no equals sign"), std::invalid_argument);
}

TEST(PdtConfigParse, ParsedResultIsValidated)
{
    EXPECT_THROW(PdtConfig::parse("buffer=7"), std::invalid_argument);
}

TEST(PdtConfigParse, BaseConfigIsPreserved)
{
    PdtConfig base;
    base.spu_record_cost = 99;
    const PdtConfig cfg = PdtConfig::parse("buffer=256", base);
    EXPECT_EQ(cfg.spu_record_cost, 99u);
    EXPECT_EQ(cfg.spu_buffer_bytes, 256u);
}

} // namespace
} // namespace cell::pdt
