/**
 * @file
 * Instrumentation-hook tests: every runtime operation must emit the
 * documented Begin/End events with the documented payloads, on the
 * right core, in order — the contract PDT's event stream relies on.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/system.h"

namespace cell::rt {
namespace {

/** Hook that records every event and charges nothing. */
class RecordingHook : public ApiHook
{
  public:
    std::vector<ApiEvent> events;

    sim::CoTask<void> onApiEvent(const ApiEvent& ev) override
    {
        events.push_back(ev);
        co_return;
    }

    /** Events of one op in order. */
    std::vector<ApiEvent> of(ApiOp op) const
    {
        std::vector<ApiEvent> out;
        for (const auto& e : events)
            if (e.op == op)
                out.push_back(e);
        return out;
    }
};

TEST(ApiNames, AllOpsHaveDistinctNames)
{
    std::vector<std::string> names;
    for (std::size_t i = 0; i < kNumApiOps; ++i) {
        const std::string n = apiOpName(static_cast<ApiOp>(i));
        EXPECT_NE(n, "UNKNOWN") << "op " << i;
        for (const auto& prev : names)
            EXPECT_NE(n, prev);
        names.push_back(n);
    }
}

TEST(ApiNames, AllGroupsHaveNames)
{
    for (std::size_t g = 0; g < kNumApiGroups; ++g)
        EXPECT_STRNE(apiGroupName(static_cast<ApiGroup>(g)), "UNKNOWN");
}

TEST(ApiGroups, EveryOpMapsToAGroup)
{
    for (std::size_t i = 0; i < kNumApiOps; ++i) {
        const auto g = apiOpGroup(static_cast<ApiOp>(i));
        EXPECT_LT(static_cast<std::size_t>(g), kNumApiGroups);
    }
}

TEST(ApiGroups, SpotChecks)
{
    EXPECT_EQ(apiOpGroup(ApiOp::SpuMfcGet), ApiGroup::Dma);
    EXPECT_EQ(apiOpGroup(ApiOp::SpuTagWaitAll), ApiGroup::DmaWait);
    EXPECT_EQ(apiOpGroup(ApiOp::SpuMboxRead), ApiGroup::Mailbox);
    EXPECT_EQ(apiOpGroup(ApiOp::SpuSendSignal), ApiGroup::Signal);
    EXPECT_EQ(apiOpGroup(ApiOp::SpuStart), ApiGroup::Lifecycle);
    EXPECT_EQ(apiOpGroup(ApiOp::SpuUserEvent), ApiGroup::User);
    EXPECT_EQ(apiOpGroup(ApiOp::PpeProxyGet), ApiGroup::Dma);
}

CoTask<void>
dmaProgram(SpuEnv& env)
{
    const sim::LsAddr buf = env.lsAlloc(256);
    co_await env.mfcGet(buf, env.argp(), 256, 7);
    co_await env.waitTagAll(1u << 7);
    co_await env.userEvent(99, 0xABCD);
}

TEST(Hooks, DmaEventsCarryDocumentedPayloads)
{
    CellSystem sys;
    RecordingHook hook;
    sys.setHook(&hook);
    const sim::EffAddr src = sys.alloc(256);

    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = dmaProgram;
        co_await sys.context(2).start(img, src);
        co_await sys.context(2).join();
    });
    sys.run();

    const auto gets = hook.of(ApiOp::SpuMfcGet);
    ASSERT_EQ(gets.size(), 2u); // Begin + End
    EXPECT_EQ(gets[0].phase, ApiPhase::Begin);
    EXPECT_EQ(gets[1].phase, ApiPhase::End);
    EXPECT_TRUE(gets[0].core.isSpe());
    EXPECT_EQ(gets[0].core.speIndex(), 2u);
    EXPECT_EQ(gets[0].b, src);  // EA
    EXPECT_EQ(gets[0].c, 256u); // size
    EXPECT_EQ(gets[0].d, 7u);   // tag

    const auto waits = hook.of(ApiOp::SpuTagWaitAll);
    ASSERT_EQ(waits.size(), 2u);
    EXPECT_EQ(waits[0].a, 1u << 7); // mask
    EXPECT_EQ(waits[1].b, 1u << 7); // completed mask

    const auto users = hook.of(ApiOp::SpuUserEvent);
    ASSERT_EQ(users.size(), 1u); // single marker
    EXPECT_EQ(users[0].a, 99u);
    EXPECT_EQ(users[0].b, 0xABCDu);
}

TEST(Hooks, LifecycleOrderIsStartThenStop)
{
    CellSystem sys;
    RecordingHook hook;
    sys.setHook(&hook);
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = [](SpuEnv& e) -> CoTask<void> {
            e.setExitCode(9);
            co_return;
        };
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();

    // Event order: create, run(Begin), start, stop, run(End) happens
    // before start... verify the essential ordering constraints.
    std::vector<ApiOp> ops;
    for (const auto& e : hook.events)
        ops.push_back(e.op);
    auto idx = [&](ApiOp op) {
        for (std::size_t i = 0; i < ops.size(); ++i)
            if (ops[i] == op)
                return static_cast<std::ptrdiff_t>(i);
        return std::ptrdiff_t{-1};
    };
    EXPECT_LT(idx(ApiOp::PpeContextCreate), idx(ApiOp::PpeContextRun));
    EXPECT_LT(idx(ApiOp::PpeContextRun), idx(ApiOp::SpuStart));
    EXPECT_LT(idx(ApiOp::SpuStart), idx(ApiOp::SpuStop));
    EXPECT_LT(idx(ApiOp::SpuStop), idx(ApiOp::PpeContextJoin) + 1000);

    const auto stops = hook.of(ApiOp::SpuStop);
    ASSERT_EQ(stops.size(), 1u);
    EXPECT_EQ(stops[0].a, 9u); // exit code
}

TEST(Hooks, PpeEventsAreOnThePpeCore)
{
    CellSystem sys;
    RecordingHook hook;
    sys.setHook(&hook);
    sys.runPpe([&](PpeEnv& env) -> CoTask<void> {
        co_await env.userEvent(5, 6);
        SpuProgramImage img;
        img.main = [](SpuEnv& e) -> CoTask<void> {
            co_await e.writeOutMbox(1);
        };
        co_await sys.context(0).start(img);
        co_await sys.context(0).readOutMbox();
        co_await sys.context(0).join();
    });
    sys.run();

    for (const auto& e : hook.events) {
        switch (e.op) {
          case ApiOp::PpeUserEvent:
          case ApiOp::PpeContextCreate:
          case ApiOp::PpeContextRun:
          case ApiOp::PpeContextJoin:
          case ApiOp::PpeMboxRead:
            EXPECT_TRUE(e.core.isPpe()) << apiOpName(e.op);
            break;
          case ApiOp::SpuStart:
          case ApiOp::SpuStop:
          case ApiOp::SpuMboxWrite:
            EXPECT_TRUE(e.core.isSpe()) << apiOpName(e.op);
            break;
          default:
            break;
        }
    }
}

TEST(Hooks, NoHookMeansNoOverheadPath)
{
    // Two identical runs, one with a null hook reinstalled: identical
    // cycle counts (hook dispatch itself must be free when absent).
    auto run = [](bool set_then_clear) {
        CellSystem sys;
        if (set_then_clear) {
            RecordingHook hook;
            sys.setHook(&hook);
            sys.setHook(nullptr);
        }
        sim::Tick elapsed = 0;
        sys.runPpe([&](PpeEnv&) -> CoTask<void> {
            SpuProgramImage img;
            img.main = dmaProgram;
            co_await sys.context(0).start(img, 0x4000);
            co_await sys.context(0).join();
            elapsed = sys.engine().now();
        });
        sys.run();
        return elapsed;
    };
    EXPECT_EQ(run(false), run(true));
}

TEST(Hooks, BeginAndEndAlwaysPairForBlockingOps)
{
    CellSystem sys;
    RecordingHook hook;
    sys.setHook(&hook);
    const sim::EffAddr src = sys.alloc(4096);

    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = [&sys, src](SpuEnv& e) -> CoTask<void> {
            const sim::LsAddr b = e.lsAlloc(4096);
            for (int i = 0; i < 3; ++i) {
                co_await e.mfcGet(b, src, 4096, 1);
                co_await e.waitTagAll(1u << 1);
            }
            co_await e.writeOutMbox(7);
        };
        co_await sys.context(0).start(img);
        co_await sys.context(0).readOutMbox();
        co_await sys.context(0).join();
    });
    sys.run();

    for (ApiOp op : {ApiOp::SpuMfcGet, ApiOp::SpuTagWaitAll,
                     ApiOp::SpuMboxWrite, ApiOp::PpeMboxRead}) {
        const auto evs = hook.of(op);
        ASSERT_EQ(evs.size() % 2, 0u) << apiOpName(op);
        for (std::size_t i = 0; i < evs.size(); i += 2) {
            EXPECT_EQ(evs[i].phase, ApiPhase::Begin) << apiOpName(op);
            EXPECT_EQ(evs[i + 1].phase, ApiPhase::End) << apiOpName(op);
        }
    }
}

} // namespace
} // namespace cell::rt
