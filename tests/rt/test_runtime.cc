/**
 * @file
 * Runtime (libspe2-flavoured API) tests: contexts, program lifecycle,
 * PPE<->SPE mailboxes and signals, proxy DMA, LS allocation.
 */

#include <gtest/gtest.h>

#include <vector>

#include "rt/system.h"

namespace cell::rt {
namespace {

using sim::Tick;

CoTask<void>
trivialSpu(SpuEnv& env)
{
    co_await env.compute(100);
    env.setExitCode(42);
}

TEST(Runtime, ContextRunsProgramAndReportsStopInfo)
{
    CellSystem sys;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.name = "trivial";
        img.main = trivialSpu;
        co_await sys.context(3).start(img, 0x1234, 0x5678);
        co_await sys.context(3).join();
    });
    sys.run();
    EXPECT_TRUE(sys.context(3).stopInfo().stopped);
    EXPECT_EQ(sys.context(3).stopInfo().exit_code, 42u);
    EXPECT_EQ(sys.programName(3), "trivial");
    EXPECT_EQ(sys.machine().spe(3).stats().compute_cycles, 100u);
}

CoTask<void>
argpEcho(SpuEnv& env)
{
    co_await env.writeOutMbox(static_cast<std::uint32_t>(env.argp()));
    co_await env.writeOutMbox(static_cast<std::uint32_t>(env.envp()));
}

TEST(Runtime, ArgpEnvpReachTheProgram)
{
    CellSystem sys;
    std::vector<std::uint32_t> got;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = argpEcho;
        co_await sys.context(0).start(img, 111, 222);
        got.push_back(co_await sys.context(0).readOutMbox());
        got.push_back(co_await sys.context(0).readOutMbox());
        co_await sys.context(0).join();
    });
    sys.run();
    EXPECT_EQ(got, (std::vector<std::uint32_t>{111, 222}));
}

CoTask<void>
mboxPingPong(SpuEnv& env)
{
    for (int i = 0; i < 5; ++i) {
        const std::uint32_t v = co_await env.readInMbox();
        co_await env.writeOutMbox(v * 2);
    }
}

TEST(Runtime, MailboxPingPong)
{
    CellSystem sys;
    std::vector<std::uint32_t> got;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = mboxPingPong;
        co_await sys.context(0).start(img);
        for (std::uint32_t i = 1; i <= 5; ++i) {
            co_await sys.context(0).writeInMbox(i);
            got.push_back(co_await sys.context(0).readOutMbox());
        }
        co_await sys.context(0).join();
    });
    sys.run();
    EXPECT_EQ(got, (std::vector<std::uint32_t>{2, 4, 6, 8, 10}));
}

CoTask<void>
signalWaiter(SpuEnv& env)
{
    const std::uint32_t s1 = co_await env.readSignal1();
    const std::uint32_t s2 = co_await env.readSignal2();
    co_await env.writeOutMbox(s1);
    co_await env.writeOutMbox(s2);
}

TEST(Runtime, PpeSignalsReachSpu)
{
    CellSystem sys;
    std::uint32_t s1 = 0, s2 = 0;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = signalWaiter;
        co_await sys.context(1).start(img);
        co_await sys.context(1).postSignal1(0x5);
        co_await sys.context(1).postSignal1(0x8); // OR mode accumulates
        co_await sys.context(1).postSignal2(0x30);
        s1 = co_await sys.context(1).readOutMbox();
        s2 = co_await sys.context(1).readOutMbox();
        co_await sys.context(1).join();
    });
    sys.run();
    EXPECT_TRUE(s1 == 0x5 || s1 == 0xD); // depends on read/post interleave
    EXPECT_EQ(s2, 0x30u);
}

CoTask<void>
idleSpu(SpuEnv& env)
{
    co_await env.readInMbox(); // hold the SPE until released
}

TEST(Runtime, ProxyDmaMovesDataIntoLs)
{
    CellSystem sys;
    const sim::EffAddr src = sys.alloc(1024);
    std::vector<std::uint8_t> data(1024);
    for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = static_cast<std::uint8_t>(i * 7);
    sys.machine().memory().write(src, data.data(), data.size());

    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = idleSpu;
        co_await sys.context(0).start(img);
        co_await sys.context(0).proxyGet(0x8000, src, 1024, 5);
        co_await sys.context(0).proxyTagWait(1u << 5);
        co_await sys.context(0).writeInMbox(1); // release
        co_await sys.context(0).join();
    });
    sys.run();
    std::vector<std::uint8_t> got(1024);
    sys.machine().spe(0).localStore().read(0x8000, got.data(), got.size());
    EXPECT_EQ(got, data);
}

CoTask<void>
lsAllocProgram(SpuEnv& env)
{
    const sim::LsAddr a = env.lsAlloc(100, 16);
    const sim::LsAddr b = env.lsAlloc(100, 128);
    EXPECT_EQ(a % 16, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GT(b, a);
    env.setExitCode(1);
    co_return;
}

TEST(Runtime, LsAllocRespectsAlignment)
{
    CellSystem sys;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = lsAllocProgram;
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();
    EXPECT_EQ(sys.context(0).stopInfo().exit_code, 1u);
}

CoTask<void>
lsOverflowProgram(SpuEnv& env)
{
    EXPECT_THROW(env.lsAlloc(sim::kLocalStoreSize), std::bad_alloc);
    co_return;
}

TEST(Runtime, LsAllocOverflowThrows)
{
    CellSystem sys;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = lsOverflowProgram;
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();
}

CoTask<void>
largeTransfer(SpuEnv& env)
{
    // 40 KiB > one MFC command; getLarge must split it.
    const sim::LsAddr buf = env.lsAlloc(40960);
    co_await env.getLarge(buf, env.argp(), 40960, 3);
    co_await env.waitTagAll(1u << 3);
    std::uint64_t sum = 0;
    for (std::uint32_t i = 0; i < 40960; i += 4096)
        sum += env.ls().load<std::uint8_t>(buf + i);
    co_await env.writeOutMbox(static_cast<std::uint32_t>(sum));
}

TEST(Runtime, GetLargeSplitsTransfers)
{
    CellSystem sys;
    const sim::EffAddr src = sys.alloc(40960);
    std::vector<std::uint8_t> data(40960, 3);
    sys.machine().memory().write(src, data.data(), data.size());
    std::uint32_t sum = 0;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = largeTransfer;
        co_await sys.context(0).start(img, src);
        sum = co_await sys.context(0).readOutMbox();
        co_await sys.context(0).join();
    });
    sys.run();
    EXPECT_EQ(sum, 30u); // 10 chunks x 3
}

TEST(Runtime, DoubleStartThrows)
{
    CellSystem sys;
    bool threw = false;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = idleSpu;
        co_await sys.context(0).start(img);
        try {
            co_await sys.context(0).start(img);
        } catch (const std::logic_error&) {
            threw = true;
        }
        co_await sys.context(0).writeInMbox(1);
        co_await sys.context(0).join();
    });
    sys.run();
    EXPECT_TRUE(threw);
}

TEST(Runtime, AllocatorAlignsAndAdvances)
{
    CellSystem sys;
    const auto a = sys.alloc(100, 128);
    const auto b = sys.alloc(100, 128);
    EXPECT_EQ(a % 128, 0u);
    EXPECT_EQ(b % 128, 0u);
    EXPECT_GE(b, a + 100);
    EXPECT_THROW(sys.alloc(16, 100), std::invalid_argument); // not pow2
}

TEST(Runtime, PpeComputeAndTimebase)
{
    CellSystem sys;
    std::uint64_t tb = ~0ull;
    sys.runPpe([&](PpeEnv& env) -> CoTask<void> {
        co_await env.compute(2400);
        tb = co_await env.readTimebase();
    });
    sys.run();
    // 2400 cycles + timebase-read cost at divider 120 => ~20 ticks.
    EXPECT_GE(tb, 20u);
    EXPECT_LE(tb, 21u);
    EXPECT_EQ(sys.machine().ppeStats().compute_cycles, 2400u);
}

CoTask<void>
signalSender(SpuEnv& env)
{
    co_await env.sendSignal(static_cast<std::uint32_t>(env.argp()), 1, 0x77);
}

CoTask<void>
signalReceiver(SpuEnv& env)
{
    const std::uint32_t v = co_await env.readSignal1();
    co_await env.writeOutMbox(v);
}

TEST(Runtime, SpeToSpeSignalling)
{
    CellSystem sys;
    std::uint32_t got = 0;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage rx;
        rx.main = signalReceiver;
        co_await sys.context(1).start(rx);
        SpuProgramImage tx;
        tx.main = signalSender;
        co_await sys.context(0).start(tx, /*argp=target spe*/ 1);
        got = co_await sys.context(1).readOutMbox();
        co_await sys.context(0).join();
        co_await sys.context(1).join();
    });
    sys.run();
    EXPECT_EQ(got, 0x77u);
}

CoTask<void>
decrementerUser(SpuEnv& env)
{
    co_await env.writeDecrementer(1'000'000);
    co_await env.compute(1200); // 10 timebase ticks at divider 120
    const std::uint32_t v = co_await env.readDecrementer();
    co_await env.writeOutMbox(v);
}

TEST(Runtime, DecrementerChannelOps)
{
    CellSystem sys;
    std::uint32_t v = 0;
    sys.runPpe([&](PpeEnv&) -> CoTask<void> {
        SpuProgramImage img;
        img.main = decrementerUser;
        co_await sys.context(0).start(img);
        v = co_await sys.context(0).readOutMbox();
        co_await sys.context(0).join();
    });
    sys.run();
    EXPECT_LE(v, 1'000'000u - 10u);
    EXPECT_GE(v, 1'000'000u - 12u);
}

} // namespace
} // namespace cell::rt
