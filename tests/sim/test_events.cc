/**
 * @file
 * SPU event-facility tests: select-style waits on tag groups,
 * mailboxes, signals and the decrementer through SPU_RdEventStat.
 */

#include <gtest/gtest.h>

#include "sim/channels.h"
#include "sim/machine.h"

namespace cell::sim {
namespace {

MachineConfig
cfg1()
{
    MachineConfig c;
    c.num_spes = 1;
    return c;
}

Task
waitEvents(SpuChannels& ch, std::uint32_t mask, std::uint32_t* got,
           Tick* at, Engine& eng)
{
    co_await ch.write(SPU_WrEventMask, mask);
    *got = co_await ch.read(SPU_RdEventStat);
    *at = eng.now();
}

TEST(SpuEvents, MailboxEventWakesTheWaiter)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::uint32_t got = 0;
    Tick at = 0;
    m.spawnPpe(waitEvents(ch, MFC_IN_MBOX_AVAILABLE_EVENT, &got, &at,
                          m.engine()));
    m.engine().schedule(700, [&] { m.spe(0).inbound().tryPush(42); });
    m.run();
    EXPECT_EQ(got, MFC_IN_MBOX_AVAILABLE_EVENT);
    // Channel costs are charged before the wait begins; the wake
    // happens exactly when the mailbox is pushed.
    EXPECT_EQ(at, 700u);
}

TEST(SpuEvents, SignalEventsReportTheRightRegister)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::uint32_t got = 0;
    Tick at = 0;
    m.spawnPpe(waitEvents(
        ch, MFC_SIGNAL_NOTIFY_1_EVENT | MFC_SIGNAL_NOTIFY_2_EVENT, &got,
        &at, m.engine()));
    m.engine().schedule(300, [&] { m.spe(0).signal2().post(0x8); });
    m.run();
    EXPECT_EQ(got, MFC_SIGNAL_NOTIFY_2_EVENT);
}

Task
dmaThenEventWait(Machine& m, SpuChannels& ch, std::uint32_t* got)
{
    // Issue a GET on tag 4, arm the tag-status event for it, and wait.
    co_await ch.write(MFC_LSA, 0x1000);
    co_await ch.write(MFC_EAH, 0);
    co_await ch.write(MFC_EAL, 0x8000);
    co_await ch.write(MFC_Size, 4096);
    co_await ch.write(MFC_TagID, 4);
    co_await ch.write(MFC_Cmd, MFC_GET_CMD);
    co_await ch.write(MFC_WrTagMask, 1u << 4);
    co_await ch.write(SPU_WrEventMask, MFC_TAG_STATUS_UPDATE_EVENT);
    EXPECT_EQ(m.spe(0).mfc().outstanding(4), 1u);
    *got = co_await ch.read(SPU_RdEventStat);
    EXPECT_EQ(m.spe(0).mfc().outstanding(4), 0u);
}

TEST(SpuEvents, TagStatusEventFiresOnDmaCompletion)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::uint32_t got = 0;
    m.spawnPpe(dmaThenEventWait(m, ch, &got));
    m.run();
    EXPECT_EQ(got, MFC_TAG_STATUS_UPDATE_EVENT);
}

Task
decrementerEventWait(SpuChannels& ch, Tick* at, Engine& eng,
                     std::uint32_t* got)
{
    co_await ch.write(SPU_WrDec, 1000); // MSB sets after 1001 ticks
    co_await ch.write(SPU_WrEventMask, MFC_DECREMENTER_EVENT);
    *got = co_await ch.read(SPU_RdEventStat);
    *at = eng.now();
}

TEST(SpuEvents, DecrementerEventFiresAtWrap)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::uint32_t got = 0;
    Tick at = 0;
    m.spawnPpe(decrementerEventWait(ch, &at, m.engine(), &got));
    m.run();
    EXPECT_EQ(got, MFC_DECREMENTER_EVENT);
    // 1001 timebase ticks at divider 120 from roughly t=12 (two
    // channel writes).
    const Tick expect = 1001u * m.config().timebase_divider;
    EXPECT_GE(at, expect);
    EXPECT_LE(at, expect + 3 * m.config().cost.spu_channel);
}

Task
selectStyleWait(Machine& m, SpuChannels& ch, std::vector<std::uint32_t>* seen)
{
    co_await ch.write(SPU_WrEventMask, MFC_IN_MBOX_AVAILABLE_EVENT |
                                           MFC_SIGNAL_NOTIFY_1_EVENT);
    // Collect two wakeups from different sources.
    for (int i = 0; i < 2; ++i) {
        const std::uint32_t ev = co_await ch.read(SPU_RdEventStat);
        seen->push_back(ev);
        if (ev & MFC_IN_MBOX_AVAILABLE_EVENT)
            co_await ch.read(SPU_RdInMbox); // consume
        if (ev & MFC_SIGNAL_NOTIFY_1_EVENT)
            co_await ch.read(SPU_RdSigNotify1); // consume
    }
    (void)m;
}

TEST(SpuEvents, SelectOverMailboxAndSignal)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::vector<std::uint32_t> seen;
    m.spawnPpe(selectStyleWait(m, ch, &seen));
    m.engine().schedule(200, [&] { m.spe(0).signal1().post(1); });
    m.engine().schedule(900, [&] { m.spe(0).inbound().tryPush(5); });
    m.run();
    ASSERT_EQ(seen.size(), 2u);
    EXPECT_EQ(seen[0], MFC_SIGNAL_NOTIFY_1_EVENT);
    EXPECT_EQ(seen[1], MFC_IN_MBOX_AVAILABLE_EVENT);
}

TEST(SpuEvents, StatusCountReflectsPending)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    auto prog = [](SpuChannels* c, Machine* mm) -> Task {
        co_await c->write(SPU_WrEventMask, MFC_IN_MBOX_AVAILABLE_EVENT);
        EXPECT_EQ(c->count(SPU_RdEventStat), 0u);
        mm->spe(0).inbound().tryPush(1);
        EXPECT_EQ(c->count(SPU_RdEventStat), 1u);
        co_await c->write(SPU_WrEventAck, ~0u); // accepted, no-op
    };
    m.spawnPpe(prog(&ch, &m));
    m.run();
}

Task
emptyMaskRead(SpuChannels& ch, bool* threw)
{
    try {
        co_await ch.read(SPU_RdEventStat);
    } catch (const std::invalid_argument&) {
        *threw = true;
    }
}

TEST(SpuEvents, ReadWithEmptyMaskThrows)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    bool threw = false;
    m.spawnPpe(emptyMaskRead(ch, &threw));
    m.run();
    EXPECT_TRUE(threw);
}

} // namespace
} // namespace cell::sim
