/**
 * @file
 * Unit tests for LocalStore and MainMemory.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "sim/local_store.h"
#include "sim/main_memory.h"

namespace cell::sim {
namespace {

TEST(LocalStore, IsZeroInitialized256KiB)
{
    LocalStore ls;
    EXPECT_EQ(ls.size(), kLocalStoreSize);
    EXPECT_EQ(ls.load<std::uint64_t>(0), 0u);
    EXPECT_EQ(ls.load<std::uint64_t>(kLocalStoreSize - 8), 0u);
}

TEST(LocalStore, TypedRoundTrip)
{
    LocalStore ls;
    ls.store<std::uint32_t>(0x100, 0xDEADBEEF);
    ls.store<double>(0x200, 3.25);
    EXPECT_EQ(ls.load<std::uint32_t>(0x100), 0xDEADBEEFu);
    EXPECT_EQ(ls.load<double>(0x200), 3.25);
}

TEST(LocalStore, BulkRoundTrip)
{
    LocalStore ls;
    std::vector<std::uint8_t> in(4096);
    std::iota(in.begin(), in.end(), 0);
    ls.write(0x8000, in.data(), in.size());
    std::vector<std::uint8_t> out(4096);
    ls.read(0x8000, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(LocalStore, OutOfRangeAccessThrows)
{
    LocalStore ls;
    std::uint8_t b = 0;
    EXPECT_THROW(ls.read(kLocalStoreSize, &b, 1), std::out_of_range);
    EXPECT_THROW(ls.write(kLocalStoreSize - 1, &b, 2), std::out_of_range);
    EXPECT_NO_THROW(ls.write(kLocalStoreSize - 1, &b, 1));
}

TEST(LocalStore, ClearZeroesRange)
{
    LocalStore ls;
    ls.store<std::uint32_t>(0x40, 0xFFFFFFFF);
    ls.clear(0x40, 4);
    EXPECT_EQ(ls.load<std::uint32_t>(0x40), 0u);
}

struct DmaShapeCase
{
    LsAddr ls;
    EffAddr ea;
    std::size_t len;
    bool ok;
};

class DmaShape : public ::testing::TestWithParam<DmaShapeCase>
{};

TEST_P(DmaShape, ValidatesPerMfcRules)
{
    const auto& c = GetParam();
    if (c.ok) {
        EXPECT_NO_THROW(LocalStore::checkDmaShape(c.ls, c.ea, c.len));
    } else {
        EXPECT_THROW(LocalStore::checkDmaShape(c.ls, c.ea, c.len),
                     std::invalid_argument);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DmaShape,
    ::testing::Values(
        // Legal small transfers: naturally aligned, matching quadword offset.
        DmaShapeCase{0x0, 0x1000, 1, true},
        DmaShapeCase{0x2, 0x1002, 2, true},
        DmaShapeCase{0x4, 0x1004, 4, true},
        DmaShapeCase{0x8, 0x1008, 8, true},
        // Small transfer with mismatched quadword offsets.
        DmaShapeCase{0x4, 0x1008, 4, false},
        // Small transfer not naturally aligned.
        DmaShapeCase{0x2, 0x1002, 4, false},
        // Legal quadword-multiple transfers.
        DmaShapeCase{0x10, 0x2000, 16, true},
        DmaShapeCase{0x100, 0x4000, 16384, true},
        DmaShapeCase{0x100, 0x4000, 4096, true},
        // Bad: over 16 KiB, zero, unaligned, odd size.
        DmaShapeCase{0x100, 0x4000, 16400, false},
        DmaShapeCase{0x100, 0x4000, 0, false},
        DmaShapeCase{0x108, 0x4000, 32, false},
        DmaShapeCase{0x100, 0x4008, 32, false},
        DmaShapeCase{0x100, 0x4000, 24, false},
        DmaShapeCase{0x100, 0x4000, 3, false}));

TEST(MainMemory, UnbackedReadsAsZeroWithoutAllocating)
{
    MainMemory mem;
    std::uint64_t v = 1;
    mem.read(0x12345678, &v, sizeof(v));
    EXPECT_EQ(v, 0u);
    EXPECT_EQ(mem.pagesAllocated(), 0u);
}

TEST(MainMemory, RoundTripAcrossPageBoundary)
{
    MainMemory mem;
    const EffAddr ea = MainMemory::kPageSize - 100;
    std::vector<std::uint8_t> in(300);
    std::iota(in.begin(), in.end(), 7);
    mem.write(ea, in.data(), in.size());
    EXPECT_EQ(mem.pagesAllocated(), 2u);
    std::vector<std::uint8_t> out(300);
    mem.read(ea, out.data(), out.size());
    EXPECT_EQ(in, out);
}

TEST(MainMemory, TypedPeekPoke)
{
    MainMemory mem;
    mem.poke<float>(0x1000, 2.5f);
    EXPECT_EQ(mem.peek<float>(0x1000), 2.5f);
}

TEST(MainMemory, HighAddressesWork)
{
    MainMemory mem;
    const EffAddr ea = 0x7FFF'FFFF'0000ULL;
    mem.poke<std::uint64_t>(ea, 0xA5A5A5A5A5A5A5A5ULL);
    EXPECT_EQ(mem.peek<std::uint64_t>(ea), 0xA5A5A5A5A5A5A5A5ULL);
}

TEST(MainMemory, BytesWrittenAccumulates)
{
    MainMemory mem;
    std::uint8_t buf[64] = {};
    mem.write(0, buf, 64);
    mem.write(100, buf, 32);
    EXPECT_EQ(mem.bytesWritten(), 96u);
}

} // namespace
} // namespace cell::sim
