/**
 * @file
 * Mailbox and signal-notification tests.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"

namespace cell::sim {
namespace {

TEST(Mailbox, TryPushPopRespectDepth)
{
    Engine eng;
    Mailbox mb(eng, 4);
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_TRUE(mb.tryPush(i));
    EXPECT_TRUE(mb.full());
    EXPECT_FALSE(mb.tryPush(99));
    std::uint32_t v = 0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        ASSERT_TRUE(mb.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(mb.tryPop(v));
}

TEST(Mailbox, BlockingPopWaitsForPush)
{
    Engine eng;
    Mailbox mb(eng, 1);
    Tick popped_at = 0;
    std::uint32_t got = 0;

    auto consumer = [&]() -> Task {
        got = co_await mb.pop();
        popped_at = eng.now();
    };
    eng.spawn(consumer());
    eng.schedule(1000, [&] { mb.tryPush(77); });
    eng.run();
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(popped_at, 1000u);
}

TEST(Mailbox, BlockingPushWaitsForSpace)
{
    Engine eng;
    Mailbox mb(eng, 1);
    Tick pushed_at = 0;

    auto producer = [&]() -> Task {
        co_await mb.push(1);
        co_await mb.push(2); // blocks: depth 1
        pushed_at = eng.now();
    };
    eng.spawn(producer());
    eng.schedule(500, [&] {
        std::uint32_t v;
        mb.tryPop(v);
    });
    eng.run();
    EXPECT_EQ(pushed_at, 500u);
    std::uint32_t v = 0;
    EXPECT_TRUE(mb.tryPop(v));
    EXPECT_EQ(v, 2u);
}

TEST(Mailbox, FifoOrderPreservedUnderLoad)
{
    Engine eng;
    Mailbox mb(eng, 4);
    std::vector<std::uint32_t> received;

    auto producer = [&]() -> Task {
        for (std::uint32_t i = 0; i < 64; ++i)
            co_await mb.push(i);
    };
    auto consumer = [&]() -> Task {
        for (std::uint32_t i = 0; i < 64; ++i) {
            received.push_back(co_await mb.pop());
            co_await eng.delay(13);
        }
    };
    eng.spawn(producer());
    eng.spawn(consumer());
    eng.run();
    ASSERT_EQ(received.size(), 64u);
    for (std::uint32_t i = 0; i < 64; ++i)
        EXPECT_EQ(received[i], i);
}

TEST(Signals, OrModeAccumulatesBits)
{
    Engine eng;
    SignalRegister sig(eng, SignalMode::Or);
    sig.post(0x1);
    sig.post(0x4);
    sig.post(0x8);
    EXPECT_EQ(sig.peek(), 0xDu);
    std::uint32_t v = 0;
    EXPECT_TRUE(sig.tryRead(v));
    EXPECT_EQ(v, 0xDu);
    EXPECT_EQ(sig.peek(), 0u); // read clears
}

TEST(Signals, OverwriteModeReplacesValue)
{
    Engine eng;
    SignalRegister sig(eng, SignalMode::Overwrite);
    sig.post(0x1);
    sig.post(0x4);
    EXPECT_EQ(sig.peek(), 0x4u);
}

TEST(Signals, BlockingReadWaitsForNonZero)
{
    Engine eng;
    SignalRegister sig(eng, SignalMode::Or);
    Tick read_at = 0;
    std::uint32_t got = 0;

    auto reader = [&]() -> Task {
        got = co_await sig.read();
        read_at = eng.now();
    };
    eng.spawn(reader());
    eng.schedule(250, [&] { sig.post(0x30); });
    eng.run();
    EXPECT_EQ(got, 0x30u);
    EXPECT_EQ(read_at, 250u);
}

TEST(Signals, FanInFromManyPosters)
{
    // 8 posters each set their own bit; a reader collects until all
    // eight bits have been seen — the classic OR-mode barrier.
    Engine eng;
    SignalRegister sig(eng, SignalMode::Or);
    std::uint32_t collected = 0;
    for (std::uint32_t i = 0; i < 8; ++i)
        eng.schedule(10 * (i + 1), [&sig, i] { sig.post(1u << i); });
    auto reader = [&]() -> Task {
        while (collected != 0xFF)
            collected |= co_await sig.read();
    };
    eng.spawn(reader());
    eng.run();
    EXPECT_EQ(collected, 0xFFu);
}

TEST(SpuMailboxes, HaveArchitectedDepths)
{
    Machine m;
    EXPECT_EQ(m.spe(0).inbound().depth(), 4u);
    EXPECT_EQ(m.spe(0).outbound().depth(), 1u);
    EXPECT_EQ(m.spe(0).outboundIrq().depth(), 1u);
}

TEST(SpuCompute, ChargesBusyCycles)
{
    Machine m;
    auto prog = [&]() -> Task {
        co_await m.spe(0).compute(1234);
        co_await m.spe(0).chargeChannel();
    };
    m.spawnPpe(prog());
    m.run();
    EXPECT_EQ(m.spe(0).stats().compute_cycles, 1234u);
    EXPECT_EQ(m.spe(0).stats().channel_cycles,
              m.config().cost.spu_channel);
    EXPECT_EQ(m.engine().now(), 1234u + m.config().cost.spu_channel);
}

} // namespace
} // namespace cell::sim
