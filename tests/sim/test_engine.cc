/**
 * @file
 * Unit tests for the discrete-event engine and coroutine layer.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/engine.h"
#include "sim/sync.h"

namespace cell::sim {
namespace {

TEST(Engine, StartsAtTickZero)
{
    Engine eng;
    EXPECT_EQ(eng.now(), 0u);
    EXPECT_TRUE(eng.idle());
}

TEST(Engine, CallbacksFireInTimeOrder)
{
    Engine eng;
    std::vector<int> order;
    eng.schedule(30, [&] { order.push_back(3); });
    eng.schedule(10, [&] { order.push_back(1); });
    eng.schedule(20, [&] { order.push_back(2); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eng.now(), 30u);
}

TEST(Engine, SameTickFiresInScheduleOrder)
{
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eng.schedule(5, [&order, i] { order.push_back(i); });
    eng.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(Engine, SchedulingInThePastThrows)
{
    Engine eng;
    eng.schedule(10, [&] {
        EXPECT_THROW(eng.schedule(5, [] {}), std::logic_error);
    });
    eng.run();
}

TEST(Engine, RunRespectsLimit)
{
    Engine eng;
    int fired = 0;
    eng.schedule(10, [&] { ++fired; });
    eng.schedule(100, [&] { ++fired; });
    eng.run(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eng.now(), 50u);
    eng.run();
    EXPECT_EQ(fired, 2);
}

Task
delayTwice(Engine& eng, std::vector<Tick>& seen)
{
    co_await eng.delay(100);
    seen.push_back(eng.now());
    co_await eng.delay(50);
    seen.push_back(eng.now());
}

TEST(Coroutine, DelayAdvancesSimTime)
{
    Engine eng;
    std::vector<Tick> seen;
    eng.spawn(delayTwice(eng, seen));
    eng.run();
    EXPECT_EQ(seen, (std::vector<Tick>{100, 150}));
}

Task
finishAt(Engine& eng, Tick t)
{
    co_await eng.delay(t);
}

Task
joiner(Engine& eng, ProcessRef target, Tick& joined_at)
{
    co_await target.join();
    joined_at = eng.now();
}

TEST(Coroutine, JoinWaitsForCompletion)
{
    Engine eng;
    Tick joined_at = 0;
    auto p = eng.spawn(finishAt(eng, 500));
    eng.spawn(joiner(eng, p, joined_at));
    eng.run();
    EXPECT_EQ(joined_at, 500u);
    EXPECT_TRUE(p.done());
}

TEST(Coroutine, JoinAfterCompletionDoesNotBlock)
{
    Engine eng;
    Tick joined_at = ~Tick{0};
    auto p = eng.spawn(finishAt(eng, 10));
    eng.run();
    ASSERT_TRUE(p.done());
    eng.spawn(joiner(eng, p, joined_at));
    eng.run();
    EXPECT_EQ(joined_at, 10u);
}

Task
throwing(Engine& eng)
{
    co_await eng.delay(1);
    throw std::runtime_error("boom");
}

TEST(Coroutine, UnjoinedExceptionSurfacesFromRun)
{
    Engine eng;
    eng.spawn(throwing(eng));
    EXPECT_THROW(eng.run(), std::runtime_error);
}

Task
joinRethrows(ProcessRef target, bool& caught)
{
    try {
        co_await target.join();
    } catch (const std::runtime_error&) {
        caught = true;
    }
}

TEST(Coroutine, JoinRethrowsAndConsumesException)
{
    Engine eng;
    bool caught = false;
    auto p = eng.spawn(throwing(eng));
    eng.spawn(joinRethrows(p, caught));
    EXPECT_NO_THROW(eng.run());
    EXPECT_TRUE(caught);
}

Task
waitOn(CondVar& cv, const Engine& eng, std::vector<Tick>& wakeups)
{
    co_await cv.wait();
    wakeups.push_back(eng.now());
}

TEST(CondVar, NotifyAllWakesEveryWaiter)
{
    Engine eng;
    CondVar cv(eng);
    std::vector<Tick> wakeups;
    eng.spawn(waitOn(cv, eng, wakeups));
    eng.spawn(waitOn(cv, eng, wakeups));
    eng.schedule(200, [&] { cv.notifyAll(); });
    eng.run();
    EXPECT_EQ(wakeups, (std::vector<Tick>{200, 200}));
}

TEST(CondVar, NotifyOneWakesInFifoOrder)
{
    Engine eng;
    CondVar cv(eng);
    std::vector<int> order;
    auto waiter = [&](int id) -> Task {
        co_await cv.wait();
        order.push_back(id);
    };
    eng.spawn(waiter(1));
    eng.spawn(waiter(2));
    eng.schedule(10, [&] { cv.notifyOne(); });
    eng.schedule(20, [&] { cv.notifyOne(); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(OneShotEvent, LateWaitersDoNotBlock)
{
    Engine eng;
    OneShotEvent ev(eng);
    Tick woke_at = ~Tick{0};
    eng.schedule(5, [&] { ev.set(); });
    auto late = [&]() -> Task {
        co_await eng.delay(50);
        co_await ev.wait();
        woke_at = eng.now();
    };
    eng.spawn(late());
    eng.run();
    EXPECT_EQ(woke_at, 50u);
}

TEST(SimSemaphore, LimitsConcurrency)
{
    Engine eng;
    SimSemaphore sem(eng, 2);
    int active = 0;
    int peak = 0;
    auto worker = [&]() -> Task {
        co_await sem.acquire();
        ++active;
        peak = std::max(peak, active);
        co_await eng.delay(100);
        --active;
        sem.release();
    };
    for (int i = 0; i < 6; ++i)
        eng.spawn(worker());
    eng.run();
    EXPECT_EQ(peak, 2);
    EXPECT_EQ(active, 0);
    EXPECT_EQ(eng.now(), 300u);
}

CoTask<int>
innerValue(Engine& eng)
{
    co_await eng.delay(10);
    co_return 42;
}

Task
outerAwaitsInner(Engine& eng, int& result, Tick& at)
{
    result = co_await innerValue(eng);
    at = eng.now();
}

TEST(CoTask, NestedCallReturnsValueAndAdvancesTime)
{
    Engine eng;
    int result = 0;
    Tick at = 0;
    eng.spawn(outerAwaitsInner(eng, result, at));
    eng.run();
    EXPECT_EQ(result, 42);
    EXPECT_EQ(at, 10u);
}

CoTask<void>
innerThrows()
{
    throw std::logic_error("inner");
    co_return;
}

Task
outerCatches(bool& caught)
{
    try {
        co_await innerThrows();
    } catch (const std::logic_error&) {
        caught = true;
    }
}

TEST(CoTask, ExceptionPropagatesToAwaiter)
{
    Engine eng;
    bool caught = false;
    eng.spawn(outerCatches(caught));
    eng.run();
    EXPECT_TRUE(caught);
}

TEST(Engine, KillAllProcessesReleasesSuspendedFrames)
{
    auto eng = std::make_unique<Engine>();
    CondVar cv(*eng);
    auto blocked = [&]() -> Task { co_await cv.wait(); };
    eng->spawn(blocked());
    eng->spawn(blocked());
    eng->run();
    // Destroying the engine with two processes still suspended must not
    // leak or crash (ASAN would flag a leak here).
    eng.reset();
    SUCCEED();
}

TEST(Engine, ProcessAccountingIsAccurate)
{
    Engine eng;
    eng.spawn(finishAt(eng, 5));
    eng.spawn(finishAt(eng, 15));
    CondVar cv(eng);
    auto forever = [&]() -> Task { co_await cv.wait(); };
    eng.spawn(forever());
    eng.run();
    EXPECT_EQ(eng.processesSpawned(), 3u);
    EXPECT_EQ(eng.processesCompleted(), 2u);
}

} // namespace
} // namespace cell::sim
