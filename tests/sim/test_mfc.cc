/**
 * @file
 * MFC tests: DMA data movement, tag groups, fences/barriers, DMA
 * lists, queue back-pressure — exercised through a whole Machine.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/machine.h"

namespace cell::sim {
namespace {

MachineConfig
smallCfg(std::uint32_t spes = 2)
{
    MachineConfig cfg;
    cfg.num_spes = spes;
    return cfg;
}

/** Fill main memory with a recognizable pattern. */
void
fillPattern(MainMemory& mem, EffAddr ea, std::size_t len, std::uint8_t seed)
{
    std::vector<std::uint8_t> buf(len);
    for (std::size_t i = 0; i < len; ++i)
        buf[i] = static_cast<std::uint8_t>(seed + i);
    mem.write(ea, buf.data(), len);
}

bool
lsMatchesPattern(const LocalStore& ls, LsAddr addr, std::size_t len,
                 std::uint8_t seed)
{
    std::vector<std::uint8_t> buf(len);
    ls.read(addr, buf.data(), len);
    for (std::size_t i = 0; i < len; ++i) {
        if (buf[i] != static_cast<std::uint8_t>(seed + i))
            return false;
    }
    return true;
}

TEST(Mfc, GetMovesMemoryIntoLocalStore)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x10000, 4096, 3);

    auto prog = [&]() -> Task {
        MfcCommand cmd;
        cmd.op = MfcOpcode::Get;
        cmd.ls = 0x1000;
        cmd.ea = 0x10000;
        cmd.size = 4096;
        cmd.tag = 5;
        co_await m.spe(0).mfc().enqueueSpu(cmd);
        co_await m.spe(0).mfc().waitTagStatusAll(1u << 5);
    };
    m.spawnPpe(prog());
    m.run();
    EXPECT_TRUE(lsMatchesPattern(m.spe(0).localStore(), 0x1000, 4096, 3));
    EXPECT_EQ(m.spe(0).mfc().stats().bytes_get, 4096u);
}

TEST(Mfc, PutMovesLocalStoreIntoMemory)
{
    Machine m(smallCfg());
    std::vector<std::uint8_t> data(512);
    std::iota(data.begin(), data.end(), 0);
    m.spe(0).localStore().write(0x2000, data.data(), data.size());

    auto prog = [&]() -> Task {
        MfcCommand cmd;
        cmd.op = MfcOpcode::Put;
        cmd.ls = 0x2000;
        cmd.ea = 0x20000;
        cmd.size = 512;
        cmd.tag = 0;
        co_await m.spe(0).mfc().enqueueSpu(cmd);
        co_await m.spe(0).mfc().waitTagStatusAll(1u << 0);
    };
    m.spawnPpe(prog());
    m.run();
    std::vector<std::uint8_t> out(512);
    m.memory().read(0x20000, out.data(), out.size());
    EXPECT_EQ(out, data);
}

TEST(Mfc, LsToLsDmaBetweenSpes)
{
    Machine m(smallCfg(2));
    std::vector<std::uint8_t> data(256);
    std::iota(data.begin(), data.end(), 9);
    m.spe(1).localStore().write(0x3000, data.data(), data.size());

    // SPE0 GETs from SPE1's LS aperture.
    const EffAddr remote = m.config().lsAperture(1) + 0x3000;
    auto prog = [&]() -> Task {
        MfcCommand cmd;
        cmd.op = MfcOpcode::Get;
        cmd.ls = 0x100;
        cmd.ea = remote;
        cmd.size = 256;
        cmd.tag = 1;
        co_await m.spe(0).mfc().enqueueSpu(cmd);
        co_await m.spe(0).mfc().waitTagStatusAll(1u << 1);
    };
    m.spawnPpe(prog());
    m.run();
    std::vector<std::uint8_t> out(256);
    m.spe(0).localStore().read(0x100, out.data(), out.size());
    EXPECT_EQ(out, data);
    EXPECT_EQ(m.eib().stats().ls_to_ls_transfers, 1u);
}

TEST(Mfc, TagStatusTracksPerGroup)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x0, 1024, 0);
    std::vector<TagMask> statuses;

    auto prog = [&]() -> Task {
        Mfc& mfc = m.spe(0).mfc();
        MfcCommand a{MfcOpcode::Get, 0x0, 0x0, 512, 2, false, false, 0, 0};
        MfcCommand b{MfcOpcode::Get, 0x200, 0x200, 512, 7, false, false, 0, 0};
        co_await mfc.enqueueSpu(a);
        co_await mfc.enqueueSpu(b);
        EXPECT_EQ(mfc.outstanding(2), 1u);
        EXPECT_EQ(mfc.outstanding(7), 1u);
        statuses.push_back(co_await mfc.waitTagStatusAny((1u << 2) | (1u << 7)));
        statuses.push_back(co_await mfc.waitTagStatusAll((1u << 2) | (1u << 7)));
    };
    m.spawnPpe(prog());
    m.run();
    ASSERT_EQ(statuses.size(), 2u);
    EXPECT_NE(statuses[0], 0u);
    EXPECT_EQ(statuses[1], (1u << 2) | (1u << 7));
    EXPECT_EQ(m.spe(0).mfc().outstanding(2), 0u);
    EXPECT_EQ(m.spe(0).mfc().outstanding(7), 0u);
}

Task
enqueueOne(Machine& m, MfcCommand cmd)
{
    co_await m.spe(0).mfc().enqueueSpu(cmd);
}

TEST(Mfc, InvalidCommandsAreRejected)
{
    Machine m(smallCfg());
    MfcCommand bad_tag{MfcOpcode::Get, 0, 0, 16, 32, false, false, 0, 0};
    m.spawnPpe(enqueueOne(m, bad_tag));
    EXPECT_THROW(m.run(), std::invalid_argument);

    Machine m2(smallCfg());
    MfcCommand bad_size{MfcOpcode::Get, 0, 0, 24, 0, false, false, 0, 0};
    m2.spawnPpe(enqueueOne(m2, bad_size));
    EXPECT_THROW(m2.run(), std::invalid_argument);
}

TEST(Mfc, QueueBackPressureBlocksEnqueue)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x0, 1 << 20, 1);
    Tick enqueue_done = 0;

    auto prog = [&]() -> Task {
        Mfc& mfc = m.spe(0).mfc();
        // 24 large commands against a 16-deep queue: the 17th+ enqueue
        // must block until transfers complete.
        for (std::uint32_t i = 0; i < 24; ++i) {
            MfcCommand cmd{MfcOpcode::Get,
                           static_cast<LsAddr>(i % 16 * 0x4000 % 0x40000),
                           static_cast<EffAddr>(i) * 0x4000, 16384, 0,
                           false, false, 0, 0};
            cmd.ls = static_cast<LsAddr>((i % 14) * 0x4000);
            co_await mfc.enqueueSpu(cmd);
        }
        enqueue_done = m.engine().now();
        co_await mfc.waitTagStatusAll(1u << 0);
    };
    m.spawnPpe(prog());
    m.run();
    // The final enqueues must have waited for earlier completions, so
    // enqueue_done is far beyond 24 * issue cost.
    EXPECT_GT(enqueue_done, 24u * m.config().mfc.issue_latency);
}

TEST(Mfc, FenceOrdersWithinTagGroup)
{
    Machine m(smallCfg());
    // PUT 0xAA to address X, then fenced PUT of 0xBB to the same
    // address in the same tag group: the fence guarantees order.
    auto prog = [&]() -> Task {
        Mfc& mfc = m.spe(0).mfc();
        m.spe(0).localStore().store<std::uint8_t>(0x0, 0xAA);
        m.spe(0).localStore().store<std::uint8_t>(0x10, 0xBB);
        MfcCommand first{MfcOpcode::Put, 0x0, 0x50000, 1, 3, false, false, 0, 0};
        MfcCommand second{MfcOpcode::Put, 0x10, 0x50000, 1, 3, true, false, 0, 0};
        // Different LS quadword offsets for the same EA are illegal for
        // small transfers; use offset-matching addresses instead.
        second.ls = 0x20;
        co_await mfc.enqueueSpu(first);
        co_await mfc.enqueueSpu(second);
        co_await mfc.waitTagStatusAll(1u << 3);
    };
    m.spe(0).localStore().store<std::uint8_t>(0x20, 0xBB);
    m.spawnPpe(prog());
    m.run();
    EXPECT_EQ(m.memory().peek<std::uint8_t>(0x50000), 0xBB);
}

TEST(Mfc, BarrierBlocksLaterCommandsInGroup)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x0, 65536, 0);
    auto prog = [&]() -> Task {
        Mfc& mfc = m.spe(0).mfc();
        // Large PUT, then barriered GET, then another GET: the barrier
        // must hold the third command until it completes.
        MfcCommand a{MfcOpcode::Put, 0x0, 0x60000, 16384, 4, false, false, 0, 0};
        MfcCommand b{MfcOpcode::Get, 0x4000, 0x0, 16384, 4, false, true, 0, 0};
        MfcCommand c{MfcOpcode::Get, 0x8000, 0x4000, 16384, 4, false, false, 0, 0};
        co_await mfc.enqueueSpu(a);
        co_await mfc.enqueueSpu(b);
        co_await mfc.enqueueSpu(c);
        co_await mfc.waitTagStatusAll(1u << 4);
    };
    m.spawnPpe(prog());
    m.run();
    // Completion order is implied by data landing correctly; the real
    // assertion is in the stats: all three ran.
    EXPECT_EQ(m.spe(0).mfc().stats().commands, 3u);
}

TEST(Mfc, IndependentTagBypassesBlockedGroup)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x0, 65536, 0);
    Tick small_done = 0;
    Tick big_done = 0;

    auto prog = [&]() -> Task {
        Mfc& mfc = m.spe(0).mfc();
        // Tag 1: big PUT then fenced GET (stalls until PUT completes).
        MfcCommand big{MfcOpcode::Put, 0x0, 0x70000, 16384, 1, false, false, 0, 0};
        MfcCommand fenced{MfcOpcode::Get, 0x4000, 0x0, 16384, 1, true, false, 0, 0};
        // Tag 2: small GET enqueued after — must NOT wait for tag 1.
        MfcCommand small{MfcOpcode::Get, 0x8000, 0x100, 16, 2, false, false, 0, 0};
        co_await mfc.enqueueSpu(big);
        co_await mfc.enqueueSpu(fenced);
        co_await mfc.enqueueSpu(small);
        co_await mfc.waitTagStatusAll(1u << 2);
        small_done = m.engine().now();
        co_await mfc.waitTagStatusAll(1u << 1);
        big_done = m.engine().now();
    };
    m.spawnPpe(prog());
    m.run();
    EXPECT_LT(small_done, big_done);
}

TEST(Mfc, DmaListGathersElements)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x1000, 256, 10);
    fillPattern(m.memory(), 0x9000, 256, 20);
    fillPattern(m.memory(), 0x5000, 256, 30);

    auto prog = [&]() -> Task {
        LocalStore& ls = m.spe(0).localStore();
        // Build a 3-element gather list at LS 0x200.
        ls.store(0x200, MfcListElement::make(256, 0x1000));
        ls.store(0x208, MfcListElement::make(256, 0x9000));
        ls.store(0x210, MfcListElement::make(256, 0x5000));
        MfcCommand cmd;
        cmd.op = MfcOpcode::GetList;
        cmd.ls = 0x4000;
        cmd.ea = 0; // high 32 bits zero
        cmd.size = 3 * sizeof(MfcListElement);
        cmd.list_ls = 0x200;
        cmd.tag = 6;
        co_await m.spe(0).mfc().enqueueSpu(cmd);
        co_await m.spe(0).mfc().waitTagStatusAll(1u << 6);
    };
    m.spawnPpe(prog());
    m.run();
    EXPECT_TRUE(lsMatchesPattern(m.spe(0).localStore(), 0x4000, 256, 10));
    EXPECT_TRUE(lsMatchesPattern(m.spe(0).localStore(), 0x4100, 256, 20));
    EXPECT_TRUE(lsMatchesPattern(m.spe(0).localStore(), 0x4200, 256, 30));
    EXPECT_EQ(m.spe(0).mfc().stats().list_commands, 1u);
    EXPECT_EQ(m.spe(0).mfc().stats().list_elements, 3u);
}

TEST(Mfc, DmaListStallAndNotify)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x1000, 512, 1);
    bool saw_stall = false;

    auto prog = [&]() -> Task {
        LocalStore& ls = m.spe(0).localStore();
        Mfc& mfc = m.spe(0).mfc();
        ls.store(0x200, MfcListElement::make(256, 0x1000, /*stall=*/true));
        ls.store(0x208, MfcListElement::make(256, 0x1100));
        MfcCommand cmd;
        cmd.op = MfcOpcode::GetList;
        cmd.ls = 0x4000;
        cmd.size = 2 * sizeof(MfcListElement);
        cmd.list_ls = 0x200;
        cmd.tag = 9;
        co_await mfc.enqueueSpu(cmd);
        // Wait for the stall, then acknowledge it.
        while (!(mfc.stalledTags() & (1u << 9)))
            co_await m.engine().delay(50);
        saw_stall = true;
        mfc.ackListStall(9);
        co_await mfc.waitTagStatusAll(1u << 9);
    };
    m.spawnPpe(prog());
    m.run();
    EXPECT_TRUE(saw_stall);
    EXPECT_EQ(m.spe(0).mfc().stats().stall_notify_events, 1u);
    EXPECT_TRUE(lsMatchesPattern(m.spe(0).localStore(), 0x4100, 256, 1));
}

TEST(Mfc, ProxyQueueWorksFromPpe)
{
    Machine m(smallCfg());
    fillPattern(m.memory(), 0x8000, 1024, 42);
    auto prog = [&]() -> Task {
        Mfc& mfc = m.spe(0).mfc();
        MfcCommand cmd{MfcOpcode::Get, 0x0, 0x8000, 1024, 12, false, false, 0, 0};
        co_await mfc.enqueueProxy(cmd);
        co_await mfc.waitTagStatusAll(1u << 12);
    };
    m.spawnPpe(prog());
    m.run();
    EXPECT_TRUE(lsMatchesPattern(m.spe(0).localStore(), 0x0, 1024, 42));
}

Task
concurrentGets(Machine& m, std::uint32_t s)
{
    Mfc& mfc = m.spe(s).mfc();
    for (int rep = 0; rep < 4; ++rep) {
        MfcCommand cmd{MfcOpcode::Get,
                       static_cast<LsAddr>(rep * 0x2000),
                       0x100000 + s * 0x10000 + rep * 0x800ULL,
                       2048, static_cast<TagId>(rep), false, false,
                       0, 0};
        co_await mfc.enqueueSpu(cmd);
    }
    co_await mfc.waitTagStatusAll(0xF);
}

TEST(Mfc, ManyConcurrentSpesKeepDataIntact)
{
    const std::uint32_t kSpes = 8;
    Machine m(smallCfg(kSpes));
    for (std::uint32_t s = 0; s < kSpes; ++s)
        fillPattern(m.memory(), 0x100000 + s * 0x10000, 8192,
                    static_cast<std::uint8_t>(s * 11));

    for (std::uint32_t s = 0; s < kSpes; ++s)
        m.spawnPpe(concurrentGets(m, s), "spe" + std::to_string(s));
    m.run();
    for (std::uint32_t s = 0; s < kSpes; ++s) {
        for (int rep = 0; rep < 4; ++rep) {
            EXPECT_TRUE(lsMatchesPattern(
                m.spe(s).localStore(), static_cast<LsAddr>(rep * 0x2000), 2048,
                static_cast<std::uint8_t>(s * 11 + rep * 0x800)));
        }
    }
}

} // namespace
} // namespace cell::sim
