/**
 * @file
 * Randomized MFC/EIB stress tests with oracle checking.
 *
 * A seeded generator issues hundreds of random legal DMA commands per
 * SPE against disjoint regions, so final data is checkable regardless
 * of completion order; fence chains onto shared addresses check the
 * ordering rules; every seed is deterministic and the whole sweep is
 * parameterized.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/machine.h"

namespace cell::sim {
namespace {

/** Deterministic 32-bit LCG. */
struct Rng
{
    std::uint32_t s;
    explicit Rng(std::uint32_t seed) : s(seed ? seed : 1) {}
    std::uint32_t next()
    {
        s = s * 1664525u + 1013904223u;
        return s;
    }
    std::uint32_t below(std::uint32_t n) { return next() % n; }
};

struct StressOp
{
    bool is_get;
    LsAddr ls;
    EffAddr ea;
    std::uint32_t size;
    TagId tag;
    std::uint8_t seed;
};

/** Generate @p n random ops for one SPE; every op gets its own LS
 *  slot and EA region, so any completion order yields the same final
 *  data and every op is oracle-checkable. */
std::vector<StressOp>
genOps(Rng& rng, std::uint32_t n, std::uint32_t spe)
{
    std::vector<StressOp> ops;
    for (std::uint32_t i = 0; i < n; ++i) {
        StressOp op;
        op.is_get = rng.below(2) == 0;
        op.ls = 0x4000 + i * 2048; // unique slot per op
        op.ea = 0x100'0000 + (std::uint64_t{spe} * n + i) * 2048;
        // Legal sizes: 16..2048, multiple of 16.
        op.size = (1 + rng.below(128)) * 16;
        op.tag = rng.below(kNumTagGroups);
        op.seed = static_cast<std::uint8_t>(rng.next());
        ops.push_back(op);
    }
    return ops;
}

Task
runOps(Machine& m, std::uint32_t spe, const std::vector<StressOp>* ops)
{
    Mfc& mfc = m.spe(spe).mfc();
    for (const StressOp& op : *ops) {
        MfcCommand cmd;
        cmd.op = op.is_get ? MfcOpcode::Get : MfcOpcode::Put;
        cmd.ls = op.ls;
        cmd.ea = op.ea;
        cmd.size = op.size;
        cmd.tag = op.tag;
        co_await mfc.enqueueSpu(cmd);
        // Occasionally wait on a random tag to vary queue depth.
        if ((op.seed & 0x7) == 0)
            co_await mfc.waitTagStatusAll(1u << op.tag);
    }
    co_await mfc.waitTagStatusAll(0xFFFF'FFFFu);
}

class DmaStress : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(DmaStress, RandomDisjointTrafficIsLossless)
{
    const std::uint32_t seed = GetParam();
    MachineConfig cfg;
    cfg.num_spes = 4;
    Machine m(cfg);
    Rng rng(seed);
    constexpr std::uint32_t kOpsPerSpe = 96; // 192 KiB of unique LS slots

    std::vector<std::vector<StressOp>> all(cfg.num_spes);
    for (std::uint32_t s = 0; s < cfg.num_spes; ++s) {
        all[s] = genOps(rng, kOpsPerSpe, s);
        // Pre-fill sources with per-op patterns.
        for (const StressOp& op : all[s]) {
            std::vector<std::uint8_t> pat(op.size);
            for (std::uint32_t i = 0; i < op.size; ++i)
                pat[i] = static_cast<std::uint8_t>(op.seed + i);
            if (op.is_get)
                m.memory().write(op.ea, pat.data(), pat.size());
            else
                m.spe(s).localStore().write(op.ls, pat.data(), pat.size());
        }
    }
    for (std::uint32_t s = 0; s < cfg.num_spes; ++s)
        m.spawnPpe(runOps(m, s, &all[s]), "stress" + std::to_string(s));
    m.run();

    // Oracle: every op's destination holds exactly its pattern.
    for (std::uint32_t s = 0; s < cfg.num_spes; ++s) {
        for (std::uint32_t i = 0; i < kOpsPerSpe; ++i) {
            const StressOp& op = all[s][i];
            std::vector<std::uint8_t> got(op.size);
            if (op.is_get)
                m.spe(s).localStore().read(op.ls, got.data(), got.size());
            else
                m.memory().read(op.ea, got.data(), got.size());
            for (std::uint32_t b = 0; b < op.size; ++b) {
                ASSERT_EQ(got[b], static_cast<std::uint8_t>(op.seed + b))
                    << "spe " << s << " op " << i << " byte " << b;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DmaStress,
                         ::testing::Values(1u, 2u, 3u, 42u, 1234u, 99999u));

Task
fenceChain(Machine& m, std::uint32_t writes, std::uint8_t* final_val)
{
    Mfc& mfc = m.spe(0).mfc();
    // Write increasing values to the same EA through one tag group,
    // each command fenced: the last value must win.
    for (std::uint32_t i = 0; i < writes; ++i) {
        m.spe(0).localStore().store<std::uint8_t>(
            static_cast<LsAddr>(i * 16),
            static_cast<std::uint8_t>(i + 1));
        MfcCommand cmd;
        cmd.op = MfcOpcode::Put;
        cmd.ls = static_cast<LsAddr>(i * 16);
        cmd.ea = 0x200000;
        cmd.size = 1;
        cmd.tag = 5;
        cmd.fence = i > 0;
        co_await mfc.enqueueSpu(cmd);
    }
    co_await mfc.waitTagStatusAll(1u << 5);
    *final_val = m.memory().peek<std::uint8_t>(0x200000);
}

class FenceChain : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(FenceChain, LastFencedWriteWins)
{
    const std::uint32_t writes = GetParam();
    MachineConfig cfg;
    cfg.num_spes = 1;
    Machine m(cfg);
    std::uint8_t final_val = 0;
    m.spawnPpe(fenceChain(m, writes, &final_val));
    m.run();
    EXPECT_EQ(final_val, static_cast<std::uint8_t>(writes));
}

INSTANTIATE_TEST_SUITE_P(Lengths, FenceChain,
                         ::testing::Values(2u, 3u, 8u, 16u, 24u));

TEST(DmaStressDeterminism, SameSeedSameFinalTick)
{
    auto run = [] {
        MachineConfig cfg;
        cfg.num_spes = 4;
        Machine m(cfg);
        Rng rng(77);
        std::vector<std::vector<StressOp>> all(cfg.num_spes);
        for (std::uint32_t s = 0; s < cfg.num_spes; ++s) {
            all[s] = genOps(rng, 100, s);
            for (const StressOp& op : all[s]) {
                std::vector<std::uint8_t> pat(op.size, op.seed);
                if (op.is_get)
                    m.memory().write(op.ea, pat.data(), pat.size());
                else
                    m.spe(s).localStore().write(op.ls, pat.data(),
                                                pat.size());
            }
        }
        for (std::uint32_t s = 0; s < cfg.num_spes; ++s)
            m.spawnPpe(runOps(m, s, &all[s]));
        m.run();
        return m.engine().now();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace cell::sim
