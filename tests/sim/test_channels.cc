/**
 * @file
 * SPU channel-interface tests: the architected rdch/wrch/rchcnt
 * semantics, including the five-write MFC command-issue sequence.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/channels.h"
#include "sim/machine.h"

namespace cell::sim {
namespace {

MachineConfig
cfg1()
{
    MachineConfig c;
    c.num_spes = 2;
    return c;
}

/** Issue one GET through the raw channel sequence. */
CoTask<void>
channelGet(SpuChannels& ch, LsAddr ls, EffAddr ea, std::uint32_t size,
           TagId tag)
{
    co_await ch.write(MFC_LSA, ls);
    co_await ch.write(MFC_EAH, static_cast<std::uint32_t>(ea >> 32));
    co_await ch.write(MFC_EAL, static_cast<std::uint32_t>(ea));
    co_await ch.write(MFC_Size, size);
    co_await ch.write(MFC_TagID, tag);
    co_await ch.write(MFC_Cmd, MFC_GET_CMD);
}

/** Architected tag-wait-all: mask, update ALL, read status. */
CoTask<TagMask>
channelTagWaitAll(SpuChannels& ch, TagMask mask)
{
    co_await ch.write(MFC_WrTagMask, mask);
    co_await ch.write(MFC_WrTagUpdate, MFC_TAG_UPDATE_ALL);
    co_return co_await ch.read(MFC_RdTagStat);
}

Task
dmaViaChannels(SpuChannels& ch, bool* ok)
{
    co_await channelGet(ch, 0x1000, 0x8000, 256, 6);
    const TagMask done = co_await channelTagWaitAll(ch, 1u << 6);
    *ok = done == (1u << 6);
}

TEST(Channels, MfcCommandSequenceMovesData)
{
    Machine m(cfg1());
    std::vector<std::uint8_t> pat(256);
    std::iota(pat.begin(), pat.end(), 1);
    m.memory().write(0x8000, pat.data(), pat.size());

    SpuChannels ch(m.spe(0));
    bool ok = false;
    m.spawnPpe(dmaViaChannels(ch, &ok));
    m.run();
    EXPECT_TRUE(ok);
    std::vector<std::uint8_t> got(256);
    m.spe(0).localStore().read(0x1000, got.data(), got.size());
    EXPECT_EQ(got, pat);
}

Task
fencedPutViaChannels(Machine& m, SpuChannels& ch)
{
    m.spe(0).localStore().store<std::uint8_t>(0x0, 0x11);
    m.spe(0).localStore().store<std::uint8_t>(0x10, 0x22);
    co_await ch.write(MFC_LSA, 0x0);
    co_await ch.write(MFC_EAH, 0);
    co_await ch.write(MFC_EAL, 0x9000);
    co_await ch.write(MFC_Size, 1);
    co_await ch.write(MFC_TagID, 3);
    co_await ch.write(MFC_Cmd, MFC_PUT_CMD);
    co_await ch.write(MFC_LSA, 0x10);
    co_await ch.write(MFC_Cmd, MFC_PUTF_CMD); // fenced: ordered after
    co_await channelTagWaitAll(ch, 1u << 3);
}

TEST(Channels, FencedOpcodeOrdersWrites)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    m.spawnPpe(fencedPutViaChannels(m, ch));
    m.run();
    EXPECT_EQ(m.memory().peek<std::uint8_t>(0x9000), 0x22);
}

Task
listViaChannels(Machine& m, SpuChannels& ch)
{
    LocalStore& ls = m.spe(0).localStore();
    ls.store(0x200, MfcListElement::make(128, 0x8000));
    ls.store(0x208, MfcListElement::make(128, 0x8200));
    co_await ch.write(MFC_LSA, 0x4000);
    co_await ch.write(MFC_EAH, 0);
    co_await ch.write(MFC_EAL, 0x200); // list address in LS
    co_await ch.write(MFC_Size, 16);   // 2 elements
    co_await ch.write(MFC_TagID, 9);
    co_await ch.write(MFC_Cmd, MFC_GETL_CMD);
    co_await channelTagWaitAll(ch, 1u << 9);
}

TEST(Channels, ListCommandViaChannels)
{
    Machine m(cfg1());
    std::vector<std::uint8_t> a(128, 0xAA), b(128, 0xBB);
    m.memory().write(0x8000, a.data(), a.size());
    m.memory().write(0x8200, b.data(), b.size());
    SpuChannels ch(m.spe(0));
    m.spawnPpe(listViaChannels(m, ch));
    m.run();
    EXPECT_EQ(m.spe(0).localStore().load<std::uint8_t>(0x4000), 0xAA);
    EXPECT_EQ(m.spe(0).localStore().load<std::uint8_t>(0x4080), 0xBB);
    EXPECT_EQ(m.spe(0).mfc().stats().list_commands, 1u);
}

Task
mailboxViaChannels(Machine& m, SpuChannels& ch, std::uint32_t* got)
{
    co_await ch.write(SPU_WrOutMbox, 0x1234);
    *got = co_await ch.read(SPU_RdInMbox);
    (void)m;
}

TEST(Channels, MailboxChannels)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::uint32_t got = 0;
    m.spawnPpe(mailboxViaChannels(m, ch, &got));
    m.engine().schedule(500, [&] { m.spe(0).inbound().tryPush(0x5678); });
    m.run();
    EXPECT_EQ(got, 0x5678u);
    std::uint32_t out = 0;
    EXPECT_TRUE(m.spe(0).outbound().tryPop(out));
    EXPECT_EQ(out, 0x1234u);
}

TEST(Channels, CountsReflectArchitectedSemantics)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    // Parameter latches never stall.
    EXPECT_EQ(ch.count(MFC_LSA), 1u);
    EXPECT_EQ(ch.count(MFC_WrTagMask), 1u);
    // Empty inbound mailbox: 0 readable.
    EXPECT_EQ(ch.count(SPU_RdInMbox), 0u);
    m.spe(0).inbound().tryPush(1);
    m.spe(0).inbound().tryPush(2);
    EXPECT_EQ(ch.count(SPU_RdInMbox), 2u);
    // Outbound empty: 1 writable slot.
    EXPECT_EQ(ch.count(SPU_WrOutMbox), 1u);
    m.spe(0).outbound().tryPush(7);
    EXPECT_EQ(ch.count(SPU_WrOutMbox), 0u);
    // Signals.
    EXPECT_EQ(ch.count(SPU_RdSigNotify1), 0u);
    m.spe(0).signal1().post(0x4);
    EXPECT_EQ(ch.count(SPU_RdSigNotify1), 1u);
    // Free MFC queue: 16 slots.
    EXPECT_EQ(ch.count(MFC_Cmd), 16u);
}

Task
decViaChannels(Machine& m, SpuChannels& ch, std::uint32_t* v)
{
    co_await ch.write(SPU_WrDec, 1000);
    co_await m.engine().delay(1200); // 10 ticks at divider 120
    *v = co_await ch.read(SPU_RdDec);
}

TEST(Channels, DecrementerChannels)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    std::uint32_t v = 0;
    m.spawnPpe(decViaChannels(m, ch, &v));
    m.run();
    EXPECT_LE(v, 990u);
    EXPECT_GE(v, 989u);
}

Task
badOps(Machine& m, SpuChannels& ch, int* caught)
{
    (void)m;
    try {
        co_await ch.write(99, 0);
    } catch (const std::invalid_argument&) {
        ++*caught;
    }
    try {
        co_await ch.read(MFC_LSA);
    } catch (const std::invalid_argument&) {
        ++*caught;
    }
    try {
        co_await ch.read(MFC_RdTagStat); // no WrTagUpdate first
    } catch (const std::invalid_argument&) {
        ++*caught;
    }
    try {
        co_await ch.write(MFC_Cmd, 0xFF); // unknown opcode
    } catch (const std::invalid_argument&) {
        ++*caught;
    }
}

TEST(Channels, IllegalAccessesThrow)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    int caught = 0;
    m.spawnPpe(badOps(m, ch, &caught));
    m.run();
    EXPECT_EQ(caught, 4);
    EXPECT_THROW(ch.count(99), std::invalid_argument);
}

Task
immediateTagStat(Machine& m, SpuChannels& ch, TagMask* stat)
{
    (void)m;
    co_await ch.write(MFC_WrTagMask, 0xFF);
    co_await ch.write(MFC_WrTagUpdate, MFC_TAG_UPDATE_IMMEDIATE);
    EXPECT_EQ(ch.count(MFC_RdTagStat), 1u);
    *stat = co_await ch.read(MFC_RdTagStat);
}

TEST(Channels, ImmediateTagStatusDoesNotBlock)
{
    Machine m(cfg1());
    SpuChannels ch(m.spe(0));
    TagMask stat = 0;
    m.spawnPpe(immediateTagStat(m, ch, &stat));
    m.run();
    EXPECT_EQ(stat, 0xFFu); // nothing outstanding: all groups done
}

} // namespace
} // namespace cell::sim
