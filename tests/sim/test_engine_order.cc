/**
 * @file
 * Engine event-ordering and allocation-discipline tests.
 *
 * Covers the invariants the rebuilt hot path must preserve:
 *
 *  - FIFO dispatch among events scheduled for the same tick, including
 *    events scheduled *during* that tick's batch (they join the end of
 *    the current batch, not the next tick);
 *  - (tick, seq) ordering across mixed callback/resume events;
 *  - killAllProcesses correctness with pooled event storage and pooled
 *    coroutine frames (no leaks, engine left idle, pool reusable by a
 *    fresh engine);
 *  - zero host heap allocations per delay() resume on the steady-state
 *    path, asserted via a global operator-new counting hook.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/frame_pool.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

// Heap-counting hook: every global allocation in this binary bumps
// g_allocs, letting tests assert a region performed none.
void*
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using cell::sim::Engine;
using cell::sim::FramePool;
using cell::sim::Task;
using cell::sim::Tick;

TEST(EngineOrder, SameTickCallbacksRunInScheduleOrder)
{
    Engine eng;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eng.schedule(10, [&order, i] { order.push_back(i); });
    eng.run();
    ASSERT_EQ(order.size(), 8u);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EngineOrder, EventsScheduledDuringBatchJoinSameTickFifo)
{
    Engine eng;
    std::vector<std::string> order;
    eng.schedule(5, [&] {
        order.push_back("first");
        // Scheduled while tick 5's batch is being drained: must run
        // at tick 5, after every event already queued for tick 5.
        eng.schedule(5, [&] { order.push_back("nested-a"); });
        eng.schedule(5, [&] { order.push_back("nested-b"); });
    });
    eng.schedule(5, [&] { order.push_back("second"); });
    Tick nested_tick = 0;
    eng.schedule(6, [&] { order.push_back("next-tick"); });
    eng.schedule(5, [&eng, &nested_tick, &order] {
        order.push_back("third");
        eng.schedule(5, [&eng, &nested_tick, &order] {
            nested_tick = eng.now();
            order.push_back("nested-c");
        });
    });
    eng.run();
    const std::vector<std::string> want{"first",    "second",   "third",
                                        "nested-a", "nested-b", "nested-c",
                                        "next-tick"};
    EXPECT_EQ(order, want);
    EXPECT_EQ(nested_tick, 5u);
}

TEST(EngineOrder, MixedTicksFollowTickThenSequence)
{
    Engine eng;
    std::vector<int> order;
    eng.schedule(30, [&] { order.push_back(30); });
    eng.schedule(10, [&] { order.push_back(10); });
    eng.schedule(20, [&] { order.push_back(20); });
    eng.schedule(10, [&] { order.push_back(11); });
    eng.schedule(30, [&] { order.push_back(31); });
    eng.run();
    const std::vector<int> want{10, 11, 20, 30, 31};
    EXPECT_EQ(order, want);
}

Task
delayChain(Engine& eng, int hops, std::vector<Tick>& ticks)
{
    for (int i = 0; i < hops; ++i) {
        co_await eng.delay(1);
        ticks.push_back(eng.now());
    }
}

TEST(EngineOrder, ResumesAndCallbacksInterleaveDeterministically)
{
    Engine eng;
    std::vector<Tick> ticks;
    std::vector<std::string> order;
    eng.spawn(delayChain(eng, 3, ticks), "chain");
    // The process resumes at ticks 1,2,3; callbacks bracket it.
    eng.schedule(1, [&] { order.push_back("cb@1"); });
    eng.schedule(2, [&] { order.push_back("cb@2"); });
    eng.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{1, 2, 3}));
    EXPECT_EQ(order, (std::vector<std::string>{"cb@1", "cb@2"}));
    EXPECT_TRUE(eng.idle());
    EXPECT_EQ(eng.processesSpawned(), 1u);
    EXPECT_EQ(eng.processesCompleted(), 1u);
}

struct DtorFlag
{
    bool* flag;
    explicit DtorFlag(bool* f) : flag(f) {}
    DtorFlag(const DtorFlag&) = delete;
    ~DtorFlag() { *flag = true; }
};

Task
sleeper(Engine& eng, bool* destroyed)
{
    DtorFlag guard(destroyed);
    co_await eng.delay(1'000'000);
}

TEST(EngineOrder, KillAllProcessesDestroysFramesAndEmptiesQueues)
{
    bool destroyed[3] = {false, false, false};
    {
        Engine eng;
        for (bool& d : destroyed)
            eng.spawn(sleeper(eng, &d), "sleeper");
        eng.run(10); // processes reach their delay, far-future events queued
        EXPECT_FALSE(eng.idle());
        eng.killAllProcesses();
        EXPECT_TRUE(eng.idle());
        for (bool d : destroyed)
            EXPECT_TRUE(d) << "coroutine locals must be destroyed";
    }
    // The frame pool cached the killed frames; a fresh engine must be
    // able to reuse them for a full run.
    Engine eng2;
    std::vector<Tick> ticks;
    eng2.spawn(delayChain(eng2, 2, ticks), "chain");
    eng2.run();
    EXPECT_EQ(ticks, (std::vector<Tick>{1, 2}));
}

Task
steadySpinner(Engine& eng)
{
    for (;;)
        co_await eng.delay(1);
}

TEST(EngineOrder, SteadyStateDelayResumeAllocatesNothing)
{
    Engine eng;
    eng.spawn(steadySpinner(eng), "spinner");
    Tick t = 0;
    // Warm up: frame allocated, event storage sized, pool primed.
    for (int i = 0; i < 64; ++i)
        eng.run(++t);
    const std::uint64_t d0 = eng.eventsDispatched();
    const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
    for (int i = 0; i < 4096; ++i)
        eng.run(++t);
    const std::uint64_t after = g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state delay()/resume must not touch the heap";
    EXPECT_EQ(eng.eventsDispatched() - d0, 4096u);
}

TEST(EngineOrder, FramePoolReusesFrames)
{
    // Burn in one coroutine so the pool holds its frame size class.
    {
        Engine eng;
        std::vector<Tick> ticks;
        eng.spawn(delayChain(eng, 1, ticks), "warm");
        eng.run();
    }
    const std::uint64_t misses_before = FramePool::misses();
    const std::uint64_t hits_before = FramePool::hits();
    for (int i = 0; i < 8; ++i) {
        Engine eng;
        std::vector<Tick> ticks;
        eng.spawn(delayChain(eng, 1, ticks), "reuse");
        eng.run();
    }
    EXPECT_EQ(FramePool::misses(), misses_before)
        << "identical frames must be served from the pool";
    EXPECT_GT(FramePool::hits(), hits_before);
}

} // namespace
