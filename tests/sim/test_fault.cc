/**
 * @file
 * Fault-injection tests: plan parsing/validation, determinism of the
 * counter-based draw streams, per-actor independence, rate behaviour,
 * and the arena-exhaustion window.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/fault.h"

namespace cell::sim {
namespace {

TEST(FaultPlan, DefaultIsDisabled)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    EXPECT_NO_THROW(plan.validate());
}

TEST(FaultPlan, ValidateRejectsBadRates)
{
    FaultPlan plan;
    plan.dma_delay_permille = 1001;
    EXPECT_THROW(plan.validate(), std::invalid_argument);

    plan = FaultPlan{};
    plan.arena_exhaust_begin = 5;
    plan.arena_exhaust_end = 3;
    EXPECT_THROW(plan.validate(), std::invalid_argument);
}

TEST(FaultPlan, ParsesKeyValueText)
{
    const FaultPlan plan = FaultPlan::parse("seed=42\n"
                                            "dma_delay_permille=25 # comment\n"
                                            "dma_delay_cycles=5000\n"
                                            "mbox_stall_permille=10\n"
                                            "arena_exhaust_begin=4\n"
                                            "arena_exhaust_end=8\n");
    EXPECT_EQ(plan.seed, 42u);
    EXPECT_EQ(plan.dma_delay_permille, 25u);
    EXPECT_EQ(plan.dma_delay_cycles, 5000u);
    EXPECT_EQ(plan.mbox_stall_permille, 10u);
    EXPECT_EQ(plan.arena_exhaust_begin, 4u);
    EXPECT_EQ(plan.arena_exhaust_end, 8u);
    EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, ParseRejectsUnknownKeysAndBadValues)
{
    EXPECT_THROW(FaultPlan::parse("bogus_key=1"), std::invalid_argument);
    EXPECT_THROW(FaultPlan::parse("dma_delay_permille=2000"),
                 std::invalid_argument);
}

TEST(FaultInjector, InertByDefault)
{
    FaultInjector inj;
    EXPECT_FALSE(inj.enabled());
    for (std::uint32_t actor = 0; actor < 4; ++actor) {
        EXPECT_EQ(inj.delayAt(FaultSite::MfcDma, actor), 0);
        EXPECT_EQ(inj.delayAt(FaultSite::Mailbox, actor), 0);
    }
    EXPECT_FALSE(inj.arenaExhausted(0, 0));
    EXPECT_EQ(inj.stats().totalInjected(), 0u);
}

TEST(FaultInjector, SameSeedSameDrawSequence)
{
    FaultPlan plan;
    plan.seed = 7;
    plan.dma_delay_permille = 300;
    FaultInjector a(plan);
    FaultInjector b(plan);
    for (int i = 0; i < 500; ++i) {
        EXPECT_EQ(a.delayAt(FaultSite::MfcDma, 3),
                  b.delayAt(FaultSite::MfcDma, 3));
    }
    EXPECT_EQ(a.stats().injected, b.stats().injected);
    EXPECT_EQ(a.stats().injected_cycles, b.stats().injected_cycles);
}

TEST(FaultInjector, DifferentSeedsDiverge)
{
    FaultPlan pa, pb;
    pa.seed = 1;
    pb.seed = 2;
    pa.dma_delay_permille = pb.dma_delay_permille = 500;
    FaultInjector a(pa);
    FaultInjector b(pb);
    bool differed = false;
    for (int i = 0; i < 200 && !differed; ++i) {
        differed = a.delayAt(FaultSite::MfcDma, 0) !=
                   b.delayAt(FaultSite::MfcDma, 0);
    }
    EXPECT_TRUE(differed);
}

TEST(FaultInjector, ActorStreamsAreIndependentOfInterleaving)
{
    // Drawing for actor 0 and actor 1 in different global orders must
    // yield the same per-actor sequences — injection cannot depend on
    // cross-core interleaving.
    FaultPlan plan;
    plan.seed = 9;
    plan.mbox_stall_permille = 400;

    FaultInjector x(plan);
    std::vector<TickDelta> x0, x1;
    for (int i = 0; i < 100; ++i) {
        x0.push_back(x.delayAt(FaultSite::Mailbox, 0));
        x1.push_back(x.delayAt(FaultSite::Mailbox, 1));
    }

    FaultInjector y(plan);
    std::vector<TickDelta> y1, y0;
    for (int i = 0; i < 100; ++i) // all of actor 1 first
        y1.push_back(y.delayAt(FaultSite::Mailbox, 1));
    for (int i = 0; i < 100; ++i)
        y0.push_back(y.delayAt(FaultSite::Mailbox, 0));

    EXPECT_EQ(x0, y0);
    EXPECT_EQ(x1, y1);
}

TEST(FaultInjector, SiteStreamsAreIndependent)
{
    // Adding draws on one site must not change another site's stream.
    FaultPlan plan;
    plan.seed = 11;
    plan.dma_delay_permille = 500;
    plan.mbox_stall_permille = 500;

    FaultInjector a(plan);
    std::vector<TickDelta> dma_a;
    for (int i = 0; i < 50; ++i)
        dma_a.push_back(a.delayAt(FaultSite::MfcDma, 0));

    FaultInjector b(plan);
    std::vector<TickDelta> dma_b;
    for (int i = 0; i < 50; ++i) {
        (void)b.delayAt(FaultSite::Mailbox, 0); // interleaved other site
        dma_b.push_back(b.delayAt(FaultSite::MfcDma, 0));
    }
    EXPECT_EQ(dma_a, dma_b);
}

TEST(FaultInjector, RateEndpointsBehave)
{
    FaultPlan plan;
    plan.dma_delay_permille = 1000; // always
    plan.dma_delay_cycles = 123;
    plan.mbox_stall_permille = 0; // never (but another site enables)
    FaultInjector inj(plan);
    for (int i = 0; i < 100; ++i) {
        EXPECT_EQ(inj.delayAt(FaultSite::MfcDma, 0), 123);
        EXPECT_EQ(inj.delayAt(FaultSite::Mailbox, 0), 0);
    }
    const auto& st = inj.stats();
    EXPECT_EQ(st.injected[static_cast<std::size_t>(FaultSite::MfcDma)], 100u);
    EXPECT_EQ(st.injected[static_cast<std::size_t>(FaultSite::Mailbox)], 0u);
    EXPECT_EQ(st.injected_cycles, 100u * 123u);
}

TEST(FaultInjector, RateIsApproximatelyHonoured)
{
    FaultPlan plan;
    plan.seed = 13;
    plan.dma_delay_permille = 250; // 25%
    FaultInjector inj(plan);
    int fired = 0;
    const int n = 4000;
    for (int i = 0; i < n; ++i)
        fired += inj.delayAt(FaultSite::MfcDma, 0) > 0 ? 1 : 0;
    // 25% +/- 5 points is a ~7-sigma band; failure means a broken PRNG.
    EXPECT_GT(fired, n / 5);
    EXPECT_LT(fired, n * 3 / 10);
}

TEST(FaultInjector, PpeActorHasItsOwnStream)
{
    FaultPlan plan;
    plan.seed = 17;
    plan.mbox_stall_permille = 500;
    FaultInjector inj(plan);
    std::vector<TickDelta> ppe, spe0;
    for (int i = 0; i < 100; ++i) {
        ppe.push_back(inj.delayAt(FaultSite::Mailbox,
                                  FaultInjector::kPpeActor));
        spe0.push_back(inj.delayAt(FaultSite::Mailbox, 0));
    }
    EXPECT_NE(ppe, spe0);
}

TEST(FaultInjector, ArenaExhaustionWindowIsHalfOpen)
{
    FaultPlan plan;
    plan.arena_exhaust_begin = 2;
    plan.arena_exhaust_end = 4;
    FaultInjector inj(plan);
    EXPECT_TRUE(plan.enabled());
    EXPECT_FALSE(inj.arenaExhausted(0, 0));
    EXPECT_FALSE(inj.arenaExhausted(0, 1));
    EXPECT_TRUE(inj.arenaExhausted(0, 2));
    EXPECT_TRUE(inj.arenaExhausted(0, 3));
    EXPECT_FALSE(inj.arenaExhausted(0, 4));
    // Per-SPE: the window applies to every SPE's attempt counter.
    EXPECT_TRUE(inj.arenaExhausted(5, 2));
}

// --- serving-path sites (ta serve, docs/SERVE.md) --------------------------

TEST(FaultPlan, ParsesServeSiteKeys)
{
    const FaultPlan plan =
        FaultPlan::parse("seed=9\n"
                         "serve_accept_delay_permille=100\n"
                         "serve_accept_delay_us=750\n"
                         "serve_read_chop_permille=200\n"
                         "serve_read_delay_us=20\n"
                         "serve_write_chop_permille=300\n"
                         "serve_write_delay_us=30\n"
                         "serve_cache_clear_permille=400\n");
    EXPECT_EQ(plan.serve_accept_delay_permille, 100u);
    EXPECT_EQ(plan.serve_accept_delay_us, 750u);
    EXPECT_EQ(plan.serve_read_chop_permille, 200u);
    EXPECT_EQ(plan.serve_read_delay_us, 20u);
    EXPECT_EQ(plan.serve_write_chop_permille, 300u);
    EXPECT_EQ(plan.serve_write_delay_us, 30u);
    EXPECT_EQ(plan.serve_cache_clear_permille, 400u);
    EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlan, ServeRatesAloneEnableAndValidate)
{
    for (auto set : {+[](FaultPlan& p) { p.serve_accept_delay_permille = 1; },
                     +[](FaultPlan& p) { p.serve_read_chop_permille = 1; },
                     +[](FaultPlan& p) { p.serve_write_chop_permille = 1; },
                     +[](FaultPlan& p) { p.serve_cache_clear_permille = 1; }}) {
        FaultPlan plan;
        set(plan);
        EXPECT_TRUE(plan.enabled());
        EXPECT_NO_THROW(plan.validate());
        set(plan); // same field again...
        plan.serve_cache_clear_permille = 1001; // ...then break one
        EXPECT_THROW(plan.validate(), std::invalid_argument);
    }
}

TEST(FaultInjector, ServeFireSequenceIsSeedDeterministic)
{
    FaultPlan plan;
    plan.seed = 21;
    plan.serve_read_chop_permille = 300;
    plan.serve_write_chop_permille = 300;
    const auto sequence = [](const FaultPlan& p) {
        FaultInjector inj(p);
        std::vector<bool> fires;
        for (int i = 0; i < 200; ++i) {
            fires.push_back(inj.fire(FaultSite::ServeRead, 0));
            fires.push_back(inj.fire(FaultSite::ServeWrite, 0));
        }
        return fires;
    };
    const std::vector<bool> a = sequence(plan);
    const std::vector<bool> b = sequence(plan);
    EXPECT_EQ(a, b);
    FaultPlan other = plan;
    other.seed = 22;
    EXPECT_NE(sequence(other), a);
}

TEST(FaultInjector, ServeFireHonoursRateEndpointsAndCounts)
{
    FaultPlan plan;
    plan.serve_cache_clear_permille = 1000; // always
    plan.serve_read_chop_permille = 0;      // never (but plan enabled)
    FaultInjector inj(plan);
    for (int i = 0; i < 50; ++i) {
        EXPECT_TRUE(inj.fire(FaultSite::ServeCachePressure, 0));
        EXPECT_FALSE(inj.fire(FaultSite::ServeRead, 0));
    }
    const FaultStats& stats = inj.stats();
    const auto idx = [](FaultSite s) { return static_cast<std::size_t>(s); };
    EXPECT_EQ(stats.injected[idx(FaultSite::ServeCachePressure)], 50u);
    EXPECT_EQ(stats.draws[idx(FaultSite::ServeCachePressure)], 50u);
    EXPECT_EQ(stats.injected[idx(FaultSite::ServeRead)], 0u);
    // Zero-rate sites short-circuit before the RNG: they count no
    // draws, so configuring a site off never perturbs the draw
    // sequence of the sites that are on.
    EXPECT_EQ(stats.draws[idx(FaultSite::ServeRead)], 0u);
}

TEST(FaultInjector, ServeSiteNamesAreDistinct)
{
    EXPECT_STREQ(faultSiteName(FaultSite::ServeAccept), "SERVE_ACCEPT");
    EXPECT_STREQ(faultSiteName(FaultSite::ServeRead), "SERVE_READ");
    EXPECT_STREQ(faultSiteName(FaultSite::ServeWrite), "SERVE_WRITE");
    EXPECT_STREQ(faultSiteName(FaultSite::ServeCachePressure),
                 "SERVE_CACHE_PRESSURE");
}

} // namespace
} // namespace cell::sim
