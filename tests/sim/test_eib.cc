/**
 * @file
 * Unit tests for the EIB reservation model.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/eib.h"

namespace cell::sim {
namespace {

EibConfig
defaultCfg()
{
    return EibConfig{};
}

TEST(Eib, OccupancyArithmetic)
{
    Eib eib(defaultCfg());
    // 16 KiB on a ring: 1024 bus cycles * 2 core cycles.
    EXPECT_EQ(eib.ringOccupancy(16384), 2048u);
    // 1 byte still occupies one bus cycle.
    EXPECT_EQ(eib.ringOccupancy(1), 2u);
    // MIC at 8 B/cycle.
    EXPECT_EQ(eib.micOccupancy(16384), 2048u);
    EXPECT_EQ(eib.micOccupancy(64), 8u);
}

TEST(Eib, SingleMemoryTransferLatency)
{
    EibConfig cfg = defaultCfg();
    Eib eib(cfg);
    auto g = eib.reserve(TransferKind::MemoryToLs, 4096, 0);
    // Data starts after the command phase; completion adds the
    // pipelined DRAM latency.
    EXPECT_EQ(g.start, cfg.command_latency);
    EXPECT_EQ(g.complete,
              g.start + eib.ringOccupancy(4096) + cfg.memory_latency);
}

TEST(Eib, LsToLsSkipsMemoryLatency)
{
    EibConfig cfg = defaultCfg();
    Eib eib(cfg);
    auto g = eib.reserve(TransferKind::LsToLs, 4096, 0);
    EXPECT_EQ(g.start, cfg.command_latency);
    EXPECT_EQ(g.complete, g.start + eib.ringOccupancy(4096));
}

TEST(Eib, ConcurrentTransfersSpreadAcrossRings)
{
    EibConfig cfg = defaultCfg();
    Eib eib(cfg);
    // Four LS-to-LS transfers at the same tick: all four rings busy,
    // identical completion times, distinct rings.
    std::set<std::uint32_t> rings;
    Tick complete = 0;
    for (int i = 0; i < 4; ++i) {
        auto g = eib.reserve(TransferKind::LsToLs, 16384, 0);
        rings.insert(g.ring);
        if (complete == 0)
            complete = g.complete;
        EXPECT_EQ(g.complete, complete);
    }
    EXPECT_EQ(rings.size(), 4u);
}

TEST(Eib, FifthTransferQueuesBehindBusiestRing)
{
    EibConfig cfg = defaultCfg();
    Eib eib(cfg);
    Tick first_complete = 0;
    for (int i = 0; i < 4; ++i)
        first_complete = eib.reserve(TransferKind::LsToLs, 16384, 0).complete;
    auto g5 = eib.reserve(TransferKind::LsToLs, 16384, 0);
    EXPECT_EQ(g5.start, first_complete);
    EXPECT_GT(eib.stats().queue_wait_cycles, 0u);
}

TEST(Eib, MemoryTransfersSerializeOnMicDataPhase)
{
    EibConfig cfg = defaultCfg();
    Eib eib(cfg);
    auto g1 = eib.reserve(TransferKind::MemoryToLs, 16384, 0);
    auto g2 = eib.reserve(TransferKind::MemoryToLs, 16384, 0);
    // Second transfer's data waits for the first's data phase, but
    // NOT for its (pipelined) DRAM latency.
    EXPECT_EQ(g2.start, g1.start + eib.micOccupancy(16384));
    EXPECT_EQ(g2.complete, g1.complete + eib.micOccupancy(16384));
}

TEST(Eib, SmallMemoryTransfersSustainMicByteRate)
{
    // Back-to-back 128-byte transfers must stream at the MIC rate,
    // not serialize behind each other's DRAM latency.
    EibConfig cfg = defaultCfg();
    Eib eib(cfg);
    Tick last_start = 0;
    Tick first_start = 0;
    constexpr int kN = 100;
    for (int i = 0; i < kN; ++i) {
        auto g = eib.reserve(TransferKind::MemoryToLs, 128, 0);
        if (i == 0)
            first_start = g.start;
        last_start = g.start;
    }
    const double cycles = static_cast<double>(last_start - first_start);
    const double per_transfer = cycles / (kN - 1);
    EXPECT_NEAR(per_transfer, eib.micOccupancy(128), 0.01);
}

TEST(Eib, StatsAccumulate)
{
    Eib eib(defaultCfg());
    eib.reserve(TransferKind::MemoryToLs, 128, 0);
    eib.reserve(TransferKind::LsToLs, 256, 0);
    eib.reserve(TransferKind::LsToMemory, 512, 10);
    const auto& s = eib.stats();
    EXPECT_EQ(s.transfers, 3u);
    EXPECT_EQ(s.bytes, 128u + 256u + 512u);
    EXPECT_EQ(s.memory_transfers, 2u);
    EXPECT_EQ(s.ls_to_ls_transfers, 1u);
}

TEST(Eib, DeterministicTieBreaking)
{
    // Two identical EIBs fed the same sequence grant identical rings.
    Eib a(defaultCfg());
    Eib b(defaultCfg());
    for (int i = 0; i < 32; ++i) {
        auto ga = a.reserve(TransferKind::LsToLs, 1024 * (1 + i % 4), i * 10);
        auto gb = b.reserve(TransferKind::LsToLs, 1024 * (1 + i % 4), i * 10);
        EXPECT_EQ(ga.ring, gb.ring);
        EXPECT_EQ(ga.complete, gb.complete);
    }
}

TEST(Eib, BandwidthBoundThroughput)
{
    // Saturating one ring moves bytes_per_bus_cycle per bus cycle.
    EibConfig cfg = defaultCfg();
    cfg.num_rings = 1;
    Eib eib(cfg);
    Tick last = 0;
    constexpr int kN = 64;
    for (int i = 0; i < kN; ++i)
        last = eib.reserve(TransferKind::LsToLs, 16384, 0).complete;
    const double bytes = static_cast<double>(kN) * 16384;
    const double cycles = static_cast<double>(last - cfg.command_latency);
    const double bytes_per_core_cycle = bytes / cycles;
    // 16 B per 2 core cycles == 8 B/core-cycle.
    EXPECT_NEAR(bytes_per_core_cycle, 8.0, 0.01);
}

} // namespace
} // namespace cell::sim
