/**
 * @file
 * Timebase/decrementer tests, including 32-bit wrap behaviour that the
 * trace analyzer's time reconstruction depends on.
 */

#include <gtest/gtest.h>

#include "sim/decrementer.h"

namespace cell::sim {
namespace {

TEST(Timebase, DividesCoreClock)
{
    Timebase tb(120);
    EXPECT_EQ(tb.read(0), 0u);
    EXPECT_EQ(tb.read(119), 0u);
    EXPECT_EQ(tb.read(120), 1u);
    EXPECT_EQ(tb.read(1200), 10u);
}

TEST(Decrementer, CountsDownAtTimebaseRate)
{
    Timebase tb(120);
    Decrementer dec(tb);
    dec.write(0, 1000);
    EXPECT_EQ(dec.read(0), 1000u);
    EXPECT_EQ(dec.read(120), 999u);
    EXPECT_EQ(dec.read(120 * 500), 500u);
}

TEST(Decrementer, WriteRebasesTheCounter)
{
    Timebase tb(10);
    Decrementer dec(tb);
    dec.write(0, 100);
    EXPECT_EQ(dec.read(50), 95u);
    dec.write(50, 1000);
    EXPECT_EQ(dec.read(50), 1000u);
    EXPECT_EQ(dec.read(150), 990u);
}

TEST(Decrementer, WrapsModulo32Bits)
{
    Timebase tb(1);
    Decrementer dec(tb);
    dec.write(0, 5);
    EXPECT_EQ(dec.read(5), 0u);
    EXPECT_EQ(dec.read(6), 0xFFFF'FFFFu);
    EXPECT_EQ(dec.read(7), 0xFFFF'FFFEu);
}

TEST(Decrementer, LongRunWrapsAreExact)
{
    Timebase tb(1);
    Decrementer dec(tb);
    dec.write(0, 0);
    // After exactly 2^32 timebase ticks the counter is back to 0.
    const Tick wrap = Tick{1} << 32;
    EXPECT_EQ(dec.read(wrap), 0u);
    EXPECT_EQ(dec.read(wrap + 1), 0xFFFF'FFFFu);
}

TEST(Decrementer, DefaultStartsAtAllOnes)
{
    Timebase tb(100);
    Decrementer dec(tb);
    EXPECT_EQ(dec.read(0), 0xFFFF'FFFFu);
}

} // namespace
} // namespace cell::sim
