/**
 * @file
 * `ta serve` acceptance suite — the daemon's differential and
 * robustness contract (docs/SERVE.md).
 *
 * Differential: for every workload trace in the suite (plus the
 * fault-injected drop trace), window / profile / loss / stats answered
 * through the daemon must BYTE-match the serial analyzer's reports, at
 * 1, 4 and 16 concurrent clients, with and without serving-path fault
 * injection. A query either succeeds identically or fails with a typed
 * shed/timeout status — never a wrong answer, a hang, or a crash.
 *
 * Robustness: admission control sheds with RETRY_AFTER when the
 * bounded queue fills; per-query deadlines cancel cooperatively and
 * answer TIMEOUT; a trace that fails strict reading degrades to a
 * salvage answer with a loss warning; malformed request frames cost
 * one connection, never the daemon; a registered file rewritten on
 * disk is revalidated, never served stale.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "ta/analyzer.h"
#include "ta/cancel.h"
#include "ta/parallel.h"
#include "ta/profile.h"
#include "ta/query.h"
#include "ta/serve.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace cell {
namespace {

using namespace cell::ta::serve;

using Factory =
    std::function<std::unique_ptr<wl::WorkloadBase>(rt::CellSystem&)>;

trace::TraceData
record(const Factory& make, sim::MachineConfig mcfg = {},
       pdt::PdtConfig pcfg = {})
{
    rt::CellSystem sys(mcfg);
    pdt::Pdt tracer(sys, pcfg);
    auto workload = make(sys);
    workload->start();
    sys.run();
    EXPECT_TRUE(workload->verify());
    return tracer.finalize();
}

struct NamedTrace
{
    std::string name;
    trace::TraceData data;
};

std::vector<NamedTrace>
workloadTraces()
{
    std::vector<NamedTrace> out;
    out.push_back({"triad", record([](rt::CellSystem& sys) {
                       wl::TriadParams p;
                       p.n_elements = 4096;
                       p.n_spes = 2;
                       return std::make_unique<wl::Triad>(sys, p);
                   })});
    out.push_back({"matmul", record([](rt::CellSystem& sys) {
                       wl::MatmulParams p;
                       p.n = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Matmul>(sys, p);
                   })});
    out.push_back({"fft", record([](rt::CellSystem& sys) {
                       wl::FftParams p;
                       p.fft_size = 256;
                       p.n_ffts = 16;
                       p.batch = 4;
                       p.n_spes = 2;
                       return std::make_unique<wl::Fft>(sys, p);
                   })});
    out.push_back({"conv2d", record([](rt::CellSystem& sys) {
                       wl::Conv2dParams p;
                       p.width = 256;
                       p.height = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Conv2d>(sys, p);
                   })});
    out.push_back({"pipeline", record([](rt::CellSystem& sys) {
                       wl::PipelineParams p;
                       p.n_elements = 8192;
                       p.n_stages = 2;
                       return std::make_unique<wl::Pipeline>(sys, p);
                   })});
    out.push_back({"workqueue", record([](rt::CellSystem& sys) {
                       wl::WorkQueueParams p;
                       p.n_items = 32;
                       p.tile_elems = 256;
                       p.n_spes = 2;
                       return std::make_unique<wl::WorkQueue>(sys, p);
                   })});
    return out;
}

trace::TraceData
dropTrace()
{
    sim::MachineConfig mcfg;
    mcfg.faults.seed = 7;
    mcfg.faults.dma_delay_permille = 150;
    mcfg.faults.dma_delay_cycles = 3'000;
    mcfg.faults.mbox_stall_permille = 200;
    mcfg.faults.arena_exhaust_begin = 1;
    mcfg.faults.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
    return record(
        [](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        },
        mcfg, pcfg);
}

/** A synthetic trace big enough that its analysis cannot finish
 *  inside a 1 ms deadline (the bench fixture's recipe, smaller). */
trace::TraceData
bigTrace(std::uint64_t n_records)
{
    constexpr std::uint32_t kCores = 9;
    trace::TraceData d;
    d.header.num_spes = kCores - 1;
    d.header.core_hz = 3'200'000'000ULL;
    d.header.timebase_divider = 8;
    d.spe_programs.assign(kCores - 1, "synthetic");
    d.records.reserve(n_records + kCores);
    std::uint32_t raw[kCores];
    for (std::uint16_t c = 0; c < kCores; ++c) {
        raw[c] = c == 0 ? 1000u : 0xFFFFF000u;
        trace::Record r{};
        r.kind = trace::kSyncRecord;
        r.core = c;
        r.a = raw[c];
        r.b = 1000;
        d.records.push_back(r);
    }
    bool begin[kCores] = {};
    for (std::uint64_t i = 0; i < n_records; ++i) {
        const auto c = static_cast<std::uint16_t>(i % kCores);
        trace::Record r{};
        r.core = c;
        r.kind = static_cast<std::uint8_t>(1 + (i / kCores) % 8);
        r.phase = begin[c] ? trace::kPhaseEnd : trace::kPhaseBegin;
        begin[c] = !begin[c];
        raw[c] += c == 0 ? 50u : -50u;
        r.timestamp = raw[c];
        d.records.push_back(r);
    }
    d.header.record_count = d.records.size();
    return d;
}

std::string
tempPath(const std::string& name)
{
    // ctest runs every case as its own process, possibly in parallel;
    // pid-keyed paths keep concurrent cases from rebuilding the same
    // fixture files (and sockets) under each other.
    return ::testing::TempDir() + "/serve_" +
           std::to_string(::getpid()) + "_" + name;
}

/** Expected report bodies for one trace, computed through the same
 *  printers the serial CLI calls. */
struct Expected
{
    std::string name;
    std::string path;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> windows;
    std::vector<std::string> window_bodies;
    std::string stats_body;
    std::string loss_body;
    std::string profile_body;
    std::string profile_windowed_body;
};

Expected
expectedFor(const NamedTrace& t, const std::string& path)
{
    Expected e;
    e.name = t.name;
    e.path = path;
    const ta::Analysis full = ta::analyze(t.data);
    const std::uint64_t s = full.model.startTb();
    const std::uint64_t end = full.model.endTb();
    const std::uint64_t span = end - s;
    e.windows = {
        {s > 10 ? s - 10 : 0, end + 10},    // whole file + margins
        {s + span / 4, s + (3 * span) / 4}, // middle half
        {s + span / 2, s + span / 2},       // empty
    };
    for (const auto& [from, to] : e.windows)
        e.window_bodies.push_back(
            ta::windowReport(ta::queryWindow(full, from, to)));
    std::ostringstream stats, loss, prof, profw;
    ta::printSummary(stats, full);
    e.stats_body = stats.str();
    ta::printLossReport(loss, full);
    e.loss_body = loss.str();
    ta::printActivity(prof, full, 60);
    e.profile_body = prof.str();
    const auto& [wf, wt] = e.windows[1];
    ta::printActivity(profw,
                      ta::windowAnalysis(ta::queryWindow(full, wf, wt)),
                      60);
    e.profile_windowed_body = profw.str();
    return e;
}

/** The per-trace query set: three windows, stats, loss, profile,
 *  windowed profile — each answered via callWithRetry and compared
 *  byte-for-byte. Returns the number of queries that came back OK. */
unsigned
queryAllAndCompare(Client& client, const Expected& e)
{
    unsigned ok = 0;
    const auto check = [&](Request req, const std::string& want,
                           const char* what) {
        req.name = e.name;
        const Response rsp = client.callWithRetry(req);
        SCOPED_TRACE(std::string(what) + " on " + e.name);
        ASSERT_EQ(rsp.status, Status::Ok)
            << statusName(rsp.status) << ": " << rsp.body;
        EXPECT_EQ(rsp.body, want);
        EXPECT_EQ(rsp.warning, "");
        ++ok;
    };
    for (std::size_t i = 0; i < e.windows.size(); ++i) {
        Request req;
        req.op = Op::Window;
        req.from = e.windows[i].first;
        req.to = e.windows[i].second;
        check(req, e.window_bodies[i], "window");
    }
    Request stats;
    stats.op = Op::Stats;
    check(stats, e.stats_body, "stats");
    Request loss;
    loss.op = Op::Loss;
    check(loss, e.loss_body, "loss");
    Request prof;
    prof.op = Op::Profile;
    check(prof, e.profile_body, "profile");
    Request profw;
    profw.op = Op::Profile;
    profw.windowed = true;
    profw.from = e.windows[1].first;
    profw.to = e.windows[1].second;
    check(profw, e.profile_windowed_body, "windowed profile");
    return ok;
}

/** Build the corpus once per binary run (the simulations dominate
 *  this suite's runtime). Files live for the whole run. */
const std::vector<Expected>&
corpus()
{
    static const std::vector<Expected> fixtures = [] {
        std::vector<NamedTrace> traces = workloadTraces();
        traces.push_back({"drops", dropTrace()});
        std::vector<Expected> out;
        for (const NamedTrace& t : traces) {
            const std::string path = tempPath(t.name + ".v2.pdt");
            trace::writeFile(path, t.data,
                             trace::WriteOptions{.index_stride = 64});
            out.push_back(expectedFor(t, path));
        }
        return out;
    }();
    return fixtures;
}

ServerConfig
baseConfig(const std::string& socket_name)
{
    ServerConfig cfg;
    cfg.socket_path = tempPath(socket_name);
    cfg.workers = 4;
    cfg.queue_depth = 32;
    cfg.thread_budget = 4;
    cfg.per_query_threads = 2;
    cfg.default_deadline_ms = 60'000;
    cfg.max_deadline_ms = 60'000;
    return cfg;
}

void
registerCorpus(Server& server)
{
    for (const Expected& e : corpus())
        server.registerTrace(e.name, e.path);
}

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

TEST(ServeProtocol, RequestRoundTripsThroughTheWire)
{
    Request req;
    req.op = Op::Profile;
    req.salvage = true;
    req.windowed = true;
    req.buckets = 123;
    req.deadline_ms = 4567;
    req.from = 0x1122334455667788ull;
    req.to = 0x99AABBCCDDEEFF00ull;
    req.name = "some-trace";
    const std::vector<std::uint8_t> wire = encodeRequest(req);

    Request back;
    std::size_t consumed = 0;
    std::string err;
    ASSERT_EQ(decodeRequest(wire.data(), wire.size(), back, consumed, err),
              Decode::Ok)
        << err;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(back, req);
}

TEST(ServeProtocol, ResponseRoundTripsThroughTheWire)
{
    Response rsp;
    rsp.status = Status::Timeout;
    rsp.warning = "warning line\n";
    rsp.body = std::string(100'000, 'x');
    const std::vector<std::uint8_t> wire = encodeResponse(rsp);

    Response back;
    std::size_t consumed = 0;
    std::string err;
    ASSERT_EQ(decodeResponse(wire.data(), wire.size(), back, consumed,
                             err),
              Decode::Ok)
        << err;
    EXPECT_EQ(consumed, wire.size());
    EXPECT_EQ(back.status, rsp.status);
    EXPECT_EQ(back.warning, rsp.warning);
    EXPECT_EQ(back.body, rsp.body);
}

TEST(ServeProtocol, EveryProperPrefixNeedsMoreNeverMisdecodes)
{
    Request req;
    req.op = Op::Window;
    req.name = "prefix-test";
    const std::vector<std::uint8_t> wire = encodeRequest(req);
    for (std::size_t n = 0; n < wire.size(); ++n) {
        Request out;
        std::size_t consumed = 0;
        std::string err;
        EXPECT_EQ(decodeRequest(wire.data(), n, out, consumed, err),
                  Decode::NeedMore)
            << "prefix of " << n << " bytes";
    }
}

TEST(ServeProtocol, GarbageOversizeAndMismatchedFramesAreBad)
{
    Request out;
    std::size_t consumed = 0;
    std::string err;

    // Wrong magic.
    std::vector<std::uint8_t> junk(64, 0xFF);
    EXPECT_EQ(decodeRequest(junk.data(), junk.size(), out, consumed, err),
              Decode::Bad);

    // Hostile length: valid magic, body length far past the cap. The
    // decoder must reject instead of waiting for (or allocating) 1 GiB.
    Request req;
    req.name = "x";
    std::vector<std::uint8_t> wire = encodeRequest(req);
    wire[4] = 0x00;
    wire[5] = 0x00;
    wire[6] = 0x00;
    wire[7] = 0x40; // body_len = 1 GiB
    EXPECT_EQ(decodeRequest(wire.data(), wire.size(), out, consumed, err),
              Decode::Bad);

    // Inconsistent name length.
    wire = encodeRequest(req);
    wire[8 + 24] = 0xEE; // name_len no longer matches body_len
    EXPECT_EQ(decodeRequest(wire.data(), wire.size(), out, consumed, err),
              Decode::Bad);

    // Unknown op and unknown flags.
    wire = encodeRequest(req);
    wire[8] = 0x7F;
    EXPECT_EQ(decodeRequest(wire.data(), wire.size(), out, consumed, err),
              Decode::Bad);
    wire = encodeRequest(req);
    wire[9] = 0xF0;
    EXPECT_EQ(decodeRequest(wire.data(), wire.size(), out, consumed, err),
              Decode::Bad);

    // Response with an unknown status byte.
    std::vector<std::uint8_t> rw = encodeResponse(Response{});
    rw[8] = 0x7F;
    Response rout;
    EXPECT_EQ(decodeResponse(rw.data(), rw.size(), rout, consumed, err),
              Decode::Bad);

    // Response whose warning length overruns the payload.
    rw = encodeResponse(Response{Status::Ok, "w", "b"});
    rw[9] = 0xFF;
    EXPECT_EQ(decodeResponse(rw.data(), rw.size(), rout, consumed, err),
              Decode::Bad);
}

// ---------------------------------------------------------------------------
// Admission-control primitives
// ---------------------------------------------------------------------------

TEST(AdmissionQueue, ShedsAtCapacityAndDrainsFifo)
{
    AdmissionQueue q(2);
    std::vector<int> ran;
    EXPECT_TRUE(q.tryPush([&] { ran.push_back(1); }));
    EXPECT_TRUE(q.tryPush([&] { ran.push_back(2); }));
    EXPECT_FALSE(q.tryPush([&] { ran.push_back(3); })); // shed, not queued
    EXPECT_EQ(q.depth(), 2u);
    EXPECT_EQ(q.peakDepth(), 2u);

    std::function<void()> job;
    ASSERT_TRUE(q.pop(job));
    job();
    ASSERT_TRUE(q.pop(job));
    job();
    EXPECT_EQ(ran, (std::vector<int>{1, 2}));
    EXPECT_EQ(q.depth(), 0u);

    // Close drops pending work and wakes poppers with `false`.
    EXPECT_TRUE(q.tryPush([] {}));
    q.close();
    EXPECT_FALSE(q.pop(job));
    EXPECT_FALSE(q.tryPush([] {}));
}

TEST(AdmissionQueue, CloseUnblocksAWaitingPopper)
{
    AdmissionQueue q(4);
    std::atomic<bool> returned{false};
    std::thread popper([&] {
        std::function<void()> job;
        EXPECT_FALSE(q.pop(job));
        returned = true;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(returned);
    q.close();
    popper.join();
    EXPECT_TRUE(returned);
}

TEST(ThreadBudget, GrantsBetweenOneAndWant)
{
    ThreadBudget budget(3);
    EXPECT_EQ(budget.acquire(2, nullptr), 2u); // capped by want
    EXPECT_EQ(budget.acquire(8, nullptr), 1u); // capped by free
    EXPECT_EQ(budget.available(), 0u);
    budget.release(3);
    EXPECT_EQ(budget.available(), 3u);
}

TEST(ThreadBudget, BlockedAcquireHonoursTheDeadline)
{
    ThreadBudget budget(1);
    ASSERT_EQ(budget.acquire(1, nullptr), 1u); // drain the pool
    ta::CancelToken token;
    token.setDeadlineAfter(std::chrono::milliseconds(20));
    EXPECT_THROW(budget.acquire(1, &token), ta::DeadlineExceeded);
    budget.release(1);
}

TEST(ThreadBudget, BlockedAcquireWakesOnRelease)
{
    ThreadBudget budget(1);
    ASSERT_EQ(budget.acquire(1, nullptr), 1u);
    std::atomic<bool> got{false};
    std::thread waiter([&] {
        EXPECT_EQ(budget.acquire(1, nullptr), 1u);
        got = true;
        budget.release(1);
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    EXPECT_FALSE(got);
    budget.release(1);
    waiter.join();
    EXPECT_TRUE(got);
}

TEST(CancelTokens, DeadlineStopFlagAndCancelAllTrip)
{
    ta::CancelToken fresh;
    EXPECT_FALSE(fresh.expired());
    EXPECT_NO_THROW(fresh.checkpoint("here"));

    ta::CancelToken deadline;
    deadline.setDeadlineAfter(std::chrono::milliseconds(0));
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    EXPECT_TRUE(deadline.expired());
    EXPECT_THROW(deadline.checkpoint("here"), ta::DeadlineExceeded);

    std::atomic<bool> stop{false};
    ta::CancelToken flagged;
    flagged.bindStopFlag(&stop);
    EXPECT_FALSE(flagged.expired());
    stop = true;
    EXPECT_TRUE(flagged.expired());

    ta::CancelToken cancelled;
    cancelled.cancel();
    EXPECT_TRUE(cancelled.expired());
}

// ---------------------------------------------------------------------------
// Differential serving
// ---------------------------------------------------------------------------

TEST(ServeDifferential, ConcurrentClientsByteMatchTheSerialAnalyzer)
{
    Server server(baseConfig("diff.sock"));
    registerCorpus(server);
    server.start();

    for (const unsigned n_clients : {1u, 4u, 16u}) {
        SCOPED_TRACE(std::to_string(n_clients) + " clients");
        std::atomic<unsigned> ok{0};
        std::vector<std::thread> clients;
        for (unsigned c = 0; c < n_clients; ++c) {
            clients.emplace_back([&, c] {
                ClientOptions copt;
                copt.backoff_seed = 1000 + c;
                Client client(server.socketPath(), copt);
                // Each client covers a slice of the corpus; together
                // a round covers every trace at least once.
                for (std::size_t i = c; i < corpus().size();
                     i += n_clients)
                    ok += queryAllAndCompare(client, corpus()[i]);
            });
        }
        for (std::thread& t : clients)
            t.join();
        // 3 windows + stats + loss + 2 profiles per trace, every
        // query conclusive and byte-identical.
        EXPECT_EQ(ok, 7 * corpus().size());
    }

    const ServerStatsSnapshot s = server.stats();
    EXPECT_EQ(s.bad_requests, 0u);
    EXPECT_EQ(s.errors, 0u);
    EXPECT_EQ(s.timeouts, 0u);
    server.stop();
}

TEST(ServeDifferential, FaultInjectedServingStaysByteIdentical)
{
    // Torn reads, torn writes, accept delays and cache thrash on the
    // serving path — reproducible under the fixed seed — must never
    // change an answer: every response is OK-and-identical or typed.
    ServerConfig cfg = baseConfig("faults.sock");
    cfg.faults.seed = 42;
    cfg.faults.serve_accept_delay_permille = 500;
    cfg.faults.serve_accept_delay_us = 500;
    cfg.faults.serve_read_chop_permille = 400;
    cfg.faults.serve_read_delay_us = 50;
    cfg.faults.serve_write_chop_permille = 400;
    cfg.faults.serve_write_delay_us = 50;
    cfg.faults.serve_cache_clear_permille = 300;
    Server server(cfg);
    registerCorpus(server);
    server.start();

    std::atomic<unsigned> ok{0};
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < 4; ++c) {
        clients.emplace_back([&, c] {
            ClientOptions copt;
            copt.backoff_seed = 2000 + c;
            Client client(server.socketPath(), copt);
            for (std::size_t i = c; i < corpus().size(); i += 4)
                ok += queryAllAndCompare(client, corpus()[i]);
        });
    }
    for (std::thread& t : clients)
        t.join();
    EXPECT_EQ(ok, 7 * corpus().size());

    const ServerStatsSnapshot s = server.stats();
    EXPECT_GT(s.faults_injected, 0u) << "fault plan never fired";
    EXPECT_EQ(s.errors, 0u);
    server.stop();
}

TEST(ServeDifferential, FaultDrawPatternIsReproducibleAcrossRestarts)
{
    // One sequential client makes the draw order deterministic: two
    // identically-seeded server lifetimes must injected the same
    // number of faults at the same draw indices.
    const auto run = [](std::uint64_t seed) {
        ServerConfig cfg = baseConfig("replay.sock");
        cfg.faults.seed = seed;
        cfg.faults.serve_read_chop_permille = 300;
        cfg.faults.serve_read_delay_us = 10;
        cfg.faults.serve_write_chop_permille = 300;
        cfg.faults.serve_write_delay_us = 10;
        cfg.faults.serve_cache_clear_permille = 250;
        Server server(cfg);
        registerCorpus(server);
        server.start();
        Client client(server.socketPath());
        unsigned ok = queryAllAndCompare(client, corpus().front());
        EXPECT_EQ(ok, 7u);
        const std::uint64_t injected = server.stats().faults_injected;
        server.stop();
        return injected;
    };
    const std::uint64_t a = run(9);
    const std::uint64_t b = run(9);
    EXPECT_EQ(a, b);
    // (Seed sensitivity of the draw stream itself is covered at the
    // injector level in tests/sim/test_fault.cc — two different seeds
    // can coincidentally fire the same COUNT here.)
}

// ---------------------------------------------------------------------------
// Robustness
// ---------------------------------------------------------------------------

TEST(ServeRobustness, CorruptTraceAutoDowngradesToSalvageWithWarning)
{
    // Damage a trace mid-file: strict analysis throws, so the daemon
    // must answer from a salvage analysis and say so.
    std::vector<std::uint8_t> bytes = trace::writeBuffer(
        workloadTraces().front().data,
        trace::WriteOptions{.index_stride = 64});
    const std::size_t at = bytes.size() / 2;
    for (std::size_t i = 0; i < 200 && at + i < bytes.size(); ++i)
        bytes[at + i] = 0xFF;
    const std::string path = tempPath("corrupt.v2.pdt");
    {
        std::ofstream os(path, std::ios::binary);
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }

    trace::ReadReport report;
    const trace::TraceData salvaged =
        trace::readFileSalvage(path, report);
    ASSERT_TRUE(report.salvaged);
    std::ostringstream want;
    ta::printSummary(want, ta::analyze(salvaged, /*lenient=*/true));

    ServerConfig cfg = baseConfig("salvage.sock");
    Server server(cfg);
    server.registerTrace("corrupt", path);
    server.start();
    Client client(server.socketPath());

    // Strict request: degraded, answered, loudly warned.
    Request req;
    req.op = Op::Stats;
    req.name = "corrupt";
    const Response rsp = client.callWithRetry(req);
    EXPECT_EQ(rsp.status, Status::Ok) << rsp.body;
    EXPECT_EQ(rsp.body, want.str());
    EXPECT_NE(rsp.warning.find("degraded to salvage"), std::string::npos)
        << rsp.warning;
    EXPECT_NE(rsp.warning.find("salvaged"), std::string::npos);

    // Salvage requested up front: same body, salvage notes only.
    req.salvage = true;
    const Response rsp2 = client.callWithRetry(req);
    EXPECT_EQ(rsp2.status, Status::Ok) << rsp2.body;
    EXPECT_EQ(rsp2.body, want.str());
    EXPECT_NE(rsp2.warning.find("ta: salvaged"), std::string::npos)
        << rsp2.warning;
    EXPECT_EQ(rsp2.warning.find("degraded"), std::string::npos);

    EXPECT_EQ(server.stats().salvaged, 1u);
    server.stop();
    std::remove(path.c_str());
}

TEST(ServeRobustness, MalformedFramesCostOneConnectionNeverTheDaemon)
{
    Server server(baseConfig("malformed.sock"));
    registerCorpus(server);
    server.start();

    const auto rawSocket = [&] {
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::strncpy(addr.sun_path, server.socketPath().c_str(),
                     sizeof(addr.sun_path) - 1);
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        EXPECT_GE(fd, 0);
        EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                            sizeof(addr)),
                  0);
        return fd;
    };

    // Garbage bytes: the daemon replies BAD_REQUEST and hangs up.
    {
        const int fd = rawSocket();
        const std::uint8_t junk[16] = {0xDE, 0xAD, 0xBE, 0xEF};
        ASSERT_EQ(::send(fd, junk, sizeof(junk), MSG_NOSIGNAL),
                  static_cast<ssize_t>(sizeof(junk)));
        std::vector<std::uint8_t> buf;
        std::uint8_t tmp[4096];
        ssize_t k;
        while ((k = ::recv(fd, tmp, sizeof(tmp), 0)) > 0)
            buf.insert(buf.end(), tmp, tmp + k);
        Response rsp;
        std::size_t consumed = 0;
        std::string err;
        ASSERT_EQ(decodeResponse(buf.data(), buf.size(), rsp, consumed,
                                 err),
                  Decode::Ok)
            << err;
        EXPECT_EQ(rsp.status, Status::BadRequest);
        ::close(fd);
    }

    // A hostile length prefix gets the same typed rejection.
    {
        const int fd = rawSocket();
        std::vector<std::uint8_t> frame =
            encodeRequest(Request{}); // valid...
        frame[7] = 0x40;              // ...until body_len says 1 GiB
        ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
                  static_cast<ssize_t>(frame.size()));
        std::vector<std::uint8_t> buf;
        std::uint8_t tmp[4096];
        ssize_t k;
        while ((k = ::recv(fd, tmp, sizeof(tmp), 0)) > 0)
            buf.insert(buf.end(), tmp, tmp + k);
        Response rsp;
        std::size_t consumed = 0;
        std::string err;
        ASSERT_EQ(decodeResponse(buf.data(), buf.size(), rsp, consumed,
                                 err),
                  Decode::Ok)
            << err;
        EXPECT_EQ(rsp.status, Status::BadRequest);
        ::close(fd);
    }

    // A truncated frame followed by a hangup is silently dropped.
    {
        const int fd = rawSocket();
        const std::vector<std::uint8_t> frame = encodeRequest(Request{});
        ASSERT_EQ(::send(fd, frame.data(), 5, MSG_NOSIGNAL), 5);
        ::close(fd);
    }

    // After all that abuse, the daemon still answers correctly.
    Client client(server.socketPath());
    Request ping;
    ping.op = Op::Ping;
    const Response pong = client.callWithRetry(ping);
    EXPECT_EQ(pong.status, Status::Ok);
    EXPECT_EQ(pong.body, "pong\n");

    const unsigned ok = queryAllAndCompare(client, corpus().front());
    EXPECT_EQ(ok, 7u);
    EXPECT_EQ(server.stats().bad_requests, 2u);
    server.stop();
}

TEST(ServeRobustness, UnknownTraceAnswersNotFound)
{
    Server server(baseConfig("notfound.sock"));
    server.start();
    Client client(server.socketPath());
    Request req;
    req.op = Op::Stats;
    req.name = "no-such-trace";
    const Response rsp = client.callWithRetry(req);
    EXPECT_EQ(rsp.status, Status::NotFound);
    EXPECT_NE(rsp.body.find("no-such-trace"), std::string::npos);
    server.stop();
}

TEST(ServeRobustness, DeadlineExceededAnswersTypedTimeout)
{
    const std::string path = tempPath("big.v1.pdt");
    trace::writeFile(path, bigTrace(192 * 1024));

    ServerConfig cfg = baseConfig("deadline.sock");
    Server server(cfg);
    server.registerTrace("big", path);
    server.start();

    // A 1 ms deadline cannot cover a ~200k-record analysis: the typed
    // TIMEOUT must come back (cooperative cancellation, not a hang).
    ClientOptions copt;
    copt.max_attempts = 1; // a retry would just time out again
    Client client(server.socketPath(), copt);
    Request req;
    req.op = Op::Stats;
    req.name = "big";
    req.deadline_ms = 1;
    const Response timed_out = client.call(req);
    EXPECT_EQ(timed_out.status, Status::Timeout) << timed_out.body;
    EXPECT_NE(timed_out.body.find("deadline"), std::string::npos);

    // The worker it freed answers the same query given time.
    req.deadline_ms = 60'000;
    const Response fine = client.call(req);
    EXPECT_EQ(fine.status, Status::Ok) << fine.body;
    std::ostringstream want;
    ta::printSummary(want, ta::analyzeFile(path));
    EXPECT_EQ(fine.body, want.str());

    EXPECT_EQ(server.stats().timeouts, 1u);
    server.stop();
    std::remove(path.c_str());
}

TEST(ServeRobustness, OverloadShedsWithRetryAfterNeverWrongAnswers)
{
    const std::string path = tempPath("load.v1.pdt");
    trace::writeFile(path, bigTrace(128 * 1024));
    std::ostringstream want;
    ta::printSummary(want, ta::analyzeFile(path));

    ServerConfig cfg = baseConfig("shed.sock");
    cfg.workers = 1;     // one request in flight...
    cfg.queue_depth = 1; // ...one waiting; the rest shed
    Server server(cfg);
    server.registerTrace("load", path);
    server.start();

    constexpr unsigned kClients = 6;
    std::atomic<unsigned> ok{0}, shed{0}, other{0};
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < kClients; ++c) {
        clients.emplace_back([&] {
            ClientOptions copt;
            copt.max_attempts = 1; // observe the shed, don't retry it
            Client client(server.socketPath(), copt);
            Request req;
            req.op = Op::Stats;
            req.name = "load";
            const Response rsp = client.call(req);
            if (rsp.status == Status::Ok) {
                EXPECT_EQ(rsp.body, want.str());
                ok += 1;
            } else if (rsp.status == Status::RetryAfter) {
                shed += 1;
            } else {
                other += 1;
            }
        });
    }
    for (std::thread& t : clients)
        t.join();

    // Admission control, not collapse: some answers, some typed sheds,
    // nothing else — and every answer byte-correct.
    EXPECT_GE(ok, 1u);
    EXPECT_GE(shed, 1u);
    EXPECT_EQ(other, 0u);
    EXPECT_EQ(ok + shed, kClients);
    EXPECT_EQ(server.stats().shed, shed);

    // A client that backs off and retries eventually gets through.
    ClientOptions copt;
    copt.max_attempts = 16;
    copt.backoff_seed = 77;
    Client patient(server.socketPath(), copt);
    Request req;
    req.op = Op::Stats;
    req.name = "load";
    const Response rsp = patient.callWithRetry(req);
    EXPECT_EQ(rsp.status, Status::Ok);
    EXPECT_EQ(rsp.body, want.str());
    server.stop();
    std::remove(path.c_str());
}

TEST(ServeRobustness, RewrittenTraceIsRevalidatedNeverServedStale)
{
    std::vector<NamedTrace> traces = workloadTraces();
    const std::string path = tempPath("mutable.v2.pdt");
    trace::writeFile(path, traces[0].data,
                     trace::WriteOptions{.index_stride = 64});

    Server server(baseConfig("reval.sock"));
    server.registerTrace("mutable", path);
    server.start();
    Client client(server.socketPath());

    Request req;
    req.op = Op::Stats;
    req.name = "mutable";
    std::ostringstream want_a;
    ta::printSummary(want_a, ta::analyze(traces[0].data));
    const Response first = client.callWithRetry(req);
    EXPECT_EQ(first.status, Status::Ok);
    EXPECT_EQ(first.body, want_a.str());
    EXPECT_EQ(first.warning, "");

    // Replace the file with a different trace under the same name.
    trace::writeFile(path, traces[1].data,
                     trace::WriteOptions{.index_stride = 64});
    std::ostringstream want_b;
    ta::printSummary(want_b, ta::analyze(traces[1].data));
    const Response second = client.callWithRetry(req);
    EXPECT_EQ(second.status, Status::Ok);
    EXPECT_EQ(second.body, want_b.str()) << "stale answer served";
    EXPECT_NE(second.warning.find("revalidated"), std::string::npos)
        << second.warning;

    EXPECT_EQ(server.stats().revalidated, 1u);
    server.stop();
    std::remove(path.c_str());
}

TEST(ServeRobustness, ShutdownOpStopsTheServeLoop)
{
    Server server(baseConfig("shutdown.sock"));
    server.start();
    EXPECT_FALSE(server.shutdownRequested());
    Client client(server.socketPath());
    Request req;
    req.op = Op::Shutdown;
    const Response rsp = client.callWithRetry(req);
    EXPECT_EQ(rsp.status, Status::Ok);
    server.waitShutdownRequested(); // returns because the op fired
    EXPECT_TRUE(server.shutdownRequested());
    server.stop();
}

TEST(ServeRobustness, ServerStatsReportsCounters)
{
    Server server(baseConfig("stats.sock"));
    registerCorpus(server);
    server.start();
    Client client(server.socketPath());
    queryAllAndCompare(client, corpus().front());
    Request req;
    req.op = Op::ServerStats;
    const Response rsp = client.callWithRetry(req);
    ASSERT_EQ(rsp.status, Status::Ok);
    EXPECT_NE(rsp.body.find("requests=8"), std::string::npos) << rsp.body;
    EXPECT_NE(rsp.body.find("completed=8"), std::string::npos);
    EXPECT_NE(rsp.body.find("shed=0"), std::string::npos);
    EXPECT_NE(rsp.body.find("queue_depth=0"), std::string::npos);
    server.stop();
}

} // namespace
} // namespace cell
