/**
 * @file
 * End-to-end fault-injection tests: the acceptance criteria of the
 * fault subsystem. Disabled injection is byte-identical to no
 * injection; a fixed seed reproduces traces bit-for-bit; injected
 * faults slow the workload but never break it; and TA's per-core loss
 * report agrees exactly with the tracer's drop counters.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "trace/writer.h"
#include "wl/triad.h"

namespace cell {
namespace {

struct FaultRun
{
    std::vector<std::uint8_t> bytes; ///< serialized trace
    pdt::PdtStats pdt_stats;
    sim::FaultStats fault_stats;
    sim::Tick elapsed = 0;
    bool verified = false;
};

/** Run a 2-SPE triad under tracing on a machine with @p faults. */
FaultRun
runTriad(const sim::FaultPlan& faults, pdt::PdtConfig pcfg = {})
{
    sim::MachineConfig mcfg;
    mcfg.faults = faults;
    rt::CellSystem sys(mcfg);
    pdt::Pdt tracer(sys, pcfg);
    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();

    FaultRun out;
    out.bytes = trace::writeBuffer(tracer.finalize());
    out.pdt_stats = tracer.stats();
    out.fault_stats = sys.machine().faults().stats();
    out.elapsed = sys.engine().now();
    out.verified = wl.verify();
    return out;
}

sim::FaultPlan
noisyPlan(std::uint64_t seed)
{
    sim::FaultPlan plan;
    plan.seed = seed;
    plan.dma_delay_permille = 150;
    plan.dma_delay_cycles = 3'000;
    plan.dma_fail_permille = 30;
    plan.eib_spike_permille = 80;
    plan.mbox_stall_permille = 200;
    plan.signal_stall_permille = 100;
    return plan;
}

TEST(FaultInjection, DisabledPlanIsByteIdenticalToDefault)
{
    // Acceptance: with injection disabled the simulation and its trace
    // are byte-for-byte what they were before this subsystem existed.
    const FaultRun base = runTriad(sim::FaultPlan{});
    sim::FaultPlan zeroed;
    zeroed.seed = 999; // a different seed alone must change nothing
    const FaultRun alt = runTriad(zeroed);
    EXPECT_TRUE(base.verified);
    EXPECT_EQ(base.bytes, alt.bytes);
    EXPECT_EQ(base.elapsed, alt.elapsed);
    EXPECT_EQ(base.fault_stats.totalInjected(), 0u);
}

TEST(FaultInjection, FixedSeedReproducesTraceExactly)
{
    const FaultRun a = runTriad(noisyPlan(42));
    const FaultRun b = runTriad(noisyPlan(42));
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_GT(a.fault_stats.totalInjected(), 0u);
    EXPECT_EQ(a.bytes, b.bytes); // bit-identical traces
    EXPECT_EQ(a.elapsed, b.elapsed);
    EXPECT_EQ(a.fault_stats.injected, b.fault_stats.injected);
    EXPECT_EQ(a.fault_stats.injected_cycles, b.fault_stats.injected_cycles);
}

TEST(FaultInjection, DifferentSeedsProduceDifferentRuns)
{
    const FaultRun a = runTriad(noisyPlan(1));
    const FaultRun b = runTriad(noisyPlan(2));
    EXPECT_TRUE(a.verified);
    EXPECT_TRUE(b.verified);
    EXPECT_NE(a.bytes, b.bytes);
}

TEST(FaultInjection, FaultsSlowTheWorkloadButNeverBreakIt)
{
    const FaultRun clean = runTriad(sim::FaultPlan{});
    sim::FaultPlan heavy;
    heavy.dma_delay_permille = 1000;
    heavy.dma_delay_cycles = 2'000;
    heavy.mbox_stall_permille = 1000;
    heavy.mbox_stall_cycles = 1'000;
    const FaultRun slow = runTriad(heavy);
    EXPECT_TRUE(slow.verified); // data still correct under faults
    EXPECT_GT(slow.elapsed, clean.elapsed);
    EXPECT_GT(slow.fault_stats.injected_cycles, 0u);
}

TEST(FaultInjection, TaLossReportMatchesTracerCountersExactly)
{
    // Starve the trace arena mid-run on every SPE; the analyzer's
    // per-core loss accounting must agree with the tracer's ground
    // truth to the event.
    sim::FaultPlan plan;
    plan.arena_exhaust_begin = 1;
    plan.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;

    const FaultRun r = runTriad(plan, pcfg);
    EXPECT_TRUE(r.verified);

    std::uint64_t total_dropped = 0;
    for (const auto& s : r.pdt_stats.spu)
        total_dropped += s.dropped;
    ASSERT_GT(total_dropped, 0u) << "fault window injected no loss";

    const trace::TraceData data = [&] {
        trace::ReadReport rep;
        return trace::readBufferSalvage(r.bytes, rep);
    }();
    const ta::Analysis a = ta::analyze(data, /*lenient=*/true);

    ASSERT_EQ(a.stats.loss.size(), r.pdt_stats.spu.size() + 1);
    for (std::size_t i = 0; i < r.pdt_stats.spu.size(); ++i) {
        EXPECT_EQ(a.stats.loss[i + 1].dropped_events,
                  r.pdt_stats.spu[i].dropped)
            << "SPE" << i;
        if (r.pdt_stats.spu[i].dropped > 0) {
            EXPECT_GT(a.stats.loss[i + 1].drop_markers, 0u);
            EXPECT_GT(a.stats.loss[i + 1].lossPct(), 0.0);
        }
    }
    EXPECT_EQ(a.stats.loss[0].dropped_events, 0u); // PPE never drops
    EXPECT_TRUE(a.stats.anyLoss());
}

TEST(FaultInjection, GapSpanningIntervalsAreFlagged)
{
    sim::FaultPlan plan;
    plan.arena_exhaust_begin = 1;
    plan.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;

    const FaultRun r = runTriad(plan, pcfg);
    trace::ReadReport rep;
    const ta::Analysis a =
        ta::analyze(trace::readBufferSalvage(r.bytes, rep), true);

    // Some interval must span a drop gap (the SPU run interval always
    // does: SpuStart sits before the gap, SpuStop after it).
    std::uint64_t gaps = 0;
    for (const auto& l : a.stats.loss)
        gaps += l.gap_intervals;
    EXPECT_GT(gaps, 0u);
}

TEST(FaultInjection, LossReportPrintsPercentages)
{
    sim::FaultPlan plan;
    plan.arena_exhaust_begin = 1;
    plan.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
    const FaultRun r = runTriad(plan, pcfg);

    trace::ReadReport rep;
    const ta::Analysis a =
        ta::analyze(trace::readBufferSalvage(r.bytes, rep), true);
    std::ostringstream os;
    ta::printLossReport(os, a);
    EXPECT_NE(os.str().find("loss%"), std::string::npos);
    EXPECT_NE(os.str().find("SPE0"), std::string::npos);

    // And the summary warns about the incomplete trace.
    std::ostringstream sum;
    ta::printSummary(sum, a);
    EXPECT_NE(sum.str().find("WARNING"), std::string::npos);
}

TEST(FaultInjection, MailboxStallsShowUpAsWaitTime)
{
    // Triad is mailbox-free, so drive an explicit PPE<->SPU mailbox
    // ping-pong and compare the analyzer's mailbox-wait time.
    auto mboxWait = [](const sim::FaultPlan& plan) {
        sim::MachineConfig mcfg;
        mcfg.faults = plan;
        rt::CellSystem sys(mcfg);
        pdt::Pdt tracer(sys);
        sys.runPpe([&](rt::PpeEnv&) -> rt::CoTask<void> {
            rt::SpuProgramImage img;
            img.name = "mbox_pingpong";
            img.main = [](rt::SpuEnv& env) -> rt::CoTask<void> {
                for (std::uint32_t i = 0; i < 20; ++i) {
                    const std::uint32_t v = co_await env.readInMbox();
                    co_await env.writeOutMbox(v + 1);
                }
            };
            co_await sys.context(0).start(img);
            for (std::uint32_t i = 0; i < 20; ++i) {
                co_await sys.context(0).writeInMbox(i);
                co_await sys.context(0).readOutMbox();
            }
            co_await sys.context(0).join();
        });
        sys.run();
        const ta::Analysis a = ta::analyze(tracer.finalize());
        return a.stats.spu[0].mbox_wait_tb;
    };

    sim::FaultPlan plan;
    plan.mbox_stall_permille = 1000;
    plan.mbox_stall_cycles = 2'000;
    EXPECT_GT(mboxWait(plan), mboxWait(sim::FaultPlan{}));
}

} // namespace
} // namespace cell
