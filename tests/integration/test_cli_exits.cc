/**
 * @file
 * CLI exit-code contract tests, run against the real binaries.
 *
 * The convention unified across `ta` and `pdt_dump`:
 *   0  success
 *   1  runtime error (unreadable file, damaged trace, dead socket)
 *   2  usage error — bad flags, bad positional VALUES (non-numeric
 *      counts, inverted ranges), unknown commands — always with the
 *      usage text on stderr so the caller sees how to fix it
 *   3  (`ta query` only) typed shed/timeout from the daemon
 *
 * Bad VALUES were historically a mix of 1s and 2s depending on which
 * parse caught them; scripts could not tell "you typed it wrong" from
 * "the trace is damaged". These tests pin every class.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <sys/wait.h>
#include <unistd.h>

#include "trace/format.h"
#include "trace/writer.h"

namespace cell {
namespace {

struct RunResult
{
    int exit_code = -1;
    std::string output; ///< stdout + stderr, interleaved
};

RunResult
run(const std::string& cmd)
{
    RunResult r;
    FILE* p = ::popen((cmd + " 2>&1").c_str(), "r");
    if (p == nullptr)
        return r;
    char buf[4096];
    std::size_t k;
    while ((k = std::fread(buf, 1, sizeof(buf), p)) > 0)
        r.output.append(buf, k);
    const int rc = ::pclose(p);
    if (WIFEXITED(rc))
        r.exit_code = WEXITSTATUS(rc);
    return r;
}

std::string
quoted(const std::string& s)
{
    return "'" + s + "'";
}

const std::string kTa = CELL_TA_BIN;
const std::string kDump = CELL_PDT_DUMP_BIN;

/** A small valid trace written once for the whole suite. */
const std::string&
tracePath()
{
    static const std::string path = [] {
        // ctest runs every case as its own process; a shared fixture
        // path would let two processes write it concurrently and a
        // third read the torn file. Key it by pid.
        const std::string p = ::testing::TempDir() + "/cli_exits_" +
                              std::to_string(::getpid()) + ".pdt";
        trace::TraceData d;
        d.header.num_spes = 1;
        d.header.core_hz = 3'200'000'000ULL;
        d.header.timebase_divider = 8;
        d.spe_programs = {"synthetic"};
        for (std::uint16_t c = 0; c < 2; ++c) {
            trace::Record r{};
            r.kind = trace::kSyncRecord;
            r.core = c;
            r.a = 1000;
            r.b = 1000;
            d.records.push_back(r);
        }
        for (std::uint64_t i = 0; i < 200; ++i) {
            trace::Record r{};
            r.core = static_cast<std::uint16_t>(i % 2);
            r.kind = static_cast<std::uint8_t>(1 + i % 8);
            r.phase =
                (i / 2) % 2 ? trace::kPhaseEnd : trace::kPhaseBegin;
            r.timestamp = 1000 + 40 * (i / 2 + 1);
            d.records.push_back(r);
        }
        d.header.record_count = d.records.size();
        trace::writeFile(p, d);
        return p;
    }();
    return path;
}

// ---------------------------------------------------------------------------
// ta
// ---------------------------------------------------------------------------

TEST(TaExitCodes, NoArgumentsIsUsage)
{
    const RunResult r = run(kTa);
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TaExitCodes, UnknownCommandIsUsage)
{
    const RunResult r = run(kTa + " frobnicate " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TaExitCodes, UnknownFlagIsUsage)
{
    const RunResult r = run(kTa + " --bogus summary " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TaExitCodes, NonNumericThreadsIsUsage)
{
    const RunResult r =
        run(kTa + " --threads many summary " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TaExitCodes, NonNumericWindowBoundsAreUsage)
{
    const RunResult r =
        run(kTa + " window " + quoted(tracePath()) + " abc def");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("timebase ticks"), std::string::npos);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TaExitCodes, InvertedWindowIsUsage)
{
    const RunResult r =
        run(kTa + " window " + quoted(tracePath()) + " 900 100");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("exceeds"), std::string::npos);
}

TEST(TaExitCodes, ZeroProfileBucketsIsUsage)
{
    const RunResult r = run(kTa + " profile " + quoted(tracePath()) + " 0");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("buckets"), std::string::npos);
}

TEST(TaExitCodes, NonNumericTimelineWidthIsUsage)
{
    const RunResult r =
        run(kTa + " timeline " + quoted(tracePath()) + " wide");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("width"), std::string::npos);
}

TEST(TaExitCodes, NonNumericActivityBucketsAreUsage)
{
    const RunResult r =
        run(kTa + " activity " + quoted(tracePath()) + " some");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("buckets"), std::string::npos);
}

TEST(TaExitCodes, MissingTraceIsRuntimeError)
{
    const RunResult r = run(kTa + " summary /no/such/trace.pdt");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos)
        << "runtime errors must not dump usage";
}

TEST(TaExitCodes, GoodSummaryExitsZero)
{
    const RunResult r = run(kTa + " summary " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 0);
}

// ---------------------------------------------------------------------------
// ta query / serve
// ---------------------------------------------------------------------------

TEST(QueryExitCodes, QueryWithoutConnectIsUsage)
{
    const RunResult r = run(kTa + " query ping");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("--connect"), std::string::npos);
}

TEST(QueryExitCodes, UnknownOpIsUsage)
{
    const RunResult r =
        run(kTa + " query --connect /tmp/none.sock bogus");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("unknown query op"), std::string::npos);
}

TEST(QueryExitCodes, NonNumericWindowBoundsAreUsage)
{
    const RunResult r =
        run(kTa + " query --connect /tmp/none.sock window m lo hi");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("timebase ticks"), std::string::npos);
}

TEST(QueryExitCodes, OutOfRangeBucketsAreUsage)
{
    const RunResult r =
        run(kTa + " query --connect /tmp/none.sock profile m 70000");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("[1, 65535]"), std::string::npos);
}

TEST(QueryExitCodes, DeadSocketIsRuntimeError)
{
    const RunResult r = run(
        kTa + " query --connect /no/such/dir/none.sock --attempts 1 ping");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos);
}

TEST(ServeExitCodes, MalformedRegistrationIsUsage)
{
    const RunResult r =
        run(kTa + " serve /tmp/none.sock just-a-name-no-path");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("name=trace.pdt"), std::string::npos);
}

TEST(ServeExitCodes, MissingRegistrationIsUsage)
{
    const RunResult r = run(kTa + " serve /tmp/none.sock");
    EXPECT_EQ(r.exit_code, 2);
}

// ---------------------------------------------------------------------------
// ta surgery
// ---------------------------------------------------------------------------

TEST(SurgeryExitCodes, MissingOperationIsUsage)
{
    const RunResult r = run(kTa + " surgery");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(SurgeryExitCodes, UnknownOperationIsUsage)
{
    const RunResult r = run(kTa + " surgery transplant " +
                            quoted(tracePath()) + " /tmp/out.pdt");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("unknown surgery op"), std::string::npos);
}

TEST(SurgeryExitCodes, NonNumericSliceBoundsAreUsage)
{
    const RunResult r = run(kTa + " surgery slice " + quoted(tracePath()) +
                            " /tmp/out.pdt lo hi");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("timebase ticks"), std::string::npos);
}

TEST(SurgeryExitCodes, InvertedSliceWindowIsUsage)
{
    const RunResult r = run(kTa + " surgery slice " + quoted(tracePath()) +
                            " /tmp/out.pdt 900 100");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("exceeds"), std::string::npos);
}

TEST(SurgeryExitCodes, CutCountMismatchIsUsage)
{
    const RunResult r =
        run(kTa + " surgery splice /tmp/out.pdt " + quoted(tracePath()) +
            " " + quoted(tracePath()) + " --cut 10 --cut 20");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("one --cut per junction"), std::string::npos);
}

TEST(SurgeryExitCodes, AlignWithBladesIsUsage)
{
    const RunResult r =
        run(kTa + " surgery splice /tmp/out.pdt " + quoted(tracePath()) +
            " " + quoted(tracePath()) + " --align --blades");
    EXPECT_EQ(r.exit_code, 2);
}

TEST(SurgeryExitCodes, BadKindGroupIsUsage)
{
    const RunResult r = run(kTa + " surgery filter " + quoted(tracePath()) +
                            " /tmp/out.pdt --kinds dma,bogus");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("unknown event group"), std::string::npos);
}

TEST(SurgeryExitCodes, NonNumericCoreListIsUsage)
{
    const RunResult r = run(kTa + " surgery filter " + quoted(tracePath()) +
                            " /tmp/out.pdt --cores 0,ppe");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("--cores"), std::string::npos);
}

TEST(SurgeryExitCodes, OutOfRangeCoreIdIsUsage)
{
    // The fixture has 1 SPE -> valid cores are 0 and 1.
    const RunResult r = run(kTa + " surgery filter " + quoted(tracePath()) +
                            " /tmp/out.pdt --cores 9");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(SurgeryExitCodes, MissingInputIsRuntimeError)
{
    const RunResult r =
        run(kTa + " surgery slice /no/such/trace.pdt /tmp/out.pdt 0 100");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos);
}

TEST(SurgeryExitCodes, GoodSliceSpliceFilterExitZero)
{
    const std::string base = ::testing::TempDir() + "/cli_surgery_" +
                             std::to_string(::getpid());
    const std::string a = base + "_a.pdt";
    const std::string b = base + "_b.pdt";
    const std::string sp = base + "_sp.pdt";
    const std::string fl = base + "_fl.pdt";

    RunResult r = run(kTa + " surgery slice " + quoted(tracePath()) + " " +
                      quoted(a) + " 0 3000");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " surgery slice " + quoted(tracePath()) + " " +
            quoted(b) + " 3000 99999999");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " surgery splice " + quoted(sp) + " " + quoted(a) + " " +
            quoted(b) + " --cut 3000");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " surgery filter " + quoted(tracePath()) + " " +
            quoted(fl) + " --cores 0,1 --kinds dma,mailbox");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " summary " + quoted(sp));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    for (const std::string& p : {a, b, sp, fl})
        std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// ta diff / diff-corpus
// ---------------------------------------------------------------------------

TEST(DiffExitCodes, MissingFileArgumentIsUsage)
{
    const RunResult r = run(kTa + " diff " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(DiffExitCodes, ZeroWindowIsUsage)
{
    const RunResult r = run(kTa + " diff --window 0 " +
                            quoted(tracePath()) + " " +
                            quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("--window"), std::string::npos);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(DiffExitCodes, NonNumericWindowIsUsage)
{
    const RunResult r = run(kTa + " diff --window wide " +
                            quoted(tracePath()) + " " +
                            quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(DiffExitCodes, NonNumericThresholdIsUsage)
{
    const RunResult r = run(kTa + " diff --threshold lots " +
                            quoted(tracePath()) + " " +
                            quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(DiffExitCodes, MissingTraceIsRuntimeError)
{
    const RunResult r =
        run(kTa + " diff " + quoted(tracePath()) + " /no/such/trace.pdt");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos);
}

TEST(DiffExitCodes, SelfDiffExitsZeroAndReportsNoDivergence)
{
    const RunResult r = run(kTa + " diff " + quoted(tracePath()) + " " +
                            quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("no divergence"), std::string::npos)
        << r.output;
}

TEST(DiffCorpusExitCodes, MissingPairsFileIsRuntimeError)
{
    const RunResult r = run(kTa + " diff-corpus /no/such/pairs.txt");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos);
}

TEST(DiffCorpusExitCodes, MalformedPairsLineIsUsage)
{
    const std::string pairs = ::testing::TempDir() + "/cli_pairs_" +
                              std::to_string(::getpid()) + ".txt";
    {
        std::ofstream os(pairs);
        os << "# comment\n"
           << "only_two_tokens " << tracePath() << "\n";
    }
    const RunResult r = run(kTa + " diff-corpus " + quoted(pairs));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("malformed pairs line 2"), std::string::npos)
        << r.output;
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
    std::remove(pairs.c_str());
}

TEST(DiffCorpusExitCodes, GoodCorpusExitsZero)
{
    const std::string pairs = ::testing::TempDir() + "/cli_pairs_ok_" +
                              std::to_string(::getpid()) + ".txt";
    {
        std::ofstream os(pairs);
        os << "self " << tracePath() << " " << tracePath() << "\n";
    }
    const RunResult r = run(kTa + " diff-corpus " + quoted(pairs));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("1 pair(s)"), std::string::npos) << r.output;
    std::remove(pairs.c_str());
}

TEST(SurgeryExitCodes, NonNumericDelayValuesAreUsage)
{
    RunResult r = run(kTa + " surgery delay " + quoted(tracePath()) +
                      " /tmp/out.pdt soon 5");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
    r = run(kTa + " surgery delay " + quoted(tracePath()) +
            " /tmp/out.pdt 100 lots");
    EXPECT_EQ(r.exit_code, 2);
}

TEST(SurgeryExitCodes, DelayCoreListIsUsage)
{
    // delay takes a single --cores value, not a list.
    const RunResult r = run(kTa + " surgery delay " + quoted(tracePath()) +
                            " /tmp/out.pdt 100 5 --cores 0,1");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(SurgeryExitCodes, GoodDelayThenDiffLocalizes)
{
    // A generated trace, not the synthetic fixture: its sync records
    // carry real raw timestamps, so the delayed stream re-encodes.
    const std::string base = ::testing::TempDir() + "/cli_delay_" +
                             std::to_string(::getpid());
    const std::string in = base + "_in.pdt";
    const std::string out = base + "_out.pdt";
    RunResult r =
        run(std::string(CELL_TRACE_GEN_BIN) +
            " --seed 11 --scenario multi_core " + quoted(in));
    ASSERT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " surgery delay " + quoted(in) + " " + quoted(out) +
            " 0 5000");
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " diff " + quoted(in) + " " + quoted(out));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("first divergence"), std::string::npos)
        << r.output;
    r = run(kTa + " diff --json " + quoted(in) + " " + quoted(out));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    EXPECT_NE(r.output.find("\"diverged\":true"), std::string::npos)
        << r.output;
    std::remove(in.c_str());
    std::remove(out.c_str());
}

// ---------------------------------------------------------------------------
// trace_gen
// ---------------------------------------------------------------------------

const std::string kGen = CELL_TRACE_GEN_BIN;

TEST(TraceGenExitCodes, NoOutputPathIsUsage)
{
    const RunResult r = run(kGen);
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TraceGenExitCodes, UnknownFlagIsUsage)
{
    const RunResult r = run(kGen + " --bogus /tmp/out.pdt");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TraceGenExitCodes, UnknownScenarioIsUsage)
{
    const RunResult r = run(kGen + " --scenario nope /tmp/out.pdt");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("unknown scenario"), std::string::npos);
}

TEST(TraceGenExitCodes, NonNumericSeedIsUsage)
{
    const RunResult r = run(kGen + " --seed lucky /tmp/out.pdt");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(TraceGenExitCodes, SweepWithoutOutDirIsUsage)
{
    const RunResult r = run(kGen + " --sweep 3");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("--out-dir"), std::string::npos);
}

TEST(TraceGenExitCodes, PerturbWithAdversarialIsUsage)
{
    const RunResult r =
        run(kGen + " --sweep 2 --out-dir /tmp/gen_x --perturb "
                   "--adversarial");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("--adversarial"), std::string::npos);
}

TEST(TraceGenExitCodes, ListScenariosExitsZero)
{
    const RunResult r = run(kGen + " --list-scenarios");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("drop_storm"), std::string::npos);
}

TEST(TraceGenExitCodes, GoodGenerateExitsZeroAndAnalyzes)
{
    const std::string p = ::testing::TempDir() + "/cli_gen_" +
                          std::to_string(::getpid()) + ".pdt";
    RunResult r = run(kGen + " --seed 11 --scenario multi_core " +
                      quoted(p));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    r = run(kTa + " summary " + quoted(p));
    EXPECT_EQ(r.exit_code, 0) << r.output;
    std::remove(p.c_str());
}

// ---------------------------------------------------------------------------
// pdt_dump
// ---------------------------------------------------------------------------

TEST(PdtDumpExitCodes, NoArgumentsIsUsage)
{
    const RunResult r = run(kDump);
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(PdtDumpExitCodes, UnknownFlagIsUsage)
{
    const RunResult r = run(kDump + " --bogus " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("usage:"), std::string::npos);
}

TEST(PdtDumpExitCodes, NonNumericMaxIsUsage)
{
    const RunResult r =
        run(kDump + " " + quoted(tracePath()) + " everything");
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("record count"), std::string::npos);
}

TEST(PdtDumpExitCodes, InvertedWindowIsUsage)
{
    const RunResult r =
        run(kDump + " --from 900 --to 100 " + quoted(tracePath()));
    EXPECT_EQ(r.exit_code, 2);
    EXPECT_NE(r.output.find("exceeds"), std::string::npos);
}

TEST(PdtDumpExitCodes, MissingTraceIsRuntimeError)
{
    const RunResult r = run(kDump + " /no/such/trace.pdt");
    EXPECT_EQ(r.exit_code, 1);
    EXPECT_EQ(r.output.find("usage:"), std::string::npos);
}

TEST(PdtDumpExitCodes, GoodDumpExitsZero)
{
    const RunResult r = run(kDump + " " + quoted(tracePath()) + " 5");
    EXPECT_EQ(r.exit_code, 0);
    EXPECT_NE(r.output.find("records"), std::string::npos);
}

} // namespace
} // namespace cell
