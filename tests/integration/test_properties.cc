/**
 * @file
 * Property-style tests across the whole stack: invariants that must
 * hold for any workload/configuration, checked over parameter sweeps.
 *
 *  P1  Tracing never changes results (metamorphic correctness).
 *  P2  TA's view is consistent with PDT's own counters.
 *  P3  Breakdown sanity: stalls fit inside the run, utilization in
 *      [0,1], per-core event times monotone.
 *  P4  Clock reconstruction survives decrementer wrap mid-trace.
 *  P5  EIB byte conservation.
 *  P6  Determinism of the entire traced stack.
 */

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "trace/writer.h"
#include "wl/gather.h"
#include "wl/reduction.h"
#include "wl/triad.h"

namespace cell {
namespace {

struct SweepCase
{
    std::uint32_t spes;
    std::uint32_t buffer;
    bool double_buffered;
};

class StackSweep : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(StackSweep, TracedEqualsUntracedResultsAndInvariantsHold)
{
    const auto& c = GetParam();

    // Untraced reference output.
    std::vector<float> untraced_out;
    {
        rt::CellSystem sys;
        wl::TriadParams p;
        p.n_elements = 8192;
        p.n_spes = c.spes;
        wl::Triad wl(sys, p);
        wl.start();
        sys.run();
        ASSERT_TRUE(wl.verify());
    }

    rt::CellSystem sys;
    pdt::PdtConfig cfg;
    cfg.spu_buffer_bytes = c.buffer;
    cfg.double_buffered = c.double_buffered;
    pdt::Pdt tracer(sys, cfg);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = c.spes;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();

    // P1: tracing must not corrupt results.
    ASSERT_TRUE(wl.verify());

    const trace::TraceData data = tracer.finalize();
    const ta::Analysis a = ta::analyze(data);

    // P2: per-core record counts agree between TA and PDT.
    for (std::uint32_t s = 0; s < sys.numSpes(); ++s) {
        EXPECT_EQ(a.model.spe(s).events.size(),
                  tracer.stats().spu[s].records)
            << "SPE" << s;
    }
    EXPECT_EQ(a.model.ppe().events.size(), tracer.stats().ppe_records);

    // P3: breakdown sanity per SPE.
    for (const auto& b : a.stats.spu) {
        if (!b.ran)
            continue;
        EXPECT_LE(b.stall_tb() + b.dma_cmd_tb, b.run_tb);
        EXPECT_GE(b.utilization(), 0.0);
        EXPECT_LE(b.utilization(), 1.0);
    }
    // Monotone per-core times.
    for (const auto& tl : a.model.cores()) {
        std::uint64_t prev = 0;
        for (const auto& ev : tl.events) {
            EXPECT_GE(ev.time_tb, prev);
            prev = ev.time_tb;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StackSweep,
    ::testing::Values(SweepCase{1, 4096, true}, SweepCase{2, 4096, true},
                      SweepCase{4, 256, true}, SweepCase{8, 256, false},
                      SweepCase{8, 128, true}, SweepCase{8, 16384, true},
                      SweepCase{3, 512, false}));

rt::CoTask<void>
wrapProgram(rt::SpuEnv& env)
{
    // Force the decrementer to wrap repeatedly while emitting events:
    // load a small value, then emit events spaced by compute.
    co_await env.writeDecrementer(50);
    for (std::uint32_t i = 0; i < 40; ++i) {
        co_await env.userEvent(i, 0);
        // 30 timebase ticks per step at divider 120 -> wraps the
        // 50-tick decrementer within two steps.
        co_await env.compute(3600);
    }
}

TEST(Properties, P4_DecrementerWrapMidTraceReconstructsCorrectly)
{
    rt::CellSystem sys;
    pdt::PdtConfig cfg;
    cfg.spu_buffer_bytes = 128; // frequent syncs (one per half)
    pdt::Pdt tracer(sys, cfg);

    sys.runPpe([&](rt::PpeEnv&) -> rt::CoTask<void> {
        rt::SpuProgramImage img;
        img.name = "wrap";
        img.main = wrapProgram;
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();

    const ta::Analysis a = ta::analyze(tracer.finalize());
    // The user events are ~30 timebase ticks apart; after wrap
    // handling, consecutive reconstructed times must advance by
    // roughly that (within tracer-overhead slack), never jump by the
    // 2^32 a naive subtraction would produce.
    std::uint64_t prev = 0;
    bool first = true;
    std::uint32_t checked = 0;
    for (const auto& ev : a.model.spe(0).events) {
        if (ev.isToolRecord() || ev.op() != rt::ApiOp::SpuUserEvent)
            continue;
        if (!first) {
            const std::uint64_t gap = ev.time_tb - prev;
            EXPECT_GE(gap, 25u);
            EXPECT_LE(gap, 200u);
            ++checked;
        }
        prev = ev.time_tb;
        first = false;
    }
    EXPECT_GE(checked, 30u);
}

TEST(Properties, P5_EibByteConservation)
{
    rt::CellSystem sys;
    wl::GatherParams p;
    p.n_indices = 1024;
    p.n_spes = 4;
    wl::Gather wl(sys, p);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());

    // Every byte the MFCs report moved must have crossed the EIB.
    std::uint64_t mfc_bytes = 0;
    for (std::uint32_t s = 0; s < sys.numSpes(); ++s) {
        const auto& st = sys.machine().spe(s).mfc().stats();
        mfc_bytes += st.bytes_get + st.bytes_put;
    }
    EXPECT_EQ(sys.machine().eib().stats().bytes, mfc_bytes);
}

TEST(Properties, P6_WholeTracedStackIsDeterministic)
{
    auto run = [] {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        wl::ReductionParams p;
        p.n_elements = 8192;
        p.n_spes = 4;
        p.report_every_tile = true;
        wl::Reduction wl(sys, p);
        wl.start();
        sys.run();
        return trace::writeBuffer(tracer.finalize());
    };
    EXPECT_EQ(run(), run()); // byte-identical trace files
}

TEST(Properties, P3b_IntervalsNestInsideTheRun)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    const ta::Analysis a = ta::analyze(tracer.finalize());
    for (std::uint32_t s = 0; s < 2; ++s) {
        const ta::Interval* run = a.intervals.spuRun(s);
        ASSERT_NE(run, nullptr);
        for (const auto& iv : a.intervals.per_core[s + 1]) {
            if (iv.cls == ta::IntervalClass::Run)
                continue;
            EXPECT_GE(iv.start_tb, run->start_tb);
            EXPECT_LE(iv.end_tb, run->end_tb + 1);
        }
    }
}

} // namespace
} // namespace cell
