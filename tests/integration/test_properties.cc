/**
 * @file
 * Property-style tests across the whole stack: invariants that must
 * hold for any workload/configuration, checked over parameter sweeps.
 *
 *  P1  Tracing never changes results (metamorphic correctness).
 *  P2  TA's view is consistent with PDT's own counters.
 *  P3  Breakdown sanity: stalls fit inside the run, utilization in
 *      [0,1], per-core event times monotone.
 *  P4  Clock reconstruction survives decrementer wrap mid-trace.
 *  P5  EIB byte conservation.
 *  P6  Determinism of the entire traced stack.
 *  P7  Any shard split of a trace merges to the same model as the
 *      serial builder (parallel-pipeline split invariance).
 *  P8  The scan/combine fold behind the parallel builder is
 *      associative and agrees with whole-range scans.
 *  P9  Windowed queries through the v2 index equal the brute-force
 *      filter of the full analysis, for random traces and random
 *      windows (empty, single-tick and whole-file included).
 *  P9b Adjacent windows concatenate exactly to their parent window.
 *  P10 The v3 compressed container is invisible: any random trace
 *      written with compression decodes byte-identically through the
 *      strict, salvage, windowed-query and 1/2/4/8-thread parallel
 *      paths (and throws the identical strict diagnostics).
 *  P10b A corrupt v3 block degrades to an exactly-accounted gap, and
 *      serial and parallel salvage agree on the result.
 *  P10c The I/O source is invisible: the same v3 bytes served from a
 *      regular file (mmap-backed), a non-seekable FIFO (buffered
 *      fallback) and an in-memory buffer produce byte-identical
 *      reports, at 1 and 4 threads.
 *  P11 A slice of any generated trace answers windowed queries
 *      byte-identically to the original (lenient traces included).
 *  P11a Splicing slices back at their cuts reproduces the original's
 *      full report, two- and three-way.
 *  P11b Filtering by cores/kind groups then analyzing equals
 *      analyzing then restricting the event streams.
 *  P12 The differential of a trace against itself is empty: no
 *      divergent window, every delta zero, no mover.
 *  P12a A delay injected at a random placed tick is localized: the
 *      first divergent window contains the perturbation tick.
 *  P12b The differential is antisymmetric: swapping A and B negates
 *      every attributed delta and swaps the unmatched tails, while
 *      the divergence geometry (windows, scores) is unchanged.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <thread>

#include <sys/stat.h>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/compare.h"
#include "ta/intervals.h"
#include "ta/parallel.h"
#include "ta/query.h"
#include "trace/block.h"
#include "trace/gen.h"
#include "trace/reader.h"
#include "trace/replay.h"
#include "trace/surgery.h"
#include "trace/writer.h"
#include "wl/gather.h"
#include "wl/reduction.h"
#include "wl/triad.h"

namespace cell {
namespace {

struct SweepCase
{
    std::uint32_t spes;
    std::uint32_t buffer;
    bool double_buffered;
};

class StackSweep : public ::testing::TestWithParam<SweepCase>
{};

TEST_P(StackSweep, TracedEqualsUntracedResultsAndInvariantsHold)
{
    const auto& c = GetParam();

    // Untraced reference output.
    std::vector<float> untraced_out;
    {
        rt::CellSystem sys;
        wl::TriadParams p;
        p.n_elements = 8192;
        p.n_spes = c.spes;
        wl::Triad wl(sys, p);
        wl.start();
        sys.run();
        ASSERT_TRUE(wl.verify());
    }

    rt::CellSystem sys;
    pdt::PdtConfig cfg;
    cfg.spu_buffer_bytes = c.buffer;
    cfg.double_buffered = c.double_buffered;
    pdt::Pdt tracer(sys, cfg);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = c.spes;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();

    // P1: tracing must not corrupt results.
    ASSERT_TRUE(wl.verify());

    const trace::TraceData data = tracer.finalize();
    const ta::Analysis a = ta::analyze(data);

    // P2: per-core record counts agree between TA and PDT.
    for (std::uint32_t s = 0; s < sys.numSpes(); ++s) {
        EXPECT_EQ(a.model.spe(s).events.size(),
                  tracer.stats().spu[s].records)
            << "SPE" << s;
    }
    EXPECT_EQ(a.model.ppe().events.size(), tracer.stats().ppe_records);

    // P3: breakdown sanity per SPE.
    for (const auto& b : a.stats.spu) {
        if (!b.ran)
            continue;
        EXPECT_LE(b.stall_tb() + b.dma_cmd_tb, b.run_tb);
        EXPECT_GE(b.utilization(), 0.0);
        EXPECT_LE(b.utilization(), 1.0);
    }
    // Monotone per-core times.
    for (const auto& tl : a.model.cores()) {
        std::uint64_t prev = 0;
        for (const auto& ev : tl.events) {
            EXPECT_GE(ev.time_tb, prev);
            prev = ev.time_tb;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, StackSweep,
    ::testing::Values(SweepCase{1, 4096, true}, SweepCase{2, 4096, true},
                      SweepCase{4, 256, true}, SweepCase{8, 256, false},
                      SweepCase{8, 128, true}, SweepCase{8, 16384, true},
                      SweepCase{3, 512, false}));

rt::CoTask<void>
wrapProgram(rt::SpuEnv& env)
{
    // Force the decrementer to wrap repeatedly while emitting events:
    // load a small value, then emit events spaced by compute.
    co_await env.writeDecrementer(50);
    for (std::uint32_t i = 0; i < 40; ++i) {
        co_await env.userEvent(i, 0);
        // 30 timebase ticks per step at divider 120 -> wraps the
        // 50-tick decrementer within two steps.
        co_await env.compute(3600);
    }
}

TEST(Properties, P4_DecrementerWrapMidTraceReconstructsCorrectly)
{
    rt::CellSystem sys;
    pdt::PdtConfig cfg;
    cfg.spu_buffer_bytes = 128; // frequent syncs (one per half)
    pdt::Pdt tracer(sys, cfg);

    sys.runPpe([&](rt::PpeEnv&) -> rt::CoTask<void> {
        rt::SpuProgramImage img;
        img.name = "wrap";
        img.main = wrapProgram;
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
    });
    sys.run();

    const ta::Analysis a = ta::analyze(tracer.finalize());
    // The user events are ~30 timebase ticks apart; after wrap
    // handling, consecutive reconstructed times must advance by
    // roughly that (within tracer-overhead slack), never jump by the
    // 2^32 a naive subtraction would produce.
    std::uint64_t prev = 0;
    bool first = true;
    std::uint32_t checked = 0;
    for (const auto& ev : a.model.spe(0).events) {
        if (ev.isToolRecord() || ev.op() != rt::ApiOp::SpuUserEvent)
            continue;
        if (!first) {
            const std::uint64_t gap = ev.time_tb - prev;
            EXPECT_GE(gap, 25u);
            EXPECT_LE(gap, 200u);
            ++checked;
        }
        prev = ev.time_tb;
        first = false;
    }
    EXPECT_GE(checked, 30u);
}

TEST(Properties, P5_EibByteConservation)
{
    rt::CellSystem sys;
    wl::GatherParams p;
    p.n_indices = 1024;
    p.n_spes = 4;
    wl::Gather wl(sys, p);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());

    // Every byte the MFCs report moved must have crossed the EIB.
    std::uint64_t mfc_bytes = 0;
    for (std::uint32_t s = 0; s < sys.numSpes(); ++s) {
        const auto& st = sys.machine().spe(s).mfc().stats();
        mfc_bytes += st.bytes_get + st.bytes_put;
    }
    EXPECT_EQ(sys.machine().eib().stats().bytes, mfc_bytes);
}

TEST(Properties, P6_WholeTracedStackIsDeterministic)
{
    auto run = [] {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        wl::ReductionParams p;
        p.n_elements = 8192;
        p.n_spes = 4;
        p.report_every_tile = true;
        wl::Reduction wl(sys, p);
        wl.start();
        sys.run();
        return trace::writeBuffer(tracer.finalize());
    };
    EXPECT_EQ(run(), run()); // byte-identical trace files
}

TEST(Properties, P3b_IntervalsNestInsideTheRun)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    const ta::Analysis a = ta::analyze(tracer.finalize());
    for (std::uint32_t s = 0; s < 2; ++s) {
        const ta::Interval* run = a.intervals.spuRun(s);
        ASSERT_NE(run, nullptr);
        for (const auto& iv : a.intervals.per_core[s + 1]) {
            if (iv.cls == ta::IntervalClass::Run)
                continue;
            EXPECT_GE(iv.start_tb, run->start_tb);
            EXPECT_LE(iv.end_tb, run->end_tb + 1);
        }
    }
}

/**
 * Seeded random trace: per-core sync records, drop markers, and event
 * records in random stream order. @p messy additionally injects
 * pre-sync events and bad core ids — records only lenient analysis
 * accepts. Timestamps follow the real raw-clock conventions (PPE
 * counts up, SPEs count down) but the property under test is pure
 * serial/parallel agreement, whatever the values.
 */
trace::TraceData
randomTrace(std::uint32_t seed, std::uint32_t n_spes, std::size_t n_records,
            bool messy)
{
    std::mt19937 rng(seed);
    trace::TraceData t;
    t.header.num_spes = n_spes;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs.resize(n_spes, "rand");

    const std::uint32_t n_cores = n_spes + 1;
    std::vector<std::uint64_t> tb(n_cores, 1'000);
    std::vector<std::uint64_t> sync_tb(n_cores, 0);
    std::vector<std::uint32_t> sync_raw(n_cores, 0);
    std::vector<bool> synced(n_cores, false);
    const auto raw = [&](std::uint32_t core) {
        return core == 0 ? static_cast<std::uint32_t>(tb[core])
                         : static_cast<std::uint32_t>(~tb[core]);
    };

    for (std::size_t i = 0; i < n_records; ++i) {
        const auto core = static_cast<std::uint16_t>(rng() % n_cores);
        tb[core] += rng() % 50;
        trace::Record r{};
        r.core = core;
        r.timestamp = raw(core);
        const std::uint32_t roll = rng() % 100;
        if (messy && roll < 3) {
            r.core = static_cast<std::uint16_t>(n_cores + rng() % 4);
            r.kind = static_cast<std::uint8_t>(rng() % 30);
        } else if ((!synced[core] && !messy) || roll < 8) {
            r.kind = trace::kSyncRecord;
            sync_raw[core] = raw(core);
            sync_tb[core] = tb[core];
            synced[core] = true;
            r.a = sync_raw[core];
            r.b = sync_tb[core];
        } else if (roll < 14) {
            r.kind = trace::kDropRecord;
            r.a = 1 + rng() % 20;
            r.b = rng() % 1'000;
        } else {
            r.kind = static_cast<std::uint8_t>(rng() % 30);
            r.phase = static_cast<std::uint8_t>(rng() % 2);
            r.a = rng();
            r.b = rng();
            r.c = rng();
            r.d = rng();
        }
        t.records.push_back(r);
    }
    t.header.record_count = t.records.size();
    return t;
}

void
expectSameModel(const ta::TraceModel& s, const ta::TraceModel& p)
{
    EXPECT_EQ(s.leniencySkipped(), p.leniencySkipped());
    EXPECT_EQ(s.startTb(), p.startTb());
    EXPECT_EQ(s.endTb(), p.endTb());
    ASSERT_EQ(s.cores().size(), p.cores().size());
    for (std::size_t c = 0; c < s.cores().size(); ++c) {
        EXPECT_EQ(s.cores()[c].label, p.cores()[c].label);
        EXPECT_TRUE(s.cores()[c].events == p.cores()[c].events)
            << "core " << c << " events differ";
    }
}

TEST(Properties, P7_AnyShardSplitMergesToTheSameModel)
{
    constexpr std::uint64_t kShardSizes[] = {1, 3, 7, 64, 1'000'000};
    for (const std::uint32_t seed : {11u, 22u, 33u}) {
        const bool messy = seed != 11u; // strict-valid and messy inputs
        const trace::TraceData data = randomTrace(seed, 3, 4'000, messy);
        const ta::TraceModel serial = ta::TraceModel::build(data, messy);
        for (const std::uint64_t shard : kShardSizes) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " shard " +
                         std::to_string(shard));
            ta::WorkerPool pool(3);
            const ta::TraceModel par =
                ta::buildModelParallel(data, pool, messy, shard);
            expectSameModel(serial, par);
        }
    }
}

TEST(Properties, P7b_WorkloadTraceSplitInvariance)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());
    const trace::TraceData data = tracer.finalize();

    const ta::TraceModel serial = ta::TraceModel::build(data);
    for (const std::uint64_t shard : {1ull, 13ull, 257ull}) {
        ta::WorkerPool pool(4);
        const ta::TraceModel par =
            ta::buildModelParallel(data, pool, false, shard);
        expectSameModel(serial, par);
    }
}

TEST(Properties, P8_ScanCombineIsAssociativeAndSplitInvariant)
{
    const std::uint32_t n_cores = 4;
    const trace::TraceData data = randomTrace(77, 3, 3'000, true);
    const auto n = static_cast<std::uint64_t>(data.records.size());
    const ta::scan::RangeScan whole =
        ta::scan::scanRange(data, 0, n, n_cores);

    std::mt19937 rng(99);
    for (int trial = 0; trial < 50; ++trial) {
        std::uint64_t i = rng() % (n + 1);
        std::uint64_t j = rng() % (n + 1);
        if (i > j)
            std::swap(i, j);
        const ta::scan::RangeScan a =
            ta::scan::scanRange(data, 0, i, n_cores);
        const ta::scan::RangeScan b =
            ta::scan::scanRange(data, i, j - i, n_cores);
        const ta::scan::RangeScan c =
            ta::scan::scanRange(data, j, n - j, n_cores);

        // (a · b) · c
        ta::scan::RangeScan left = a;
        ta::scan::combine(left, b);
        ta::scan::combine(left, c);
        // a · (b · c)
        ta::scan::RangeScan right_inner = b;
        ta::scan::combine(right_inner, c);
        ta::scan::RangeScan right = a;
        ta::scan::combine(right, right_inner);

        EXPECT_TRUE(left == right) << "associativity broke at cuts " << i
                                   << "," << j;
        // Split invariance: the fold equals the whole-range scan.
        EXPECT_TRUE(left == whole) << "split invariance broke at cuts "
                                   << i << "," << j;
    }
}

TEST(Properties, P9_RandomWindowedQueriesEqualBruteForceFilter)
{
    for (const std::uint32_t seed : {101u, 202u, 303u}) {
        const trace::TraceData data =
            randomTrace(seed, 3, 4'000, /*messy=*/false);
        const std::string path = ::testing::TempDir() + "/p9_" +
                                 std::to_string(seed) + ".v2.pdt";
        trace::writeFile(path, data,
                         trace::WriteOptions{.index_stride = 32});
        const ta::Analysis full = ta::analyze(data);
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t e = full.model.endTb();

        std::mt19937 rng(seed * 7 + 1);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> windows = {
            {s + (e - s) / 2, s + (e - s) / 2}, // empty
            {s + (e - s) / 3, s + (e - s) / 3 + 1}, // single tick
            {s > 10 ? s - 10 : 0, e + 10},      // whole file
        };
        for (int i = 0; i < 8; ++i) {
            std::uint64_t a = s + rng() % (e - s + 1);
            std::uint64_t b = s + rng() % (e - s + 1);
            if (a > b)
                std::swap(a, b);
            windows.emplace_back(a, b);
        }

        ta::BlockCache cache;
        for (const auto& [from, to] : windows) {
            SCOPED_TRACE("seed " + std::to_string(seed) + " [" +
                         std::to_string(from) + ", " + std::to_string(to) +
                         ")");
            const std::string expect =
                ta::windowReport(ta::queryWindow(full, from, to));
            for (const unsigned threads : {1u, 4u}) {
                ta::QueryOptions opt;
                opt.threads = threads;
                opt.cache = &cache;
                const ta::WindowResult w =
                    ta::queryWindowFile(path, from, to, opt);
                EXPECT_TRUE(w.used_index);
                EXPECT_EQ(ta::windowReport(w), expect);
            }
        }
        std::remove(path.c_str());
    }
}

TEST(Properties, P9_MessyTraceWindowedQueryThrowsLikeFullScan)
{
    // A messy trace (pre-sync events / bad core ids) fails strict
    // analysis; its index says so (strict-unclean), and the query
    // layer must reproduce the full-scan diagnostic, not answer.
    const trace::TraceData data = randomTrace(42, 3, 1'000, /*messy=*/true);
    const std::string path = ::testing::TempDir() + "/p9_messy.v2.pdt";
    trace::writeFile(path, data, trace::WriteOptions{.index_stride = 32});

    std::string scan_msg;
    try {
        (void)ta::analyzeFileParallel(path, ta::ParallelOptions{2, 0});
    } catch (const std::runtime_error& ex) {
        scan_msg = ex.what();
    }
    ASSERT_FALSE(scan_msg.empty());

    std::string query_msg;
    try {
        ta::QueryOptions opt;
        opt.threads = 2;
        (void)ta::queryWindowFile(path, 0, ~std::uint64_t{0}, opt);
    } catch (const std::runtime_error& ex) {
        query_msg = ex.what();
    }
    EXPECT_EQ(query_msg, scan_msg);
    std::remove(path.c_str());
}

TEST(Properties, P9b_AdjacentWindowsConcatenateToParentWindow)
{
    for (const std::uint32_t seed : {404u, 505u}) {
        const trace::TraceData data =
            randomTrace(seed, 3, 4'000, /*messy=*/false);
        const std::string path = ::testing::TempDir() + "/p9b_" +
                                 std::to_string(seed) + ".v2.pdt";
        trace::writeFile(path, data,
                         trace::WriteOptions{.index_stride = 32});
        const ta::Analysis full = ta::analyze(data);
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t e = full.model.endTb();

        std::mt19937 rng(seed);
        ta::BlockCache cache;
        ta::QueryOptions opt;
        opt.threads = 2;
        opt.cache = &cache;
        for (int i = 0; i < 6; ++i) {
            std::uint64_t cuts[3] = {s + rng() % (e - s + 1),
                                     s + rng() % (e - s + 1),
                                     s + rng() % (e - s + 1)};
            std::sort(std::begin(cuts), std::end(cuts));
            const auto [a, m, b] = std::tuple(cuts[0], cuts[1], cuts[2]);
            SCOPED_TRACE("seed " + std::to_string(seed) + " cuts " +
                         std::to_string(a) + "/" + std::to_string(m) +
                         "/" + std::to_string(b));
            const ta::WindowResult left =
                ta::queryWindowFile(path, a, m, opt);
            const ta::WindowResult right =
                ta::queryWindowFile(path, m, b, opt);
            const ta::WindowResult parent =
                ta::queryWindowFile(path, a, b, opt);
            ASSERT_EQ(parent.cores.size(), left.cores.size());
            for (std::size_t c = 0; c < parent.cores.size(); ++c) {
                std::vector<ta::Event> events = left.cores[c].events;
                events.insert(events.end(), right.cores[c].events.begin(),
                              right.cores[c].events.end());
                EXPECT_TRUE(events == parent.cores[c].events)
                    << "event concat mismatch on core " << c;
                std::vector<ta::Interval> ivs = left.intervals[c];
                ivs.insert(ivs.end(), right.intervals[c].begin(),
                           right.intervals[c].end());
                EXPECT_TRUE(ivs == parent.intervals[c])
                    << "interval concat mismatch on core " << c;
            }
        }
        std::remove(path.c_str());
    }
}

TEST(Properties, P10_CompressedContainerIsInvisibleOnEveryReadPath)
{
    for (const std::uint32_t seed : {111u, 222u, 333u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const bool messy = seed != 111u;
        const trace::TraceData data = randomTrace(seed, 3, 4'000, messy);
        const auto v1 = trace::writeBuffer(data);
        const auto v3 = trace::writeBuffer(
            data, trace::WriteOptions{.index_stride = 32, .compress = true});
        ASSERT_LT(v3.size(), v1.size());

        // Strict decode reproduces the records byte-identically, with
        // the in-memory header normalized back to version 1.
        const trace::TraceData strict = trace::readBuffer(v3);
        EXPECT_EQ(strict.header.version, trace::kFormatVersion);
        ASSERT_EQ(strict.records.size(), data.records.size());
        EXPECT_EQ(0, std::memcmp(strict.records.data(), data.records.data(),
                                 data.records.size() *
                                     sizeof(trace::Record)));

        // Salvage of the intact v3 file equals salvage of its v1 twin
        // (both filter the same implausible records on messy input).
        trace::ReadReport r1, r3;
        const trace::TraceData s1 = trace::readBufferSalvage(v1, r1);
        const trace::TraceData s3 = trace::readBufferSalvage(v3, r3);
        EXPECT_EQ(r3.records_read, r1.records_read);
        EXPECT_EQ(r3.records_skipped, r1.records_skipped);
        ASSERT_EQ(s3.records.size(), s1.records.size());
        EXPECT_EQ(0, std::memcmp(s3.records.data(), s1.records.data(),
                                 s1.records.size() * sizeof(trace::Record)));

        const std::string p1 = ::testing::TempDir() + "/p10_" +
                               std::to_string(seed) + ".pdt";
        const std::string p3 = ::testing::TempDir() + "/p10_" +
                               std::to_string(seed) + ".v3.pdt";
        trace::writeFile(p1, data);
        trace::writeFile(
            p3, data,
            trace::WriteOptions{.index_stride = 32, .compress = true});

        if (messy) {
            // Strict analysis rejects messy traces; both containers
            // must fail with the IDENTICAL diagnostic.
            std::string m1, m3;
            for (const unsigned threads : {1u, 4u}) {
                try {
                    (void)ta::analyzeFileParallel(
                        p1, ta::ParallelOptions{threads, 0});
                } catch (const std::runtime_error& ex) {
                    m1 = ex.what();
                }
                try {
                    (void)ta::analyzeFileParallel(
                        p3, ta::ParallelOptions{threads, 0});
                } catch (const std::runtime_error& ex) {
                    m3 = ex.what();
                }
                ASSERT_FALSE(m1.empty());
                EXPECT_EQ(m3, m1) << threads << " threads";
            }
        } else {
            // Full report from the compressed file matches the
            // uncompressed one at every thread count...
            const ta::Analysis full = ta::analyze(data);
            const std::string expect = ta::fullReport(full);
            for (const unsigned threads : {1u, 2u, 4u, 8u}) {
                const ta::Analysis a3 = ta::analyzeFileParallel(
                    p3, ta::ParallelOptions{threads, 0});
                EXPECT_EQ(ta::fullReport(a3), expect)
                    << threads << " threads";
            }
            // ...and indexed windowed queries answer exactly.
            const std::uint64_t s = full.model.startTb();
            const std::uint64_t e = full.model.endTb();
            ta::BlockCache cache;
            for (const auto& [from, to] :
                 {std::pair<std::uint64_t, std::uint64_t>{s, e + 1},
                  {s + (e - s) / 4, s + (3 * (e - s)) / 4}}) {
                const std::string brute =
                    ta::windowReport(ta::queryWindow(full, from, to));
                for (const unsigned threads : {1u, 4u}) {
                    ta::QueryOptions opt;
                    opt.threads = threads;
                    opt.cache = &cache;
                    const ta::WindowResult w =
                        ta::queryWindowFile(p3, from, to, opt);
                    EXPECT_TRUE(w.used_index);
                    EXPECT_EQ(ta::windowReport(w), brute);
                }
            }
        }
        std::remove(p1.c_str());
        std::remove(p3.c_str());
    }
}

TEST(Properties, P10b_CorruptBlockSalvagesToExactGapSeriallyAndInParallel)
{
    const trace::TraceData data =
        randomTrace(606, 3, 4'000, /*messy=*/false);
    auto bytes = trace::writeBuffer(
        data, trace::WriteOptions{.compress = true, .block_records = 256});

    // Find block 4 via the region directory and flip a payload bit.
    std::uint64_t region_off = sizeof(trace::Header);
    for (const auto& n : data.spe_programs)
        region_off += sizeof(std::uint32_t) + n.size();
    trace::BlockRegionHeader rh;
    std::memcpy(&rh, bytes.data() + region_off, sizeof(rh));
    ASSERT_EQ(rh.magic, trace::kBlockRegionMagic);
    ASSERT_GE(rh.block_count, 6u);
    trace::BlockDirEntry de;
    std::memcpy(&de, bytes.data() + rh.directory_offset + 4 * sizeof(de),
                sizeof(de));
    bytes[de.offset + sizeof(trace::BlockHeader) + 11] ^= 0x20;

    const std::string path = ::testing::TempDir() + "/p10b.v3.pdt";
    {
        std::ofstream os(path, std::ios::binary);
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }

    trace::ReadReport serial_rep;
    const trace::TraceData serial =
        trace::readBufferSalvage(bytes, serial_rep);
    EXPECT_TRUE(serial_rep.salvaged);
    EXPECT_EQ(serial_rep.records_skipped, de.record_count);
    // Every record outside the lost block survives; the only additions
    // are the synthetic sync/drop markers bridging the gap.
    EXPECT_GE(serial.records.size(), data.records.size() - de.record_count);

    const ta::Analysis ref = ta::analyze(serial, /*lenient=*/true);
    for (const unsigned threads : {2u, 4u}) {
        trace::ReadReport rep;
        const ta::Analysis par = ta::analyzeFileSalvageParallel(
            path, rep, ta::ParallelOptions{threads, 0});
        EXPECT_EQ(rep.records_read, serial_rep.records_read);
        EXPECT_EQ(rep.records_skipped, serial_rep.records_skipped);
        EXPECT_EQ(ta::fullReport(par), ta::fullReport(ref))
            << threads << " threads";
    }
    std::remove(path.c_str());
}

TEST(Properties, P10c_MmapAndBufferedSourcesProduceIdenticalReports)
{
    for (const std::uint32_t seed : {404u, 505u}) {
        SCOPED_TRACE("seed " + std::to_string(seed));
        const trace::TraceData data =
            randomTrace(seed, 3, 4'000, /*messy=*/false);
        const auto v3 = trace::writeBuffer(
            data, trace::WriteOptions{.compress = true,
                                      .block_records = 256});
        const std::string expect = ta::fullReport(ta::analyze(data));

        // Regular file: readFile takes the mmap path, and the
        // parallel analyzer reads the same file at 1 and 4 threads.
        const std::string path = ::testing::TempDir() + "/p10c_" +
                                 std::to_string(seed) + ".v3.pdt";
        {
            std::ofstream os(path, std::ios::binary);
            os.write(reinterpret_cast<const char*>(v3.data()),
                     static_cast<std::streamsize>(v3.size()));
        }
        EXPECT_EQ(ta::fullReport(ta::analyze(trace::readFile(path))),
                  expect);
        for (const unsigned threads : {1u, 4u}) {
            const ta::Analysis a = ta::analyzeFileParallel(
                path, ta::ParallelOptions{threads, 0});
            EXPECT_EQ(ta::fullReport(a), expect) << threads << " threads";
        }

        // FIFO: not mappable and not seekable — readFile must degrade
        // to the buffered serial path and still report identically.
        const std::string fifo = ::testing::TempDir() + "/p10c_" +
                                 std::to_string(seed) + ".fifo";
        std::remove(fifo.c_str());
        ASSERT_EQ(0, mkfifo(fifo.c_str(), 0600));
        std::thread writer([&] {
            std::ofstream os(fifo, std::ios::binary);
            os.write(reinterpret_cast<const char*>(v3.data()),
                     static_cast<std::streamsize>(v3.size()));
        });
        const trace::TraceData piped = trace::readFile(fifo);
        writer.join();
        EXPECT_EQ(ta::fullReport(ta::analyze(piped)), expect);

        std::remove(fifo.c_str());
        std::remove(path.c_str());
    }
}

// ---------------------------------------------------------------------------
// P11 family: trace surgery vs. the seeded scenario generator. Every
// failure message leads with the seed — re-running that seed alone
// reproduces the trace bit-for-bit.

namespace gen = trace::gen;

std::string
winRep(const trace::TraceData& d, std::uint64_t from, std::uint64_t to,
       bool lenient = false)
{
    return ta::windowReport(
        ta::queryWindow(ta::analyze(d, lenient), from, to));
}

/** Generated trace plus, for a subset of seeds, a lenient variant with
 *  a pre-sync record the analyzer provably skips. */
trace::TraceData
genTrace(std::uint64_t seed, bool messy)
{
    gen::GenOptions opt;
    opt.seed = seed;
    trace::TraceData d = gen::generate(opt);
    if (messy) {
        trace::Record r{};
        r.kind = 1;
        r.core = 1;
        r.timestamp = 123;
        d.records.insert(d.records.begin(), r);
        d.header.record_count = d.records.size();
    }
    return d;
}

TEST(Properties, P11_SliceOfAnyGeneratedTraceAnswersWindowsIdentically)
{
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const bool messy = seed % 5 == 0; // 40 lenient seeds
        SCOPED_TRACE("P11 seed " + std::to_string(seed) +
                     (messy ? " (lenient)" : ""));
        const trace::TraceData data = genTrace(seed, messy);
        const ta::Analysis full = ta::analyze(data, messy);
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t e = full.model.endTb();
        const std::uint64_t span = e - s;

        std::mt19937_64 rng(seed * 9'176'321 + 7);
        std::vector<std::pair<std::uint64_t, std::uint64_t>> windows = {
            {s + span / 4, s + (3 * span) / 4},
            {s > 10 ? s - 10 : 0, e + 10},
        };
        for (int i = 0; i < 2; ++i) {
            std::uint64_t a = s + rng() % (span + 1);
            std::uint64_t b = s + rng() % (span + 1);
            if (a > b)
                std::swap(a, b);
            windows.emplace_back(a, b);
        }
        trace::SliceOptions sopt;
        sopt.lenient = messy;
        for (const auto& [from, to] : windows) {
            SCOPED_TRACE("[" + std::to_string(from) + ", " +
                         std::to_string(to) + ")");
            const trace::TraceData sliced =
                trace::slice(data, from, to, sem, sopt);
            EXPECT_EQ(winRep(sliced, from, to, messy),
                      ta::windowReport(ta::queryWindow(full, from, to)));
        }
    }
}

TEST(Properties, P11a_SplicingSlicesAtTheirCutsReassemblesTheOriginal)
{
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const bool messy = seed % 7 == 0;
        SCOPED_TRACE("P11a seed " + std::to_string(seed) +
                     (messy ? " (lenient)" : ""));
        const trace::TraceData data = genTrace(seed, messy);
        const ta::Analysis full = ta::analyze(data, messy);
        const std::string expect = ta::fullReport(full);
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t span = full.model.endTb() - s;

        trace::SliceOptions sopt;
        sopt.lenient = messy;
        trace::SpliceOptions jopt;
        jopt.lenient = messy;

        // Two-way at a seeded cut point.
        std::mt19937_64 rng(seed * 1'442'695 + 3);
        const std::uint64_t m = s + rng() % (span + 1);
        jopt.cuts = {m};
        EXPECT_EQ(ta::fullReport(ta::analyze(
                      trace::splice(
                          {trace::slice(data, 0, m, sem, sopt),
                           trace::slice(data, m, ~std::uint64_t{0}, sem,
                                        sopt)},
                          jopt),
                      messy)),
                  expect)
            << "cut " << m;

        // Three-way at the thirds.
        const std::uint64_t m1 = s + span / 3;
        const std::uint64_t m2 = s + (2 * span) / 3;
        jopt.cuts = {m1, m2};
        EXPECT_EQ(ta::fullReport(ta::analyze(
                      trace::splice(
                          {trace::slice(data, 0, m1, sem, sopt),
                           trace::slice(data, m1, m2, sem, sopt),
                           trace::slice(data, m2, ~std::uint64_t{0}, sem,
                                        sopt)},
                          jopt),
                      messy)),
                  expect)
            << "cuts " << m1 << ", " << m2;
    }
}

TEST(Properties, P11b_FilterThenAnalyzeEqualsAnalyzeThenRestrict)
{
    const auto restricted = [](const ta::Analysis& a,
                               const std::vector<std::uint16_t>& cores,
                               std::uint64_t kind_mask) {
        std::vector<char> keep(a.model.cores().size(),
                               cores.empty() ? 1 : 0);
        for (const std::uint16_t c : cores)
            keep[c] = 1;
        std::vector<ta::CoreTimeline> tls = a.model.cores();
        for (auto& tl : tls) {
            if (!keep[tl.core]) {
                tl.events.clear();
                continue;
            }
            std::vector<ta::Event> kept;
            for (const ta::Event& ev : tl.events) {
                if (ev.kind >= 64 || ((kind_mask >> ev.kind) & 1))
                    kept.push_back(ev);
            }
            tl.events = std::move(kept);
        }
        std::vector<std::vector<ta::Interval>> ivs(tls.size());
        for (const auto& tl : tls)
            ivs[tl.core] = ta::buildCoreIntervals(tl);
        ta::WindowResult r;
        r.from = 0;
        r.to = ~std::uint64_t{0};
        r.header = a.model.header();
        r.cores = std::move(tls);
        r.intervals = std::move(ivs);
        r.leniency_skipped = a.model.leniencySkipped();
        return ta::windowReport(r);
    };

    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const bool messy = seed % 9 == 0;
        SCOPED_TRACE("P11b seed " + std::to_string(seed) +
                     (messy ? " (lenient)" : ""));
        const trace::TraceData data = genTrace(seed, messy);
        const ta::Analysis full = ta::analyze(data, messy);
        std::mt19937_64 rng(seed * 6'364'136 + 11);

        // A random non-empty core subset.
        const std::uint32_t n_cores = data.header.num_spes + 1;
        std::vector<std::uint16_t> cores;
        for (std::uint32_t c = 0; c < n_cores; ++c) {
            if (rng() % 2)
                cores.push_back(static_cast<std::uint16_t>(c));
        }
        if (cores.empty())
            cores.push_back(static_cast<std::uint16_t>(rng() % n_cores));

        // A random kind mask; kinds beyond the known ops always pass.
        const std::uint64_t kind_mask =
            rng() | (~std::uint64_t{0} << rt::kNumApiOps);

        trace::FilterOptions fopt;
        fopt.cores = cores;
        fopt.kind_mask = kind_mask;
        fopt.lenient = messy;
        EXPECT_EQ(winRep(trace::filter(data, fopt), 0, ~std::uint64_t{0},
                         messy),
                  restricted(full, cores, kind_mask));
    }
}

// ---------------------------------------------------------------------------
// P12 family: the cross-trace differential engine against the seeded
// generator. Same seed-first failure messages as P11.

/** Placed (clamped) event times in stream order — the same placements
 *  the analyzer derives, for picking perturbation ticks. */
std::vector<std::uint64_t>
placedTimes(const trace::TraceData& d)
{
    std::vector<trace::ClockReplay> clk(d.header.num_spes + 1);
    std::vector<std::uint64_t> prev(d.header.num_spes + 1, 0);
    std::vector<std::uint64_t> times;
    for (const trace::Record& rec : d.records) {
        if (rec.core >= clk.size())
            continue;
        std::uint64_t t = 0;
        if (!clk[rec.core].feed(rec, t))
            continue;
        t = std::max(t, prev[rec.core]);
        prev[rec.core] = t;
        times.push_back(t);
    }
    return times;
}

TEST(Properties, P12_DiffOfATraceAgainstItselfIsEmpty)
{
    for (std::uint64_t seed = 1; seed <= 200; ++seed) {
        const bool messy = seed % 5 == 0;
        SCOPED_TRACE("P12 seed " + std::to_string(seed) +
                     (messy ? " (lenient)" : ""));
        const trace::TraceData data = genTrace(seed, messy);
        const ta::Analysis a = ta::analyze(data, messy);
        const ta::DiffResult r = ta::diffAnalyses(a, a);
        EXPECT_FALSE(r.diverged);
        EXPECT_EQ(r.windows_diverged, 0u);
        EXPECT_FALSE(r.have_mover);
        for (const ta::CoreDelta& d : r.cores) {
            EXPECT_EQ(d.run_tb, 0);
            EXPECT_EQ(d.unmatched_a, 0u);
            EXPECT_EQ(d.unmatched_b, 0u);
            for (const std::int64_t b : d.bucket_tb)
                EXPECT_EQ(b, 0);
        }
    }
}

TEST(Properties, P12a_InjectedDelayIsLocalizedToItsWindow)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        SCOPED_TRACE("P12a seed " + std::to_string(seed));
        const trace::TraceData data = genTrace(seed, false);
        const std::vector<std::uint64_t> times = placedTimes(data);
        if (times.size() < 2)
            continue; // degenerate scenario: nothing to perturb

        // Perturb at a random PLACED tick: the event there moves, so
        // its window provably diverges and no earlier one can.
        std::mt19937_64 rng(seed * 2'862'933 + 29);
        const std::uint64_t t = times[rng() % times.size()];
        const ta::Analysis a = ta::analyze(data);
        trace::DelayOptions dopt;
        dopt.at = t;
        dopt.delta = a.model.spanTb() / 8 + 1 + rng() % 1000;
        const ta::Analysis b = ta::analyze(trace::delay(data, dopt));

        const ta::DiffResult r = ta::diffAnalyses(a, b);
        ASSERT_TRUE(r.diverged) << "tick " << t;
        EXPECT_LE(r.first.from_tb, t);
        EXPECT_LT(t, r.first.to_tb);
    }
}

TEST(Properties, P12b_DiffIsAntisymmetric)
{
    for (std::uint64_t seed = 1; seed <= 100; ++seed) {
        const bool messy = seed % 7 == 0;
        SCOPED_TRACE("P12b seed " + std::to_string(seed) +
                     (messy ? " (lenient)" : ""));
        const trace::TraceData data = genTrace(seed, messy);
        const ta::Analysis a = ta::analyze(data, messy);

        // B: a different seed of the same scenario when core counts
        // align, else a perturbed variant of A — either way a real,
        // nonzero differential.
        trace::TraceData data_b = genTrace(seed + 1000, false);
        bool messy_b = false;
        if (data_b.header.num_spes != data.header.num_spes) {
            trace::DelayOptions dopt;
            dopt.at = (a.model.startTb() + a.model.endTb()) / 2;
            dopt.delta = a.model.spanTb() / 6 + 31;
            dopt.lenient = messy;
            data_b = trace::delay(data, dopt);
            messy_b = messy;
        }
        const ta::Analysis b = ta::analyze(data_b, messy_b);

        const ta::DiffResult ab = ta::diffAnalyses(a, b);
        const ta::DiffResult ba = ta::diffAnalyses(b, a);

        ASSERT_EQ(ab.cores.size(), ba.cores.size());
        for (std::size_t i = 0; i < ab.cores.size(); ++i) {
            const ta::CoreDelta& f = ab.cores[i];
            const ta::CoreDelta& g = ba.cores[i];
            EXPECT_EQ(f.matched, g.matched);
            EXPECT_EQ(f.run_tb, -g.run_tb);
            for (std::size_t k = 0; k < ta::kNumDiffBuckets; ++k)
                EXPECT_EQ(f.bucket_tb[k], -g.bucket_tb[k]);
            EXPECT_EQ(f.unmatched_a, g.unmatched_b);
            EXPECT_EQ(f.unmatched_b, g.unmatched_a);
            EXPECT_EQ(f.unmatched_tb_a, g.unmatched_tb_b);
            EXPECT_EQ(f.unmatched_tb_b, g.unmatched_tb_a);
        }
        // Divergence geometry is direction-free: |x - y| == |y - x|.
        EXPECT_EQ(ab.window_tb, ba.window_tb);
        EXPECT_EQ(ab.windows_total, ba.windows_total);
        EXPECT_EQ(ab.windows_diverged, ba.windows_diverged);
        EXPECT_EQ(ab.diverged, ba.diverged);
        if (ab.diverged) {
            EXPECT_EQ(ab.first.index, ba.first.index);
            EXPECT_EQ(ab.first.score, ba.first.score);
        }
        EXPECT_EQ(ab.have_mover, ba.have_mover);
        if (ab.have_mover) {
            EXPECT_EQ(ab.mover_tb, -ba.mover_tb);
        }
    }
}

} // namespace
} // namespace cell
