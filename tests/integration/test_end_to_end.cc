/**
 * @file
 * End-to-end integration: workloads run on the simulated Cell, PDT
 * traces them, TA analyzes the traces, and the analysis agrees with
 * simulator ground truth.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/timeline.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/matmul.h"
#include "wl/reduction.h"
#include "wl/triad.h"

namespace cell {
namespace {

wl::TriadParams
smallTriad(std::uint32_t spes, std::uint32_t buffering)
{
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = spes;
    p.tile_elems = 512;
    p.buffering = buffering;
    return p;
}

TEST(EndToEnd, TriadRunsUntraced)
{
    rt::CellSystem sys;
    wl::Triad wl(sys, smallTriad(4, 2));
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    EXPECT_GT(wl.elapsed(), 0u);
    // No tracer: no tracer cycles charged anywhere.
    for (std::uint32_t s = 0; s < sys.numSpes(); ++s)
        EXPECT_EQ(sys.machine().spe(s).stats().tracer_cycles, 0u);
}

TEST(EndToEnd, TriadTracedProducesAnalyzableTrace)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::Triad wl(sys, smallTriad(4, 2));
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify()); // tracing must not corrupt results

    const trace::TraceData data = tracer.finalize();
    EXPECT_GT(data.records.size(), 100u);
    EXPECT_EQ(data.header.num_spes, sys.numSpes());
    EXPECT_EQ(data.spe_programs[0], "triad_spu");

    const ta::Analysis a = ta::analyze(data);
    // All 4 SPEs ran.
    for (std::uint32_t s = 0; s < 4; ++s) {
        EXPECT_TRUE(a.stats.spu[s].ran) << "SPE" << s;
        EXPECT_GT(a.stats.spu[s].run_tb, 0u);
        EXPECT_GT(a.stats.dma[s].commands, 0u);
    }
    // SPEs 4..7 never ran.
    for (std::uint32_t s = 4; s < 8; ++s)
        EXPECT_FALSE(a.stats.spu[s].ran);
}

TEST(EndToEnd, TraceSurvivesFileRoundTrip)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::Triad wl(sys, smallTriad(2, 2));
    wl.start();
    sys.run();
    const trace::TraceData data = tracer.finalize();

    const auto buf = trace::writeBuffer(data);
    const trace::TraceData back = trace::readBuffer(buf);
    ASSERT_EQ(back.records.size(), data.records.size());
    EXPECT_EQ(back.header.core_hz, data.header.core_hz);
    EXPECT_EQ(back.spe_programs, data.spe_programs);
    for (std::size_t i = 0; i < data.records.size(); ++i) {
        EXPECT_EQ(back.records[i].kind, data.records[i].kind);
        EXPECT_EQ(back.records[i].timestamp, data.records[i].timestamp);
    }
}

TEST(EndToEnd, TaTimesMatchGroundTruth)
{
    // The TA-reconstructed SPE run time must agree with the
    // simulator's own accounting to within one timebase tick's
    // conversion error.
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::Triad wl(sys, smallTriad(2, 2));
    wl.start();
    sys.run();
    const ta::Analysis a = ta::analyze(tracer.finalize());

    for (std::uint32_t s = 0; s < 2; ++s) {
        const auto& truth = sys.machine().spe(s).stats();
        const std::uint64_t truth_cycles = truth.run_end - truth.run_start;
        const std::uint64_t ta_cycles =
            a.model.tbToCycles(a.stats.spu[s].run_tb);
        const std::uint64_t div = sys.config().timebase_divider;
        EXPECT_NEAR(static_cast<double>(ta_cycles),
                    static_cast<double>(truth_cycles), 2.0 * div)
            << "SPE" << s;
    }
}

TEST(EndToEnd, DoubleBufferingBeatsSingleAndTaSeesWhy)
{
    // Paper use case: same triad, buffering 1 vs 2. Double buffering
    // must be faster, and TA must attribute the single-buffer loss to
    // DMA wait.
    sim::Tick t_single = 0;
    sim::Tick t_double = 0;
    double wait_share_single = 0;
    double wait_share_double = 0;

    for (std::uint32_t buffering : {1u, 2u}) {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        wl::Triad wl(sys, smallTriad(4, buffering));
        wl.start();
        sys.run();
        ASSERT_TRUE(wl.verify());
        const ta::Analysis a = ta::analyze(tracer.finalize());
        const auto& b = a.stats.spu[0];
        const double share = static_cast<double>(b.dma_wait_tb) /
                             static_cast<double>(b.run_tb);
        if (buffering == 1) {
            t_single = wl.elapsed();
            wait_share_single = share;
        } else {
            t_double = wl.elapsed();
            wait_share_double = share;
        }
    }
    EXPECT_LT(t_double, t_single);
    EXPECT_LT(wait_share_double, wait_share_single);
}

TEST(EndToEnd, TimelineRendersAllViews)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::Triad wl(sys, smallTriad(2, 2));
    wl.start();
    sys.run();
    const ta::Analysis a = ta::analyze(tracer.finalize());

    const std::string ascii = ta::renderAscii(a.model, a.intervals);
    EXPECT_NE(ascii.find("SPE0"), std::string::npos);
    EXPECT_NE(ascii.find('#'), std::string::npos);

    const std::string svg = ta::renderSvg(a.model, a.intervals);
    EXPECT_NE(svg.find("<svg"), std::string::npos);
    EXPECT_NE(svg.find("</svg>"), std::string::npos);

    std::ostringstream os;
    ta::printSummary(os, a);
    ta::printStallBreakdown(os, a);
    ta::printDmaReport(os, a);
    ta::printEventCounts(os, a);
    ta::printTracingReport(os, a);
    ta::exportBreakdownCsv(os, a);
    ta::exportIntervalsCsv(os, a);
    EXPECT_NE(os.str().find("SPE time breakdown"), std::string::npos);
}

TEST(EndToEnd, ChattyMailboxPatternIsVisible)
{
    // Use case F6: per-tile mailbox ping-pong vs a single report.
    double chatty_share = 0;
    double quiet_share = 0;
    for (bool chatty : {false, true}) {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        wl::ReductionParams p;
        p.n_elements = 16384;
        p.n_spes = 4;
        p.tile_elems = 512;
        p.report_every_tile = chatty;
        wl::Reduction wl(sys, p);
        wl.start();
        sys.run();
        ASSERT_TRUE(wl.verify());
        const ta::Analysis a = ta::analyze(tracer.finalize());
        double share = 0;
        for (std::uint32_t s = 0; s < 4; ++s) {
            share += static_cast<double>(a.stats.spu[s].mbox_wait_tb) /
                     static_cast<double>(a.stats.spu[s].run_tb);
        }
        (chatty ? chatty_share : quiet_share) = share / 4;
    }
    EXPECT_GT(chatty_share, quiet_share + 0.05);
}

TEST(EndToEnd, MatmulTracedAndVerified)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::MatmulParams p;
    p.n = 64;
    p.n_spes = 2;
    wl::Matmul wl(sys, p);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());
    const ta::Analysis a = ta::analyze(tracer.finalize());
    // List commands must show up in the op counts.
    std::uint64_t getl = 0;
    for (const auto& row : a.stats.op_counts)
        getl += row[static_cast<std::size_t>(rt::ApiOp::SpuMfcGetList)];
    EXPECT_GT(getl, 0u);
}

} // namespace
} // namespace cell
