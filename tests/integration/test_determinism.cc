/**
 * @file
 * Run-to-run determinism of the full stack.
 *
 * Two identical simulations must agree exactly: same number of engine
 * events dispatched, and — when traced — byte-identical serialized
 * traces. This pins the engine's (tick, sequence) dispatch order and
 * the tracer's record stream against regressions from scheduler or
 * I/O changes; any nondeterminism (iteration over hashed containers,
 * address-dependent ordering, uninitialized padding) shows up here.
 */

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "trace/writer.h"
#include "wl/triad.h"

namespace {

using cell::rt::CellSystem;
using cell::wl::Triad;
using cell::wl::TriadParams;

TriadParams
smallTriad()
{
    TriadParams p;
    p.n_elements = 8192;
    p.n_spes = 4;
    p.buffering = 2;
    return p;
}

struct RunResult
{
    std::uint64_t events = 0;
    std::vector<std::uint8_t> trace_bytes;
};

RunResult
runOnce(bool traced)
{
    CellSystem sys;
    std::unique_ptr<cell::pdt::Pdt> tracer;
    if (traced)
        tracer = std::make_unique<cell::pdt::Pdt>(sys);
    Triad wl(sys, smallTriad());
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    RunResult r;
    r.events = sys.engine().eventsDispatched();
    if (traced)
        r.trace_bytes = cell::trace::writeBuffer(tracer->finalize());
    return r;
}

TEST(Determinism, UntracedRunsDispatchIdenticalEventCounts)
{
    const RunResult a = runOnce(false);
    const RunResult b = runOnce(false);
    EXPECT_GT(a.events, 0u);
    EXPECT_EQ(a.events, b.events);
}

TEST(Determinism, TracedRunsProduceByteIdenticalTraces)
{
    const RunResult a = runOnce(true);
    const RunResult b = runOnce(true);
    EXPECT_EQ(a.events, b.events);
    ASSERT_FALSE(a.trace_bytes.empty());
    EXPECT_EQ(a.trace_bytes, b.trace_bytes);
}

TEST(Determinism, TracingDoesNotChangeUntracedReplay)
{
    // A traced run perturbs the simulation (the paper's subject!), but
    // repeating the *same* configuration must stay self-consistent.
    const RunResult t1 = runOnce(true);
    const RunResult u1 = runOnce(false);
    const RunResult t2 = runOnce(true);
    const RunResult u2 = runOnce(false);
    EXPECT_EQ(t1.events, t2.events);
    EXPECT_EQ(u1.events, u2.events);
    EXPECT_EQ(t1.trace_bytes, t2.trace_bytes);
}

} // namespace
