/**
 * @file
 * Machine-configuration sweeps: the whole stack (workload + tracer +
 * analyzer) must stay correct across machine shapes — SPE counts,
 * timebase dividers, EIB widths — not just the default Cell.
 */

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "wl/triad.h"

namespace cell {
namespace {

struct MachineCase
{
    std::uint32_t num_spes;
    std::uint32_t timebase_divider;
    std::uint32_t num_rings;
    std::uint32_t mic_bytes_per_cycle;
};

class MachineSweep : public ::testing::TestWithParam<MachineCase>
{};

TEST_P(MachineSweep, StackWorksOnThisMachine)
{
    const auto& c = GetParam();
    sim::MachineConfig mc;
    mc.num_spes = c.num_spes;
    mc.timebase_divider = c.timebase_divider;
    mc.eib.num_rings = c.num_rings;
    mc.eib.mic_bytes_per_cycle = c.mic_bytes_per_cycle;

    rt::CellSystem sys(mc);
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = std::min(c.num_spes, 4u);
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());

    const ta::Analysis a = ta::analyze(tracer.finalize());
    EXPECT_EQ(a.model.numSpes(), c.num_spes);
    EXPECT_EQ(a.model.header().timebase_divider, c.timebase_divider);
    for (std::uint32_t s = 0; s < p.n_spes; ++s) {
        EXPECT_TRUE(a.stats.spu[s].ran);
        EXPECT_GT(a.stats.spu[s].utilization(), 0.0);
        EXPECT_LE(a.stats.spu[s].utilization(), 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Machines, MachineSweep,
    ::testing::Values(
        MachineCase{1, 120, 4, 8},   // one SPE
        MachineCase{2, 120, 4, 8},
        MachineCase{8, 120, 4, 8},   // the real Cell
        MachineCase{16, 120, 4, 8},  // dual-Cell blade worth of SPEs
        MachineCase{8, 40, 4, 8},    // faster timebase (PS3-like)
        MachineCase{8, 1, 4, 8},     // cycle-granular decrementer
        MachineCase{8, 1000, 4, 8},  // very coarse timebase
        MachineCase{8, 120, 1, 8},   // single-ring EIB
        MachineCase{8, 120, 4, 2},   // starved memory bandwidth
        MachineCase{8, 120, 8, 16}));// beefy fantasy interconnect

TEST(MachineSweep, FasterMemoryNeverSlowsTheWorkload)
{
    auto elapsed = [](std::uint32_t mic_bytes) {
        sim::MachineConfig mc;
        mc.eib.mic_bytes_per_cycle = mic_bytes;
        rt::CellSystem sys(mc);
        wl::TriadParams p;
        p.n_elements = 32768;
        p.n_spes = 8;
        p.buffering = 1; // expose transfer latency fully
        wl::Triad wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
        return wl.elapsed();
    };
    const auto slow = elapsed(2);
    const auto mid = elapsed(8);
    const auto fast = elapsed(32);
    EXPECT_GE(slow, mid);
    EXPECT_GE(mid, fast);
}

TEST(MachineSweep, MoreSpesNeverSlowAFixedProblem)
{
    auto elapsed = [](std::uint32_t spes) {
        rt::CellSystem sys;
        wl::TriadParams p;
        p.n_elements = 65536;
        p.n_spes = spes;
        p.compute_per_elem = 32; // compute-bound: should scale
        wl::Triad wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
        return wl.elapsed();
    };
    const auto t1 = elapsed(1);
    const auto t2 = elapsed(2);
    const auto t4 = elapsed(4);
    const auto t8 = elapsed(8);
    EXPECT_GT(t1, t2);
    EXPECT_GT(t2, t4);
    EXPECT_GT(t4, t8);
    // Compute-bound: near-linear scaling 1 -> 8.
    EXPECT_GT(static_cast<double>(t1) / static_cast<double>(t8), 6.0);
}

TEST(MachineSweep, CoarseTimebaseOnlyCoarsensTimes)
{
    // With divider 1000 the TA's resolution is 1000 cycles; run time
    // must still agree with ground truth within one tick.
    sim::MachineConfig mc;
    mc.timebase_divider = 1000;
    rt::CellSystem sys(mc);
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());
    const ta::Analysis a = ta::analyze(tracer.finalize());
    const auto& truth = sys.machine().spe(0).stats();
    const double truth_cycles =
        static_cast<double>(truth.run_end - truth.run_start);
    const double ta_cycles =
        static_cast<double>(a.model.tbToCycles(a.stats.spu[0].run_tb));
    EXPECT_NEAR(ta_cycles, truth_cycles, 2000.0);
}

} // namespace
} // namespace cell
