/**
 * @file
 * Edge cases across module boundaries: aperture violations, arena
 * collisions, empty analyses, tracer re-attachment, and API misuse
 * that must fail loudly instead of corrupting the simulation.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "ta/compare.h"
#include "ta/profile.h"
#include "ta/timeline.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/triad.h"

namespace cell {
namespace {

TEST(EdgeCases, DmaStraddlingLsApertureEndThrows)
{
    sim::MachineConfig cfg;
    cfg.num_spes = 2;
    sim::Machine m(cfg);
    // A read touching past the 256 KiB LS inside SPE0's 1 MiB aperture
    // window must throw, not silently read the gap.
    std::uint8_t buf[32];
    EXPECT_THROW(
        m.readEa(cfg.lsAperture(0) + sim::kLocalStoreSize - 16, buf, 32),
        std::out_of_range);
    // Past the populated apertures the window ends (it is sized by
    // num_spes), so the EA routes to plain main storage.
    EXPECT_NO_THROW(m.readEa(cfg.lsAperture(5), buf, 32));
}

TEST(EdgeCases, ArenaAllocatorRefusesLsApertureCollision)
{
    sim::MachineConfig cfg;
    cfg.ls_map_base = 0x1000'0000; // right where the arena starts
    rt::CellSystem sys(cfg);
    EXPECT_THROW(sys.alloc(128), std::runtime_error);
}

TEST(EdgeCases, EmptyAnalysisPrintsWithoutCrashing)
{
    trace::TraceData empty;
    empty.header.num_spes = 8;
    empty.header.core_hz = 3'200'000'000ULL;
    empty.header.timebase_divider = 120;
    empty.spe_programs.resize(8);
    const ta::Analysis a = ta::analyze(empty);

    std::ostringstream os;
    ta::printSummary(os, a);
    ta::printStallBreakdown(os, a);
    ta::printDmaReport(os, a);
    ta::printDmaHistogram(os, a);
    ta::printEventCounts(os, a);
    ta::printTracingReport(os, a);
    ta::printActivity(os, a);
    ta::exportBreakdownCsv(os, a);
    ta::exportIntervalsCsv(os, a);
    ta::exportDmaTransfersCsv(os, a);
    EXPECT_FALSE(os.str().empty());
    EXPECT_NO_THROW(ta::renderAscii(a.model, a.intervals));
    EXPECT_NO_THROW(ta::renderSvg(a.model, a.intervals));
}

TEST(EdgeCases, CompareEmptyToEmpty)
{
    trace::TraceData empty;
    empty.header.num_spes = 2;
    empty.header.core_hz = 3'200'000'000ULL;
    empty.header.timebase_divider = 120;
    empty.spe_programs.resize(2);
    const ta::Analysis a = ta::analyze(empty);
    const ta::Analysis b = ta::analyze(empty);
    std::ostringstream os;
    EXPECT_NO_THROW(ta::printComparison(os, a, b));
}

TEST(EdgeCases, TracerDetachStopsCharging)
{
    rt::CellSystem sys;
    auto tracer = std::make_unique<pdt::Pdt>(sys);
    tracer->detach();
    EXPECT_EQ(sys.hook(), nullptr);
    EXPECT_EQ(sys.spuLsLimit(), sim::kLocalStoreSize);

    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 1;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    EXPECT_EQ(sys.machine().spe(0).stats().tracer_cycles, 0u);
    EXPECT_EQ(tracer->stats().totalRecords(), 0u);
}

TEST(EdgeCases, SecondTracerAfterDetachWorks)
{
    rt::CellSystem sys;
    {
        pdt::Pdt first(sys);
        // destructor detaches
    }
    pdt::Pdt second(sys);
    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 1;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    EXPECT_GT(second.stats().totalRecords(), 0u);
}

TEST(EdgeCases, ContextOfOutOfRangeSpeThrows)
{
    rt::CellSystem sys;
    EXPECT_THROW(sys.context(99), std::out_of_range);
}

TEST(EdgeCases, RunWithNoWorkIsANoop)
{
    rt::CellSystem sys;
    sys.run();
    EXPECT_EQ(sys.engine().now(), 0u);
    pdt::Pdt tracer(sys);
    sys.run();
    const trace::TraceData data = tracer.finalize();
    EXPECT_TRUE(data.records.empty());
    EXPECT_NO_THROW(ta::analyze(data));
}

TEST(EdgeCases, StartWithEmptyProgramThrows)
{
    rt::CellSystem sys;
    bool threw = false;
    sys.runPpe([&](rt::PpeEnv&) -> rt::CoTask<void> {
        rt::SpuProgramImage img; // no main
        try {
            co_await sys.context(0).start(img);
        } catch (const std::invalid_argument&) {
            threw = true;
        }
    });
    sys.run();
    EXPECT_TRUE(threw);
}

TEST(EdgeCases, TimelineWindowBeyondTraceIsEmptyNotCrashing)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 1;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    const ta::Analysis a = ta::analyze(tracer.finalize());
    ta::TimelineOptions opt;
    opt.start_tb = a.model.endTb() + 1000;
    opt.end_tb = a.model.endTb() + 2000;
    const std::string out = ta::renderAscii(a.model, a.intervals, opt);
    EXPECT_NE(out.find("SPE0"), std::string::npos);
}

TEST(EdgeCases, ZeroLengthNameTableRoundTrips)
{
    trace::TraceData t;
    t.spe_programs = {"", "", ""};
    const trace::TraceData back =
        trace::readBuffer(trace::writeBuffer(t));
    EXPECT_EQ(back.spe_programs.size(), 3u);
    EXPECT_TRUE(back.spe_programs[1].empty());
}

TEST(EdgeCases, MachineTicksToNsConversion)
{
    sim::Machine m;
    // 3200 cycles at 3.2 GHz = 1000 ns.
    EXPECT_DOUBLE_EQ(m.ticksToNs(3200), 1000.0);
}

} // namespace
} // namespace cell
