/**
 * @file
 * Robustness of the reader and analyzer against corrupted input: a
 * trace file from disk is untrusted, so every malformed variant must
 * raise a clean exception — never crash, hang, or over-allocate.
 */

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/triad.h"

namespace cell {
namespace {

/** Deterministic byte mangler. */
struct Rng
{
    std::uint32_t s = 0xC0FFEE;
    std::uint32_t next()
    {
        s = s * 1664525u + 1013904223u;
        return s;
    }
};

std::vector<std::uint8_t>
realTraceBytes()
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 4096;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    return trace::writeBuffer(tracer.finalize());
}

TEST(Robustness, RandomGarbageNeverCrashesTheReader)
{
    Rng rng;
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<std::uint8_t> junk(rng.next() % 4096);
        for (auto& b : junk)
            b = static_cast<std::uint8_t>(rng.next());
        try {
            trace::readBuffer(junk);
        } catch (const std::exception&) {
            // expected; anything non-crashing is a pass
        }
    }
    SUCCEED();
}

TEST(Robustness, TruncationAtEveryBoundaryIsClean)
{
    const auto bytes = realTraceBytes();
    // Truncate at a spread of positions including structural edges.
    std::vector<std::size_t> cuts = {0, 1, 8, 39, 40, 41, 60,
                                     bytes.size() / 2, bytes.size() - 1};
    for (std::size_t cut : cuts) {
        auto t = bytes;
        t.resize(cut);
        EXPECT_THROW(trace::readBuffer(t), std::runtime_error)
            << "cut at " << cut;
    }
}

TEST(Robustness, BitflippedTracesEitherParseOrThrow)
{
    const auto bytes = realTraceBytes();
    Rng rng;
    int parsed = 0;
    for (int trial = 0; trial < 100; ++trial) {
        auto t = bytes;
        // Flip 1-4 random bits.
        const int flips = 1 + static_cast<int>(rng.next() % 4);
        for (int f = 0; f < flips; ++f)
            t[rng.next() % t.size()] ^=
                static_cast<std::uint8_t>(1u << (rng.next() % 8));
        try {
            const trace::TraceData data = trace::readBuffer(t);
            // If it parsed, the analyzer must still behave: either
            // analyze cleanly or throw, never crash.
            try {
                const ta::Analysis a = ta::analyze(data);
                (void)a.stats.total_records;
            } catch (const std::exception&) {
            }
            ++parsed;
        } catch (const std::exception&) {
        }
    }
    // Most single-bit flips don't hit the magic/version/counters, so
    // a healthy fraction should still parse.
    EXPECT_GT(parsed, 10);
}

TEST(Robustness, HugeClaimedRecordCountIsRejectedNotAllocated)
{
    auto bytes = realTraceBytes();
    // Overwrite header.record_count (offset 32) with an absurd value.
    const std::uint64_t absurd = ~std::uint64_t{0} / 64;
    std::memcpy(bytes.data() + 32, &absurd, 8);
    // Must throw (truncated record stream), not attempt the allocation
    // of 2^58 records — guarded by reading into a sized buffer only
    // after the stream length check fails.
    EXPECT_THROW(trace::readBuffer(bytes), std::exception);
}

TEST(Robustness, AnalyzerToleratesShuffledPhases)
{
    // Ends-before-begins and doubled Begins must degrade, not crash.
    auto data = trace::readBuffer(realTraceBytes());
    for (std::size_t i = 0; i < data.records.size(); i += 3)
        data.records[i].phase ^= 1;
    EXPECT_NO_THROW({
        const ta::Analysis a = ta::analyze(data);
        (void)a.stats.total_records;
    });
}

TEST(Robustness, AnalyzerToleratesUnknownOpKinds)
{
    auto data = trace::readBuffer(realTraceBytes());
    for (std::size_t i = 0; i < data.records.size(); i += 5) {
        if (data.records[i].kind < trace::kSyncRecord)
            data.records[i].kind = 150; // not a real ApiOp, not a tool kind
    }
    EXPECT_NO_THROW({
        const ta::Analysis a = ta::analyze(data);
        (void)a.stats.total_records;
    });
}

} // namespace
} // namespace cell
