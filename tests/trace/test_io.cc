/**
 * @file
 * Trace format serialization tests: round trips, error handling,
 * layout guarantees.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>

#include "trace/reader.h"
#include "trace/writer.h"

namespace cell::trace {
namespace {

TraceData
sampleTrace()
{
    TraceData t;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {"prog_a", "", "prog_c"};
    for (std::uint32_t i = 0; i < 100; ++i) {
        Record r{};
        r.kind = static_cast<std::uint8_t>(i % 30);
        r.phase = i % 2;
        r.core = static_cast<std::uint16_t>(i % 4);
        r.timestamp = 1000 + i;
        r.a = i;
        r.b = ~std::uint64_t{i};
        r.c = i * 3;
        r.d = i * 7;
        t.records.push_back(r);
    }
    return t;
}

TEST(TraceIo, RecordLayoutIsStable)
{
    EXPECT_EQ(sizeof(Record), 32u);
    EXPECT_EQ(sizeof(Header), 40u);
    EXPECT_EQ(offsetof(Record, timestamp), 4u);
    EXPECT_EQ(offsetof(Record, a), 8u);
}

TEST(TraceIo, BufferRoundTripPreservesEverything)
{
    const TraceData t = sampleTrace();
    const auto buf = writeBuffer(t);
    const TraceData back = readBuffer(buf);

    EXPECT_EQ(back.header.magic, kMagic);
    EXPECT_EQ(back.header.version, kFormatVersion);
    EXPECT_EQ(back.header.core_hz, t.header.core_hz);
    EXPECT_EQ(back.header.timebase_divider, t.header.timebase_divider);
    EXPECT_EQ(back.header.num_spes, 3u);
    EXPECT_EQ(back.spe_programs, t.spe_programs);
    ASSERT_EQ(back.records.size(), t.records.size());
    for (std::size_t i = 0; i < t.records.size(); ++i) {
        EXPECT_EQ(back.records[i].kind, t.records[i].kind);
        EXPECT_EQ(back.records[i].phase, t.records[i].phase);
        EXPECT_EQ(back.records[i].core, t.records[i].core);
        EXPECT_EQ(back.records[i].timestamp, t.records[i].timestamp);
        EXPECT_EQ(back.records[i].a, t.records[i].a);
        EXPECT_EQ(back.records[i].b, t.records[i].b);
        EXPECT_EQ(back.records[i].c, t.records[i].c);
        EXPECT_EQ(back.records[i].d, t.records[i].d);
    }
}

TEST(TraceIo, FileRoundTrip)
{
    const std::string path = ::testing::TempDir() + "/pdt_io_test.pdt";
    const TraceData t = sampleTrace();
    writeFile(path, t);
    const TraceData back = readFile(path);
    EXPECT_EQ(back.records.size(), t.records.size());
    EXPECT_EQ(back.spe_programs, t.spe_programs);
    std::remove(path.c_str());
}

TEST(TraceIo, EmptyTraceRoundTrips)
{
    TraceData t;
    const TraceData back = readBuffer(writeBuffer(t));
    EXPECT_TRUE(back.records.empty());
    EXPECT_TRUE(back.spe_programs.empty());
}

TEST(TraceIo, BadMagicIsRejected)
{
    auto buf = writeBuffer(sampleTrace());
    buf[0] ^= 0xFF;
    EXPECT_THROW(readBuffer(buf), std::runtime_error);
}

TEST(TraceIo, WrongVersionIsRejected)
{
    auto buf = writeBuffer(sampleTrace());
    buf[8] = 99; // version field
    EXPECT_THROW(readBuffer(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedHeaderIsRejected)
{
    auto buf = writeBuffer(sampleTrace());
    buf.resize(10);
    EXPECT_THROW(readBuffer(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedRecordsAreRejected)
{
    auto buf = writeBuffer(sampleTrace());
    buf.resize(buf.size() - 16); // half a record missing
    EXPECT_THROW(readBuffer(buf), std::runtime_error);
}

TEST(TraceIo, TruncatedNameTableIsRejected)
{
    const TraceData t = sampleTrace();
    auto buf = writeBuffer(t);
    buf.resize(sizeof(Header) + 2);
    EXPECT_THROW(readBuffer(buf), std::runtime_error);
}

TEST(TraceIo, MissingFileThrows)
{
    EXPECT_THROW(readFile("/nonexistent/dir/x.pdt"), std::runtime_error);
    EXPECT_THROW(writeFile("/nonexistent/dir/x.pdt", sampleTrace()),
                 std::runtime_error);
}

/** A read-only streambuf with seeking disabled — models a pipe, the
 *  input for which the reader cannot know how many bytes remain. */
class NonSeekableBuf : public std::streambuf
{
  public:
    explicit NonSeekableBuf(std::string data) : data_(std::move(data))
    {
        setg(data_.data(), data_.data(), data_.data() + data_.size());
    }

  private:
    std::string data_;
};

std::string
bytesOf(const TraceData& t)
{
    const auto buf = writeBuffer(t);
    return {reinterpret_cast<const char*>(buf.data()), buf.size()};
}

TEST(TraceIo, NonSeekableStreamRoundTrips)
{
    const TraceData t = sampleTrace();
    NonSeekableBuf buf(bytesOf(t));
    std::istream is(&buf);
    const TraceData back = read(is);
    ASSERT_EQ(back.records.size(), t.records.size());
    EXPECT_EQ(back.spe_programs, t.spe_programs);
    EXPECT_EQ(back.records[99].timestamp, t.records[99].timestamp);
}

TEST(TraceIo, NonSeekableTruncatedRecordsThrowCleanly)
{
    std::string bytes = bytesOf(sampleTrace());
    bytes.resize(bytes.size() - 16); // half a record missing
    NonSeekableBuf buf(std::move(bytes));
    std::istream is(&buf);
    try {
        (void)read(is);
        FAIL() << "read accepted a truncated non-seekable stream";
    } catch (const std::runtime_error& e) {
        // The record-count validation can only run up front on seekable
        // input; on a pipe the error must still name where it stopped.
        EXPECT_NE(std::string(e.what()).find("after record"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceIo, NonSeekableLyingRecordCountDoesNotOverAllocate)
{
    // A corrupt header claiming 2^40 records must not trigger a giant
    // up-front allocation when the stream size is unknowable — the
    // chunked reader runs out of input (and throws) long before memory.
    std::string bytes = bytesOf(sampleTrace());
    const std::uint64_t lie = std::uint64_t{1} << 40;
    std::memcpy(bytes.data() + 32, &lie, sizeof(lie)); // record_count
    NonSeekableBuf buf(std::move(bytes));
    std::istream is(&buf);
    EXPECT_THROW((void)read(is), std::runtime_error);
}

TEST(TraceIo, LargeTraceRoundTrips)
{
    TraceData t;
    t.spe_programs.resize(8, "p");
    t.records.resize(100'000);
    for (std::size_t i = 0; i < t.records.size(); ++i)
        t.records[i].timestamp = static_cast<std::uint32_t>(i);
    const TraceData back = readBuffer(writeBuffer(t));
    ASSERT_EQ(back.records.size(), 100'000u);
    EXPECT_EQ(back.records[99'999].timestamp, 99'999u);
}

} // namespace
} // namespace cell::trace
