/**
 * @file
 * Shard-planner tests: the partition invariant, boundary resync
 * validation, shard reads reproducing the serial byte sequence, and
 * rejection of inputs that cannot be sharded (non-seekable streams,
 * truncated files).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>

#include "trace/reader.h"
#include "trace/shard.h"
#include "trace/writer.h"

namespace cell::trace {
namespace {

/** A read-only streambuf with seeking disabled — models a pipe. */
class NonSeekableBuf : public std::streambuf
{
  public:
    explicit NonSeekableBuf(std::string data) : data_(std::move(data))
    {
        setg(data_.data(), data_.data(), data_.data() + data_.size());
    }

  private:
    std::string data_;
};

TraceData
sampleTrace(std::uint32_t n_records)
{
    TraceData t;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {"prog_a", "prog_b"};
    for (std::uint32_t i = 0; i < n_records; ++i) {
        Record r{};
        r.kind = static_cast<std::uint8_t>(i % 30);
        r.phase = i % 2;
        r.core = static_cast<std::uint16_t>(i % 3);
        r.timestamp = 1000 + i;
        r.a = i;
        r.b = i * 2;
        t.records.push_back(r);
    }
    return t;
}

std::string
bytesOf(const TraceData& t)
{
    const auto buf = writeBuffer(t);
    return {reinterpret_cast<const char*>(buf.data()), buf.size()};
}

TEST(TraceShard, PlanPartitionsTheRecordRegionExactly)
{
    const TraceData t = sampleTrace(1000);
    std::istringstream is(bytesOf(t), std::ios::binary);
    ShardOptions opt;
    opt.target_shards = 7;
    opt.min_records_per_shard = 64;
    const ShardPlan plan = planShards(is, opt);

    EXPECT_EQ(plan.record_count, 1000u);
    EXPECT_EQ(plan.header.num_spes, 2u);
    EXPECT_EQ(plan.spe_programs, t.spe_programs);
    ASSERT_GT(plan.shards.size(), 1u);
    std::uint64_t next = 0;
    for (const Shard& s : plan.shards) {
        EXPECT_EQ(s.first_record, next);
        EXPECT_GT(s.num_records, 0u);
        EXPECT_EQ(s.byte_offset,
                  plan.record_region_offset + s.first_record * sizeof(Record));
        next += s.num_records;
    }
    EXPECT_EQ(next, plan.record_count);
    EXPECT_EQ(plan.boundaries_adjusted, 0u); // healthy trace: no-op
}

TEST(TraceShard, ShardReadsConcatenateToTheSerialRead)
{
    const TraceData t = sampleTrace(777);
    const std::string bytes = bytesOf(t);
    std::istringstream is(bytes, std::ios::binary);
    ShardOptions opt;
    opt.target_shards = 5;
    opt.min_records_per_shard = 32;
    const ShardPlan plan = planShards(is, opt);

    std::vector<Record> merged;
    for (std::size_t s = 0; s < plan.shards.size(); ++s) {
        std::istringstream ss(bytes, std::ios::binary);
        const std::vector<Record> part = readShard(ss, plan, s);
        EXPECT_EQ(part.size(), plan.shards[s].num_records);
        merged.insert(merged.end(), part.begin(), part.end());
    }
    ASSERT_EQ(merged.size(), t.records.size());
    EXPECT_EQ(0, std::memcmp(merged.data(), t.records.data(),
                             merged.size() * sizeof(Record)));
}

TEST(TraceShard, TinyTraceCollapsesToOneShard)
{
    const TraceData t = sampleTrace(100);
    std::istringstream is(bytesOf(t), std::ios::binary);
    ShardOptions opt;
    opt.target_shards = 8; // default min_records_per_shard (4096) wins
    const ShardPlan plan = planShards(is, opt);
    ASSERT_EQ(plan.shards.size(), 1u);
    EXPECT_EQ(plan.shards[0].num_records, 100u);
}

TEST(TraceShard, ImplausibleBoundaryRecordSlidesForward)
{
    TraceData t = sampleTrace(512);
    // With 4 shards of 128, record 128 starts shard 1. Make it
    // implausible (kind far outside both the op and tool ranges) so
    // boundary validation slides that boundary forward — and make the
    // next record plausible, so it only slides by one.
    t.records[128].kind = 99;
    t.records[128].phase = 7;
    std::istringstream is(bytesOf(t), std::ios::binary);
    ShardOptions opt;
    opt.target_shards = 4;
    opt.min_records_per_shard = 8;
    const ShardPlan plan = planShards(is, opt);

    EXPECT_GE(plan.boundaries_adjusted, 1u);
    // The partition invariant must survive the adjustment.
    std::uint64_t next = 0;
    for (const Shard& s : plan.shards) {
        EXPECT_EQ(s.first_record, next);
        next += s.num_records;
    }
    EXPECT_EQ(next, plan.record_count);
    // No shard may now begin at the implausible record.
    for (const Shard& s : plan.shards)
        EXPECT_NE(s.first_record, 128u);
}

TEST(TraceShard, NonSeekableInputIsRejectedWithClearError)
{
    NonSeekableBuf buf(bytesOf(sampleTrace(1000)));
    std::istream is(&buf);
    try {
        (void)planShards(is, {});
        FAIL() << "planShards accepted a non-seekable stream";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("not seekable"),
                  std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("--threads 1"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceShard, LyingRecordCountIsRejectedUpFront)
{
    std::string bytes = bytesOf(sampleTrace(100));
    // Header offset 32: record_count. Claim far more records than the
    // file holds.
    const std::uint64_t lie = 1'000'000;
    std::memcpy(bytes.data() + 32, &lie, sizeof(lie));
    std::istringstream is(bytes, std::ios::binary);
    try {
        (void)planShards(is, {});
        FAIL() << "planShards accepted a lying record count";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("--salvage"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceShard, BadMagicIsRejected)
{
    std::string bytes = bytesOf(sampleTrace(10));
    bytes[0] = 'X';
    std::istringstream is(bytes, std::ios::binary);
    EXPECT_THROW((void)planShards(is, {}), std::runtime_error);
}

TEST(TraceShard, PlanRestoresTheStreamPosition)
{
    const TraceData t = sampleTrace(300);
    std::istringstream is(bytesOf(t), std::ios::binary);
    const auto before = is.tellg();
    ShardOptions opt;
    opt.min_records_per_shard = 16;
    (void)planShards(is, opt);
    EXPECT_EQ(is.tellg(), before);
}

} // namespace
} // namespace cell::trace
