/**
 * @file
 * Salvage-reader tests: recovery from truncated, bit-flipped and
 * zero-length traces. The contract under test: salvage always recovers
 * at least the undamaged prefix, never throws past a usable header,
 * and reports exactly what it skipped.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "ta/model.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace cell::trace {
namespace {

/** Deterministic LCG so failures reproduce. */
struct Rng
{
    std::uint64_t s;
    explicit Rng(std::uint64_t seed) : s(seed) {}
    std::uint64_t next()
    {
        s = s * 6364136223846793005ULL + 1442695040888963407ULL;
        return s >> 17;
    }
};

/** A well-formed little trace: 2 SPEs, per-core sync then events. */
TraceData
makeTrace(std::uint32_t events_per_core = 9)
{
    TraceData t;
    t.header.num_spes = 2;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {"alpha", "beta"};
    for (std::uint16_t core = 1; core <= 2; ++core) {
        Record sync{};
        sync.kind = kSyncRecord;
        sync.core = core;
        sync.timestamp = 0xFFFF'0000u;
        sync.a = 0xFFFF'0000u;
        sync.b = 1'000;
        t.records.push_back(sync);
        for (std::uint32_t i = 0; i < events_per_core; ++i) {
            Record r{};
            r.kind = 7; // some API op
            r.phase = i % 2;
            r.core = core;
            r.timestamp = 0xFFFF'0000u - 10 * i;
            r.a = i;
            t.records.push_back(r);
        }
    }
    return t;
}

/** Byte offset where the record region starts. */
std::size_t
recordRegionOffset(const TraceData& t)
{
    std::size_t off = sizeof(Header);
    for (const std::string& name : t.spe_programs)
        off += sizeof(std::uint32_t) + name.size();
    return off;
}

TEST(Salvage, IntactTraceReadsClean)
{
    const TraceData t = makeTrace();
    const auto bytes = writeBuffer(t);
    ReadReport rep;
    const TraceData got = readBufferSalvage(bytes, rep);
    EXPECT_FALSE(rep.salvaged);
    EXPECT_EQ(rep.records_read, t.records.size());
    EXPECT_EQ(rep.records_skipped, 0u);
    EXPECT_TRUE(rep.notes.empty());
    ASSERT_EQ(got.records.size(), t.records.size());
    EXPECT_EQ(std::memcmp(got.records.data(), t.records.data(),
                          t.records.size() * sizeof(Record)),
              0);
}

TEST(Salvage, ZeroLengthAndHeaderlessInputThrow)
{
    ReadReport rep;
    const std::vector<std::uint8_t> empty;
    EXPECT_THROW(readBufferSalvage(empty, rep), std::runtime_error);
    EXPECT_THROW(readBuffer(empty), std::runtime_error);

    std::vector<std::uint8_t> stub(sizeof(Header) - 1, 0);
    EXPECT_THROW(readBufferSalvage(stub, rep), std::runtime_error);
}

TEST(Salvage, BadMagicThrowsInBothModes)
{
    auto bytes = writeBuffer(makeTrace());
    bytes[0] ^= 0xFF;
    ReadReport rep;
    EXPECT_THROW(readBuffer(bytes), std::runtime_error);
    EXPECT_THROW(readBufferSalvage(bytes, rep), std::runtime_error);
}

TEST(Salvage, EveryTruncationRecoversTheUndamagedPrefix)
{
    const TraceData t = makeTrace();
    const auto bytes = writeBuffer(t);
    const std::size_t rec0 = recordRegionOffset(t);

    for (std::size_t len = sizeof(Header); len < bytes.size(); len += 3) {
        const std::vector<std::uint8_t> cut(bytes.begin(),
                                            bytes.begin() + len);
        // Strict mode must refuse anything incomplete.
        EXPECT_THROW(readBuffer(cut), std::runtime_error) << "len=" << len;

        ReadReport rep;
        TraceData got;
        ASSERT_NO_THROW(got = readBufferSalvage(cut, rep)) << "len=" << len;
        EXPECT_TRUE(rep.salvaged) << "len=" << len;
        if (len >= rec0) {
            // Acceptance: salvage recovers >= the undamaged prefix.
            const std::size_t complete =
                std::min(t.records.size(), (len - rec0) / sizeof(Record));
            EXPECT_EQ(got.records.size(), complete) << "len=" << len;
            if (complete > 0) {
                EXPECT_EQ(std::memcmp(got.records.data(), t.records.data(),
                                      complete * sizeof(Record)),
                          0)
                    << "len=" << len;
            }
        }
    }
}

TEST(Salvage, CorruptMiddleRecordIsSkippedAndReported)
{
    const TraceData t = makeTrace();
    auto bytes = writeBuffer(t);
    const std::size_t rec0 = recordRegionOffset(t);
    const std::size_t victim = 5;
    bytes[rec0 + victim * sizeof(Record)] = 150; // implausible kind

    ReadReport rep;
    const TraceData got = readBufferSalvage(bytes, rep);
    EXPECT_TRUE(rep.salvaged);
    EXPECT_EQ(rep.records_skipped, 1u);
    EXPECT_EQ(rep.bytes_dropped, sizeof(Record));
    EXPECT_EQ(got.records.size(), t.records.size() - 1);
    ASSERT_FALSE(rep.notes.empty());
    EXPECT_NE(rep.notes[0].find("record"), std::string::npos);

    // Resynchronization: everything after the corrupt record survives.
    EXPECT_EQ(std::memcmp(got.records.data(), t.records.data(),
                          victim * sizeof(Record)),
              0);
    EXPECT_EQ(std::memcmp(got.records.data() + victim,
                          t.records.data() + victim + 1,
                          (t.records.size() - victim - 1) * sizeof(Record)),
              0);
}

TEST(Salvage, LyingRecordCountIsClampedWithNote)
{
    const TraceData t = makeTrace();
    auto bytes = writeBuffer(t);
    // Header layout: record_count is the trailing u64 at offset 32.
    const std::uint64_t lie = 1'000'000;
    std::memcpy(bytes.data() + 32, &lie, sizeof(lie));

    try {
        readBuffer(bytes);
        FAIL() << "strict read accepted a lying record count";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("truncated"), std::string::npos);
    }

    ReadReport rep;
    const TraceData got = readBufferSalvage(bytes, rep);
    EXPECT_TRUE(rep.salvaged);
    EXPECT_EQ(rep.records_expected, lie);
    EXPECT_EQ(got.records.size(), t.records.size());
    EXPECT_FALSE(rep.notes.empty());
}

TEST(Salvage, RandomBitFlipsNeverThrowPastTheHeader)
{
    const TraceData t = makeTrace(40);
    const auto pristine = writeBuffer(t);
    Rng rng(0xC0FFEE);
    for (int trial = 0; trial < 300; ++trial) {
        auto bytes = pristine;
        const int flips = 1 + static_cast<int>(rng.next() % 8);
        for (int f = 0; f < flips; ++f) {
            // Keep magic+version intact: a damaged header is declared
            // unrecoverable, everything after it must salvage.
            const std::size_t pos =
                12 + rng.next() % (bytes.size() - 12);
            bytes[pos] ^= static_cast<std::uint8_t>(
                1u << (rng.next() % 8));
        }
        ReadReport rep;
        TraceData got;
        ASSERT_NO_THROW(got = readBufferSalvage(bytes, rep))
            << "trial=" << trial;
        // Whatever survived must analyze leniently without throwing.
        ASSERT_NO_THROW(ta::TraceModel::build(got, /*lenient=*/true))
            << "trial=" << trial;
        if (rep.records_skipped > 0) {
            EXPECT_FALSE(rep.notes.empty()) << "trial=" << trial;
        }
    }
}

TEST(Salvage, WorksOverStreams)
{
    const TraceData t = makeTrace();
    const auto bytes = writeBuffer(t);
    std::string str(bytes.begin(), bytes.end());
    str.resize(str.size() - 40); // chop one record + part of another

    std::istringstream is(str, std::ios::binary);
    ReadReport rep;
    const TraceData got = readSalvage(is, rep);
    EXPECT_TRUE(rep.salvaged);
    EXPECT_EQ(got.records.size(), t.records.size() - 2);
}

TEST(Salvage, SummaryIsHumanReadable)
{
    const TraceData t = makeTrace();
    auto bytes = writeBuffer(t);
    bytes.resize(bytes.size() - 10);
    ReadReport rep;
    readBufferSalvage(bytes, rep);
    const std::string s = rep.summary();
    EXPECT_NE(s.find("salvaged"), std::string::npos);
    EXPECT_NE(s.find("records"), std::string::npos);
}

TEST(Salvage, PlausibleRecordFiltersByFieldRanges)
{
    Record r{};
    r.kind = 7;
    r.phase = 0;
    r.core = 2;
    EXPECT_TRUE(plausibleRecord(r, 2));
    r.core = 3;
    EXPECT_FALSE(plausibleRecord(r, 2)); // core beyond SPE count
    r.core = 0;
    r.phase = 2;
    EXPECT_FALSE(plausibleRecord(r, 2)); // impossible phase
    r.phase = 1;
    r.kind = 150;
    EXPECT_FALSE(plausibleRecord(r, 2)); // hole between ops and tools
    for (const std::uint8_t k : {kSyncRecord, kFlushRecord, kDropRecord}) {
        r.kind = k;
        EXPECT_TRUE(plausibleRecord(r, 2));
    }
    r.kind = 203;
    EXPECT_FALSE(plausibleRecord(r, 2)); // beyond known tool records
}

TEST(Salvage, StrictErrorsCarryByteOffsets)
{
    const TraceData t = makeTrace();
    auto bytes = writeBuffer(t);
    bytes.resize(bytes.size() - 10);
    try {
        readBuffer(bytes);
        FAIL() << "strict read accepted truncated input";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("truncated"), std::string::npos) << msg;
        EXPECT_NE(msg.find("byte"), std::string::npos) << msg;
    }
}

} // namespace
} // namespace cell::trace
