/**
 * @file
 * Unit tests for the v2 footer index: build/serialize/read roundtrip,
 * v1 compatibility (stride 0 is byte-identical; v1 readers ignore the
 * footer), and rejection of corrupted or lying indexes — including
 * ones whose checksum is VALID but whose structure contradicts the
 * file, which must be caught by the structural validation alone.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "trace/format.h"
#include "trace/index.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace cell::trace {
namespace {

/** A small deterministic multi-core trace: per-core syncs, paired
 *  begin/end records, periodic drop markers. */
TraceData
sampleTrace(std::uint32_t n_spes = 2, std::uint32_t n_records = 500)
{
    TraceData t;
    t.header.num_spes = n_spes;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs.assign(n_spes, "prog");

    const std::uint32_t n_cores = n_spes + 1;
    for (std::uint32_t c = 0; c < n_cores; ++c) {
        Record sync{};
        sync.kind = kSyncRecord;
        sync.core = static_cast<std::uint16_t>(c);
        sync.timestamp = c == 0 ? 1'000 : 900'000;
        sync.a = sync.timestamp;
        sync.b = 50'000 + c * 10;
        t.records.push_back(sync);
    }
    std::uint32_t raw_ppe = 1'000;
    std::uint32_t raw_spe = 900'000;
    for (std::uint32_t i = 0; i < n_records; ++i) {
        Record r{};
        r.core = static_cast<std::uint16_t>(i % n_cores);
        if (r.core == 0) {
            raw_ppe += 7;
            r.timestamp = raw_ppe;
        } else {
            raw_spe -= 5; // SPU decrementer counts down
            r.timestamp = raw_spe;
        }
        if (i % 97 == 96) {
            r.kind = kDropRecord;
            r.a = 3;
            r.b = i;
        } else {
            r.kind = i % 8; // MFC command ops
            r.phase = (i / n_cores) % 2 == 0 ? kPhaseBegin : kPhaseEnd;
            r.a = i;
            r.b = i * 2;
        }
        t.records.push_back(r);
    }
    return t;
}

/** Locate the index region inside a v2 buffer via the trailer. */
struct IndexRegion
{
    std::size_t start = 0;
    std::size_t size = 0;
};

IndexRegion
locateIndex(const std::vector<std::uint8_t>& buf)
{
    IndexTrailer tr{};
    std::memcpy(&tr, buf.data() + buf.size() - sizeof(tr), sizeof(tr));
    EXPECT_EQ(tr.magic, kIndexMagic);
    IndexRegion r;
    r.size = static_cast<std::size_t>(tr.index_size);
    r.start = buf.size() - sizeof(tr) - r.size;
    return r;
}

/** Re-seal a mutated index region with a correct checksum, so only
 *  the structural validation can reject it. */
void
resealChecksum(std::vector<std::uint8_t>& buf)
{
    const IndexRegion r = locateIndex(buf);
    const std::uint64_t sum = fnv1a64Bytes(buf.data() + r.start, r.size);
    std::memcpy(buf.data() + buf.size() - sizeof(IndexTrailer), &sum,
                sizeof(sum));
}

TEST(TraceIndex, StrideZeroWritesByteIdenticalV1)
{
    const TraceData t = sampleTrace();
    const auto v1 = writeBuffer(t);
    const auto v1_explicit = writeBuffer(t, WriteOptions{});
    EXPECT_EQ(v1, v1_explicit);
}

TEST(TraceIndex, V1BufferReportsNoIndex)
{
    const auto v1 = writeBuffer(sampleTrace());
    const IndexReadResult r = readIndexBuffer(v1);
    EXPECT_FALSE(r.present);
    EXPECT_FALSE(r.valid);
}

TEST(TraceIndex, RoundtripValidatesAndMatchesBuild)
{
    const TraceData t = sampleTrace();
    const auto v2 = writeBuffer(t, WriteOptions{.index_stride = 64});
    const IndexReadResult r = readIndexBuffer(v2);
    ASSERT_TRUE(r.present) << r.reason;
    ASSERT_TRUE(r.valid) << r.reason;
    EXPECT_TRUE(r.index.strictClean());

    const IndexHeader& h = r.index.header;
    EXPECT_EQ(h.version, kIndexVersion);
    EXPECT_EQ(h.stride, 64u);
    EXPECT_EQ(h.record_count, t.records.size());
    EXPECT_EQ(h.num_cores, t.header.num_spes + 1);
    ASSERT_EQ(r.index.cores.size(), h.num_cores);

    // Summaries partition the entries; per-core totals sum to the
    // record count; every non-final entry covers exactly one stride.
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < h.num_cores; ++c) {
        const IndexCoreSummary& s = r.index.cores[c];
        total += s.total_records;
        for (std::uint32_t k = 0; k < s.num_entries; ++k) {
            const IndexEntry& e = r.index.entries[s.first_entry + k];
            EXPECT_EQ(e.core, c);
            if (k + 1 < s.num_entries) {
                EXPECT_EQ(e.record_count, h.stride);
            }
        }
    }
    EXPECT_EQ(total, t.records.size());
}

TEST(TraceIndex, V1ReadersIgnoreTheFooter)
{
    const TraceData t = sampleTrace();
    const auto v1 = writeBuffer(t);
    const auto v2 = writeBuffer(t, WriteOptions{.index_stride = 64});
    ASSERT_GT(v2.size(), v1.size());

    const TraceData strict = readBuffer(v2);
    EXPECT_EQ(strict.records.size(), t.records.size());
    EXPECT_TRUE(std::memcmp(strict.records.data(), t.records.data(),
                            t.records.size() * sizeof(Record)) == 0);

    ReadReport report;
    const TraceData salvaged = readBufferSalvage(v2, report);
    EXPECT_EQ(salvaged.records.size(), t.records.size());
}

TEST(TraceIndex, PresyncRecordsMarkIndexStrictUnclean)
{
    TraceData t = sampleTrace();
    // A core-1 record BEFORE any sync: strict analysis throws, so the
    // index must advertise it (and strictClean() go false).
    Record early{};
    early.kind = 2;
    early.core = 1;
    early.timestamp = 123;
    t.records.insert(t.records.begin(), early);

    const auto v2 = writeBuffer(t, WriteOptions{.index_stride = 64});
    const IndexReadResult r = readIndexBuffer(v2);
    ASSERT_TRUE(r.valid) << r.reason;
    EXPECT_EQ(r.index.header.presync_records, 1u);
    EXPECT_FALSE(r.index.strictClean());
}

TEST(TraceIndex, FlippedChecksumInvalidatesIndex)
{
    auto v2 = writeBuffer(sampleTrace(), WriteOptions{.index_stride = 64});
    const IndexRegion reg = locateIndex(v2);
    v2[reg.start + reg.size / 2] ^= 0x01;
    const IndexReadResult r = readIndexBuffer(v2);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.valid);
    EXPECT_NE(r.reason.find("checksum"), std::string::npos) << r.reason;
}

TEST(TraceIndex, TruncatedFooterIsAbsentNotCrash)
{
    auto v2 = writeBuffer(sampleTrace(), WriteOptions{.index_stride = 64});
    v2.resize(v2.size() - 10);
    const IndexReadResult r = readIndexBuffer(v2);
    EXPECT_FALSE(r.valid);
}

TEST(TraceIndex, LyingRecordCountRejectedStructurally)
{
    auto v2 = writeBuffer(sampleTrace(), WriteOptions{.index_stride = 64});
    const IndexRegion reg = locateIndex(v2);
    IndexHeader h{};
    std::memcpy(&h, v2.data() + reg.start, sizeof(h));
    h.record_count += 1; // contradicts the file header
    std::memcpy(v2.data() + reg.start, &h, sizeof(h));
    resealChecksum(v2);
    const IndexReadResult r = readIndexBuffer(v2);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.valid);
}

TEST(TraceIndex, LyingEntryOffsetRejectedStructurally)
{
    auto v2 = writeBuffer(sampleTrace(), WriteOptions{.index_stride = 64});
    const IndexRegion reg = locateIndex(v2);
    IndexHeader h{};
    std::memcpy(&h, v2.data() + reg.start, sizeof(h));
    ASSERT_GT(h.entry_count, 0u);
    const std::size_t entry0 =
        reg.start + sizeof(IndexHeader) + h.num_cores * sizeof(IndexCoreSummary);
    IndexEntry e{};
    std::memcpy(&e, v2.data() + entry0, sizeof(e));
    e.byte_offset += 7; // off the record stride
    std::memcpy(v2.data() + entry0, &e, sizeof(e));
    resealChecksum(v2);
    const IndexReadResult r = readIndexBuffer(v2);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.valid);
}

TEST(TraceIndex, NonMonotonicEntryTicksRejectedStructurally)
{
    auto v2 = writeBuffer(sampleTrace(1, 2000),
                          WriteOptions{.index_stride = 64});
    const IndexRegion reg = locateIndex(v2);
    IndexHeader h{};
    std::memcpy(&h, v2.data() + reg.start, sizeof(h));
    // Need a core with >= 2 entries to break tick monotonicity.
    IndexCoreSummary victim{};
    std::size_t victim_first = 0;
    bool found = false;
    for (std::uint32_t c = 0; c < h.num_cores && !found; ++c) {
        std::memcpy(&victim,
                    v2.data() + reg.start + sizeof(IndexHeader) +
                        c * sizeof(IndexCoreSummary),
                    sizeof(victim));
        if (victim.num_entries >= 2) {
            victim_first = victim.first_entry;
            found = true;
        }
    }
    ASSERT_TRUE(found);
    const std::size_t entries_base = reg.start + sizeof(IndexHeader) +
                                     h.num_cores * sizeof(IndexCoreSummary);
    const std::size_t second =
        entries_base + (victim_first + 1) * sizeof(IndexEntry);
    IndexEntry e{};
    std::memcpy(&e, v2.data() + second, sizeof(e));
    // Make the FIRST entry's tick exceed the second's.
    IndexEntry e0{};
    const std::size_t first = entries_base + victim_first * sizeof(IndexEntry);
    std::memcpy(&e0, v2.data() + first, sizeof(e0));
    e0.tick = e.tick + 1'000'000;
    std::memcpy(v2.data() + first, &e0, sizeof(e0));
    resealChecksum(v2);
    const IndexReadResult r = readIndexBuffer(v2);
    EXPECT_TRUE(r.present);
    EXPECT_FALSE(r.valid);
}

TEST(TraceIndex, EmptyTraceIndexesCleanly)
{
    TraceData t;
    t.header.num_spes = 1;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {""};
    const auto v2 = writeBuffer(t, WriteOptions{.index_stride = 64});
    const IndexReadResult r = readIndexBuffer(v2);
    ASSERT_TRUE(r.valid) << r.reason;
    EXPECT_EQ(r.index.header.entry_count, 0u);
    EXPECT_EQ(r.index.header.record_count, 0u);
}

} // namespace
} // namespace cell::trace
