/**
 * @file
 * Fuzz target for the trace reader.
 *
 * Property under test: for arbitrary input bytes, the strict reader
 * either returns or throws std::runtime_error (never crashes, never
 * allocates unboundedly), and the salvage reader additionally never
 * throws once a valid header is present; whatever either returns must
 * survive lenient trace-model construction. The v2 index reader never
 * throws at all: a corrupted, truncated or lying footer index must
 * come back absent/invalid (full-scan fallback), never crash and
 * never validate.
 *
 * Two build modes:
 *  - With -DCELL_FUZZ=ON (requires clang's libFuzzer), this compiles
 *    to a real fuzzer via LLVMFuzzerTestOneInput.
 *  - By default (FUZZ_CORPUS_MAIN) it gets a plain main() that replays
 *    every file/directory passed on the command line — so the
 *    committed corpus runs as a regression test under any compiler.
 */

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "ta/model.h"
#include "trace/block.h"
#include "trace/index.h"
#include "trace/reader.h"

namespace {

void
oneInput(const std::uint8_t* data, std::size_t size)
{
    const std::vector<std::uint8_t> buf(data, data + size);

    try {
        const cell::trace::TraceData strict = cell::trace::readBuffer(buf);
        cell::ta::TraceModel::build(strict, /*lenient=*/true);
    } catch (const std::runtime_error&) {
        // Structural damage: the documented failure mode.
    }

    // The index reader's contract is stricter: no exceptions at all,
    // just present/valid flags.
    const cell::trace::IndexReadResult ir =
        cell::trace::readIndexBuffer(buf);
    (void)ir;

    // The v3 block decoder: the streaming reader (sequential and
    // random-access) and the probe. Same contract as the strict
    // reader — return or throw std::runtime_error, nothing else.
    {
        std::istringstream is(
            std::string(reinterpret_cast<const char*>(buf.data()),
                        buf.size()));
        const cell::trace::BlockRegionProbe probe =
            cell::trace::probeBlockRegion(is);
        (void)probe; // never throws; restores the stream position
        try {
            cell::trace::BlockReader br(is);
            cell::trace::DecodedBlock blk;
            while (br.next(blk)) {
            }
            (void)br.directory();
            if (br.blockCount() > 0)
                br.readBlock(br.blockCount() - 1, blk);
        } catch (const std::runtime_error&) {
            // Not a v3 trace, or a damaged one.
        }
    }

    try {
        cell::trace::ReadReport rep;
        const cell::trace::TraceData got =
            cell::trace::readBufferSalvage(buf, rep);
        // Salvage may only throw on a damaged header (checked above by
        // reaching this point at all); past it, everything recovered
        // must be analyzable.
        cell::ta::TraceModel::build(got, /*lenient=*/true);
    } catch (const std::runtime_error&) {
        // Bad magic / version / headerless input.
    }
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    oneInput(data, size);
    return 0;
}

#ifdef FUZZ_CORPUS_MAIN

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace {

int
replayFile(const std::filesystem::path& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "fuzz_reader: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    oneInput(bytes.data(), bytes.size());
    std::printf("fuzz_reader: %s (%zu bytes) ok\n", path.c_str(),
                bytes.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: fuzz_reader <corpus file or dir>...\n");
        return 2;
    }
    int rc = 0;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path p(argv[i]);
        if (std::filesystem::is_directory(p)) {
            for (const auto& e :
                 std::filesystem::recursive_directory_iterator(p)) {
                if (e.is_regular_file())
                    rc |= replayFile(e.path());
            }
        } else {
            rc |= replayFile(p);
        }
    }
    return rc;
}

#endif // FUZZ_CORPUS_MAIN
