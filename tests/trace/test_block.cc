/**
 * @file
 * Unit tests for the v3 compressed block format: exact round-trip
 * (including adversarial field values), block/tail geometry, strict
 * rejection of damage, salvage gap accounting from block seeds,
 * directory validation with walk-rebuild fallback, the streaming
 * BlockReader, the region probe, and block-aligned shard plans.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>

#include "trace/block.h"
#include "trace/format.h"
#include "trace/index.h"
#include "trace/mmap.h"
#include "trace/reader.h"
#include "trace/shard.h"
#include "trace/writer.h"
#include "util/worker_pool.h"

namespace cell::trace {
namespace {

/** A deterministic multi-core trace shaped like real PDT output:
 *  per-core syncs first, then plausible API records with slowly
 *  drifting payloads, periodic flush + drop markers. */
TraceData
sampleTrace(std::uint32_t n_spes = 3, std::uint32_t n_records = 5000)
{
    TraceData t;
    t.header.num_spes = n_spes;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs.assign(n_spes, "prog.elf");

    const std::uint32_t n_cores = n_spes + 1;
    for (std::uint32_t c = 0; c < n_cores; ++c) {
        Record sync{};
        sync.kind = kSyncRecord;
        sync.core = static_cast<std::uint16_t>(c);
        sync.timestamp = c == 0 ? 1'000 : 900'000;
        sync.a = sync.timestamp;
        sync.b = 50'000 + c * 10;
        t.records.push_back(sync);
    }
    std::uint32_t raw_ppe = 1'000;
    std::uint32_t raw_spe = 900'000;
    std::uint64_t addr = 0x10000;
    for (std::uint32_t i = 0; i < n_records; ++i) {
        Record r{};
        r.core = static_cast<std::uint16_t>(i % n_cores);
        if (r.core == 0) {
            raw_ppe += 7;
            r.timestamp = raw_ppe;
        } else {
            raw_spe -= 5; // SPU decrementer counts down
            r.timestamp = raw_spe;
        }
        if (i % 97 == 96) {
            r.kind = kDropRecord;
            r.a = 3;
            r.b = i / 97 * 3;
        } else if (i % 53 == 52) {
            r.kind = kFlushRecord;
            r.a = 53;
            r.b = 1'000;
        } else {
            r.kind = static_cast<std::uint8_t>(i % 6);
            r.phase = static_cast<std::uint8_t>(i & 1);
            r.a = addr += 128;
            r.b = 16'384;
            r.c = static_cast<std::uint32_t>(i);
            r.d = 7;
        }
        t.records.push_back(r);
    }
    t.header.record_count = t.records.size();
    return t;
}

bool
sameRecords(const std::vector<Record>& a, const std::vector<Record>& b)
{
    return a.size() == b.size() &&
           (a.empty() || std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(Record)) == 0);
}

/** Absolute offset of the record region (== region header) in a
 *  serialized buffer of @p t. */
std::uint64_t
regionOffsetOf(const TraceData& t)
{
    std::uint64_t off = sizeof(Header);
    for (const auto& n : t.spe_programs)
        off += sizeof(std::uint32_t) + n.size();
    return off;
}

/** Parse the region header + directory straight out of a v3 buffer. */
void
parseRegion(const std::vector<std::uint8_t>& buf, std::uint64_t region_off,
            BlockRegionHeader& rh, std::vector<BlockDirEntry>& dir)
{
    ASSERT_GE(buf.size(), region_off + sizeof(rh));
    std::memcpy(&rh, buf.data() + region_off, sizeof(rh));
    ASSERT_EQ(rh.magic, kBlockRegionMagic);
    dir.resize(rh.block_count);
    ASSERT_GE(buf.size(), rh.directory_offset + dir.size() * sizeof(dir[0]));
    std::memcpy(dir.data(), buf.data() + rh.directory_offset,
                dir.size() * sizeof(dir[0]));
}

TEST(Block, RoundTripStrict)
{
    const TraceData t = sampleTrace();
    const auto v1 = writeBuffer(t);
    const auto v3 = writeBuffer(t, {.compress = true});
    ASSERT_LT(v3.size(), v1.size());

    const TraceData back = readBuffer(v3);
    EXPECT_EQ(back.header.version, kFormatVersion); // normalized
    EXPECT_EQ(back.header.record_count, t.records.size());
    EXPECT_EQ(back.spe_programs, t.spe_programs);
    EXPECT_TRUE(sameRecords(back.records, t.records));
}

TEST(Block, CompressesRegularTracesWell)
{
    const TraceData t = sampleTrace(5, 50'000);
    const auto v1 = writeBuffer(t);
    const auto v3 = writeBuffer(t, {.compress = true});
    // The acceptance bar is 2.5x on realistic workloads; this
    // synthetic-but-representative trace should clear it comfortably.
    EXPECT_GT(static_cast<double>(v1.size()),
              2.5 * static_cast<double>(v3.size()));
}

TEST(Block, RoundTripArbitraryFieldValues)
{
    // Delta coding is modular, so decode must be exact for ANY field
    // values — including ones no tracer would emit (wild kinds, wrapped
    // timestamps, huge payload jumps). Strict v1 reads preserve such
    // bytes verbatim; strict v3 must too.
    std::mt19937_64 rng(0xB10C);
    TraceData t;
    t.header.num_spes = 2;
    t.spe_programs = {"a", "b"};
    for (int i = 0; i < 4000; ++i) {
        Record r{};
        r.kind = static_cast<std::uint8_t>(rng());
        r.phase = static_cast<std::uint8_t>(rng());
        r.core = static_cast<std::uint16_t>(rng());
        r.timestamp = static_cast<std::uint32_t>(rng());
        r.a = rng();
        r.b = rng();
        r.c = static_cast<std::uint32_t>(rng());
        r.d = static_cast<std::uint32_t>(rng());
        t.records.push_back(r);
    }
    t.header.record_count = t.records.size();

    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 512});
    const TraceData back = readBuffer(v3);
    EXPECT_TRUE(sameRecords(back.records, t.records));
}

TEST(Block, TailBlockGeometry)
{
    TraceData t = sampleTrace(2, 1000 - 3); // 1001 records: 15 full + tail
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 64});

    BlockRegionHeader rh;
    std::vector<BlockDirEntry> dir;
    parseRegion(v3, regionOffsetOf(t), rh, dir);
    EXPECT_EQ(rh.block_capacity, 64u);
    EXPECT_EQ(rh.record_count, t.records.size());
    EXPECT_EQ(rh.block_count, (t.records.size() + 63) / 64);
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < dir.size(); ++k) {
        EXPECT_EQ(dir[k].record_count,
                  k + 1 < dir.size()
                      ? 64u
                      : static_cast<std::uint32_t>(t.records.size() -
                                                   64 * (dir.size() - 1)));
        sum += dir[k].record_count;
    }
    EXPECT_EQ(sum, t.records.size());
    EXPECT_TRUE(sameRecords(readBuffer(v3).records, t.records));
}

TEST(Block, EmptyTraceRoundTrips)
{
    TraceData t;
    t.header.num_spes = 1;
    t.spe_programs = {"p"};
    const auto v3 = writeBuffer(t, {.compress = true});
    const TraceData back = readBuffer(v3);
    EXPECT_TRUE(back.records.empty());

    std::string s(v3.begin(), v3.end());
    std::istringstream is(s);
    BlockReader br(is);
    EXPECT_EQ(br.blockCount(), 0u);
    DecodedBlock blk;
    EXPECT_FALSE(br.next(blk));
}

TEST(Block, StrictThrowsOnCorruptBlock)
{
    const TraceData t = sampleTrace();
    auto v3 = writeBuffer(t, {.compress = true, .block_records = 256});
    BlockRegionHeader rh;
    std::vector<BlockDirEntry> dir;
    parseRegion(v3, regionOffsetOf(t), rh, dir);

    v3[dir[2].offset + sizeof(BlockHeader) + 5] ^= 0x40; // seed/payload bit
    try {
        readBuffer(v3);
        FAIL() << "strict read accepted a corrupt block";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("salvage"), std::string::npos)
            << e.what();
    }
}

TEST(Block, SalvageOfIntactFileMatchesStrict)
{
    const TraceData t = sampleTrace();
    const auto v3 = writeBuffer(t, {.compress = true});
    ReadReport rep;
    const TraceData back = readBufferSalvage(v3, rep);
    EXPECT_FALSE(rep.salvaged);
    EXPECT_EQ(rep.records_read, t.records.size());
    EXPECT_EQ(rep.records_skipped, 0u);
    EXPECT_TRUE(rep.notes.empty());
    EXPECT_TRUE(sameRecords(back.records, t.records));
}

TEST(Block, SalvageTurnsCorruptBlockIntoExactGap)
{
    const std::uint32_t kBlk = 128;
    const TraceData t = sampleTrace(3, 2000);
    auto v3 = writeBuffer(t, {.compress = true, .block_records = kBlk});
    BlockRegionHeader rh;
    std::vector<BlockDirEntry> dir;
    parseRegion(v3, regionOffsetOf(t), rh, dir);
    ASSERT_GE(dir.size(), 6u);

    const std::size_t bad = 3;
    v3[dir[bad].offset + sizeof(BlockHeader) + 9] ^= 0x04;

    ReadReport rep;
    const TraceData back = readBufferSalvage(v3, rep);
    EXPECT_TRUE(rep.salvaged);
    EXPECT_EQ(rep.records_skipped, dir[bad].record_count);
    EXPECT_EQ(rep.records_expected, t.records.size());

    // Prefix (blocks before the bad one) survives byte-identically...
    const std::size_t before = bad * kBlk;
    ASSERT_GE(back.records.size(), before);
    EXPECT_EQ(0, std::memcmp(back.records.data(), t.records.data(),
                             before * sizeof(Record)));
    // ...and so does the suffix (blocks after it).
    const std::size_t after_first = (bad + 1) * kBlk;
    const std::size_t after_n = t.records.size() - after_first;
    ASSERT_GE(back.records.size(), after_n);
    EXPECT_EQ(0, std::memcmp(back.records.data() +
                                 (back.records.size() - after_n),
                             t.records.data() + after_first,
                             after_n * sizeof(Record)));

    // Between them: only synthetic sync/drop markers, whose drop
    // counts add up to exactly the lost block.
    std::uint64_t synth = back.records.size() - before - after_n;
    std::uint64_t dropped = 0;
    for (std::size_t i = before; i < before + synth; ++i) {
        const Record& r = back.records[i];
        EXPECT_TRUE(r.kind == kSyncRecord || r.kind == kDropRecord)
            << "unexpected synthetic kind " << int(r.kind);
        if (r.kind == kDropRecord)
            dropped += r.a;
    }
    EXPECT_EQ(dropped, dir[bad].record_count);
}

TEST(Block, SalvageRecoversPrefixOfTruncatedFile)
{
    const std::uint32_t kBlk = 128;
    const TraceData t = sampleTrace(2, 2000);
    auto v3 = writeBuffer(t, {.compress = true, .block_records = kBlk});
    BlockRegionHeader rh;
    std::vector<BlockDirEntry> dir;
    parseRegion(v3, regionOffsetOf(t), rh, dir);
    ASSERT_GE(dir.size(), 8u);

    // Cut mid-way through block 5 (directory gone too).
    v3.resize(dir[5].offset + sizeof(BlockHeader) + 3);

    ReadReport rep;
    const TraceData back = readBufferSalvage(v3, rep);
    EXPECT_TRUE(rep.salvaged);
    const std::size_t keep = 5 * kBlk;
    ASSERT_EQ(back.records.size(), keep);
    EXPECT_EQ(0, std::memcmp(back.records.data(), t.records.data(),
                             keep * sizeof(Record)));
}

TEST(Block, BlockReaderStreamsEveryBlock)
{
    const TraceData t = sampleTrace(3, 3000);
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 256});
    std::string s(v3.begin(), v3.end());
    std::istringstream is(s);

    BlockReader br(is);
    EXPECT_EQ(br.header().version, kFormatVersion);
    EXPECT_EQ(br.header().record_count, t.records.size());
    EXPECT_EQ(br.spePrograms(), t.spe_programs);
    EXPECT_EQ(br.blockCount(), (t.records.size() + 255) / 256);

    std::vector<Record> all;
    DecodedBlock blk;
    std::uint64_t blocks = 0;
    std::size_t peak = 0;
    while (br.next(blk)) {
        ++blocks;
        peak = std::max(peak, blk.records.size());
        EXPECT_EQ(blk.header.first_record, all.size());
        EXPECT_EQ(blk.seeds.size(), t.header.num_spes + 1u);
        all.insert(all.end(), blk.records.begin(), blk.records.end());
    }
    EXPECT_EQ(blocks, br.blockCount());
    EXPECT_LE(peak, 256u); // bounded memory: one block at a time
    EXPECT_TRUE(sameRecords(all, t.records));
}

TEST(Block, BlockReaderRandomAccessMatchesSequential)
{
    const TraceData t = sampleTrace(2, 2000);
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 128});
    std::string s(v3.begin(), v3.end());
    std::istringstream is(s);

    BlockReader br(is);
    const auto& dir = br.directory();
    ASSERT_EQ(dir.size(), br.blockCount());
    DecodedBlock blk;
    for (std::uint64_t k = br.blockCount(); k-- > 0;) { // reverse order
        br.readBlock(k, blk);
        ASSERT_EQ(blk.records.size(), dir[k].record_count);
        EXPECT_EQ(blk.header.first_record, k * 128);
        EXPECT_EQ(0, std::memcmp(blk.records.data(),
                                 t.records.data() + k * 128,
                                 blk.records.size() * sizeof(Record)));
    }
}

TEST(Block, DirectoryFallsBackToBlockWalk)
{
    const TraceData t = sampleTrace(2, 2000);
    auto v3 = writeBuffer(t, {.compress = true, .block_records = 128});
    BlockRegionHeader rh;
    std::vector<BlockDirEntry> pristine;
    parseRegion(v3, regionOffsetOf(t), rh, pristine);

    // Corrupt one directory entry: checksum fails, walk rebuilds.
    v3[rh.directory_offset + 20] ^= 0xFF;
    std::string s(v3.begin(), v3.end());
    std::istringstream is(s);
    BlockReader br(is);
    EXPECT_EQ(br.directory(), pristine);

    // The shard planner rides the same fallback: the plan still decodes
    // to the full record sequence.
    std::istringstream is2(s);
    ShardPlan plan =
        planShards(is2, {.target_shards = 4, .min_records_per_shard = 1});
    EXPECT_TRUE(plan.v3);
    std::vector<Record> all;
    for (std::size_t i = 0; i < plan.shards.size(); ++i) {
        const auto part = readShard(is2, plan, i);
        all.insert(all.end(), part.begin(), part.end());
    }
    EXPECT_TRUE(sameRecords(all, t.records));
}

TEST(Block, ShardPlanPartitionsOnBlockBoundaries)
{
    const TraceData t = sampleTrace(3, 5000);
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 256});
    std::string s(v3.begin(), v3.end());

    for (unsigned target : {1u, 3u, 8u}) {
        std::istringstream is(s);
        ShardPlan plan = planShards(
            is, {.target_shards = target, .min_records_per_shard = 1});
        EXPECT_TRUE(plan.v3);
        EXPECT_EQ(plan.block_capacity, 256u);
        EXPECT_EQ(plan.header.version, kFormatVersion);
        std::uint64_t next = 0;
        std::vector<Record> all;
        for (std::size_t i = 0; i < plan.shards.size(); ++i) {
            const Shard& sh = plan.shards[i];
            EXPECT_EQ(sh.first_record, next);
            EXPECT_EQ(sh.first_record % 256, 0u); // block-aligned
            next += sh.num_records;
            const auto part = readShard(is, plan, i);
            all.insert(all.end(), part.begin(), part.end());
        }
        EXPECT_EQ(next, t.records.size());
        EXPECT_TRUE(sameRecords(all, t.records));
    }
}

TEST(Block, ProbeSniffsBothContainers)
{
    const TraceData t = sampleTrace(2, 500);
    const auto v1 = writeBuffer(t);
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 64});

    std::string s1(v1.begin(), v1.end());
    std::istringstream is1(s1);
    EXPECT_FALSE(probeBlockRegion(is1).present);
    EXPECT_EQ(is1.tellg(), std::streampos(0)); // position restored

    std::string s3(v3.begin(), v3.end());
    std::istringstream is3(s3);
    const BlockRegionProbe p = probeBlockRegion(is3);
    ASSERT_TRUE(p.present);
    EXPECT_EQ(p.region.record_count, t.records.size());
    EXPECT_EQ(p.region.block_capacity, 64u);
    EXPECT_GT(p.region_bytes, 0u);
    EXPECT_LE(regionOffsetOf(t) + p.region_bytes, v3.size());
    EXPECT_EQ(is3.tellg(), std::streampos(0));
}

TEST(Block, FooterIndexComposesWithCompression)
{
    const TraceData t = sampleTrace(3, 4000);
    const auto v3 =
        writeBuffer(t, {.index_stride = 64, .compress = true});

    // Strict read ignores the trailing index, exactly like v1.
    EXPECT_TRUE(sameRecords(readBuffer(v3).records, t.records));

    const IndexReadResult ir = readIndexBuffer(v3);
    ASSERT_TRUE(ir.present);
    ASSERT_TRUE(ir.valid) << ir.reason;
    EXPECT_EQ(ir.index.header.record_count, t.records.size());

    // Entries address records through VIRTUAL v1 offsets.
    const std::uint64_t region_off = regionOffsetOf(t);
    for (const IndexEntry& e : ir.index.entries) {
        EXPECT_GE(e.byte_offset, region_off);
        EXPECT_EQ((e.byte_offset - region_off) % sizeof(Record), 0u);
        EXPECT_LT((e.byte_offset - region_off) / sizeof(Record),
                  t.records.size());
    }
}

/** Write @p bytes to a fresh temp file and return its path. */
std::string
writeTemp(const std::vector<std::uint8_t>& bytes, const std::string& stem)
{
    const std::string path = ::testing::TempDir() + "/" + stem;
    std::ofstream os(path, std::ios::binary);
    os.write(reinterpret_cast<const char*>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
    EXPECT_TRUE(os.good());
    return path;
}

TEST(Block, MmapBackedFileReadMatchesBuffer)
{
    const TraceData t = sampleTrace(2, 2000);
    for (const bool compress : {false, true}) {
        const auto bytes = writeBuffer(t, {.compress = compress});
        const std::string path = writeTemp(bytes, "mmap_read.pdt");

        MappedFile map(path);
        ASSERT_TRUE(map.valid());
        ASSERT_EQ(map.size(), bytes.size());
        EXPECT_EQ(0, std::memcmp(map.data(), bytes.data(), bytes.size()));

        const TraceData got = readFile(path);
        EXPECT_TRUE(sameRecords(got.records, t.records));

        if (compress) {
            BlockReader br(path);
            EXPECT_TRUE(br.mapped());
            std::vector<Record> all;
            DecodedBlock blk;
            while (br.next(blk))
                all.insert(all.end(), blk.records.begin(),
                           blk.records.end());
            EXPECT_TRUE(sameRecords(all, t.records));
        }
        std::remove(path.c_str());
    }
}

TEST(Block, NonSeekableFifoFallsBackToBufferedRead)
{
    const TraceData t = sampleTrace(2, 1500);
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 128});
    const std::string path = ::testing::TempDir() + "/mmap_fifo.pdt";
    std::remove(path.c_str());
    ASSERT_EQ(0, mkfifo(path.c_str(), 0600));

    // A FIFO is not S_ISREG: the mapping must refuse it, and readFile
    // must degrade to the buffered stream path with identical output.
    std::thread writer([&] {
        std::ofstream os(path, std::ios::binary); // blocks for a reader
        os.write(reinterpret_cast<const char*>(v3.data()),
                 static_cast<std::streamsize>(v3.size()));
    });
    const TraceData got = readFile(path);
    writer.join();
    EXPECT_TRUE(sameRecords(got.records, t.records));

    MappedFile map(path);
    EXPECT_FALSE(map.valid());
    std::remove(path.c_str());
}

TEST(Block, ProcPseudoFileFallsBackToBufferedRead)
{
    // /proc files stat as empty regular files, so mmap refuses them;
    // the buffered fallback must still READ the real content — proven
    // by the reader rejecting the bytes as a non-trace, not failing
    // to open or seeing an empty file.
    const std::string path = "/proc/self/status";
    if (!std::ifstream(path).good())
        GTEST_SKIP() << "no procfs on this system";

    MappedFile map(path);
    EXPECT_FALSE(map.valid());

    try {
        (void)readFile(path);
        FAIL() << "a procfs file is not a PDT trace";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find("bad magic"),
                  std::string::npos)
            << e.what();
    }
}

/** Splice two single-payload twins of the same trace into one file
 *  whose blocks alternate interleaved / columnar layouts, with a
 *  rebuilt directory + trailer. */
std::vector<std::uint8_t>
spliceMixedPayloads(const TraceData& t, const std::vector<std::uint8_t>& a,
                    const std::vector<std::uint8_t>& b)
{
    const std::uint64_t region_off = regionOffsetOf(t);
    BlockRegionHeader rha, rhb;
    std::vector<BlockDirEntry> dira, dirb;
    parseRegion(a, region_off, rha, dira);
    parseRegion(b, region_off, rhb, dirb);
    EXPECT_EQ(dira.size(), dirb.size());

    std::vector<std::uint8_t> out(a.begin(),
                                  a.begin() + region_off + sizeof(rha));
    std::vector<BlockDirEntry> dir;
    for (std::size_t k = 0; k < dira.size(); ++k) {
        const auto& src = (k % 2) ? b : a;
        const auto& de = (k % 2) ? dirb[k] : dira[k];
        BlockDirEntry ne = de;
        ne.offset = out.size();
        out.insert(out.end(), src.begin() + de.offset,
                   src.begin() + de.offset + de.block_bytes);
        dir.push_back(ne);
    }
    BlockRegionHeader rh = rha;
    rh.directory_offset = out.size();
    const auto* dp = reinterpret_cast<const std::uint8_t*>(dir.data());
    out.insert(out.end(), dp, dp + dir.size() * sizeof(BlockDirEntry));
    BlockDirTrailer tr;
    tr.dir_bytes = dir.size() * sizeof(BlockDirEntry);
    tr.checksum = fnv1a64Bytes(dir.data(),
                               static_cast<std::size_t>(tr.dir_bytes));
    const auto* tp = reinterpret_cast<const std::uint8_t*>(&tr);
    out.insert(out.end(), tp, tp + sizeof(tr));
    std::memcpy(out.data() + region_off, &rh, sizeof(rh));
    return out;
}

TEST(Block, MixedPayloadBlocksDecodeIdentically)
{
    const TraceData t = sampleTrace(3, 3000);
    const WriteOptions legacy{.compress = true, .block_records = 256,
                              .legacy_payload = true};
    const WriteOptions columnar{.compress = true, .block_records = 256};
    const auto mixed = spliceMixedPayloads(t, writeBuffer(t, legacy),
                                           writeBuffer(t, columnar));

    // The payload bit really alternates block by block...
    std::string s(mixed.begin(), mixed.end());
    std::istringstream is(s);
    BlockReader br(is);
    DecodedBlock blk;
    std::vector<Record> all;
    std::uint64_t k = 0;
    while (br.next(blk)) {
        EXPECT_EQ(blk.header.payload,
                  (k % 2) ? kPayloadColumnar : kPayloadInterleaved)
            << "block " << k;
        all.insert(all.end(), blk.records.begin(), blk.records.end());
        ++k;
    }
    EXPECT_GE(k, 4u);
    // ...and every read path decodes the mix byte-identically.
    EXPECT_TRUE(sameRecords(all, t.records));
    EXPECT_TRUE(sameRecords(readBuffer(mixed).records, t.records));
    ReadReport rep;
    EXPECT_TRUE(
        sameRecords(readBufferSalvage(mixed, rep).records, t.records));
    EXPECT_EQ(rep.records_skipped, 0u);

    std::istringstream is2(s);
    ShardPlan plan =
        planShards(is2, {.target_shards = 4, .min_records_per_shard = 1});
    std::vector<Record> sharded;
    for (std::size_t i = 0; i < plan.shards.size(); ++i) {
        const auto part = readShard(is2, plan, i);
        sharded.insert(sharded.end(), part.begin(), part.end());
    }
    EXPECT_TRUE(sameRecords(sharded, t.records));
}

TEST(Block, LegacyPayloadOptionRoundTrips)
{
    const TraceData t = sampleTrace(2, 2000);
    const auto v3l = writeBuffer(
        t, {.compress = true, .block_records = 256, .legacy_payload = true});
    const auto v3c = writeBuffer(t, {.compress = true, .block_records = 256});
    EXPECT_TRUE(sameRecords(readBuffer(v3l).records, t.records));
    EXPECT_TRUE(sameRecords(readBuffer(v3c).records, t.records));

    // On-disk contract: the payload bit selects both the layout and
    // the checksum algorithm (byte-serial FNV for interleaved blocks —
    // what every pre-columnar file carries — word-lane FNV for
    // columnar ones).
    const std::uint64_t region_off = regionOffsetOf(t);
    for (const bool legacy : {true, false}) {
        const auto& buf = legacy ? v3l : v3c;
        BlockRegionHeader rh;
        std::vector<BlockDirEntry> dir;
        parseRegion(buf, region_off, rh, dir);
        ASSERT_GE(dir.size(), 2u);
        for (const BlockDirEntry& de : dir) {
            BlockHeader bh;
            std::memcpy(&bh, buf.data() + de.offset, sizeof(bh));
            EXPECT_EQ(bh.payload,
                      legacy ? kPayloadInterleaved : kPayloadColumnar);
            const std::uint8_t* body = buf.data() + de.offset + sizeof(bh);
            const std::size_t body_len = de.block_bytes - sizeof(bh);
            EXPECT_EQ(bh.checksum, legacy
                                       ? fnv1a64Bytes(body, body_len)
                                       : fnv1a64Words(body, body_len));
        }
    }
}

TEST(Block, PipelinedReaderMatchesSerialOnEverySource)
{
    const TraceData t = sampleTrace(3, 4000);
    const auto v3 = writeBuffer(t, {.compress = true, .block_records = 256});
    const std::string path = writeTemp(v3, "pipelined.v3.pdt");
    util::WorkerPool pool(2);

    for (const bool mapped : {true, false}) {
        std::string s(v3.begin(), v3.end());
        std::istringstream is(s);
        auto br = mapped ? std::make_unique<BlockReader>(path)
                         : std::make_unique<BlockReader>(is);
        EXPECT_EQ(br->mapped(), mapped);
        for (const unsigned window : {1u, 3u}) {
            if (window != 1u) { // a reader streams once; rebuild
                is.clear();
                is.seekg(0);
                br = mapped ? std::make_unique<BlockReader>(path)
                            : std::make_unique<BlockReader>(is);
            }
            br->pipeline(pool, window);
            std::vector<Record> all;
            DecodedBlock blk;
            while (br->next(blk)) {
                EXPECT_EQ(blk.header.first_record, all.size());
                all.insert(all.end(), blk.records.begin(),
                           blk.records.end());
            }
            EXPECT_TRUE(sameRecords(all, t.records))
                << (mapped ? "mapped" : "stream") << " window " << window;
        }
    }
    std::remove(path.c_str());
}

TEST(Block, PipelinedReaderThrowsAtTheCorruptBlock)
{
    const TraceData t = sampleTrace(2, 2000);
    auto v3 = writeBuffer(t, {.compress = true, .block_records = 128});
    BlockRegionHeader rh;
    std::vector<BlockDirEntry> dir;
    parseRegion(v3, regionOffsetOf(t), rh, dir);
    ASSERT_GE(dir.size(), 6u);
    // Damage block 3's payload: decode-ahead may already be chewing on
    // it while blocks 0-2 are handed out, but the throw must surface
    // exactly from the next() call that would have returned block 3.
    v3[dir[3].offset + sizeof(BlockHeader) + 9] ^= 0x40;

    util::WorkerPool pool(2);
    const std::string path = writeTemp(v3, "pipelined_corrupt.v3.pdt");
    BlockReader br(path);
    br.pipeline(pool, 4);
    DecodedBlock blk;
    for (int k = 0; k < 3; ++k)
        ASSERT_TRUE(br.next(blk)) << "block " << k;
    EXPECT_THROW(br.next(blk), std::runtime_error);
    std::remove(path.c_str());
}

} // namespace
} // namespace cell::trace
