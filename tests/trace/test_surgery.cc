/**
 * @file
 * Trace surgery unit suite: slice / splice / filter semantics and the
 * scenario generator, checked in memory against the analyzer's own
 * reference paths. The heavyweight cross-container / cross-thread
 * differential matrix lives in tests/ta/test_surgery_diff.cc.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ta/analyzer.h"
#include "ta/intervals.h"
#include "ta/query.h"
#include "trace/format.h"
#include "trace/gen.h"
#include "trace/reader.h"
#include "trace/surgery.h"
#include "trace/writer.h"

namespace cell {
namespace {

using trace::Record;
using trace::TraceData;

/** Windowed report of an in-memory trace (the byte-compare artifact). */
std::string
winRep(const TraceData& d, std::uint64_t from, std::uint64_t to,
       bool lenient = false)
{
    const ta::Analysis a = ta::analyze(d, lenient);
    return ta::windowReport(ta::queryWindow(a, from, to));
}

Record
syncRec(std::uint16_t core, std::uint32_t raw, std::uint64_t tb)
{
    Record r{};
    r.kind = trace::kSyncRecord;
    r.core = core;
    r.timestamp = raw;
    r.a = raw;
    r.b = tb;
    return r;
}

Record
opRec(std::uint16_t core, std::uint8_t kind, std::uint8_t phase,
      std::uint32_t ts, std::uint64_t a = 0)
{
    Record r{};
    r.kind = kind;
    r.phase = phase;
    r.core = core;
    r.timestamp = ts;
    r.a = a;
    return r;
}

/** A hand-built 1-SPE trace with drops, an overwritten Begin, a
 *  backward re-sync (clamp work), and a cross-window pending. */
TraceData
handTrace()
{
    TraceData d;
    d.header.num_spes = 1;
    d.header.core_hz = 3'200'000'000ull;
    d.header.timebase_divider = 8;
    d.spe_programs = {"hand"};

    // PPE: up-counter, sync at raw 1000 == tb 1000.
    d.records.push_back(syncRec(0, 1000, 1000));
    d.records.push_back(opRec(0, 22, trace::kPhaseBegin, 1100)); // PpeContextCreate
    d.records.push_back(opRec(0, 22, trace::kPhaseEnd, 1400));
    // Drop on PPE: epoch 1 from here.
    {
        Record r{};
        r.kind = trace::kDropRecord;
        r.core = 0;
        r.timestamp = 1500;
        r.a = 7;
        r.b = 7;
        d.records.push_back(r);
    }
    d.records.push_back(opRec(0, 25, trace::kPhaseBegin, 1600)); // PpeMboxWrite
    d.records.push_back(opRec(0, 25, trace::kPhaseEnd, 2600));

    // SPE 0: down-counter, sync raw 5000 == tb 1000.
    d.records.push_back(syncRec(1, 5000, 1000));
    d.records.push_back(opRec(1, 17, trace::kPhaseBegin, 5000 - 50)); // SpuStart
    d.records.push_back(opRec(1, 0, trace::kPhaseBegin, 5000 - 200)); // MfcGet
    d.records.push_back(opRec(1, 0, trace::kPhaseBegin, 5000 - 300)); // overwrite
    d.records.push_back(opRec(1, 0, trace::kPhaseEnd, 5000 - 700));
    // Backward re-sync: next events place behind the clamp carry.
    d.records.push_back(syncRec(1, 9000, 1500));
    d.records.push_back(opRec(1, 9, trace::kPhaseBegin, 9000 - 100)); // TagWaitAny
    d.records.push_back(opRec(1, 9, trace::kPhaseEnd, 9000 - 1200));
    d.records.push_back(opRec(1, 18, trace::kPhaseBegin, 9000 - 1300)); // SpuStop
    d.header.record_count = d.records.size();
    return d;
}

// ---------------------------------------------------------------------------
// slice
// ---------------------------------------------------------------------------

TEST(Slice, WindowedReportMatchesOriginalOnHandTrace)
{
    const TraceData d = handTrace();
    const auto sem = ta::surgeryOpSemantics();
    const ta::Analysis a = ta::analyze(d);
    const std::uint64_t s = a.model.startTb();
    const std::uint64_t e = a.model.endTb() + 1;
    // Sweep every window over a grid fine enough to hit each edge:
    // mid-interval cuts, epoch boundaries, the backward-sync clamp.
    for (std::uint64_t from = s; from <= e; from += 100) {
        for (std::uint64_t to = from; to <= e; to += 150) {
            const TraceData sl = trace::slice(d, from, to, sem);
            EXPECT_EQ(winRep(sl, from, to), winRep(d, from, to))
                << "window [" << from << ", " << to << ")";
        }
    }
}

TEST(Slice, CrossWindowPendingIsReopenedByPreamble)
{
    // A Begin before the window whose End lands inside it: without
    // the preamble Begin the slice would emit a spurious truncated
    // interval starting inside the window.
    const TraceData d = handTrace();
    const auto sem = ta::surgeryOpSemantics();
    // PPE PpeMboxWrite spans [1600, 2600); cut the window at 2000.
    const TraceData sl = trace::slice(d, 2000, 3000, sem);
    EXPECT_EQ(winRep(sl, 2000, 3000), winRep(d, 2000, 3000));
}

TEST(Slice, EmptyWindowIsValidAndEmpty)
{
    const TraceData d = handTrace();
    const TraceData sl =
        trace::slice(d, 1234, 1234, ta::surgeryOpSemantics());
    EXPECT_EQ(winRep(sl, 1234, 1234), winRep(d, 1234, 1234));
}

TEST(Slice, WholeRangeSliceKeepsFullAnalysis)
{
    const TraceData d = handTrace();
    const TraceData sl =
        trace::slice(d, 0, ~std::uint64_t{0}, ta::surgeryOpSemantics());
    const std::string full = ta::fullReport(ta::analyze(d));
    EXPECT_EQ(ta::fullReport(ta::analyze(sl)), full);
}

TEST(Slice, InvertedWindowThrows)
{
    EXPECT_THROW(
        trace::slice(handTrace(), 10, 5, ta::surgeryOpSemantics()),
        std::invalid_argument);
}

TEST(Slice, StrictThrowsOnPreSyncRecord)
{
    TraceData d = handTrace();
    Record stray = opRec(0, 3, trace::kPhaseBegin, 900);
    d.records.insert(d.records.begin(), stray);
    EXPECT_THROW(trace::slice(d, 0, ~std::uint64_t{0},
                              ta::surgeryOpSemantics()),
                 std::runtime_error);
}

TEST(Slice, LenientKeepsSkipAccounting)
{
    TraceData d = handTrace();
    // Two pre-sync strays and one bad-core record: lenient analysis
    // skips all three.
    d.records.insert(d.records.begin(),
                     opRec(0, 3, trace::kPhaseBegin, 900));
    d.records.insert(d.records.begin(),
                     opRec(1, 4, trace::kPhaseEnd, 4000));
    Record bad = opRec(0, 5, trace::kPhaseBegin, 2000);
    bad.core = 9;
    d.records.push_back(bad);

    trace::SliceOptions sopt;
    sopt.lenient = true;
    const TraceData sl =
        trace::slice(d, 1200, 2200, ta::surgeryOpSemantics(), sopt);
    EXPECT_EQ(ta::analyze(sl, true).model.leniencySkipped(), 3u);
    EXPECT_EQ(winRep(sl, 1200, 2200, true), winRep(d, 1200, 2200, true));
}

TEST(Slice, FileRoundTripAcrossContainers)
{
    const TraceData d = handTrace();
    const TraceData sl =
        trace::slice(d, 1200, 2200, ta::surgeryOpSemantics());
    for (int container = 1; container <= 3; ++container) {
        trace::WriteOptions w;
        if (container >= 2)
            w.index_stride = 4;
        if (container == 3)
            w.compress = true;
        const auto bytes = trace::writeBuffer(sl, w);
        const TraceData back = trace::readBuffer(bytes);
        EXPECT_EQ(winRep(back, 1200, 2200), winRep(d, 1200, 2200))
            << "container v" << container;
    }
}

// ---------------------------------------------------------------------------
// splice
// ---------------------------------------------------------------------------

TEST(Splice, CutRoundTripsHandTrace)
{
    const TraceData d = handTrace();
    const auto sem = ta::surgeryOpSemantics();
    const ta::Analysis a = ta::analyze(d);
    const std::uint64_t m = (a.model.startTb() + a.model.endTb()) / 2;

    const TraceData lo = trace::slice(d, 0, m, sem);
    const TraceData hi = trace::slice(d, m, ~std::uint64_t{0}, sem);
    trace::SpliceOptions sopt;
    sopt.cuts = {m};
    const TraceData back = trace::splice({lo, hi}, sopt);

    // A cut splice of a from-zero slice pair reassembles the original
    // record-for-record per core: the full reports agree, not just a
    // window.
    EXPECT_EQ(ta::fullReport(ta::analyze(back)),
              ta::fullReport(ta::analyze(d)));
}

TEST(Splice, RejectsBadShapes)
{
    const TraceData d = handTrace();
    EXPECT_THROW(trace::splice({}), std::invalid_argument);

    trace::SpliceOptions one_cut_too_many;
    one_cut_too_many.cuts = {5, 10};
    EXPECT_THROW(trace::splice({d, d}, one_cut_too_many),
                 std::invalid_argument);

    TraceData other = d;
    other.header.num_spes = 3;
    EXPECT_THROW(trace::splice({d, other}), std::invalid_argument);

    TraceData slow = d;
    slow.header.core_hz = 1'000'000ull;
    EXPECT_THROW(trace::splice({d, slow}), std::invalid_argument);

    trace::SpliceOptions both;
    both.align = true;
    both.offsets = {0, 0};
    EXPECT_THROW(trace::splice({d, d}, both), std::invalid_argument);
}

TEST(Splice, BladesRemapsCoresAndPreservesPerCoreAnalysis)
{
    trace::gen::GenOptions g1;
    g1.seed = 42;
    g1.scenario = static_cast<int>(trace::gen::Scenario::Basic);
    g1.num_spes = 2;
    trace::gen::GenOptions g2 = g1;
    g2.seed = 43;
    g2.num_spes = 1;
    const TraceData a = trace::gen::generate(g1);
    const TraceData b = trace::gen::generate(g2);

    trace::SpliceOptions sopt;
    sopt.blades = true;
    const TraceData merged = trace::splice({a, b}, sopt);
    // blade 0: cores 0..2 kept; blade 1: PPE -> core 3, SPE0 -> core 4.
    EXPECT_EQ(merged.header.num_spes, 4u);

    const ta::Analysis ma = ta::analyze(merged);
    const ta::Analysis aa = ta::analyze(a);
    const ta::Analysis ab = ta::analyze(b);
    ASSERT_EQ(ma.model.cores().size(), 5u);
    for (std::uint16_t c = 0; c < 3; ++c) {
        EXPECT_EQ(ma.model.cores()[c].events.size(),
                  aa.model.cores()[c].events.size())
            << "blade 0 core " << c;
    }
    for (std::uint16_t c = 0; c < 2; ++c) {
        const auto& src = ab.model.cores()[c].events;
        const auto& dst = ma.model.cores()[3 + c].events;
        ASSERT_EQ(dst.size(), src.size()) << "blade 1 core " << c;
        for (std::size_t i = 0; i < src.size(); ++i) {
            EXPECT_EQ(dst[i].time_tb, src[i].time_tb);
            EXPECT_EQ(dst[i].kind, src[i].kind);
            EXPECT_EQ(dst[i].epoch, src[i].epoch);
        }
    }
    // Interval structure survives the remap (incl. the reflected PPE
    // clock on blade 1's core 3).
    for (std::uint16_t c = 0; c < 2; ++c) {
        const auto& src = ab.intervals.per_core[c];
        const auto& dst = ma.intervals.per_core[3 + c];
        ASSERT_EQ(dst.size(), src.size());
        for (std::size_t i = 0; i < src.size(); ++i) {
            EXPECT_EQ(dst[i].start_tb, src[i].start_tb);
            EXPECT_EQ(dst[i].end_tb, src[i].end_tb);
            EXPECT_EQ(dst[i].op, src[i].op);
        }
    }
}

TEST(Splice, AlignShiftsEveryInputToACommonStart)
{
    trace::gen::GenOptions g;
    g.seed = 7;
    g.scenario = static_cast<int>(trace::gen::Scenario::Basic);
    g.num_spes = 1;
    const TraceData a = trace::gen::generate(g);
    g.seed = 8;
    const TraceData b = trace::gen::generate(g);

    trace::SpliceOptions sopt;
    sopt.blades = true;
    sopt.align = true;
    const TraceData merged = trace::splice({a, b}, sopt);
    const ta::Analysis ma = ta::analyze(merged);
    const std::uint64_t ref =
        std::max(ta::analyze(a).model.startTb(),
                 ta::analyze(b).model.startTb());
    EXPECT_EQ(ma.model.startTb(), ref);
}

// ---------------------------------------------------------------------------
// filter
// ---------------------------------------------------------------------------

/** Reference restriction: keep events of the chosen cores/kinds on the
 *  original model, rebuild intervals, keep the leniency count. */
std::string
restrictedReport(const TraceData& d, const std::vector<std::uint16_t>& cores,
                 std::uint64_t kind_mask, bool lenient = false)
{
    const ta::Analysis a = ta::analyze(d, lenient);
    std::vector<char> keep(a.model.cores().size(),
                           cores.empty() ? 1 : 0);
    for (const std::uint16_t c : cores)
        keep[c] = 1;
    std::vector<ta::CoreTimeline> tls = a.model.cores();
    for (auto& tl : tls) {
        if (!keep[tl.core]) {
            tl.events.clear();
            continue;
        }
        std::vector<ta::Event> kept;
        for (const ta::Event& ev : tl.events) {
            if (ev.kind >= 64 || ((kind_mask >> ev.kind) & 1))
                kept.push_back(ev);
        }
        tl.events = std::move(kept);
    }
    std::vector<std::vector<ta::Interval>> ivs(tls.size());
    for (const auto& tl : tls)
        ivs[tl.core] = ta::buildCoreIntervals(tl);

    ta::WindowResult r;
    r.from = 0;
    r.to = ~std::uint64_t{0};
    r.header = a.model.header();
    r.cores = std::move(tls);
    r.intervals = std::move(ivs);
    r.leniency_skipped = a.model.leniencySkipped();
    return ta::windowReport(r);
}

std::string
filteredReport(const TraceData& d, const trace::FilterOptions& fopt)
{
    const TraceData f = trace::filter(d, fopt);
    const ta::Analysis a = ta::analyze(f, fopt.lenient);
    return ta::windowReport(ta::queryWindow(a, 0, ~std::uint64_t{0}));
}

TEST(Filter, CoreRestrictionMatchesReference)
{
    const TraceData d = handTrace();
    for (const std::vector<std::uint16_t>& cores :
         {std::vector<std::uint16_t>{0}, std::vector<std::uint16_t>{1},
          std::vector<std::uint16_t>{0, 1}}) {
        trace::FilterOptions fopt;
        fopt.cores = cores;
        EXPECT_EQ(filteredReport(d, fopt),
                  restrictedReport(d, cores, ~std::uint64_t{0}))
            << "cores " << cores.size();
    }
}

TEST(Filter, KindRestrictionMatchesReference)
{
    const TraceData d = handTrace();
    const std::uint64_t unknown_bits = ~std::uint64_t{0} << 33;
    const std::vector<std::uint64_t> masks = {
        (1ull << 0) | (1ull << 9) | unknown_bits,     // dma only
        ((1ull << 17) | (1ull << 18)) | unknown_bits, // lifecycle
        (1ull << 22) | (1ull << 25) | unknown_bits,   // ppe calls
        unknown_bits,                                 // nothing known
    };
    for (const std::uint64_t mask : masks) {
        trace::FilterOptions fopt;
        fopt.kind_mask = mask;
        EXPECT_EQ(filteredReport(d, fopt), restrictedReport(d, {}, mask))
            << "mask " << mask;
    }
}

TEST(Filter, DroppedClampCarrierDoesNotMoveSurvivors)
{
    // The second Begin (kind 0) carries the clamp maximum on SPE0 in
    // handTrace (the backward re-sync places later records behind it);
    // filtering kind 0 out must not let the survivors spring back.
    const TraceData d = handTrace();
    trace::FilterOptions fopt;
    fopt.kind_mask = ~(1ull << 0);
    EXPECT_EQ(filteredReport(d, fopt),
              restrictedReport(d, {}, ~(1ull << 0)));
}

TEST(Filter, ToolRecordsAlwaysSurvive)
{
    const TraceData d = handTrace();
    trace::FilterOptions fopt;
    fopt.kind_mask = 0; // drop every maskable kind
    const TraceData f = trace::filter(d, fopt);
    std::size_t syncs = 0;
    std::size_t drops = 0;
    for (const Record& r : f.records) {
        syncs += r.kind == trace::kSyncRecord;
        drops += r.kind == trace::kDropRecord;
    }
    EXPECT_EQ(syncs, 3u);
    EXPECT_EQ(drops, 1u);
    EXPECT_EQ(filteredReport(d, fopt), restrictedReport(d, {}, 0));
}

TEST(Filter, OutOfRangeCoreThrows)
{
    trace::FilterOptions fopt;
    fopt.cores = {7};
    EXPECT_THROW(trace::filter(handTrace(), fopt), std::invalid_argument);
}

TEST(Filter, LenientKeepsSkipAccounting)
{
    TraceData d = handTrace();
    d.records.insert(d.records.begin(),
                     opRec(1, 4, trace::kPhaseEnd, 4000));
    trace::FilterOptions fopt;
    fopt.cores = {0}; // the stray pre-sync record is on a dropped core
    fopt.lenient = true;
    const TraceData f = trace::filter(d, fopt);
    EXPECT_EQ(ta::analyze(f, true).model.leniencySkipped(), 1u);
    EXPECT_EQ(filteredReport(d, fopt),
              restrictedReport(d, {0}, ~0ull, true));
}

// ---------------------------------------------------------------------------
// generator
// ---------------------------------------------------------------------------

TEST(Gen, DeterministicBytes)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        trace::gen::BytesOptions b;
        b.gen.seed = seed;
        b.adversarial = (seed % 2) == 0;
        std::string d1;
        std::string d2;
        EXPECT_EQ(trace::gen::generateBytes(b, &d1),
                  trace::gen::generateBytes(b, &d2));
        EXPECT_EQ(d1, d2);
    }
}

TEST(Gen, SeedsDiffer)
{
    trace::gen::BytesOptions b1;
    b1.gen.seed = 100;
    trace::gen::BytesOptions b2;
    b2.gen.seed = 101;
    EXPECT_NE(trace::gen::generateBytes(b1), trace::gen::generateBytes(b2));
}

TEST(Gen, EveryScenarioYieldsAStrictValidTrace)
{
    for (std::size_t s = 0; s < trace::gen::kNumScenarios; ++s) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            trace::gen::GenOptions g;
            g.seed = seed * 17 + s;
            g.scenario = static_cast<int>(s);
            const TraceData d = trace::gen::generate(g);
            ASSERT_FALSE(d.records.empty());
            // Strict analysis must accept every valid-scenario trace.
            const ta::Analysis a = ta::analyze(d);
            EXPECT_EQ(a.model.leniencySkipped(), 0u)
                << trace::gen::scenarioName(
                       static_cast<trace::gen::Scenario>(s));
            // And it must survive a container round trip.
            const auto bytes = trace::writeBuffer(d);
            EXPECT_EQ(ta::fullReport(ta::analyze(trace::readBuffer(bytes))),
                      ta::fullReport(a));
        }
    }
}

TEST(Gen, ScenarioNamesRoundTrip)
{
    for (std::size_t s = 0; s < trace::gen::kNumScenarios; ++s) {
        const auto sc = static_cast<trace::gen::Scenario>(s);
        trace::gen::Scenario back{};
        ASSERT_TRUE(trace::gen::scenarioFromName(
            trace::gen::scenarioName(sc), back));
        EXPECT_EQ(back, sc);
    }
    trace::gen::Scenario out{};
    EXPECT_FALSE(trace::gen::scenarioFromName("bogus", out));
}

TEST(Gen, AdversarialBytesNeverCrashTheReaders)
{
    for (std::uint64_t seed = 1; seed <= 60; ++seed) {
        trace::gen::BytesOptions b;
        b.gen.seed = seed;
        b.adversarial = true;
        std::string desc;
        const auto bytes = trace::gen::generateBytes(b, &desc);
        SCOPED_TRACE("seed " + std::to_string(seed) + " (" + desc + ")");
        try {
            const TraceData strict = trace::readBuffer(bytes);
            ta::TraceModel::build(strict, true);
        } catch (const std::runtime_error&) {
            // Documented failure mode for structural damage.
        }
        try {
            trace::ReadReport rep;
            const TraceData salv = trace::readBufferSalvage(bytes, rep);
            ta::TraceModel::build(salv, true);
        } catch (const std::runtime_error&) {
            // Salvage still refuses files it cannot identify at all
            // (smashed magic) — also documented.
        }
    }
}

TEST(Gen, SlicesOfGeneratedTracesHoldTheInvariant)
{
    // The bridge between the generator and the surgery invariant the
    // property suite hammers at scale: a handful of seeds here keeps
    // the fast unit suite sensitive to both layers.
    const auto sem = ta::surgeryOpSemantics();
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        trace::gen::GenOptions g;
        g.seed = seed;
        const TraceData d = trace::gen::generate(g);
        const ta::Analysis a = ta::analyze(d);
        const std::uint64_t s = a.model.startTb();
        const std::uint64_t span = a.model.spanTb();
        const std::uint64_t from = s + span / 4;
        const std::uint64_t to = s + (3 * span) / 4;
        const TraceData sl = trace::slice(d, from, to, sem);
        SCOPED_TRACE("seed " + std::to_string(seed));
        EXPECT_EQ(winRep(sl, from, to), winRep(d, from, to));
    }
}

} // namespace
} // namespace cell
