/**
 * @file
 * Surgery differential suite: the acceptance test of the trace-surgery
 * exactness contract, over real workload traces.
 *
 * For every workload in the suite — plus the fault-injected drop trace
 * and a salvaged trace — and for edge-hitting windows:
 *
 *  - slice: the windowed query answered from the sliced file must
 *    BYTE-match the same windowed query on the original, across the
 *    v1/v2/v3 containers and at 1 and 4 query threads. The slice's
 *    synthetic preamble (seed sync, drop accounting, re-opened
 *    Begins) is exactly what makes this hold.
 *  - splice: slicing a trace at a cut and splicing the halves back
 *    (--cut semantics) must reproduce the original's full report.
 *  - filter: restricting by core must match the core-restricted query
 *    on the original; restricting by event-kind group must match
 *    restricting the analyzed event streams; the identity filter is
 *    lossless.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <initializer_list>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "ta/analyzer.h"
#include "ta/intervals.h"
#include "ta/query.h"
#include "ta/report.h"
#include "trace/reader.h"
#include "trace/surgery.h"
#include "trace/writer.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace cell {
namespace {

using Factory =
    std::function<std::unique_ptr<wl::WorkloadBase>(rt::CellSystem&)>;

trace::TraceData
record(const Factory& make, sim::MachineConfig mcfg = {},
       pdt::PdtConfig pcfg = {})
{
    rt::CellSystem sys(mcfg);
    pdt::Pdt tracer(sys, pcfg);
    auto workload = make(sys);
    workload->start();
    sys.run();
    EXPECT_TRUE(workload->verify());
    return tracer.finalize();
}

struct NamedTrace
{
    std::string name;
    trace::TraceData data;
    bool lenient = false;
};

trace::TraceData
dropTrace()
{
    sim::MachineConfig mcfg;
    mcfg.faults.seed = 7;
    mcfg.faults.dma_delay_permille = 150;
    mcfg.faults.dma_delay_cycles = 3'000;
    mcfg.faults.mbox_stall_permille = 200;
    mcfg.faults.arena_exhaust_begin = 1;
    mcfg.faults.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
    return record(
        [](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        },
        mcfg, pcfg);
}

/** Smash 200 bytes mid-file and recover what salvage can. */
NamedTrace
salvagedTrace()
{
    std::vector<std::uint8_t> bytes = trace::writeBuffer(
        record([](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        }),
        trace::WriteOptions{.index_stride = 64});
    const std::size_t at = bytes.size() / 2;
    for (std::size_t i = 0; i < 200 && at + i < bytes.size(); ++i)
        bytes[at + i] = 0xFF;
    trace::ReadReport report;
    NamedTrace t{"salvaged", trace::readBufferSalvage(bytes, report),
                 /*lenient=*/true};
    EXPECT_TRUE(report.salvaged);
    return t;
}

/** The six standard workloads + fault-injected drops + salvaged. */
std::vector<NamedTrace>
suiteTraces()
{
    std::vector<NamedTrace> out;
    out.push_back({"triad", record([](rt::CellSystem& sys) {
                       wl::TriadParams p;
                       p.n_elements = 4096;
                       p.n_spes = 2;
                       return std::make_unique<wl::Triad>(sys, p);
                   })});
    out.push_back({"matmul", record([](rt::CellSystem& sys) {
                       wl::MatmulParams p;
                       p.n = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Matmul>(sys, p);
                   })});
    out.push_back({"fft", record([](rt::CellSystem& sys) {
                       wl::FftParams p;
                       p.fft_size = 256;
                       p.n_ffts = 16;
                       p.batch = 4;
                       p.n_spes = 2;
                       return std::make_unique<wl::Fft>(sys, p);
                   })});
    out.push_back({"conv2d", record([](rt::CellSystem& sys) {
                       wl::Conv2dParams p;
                       p.width = 256;
                       p.height = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Conv2d>(sys, p);
                   })});
    out.push_back({"pipeline", record([](rt::CellSystem& sys) {
                       wl::PipelineParams p;
                       p.n_elements = 8192;
                       p.n_stages = 2;
                       return std::make_unique<wl::Pipeline>(sys, p);
                   })});
    out.push_back({"workqueue", record([](rt::CellSystem& sys) {
                       wl::WorkQueueParams p;
                       p.n_items = 32;
                       p.tile_elems = 256;
                       p.n_spes = 2;
                       return std::make_unique<wl::WorkQueue>(sys, p);
                   })});
    out.push_back({"drops", dropTrace(), /*lenient=*/false});
    out.push_back(salvagedTrace());
    return out;
}

/** Edge-hitting windows for a trace spanning [start, end]. */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
windowsFor(const ta::TraceModel& m)
{
    const std::uint64_t s = m.startTb();
    const std::uint64_t e = m.endTb();
    const std::uint64_t span = e - s;
    return {
        {s > 10 ? s - 10 : 0, e + 10},      // whole file + margins
        {s, s + span / 3},                  // first third
        {s + span / 4, s + (3 * span) / 4}, // middle half
        {s + (7 * span) / 8, e + 1},        // tail, inclusive end
    };
}

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + "/surgery_diff_" + name;
}

struct Container
{
    const char* tag;
    trace::WriteOptions wopt;
};

const Container kContainers[] = {
    {"v1", {}},
    {"v2", {.index_stride = 64}},
    {"v3", {.index_stride = 64, .compress = true}},
};

constexpr unsigned kThreadCounts[] = {1, 4};

std::uint64_t
groupMask(std::initializer_list<rt::ApiGroup> groups)
{
    std::uint64_t m = ~std::uint64_t{0} << rt::kNumApiOps;
    for (const rt::ApiGroup g : groups) {
        for (std::size_t k = 0; k < rt::kNumApiOps; ++k) {
            if (rt::apiOpGroup(static_cast<rt::ApiOp>(k)) == g)
                m |= std::uint64_t{1} << k;
        }
    }
    return m;
}

/** Reference for the filter invariant: restrict the analyzed event
 *  streams (not the record stream — dropping records could move
 *  clamp carriers) and re-extract intervals. */
std::string
restrictedReport(const ta::Analysis& a,
                 const std::vector<std::uint16_t>& cores,
                 std::uint64_t kind_mask)
{
    std::vector<char> keep(a.model.cores().size(), cores.empty() ? 1 : 0);
    for (const std::uint16_t c : cores)
        keep[c] = 1;
    std::vector<ta::CoreTimeline> tls = a.model.cores();
    for (auto& tl : tls) {
        if (!keep[tl.core]) {
            tl.events.clear();
            continue;
        }
        std::vector<ta::Event> kept;
        for (const ta::Event& ev : tl.events) {
            if (ev.kind >= 64 || ((kind_mask >> ev.kind) & 1))
                kept.push_back(ev);
        }
        tl.events = std::move(kept);
    }
    std::vector<std::vector<ta::Interval>> ivs(tls.size());
    for (const auto& tl : tls)
        ivs[tl.core] = ta::buildCoreIntervals(tl);

    ta::WindowResult r;
    r.from = 0;
    r.to = ~std::uint64_t{0};
    r.header = a.model.header();
    r.cores = std::move(tls);
    r.intervals = std::move(ivs);
    r.leniency_skipped = a.model.leniencySkipped();
    return ta::windowReport(r);
}

TEST(SurgeryDiff, SliceWindowedQueriesMatchOriginalEverywhere)
{
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    for (const NamedTrace& t : suiteTraces()) {
        const ta::Analysis full = ta::analyze(t.data, t.lenient);
        for (const auto& [from, to] : windowsFor(full.model)) {
            const std::string expect =
                ta::windowReport(ta::queryWindow(full, from, to));
            trace::SliceOptions sopt;
            sopt.lenient = t.lenient;
            const trace::TraceData sliced =
                trace::slice(t.data, from, to, sem, sopt);

            // In-memory: windowed query on the slice's own analysis.
            EXPECT_EQ(ta::windowReport(ta::queryWindow(
                          ta::analyze(sliced, t.lenient), from, to)),
                      expect)
                << t.name << " [" << from << ", " << to << ")";

            // Through every container and the file query path (what
            // `ta window` runs), serial and 4-thread.
            for (const Container& c : kContainers) {
                const std::string path = tempPath(
                    t.name + "_" + std::to_string(from) + "." + c.tag +
                    ".pdt");
                trace::writeFile(path, sliced, c.wopt);
                for (const unsigned threads : kThreadCounts) {
                    SCOPED_TRACE(t.name + " " + c.tag + " [" +
                                 std::to_string(from) + ", " +
                                 std::to_string(to) + ") @" +
                                 std::to_string(threads) + "t");
                    ta::QueryOptions opt;
                    opt.threads = threads;
                    opt.salvage = t.lenient;
                    const ta::WindowResult w =
                        ta::queryWindowFile(path, from, to, opt);
                    EXPECT_EQ(ta::windowReport(w), expect);
                }
                std::remove(path.c_str());
            }
        }
    }
}

TEST(SurgeryDiff, SpliceCutRoundTripReassemblesEveryTrace)
{
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    for (const NamedTrace& t : suiteTraces()) {
        SCOPED_TRACE(t.name);
        const ta::Analysis full = ta::analyze(t.data, t.lenient);
        const std::string expect = ta::fullReport(full);
        const std::uint64_t m =
            full.model.startTb() + full.model.spanTb() / 2;

        trace::SliceOptions sopt;
        sopt.lenient = t.lenient;
        const trace::TraceData head =
            trace::slice(t.data, 0, m, sem, sopt);
        const trace::TraceData tail =
            trace::slice(t.data, m, ~std::uint64_t{0}, sem, sopt);
        trace::SpliceOptions jopt;
        jopt.cuts = {m};
        jopt.lenient = t.lenient;
        const trace::TraceData whole = trace::splice({head, tail}, jopt);
        EXPECT_EQ(ta::fullReport(ta::analyze(whole, t.lenient)), expect);
    }
}

TEST(SurgeryDiff, SpliceRoundTripSurvivesTheV3Container)
{
    // The same cut round-trip, but with each half written to and read
    // back from a compressed v3 file — what the CLI pipeline
    // `ta surgery slice; ta surgery splice` actually does.
    const trace::OpSemantics sem = ta::surgeryOpSemantics();
    const NamedTrace t = suiteTraces().front();
    const ta::Analysis full = ta::analyze(t.data);
    const std::uint64_t m = full.model.startTb() + full.model.spanTb() / 2;

    const std::string ph = tempPath("head.v3.pdt");
    const std::string pt = tempPath("tail.v3.pdt");
    const trace::WriteOptions wopt{.index_stride = 32, .compress = true};
    trace::writeFile(ph, trace::slice(t.data, 0, m, sem), wopt);
    trace::writeFile(pt, trace::slice(t.data, m, ~std::uint64_t{0}, sem),
                     wopt);
    trace::SpliceOptions jopt;
    jopt.cuts = {m};
    const trace::TraceData whole =
        trace::splice({trace::readFile(ph), trace::readFile(pt)}, jopt);
    EXPECT_EQ(ta::fullReport(ta::analyze(whole)), ta::fullReport(full));
    std::remove(ph.c_str());
    std::remove(pt.c_str());
}

TEST(SurgeryDiff, FilterByCoreMatchesCoreRestrictedQuery)
{
    // Keeping one core and analyzing must answer exactly like the
    // core-restricted windowed query on the original: per-core record
    // streams are independent, and the filter's timestamp re-encode
    // pins every survivor to its original placed time.
    for (const NamedTrace& t : suiteTraces()) {
        const ta::Analysis full = ta::analyze(t.data, t.lenient);
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t span = full.model.spanTb();
        const std::uint64_t from = s + span / 4;
        const std::uint64_t to = s + (3 * span) / 4;
        const std::uint32_t n_cores = t.data.header.num_spes + 1;
        for (std::uint32_t core = 0; core < n_cores; ++core) {
            SCOPED_TRACE(t.name + " core " + std::to_string(core));
            trace::FilterOptions fopt;
            fopt.cores = {static_cast<std::uint16_t>(core)};
            fopt.lenient = t.lenient;
            const trace::TraceData kept = trace::filter(t.data, fopt);
            const std::string expect = ta::windowReport(ta::queryWindow(
                full, from, to, static_cast<int>(core)));
            EXPECT_EQ(ta::windowReport(ta::queryWindow(
                          ta::analyze(kept, t.lenient), from, to)),
                      expect);
        }
    }
}

TEST(SurgeryDiff, FilterByKindGroupMatchesEventRestriction)
{
    const std::vector<std::pair<const char*, std::uint64_t>> masks = {
        {"dma", groupMask({rt::ApiGroup::Dma, rt::ApiGroup::DmaWait})},
        {"mailbox+signal",
         groupMask({rt::ApiGroup::Mailbox, rt::ApiGroup::Signal})},
        {"lifecycle", groupMask({rt::ApiGroup::Lifecycle})},
    };
    for (const NamedTrace& t : suiteTraces()) {
        const ta::Analysis full = ta::analyze(t.data, t.lenient);
        for (const auto& [name, mask] : masks) {
            SCOPED_TRACE(t.name + std::string(" ") + name);
            trace::FilterOptions fopt;
            fopt.kind_mask = mask;
            fopt.lenient = t.lenient;
            const trace::TraceData kept = trace::filter(t.data, fopt);
            EXPECT_EQ(
                ta::windowReport(ta::queryWindow(
                    ta::analyze(kept, t.lenient), 0, ~std::uint64_t{0})),
                restrictedReport(full, {}, mask));
        }
    }
}

TEST(SurgeryDiff, IdentityFilterIsLossless)
{
    for (const NamedTrace& t : suiteTraces()) {
        SCOPED_TRACE(t.name);
        trace::FilterOptions fopt;
        fopt.lenient = t.lenient;
        EXPECT_EQ(ta::fullReport(
                      ta::analyze(trace::filter(t.data, fopt), t.lenient)),
                  ta::fullReport(ta::analyze(t.data, t.lenient)));
    }
}

} // namespace
} // namespace cell
