/**
 * @file
 * BlockCache contract tests: file-identity freshness and concurrent
 * eviction integrity.
 *
 * The staleness regression pins the nastiest aging bug: an in-place
 * rewrite of a registered trace with the SAME size landing within the
 * mtime granularity. A (path, size, mtime) key cannot distinguish the
 * two files, so a long-lived process (ta serve) would keep answering
 * from the old file's cached blocks. The key therefore carries a
 * content fingerprint (FNV-1a over the first and last 4 KiB); these
 * tests rewrite files while pinning mtime back and must always see
 * fresh content.
 *
 * The eviction torture drives a cache sized to ~2 blocks from many
 * threads, checking every fetched block still belongs to the key it
 * was requested under (TSan runs this via the `parallel` label).
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "ta/analyzer.h"
#include "ta/query.h"
#include "trace/format.h"
#include "trace/writer.h"

namespace cell {
namespace {

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + "/block_cache_" + name;
}

/** A small synthetic trace; @p salt shifts timestamps so two salts
 *  give same-size files with different contents and reports. */
trace::TraceData
makeTrace(std::uint32_t salt)
{
    constexpr std::uint32_t kCores = 3;
    trace::TraceData d;
    d.header.num_spes = kCores - 1;
    d.header.core_hz = 3'200'000'000ULL;
    d.header.timebase_divider = 8;
    d.spe_programs.assign(kCores - 1, "synthetic");
    std::uint32_t raw[kCores];
    for (std::uint16_t c = 0; c < kCores; ++c) {
        raw[c] = 1000u + c;
        trace::Record r{};
        r.kind = trace::kSyncRecord;
        r.core = c;
        r.a = raw[c];
        r.b = 1000;
        d.records.push_back(r);
    }
    bool begin[kCores] = {};
    for (std::uint64_t i = 0; i < 3000; ++i) {
        const auto c = static_cast<std::uint16_t>(i % kCores);
        trace::Record r{};
        r.core = c;
        r.kind = static_cast<std::uint8_t>(1 + (i / kCores) % 8);
        r.phase = begin[c] ? trace::kPhaseEnd : trace::kPhaseBegin;
        begin[c] = !begin[c];
        raw[c] += 40u + salt; // salt changes every event's time
        r.timestamp = raw[c];
        d.records.push_back(r);
    }
    d.header.record_count = d.records.size();
    return d;
}

void
patchByteKeepingMtime(const std::string& path, std::uint64_t offset)
{
    const auto mtime = std::filesystem::last_write_time(path);
    {
        std::fstream f(path,
                       std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        f.seekg(static_cast<std::streamoff>(offset));
        char b = 0;
        f.read(&b, 1);
        b = static_cast<char>(b ^ 0x5A);
        f.seekp(static_cast<std::streamoff>(offset));
        f.write(&b, 1);
    }
    std::filesystem::last_write_time(path, mtime);
}

TEST(BlockCacheFileId, InPlaceRewriteSameSizeSameMtimeChangesId)
{
    const std::string path = tempPath("fileid.pdt");
    trace::writeFile(path, makeTrace(1));
    const std::string id_before = ta::BlockCache::fileId(path);
    const auto size_before = std::filesystem::file_size(path);

    // Flip one byte near the front (record region lives in the first
    // 4 KiB) while pinning mtime back: size and mtime are identical,
    // only the content differs — exactly the case (path, size, mtime)
    // keys cannot see.
    patchByteKeepingMtime(path, 128);
    EXPECT_EQ(std::filesystem::file_size(path), size_before);
    const std::string id_front = ta::BlockCache::fileId(path);
    EXPECT_NE(id_front, id_before);

    // Same for the tail (the fingerprint covers both ends, so a
    // footer/index rewrite is seen too).
    patchByteKeepingMtime(path,
                          std::filesystem::file_size(path) - 64);
    const std::string id_tail = ta::BlockCache::fileId(path);
    EXPECT_NE(id_tail, id_front);

    // A byte-identical rewrite keeps the id stable (no false
    // invalidation churn).
    patchByteKeepingMtime(path, 128);
    patchByteKeepingMtime(path,
                          std::filesystem::file_size(path) - 64);
    EXPECT_EQ(ta::BlockCache::fileId(path), id_before);
    std::remove(path.c_str());
}

TEST(BlockCacheFileId, StaleBlocksAreNeverServedAfterInPlaceRewrite)
{
    // The end-to-end regression: index-seeking queries pull record
    // blocks through a shared cache. Rewrite the file in place with a
    // same-size different trace, pin mtime back, and re-query through
    // the SAME cache — the answer must be the new file's, not a mix
    // of the new index with the old file's cached blocks.
    const trace::TraceData before = makeTrace(1);
    const trace::TraceData after = makeTrace(2);

    const std::string path = tempPath("stale.v2.pdt");
    trace::WriteOptions wopt;
    wopt.index_stride = 64;
    trace::writeFile(path, before, wopt);
    const auto size_before = std::filesystem::file_size(path);
    const auto mtime_before = std::filesystem::last_write_time(path);

    const auto report = [&](const trace::TraceData& d) {
        return ta::windowReport(
            ta::queryWindow(ta::analyze(d), 0, ~std::uint64_t{0}));
    };
    const std::string expect_before = report(before);
    const std::string expect_after = report(after);
    ASSERT_NE(expect_before, expect_after) << "salt must change rows";

    ta::BlockCache cache;
    ta::QueryOptions opt;
    opt.threads = 1;
    opt.cache = &cache;
    const ta::WindowResult w1 =
        ta::queryWindowFile(path, 0, ~std::uint64_t{0}, opt);
    EXPECT_TRUE(w1.used_index);
    EXPECT_EQ(ta::windowReport(w1), expect_before);
    EXPECT_GT(cache.stats().misses, 0u); // blocks went through it

    // In-place rewrite: same size, mtime pinned back.
    trace::writeFile(path, after, wopt);
    ASSERT_EQ(std::filesystem::file_size(path), size_before);
    std::filesystem::last_write_time(path, mtime_before);

    const ta::WindowResult w2 =
        ta::queryWindowFile(path, 0, ~std::uint64_t{0}, opt);
    EXPECT_TRUE(w2.used_index);
    EXPECT_EQ(ta::windowReport(w2), expect_after)
        << "stale cached blocks served for a rewritten file";
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Concurrent eviction torture
// ---------------------------------------------------------------------------

/** A deterministic block whose every record encodes its identity. */
std::vector<trace::Record>
makeBlock(std::uint32_t file, std::uint64_t block, std::size_t records)
{
    std::vector<trace::Record> v(records);
    for (std::size_t i = 0; i < records; ++i) {
        v[i].a = (static_cast<std::uint64_t>(file) << 32) | block;
        v[i].b = i;
    }
    return v;
}

TEST(BlockCacheTorture, ConcurrentEvictionNeverCrossWiresBlocks)
{
    constexpr std::size_t kBlockRecords = 512;
    constexpr unsigned kThreads = 8;
    constexpr unsigned kIters = 400;
    constexpr std::uint32_t kFiles = 5;
    constexpr std::uint64_t kBlocks = 6;

    // Room for ~2 blocks: with 30 distinct keys in play, (almost)
    // every get evicts something another thread may be using.
    ta::BlockCache cache(2 * kBlockRecords * sizeof(trace::Record));

    std::atomic<std::uint64_t> loads{0};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t) {
        threads.emplace_back([&, t] {
            for (unsigned i = 0; i < kIters; ++i) {
                const std::uint32_t file = (t * 13 + i) % kFiles;
                const std::uint64_t block = (t * 7 + i * 3) % kBlocks;
                const std::string id = "torture:" + std::to_string(file);
                const ta::BlockCache::Block b = cache.get(id, block, [&] {
                    loads.fetch_add(1, std::memory_order_relaxed);
                    return makeBlock(file, block, kBlockRecords);
                });
                // The fetched block must be the one asked for — an
                // eviction race must never hand back another key's
                // data or a half-built vector.
                ASSERT_NE(b, nullptr);
                ASSERT_EQ(b->size(), kBlockRecords);
                const std::uint64_t want =
                    (static_cast<std::uint64_t>(file) << 32) | block;
                EXPECT_EQ((*b)[0].a, want);
                EXPECT_EQ((*b)[kBlockRecords - 1].a, want);
                EXPECT_EQ((*b)[kBlockRecords - 1].b, kBlockRecords - 1);
            }
        });
    }
    for (std::thread& t : threads)
        t.join();

    const ta::BlockCache::Stats stats = cache.stats();
    EXPECT_EQ(stats.hits + stats.misses, kThreads * kIters);
    EXPECT_EQ(stats.misses, loads);
    EXPECT_GT(stats.evictions, 0u) << "cache never churned; no torture";
    // The cache stayed bounded through it all.
    EXPECT_LE(cache.sizeBytes(),
              2 * kBlockRecords * sizeof(trace::Record));
}

TEST(BlockCacheTorture, SharedBlocksOutliveEviction)
{
    // A shared_ptr handed out stays valid after its entry is evicted.
    constexpr std::size_t kBlockRecords = 512;
    ta::BlockCache cache(kBlockRecords * sizeof(trace::Record));
    const ta::BlockCache::Block held = cache.get(
        "held", 0, [&] { return makeBlock(1, 0, kBlockRecords); });
    for (std::uint64_t b = 1; b < 8; ++b)
        cache.get("held", b, [&] { return makeBlock(1, b, kBlockRecords); });
    EXPECT_GT(cache.stats().evictions, 0u);
    EXPECT_EQ((*held)[0].a, (1ull << 32));
    EXPECT_EQ(held->size(), kBlockRecords);
}

} // namespace
} // namespace cell
