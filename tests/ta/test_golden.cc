/**
 * @file
 * Golden-trace regression tests.
 *
 * tests/ta/golden/ holds small committed PDT traces plus, per trace, a
 * `.digest` file with the FNV-1a 64 hash of the serial analyzer's full
 * report (every view + CSV export concatenated). Both the serial and
 * the sharded parallel analyzer must keep reproducing those digests —
 * any change to a reported number fails here, and must either be fixed
 * or deliberately blessed by regenerating the fixtures:
 *
 *     build/tools/ta_golden gen tests/ta/golden
 *
 * CELL_GOLDEN_DIR is injected by the build (tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "ta/analyzer.h"
#include "ta/compare.h"
#include "ta/parallel.h"
#include "ta/query.h"
#include "trace/block.h"
#include "trace/index.h"
#include "trace/reader.h"

namespace cell {
namespace {

const char* const kFixtures[] = {"triad",           "matmul",
                                 "workqueue",       "triad_drops",
                                 "workqueue_slice", "triad_splice",
                                 "gen_skew",        "triad_perturbed"};

std::string
goldenPath(const std::string& name, const char* ext)
{
    return std::string(CELL_GOLDEN_DIR) + "/" + name + ext;
}

std::string
committedDigest(const std::string& name)
{
    std::ifstream is(goldenPath(name, ".digest"));
    std::string s;
    is >> s;
    return s;
}

std::string
digestOf(const ta::Analysis& a)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << ta::fnv1a64(ta::fullReport(a));
    return os.str();
}

TEST(Golden, SerialAnalyzerReproducesCommittedDigests)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ASSERT_FALSE(expect.empty()) << "missing digest for " << name;
        const trace::TraceData data =
            trace::readFile(goldenPath(name, ".pdt"));
        EXPECT_EQ(digestOf(ta::analyze(data)), expect);
    }
}

TEST(Golden, ParallelAnalyzerReproducesCommittedDigests)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ASSERT_FALSE(expect.empty()) << "missing digest for " << name;
        const trace::TraceData data =
            trace::readFile(goldenPath(name, ".pdt"));
        ta::ParallelOptions opt;
        opt.threads = 4;
        opt.shard_records = 64; // many shards even on tiny fixtures
        EXPECT_EQ(digestOf(ta::analyzeParallel(data, opt)), expect);
    }
}

TEST(Golden, FileShardedIngestReproducesCommittedDigests)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ta::ParallelOptions opt;
        opt.threads = 4;
        EXPECT_EQ(digestOf(ta::analyzeFileParallel(goldenPath(name, ".pdt"),
                                                   opt)),
                  expect);
    }
}

TEST(Golden, V2VariantsReadViaTheV1PathReproduceCommittedDigests)
{
    // Each fixture also exists as `<name>.v2.pdt` — the same trace
    // written with a footer index. The v1 reader must see the
    // identical trace (footer ignored), hence the identical digest.
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ASSERT_FALSE(expect.empty()) << "missing digest for " << name;
        const trace::TraceData data =
            trace::readFile(goldenPath(name, ".v2.pdt"));
        EXPECT_EQ(digestOf(ta::analyze(data)), expect);
    }
}

TEST(Golden, V3VariantsDecodeToTheCommittedDigests)
{
    // Each fixture also exists as `<name>.v3.pdt` — the same trace in
    // the compressed block container, plus a footer index. Decode is
    // transparent, so serial, in-memory parallel, and file-sharded
    // parallel analysis must all reproduce the v1 digest.
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ASSERT_FALSE(expect.empty()) << "missing digest for " << name;
        const trace::TraceData data =
            trace::readFile(goldenPath(name, ".v3.pdt"));
        EXPECT_EQ(data.header.version, trace::kFormatVersion);
        EXPECT_EQ(digestOf(ta::analyze(data)), expect);

        ta::ParallelOptions opt;
        opt.threads = 4;
        opt.shard_records = 64;
        EXPECT_EQ(digestOf(ta::analyzeParallel(data, opt)), expect);
        EXPECT_EQ(digestOf(ta::analyzeFileParallel(
                      goldenPath(name, ".v3.pdt"), ta::ParallelOptions{4, 0})),
                  expect);
    }
}

TEST(Golden, V3IndexesValidateAndAnswerWindowedQueriesExactly)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string path = goldenPath(name, ".v3.pdt");
        const trace::IndexReadResult ir = trace::readIndexFile(path);
        ASSERT_TRUE(ir.present) << ir.reason;
        ASSERT_TRUE(ir.valid) << ir.reason;
        EXPECT_TRUE(ir.index.strictClean());

        const ta::Analysis full = ta::analyze(trace::readFile(path));
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t span = full.model.spanTb();
        ta::BlockCache cache;
        ta::QueryOptions opt;
        opt.threads = 2;
        opt.cache = &cache;
        const std::uint64_t from = s + span / 4;
        const std::uint64_t to = s + (3 * span) / 4;
        const ta::WindowResult w = ta::queryWindowFile(path, from, to, opt);
        EXPECT_TRUE(w.used_index);
        EXPECT_EQ(ta::windowReport(w),
                  ta::windowReport(ta::queryWindow(full, from, to)));
    }
}

TEST(Golden, V3VariantsCompressTheRecordRegion)
{
    // Even these deliberately tiny fixtures (tens of records — far too
    // small to amortize the per-block seed/directory overhead that the
    // 2.5x bytes/event bar on real-size traces absorbs; see
    // EXPERIMENTS.md R4 and Block.CompressesRegularTracesWell) must
    // come out with a record region smaller than the fixed 32-byte
    // encoding, and the probe must agree with the committed geometry.
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const trace::BlockRegionProbe p =
            trace::probeBlockRegionFile(goldenPath(name, ".v3.pdt"));
        ASSERT_TRUE(p.present);
        const std::uint64_t n = p.region.record_count;
        ASSERT_GT(n, 0u);
        EXPECT_LT(p.region_bytes, n * sizeof(trace::Record));
    }
}

TEST(Golden, DiffJsonReproducesTheCommittedDigest)
{
    // triad vs triad_perturbed is the committed differential pair; the
    // FNV of `ta diff --json` over it is pinned in triad_diff.digest.
    // Any change to alignment, bucket attribution, window localization
    // or the JSON rendering fails here and must be deliberately
    // re-blessed via `ta_golden gen`.
    std::ifstream is(std::string(CELL_GOLDEN_DIR) + "/triad_diff.digest");
    std::string expect;
    is >> expect;
    ASSERT_FALSE(expect.empty()) << "missing triad_diff.digest";

    for (const unsigned threads : {1u, 4u}) {
        SCOPED_TRACE("threads=" + std::to_string(threads));
        ta::DiffFileOptions opt;
        opt.threads = threads;
        const ta::DiffFileOutcome out =
            ta::diffFiles(goldenPath("triad", ".pdt"),
                          goldenPath("triad_perturbed", ".pdt"), opt);
        std::ostringstream os;
        os << std::hex << std::setw(16) << std::setfill('0')
           << ta::fnv1a64(ta::diffJson(out.result));
        EXPECT_EQ(os.str(), expect);
        EXPECT_TRUE(out.result.diverged);
    }
}

TEST(Golden, V2IndexesValidateAndAnswerWindowedQueriesExactly)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string path = goldenPath(name, ".v2.pdt");
        const trace::IndexReadResult ir = trace::readIndexFile(path);
        ASSERT_TRUE(ir.present) << ir.reason;
        ASSERT_TRUE(ir.valid) << ir.reason;
        EXPECT_TRUE(ir.index.strictClean());

        const ta::Analysis full = ta::analyze(trace::readFile(path));
        const std::uint64_t s = full.model.startTb();
        const std::uint64_t span = full.model.spanTb();
        ta::BlockCache cache;
        ta::QueryOptions opt;
        opt.threads = 2;
        opt.cache = &cache;
        const std::uint64_t from = s + span / 4;
        const std::uint64_t to = s + (3 * span) / 4;
        const ta::WindowResult w = ta::queryWindowFile(path, from, to, opt);
        EXPECT_TRUE(w.used_index);
        EXPECT_EQ(ta::windowReport(w),
                  ta::windowReport(ta::queryWindow(full, from, to)));
    }
}

} // namespace
} // namespace cell
