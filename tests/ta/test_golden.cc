/**
 * @file
 * Golden-trace regression tests.
 *
 * tests/ta/golden/ holds small committed PDT traces plus, per trace, a
 * `.digest` file with the FNV-1a 64 hash of the serial analyzer's full
 * report (every view + CSV export concatenated). Both the serial and
 * the sharded parallel analyzer must keep reproducing those digests —
 * any change to a reported number fails here, and must either be fixed
 * or deliberately blessed by regenerating the fixtures:
 *
 *     build/tools/ta_golden gen tests/ta/golden
 *
 * CELL_GOLDEN_DIR is injected by the build (tests/CMakeLists.txt).
 */

#include <gtest/gtest.h>

#include <fstream>
#include <iomanip>
#include <sstream>
#include <string>

#include "ta/analyzer.h"
#include "ta/parallel.h"
#include "trace/reader.h"

namespace cell {
namespace {

const char* const kFixtures[] = {"triad", "matmul", "workqueue",
                                 "triad_drops"};

std::string
goldenPath(const std::string& name, const char* ext)
{
    return std::string(CELL_GOLDEN_DIR) + "/" + name + ext;
}

std::string
committedDigest(const std::string& name)
{
    std::ifstream is(goldenPath(name, ".digest"));
    std::string s;
    is >> s;
    return s;
}

std::string
digestOf(const ta::Analysis& a)
{
    std::ostringstream os;
    os << std::hex << std::setw(16) << std::setfill('0')
       << ta::fnv1a64(ta::fullReport(a));
    return os.str();
}

TEST(Golden, SerialAnalyzerReproducesCommittedDigests)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ASSERT_FALSE(expect.empty()) << "missing digest for " << name;
        const trace::TraceData data =
            trace::readFile(goldenPath(name, ".pdt"));
        EXPECT_EQ(digestOf(ta::analyze(data)), expect);
    }
}

TEST(Golden, ParallelAnalyzerReproducesCommittedDigests)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ASSERT_FALSE(expect.empty()) << "missing digest for " << name;
        const trace::TraceData data =
            trace::readFile(goldenPath(name, ".pdt"));
        ta::ParallelOptions opt;
        opt.threads = 4;
        opt.shard_records = 64; // many shards even on tiny fixtures
        EXPECT_EQ(digestOf(ta::analyzeParallel(data, opt)), expect);
    }
}

TEST(Golden, FileShardedIngestReproducesCommittedDigests)
{
    for (const char* name : kFixtures) {
        SCOPED_TRACE(name);
        const std::string expect = committedDigest(name);
        ta::ParallelOptions opt;
        opt.threads = 4;
        EXPECT_EQ(digestOf(ta::analyzeFileParallel(goldenPath(name, ".pdt"),
                                                   opt)),
                  expect);
    }
}

} // namespace
} // namespace cell
