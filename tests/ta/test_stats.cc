/**
 * @file
 * Statistics tests: histogram math and trace-derived metrics on
 * synthetic streams with known answers.
 */

#include <gtest/gtest.h>

#include "ta/stats.h"

namespace cell::ta {
namespace {

using trace::Record;
using trace::TraceData;

TEST(Histogram, BucketsByPowersOfTwo)
{
    Histogram h;
    h.add(0);
    h.add(1);
    h.add(2);
    h.add(3);
    h.add(1024);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 1024u);
    EXPECT_DOUBLE_EQ(h.mean(), (0 + 1 + 2 + 3 + 1024) / 5.0);
    EXPECT_EQ(h.buckets()[0], 1u); // [0,1)
    EXPECT_EQ(h.buckets()[1], 1u); // [1,2)
    EXPECT_EQ(h.buckets()[2], 2u); // [2,4)
    EXPECT_EQ(h.buckets()[11], 1u); // [1024,2048)
}

TEST(Histogram, QuantilesAreMonotone)
{
    Histogram h;
    for (std::uint64_t i = 1; i <= 1000; ++i)
        h.add(i);
    EXPECT_LE(h.quantile(0.1), h.quantile(0.5));
    EXPECT_LE(h.quantile(0.5), h.quantile(0.9));
    EXPECT_LE(h.quantile(0.9), h.max());
    // The true median (500) lies in the [256,512) bucket; the
    // quantile reports that bucket's floor.
    EXPECT_EQ(h.quantile(0.5), 256u);
}

TEST(Histogram, EmptyIsZero)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

/** Build a synthetic 1-SPE trace with a known breakdown. */
TraceData
syntheticTrace()
{
    TraceData t;
    t.header.num_spes = 1;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {"synthetic"};

    auto add = [&](std::uint16_t core, std::uint64_t tb, std::uint8_t kind,
                   std::uint8_t phase, std::uint64_t a = 0,
                   std::uint64_t b = 0, std::uint32_t c = 0,
                   std::uint32_t d = 0) {
        Record r{};
        r.kind = kind;
        r.phase = phase;
        r.core = core;
        r.timestamp = static_cast<std::uint32_t>(
            core == 0 ? tb : 1'000'000 - tb); // down-counter for SPE
        r.a = a;
        r.b = b;
        r.c = c;
        r.d = d;
        t.records.push_back(r);
    };
    auto op = [](rt::ApiOp o) { return static_cast<std::uint8_t>(o); };

    // Syncs.
    add(0, 0, trace::kSyncRecord, 0, 0, 0);
    {
        Record sync{};
        sync.kind = trace::kSyncRecord;
        sync.core = 1;
        sync.timestamp = 1'000'000;
        sync.a = 1'000'000;
        sync.b = 0;
        t.records.push_back(sync);
    }

    // SPE stream: run 0..1000; DMA cmd 10..20 (size 4096, tag 2);
    // tag wait 30..130 (mask 0x4); mbox wait 200..260; flush marker.
    add(1, 0, op(rt::ApiOp::SpuStart), trace::kPhaseBegin);
    add(1, 10, op(rt::ApiOp::SpuMfcGet), trace::kPhaseBegin, 0x100, 0x8000,
        4096, 2);
    add(1, 20, op(rt::ApiOp::SpuMfcGet), trace::kPhaseEnd);
    add(1, 30, op(rt::ApiOp::SpuTagWaitAll), trace::kPhaseBegin, 0x4);
    add(1, 130, op(rt::ApiOp::SpuTagWaitAll), trace::kPhaseEnd, 0x4, 0x4);
    add(1, 200, op(rt::ApiOp::SpuMboxRead), trace::kPhaseBegin);
    add(1, 260, op(rt::ApiOp::SpuMboxRead), trace::kPhaseEnd, 42);
    add(1, 300, trace::kFlushRecord, 0, /*records*/ 7, /*wait*/ 55);
    add(1, 1000, op(rt::ApiOp::SpuStop), trace::kPhaseBegin, 0);
    return t;
}

TEST(TraceStats, BreakdownMatchesHandComputedValues)
{
    const TraceData t = syntheticTrace();
    const TraceModel m = TraceModel::build(t);
    const IntervalSet ivs = IntervalSet::build(m);
    const TraceStats st = TraceStats::build(m, ivs);

    const SpuBreakdown& b = st.spu[0];
    EXPECT_TRUE(b.ran);
    EXPECT_EQ(b.run_tb, 1000u);
    EXPECT_EQ(b.dma_cmd_tb, 10u);
    EXPECT_EQ(b.dma_wait_tb, 100u);
    EXPECT_EQ(b.mbox_wait_tb, 60u);
    EXPECT_EQ(b.signal_wait_tb, 0u);
    EXPECT_EQ(b.stall_tb(), 160u);
    EXPECT_EQ(b.busy_tb(), 1000u - 160u - 10u);
    EXPECT_NEAR(b.utilization(), 0.83, 0.001);
}

TEST(TraceStats, DmaLatencyMatchedToCoveringTagWait)
{
    const TraceData t = syntheticTrace();
    const TraceModel m = TraceModel::build(t);
    const TraceStats st =
        TraceStats::build(m, IntervalSet::build(m));

    const DmaStats& d = st.dma[0];
    EXPECT_EQ(d.commands, 1u);
    EXPECT_EQ(d.bytes, 4096u);
    EXPECT_EQ(d.unobserved, 0u);
    ASSERT_EQ(d.latency_tb.count(), 1u);
    // Command begin at tb 10; tag wait (mask covers tag 2) ends 130.
    EXPECT_EQ(d.latency_tb.max(), 120u);
}

TEST(TraceStats, FlushMarkersAggregated)
{
    const TraceData t = syntheticTrace();
    const TraceModel m = TraceModel::build(t);
    const TraceStats st =
        TraceStats::build(m, IntervalSet::build(m));
    EXPECT_EQ(st.flush[0].flushes, 1u);
    EXPECT_EQ(st.flush[0].flushed_records, 7u);
    EXPECT_EQ(st.flush[0].flush_wait_cycles, 55u);
}

TEST(TraceStats, OpCountsCountBeginsOnly)
{
    const TraceData t = syntheticTrace();
    const TraceModel m = TraceModel::build(t);
    const TraceStats st =
        TraceStats::build(m, IntervalSet::build(m));
    EXPECT_EQ(st.op_counts[1][static_cast<std::size_t>(rt::ApiOp::SpuMfcGet)],
              1u);
    EXPECT_EQ(
        st.op_counts[1][static_cast<std::size_t>(rt::ApiOp::SpuTagWaitAll)],
        1u);
    EXPECT_EQ(st.op_counts[1][static_cast<std::size_t>(rt::ApiOp::SpuStart)],
              1u);
}

TEST(TraceStats, OverlapScoreBounds)
{
    const TraceData t = syntheticTrace();
    const TraceModel m = TraceModel::build(t);
    const TraceStats st =
        TraceStats::build(m, IntervalSet::build(m));
    // wait 100 of 120 service => overlap 1 - 100/120.
    EXPECT_NEAR(st.overlapScore(0), 1.0 - 100.0 / 120.0, 1e-9);
}

TEST(TraceStats, LoadImbalanceOfSingleSpeIsOne)
{
    const TraceData t = syntheticTrace();
    const TraceModel m = TraceModel::build(t);
    const TraceStats st =
        TraceStats::build(m, IntervalSet::build(m));
    EXPECT_DOUBLE_EQ(st.loadImbalance(), 1.0);
}

TEST(TraceStats, NoRunMeansNoBreakdown)
{
    TraceData t;
    t.header.num_spes = 2;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs.resize(2);
    const TraceModel m = TraceModel::build(t);
    const TraceStats st =
        TraceStats::build(m, IntervalSet::build(m));
    EXPECT_FALSE(st.spu[0].ran);
    EXPECT_FALSE(st.spu[1].ran);
    EXPECT_DOUBLE_EQ(st.loadImbalance(), 1.0);
    EXPECT_DOUBLE_EQ(st.overlapScore(0), 1.0);
}

} // namespace
} // namespace cell::ta
