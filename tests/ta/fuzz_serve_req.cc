/**
 * @file
 * Fuzz target for the `ta serve` request decoder.
 *
 * Property under test: for arbitrary input bytes, decodeRequest()
 * either decodes (Ok with consumed <= size), asks for more bytes
 * (NeedMore), or rejects (Bad with a diagnostic) — it never throws,
 * never crashes, and never reads past the supplied buffer. Any frame
 * it accepts must re-encode and decode back to the same Request
 * (round-trip stability), so a daemon replaying its own log can never
 * disagree with itself. decodeResponse() gets the same treatment.
 *
 * Two build modes (same scheme as fuzz_reader):
 *  - With -DCELL_FUZZ=ON (requires clang's libFuzzer), this compiles
 *    to a real fuzzer via LLVMFuzzerTestOneInput.
 *  - By default (FUZZ_CORPUS_MAIN) it gets a plain main() that replays
 *    every file/directory passed on the command line — so the
 *    committed corpus under tests/ta/corpus_serve/ runs as a
 *    regression test under any compiler.
 */

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "ta/serve.h"

namespace {

void
oneInput(const std::uint8_t* data, std::size_t size)
{
    using namespace cell::ta::serve;

    Request req;
    std::size_t consumed = 0;
    std::string error;
    const Decode d = decodeRequest(data, size, req, consumed, error);
    switch (d) {
    case Decode::Ok: {
        // Whatever was accepted must round-trip bit-exactly.
        if (consumed > size)
            std::abort();
        const std::vector<std::uint8_t> wire = encodeRequest(req);
        Request again;
        std::size_t consumed2 = 0;
        std::string error2;
        if (decodeRequest(wire.data(), wire.size(), again, consumed2,
                          error2) != Decode::Ok)
            std::abort();
        if (!(again == req) || consumed2 != wire.size())
            std::abort();
        break;
    }
    case Decode::NeedMore:
        // Growing the buffer must be the only way forward: a prefix
        // that needs more bytes must never have consumed any.
        if (consumed != 0)
            std::abort();
        break;
    case Decode::Bad:
        if (error.empty())
            std::abort();
        break;
    }

    // The response decoder shares the framing code; same contract.
    Response resp;
    std::size_t rconsumed = 0;
    std::string rerror;
    const Decode rd =
        decodeResponse(data, size, resp, rconsumed, rerror);
    if (rd == Decode::Ok && rconsumed > size)
        std::abort();
    if (rd == Decode::Bad && rerror.empty())
        std::abort();
}

} // namespace

extern "C" int
LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size)
{
    oneInput(data, size);
    return 0;
}

#ifdef FUZZ_CORPUS_MAIN

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace {

int
replayFile(const std::filesystem::path& path)
{
    std::ifstream is(path, std::ios::binary);
    if (!is) {
        std::fprintf(stderr, "fuzz_serve_req: cannot open %s\n",
                     path.c_str());
        return 1;
    }
    const std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(is)),
        std::istreambuf_iterator<char>());
    oneInput(bytes.data(), bytes.size());
    std::printf("fuzz_serve_req: %s (%zu bytes) ok\n", path.c_str(),
                bytes.size());
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: fuzz_serve_req <corpus file or dir>...\n");
        return 2;
    }
    int rc = 0;
    for (int i = 1; i < argc; ++i) {
        const std::filesystem::path p(argv[i]);
        if (std::filesystem::is_directory(p)) {
            for (const auto& e :
                 std::filesystem::recursive_directory_iterator(p)) {
                if (e.is_regular_file())
                    rc |= replayFile(e.path());
            }
        } else {
            rc |= replayFile(p);
        }
    }
    return rc;
}

#endif // FUZZ_CORPUS_MAIN
