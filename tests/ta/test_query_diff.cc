/**
 * @file
 * Query-conformance differential suite: the acceptance test of the
 * windowed-query layer's exactness contract.
 *
 * For every workload trace in the suite — plus the fault-injected
 * drop trace and a salvaged trace — every windowed query answered
 * through the v2 footer index must BYTE-match the brute-force filter
 * of the full serial analysis (windowReport() on both sides), at 1, 2,
 * 4 and 8 query threads, across windows chosen to hit the edges:
 * empty, single-tick, whole-file-with-margins, first third, middle
 * half, tail, and entirely-before-the-trace. The same holds when the
 * index is absent (v1 file), ignored (--full-scan), or corrupted —
 * those paths must degrade to the full scan, never mis-answer.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <functional>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "ta/analyzer.h"
#include "ta/parallel.h"
#include "ta/query.h"
#include "ta/report.h"
#include "trace/index.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace cell {
namespace {

using Factory =
    std::function<std::unique_ptr<wl::WorkloadBase>(rt::CellSystem&)>;

trace::TraceData
record(const Factory& make, sim::MachineConfig mcfg = {},
       pdt::PdtConfig pcfg = {})
{
    rt::CellSystem sys(mcfg);
    pdt::Pdt tracer(sys, pcfg);
    auto workload = make(sys);
    workload->start();
    sys.run();
    EXPECT_TRUE(workload->verify());
    return tracer.finalize();
}

struct NamedTrace
{
    std::string name;
    trace::TraceData data;
};

std::vector<NamedTrace>
workloadTraces()
{
    std::vector<NamedTrace> out;
    out.push_back({"triad", record([](rt::CellSystem& sys) {
                       wl::TriadParams p;
                       p.n_elements = 4096;
                       p.n_spes = 2;
                       return std::make_unique<wl::Triad>(sys, p);
                   })});
    out.push_back({"matmul", record([](rt::CellSystem& sys) {
                       wl::MatmulParams p;
                       p.n = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Matmul>(sys, p);
                   })});
    out.push_back({"fft", record([](rt::CellSystem& sys) {
                       wl::FftParams p;
                       p.fft_size = 256;
                       p.n_ffts = 16;
                       p.batch = 4;
                       p.n_spes = 2;
                       return std::make_unique<wl::Fft>(sys, p);
                   })});
    out.push_back({"conv2d", record([](rt::CellSystem& sys) {
                       wl::Conv2dParams p;
                       p.width = 256;
                       p.height = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Conv2d>(sys, p);
                   })});
    out.push_back({"pipeline", record([](rt::CellSystem& sys) {
                       wl::PipelineParams p;
                       p.n_elements = 8192;
                       p.n_stages = 2;
                       return std::make_unique<wl::Pipeline>(sys, p);
                   })});
    out.push_back({"workqueue", record([](rt::CellSystem& sys) {
                       wl::WorkQueueParams p;
                       p.n_items = 32;
                       p.tile_elems = 256;
                       p.n_spes = 2;
                       return std::make_unique<wl::WorkQueue>(sys, p);
                   })});
    return out;
}

trace::TraceData
dropTrace()
{
    sim::MachineConfig mcfg;
    mcfg.faults.seed = 7;
    mcfg.faults.dma_delay_permille = 150;
    mcfg.faults.dma_delay_cycles = 3'000;
    mcfg.faults.mbox_stall_permille = 200;
    mcfg.faults.arena_exhaust_begin = 1;
    mcfg.faults.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
    return record(
        [](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        },
        mcfg, pcfg);
}

/** Edge-hitting windows for a trace spanning [start, end]. */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
windowsFor(const ta::TraceModel& m)
{
    const std::uint64_t s = m.startTb();
    const std::uint64_t e = m.endTb();
    const std::uint64_t span = e - s;
    return {
        {s + span / 2, s + span / 2},         // empty
        {s + span / 2, s + span / 2 + 1},     // single tick
        {s > 10 ? s - 10 : 0, e + 10},        // whole file + margins
        {s, s + span / 3},                    // first third
        {s + span / 4, s + (3 * span) / 4},   // middle half
        {s + (7 * span) / 8, e + 1},          // tail, inclusive end
        {0, s},                               // entirely before
    };
}

std::string
tempPath(const std::string& name)
{
    return ::testing::TempDir() + "/query_diff_" + name;
}

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

void
expectWindowsMatch(const std::string& path, const ta::Analysis& full,
                   bool expect_index, const std::string& what,
                   bool force_full_scan = false)
{
    ta::BlockCache cache;
    for (const auto& [from, to] : windowsFor(full.model)) {
        const ta::WindowResult brute = ta::queryWindow(full, from, to);
        const std::string expect = ta::windowReport(brute);
        for (const unsigned threads : kThreadCounts) {
            SCOPED_TRACE(what + " [" + std::to_string(from) + ", " +
                         std::to_string(to) + ") @" +
                         std::to_string(threads) + "t");
            ta::QueryOptions opt;
            opt.threads = threads;
            opt.force_full_scan = force_full_scan;
            opt.cache = &cache;
            const ta::WindowResult w =
                ta::queryWindowFile(path, from, to, opt);
            EXPECT_EQ(w.used_index, expect_index && !force_full_scan);
            EXPECT_EQ(ta::windowReport(w), expect);
        }
    }
}

TEST(QueryDiff, AllWorkloadsIndexedMatchBruteForceAtEveryThreadCount)
{
    for (const NamedTrace& t : workloadTraces()) {
        const std::string path = tempPath(t.name + ".v2.pdt");
        trace::WriteOptions wopt;
        wopt.index_stride = 64; // many entries even on tiny traces
        trace::writeFile(path, t.data, wopt);
        const ta::Analysis full = ta::analyze(t.data);
        expectWindowsMatch(path, full, /*expect_index=*/true, t.name);
        std::remove(path.c_str());
    }
}

TEST(QueryDiff, AllWorkloadsCompressedMatchBruteForceAtEveryThreadCount)
{
    // The same conformance bar, through the v3 compressed container:
    // indexed windowed queries on a compressed+indexed file must
    // byte-match the brute-force filter at every thread count.
    for (const NamedTrace& t : workloadTraces()) {
        const std::string path = tempPath(t.name + ".v3.pdt");
        trace::WriteOptions wopt;
        wopt.index_stride = 64;
        wopt.compress = true;
        trace::writeFile(path, t.data, wopt);
        const ta::Analysis full = ta::analyze(t.data);
        expectWindowsMatch(path, full, /*expect_index=*/true,
                           t.name + "-v3");
        std::remove(path.c_str());
    }
}

TEST(QueryDiff, CompressedReportsMatchUncompressedByteForByte)
{
    // Full and loss reports from a v3 file must equal the v1 file's,
    // byte for byte, serial and parallel — the container must be
    // invisible to every analysis output.
    std::vector<NamedTrace> traces = workloadTraces();
    traces.push_back({"drops", dropTrace()});
    for (const NamedTrace& t : traces) {
        SCOPED_TRACE(t.name);
        const std::string p1 = tempPath(t.name + "_cmp.pdt");
        const std::string p3 = tempPath(t.name + "_cmp.v3.pdt");
        trace::writeFile(p1, t.data);
        trace::writeFile(p3, t.data, trace::WriteOptions{.compress = true});

        const ta::Analysis ref = ta::analyze(trace::readFile(p1));
        const std::string expect_full = ta::fullReport(ref);
        std::ostringstream expect_loss;
        ta::printLossReport(expect_loss, ref);

        for (const unsigned threads : kThreadCounts) {
            const ta::Analysis a = ta::analyzeFileParallel(
                p3, ta::ParallelOptions{threads, 0});
            EXPECT_EQ(ta::fullReport(a), expect_full)
                << threads << " threads";
            std::ostringstream loss;
            ta::printLossReport(loss, a);
            EXPECT_EQ(loss.str(), expect_loss.str())
                << threads << " threads";
        }
        std::remove(p1.c_str());
        std::remove(p3.c_str());
    }
}

TEST(QueryDiff, CompressedFileWithoutIndexFallsBackToFullScan)
{
    const NamedTrace t = workloadTraces().front();
    const std::string path = tempPath("v3_noindex.pdt");
    trace::writeFile(path, t.data, trace::WriteOptions{.compress = true});
    const ta::Analysis full = ta::analyze(t.data);
    expectWindowsMatch(path, full, /*expect_index=*/false, "v3-noindex");
    std::remove(path.c_str());
}

TEST(QueryDiff, V1FileFallsBackToFullScanWithIdenticalAnswers)
{
    const NamedTrace t = workloadTraces().front();
    const std::string path = tempPath("v1_fallback.pdt");
    trace::writeFile(path, t.data);
    const ta::Analysis full = ta::analyze(t.data);
    expectWindowsMatch(path, full, /*expect_index=*/false, "v1");
    std::remove(path.c_str());
}

TEST(QueryDiff, ForceFullScanMatchesIndexedAnswers)
{
    const NamedTrace t = workloadTraces().front();
    const std::string path = tempPath("force_full.v2.pdt");
    trace::WriteOptions wopt;
    wopt.index_stride = 64;
    trace::writeFile(path, t.data, wopt);
    const ta::Analysis full = ta::analyze(t.data);
    expectWindowsMatch(path, full, /*expect_index=*/true, "forced",
                       /*force_full_scan=*/true);
    std::remove(path.c_str());
}

TEST(QueryDiff, FaultInjectedDropTraceIndexedMatchesBruteForce)
{
    const trace::TraceData data = dropTrace();
    bool has_drop = false;
    for (const trace::Record& r : data.records)
        has_drop |= r.kind == trace::kDropRecord;
    ASSERT_TRUE(has_drop);

    const std::string path = tempPath("drops.v2.pdt");
    trace::WriteOptions wopt;
    wopt.index_stride = 16; // entries land between drop epochs
    trace::writeFile(path, data, wopt);
    const ta::Analysis full = ta::analyze(data);
    expectWindowsMatch(path, full, /*expect_index=*/true, "drops");
    std::remove(path.c_str());
}

TEST(QueryDiff, SalvagedTraceQueriesMatchBruteForceAndNeverUseIndex)
{
    // Damage a v2 trace mid-record-region: salvage recovers a subset,
    // byte offsets shift, and the (intact!) footer index no longer
    // describes the salvaged record stream — salvage queries must
    // ignore it.
    std::vector<std::uint8_t> bytes = trace::writeBuffer(
        record([](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        }),
        trace::WriteOptions{.index_stride = 64});
    const std::size_t at = bytes.size() / 2;
    for (std::size_t i = 0; i < 200 && at + i < bytes.size(); ++i)
        bytes[at + i] = 0xFF;
    const std::string path = tempPath("salvaged.v2.pdt");
    {
        std::ofstream os(path, std::ios::binary);
        os.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }

    trace::ReadReport report;
    const trace::TraceData data = trace::readBufferSalvage(bytes, report);
    ASSERT_TRUE(report.salvaged);
    const ta::Analysis full = ta::analyze(data, /*lenient=*/true);

    ta::BlockCache cache;
    for (const auto& [from, to] : windowsFor(full.model)) {
        const std::string expect =
            ta::windowReport(ta::queryWindow(full, from, to));
        for (const unsigned threads : kThreadCounts) {
            SCOPED_TRACE("salvaged [" + std::to_string(from) + ", " +
                         std::to_string(to) + ") @" +
                         std::to_string(threads) + "t");
            ta::QueryOptions opt;
            opt.threads = threads;
            opt.salvage = true;
            opt.cache = &cache;
            const ta::WindowResult w =
                ta::queryWindowFile(path, from, to, opt);
            EXPECT_FALSE(w.used_index);
            EXPECT_EQ(ta::windowReport(w), expect);
        }
    }
    std::remove(path.c_str());
}

TEST(QueryDiff, CorruptedIndexDegradesToFullScanNeverMisanswers)
{
    const NamedTrace t = workloadTraces().front();
    std::vector<std::uint8_t> good = trace::writeBuffer(
        t.data, trace::WriteOptions{.index_stride = 64});
    const ta::Analysis full = ta::analyze(t.data);

    struct Mutation
    {
        const char* name;
        std::function<void(std::vector<std::uint8_t>&)> apply;
    };
    const Mutation mutations[] = {
        {"bad_checksum",
         [](std::vector<std::uint8_t>& b) { b[b.size() - 40] ^= 0x5A; }},
        {"bad_trailer_magic",
         [](std::vector<std::uint8_t>& b) { b[b.size() - 1] ^= 0xFF; }},
        {"truncated_footer",
         [](std::vector<std::uint8_t>& b) { b.resize(b.size() - 10); }},
    };

    for (const Mutation& m : mutations) {
        std::vector<std::uint8_t> bytes = good;
        m.apply(bytes);
        const std::string path =
            tempPath(std::string("corrupt_") + m.name + ".pdt");
        {
            std::ofstream os(path, std::ios::binary);
            os.write(reinterpret_cast<const char*>(bytes.data()),
                     static_cast<std::streamsize>(bytes.size()));
        }
        // The v1 record region is untouched, so the full-scan fallback
        // still answers exactly.
        const trace::IndexReadResult ir = trace::readIndexFile(path);
        EXPECT_FALSE(ir.valid) << m.name;
        expectWindowsMatch(path, full, /*expect_index=*/false, m.name);
        std::remove(path.c_str());
    }
}

TEST(QueryDiff, CoreRestrictedQueryMatchesBruteForce)
{
    const NamedTrace t = workloadTraces().front();
    const std::string path = tempPath("core_restricted.v2.pdt");
    trace::WriteOptions wopt;
    wopt.index_stride = 64;
    trace::writeFile(path, t.data, wopt);
    const ta::Analysis full = ta::analyze(t.data);
    const std::uint64_t s = full.model.startTb();
    const std::uint64_t span = full.model.spanTb();

    ta::BlockCache cache;
    const std::uint32_t n_cores = t.data.header.num_spes + 1;
    for (std::uint32_t core = 0; core < n_cores; ++core) {
        SCOPED_TRACE("core " + std::to_string(core));
        const std::uint64_t from = s + span / 4;
        const std::uint64_t to = s + (3 * span) / 4;
        const std::string expect = ta::windowReport(
            ta::queryWindow(full, from, to, static_cast<int>(core)));
        ta::QueryOptions opt;
        opt.threads = 2;
        opt.core = static_cast<int>(core);
        opt.cache = &cache;
        const ta::WindowResult w = ta::queryWindowFile(path, from, to, opt);
        EXPECT_TRUE(w.used_index);
        EXPECT_EQ(ta::windowReport(w), expect);
    }
    std::remove(path.c_str());
}

TEST(QueryDiff, BlockCacheServesRepeatQueriesAndStaysBounded)
{
    const NamedTrace t = workloadTraces().front();
    const std::string path = tempPath("cache.v2.pdt");
    trace::WriteOptions wopt;
    wopt.index_stride = 64;
    trace::writeFile(path, t.data, wopt);
    const ta::Analysis full = ta::analyze(t.data);
    const std::uint64_t s = full.model.startTb();
    const std::uint64_t e = full.model.endTb();

    ta::BlockCache cache(1 << 20);
    ta::QueryOptions opt;
    opt.threads = 1;
    opt.cache = &cache;
    (void)ta::queryWindowFile(path, s, e + 1, opt);
    const auto first = cache.stats();
    EXPECT_GT(first.misses, 0u);
    (void)ta::queryWindowFile(path, s, e + 1, opt);
    const auto second = cache.stats();
    EXPECT_EQ(second.misses, first.misses); // all blocks served hot
    EXPECT_GT(second.hits, first.hits);
    EXPECT_LE(cache.sizeBytes(), std::size_t{1} << 20);
    std::remove(path.c_str());
}

} // namespace
} // namespace cell
