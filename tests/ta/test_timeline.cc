/**
 * @file
 * Timeline renderer tests (ASCII and SVG) on synthetic traces.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "ta/timeline.h"

namespace cell::ta {
namespace {

using trace::Record;
using trace::TraceData;

/** 1 SPE: run 0..1000 with a DMA wait 200..600. */
TraceData
synthetic()
{
    TraceData t;
    t.header.num_spes = 1;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {"render_me"};

    auto add = [&](std::uint64_t tb, std::uint8_t kind, std::uint8_t phase,
                   std::uint64_t a = 0) {
        Record r{};
        r.kind = kind;
        r.phase = phase;
        r.core = 1;
        r.timestamp = static_cast<std::uint32_t>(1'000'000 - tb);
        r.a = a;
        t.records.push_back(r);
    };
    Record sync{};
    sync.kind = trace::kSyncRecord;
    sync.core = 1;
    sync.timestamp = 1'000'000;
    sync.a = 1'000'000;
    sync.b = 0;
    t.records.push_back(sync);

    auto op = [](rt::ApiOp o) { return static_cast<std::uint8_t>(o); };
    add(0, op(rt::ApiOp::SpuStart), trace::kPhaseBegin);
    add(200, op(rt::ApiOp::SpuTagWaitAll), trace::kPhaseBegin, 1);
    add(600, op(rt::ApiOp::SpuTagWaitAll), trace::kPhaseEnd, 1);
    add(1000, op(rt::ApiOp::SpuStop), trace::kPhaseBegin);
    return t;
}

TEST(Timeline, AsciiShowsRunAndWaitRegions)
{
    const TraceModel m = TraceModel::build(synthetic());
    const IntervalSet ivs = IntervalSet::build(m);
    const std::string out =
        renderAscii(m, ivs, TimelineOptions{.width = 100});

    ASSERT_NE(out.find("SPE0 (render_me)"), std::string::npos);
    // Wait region 200..600 of a 1000-tick span: 'D' cells in columns
    // ~20..60, compute '#' elsewhere inside the run.
    const auto row_start = out.find("SPE0");
    const auto bar = out.find('|', row_start);
    ASSERT_NE(bar, std::string::npos);
    const std::string cells = out.substr(bar + 1, 100);
    EXPECT_EQ(cells[10], '#');
    EXPECT_EQ(cells[40], 'D');
    EXPECT_EQ(cells[80], '#');
}

TEST(Timeline, AsciiRespectsWindow)
{
    const TraceModel m = TraceModel::build(synthetic());
    const IntervalSet ivs = IntervalSet::build(m);
    TimelineOptions opt;
    opt.width = 50;
    opt.start_tb = 200;
    opt.end_tb = 600; // only the wait
    const std::string out = renderAscii(m, ivs, opt);
    const auto bar = out.find('|', out.find("SPE0"));
    const std::string cells = out.substr(bar + 1, 50);
    for (char c : cells)
        EXPECT_EQ(c, 'D') << out;
}

TEST(Timeline, AsciiZeroWidthThrows)
{
    const TraceModel m = TraceModel::build(synthetic());
    const IntervalSet ivs = IntervalSet::build(m);
    EXPECT_THROW(renderAscii(m, ivs, TimelineOptions{.width = 0}),
                 std::invalid_argument);
}

TEST(Timeline, SvgIsWellFormedish)
{
    const TraceModel m = TraceModel::build(synthetic());
    const IntervalSet ivs = IntervalSet::build(m);
    const std::string svg = renderSvg(m, ivs);
    EXPECT_EQ(svg.rfind("<svg", 0), std::string::npos ? 0u : 0u);
    EXPECT_NE(svg.find("render_me"), std::string::npos);
    EXPECT_NE(svg.find("#f44336"), std::string::npos); // DMA-wait red
    EXPECT_NE(svg.find("</svg>"), std::string::npos);
    // Every <rect has a closing.
    std::size_t opens = 0;
    for (std::size_t p = svg.find("<rect"); p != std::string::npos;
         p = svg.find("<rect", p + 1))
        ++opens;
    EXPECT_GT(opens, 2u);
}

TEST(Timeline, SvgHidePpeRow)
{
    const TraceModel m = TraceModel::build(synthetic());
    const IntervalSet ivs = IntervalSet::build(m);
    TimelineOptions opt;
    opt.show_ppe = false;
    const std::string svg = renderSvg(m, ivs, opt);
    EXPECT_EQ(svg.find(">PPE<"), std::string::npos);
}

TEST(Timeline, WriteSvgCreatesFile)
{
    const TraceModel m = TraceModel::build(synthetic());
    const IntervalSet ivs = IntervalSet::build(m);
    const std::string path = ::testing::TempDir() + "/tl_test.svg";
    writeSvg(path, m, ivs);
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string first;
    std::getline(is, first);
    EXPECT_NE(first.find("<svg"), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace cell::ta
