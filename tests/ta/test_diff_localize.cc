/**
 * @file
 * Perturb-and-localize differential tests for the cross-trace diff
 * engine (`ta diff`).
 *
 * The scheme: generate a scenario trace A, pick a stall interval whose
 * End tick is spanned by no other non-Run interval on its core, and
 * surgically delay that core from that tick (trace::delay). The diff
 * of A against the perturbed B must then
 *
 *  - localize the first divergent window to the one containing the
 *    perturbation tick,
 *  - attribute the delta to the perturbed interval's bucket with the
 *    exact injected magnitude, and
 *  - produce byte-identical reports across container versions
 *    (v1/v2/v3), read modes (strict/salvage), and thread counts (1/4).
 *
 * The salvage axis reads undamaged files through the salvage path —
 * exact attribution must survive the different decode route. A
 * separate case damages one side for real and checks the serve-style
 * auto-downgrade contract (diff still completes, notes what was lost).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <unistd.h>
#include <vector>

#include "ta/analyzer.h"
#include "ta/compare.h"
#include "ta/intervals.h"
#include "trace/gen.h"
#include "trace/reader.h"
#include "trace/surgery.h"
#include "trace/writer.h"

namespace cell {
namespace {

namespace gen = trace::gen;

/** Stall class -> attribution bucket; Run/Other have none. */
std::optional<ta::DiffBucket>
bucketFor(ta::IntervalClass cls)
{
    switch (cls) {
    case ta::IntervalClass::DmaWait:
        return ta::DiffBucket::DmaWait;
    case ta::IntervalClass::MailboxWait:
        return ta::DiffBucket::MboxWait;
    case ta::IntervalClass::SignalWait:
        return ta::DiffBucket::SignalWait;
    case ta::IntervalClass::DmaCommand:
        return ta::DiffBucket::DmaCmd;
    case ta::IntervalClass::PpeCall:
        return ta::DiffBucket::PpeCall;
    default:
        return std::nullopt;
    }
}

/** A perturbation site with a provable attribution outcome. */
struct Site
{
    std::uint16_t core = 0;
    std::uint64_t t = 0; ///< delay-from tick (the interval's End)
    ta::DiffBucket bucket = ta::DiffBucket::Compute;
};

/**
 * Find an interval whose End tick t is spanned (start < t <= end) by
 * exactly one non-Run interval on its core — itself. Delaying that
 * core from t then grows precisely this interval: its bucket moves by
 * +delta and every other non-Run duration on every core is unchanged,
 * so the expected attribution is exact, not approximate.
 */
std::optional<Site>
findSite(const ta::Analysis& a)
{
    for (const auto& per_core : a.intervals.per_core) {
        for (const ta::Interval& iv : per_core) {
            const auto bucket = bucketFor(iv.cls);
            if (!bucket || iv.truncated || iv.end_tb <= iv.start_tb)
                continue;
            const std::uint64_t t = iv.end_tb;
            std::size_t spanners = 0;
            for (const ta::Interval& other : per_core) {
                if (other.cls != ta::IntervalClass::Run &&
                    other.start_tb < t && t <= other.end_tb)
                    ++spanners;
            }
            if (spanners == 1)
                return Site{iv.core, t, *bucket};
        }
    }
    return std::nullopt;
}

std::string
tmpPath(const std::string& tag)
{
    return ::testing::TempDir() + "/diff_localize_" +
           std::to_string(::getpid()) + "_" + tag + ".pdt";
}

/** Report with the salvage markers cleared, so strict and salvage
 *  renderings of the same differential byte-compare equal. */
std::string
normalizedReport(ta::DiffResult r)
{
    r.salvaged_a = r.salvaged_b = false;
    return ta::diffReport(r);
}

TEST(DiffLocalize, PerturbationLocalizesAcrossContainersModesThreads)
{
    const struct
    {
        const char* tag;
        trace::WriteOptions wopt;
    } containers[] = {
        {"v1", {}},
        {"v2", {/*index_stride=*/32, /*compress=*/false}},
        {"v3", {/*index_stride=*/32, /*compress=*/true}},
    };

    for (std::size_t s = 0; s < gen::kNumScenarios; ++s) {
        const auto scenario = static_cast<gen::Scenario>(s);
        SCOPED_TRACE(std::string("scenario ") +
                     gen::scenarioName(scenario));

        // A site may not exist at every seed (e.g. every stall End
        // coincides with another spanner); fall back across seeds so
        // each scenario still contributes a case.
        gen::GenOptions gopt;
        gopt.scenario = static_cast<int>(s);
        std::optional<Site> site;
        trace::TraceData a_data;
        for (std::uint64_t seed = 1; seed <= 12 && !site; ++seed) {
            gopt.seed = seed;
            a_data = gen::generate(gopt);
            site = findSite(ta::analyze(a_data));
        }
        ASSERT_TRUE(site.has_value())
            << "no isolated perturbation site in 12 seeds";
        SCOPED_TRACE("seed " + std::to_string(gopt.seed) + " core " +
                     std::to_string(site->core) + " tick " +
                     std::to_string(site->t));

        const ta::Analysis a = ta::analyze(a_data);
        const std::uint64_t span = a.model.spanTb();
        trace::DelayOptions dopt;
        dopt.core = site->core;
        dopt.at = site->t;
        dopt.delta = span / 5 + 97;
        const trace::TraceData b_data = trace::delay(a_data, dopt);

        std::vector<std::string> reports;
        std::vector<std::string> files;
        for (const auto& c : containers) {
            SCOPED_TRACE(c.tag);
            const std::string pa =
                tmpPath(std::string(c.tag) + "_s" + std::to_string(s) +
                        "_a");
            const std::string pb =
                tmpPath(std::string(c.tag) + "_s" + std::to_string(s) +
                        "_b");
            trace::writeFile(pa, a_data, c.wopt);
            trace::writeFile(pb, b_data, c.wopt);
            files.push_back(pa);
            files.push_back(pb);

            for (const bool salvage : {false, true}) {
                for (const unsigned threads : {1u, 4u}) {
                    SCOPED_TRACE(std::string(salvage ? "salvage"
                                                     : "strict") +
                                 " threads=" + std::to_string(threads));
                    ta::DiffFileOptions fopt;
                    fopt.threads = threads;
                    fopt.salvage = salvage;
                    const ta::DiffFileOutcome out =
                        ta::diffFiles(pa, pb, fopt);
                    const ta::DiffResult& r = out.result;

                    // Undamaged files: salvage must lose nothing.
                    EXPECT_TRUE(out.note_a.empty()) << out.note_a;
                    EXPECT_TRUE(out.note_b.empty()) << out.note_b;
                    EXPECT_EQ(r.salvaged_a, salvage);
                    EXPECT_EQ(r.salvaged_b, salvage);

                    // Localization: the first divergent window
                    // contains the perturbation tick.
                    ASSERT_TRUE(r.diverged);
                    EXPECT_LE(r.first.from_tb, site->t);
                    EXPECT_LT(site->t, r.first.to_tb);
                    EXPECT_GT(r.first.score, 0u);
                    EXPECT_GE(r.windows_diverged, 1u);

                    // Exact attribution: the perturbed bucket moved by
                    // exactly +delta; every interval found a partner.
                    ASSERT_TRUE(r.have_mover);
                    EXPECT_EQ(r.mover, site->bucket);
                    EXPECT_EQ(r.mover_tb,
                              static_cast<std::int64_t>(dopt.delta));
                    std::uint64_t matched = 0;
                    for (const ta::CoreDelta& d : r.cores) {
                        matched += d.matched;
                        EXPECT_EQ(d.unmatched_a, 0u);
                        EXPECT_EQ(d.unmatched_b, 0u);
                        EXPECT_EQ(d.unmatched_tb_a, 0u);
                        EXPECT_EQ(d.unmatched_tb_b, 0u);
                    }
                    EXPECT_GT(matched, 0u);

                    reports.push_back(normalizedReport(r));
                }
            }
        }
        // One differential, twelve routes (3 containers x 2 modes x 2
        // thread counts): all must render the identical report.
        for (std::size_t i = 1; i < reports.size(); ++i)
            EXPECT_EQ(reports[i], reports[0]) << "route " << i;
        for (const std::string& f : files)
            std::remove(f.c_str());
    }
}

TEST(DiffLocalize, AutoDowngradeSalvagesADamagedSide)
{
    gen::GenOptions gopt;
    gopt.seed = 5;
    const trace::TraceData a_data = gen::generate(gopt);
    const std::string pa = tmpPath("dmg_a");
    const std::string pb = tmpPath("dmg_b");
    trace::writeFile(pa, a_data);
    trace::writeFile(pb, a_data);
    // Chop B mid-record so the strict read throws.
    {
        std::ifstream is(pb, std::ios::binary | std::ios::ate);
        const auto size = static_cast<std::uint64_t>(is.tellg());
        is.close();
        std::filesystem::resize_file(pb, size - 13);
    }

    ta::DiffFileOptions strict;
    strict.threads = 2;
    EXPECT_THROW(ta::diffFiles(pa, pb, strict), std::exception);

    ta::DiffFileOptions degrade = strict;
    degrade.auto_downgrade = true;
    const ta::DiffFileOutcome out = ta::diffFiles(pa, pb, degrade);
    EXPECT_TRUE(out.note_a.empty()) << out.note_a;
    EXPECT_NE(out.note_b.find("downgraded to salvage"),
              std::string::npos)
        << out.note_b;
    EXPECT_FALSE(out.result.salvaged_a);
    EXPECT_TRUE(out.result.salvaged_b);
    // The truncated tail shows up as unmatched/size deltas, never as a
    // crash — that is the whole degradation contract.
    EXPECT_LE(out.result.records_b, out.result.records_a);

    std::remove(pa.c_str());
    std::remove(pb.c_str());
}

} // namespace
} // namespace cell
