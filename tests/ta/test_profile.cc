/**
 * @file
 * Activity-profile tests on synthetic and real traces.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "pdt/tracer.h"
#include "ta/profile.h"
#include "wl/triad.h"

namespace cell::ta {
namespace {

using trace::Record;
using trace::TraceData;

/** 1 SPE: run 0..1000, fully stalled 400..600. */
TraceData
synthetic()
{
    TraceData t;
    t.header.num_spes = 1;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs = {"p"};

    Record sync{};
    sync.kind = trace::kSyncRecord;
    sync.core = 1;
    sync.timestamp = 1'000'000;
    sync.a = 1'000'000;
    sync.b = 0;
    t.records.push_back(sync);

    auto add = [&](std::uint64_t tb, rt::ApiOp op, std::uint8_t phase,
                   std::uint64_t a = 0) {
        Record r{};
        r.kind = static_cast<std::uint8_t>(op);
        r.phase = phase;
        r.core = 1;
        r.timestamp = static_cast<std::uint32_t>(1'000'000 - tb);
        r.a = a;
        t.records.push_back(r);
    };
    add(0, rt::ApiOp::SpuStart, trace::kPhaseBegin);
    add(400, rt::ApiOp::SpuTagWaitAll, trace::kPhaseBegin, 1);
    add(600, rt::ApiOp::SpuTagWaitAll, trace::kPhaseEnd, 1);
    add(1000, rt::ApiOp::SpuStop, trace::kPhaseBegin);
    return t;
}

TEST(ActivityProfile, FractionsMatchHandComputedValues)
{
    const Analysis a = analyze(synthetic());
    const ActivityProfile p =
        ActivityProfile::build(a.model, a.intervals, 10);
    ASSERT_EQ(p.buckets, 10u);
    EXPECT_EQ(p.bucket_tb, 100u);
    // SPE0 (core 1): running everywhere, stalled in buckets 4 and 5.
    for (std::uint32_t b = 0; b < 10; ++b) {
        EXPECT_NEAR(p.running[1][b], 1.0, 1e-9) << "bucket " << b;
        const double want_stall = (b == 4 || b == 5) ? 1.0 : 0.0;
        EXPECT_NEAR(p.stalled[1][b], want_stall, 1e-9) << "bucket " << b;
    }
    EXPECT_NEAR(p.busyFrac(1, 0), 1.0, 1e-9);
    EXPECT_NEAR(p.busyFrac(1, 4), 0.0, 1e-9);
}

TEST(ActivityProfile, PartialBucketOverlap)
{
    const Analysis a = analyze(synthetic());
    // 4 buckets of 250: the stall [400,600) covers 40% of bucket 1
    // ([250,500)) and 40% of bucket 2 ([500,750)).
    const ActivityProfile p =
        ActivityProfile::build(a.model, a.intervals, 4);
    EXPECT_NEAR(p.stalled[1][1], 0.4, 1e-9);
    EXPECT_NEAR(p.stalled[1][2], 0.4, 1e-9);
    EXPECT_NEAR(p.stalled[1][0], 0.0, 1e-9);
    EXPECT_NEAR(p.stalled[1][3], 0.0, 1e-9);
}

TEST(ActivityProfile, PrintedRowsHaveBucketWidth)
{
    const Analysis a = analyze(synthetic());
    std::ostringstream os;
    printActivity(os, a, 40);
    const std::string out = os.str();
    const auto pos = out.find("SPE0");
    ASSERT_NE(pos, std::string::npos);
    const auto bar = out.find('|', pos);
    const auto end = out.find('|', bar + 1);
    EXPECT_EQ(end - bar - 1, 40u);
    // The stalled middle renders as 'x'.
    EXPECT_NE(out.find('x'), std::string::npos);
    EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(ActivityProfile, CsvHasOneRowPerCoreBucket)
{
    const Analysis a = analyze(synthetic());
    std::ostringstream os;
    exportActivityCsv(os, a, 8);
    std::size_t lines = 0;
    for (char c : os.str())
        lines += c == '\n' ? 1 : 0;
    EXPECT_EQ(lines, 1u + 2u * 8u); // header + (PPE + SPE0) x 8
}

TEST(ActivityProfile, RealTraceProfilesAreSane)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams params;
    params.n_elements = 8192;
    params.n_spes = 2;
    wl::Triad wl(sys, params);
    wl.start();
    sys.run();
    ASSERT_TRUE(wl.verify());
    const Analysis a = analyze(tracer.finalize());
    const ActivityProfile p =
        ActivityProfile::build(a.model, a.intervals, 50);
    for (std::uint16_t core = 1; core <= 2; ++core) {
        double total_run = 0;
        for (std::uint32_t b = 0; b < p.buckets; ++b) {
            EXPECT_GE(p.running[core][b], 0.0);
            EXPECT_LE(p.running[core][b], 1.0);
            EXPECT_LE(p.stalled[core][b], 1.0);
            total_run += p.running[core][b];
        }
        EXPECT_GT(total_run, 1.0); // the SPEs actually ran
    }
}

TEST(ActivityProfile, EmptyTraceDoesNotDivideByZero)
{
    TraceData t;
    t.header.num_spes = 1;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs.resize(1);
    const Analysis a = analyze(t);
    const ActivityProfile p =
        ActivityProfile::build(a.model, a.intervals, 10);
    for (std::uint32_t b = 0; b < p.buckets; ++b)
        EXPECT_EQ(p.running[1][b], 0.0);
}

} // namespace
} // namespace cell::ta
