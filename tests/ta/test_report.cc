/**
 * @file
 * HTML report tests.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "pdt/tracer.h"
#include "ta/report.h"
#include "wl/triad.h"

namespace cell::ta {
namespace {

Analysis
sampleAnalysis()
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 8192;
    p.n_spes = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    return analyze(tracer.finalize());
}

TEST(HtmlReport, ContainsEverySection)
{
    const Analysis a = sampleAnalysis();
    const std::string html = renderHtmlReport(a, "test run");
    EXPECT_NE(html.find("<!DOCTYPE html>"), std::string::npos);
    EXPECT_NE(html.find("test run"), std::string::npos);
    EXPECT_NE(html.find("Timeline"), std::string::npos);
    EXPECT_NE(html.find("<svg"), std::string::npos);
    EXPECT_NE(html.find("SPE time breakdown"), std::string::npos);
    EXPECT_NE(html.find("DMA statistics"), std::string::npos);
    EXPECT_NE(html.find("Event counts"), std::string::npos);
    EXPECT_NE(html.find("Tracing self-observation"), std::string::npos);
    EXPECT_NE(html.find("SPE0"), std::string::npos);
    EXPECT_NE(html.find("</html>"), std::string::npos);
}

TEST(HtmlReport, TitleIsEscaped)
{
    const Analysis a = sampleAnalysis();
    const std::string html = renderHtmlReport(a, "a < b & c > d");
    EXPECT_NE(html.find("a &lt; b &amp; c &gt; d"), std::string::npos);
    EXPECT_EQ(html.find("<title>a < b"), std::string::npos);
}

TEST(HtmlReport, BalancedTags)
{
    const Analysis a = sampleAnalysis();
    const std::string html = renderHtmlReport(a);
    auto count = [&](const std::string& needle) {
        std::size_t n = 0;
        for (std::size_t p = html.find(needle); p != std::string::npos;
             p = html.find(needle, p + 1))
            ++n;
        return n;
    };
    EXPECT_EQ(count("<table>"), count("</table>"));
    EXPECT_EQ(count("<tr>"), count("</tr>"));
    EXPECT_EQ(count("<h2>"), count("</h2>"));
    EXPECT_EQ(count("<svg"), count("</svg>"));
}

TEST(HtmlReport, WriteCreatesFile)
{
    const Analysis a = sampleAnalysis();
    const std::string path = ::testing::TempDir() + "/rep_test.html";
    writeHtmlReport(path, a, "file test");
    std::ifstream is(path);
    ASSERT_TRUE(is.good());
    std::string all((std::istreambuf_iterator<char>(is)),
                    std::istreambuf_iterator<char>());
    EXPECT_NE(all.find("file test"), std::string::npos);
    std::remove(path.c_str());
    EXPECT_THROW(writeHtmlReport("/no/such/dir/x.html", a),
                 std::runtime_error);
}

} // namespace
} // namespace cell::ta
