/**
 * @file
 * TraceModel tests: global-time reconstruction from raw core-local
 * clocks — the analyzer's trickiest obligation, exercised with
 * hand-built traces including decrementer and timebase wrap-arounds.
 */

#include <gtest/gtest.h>

#include "ta/model.h"

namespace cell::ta {
namespace {

using trace::Record;
using trace::TraceData;

TraceData
emptyTrace(std::uint32_t spes = 2)
{
    TraceData t;
    t.header.num_spes = spes;
    t.header.core_hz = 3'200'000'000ULL;
    t.header.timebase_divider = 120;
    t.spe_programs.resize(spes);
    return t;
}

Record
spuSync(std::uint16_t core, std::uint32_t dec, std::uint64_t tb)
{
    Record r{};
    r.kind = trace::kSyncRecord;
    r.core = core;
    r.timestamp = dec;
    r.a = dec;
    r.b = tb;
    return r;
}

Record
spuEvent(std::uint16_t core, std::uint32_t dec,
         rt::ApiOp op = rt::ApiOp::SpuUserEvent,
         std::uint8_t phase = trace::kPhaseBegin)
{
    Record r{};
    r.kind = static_cast<std::uint8_t>(op);
    r.phase = phase;
    r.core = core;
    r.timestamp = dec;
    return r;
}

TEST(TraceModel, EmptyTraceBuilds)
{
    const TraceModel m = TraceModel::build(emptyTrace());
    EXPECT_EQ(m.cores().size(), 3u);
    EXPECT_EQ(m.spanTb(), 0u);
    EXPECT_EQ(m.ppe().label, "PPE");
}

TEST(TraceModel, LabelsIncludeProgramNames)
{
    TraceData t = emptyTrace(2);
    t.spe_programs[1] = "fft_spu";
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.spe(0).label, "SPE0");
    EXPECT_EQ(m.spe(1).label, "SPE1 (fft_spu)");
}

TEST(TraceModel, SpuTimesComeFromDownCounter)
{
    TraceData t = emptyTrace();
    // Sync: decrementer 1000 == timebase 5000.
    t.records.push_back(spuSync(1, 1000, 5000));
    // Decrementer counts DOWN: value 990 is 10 ticks later.
    t.records.push_back(spuEvent(1, 990));
    t.records.push_back(spuEvent(1, 900));
    const TraceModel m = TraceModel::build(t);
    ASSERT_EQ(m.spe(0).events.size(), 3u);
    EXPECT_EQ(m.spe(0).events[1].time_tb, 5010u);
    EXPECT_EQ(m.spe(0).events[2].time_tb, 5100u);
}

TEST(TraceModel, SpuDecrementerWrapIsHandled)
{
    TraceData t = emptyTrace();
    // Sync near the bottom of the counter.
    t.records.push_back(spuSync(1, 5, 100));
    // The counter wraps 0,FFFFFFFF,...: value 0xFFFFFFFD is 8 later.
    t.records.push_back(spuEvent(1, 0xFFFF'FFFD));
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.spe(0).events[1].time_tb, 108u);
}

TEST(TraceModel, PpeTimesComeFromUpCounterLow32)
{
    TraceData t = emptyTrace();
    Record sync{};
    sync.kind = trace::kSyncRecord;
    sync.core = 0;
    sync.timestamp = 0xFFFF'FFF0u; // low 32 bits near wrap
    sync.a = sync.timestamp;
    sync.b = 0x1'FFFF'FFF0ULL; // full 64-bit timebase
    t.records.push_back(sync);

    Record ev = spuEvent(0, 0x10); // low32 wrapped past zero
    t.records.push_back(ev);
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.ppe().events[1].time_tb, 0x2'0000'0010ULL);
}

TEST(TraceModel, LaterSyncRebasesTheClock)
{
    TraceData t = emptyTrace();
    t.records.push_back(spuSync(1, 1000, 5000));
    t.records.push_back(spuEvent(1, 950)); // tb 5050
    t.records.push_back(spuSync(1, 400, 9000)); // rebased
    t.records.push_back(spuEvent(1, 390)); // tb 9010
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.spe(0).events[1].time_tb, 5050u);
    EXPECT_EQ(m.spe(0).events[3].time_tb, 9010u);
}

TEST(TraceModel, EventBeforeSyncThrows)
{
    TraceData t = emptyTrace();
    t.records.push_back(spuEvent(1, 100));
    EXPECT_THROW(TraceModel::build(t), std::runtime_error);
}

TEST(TraceModel, BadCoreIdThrows)
{
    TraceData t = emptyTrace(1);
    t.records.push_back(spuEvent(7, 100));
    EXPECT_THROW(TraceModel::build(t), std::runtime_error);
}

TEST(TraceModel, MonotonicityIsEnforcedPerCore)
{
    TraceData t = emptyTrace();
    t.records.push_back(spuSync(1, 1000, 5000));
    t.records.push_back(spuEvent(1, 900)); // tb 5100
    // A sync that would place the next event earlier (clock skew):
    t.records.push_back(spuSync(1, 1000, 5050));
    t.records.push_back(spuEvent(1, 999)); // raw tb 5051 < 5100
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.spe(0).events[3].time_tb, 5100u); // clamped
}

TEST(TraceModel, SpanCoversAllCores)
{
    TraceData t = emptyTrace();
    t.records.push_back(spuSync(1, 1000, 100));
    t.records.push_back(spuEvent(1, 990)); // tb 110
    t.records.push_back(spuSync(2, 1000, 50));
    t.records.push_back(spuEvent(2, 700)); // tb 350
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.startTb(), 50u);
    EXPECT_EQ(m.endTb(), 350u);
    EXPECT_EQ(m.spanTb(), 300u);
}

TEST(TraceModel, UnitConversions)
{
    const TraceModel m = TraceModel::build(emptyTrace());
    // 1 tb tick = 120 cycles at 3.2 GHz = 37.5 ns.
    EXPECT_DOUBLE_EQ(m.tbToNs(1), 37.5);
    EXPECT_DOUBLE_EQ(m.tbToUs(1000), 37.5);
    EXPECT_EQ(m.tbToCycles(10), 1200u);
}

TEST(TraceModel, InterleavedCoresKeepIndependentClocks)
{
    TraceData t = emptyTrace();
    t.records.push_back(spuSync(1, 100, 1000));
    t.records.push_back(spuSync(2, 50000, 1000));
    t.records.push_back(spuEvent(1, 90));    // tb 1010
    t.records.push_back(spuEvent(2, 49990)); // tb 1010
    const TraceModel m = TraceModel::build(t);
    EXPECT_EQ(m.spe(0).events[1].time_tb, 1010u);
    EXPECT_EQ(m.spe(1).events[1].time_tb, 1010u);
}

} // namespace
} // namespace cell::ta
