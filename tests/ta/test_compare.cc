/**
 * @file
 * Trace-comparison tests: deltas computed from two real traced runs
 * and from synthetic analyses.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "pdt/tracer.h"
#include "ta/compare.h"
#include "wl/triad.h"

namespace cell::ta {
namespace {

Analysis
tracedTriad(std::uint32_t buffering)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    wl::TriadParams p;
    p.n_elements = 16384;
    p.n_spes = 2;
    p.buffering = buffering;
    p.compute_per_elem = 2;
    wl::Triad wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    return analyze(tracer.finalize());
}

TEST(Compare, SingleToDoubleBufferingShrinksDmaWait)
{
    const Analysis a = tracedTriad(1);
    const Analysis b = tracedTriad(2);
    const Comparison cmp = Comparison::build(a, b);

    EXPECT_LT(cmp.span_ratio, 1.0); // B faster
    for (std::uint32_t s = 0; s < 2; ++s) {
        EXPECT_TRUE(cmp.spu[s].ran_in_both);
        EXPECT_LT(cmp.spu[s].dma_wait_tb, 0); // less waiting in B
        EXPECT_LT(cmp.spu[s].run_tb, 0);      // shorter run in B
    }
}

TEST(Compare, IdenticalRunsCompareAsEqual)
{
    const Analysis a = tracedTriad(2);
    const Analysis b = tracedTriad(2);
    const Comparison cmp = Comparison::build(a, b);
    EXPECT_DOUBLE_EQ(cmp.span_ratio, 1.0);
    EXPECT_DOUBLE_EQ(cmp.records_ratio, 1.0);
    for (const SpuDelta& d : cmp.spu) {
        EXPECT_EQ(d.run_tb, 0);
        EXPECT_EQ(d.dma_wait_tb, 0);
        EXPECT_EQ(d.mbox_wait_tb, 0);
    }
}

TEST(Compare, PrintedReportNamesTheMover)
{
    const Analysis a = tracedTriad(1);
    const Analysis b = tracedTriad(2);
    std::ostringstream os;
    printComparison(os, a, b);
    const std::string out = os.str();
    EXPECT_NE(out.find("Trace comparison"), std::string::npos);
    EXPECT_NE(out.find("biggest mover: DMA wait"), std::string::npos);
    EXPECT_NE(out.find("SPE0"), std::string::npos);
}

TEST(Compare, CoreMapMismatchIsEmptyForEqualCoreCounts)
{
    const Analysis a = tracedTriad(1);
    const Analysis b = tracedTriad(2);
    EXPECT_TRUE(coreMapMismatch(a, b).empty());
    EXPECT_TRUE(coreMapMismatch(a, a).empty());
}

TEST(Compare, CoreMapMismatchNamesBothMaps)
{
    // A traced run (the machine records all 8 SPEs) against a 1-SPE
    // analysis: the diagnostic must show the disagreement AND both
    // complete core maps, so the caller can see exactly which cores
    // each trace recorded.
    const Analysis a = tracedTriad(2);
    trace::TraceData empty;
    empty.header.num_spes = 1;
    empty.header.core_hz = a.model.header().core_hz;
    empty.header.timebase_divider = a.model.header().timebase_divider;
    empty.spe_programs.resize(1);
    const Analysis b = analyze(empty);

    const std::string msg = coreMapMismatch(a, b);
    ASSERT_FALSE(msg.empty());
    EXPECT_NE(msg.find("8 SPE(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("1 SPE(s)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("A cores:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("B cores:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("PPE"), std::string::npos) << msg;
    EXPECT_NE(msg.find("SPE1"), std::string::npos) << msg;
    // Both directions flag it.
    EXPECT_FALSE(coreMapMismatch(b, a).empty());
}

TEST(Compare, HandlesDifferentSpeCounts)
{
    // Compare a 2-SPE run against an analysis with no SPE activity:
    // deltas exist only for SPEs present in both.
    const Analysis a = tracedTriad(2);
    trace::TraceData empty;
    empty.header.num_spes = 1;
    empty.header.core_hz = a.model.header().core_hz;
    empty.header.timebase_divider = a.model.header().timebase_divider;
    empty.spe_programs.resize(1);
    const Analysis b = analyze(empty);
    const Comparison cmp = Comparison::build(a, b);
    ASSERT_EQ(cmp.spu.size(), 1u);
    EXPECT_FALSE(cmp.spu[0].ran_in_both);
}

} // namespace
} // namespace cell::ta
