/**
 * @file
 * Interval-matcher tests on hand-built event streams.
 */

#include <gtest/gtest.h>

#include "ta/intervals.h"

namespace cell::ta {
namespace {

using trace::Record;
using trace::TraceData;

struct StreamBuilder
{
    TraceData t;

    explicit StreamBuilder(std::uint32_t spes = 1)
    {
        t.header.num_spes = spes;
        t.header.core_hz = 3'200'000'000ULL;
        t.header.timebase_divider = 120;
        t.spe_programs.resize(spes);
        // One sync per core at tb 0 with an up-counting raw clock so
        // raw == tb for PPE; SPE uses a down counter from 10^6.
        Record ppe_sync{};
        ppe_sync.kind = trace::kSyncRecord;
        ppe_sync.core = 0;
        ppe_sync.a = 0;
        ppe_sync.b = 0;
        t.records.push_back(ppe_sync);
        for (std::uint32_t s = 0; s < spes; ++s) {
            Record sync{};
            sync.kind = trace::kSyncRecord;
            sync.core = static_cast<std::uint16_t>(s + 1);
            sync.timestamp = 1'000'000;
            sync.a = 1'000'000;
            sync.b = 0;
            t.records.push_back(sync);
        }
    }

    /** Append an SPE event at timebase @p tb. */
    StreamBuilder&
    spu(std::uint32_t spe, std::uint64_t tb, rt::ApiOp op,
        trace::Record proto = {})
    {
        Record r = proto;
        r.kind = static_cast<std::uint8_t>(op);
        r.core = static_cast<std::uint16_t>(spe + 1);
        r.timestamp = static_cast<std::uint32_t>(1'000'000 - tb);
        t.records.push_back(r);
        return *this;
    }

    StreamBuilder&
    begin(std::uint32_t spe, std::uint64_t tb, rt::ApiOp op,
          std::uint64_t a = 0, std::uint32_t c = 0, std::uint32_t d = 0)
    {
        Record proto{};
        proto.phase = trace::kPhaseBegin;
        proto.a = a;
        proto.c = c;
        proto.d = d;
        return spu(spe, tb, op, proto);
    }

    StreamBuilder&
    end(std::uint32_t spe, std::uint64_t tb, rt::ApiOp op,
        std::uint64_t b = 0)
    {
        Record proto{};
        proto.phase = trace::kPhaseEnd;
        proto.b = b;
        return spu(spe, tb, op, proto);
    }

    IntervalSet build() const
    {
        return IntervalSet::build(TraceModel::build(t));
    }
};

TEST(Intervals, MatchesBeginEndPairs)
{
    StreamBuilder sb;
    sb.begin(0, 100, rt::ApiOp::SpuTagWaitAll, 0xF)
      .end(0, 250, rt::ApiOp::SpuTagWaitAll, 0xF);
    const IntervalSet ivs = sb.build();
    const auto waits = ivs.select(1, IntervalClass::DmaWait);
    ASSERT_EQ(waits.size(), 1u);
    EXPECT_EQ(waits[0].start_tb, 100u);
    EXPECT_EQ(waits[0].end_tb, 250u);
    EXPECT_EQ(waits[0].duration(), 150u);
    EXPECT_EQ(waits[0].a, 0xFu);
    EXPECT_EQ(waits[0].end_b, 0xFu);
    EXPECT_FALSE(waits[0].truncated);
}

TEST(Intervals, RunIntervalFromStartStop)
{
    StreamBuilder sb;
    sb.begin(0, 10, rt::ApiOp::SpuStart)
      .begin(0, 500, rt::ApiOp::SpuStop, /*exit code*/ 3);
    const IntervalSet ivs = sb.build();
    const Interval* run = ivs.spuRun(0);
    ASSERT_NE(run, nullptr);
    EXPECT_EQ(run->start_tb, 10u);
    EXPECT_EQ(run->end_tb, 500u);
    EXPECT_EQ(run->a, 3u);
}

TEST(Intervals, SingleMarkerOpsAreZeroLength)
{
    StreamBuilder sb;
    sb.begin(0, 42, rt::ApiOp::SpuUserEvent, 7);
    const IntervalSet ivs = sb.build();
    const auto others = ivs.select(1, IntervalClass::Other);
    ASSERT_EQ(others.size(), 1u);
    EXPECT_EQ(others[0].start_tb, others[0].end_tb);
    EXPECT_EQ(others[0].a, 7u);
}

TEST(Intervals, DanglingBeginIsClosedAtTraceEnd)
{
    StreamBuilder sb;
    sb.begin(0, 100, rt::ApiOp::SpuMboxRead)
      .begin(0, 400, rt::ApiOp::SpuUserEvent); // trace ends at 400
    const IntervalSet ivs = sb.build();
    const auto waits = ivs.select(1, IntervalClass::MailboxWait);
    ASSERT_EQ(waits.size(), 1u);
    EXPECT_TRUE(waits[0].truncated);
    EXPECT_EQ(waits[0].end_tb, 400u);
}

TEST(Intervals, EndWithoutBeginDegradesGracefully)
{
    StreamBuilder sb;
    sb.end(0, 100, rt::ApiOp::SpuTagWaitAll, 1);
    const IntervalSet ivs = sb.build();
    const auto waits = ivs.select(1, IntervalClass::DmaWait);
    ASSERT_EQ(waits.size(), 1u);
    EXPECT_TRUE(waits[0].truncated);
    EXPECT_EQ(waits[0].duration(), 0u);
}

TEST(Intervals, DifferentOpsInterleaveIndependently)
{
    StreamBuilder sb;
    sb.begin(0, 10, rt::ApiOp::SpuMfcGet, 0, 4096, 2)
      .end(0, 20, rt::ApiOp::SpuMfcGet)
      .begin(0, 20, rt::ApiOp::SpuMfcPut, 0, 2048, 3)
      .begin(0, 25, rt::ApiOp::SpuTagWaitAll, 0xC)
      .end(0, 30, rt::ApiOp::SpuMfcPut)
      .end(0, 90, rt::ApiOp::SpuTagWaitAll, 0x4);
    const IntervalSet ivs = sb.build();
    EXPECT_EQ(ivs.select(1, IntervalClass::DmaCommand).size(), 2u);
    const auto waits = ivs.select(1, IntervalClass::DmaWait);
    ASSERT_EQ(waits.size(), 1u);
    EXPECT_EQ(waits[0].duration(), 65u);
}

TEST(Intervals, SortedByStartTime)
{
    StreamBuilder sb;
    sb.begin(0, 50, rt::ApiOp::SpuMfcGet).end(0, 60, rt::ApiOp::SpuMfcGet)
      .begin(0, 10, rt::ApiOp::SpuUserEvent) // out-of-order stamp gets
                                             // clamped by the model
      .begin(0, 70, rt::ApiOp::SpuMfcPut).end(0, 80, rt::ApiOp::SpuMfcPut);
    const IntervalSet ivs = sb.build();
    std::uint64_t prev = 0;
    for (const Interval& iv : ivs.per_core[1]) {
        EXPECT_GE(iv.start_tb, prev);
        prev = iv.start_tb;
    }
}

TEST(Intervals, ToolRecordsAreIgnored)
{
    StreamBuilder sb;
    Record flush{};
    flush.kind = trace::kFlushRecord;
    flush.core = 1;
    flush.timestamp = 1'000'000 - 30;
    sb.begin(0, 10, rt::ApiOp::SpuMfcGet);
    sb.t.records.push_back(flush);
    sb.end(0, 50, rt::ApiOp::SpuMfcGet);
    const IntervalSet ivs = sb.build();
    const auto cmds = ivs.select(1, IntervalClass::DmaCommand);
    ASSERT_EQ(cmds.size(), 1u);
    EXPECT_EQ(cmds[0].duration(), 40u);
}

TEST(Intervals, PpeCallsClassified)
{
    StreamBuilder sb;
    Record proto{};
    proto.phase = trace::kPhaseBegin;
    Record r = proto;
    r.kind = static_cast<std::uint8_t>(rt::ApiOp::PpeMboxRead);
    r.core = 0;
    r.timestamp = 100;
    sb.t.records.push_back(r);
    r.phase = trace::kPhaseEnd;
    r.timestamp = 300;
    sb.t.records.push_back(r);
    const IntervalSet ivs = sb.build();
    const auto calls = ivs.select(0, IntervalClass::PpeCall);
    ASSERT_EQ(calls.size(), 1u);
    EXPECT_EQ(calls[0].duration(), 200u);
}

TEST(Intervals, ClassNamesAreStable)
{
    EXPECT_STREQ(intervalClassName(IntervalClass::Run), "RUN");
    EXPECT_STREQ(intervalClassName(IntervalClass::DmaWait), "DMA_WAIT");
    EXPECT_STREQ(intervalClassName(IntervalClass::MailboxWait), "MBOX_WAIT");
}

} // namespace
} // namespace cell::ta
