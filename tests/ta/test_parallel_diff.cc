/**
 * @file
 * Serial-vs-parallel differential harness: the acceptance test of the
 * parallel analysis pipeline's determinism contract.
 *
 * Every workload in the suite — plus a salvaged trace and a
 * fault-injected trace full of drop markers — is analyzed serially and
 * in parallel at 1, 2, 4 and 8 threads, with shard sizes small enough
 * to force many shards even on tiny traces. The two paths must agree
 * exactly: same events (field-wise), same intervals, same loss tables,
 * and byte-identical full reports.
 */

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "ta/analyzer.h"
#include "ta/parallel.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace cell {
namespace {

using Factory =
    std::function<std::unique_ptr<wl::WorkloadBase>(rt::CellSystem&)>;

/** Run @p make traced and return the finalized trace. */
trace::TraceData
record(const Factory& make, sim::MachineConfig mcfg = {},
       pdt::PdtConfig pcfg = {})
{
    rt::CellSystem sys(mcfg);
    pdt::Pdt tracer(sys, pcfg);
    auto workload = make(sys);
    workload->start();
    sys.run();
    EXPECT_TRUE(workload->verify());
    return tracer.finalize();
}

struct NamedTrace
{
    std::string name;
    trace::TraceData data;
    bool lenient = false;
};

std::vector<NamedTrace>
workloadTraces()
{
    std::vector<NamedTrace> out;
    out.push_back({"triad", record([](rt::CellSystem& sys) {
                       wl::TriadParams p;
                       p.n_elements = 4096;
                       p.n_spes = 2;
                       return std::make_unique<wl::Triad>(sys, p);
                   })});
    out.push_back({"matmul", record([](rt::CellSystem& sys) {
                       wl::MatmulParams p;
                       p.n = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Matmul>(sys, p);
                   })});
    out.push_back({"fft", record([](rt::CellSystem& sys) {
                       wl::FftParams p;
                       p.fft_size = 256;
                       p.n_ffts = 16;
                       p.batch = 4;
                       p.n_spes = 2;
                       return std::make_unique<wl::Fft>(sys, p);
                   })});
    out.push_back({"conv2d", record([](rt::CellSystem& sys) {
                       wl::Conv2dParams p;
                       p.width = 256;
                       p.height = 64;
                       p.n_spes = 2;
                       return std::make_unique<wl::Conv2d>(sys, p);
                   })});
    out.push_back({"pipeline", record([](rt::CellSystem& sys) {
                       wl::PipelineParams p;
                       p.n_elements = 8192;
                       p.n_stages = 2;
                       return std::make_unique<wl::Pipeline>(sys, p);
                   })});
    out.push_back({"workqueue", record([](rt::CellSystem& sys) {
                       wl::WorkQueueParams p;
                       p.n_items = 32;
                       p.tile_elems = 256;
                       p.n_spes = 2;
                       return std::make_unique<wl::WorkQueue>(sys, p);
                   })});
    return out;
}

/** Triad under faults + tiny buffer + drop-with-marker: drop markers
 *  and gap epochs everywhere. */
trace::TraceData
dropTrace()
{
    sim::MachineConfig mcfg;
    mcfg.faults.seed = 7;
    mcfg.faults.dma_delay_permille = 150;
    mcfg.faults.dma_delay_cycles = 3'000;
    mcfg.faults.mbox_stall_permille = 200;
    mcfg.faults.arena_exhaust_begin = 1;
    mcfg.faults.arena_exhaust_end = 4;
    pdt::PdtConfig pcfg;
    pcfg.spu_buffer_bytes = 512;
    pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
    return record(
        [](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        },
        mcfg, pcfg);
}

/** Corrupt a healthy trace mid-record-region and salvage it: lenient
 *  analysis input with lost syncs and skipped records. */
trace::TraceData
salvagedTrace(trace::ReadReport& report)
{
    std::vector<std::uint8_t> bytes = trace::writeBuffer(
        record([](rt::CellSystem& sys) {
            wl::TriadParams p;
            p.n_elements = 4096;
            p.n_spes = 2;
            return std::make_unique<wl::Triad>(sys, p);
        }));
    const std::size_t at = bytes.size() / 2;
    for (std::size_t i = 0; i < 200 && at + i < bytes.size(); ++i)
        bytes[at + i] = 0xFF;
    return trace::readBufferSalvage(bytes, report);
}

/** Assert every derived structure matches, field by field, and the
 *  printed reports are byte-identical. */
void
expectIdentical(const ta::Analysis& s, const ta::Analysis& p,
                const std::string& what)
{
    SCOPED_TRACE(what);
    EXPECT_EQ(s.model.leniencySkipped(), p.model.leniencySkipped());
    EXPECT_EQ(s.model.startTb(), p.model.startTb());
    EXPECT_EQ(s.model.endTb(), p.model.endTb());
    ASSERT_EQ(s.model.cores().size(), p.model.cores().size());
    for (std::size_t c = 0; c < s.model.cores().size(); ++c) {
        EXPECT_EQ(s.model.cores()[c].core, p.model.cores()[c].core);
        EXPECT_EQ(s.model.cores()[c].label, p.model.cores()[c].label);
        EXPECT_TRUE(s.model.cores()[c].events == p.model.cores()[c].events)
            << "event mismatch on core " << c;
    }
    ASSERT_EQ(s.intervals.per_core.size(), p.intervals.per_core.size());
    for (std::size_t c = 0; c < s.intervals.per_core.size(); ++c) {
        EXPECT_TRUE(s.intervals.per_core[c] == p.intervals.per_core[c])
            << "interval mismatch on core " << c;
    }
    EXPECT_TRUE(s.stats.loss == p.stats.loss) << "loss table mismatch";
    EXPECT_EQ(s.stats.total_records, p.stats.total_records);
    EXPECT_EQ(ta::fullReport(s), ta::fullReport(p));
}

constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

TEST(ParallelDiff, AllWorkloadsMatchSerialAtEveryThreadCount)
{
    for (const NamedTrace& t : workloadTraces()) {
        const ta::Analysis serial = ta::analyze(t.data, t.lenient);
        for (const unsigned threads : kThreadCounts) {
            ta::WorkerPool pool(threads);
            const ta::Analysis par =
                ta::analyzeParallel(t.data, pool, t.lenient,
                                    /*shard_records=*/257);
            expectIdentical(serial, par,
                            t.name + " @" + std::to_string(threads) + "t");
        }
    }
}

TEST(ParallelDiff, FaultInjectedDropTraceMatchesSerial)
{
    const trace::TraceData data = dropTrace();
    // The trace must actually contain drop markers for this test to
    // mean anything.
    bool has_drop = false;
    for (const trace::Record& r : data.records)
        has_drop |= r.kind == trace::kDropRecord;
    ASSERT_TRUE(has_drop);

    const ta::Analysis serial = ta::analyze(data);
    for (const unsigned threads : kThreadCounts) {
        ta::WorkerPool pool(threads);
        const ta::Analysis par =
            ta::analyzeParallel(data, pool, false, /*shard_records=*/129);
        expectIdentical(serial, par,
                        "drops @" + std::to_string(threads) + "t");
    }
}

TEST(ParallelDiff, SalvagedTraceMatchesSerialLenient)
{
    trace::ReadReport report;
    const trace::TraceData data = salvagedTrace(report);
    ASSERT_TRUE(report.salvaged);

    const ta::Analysis serial = ta::analyze(data, /*lenient=*/true);
    for (const unsigned threads : kThreadCounts) {
        ta::WorkerPool pool(threads);
        const ta::Analysis par =
            ta::analyzeParallel(data, pool, /*lenient=*/true,
                                /*shard_records=*/97);
        expectIdentical(serial, par,
                        "salvaged @" + std::to_string(threads) + "t");
    }
}

TEST(ParallelDiff, FileShardedIngestMatchesSerialRead)
{
    const std::string path =
        ::testing::TempDir() + "/parallel_diff_triad.pdt";
    const trace::TraceData data = record([](rt::CellSystem& sys) {
        wl::TriadParams p;
        p.n_elements = 4096;
        p.n_spes = 2;
        return std::make_unique<wl::Triad>(sys, p);
    });
    trace::writeFile(path, data);

    const ta::Analysis serial = ta::analyzeFile(path);
    for (const unsigned threads : {2u, 4u, 8u}) {
        ta::ParallelOptions opt;
        opt.threads = threads;
        const ta::Analysis par = ta::analyzeFileParallel(path, opt);
        expectIdentical(serial, par,
                        "file @" + std::to_string(threads) + "t");
    }
}

TEST(ParallelDiff, ThreadsOneIsExactlyTheLegacyPath)
{
    const trace::TraceData data = record([](rt::CellSystem& sys) {
        wl::TriadParams p;
        p.n_elements = 2048;
        p.n_spes = 2;
        return std::make_unique<wl::Triad>(sys, p);
    });
    ta::ParallelOptions opt;
    opt.threads = 1;
    expectIdentical(ta::analyze(data), ta::analyzeParallel(data, opt),
                    "threads=1");
}

TEST(ParallelDiff, StrictErrorsMatchSerialDiagnostics)
{
    // An event before any sync on its core: both paths must throw the
    // same message.
    trace::TraceData bad;
    bad.header.num_spes = 1;
    bad.header.core_hz = 3'200'000'000ULL;
    bad.header.timebase_divider = 120;
    bad.spe_programs = {""};
    trace::Record r{};
    r.kind = 2;
    r.core = 1;
    r.timestamp = 100;
    bad.records.assign(8, r);

    std::string serial_msg;
    std::string parallel_msg;
    try {
        (void)ta::TraceModel::build(bad);
    } catch (const std::runtime_error& e) {
        serial_msg = e.what();
    }
    try {
        ta::WorkerPool pool(4);
        (void)ta::buildModelParallel(bad, pool, false, /*shard_records=*/2);
    } catch (const std::runtime_error& e) {
        parallel_msg = e.what();
    }
    EXPECT_FALSE(serial_msg.empty());
    EXPECT_EQ(serial_msg, parallel_msg);

    // A record naming an impossible core: same again, and the
    // *earlier* offender must win when both problems exist.
    bad.records[0].core = 9;
    serial_msg.clear();
    parallel_msg.clear();
    try {
        (void)ta::TraceModel::build(bad);
    } catch (const std::runtime_error& e) {
        serial_msg = e.what();
    }
    try {
        ta::WorkerPool pool(4);
        (void)ta::buildModelParallel(bad, pool, false, /*shard_records=*/2);
    } catch (const std::runtime_error& e) {
        parallel_msg = e.what();
    }
    EXPECT_FALSE(serial_msg.empty());
    EXPECT_EQ(serial_msg, parallel_msg);
}

} // namespace
} // namespace cell
