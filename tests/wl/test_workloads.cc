/**
 * @file
 * Workload correctness tests: every kernel must produce numerically
 * verified results across SPE counts, buffering depths, and parameter
 * edge cases — traced and untraced.
 */

#include <gtest/gtest.h>

#include "pdt/tracer.h"
#include "wl/conv2d.h"
#include "wl/gather.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/reduction.h"
#include "wl/triad.h"

namespace cell::wl {
namespace {

struct TriadCase
{
    std::uint32_t spes;
    std::uint32_t buffering;
    std::uint32_t elems;
    std::uint32_t tile;
};

class TriadP : public ::testing::TestWithParam<TriadCase>
{};

TEST_P(TriadP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    TriadParams p;
    p.n_elements = c.elems;
    p.n_spes = c.spes;
    p.buffering = c.buffering;
    p.tile_elems = c.tile;
    Triad wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    EXPECT_GT(wl.elapsed(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TriadP,
    ::testing::Values(TriadCase{1, 1, 4096, 512},
                      TriadCase{1, 2, 4096, 512},
                      TriadCase{2, 3, 4096, 256},
                      TriadCase{4, 2, 16384, 1024},
                      TriadCase{8, 2, 16384, 1024},
                      TriadCase{8, 1, 16384, 4096},
                      // Partial final tile (count not tile-multiple).
                      TriadCase{3, 2, 5120, 1024},
                      // Tiny: fewer tiles than buffers.
                      TriadCase{8, 3, 64, 16}));

TEST(Triad, RejectsBadParams)
{
    rt::CellSystem sys;
    TriadParams p;
    p.n_spes = 99;
    EXPECT_THROW(Triad(sys, p), std::invalid_argument);
    p = {};
    p.buffering = 4;
    EXPECT_THROW(Triad(sys, p), std::invalid_argument);
    p = {};
    p.tile_elems = 6; // not multiple of 4
    EXPECT_THROW(Triad(sys, p), std::invalid_argument);
    p = {};
    p.tile_elems = 8192; // > 16 KiB tile
    EXPECT_THROW(Triad(sys, p), std::invalid_argument);
}

struct MatmulCase
{
    std::uint32_t n;
    std::uint32_t spes;
    std::uint32_t skew;
};

class MatmulP : public ::testing::TestWithParam<MatmulCase>
{};

TEST_P(MatmulP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    MatmulParams p;
    p.n = c.n;
    p.n_spes = c.spes;
    p.skew = c.skew;
    Matmul wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

INSTANTIATE_TEST_SUITE_P(Sweep, MatmulP,
                         ::testing::Values(MatmulCase{32, 1, 0},
                                           MatmulCase{64, 2, 0},
                                           MatmulCase{64, 3, 1},
                                           MatmulCase{96, 8, 0},
                                           MatmulCase{96, 8, 4},
                                           MatmulCase{64, 8, 100}));

TEST(Matmul, SkewedSharesSumToTotal)
{
    rt::CellSystem sys;
    MatmulParams p;
    p.n = 128;
    p.n_spes = 8;
    p.skew = 3;
    Matmul wl(sys, p);
    std::uint32_t total = 0;
    for (std::uint32_t s = 0; s < 8; ++s)
        total += wl.tilesForSpe(s);
    EXPECT_EQ(total, (128 / 32) * (128 / 32));
}

TEST(Matmul, RejectsBadParams)
{
    rt::CellSystem sys;
    MatmulParams p;
    p.n = 48; // not multiple of 32
    EXPECT_THROW(Matmul(sys, p), std::invalid_argument);
    p = {};
    p.n_spes = 0;
    EXPECT_THROW(Matmul(sys, p), std::invalid_argument);
}

struct ConvCase
{
    std::uint32_t w;
    std::uint32_t h;
    std::uint32_t spes;
};

class ConvP : public ::testing::TestWithParam<ConvCase>
{};

TEST_P(ConvP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    Conv2dParams p;
    p.width = c.w;
    p.height = c.h;
    p.n_spes = c.spes;
    Conv2d wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

INSTANTIATE_TEST_SUITE_P(Sweep, ConvP,
                         ::testing::Values(ConvCase{64, 16, 1},
                                           ConvCase{128, 64, 4},
                                           ConvCase{256, 64, 8},
                                           // Height not divisible by SPEs.
                                           ConvCase{64, 19, 4},
                                           // More SPEs than rows: some idle.
                                           ConvCase{64, 5, 8}));

TEST(Conv2d, CustomKernelApplied)
{
    rt::CellSystem sys;
    Conv2dParams p;
    p.width = 64;
    p.height = 16;
    p.n_spes = 2;
    p.kernel = {0, 0, 0, 0, 2, 0, 0, 0, 0}; // pure 2x scaling
    Conv2d wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

TEST(Reduction, BothModesMatchReference)
{
    for (bool chatty : {false, true}) {
        rt::CellSystem sys;
        ReductionParams p;
        p.n_elements = 8192;
        p.n_spes = 4;
        p.tile_elems = 512;
        p.report_every_tile = chatty;
        Reduction wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify()) << "chatty=" << chatty;
        EXPECT_GT(wl.result(), 0.0f);
    }
}

TEST(Reduction, UnevenSlices)
{
    rt::CellSystem sys;
    ReductionParams p;
    p.n_elements = 4096 + 512;
    p.n_spes = 7;
    p.tile_elems = 256;
    Reduction wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

struct PipeCase
{
    std::uint32_t stages;
    std::uint32_t elems;
    std::uint32_t tile;
};

class PipeP : public ::testing::TestWithParam<PipeCase>
{};

TEST_P(PipeP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    PipelineParams p;
    p.n_stages = c.stages;
    p.n_elements = c.elems;
    p.tile_elems = c.tile;
    Pipeline wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

INSTANTIATE_TEST_SUITE_P(Sweep, PipeP,
                         ::testing::Values(PipeCase{2, 4096, 512},
                                           PipeCase{4, 8192, 512},
                                           PipeCase{8, 8192, 256},
                                           // Single tile through the chain.
                                           PipeCase{3, 512, 512}));

TEST(Pipeline, UserEventsModeStillVerifies)
{
    rt::CellSystem sys;
    PipelineParams p;
    p.n_stages = 3;
    p.n_elements = 2048;
    p.tile_elems = 256;
    p.user_events = true;
    Pipeline wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

struct GatherCase
{
    std::uint32_t rows;
    std::uint32_t indices;
    std::uint32_t spes;
};

class GatherP : public ::testing::TestWithParam<GatherCase>
{};

TEST_P(GatherP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    GatherParams p;
    p.table_rows = c.rows;
    p.n_indices = c.indices;
    p.n_spes = c.spes;
    Gather wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

INSTANTIATE_TEST_SUITE_P(Sweep, GatherP,
                         ::testing::Values(GatherCase{64, 256, 1},
                                           GatherCase{1024, 2048, 4},
                                           GatherCase{4096, 4096, 8},
                                           // More SPEs than batches.
                                           GatherCase{64, 64, 8}));

TEST(AllWorkloads, VerifyUnderTracing)
{
    // Tracing must never corrupt results — the tool's prime directive.
    {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        TriadParams p;
        p.n_elements = 4096;
        p.n_spes = 2;
        Triad wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
    }
    {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        MatmulParams p;
        p.n = 64;
        p.n_spes = 2;
        Matmul wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
    }
    {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        Conv2dParams p;
        p.width = 64;
        p.height = 16;
        p.n_spes = 2;
        Conv2d wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
    }
    {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        PipelineParams p;
        p.n_stages = 3;
        p.n_elements = 2048;
        p.tile_elems = 256;
        Pipeline wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
    }
    {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        GatherParams p;
        p.table_rows = 256;
        p.n_indices = 512;
        p.n_spes = 2;
        Gather wl(sys, p);
        wl.start();
        sys.run();
        EXPECT_TRUE(wl.verify());
    }
}

TEST(AllWorkloads, DeterministicElapsedTimes)
{
    auto run = [] {
        rt::CellSystem sys;
        TriadParams p;
        p.n_elements = 8192;
        p.n_spes = 4;
        Triad wl(sys, p);
        wl.start();
        sys.run();
        return wl.elapsed();
    };
    EXPECT_EQ(run(), run());
}

} // namespace
} // namespace cell::wl
