/**
 * @file
 * Work-queue workload tests: correctness in both scheduling modes,
 * accounting, and the balancing property itself.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "pdt/tracer.h"
#include "ta/analyzer.h"
#include "wl/workqueue.h"

namespace cell::wl {
namespace {

struct WqCase
{
    std::uint32_t items;
    std::uint32_t spes;
    bool dynamic;
};

class WqP : public ::testing::TestWithParam<WqCase>
{};

TEST_P(WqP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    WorkQueueParams p;
    p.n_items = c.items;
    p.n_spes = c.spes;
    p.dynamic = c.dynamic;
    p.tile_elems = 256;
    WorkQueue wq(sys, p);
    wq.start();
    sys.run();
    EXPECT_TRUE(wq.verify());
    const auto total = std::accumulate(wq.itemsPerSpe().begin(),
                                       wq.itemsPerSpe().end(), 0u);
    EXPECT_EQ(total, c.items);
}

INSTANTIATE_TEST_SUITE_P(Sweep, WqP,
                         ::testing::Values(WqCase{8, 1, true},
                                           WqCase{8, 1, false},
                                           WqCase{16, 4, true},
                                           WqCase{16, 4, false},
                                           WqCase{64, 8, true},
                                           WqCase{64, 8, false},
                                           // Fewer items than SPEs.
                                           WqCase{3, 8, true},
                                           WqCase{3, 8, false},
                                           WqCase{1, 2, true}));

TEST(WorkQueue, DynamicBeatsStaticOnRampedCosts)
{
    auto run = [](bool dynamic) {
        rt::CellSystem sys;
        WorkQueueParams p;
        p.dynamic = dynamic;
        p.n_items = 48;
        p.n_spes = 8;
        p.cost_slope = 400; // steep ramp
        WorkQueue wq(sys, p);
        wq.start();
        sys.run();
        EXPECT_TRUE(wq.verify());
        return wq.elapsed();
    };
    EXPECT_LT(run(true), run(false));
}

TEST(WorkQueue, DynamicModeBalancesBusyTime)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    WorkQueueParams p;
    p.dynamic = true;
    p.n_items = 64;
    p.n_spes = 8;
    p.cost_slope = 400;
    WorkQueue wq(sys, p);
    wq.start();
    sys.run();
    ASSERT_TRUE(wq.verify());
    const ta::Analysis a = ta::analyze(tracer.finalize());
    EXPECT_LT(a.stats.loadImbalance(), 1.3);
}

TEST(WorkQueue, StaticModeShowsTailStraggler)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    WorkQueueParams p;
    p.dynamic = false;
    p.n_items = 64;
    p.n_spes = 8;
    p.cost_slope = 400;
    WorkQueue wq(sys, p);
    wq.start();
    sys.run();
    ASSERT_TRUE(wq.verify());
    const ta::Analysis a = ta::analyze(tracer.finalize());
    EXPECT_GT(a.stats.loadImbalance(), 1.5);
}

TEST(WorkQueue, TracedDynamicRunStillVerifies)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    WorkQueueParams p;
    p.n_items = 16;
    p.n_spes = 4;
    WorkQueue wq(sys, p);
    wq.start();
    sys.run();
    EXPECT_TRUE(wq.verify());
    // The dynamic protocol shows up as interrupt-mailbox traffic.
    const ta::Analysis a = ta::analyze(tracer.finalize());
    std::uint64_t irq_writes = 0;
    for (const auto& row : a.stats.op_counts)
        irq_writes +=
            row[static_cast<std::size_t>(rt::ApiOp::SpuMboxIrqWrite)];
    EXPECT_EQ(irq_writes, 16u + 4u); // one per item + one final per SPE
}

TEST(WorkQueue, RejectsBadParams)
{
    rt::CellSystem sys;
    WorkQueueParams p;
    p.n_items = 0;
    EXPECT_THROW(WorkQueue(sys, p), std::invalid_argument);
    p = {};
    p.tile_elems = 10;
    EXPECT_THROW(WorkQueue(sys, p), std::invalid_argument);
    p = {};
    p.n_spes = 0;
    EXPECT_THROW(WorkQueue(sys, p), std::invalid_argument);
}

} // namespace
} // namespace cell::wl
