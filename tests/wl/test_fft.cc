/**
 * @file
 * FFT workload tests: reference transform sanity, SPE execution
 * across parameter sweeps, and the fenced-refill correctness that
 * motivated SpuEnv::getLargef.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "pdt/tracer.h"
#include "wl/fft.h"

namespace cell::wl {
namespace {

TEST(FftReference, ImpulseGivesFlatSpectrum)
{
    std::vector<std::complex<float>> x(16, {0.f, 0.f});
    x[0] = {1.f, 0.f};
    Fft::referenceFft(x.data(), 16);
    for (const auto& v : x) {
        EXPECT_NEAR(v.real(), 1.f, 1e-5f);
        EXPECT_NEAR(v.imag(), 0.f, 1e-5f);
    }
}

TEST(FftReference, DcGivesSingleBin)
{
    std::vector<std::complex<float>> x(32, {1.f, 0.f});
    Fft::referenceFft(x.data(), 32);
    EXPECT_NEAR(x[0].real(), 32.f, 1e-3f);
    for (std::size_t i = 1; i < 32; ++i) {
        EXPECT_NEAR(std::abs(x[i]), 0.f, 1e-3f) << "bin " << i;
    }
}

TEST(FftReference, SingleToneLandsInItsBin)
{
    constexpr std::uint32_t n = 64;
    constexpr std::uint32_t k = 5;
    std::vector<std::complex<float>> x(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        const float ang = 2.f * 3.14159265f * k * i / n;
        x[i] = {std::cos(ang), std::sin(ang)};
    }
    Fft::referenceFft(x.data(), n);
    // e^{+j2πki/n} with a -j transform lands in bin n - k... verify by
    // magnitude: exactly one bin of magnitude ~n.
    std::uint32_t big = 0;
    std::uint32_t big_bin = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
        if (std::abs(x[i]) > n / 2.0f) {
            ++big;
            big_bin = i;
        }
    }
    EXPECT_EQ(big, 1u);
    EXPECT_TRUE(big_bin == k || big_bin == n - k);
}

TEST(FftReference, MatchesNaiveDft)
{
    constexpr std::uint32_t n = 32;
    std::vector<std::complex<float>> x(n);
    Lcg rng(0xD37);
    for (auto& v : x)
        v = {rng.nextFloat() - 0.5f, rng.nextFloat() - 0.5f};
    std::vector<std::complex<float>> fft = x;
    Fft::referenceFft(fft.data(), n);
    for (std::uint32_t bin = 0; bin < n; ++bin) {
        std::complex<double> acc = 0;
        for (std::uint32_t i = 0; i < n; ++i) {
            const double ang = -2.0 * M_PI * bin * i / n;
            acc += std::complex<double>(x[i]) *
                   std::complex<double>(std::cos(ang), std::sin(ang));
        }
        EXPECT_NEAR(fft[bin].real(), acc.real(), 1e-2) << "bin " << bin;
        EXPECT_NEAR(fft[bin].imag(), acc.imag(), 1e-2) << "bin " << bin;
    }
}

struct FftCase
{
    std::uint32_t size;
    std::uint32_t ffts;
    std::uint32_t batch;
    std::uint32_t spes;
};

class FftP : public ::testing::TestWithParam<FftCase>
{};

TEST_P(FftP, Verifies)
{
    const auto& c = GetParam();
    rt::CellSystem sys;
    FftParams p;
    p.fft_size = c.size;
    p.n_ffts = c.ffts;
    p.batch = c.batch;
    p.n_spes = c.spes;
    Fft wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
}

INSTANTIATE_TEST_SUITE_P(Sweep, FftP,
                         ::testing::Values(FftCase{8, 8, 1, 1},
                                           FftCase{64, 16, 2, 2},
                                           FftCase{256, 32, 4, 4},
                                           FftCase{256, 64, 4, 8},
                                           FftCase{1024, 16, 2, 8},
                                           // Single batch per SPE.
                                           FftCase{128, 8, 1, 8}));

TEST(Fft, VerifiesUnderTracing)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    FftParams p;
    p.fft_size = 128;
    p.n_ffts = 16;
    p.batch = 2;
    p.n_spes = 4;
    Fft wl(sys, p);
    wl.start();
    sys.run();
    EXPECT_TRUE(wl.verify());
    EXPECT_GT(tracer.stats().totalRecords(), 50u);
}

TEST(Fft, RejectsBadParams)
{
    rt::CellSystem sys;
    FftParams p;
    p.fft_size = 100; // not pow2
    EXPECT_THROW(Fft(sys, p), std::invalid_argument);
    p = {};
    p.fft_size = 4096; // too large
    EXPECT_THROW(Fft(sys, p), std::invalid_argument);
    p = {};
    p.n_ffts = 10;
    p.batch = 4; // not a divisor
    EXPECT_THROW(Fft(sys, p), std::invalid_argument);
    p = {};
    p.fft_size = 1024;
    p.batch = 32; // 2*32*8KiB > LS budget
    p.n_ffts = 32;
    EXPECT_THROW(Fft(sys, p), std::invalid_argument);
}

} // namespace
} // namespace cell::wl
