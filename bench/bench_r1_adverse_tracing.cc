/**
 * @file
 * R1 — tracing under adverse conditions.
 *
 * The robustness story the SDK's PDT needed on real hardware: DMA and
 * mailbox latencies wobble, the EIB saturates, and the daemon draining
 * the trace arena falls behind mid-run. This harness runs the same
 * triad (a) clean, (b) under a deterministic noisy fault plan, and
 * (c) under the same plan plus a trace-arena exhaustion window — once
 * per overflow policy — and checks the contract end-to-end: the
 * workload always verifies, and TA's per-core loss report matches the
 * tracer's drop counters *exactly*, so the analyst knows precisely
 * what is missing.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"
#include "trace/writer.h"

namespace {

using namespace cell;

struct FaultedOutcome
{
    sim::Tick elapsed = 0;
    bool verified = false;
    trace::TraceData trace;
    pdt::PdtStats pdt_stats;
    sim::FaultStats fault_stats;
};

FaultedOutcome
runFaulted(const bench::WorkloadFactory& factory,
           const sim::MachineConfig& mcfg, const pdt::PdtConfig& pcfg)
{
    rt::CellSystem sys(mcfg);
    pdt::Pdt tracer(sys, pcfg);
    auto workload = factory(sys);
    workload->start();
    sys.run();

    FaultedOutcome out;
    out.elapsed = workload->elapsed();
    out.verified = workload->verify();
    out.trace = tracer.finalize();
    out.pdt_stats = tracer.stats();
    out.fault_stats = sys.machine().faults().stats();
    if (!out.verified) {
        std::cerr << "BENCH ERROR: workload verification failed\n";
        std::exit(1);
    }
    return out;
}

sim::FaultPlan
noisyPlan()
{
    sim::FaultPlan plan;
    plan.seed = 42;
    plan.dma_delay_permille = 150;
    plan.dma_delay_cycles = 3'000;
    plan.dma_fail_permille = 30;
    plan.eib_spike_permille = 80;
    plan.mbox_stall_permille = 200;
    return plan;
}

} // namespace

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    const WorkloadFactory f = makeTriad(4, 2, 65536, 4);

    // (a) clean baseline, (b) noisy faults with a healthy arena.
    const FaultedOutcome clean = runFaulted(f, {}, {});
    sim::MachineConfig noisy_cfg;
    noisy_cfg.faults = noisyPlan();
    const FaultedOutcome noisy = runFaulted(f, noisy_cfg, {});

    std::cout << "R1: tracing under adverse conditions (triad, 4 SPEs, "
                 "seed 42)\n\n"
              << "run            slowdown   records  dropped  faults "
                 "injected\n"
              << std::fixed << std::setprecision(3);
    const auto row = [&](const char* name, const FaultedOutcome& r) {
        std::uint64_t dropped = 0;
        for (const auto& s : r.pdt_stats.spu)
            dropped += s.dropped;
        std::cout << std::left << std::setw(15) << name << std::right
                  << std::setw(8)
                  << static_cast<double>(r.elapsed) /
                         static_cast<double>(clean.elapsed)
                  << std::setw(10) << r.trace.records.size() << std::setw(9)
                  << dropped << std::setw(10)
                  << r.fault_stats.totalInjected() << "\n";
    };
    row("clean", clean);
    row("noisy faults", noisy);

    // (c) noisy faults + the arena drain stalling mid-run, per policy.
    // A small SPU buffer makes flushes frequent so the exhaustion
    // transient window [2, 5) bites early; what happens next is the policy's
    // call. 'exact' checks TA's per-core dropped-event counts against
    // the tracer's own counters.
    struct PolicyRow
    {
        const char* name;
        pdt::OverflowPolicy policy;
    };
    const PolicyRow policies[] = {
        {"stop", pdt::OverflowPolicy::Stop},
        {"drop", pdt::OverflowPolicy::DropWithMarker},
        {"block", pdt::OverflowPolicy::BlockAndFlush},
        {"wrap", pdt::OverflowPolicy::WrapOldest},
    };

    std::cout << "\narena drain stalled on flush attempts [2,5), 512 B "
                 "SPU buffer:\n"
              << "policy   slowdown   records  dropped  markers  "
                 "TA loss%  exact\n";

    for (const PolicyRow& p : policies) {
        sim::MachineConfig mcfg;
        mcfg.faults = noisyPlan();
        mcfg.faults.arena_exhaust_begin = 2;
        mcfg.faults.arena_exhaust_end = 5;
        pdt::PdtConfig pcfg;
        pcfg.spu_buffer_bytes = 512;
        pcfg.overflow_policy = p.policy;
        const FaultedOutcome r = runFaulted(f, mcfg, pcfg);
        const ta::Analysis a = ta::analyze(r.trace);

        std::uint64_t tracer_dropped = 0, markers = 0;
        for (const auto& s : r.pdt_stats.spu)
            tracer_dropped += s.dropped;
        std::uint64_t ta_dropped = 0;
        double worst_loss = 0.0;
        bool exact = true;
        for (std::size_t core = 0; core < a.stats.loss.size(); ++core) {
            const ta::CoreLoss& l = a.stats.loss[core];
            ta_dropped += l.dropped_events;
            markers += l.drop_markers;
            worst_loss = std::max(worst_loss, l.lossPct());
            const std::uint64_t want =
                core == 0 ? 0 : r.pdt_stats.spu[core - 1].dropped;
            exact = exact && l.dropped_events == want;
        }
        exact = exact && ta_dropped == tracer_dropped;

        std::cout << std::left << std::setw(9) << p.name << std::right
                  << std::setprecision(3) << std::setw(8)
                  << static_cast<double>(r.elapsed) /
                         static_cast<double>(clean.elapsed)
                  << std::setw(10) << r.trace.records.size() << std::setw(9)
                  << tracer_dropped << std::setw(9) << markers
                  << std::setprecision(1) << std::setw(10) << worst_loss
                  << std::setw(7) << (exact ? "yes" : "NO") << "\n";
    }

    // The analyst's view of the drop-with-marker run.
    {
        sim::MachineConfig mcfg;
        mcfg.faults = noisyPlan();
        mcfg.faults.arena_exhaust_begin = 2;
        mcfg.faults.arena_exhaust_end = 5;
        pdt::PdtConfig pcfg;
        pcfg.spu_buffer_bytes = 512;
        pcfg.overflow_policy = pdt::OverflowPolicy::DropWithMarker;
        const FaultedOutcome r = runFaulted(f, mcfg, pcfg);
        const ta::Analysis a = ta::analyze(r.trace);
        std::cout << "\n`ta loss` on the drop-policy trace:\n";
        ta::printLossReport(std::cout, a);
    }
    return 0;
}
