/**
 * @file
 * Shared helpers for the evaluation harness.
 *
 * Every bench binary regenerates one reconstructed table/figure from
 * the paper's evaluation (see DESIGN.md's per-experiment index) and
 * prints it as labeled rows. The metrics are *simulated* quantities —
 * cycles, records, bytes — measured by running the workloads on the
 * machine model with and without PDT attached, exactly the comparison
 * the paper ran on hardware. All runs are deterministic.
 */

#ifndef CELL_BENCH_COMMON_H
#define CELL_BENCH_COMMON_H

#include <functional>
#include <iostream>
#include <memory>
#include <string>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include "pdt/tracer.h"
#include "rt/system.h"
#include "ta/analyzer.h"
#include "wl/common.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/gather.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/reduction.h"
#include "wl/triad.h"

namespace cell::bench {

/**
 * Pin glibc's trim/mmap thresholds so benchmark iterations measure the
 * simulator, not the kernel's page allocator. Each iteration builds and
 * tears down a CellSystem (~4 MiB working set: local stores, memory
 * pages, host arrays); with default thresholds glibc returns that
 * memory to the OS on every teardown and the next iteration re-faults
 * it, which can dominate iteration time and swamp the quantity under
 * test. No effect on simulated results — purely host-side.
 */
inline bool
tuneAllocatorForBench()
{
#if defined(__GLIBC__)
    static const bool done = [] {
        mallopt(M_TRIM_THRESHOLD, 64 << 20);
        mallopt(M_MMAP_THRESHOLD, 64 << 20);
        return true;
    }();
    return done;
#else
    return false;
#endif
}

namespace detail {
/** Runs the tuning during static init, before any benchmark. */
inline const bool allocator_tuned = tuneAllocatorForBench();
} // namespace detail

/** Factory building a workload on a given system. */
using WorkloadFactory =
    std::function<std::unique_ptr<wl::WorkloadBase>(rt::CellSystem&)>;

/** Outcome of one run. */
struct RunOutcome
{
    sim::Tick elapsed = 0;     ///< PPE-observed workload cycles
    bool verified = false;
    std::uint64_t records = 0; ///< trace records (0 if untraced)
    std::uint64_t trace_bytes = 0;
    std::uint64_t spu_tracer_cycles = 0; ///< summed over SPEs
    std::uint64_t flushes = 0;
    trace::TraceData trace;    ///< empty if untraced
};

/** Run @p factory's workload once, optionally traced. */
inline RunOutcome
runOnce(const WorkloadFactory& factory, bool traced,
        pdt::PdtConfig cfg = {})
{
    rt::CellSystem sys;
    std::unique_ptr<pdt::Pdt> tracer;
    if (traced)
        tracer = std::make_unique<pdt::Pdt>(sys, cfg);

    auto workload = factory(sys);
    workload->start();
    sys.run();

    RunOutcome out;
    out.elapsed = workload->elapsed();
    out.verified = workload->verify();
    if (traced) {
        out.trace = tracer->finalize();
        out.records = out.trace.records.size();
        out.trace_bytes = out.records * sizeof(trace::Record);
        for (std::uint32_t s = 0; s < sys.numSpes(); ++s)
            out.spu_tracer_cycles +=
                sys.machine().spe(s).stats().tracer_cycles;
        for (const auto& f : tracer->stats().spu)
            out.flushes += f.flushes;
    }
    if (!out.verified) {
        std::cerr << "BENCH ERROR: workload verification failed\n";
        std::exit(1);
    }
    return out;
}

/** Slowdown of traced vs untraced (1.0 == no overhead). */
inline double
slowdown(const RunOutcome& traced, const RunOutcome& untraced)
{
    return static_cast<double>(traced.elapsed) /
           static_cast<double>(untraced.elapsed);
}

/** The six standard workloads at bench scale, parameterized by SPEs. */
inline WorkloadFactory
makeTriad(std::uint32_t spes, std::uint32_t buffering = 2,
          std::uint32_t elems = 65536, std::uint32_t cpe = 4)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::TriadParams p;
        p.n_elements = elems;
        p.n_spes = spes;
        p.buffering = buffering;
        p.compute_per_elem = cpe;
        return std::make_unique<wl::Triad>(sys, p);
    };
}

inline WorkloadFactory
makeMatmul(std::uint32_t spes, std::uint32_t n = 128, std::uint32_t skew = 0)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::MatmulParams p;
        p.n = n;
        p.n_spes = spes;
        p.skew = skew;
        return std::make_unique<wl::Matmul>(sys, p);
    };
}

inline WorkloadFactory
makeConv2d(std::uint32_t spes)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::Conv2dParams p;
        p.width = 512;
        p.height = 128;
        p.n_spes = spes;
        return std::make_unique<wl::Conv2d>(sys, p);
    };
}

inline WorkloadFactory
makeReduction(std::uint32_t spes, bool chatty = false)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::ReductionParams p;
        p.n_elements = 65536;
        p.n_spes = spes;
        p.report_every_tile = chatty;
        // Many small, cheap tiles: in per-tile mode the PPE's mailbox
        // service rate becomes the bottleneck and SPEs queue behind
        // it — the serialization the use case demonstrates.
        p.tile_elems = 256;
        p.compute_per_elem = 2;
        return std::make_unique<wl::Reduction>(sys, p);
    };
}

inline WorkloadFactory
makePipeline(std::uint32_t stages)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::PipelineParams p;
        p.n_elements = 32768;
        p.n_stages = stages;
        return std::make_unique<wl::Pipeline>(sys, p);
    };
}

inline WorkloadFactory
makeFft(std::uint32_t spes)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::FftParams p;
        p.fft_size = 256;
        p.n_ffts = 64;
        p.batch = 4;
        p.n_spes = spes;
        return std::make_unique<wl::Fft>(sys, p);
    };
}

inline WorkloadFactory
makeGather(std::uint32_t spes)
{
    return [=](rt::CellSystem& sys) -> std::unique_ptr<wl::WorkloadBase> {
        wl::GatherParams p;
        p.n_indices = 8192;
        p.n_spes = spes;
        return std::make_unique<wl::Gather>(sys, p);
    };
}

/** Named workload set used by T2/F1. */
struct NamedWorkload
{
    const char* name;
    WorkloadFactory factory;
};

inline std::vector<NamedWorkload>
standardSuite(std::uint32_t spes)
{
    return {
        {"triad", makeTriad(spes)},
        {"matmul", makeMatmul(spes)},
        {"conv2d", makeConv2d(spes)},
        {"fft", makeFft(spes)},
        {"reduction", makeReduction(spes)},
        {"pipeline", makePipeline(std::max(2u, spes))},
        {"gather", makeGather(spes)},
    };
}

} // namespace cell::bench

#endif // CELL_BENCH_COMMON_H
