/**
 * @file
 * F4 — use case: buffering depth, as TA reports it.
 *
 * The analyzer-side view of the double-buffering use case: for
 * single/double/triple buffering, the stall breakdown, DMA-wait
 * share, and overlap score TA computes from the trace. Expected
 * shape: going 1 -> 2 buffers collapses the DMA-wait share and lifts
 * the overlap score toward 1.0; 2 -> 3 changes little.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    std::cout << "F4: TA stall breakdown vs buffering depth "
                 "(triad, 2 SPEs, compute ~= DMA)\n"
              << "buffers  elapsed(cyc)  speedup  compute%  dmawait%  "
                 "overlap\n";

    sim::Tick base = 0;
    for (std::uint32_t buffering = 1; buffering <= 3; ++buffering) {
        const WorkloadFactory f = makeTriad(2, buffering, 65536, 2);
        const RunOutcome r = runOnce(f, true);
        const ta::Analysis a = ta::analyze(r.trace);

        double compute = 0;
        double dmawait = 0;
        double overlap = 0;
        for (std::uint32_t s = 0; s < 2; ++s) {
            const auto& b = a.stats.spu[s];
            compute += 100.0 * b.utilization();
            dmawait += 100.0 * static_cast<double>(b.dma_wait_tb) /
                       static_cast<double>(b.run_tb);
            overlap += a.stats.overlapScore(s);
        }
        if (buffering == 1)
            base = r.elapsed;
        std::cout << std::setw(7) << buffering << std::setw(14) << r.elapsed
                  << std::fixed << std::setprecision(2) << std::setw(9)
                  << static_cast<double>(base) /
                         static_cast<double>(r.elapsed)
                  << std::setprecision(1) << std::setw(10) << compute / 2
                  << std::setw(10) << dmawait / 2 << std::setprecision(2)
                  << std::setw(9) << overlap / 2 << "\n";
    }
    return 0;
}
