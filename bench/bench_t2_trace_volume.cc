/**
 * @file
 * T2 — trace volume.
 *
 * Reconstructs the paper's trace-size table: records and bytes PDT
 * produces for each workload at full instrumentation (8 SPEs), broken
 * down by event group, plus the flush count.
 */

#include <array>
#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    std::cout << "T2: trace volume per workload (8 SPEs, all groups)\n"
              << "workload    records     bytes  flushes"
                 "    DMA  DMAWAIT   MBOX    SIG   USER   LIFE\n";

    for (const NamedWorkload& w : standardSuite(8)) {
        const RunOutcome traced = runOnce(w.factory, true);

        // Count records per group.
        std::array<std::uint64_t, rt::kNumApiGroups> by_group{};
        std::uint64_t tool_records = 0;
        for (const trace::Record& rec : traced.trace.records) {
            if (rec.kind >= trace::kSyncRecord) {
                ++tool_records;
                continue;
            }
            const auto g = rt::apiOpGroup(static_cast<rt::ApiOp>(rec.kind));
            by_group[static_cast<std::size_t>(g)] += 1;
        }
        auto grp = [&](rt::ApiGroup g) {
            return by_group[static_cast<std::size_t>(g)];
        };

        std::cout << std::left << std::setw(10) << w.name << std::right
                  << std::setw(10) << traced.records << std::setw(10)
                  << traced.trace_bytes << std::setw(9) << traced.flushes
                  << std::setw(7) << grp(rt::ApiGroup::Dma) << std::setw(9)
                  << grp(rt::ApiGroup::DmaWait) << std::setw(7)
                  << grp(rt::ApiGroup::Mailbox) << std::setw(7)
                  << grp(rt::ApiGroup::Signal) << std::setw(7)
                  << grp(rt::ApiGroup::User) << std::setw(7)
                  << grp(rt::ApiGroup::Lifecycle) << "\n";
    }
    std::cout << "\n(32-byte records; tool sync/flush records included in "
                 "'records' but not in the group columns)\n";
    return 0;
}
