/**
 * @file
 * F2 — overhead vs SPE trace-buffer size, and ablation D1.
 *
 * Sweeps the per-half trace buffer from 128 B to 16 KiB for the
 * double-buffered design and for the single-buffer ablation (one
 * half, blocking flush). Expected shape: small buffers flush often
 * and pay flush-wait stalls; past a knee the curve flattens. The
 * double-buffered design reaches the plateau with far smaller
 * buffers because fills overlap flush DMAs — the design point the
 * paper's tracer architecture is built around.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    // A chatty enough workload that flushes matter: triad with small
    // tiles on 8 SPEs.
    const WorkloadFactory f = makeTriad(8, 2, 65536, 4);
    const RunOutcome base = runOnce(f, false);

    std::cout << "F2: overhead vs trace-buffer size (triad, 8 SPEs)\n"
              << "buffer(B)   double-buffered        single-buffered\n"
              << "            slowdown  flushes      slowdown  flushes\n";

    for (std::uint32_t bytes : {128u, 256u, 512u, 1024u, 2048u, 4096u,
                                8192u, 16384u}) {
        std::cout << std::setw(9) << bytes;
        for (bool dbl : {true, false}) {
            pdt::PdtConfig cfg;
            cfg.spu_buffer_bytes = bytes;
            cfg.double_buffered = dbl;
            const RunOutcome traced = runOnce(f, true, cfg);
            std::cout << std::fixed << std::setprecision(3) << std::setw(12)
                      << slowdown(traced, base) << std::setw(9)
                      << traced.flushes;
        }
        std::cout << "\n";
    }
    return 0;
}
