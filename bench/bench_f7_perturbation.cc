/**
 * @file
 * F7 — tracing perturbation of the analysis itself.
 *
 * The paper's closing concern: the tracer changes the program it
 * measures. This harness runs the same triad at increasing
 * instrumentation levels (none via ground truth; lifecycle-only; DMA
 * groups; everything incl. a tiny 128 B buffer) and compares (a) the
 * elapsed time, and (b) the DMA-wait share that TA reports, against
 * the simulator's ground-truth stall accounting of the *untraced*
 * run. Expected shape: perturbation of elapsed time grows with
 * instrumentation, but the qualitative conclusion — the stall
 * ranking and the rough DMA-wait share — stays stable until buffers
 * get pathologically small.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

namespace {

/** Ground truth DMA-wait share from simulator accounting (untraced). */
double
groundTruthDmaShare(const cell::bench::WorkloadFactory& f)
{
    using namespace cell;
    rt::CellSystem sys;
    auto w = f(sys);
    w->start();
    sys.run();
    double share = 0;
    std::uint32_t n = 0;
    for (std::uint32_t s = 0; s < sys.numSpes(); ++s) {
        const auto& st = sys.machine().spe(s).stats();
        if (st.run_end == st.run_start)
            continue;
        share += static_cast<double>(st.dma_wait_cycles) /
                 static_cast<double>(st.run_end - st.run_start);
        ++n;
    }
    return n ? 100.0 * share / n : 0.0;
}

} // namespace

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    const WorkloadFactory f = makeTriad(4, 2, 65536, 4);
    const RunOutcome base = runOnce(f, false);
    const double truth_share = groundTruthDmaShare(f);

    std::cout << "F7: perturbation vs instrumentation level "
                 "(triad, 4 SPEs)\n"
              << "ground truth (untraced simulator accounting): dmawait "
              << std::fixed << std::setprecision(1) << truth_share << "%\n\n"
              << "level                    slowdown  TA dmawait%  "
                 "abs.err(pp)\n";

    struct Level
    {
        const char* name;
        pdt::GroupMask groups;
        std::uint32_t buffer;
    };
    const Level levels[] = {
        {"lifecycle only", pdt::groupBit(rt::ApiGroup::Lifecycle), 4096},
        {"DMA groups", pdt::groupBit(rt::ApiGroup::Dma) |
                           pdt::groupBit(rt::ApiGroup::DmaWait) |
                           pdt::groupBit(rt::ApiGroup::Lifecycle),
         4096},
        {"all groups", pdt::kAllGroups, 4096},
        {"all, 128B buffer", pdt::kAllGroups, 128},
    };

    for (const Level& lv : levels) {
        pdt::PdtConfig cfg;
        cfg.groups = lv.groups;
        cfg.spu_buffer_bytes = lv.buffer;
        const RunOutcome r = runOnce(f, true, cfg);
        const ta::Analysis a = ta::analyze(r.trace);

        double share = 0;
        std::uint32_t n = 0;
        for (const auto& b : a.stats.spu) {
            if (!b.ran)
                continue;
            share += 100.0 * static_cast<double>(b.dma_wait_tb) /
                     static_cast<double>(b.run_tb);
            ++n;
        }
        share = n ? share / n : 0.0;
        const bool has_dma_events =
            (lv.groups & pdt::groupBit(rt::ApiGroup::DmaWait)) != 0;

        std::cout << std::left << std::setw(24) << lv.name << std::right
                  << std::fixed << std::setprecision(3) << std::setw(9)
                  << slowdown(r, base);
        if (has_dma_events) {
            std::cout << std::setprecision(1) << std::setw(12) << share
                      << std::setw(12) << std::abs(share - truth_share);
        } else {
            std::cout << std::setw(12) << "n/a" << std::setw(12) << "n/a";
        }
        std::cout << "\n";
    }
    std::cout << "\n(pp = percentage points; 'n/a' = that level records no "
                 "DMA-wait events to estimate from)\n";
    return 0;
}
