/**
 * @file
 * Host-side performance of the simulator and tools (google-benchmark).
 *
 * Unlike the T1/F1..F7 harnesses, which report *simulated* metrics,
 * this binary measures wall-clock cost on the host: simulated events
 * per second, tracing's host overhead, and analyzer throughput.
 * Useful for keeping the reproduction usable as the codebase grows.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "trace/reader.h"
#include "trace/writer.h"

namespace {

using namespace cell;
using namespace cell::bench;

void
BM_SimulateTriadUntraced(benchmark::State& state)
{
    const auto spes = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        rt::CellSystem sys;
        auto w = makeTriad(spes)(sys);
        w->start();
        sys.run();
        events += sys.engine().eventsDispatched();
        benchmark::DoNotOptimize(w->verify());
    }
    state.counters["sim_events/s"] = benchmark::Counter(
        static_cast<double>(events), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateTriadUntraced)->Arg(1)->Arg(4)->Arg(8);

void
BM_SimulateTriadTraced(benchmark::State& state)
{
    const auto spes = static_cast<std::uint32_t>(state.range(0));
    std::uint64_t records = 0;
    for (auto _ : state) {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        auto w = makeTriad(spes)(sys);
        w->start();
        sys.run();
        records += tracer.stats().totalRecords();
    }
    state.counters["trace_records/s"] = benchmark::Counter(
        static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SimulateTriadTraced)->Arg(1)->Arg(8);

void
BM_AnalyzeTrace(benchmark::State& state)
{
    // Build one representative trace, then measure pure TA cost.
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    auto w = makeTriad(8)(sys);
    w->start();
    sys.run();
    const trace::TraceData data = tracer.finalize();

    for (auto _ : state) {
        ta::Analysis a = ta::analyze(data);
        benchmark::DoNotOptimize(a.stats.total_records);
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(data.records.size()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_AnalyzeTrace);

void
BM_TraceFileRoundTrip(benchmark::State& state)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys);
    auto w = makeTriad(8)(sys);
    w->start();
    sys.run();
    const trace::TraceData data = tracer.finalize();

    for (auto _ : state) {
        const auto buf = trace::writeBuffer(data);
        const trace::TraceData back = trace::readBuffer(buf);
        benchmark::DoNotOptimize(back.records.size());
    }
}
BENCHMARK(BM_TraceFileRoundTrip);

} // namespace

BENCHMARK_MAIN();
