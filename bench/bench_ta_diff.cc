/**
 * @file
 * Throughput benchmark for the cross-trace differential engine.
 *
 * A fixed corpus of A/B perturbation pairs is generated once (the same
 * construction as `trace_gen --perturb`: scenario trace A, B = A
 * delayed at its median placed tick) and written to temp files.
 * BM_DiffCorpus/N then drives the whole corpus through a WorkerPool of
 * N threads with one single-threaded diffFiles per pair — exactly the
 * `ta diff-corpus` execution shape — so the JSON output reads as
 * corpus throughput vs thread count. BM_DiffAnalyses measures the pure
 * in-memory aligner+localizer, without file I/O.
 *
 *     cmake --build build --target bench   # writes BENCH_ta_diff.json
 *
 * Determinism of the outputs themselves is asserted elsewhere
 * (tests/ta/test_diff_localize.cc); this file measures wall clock.
 */

#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>
#include <unistd.h>
#include <vector>

#include "bench/common.h"
#include "ta/compare.h"
#include "ta/parallel.h"
#include "trace/gen.h"
#include "trace/replay.h"
#include "trace/surgery.h"
#include "trace/writer.h"

namespace {

using namespace cell;

struct DiffPair
{
    std::string path_a;
    std::string path_b;
    std::uint64_t records = 0; ///< both sides summed
};

/** B = A delayed at its median placed tick (all cores). */
trace::TraceData
perturb(const trace::TraceData& a)
{
    std::vector<trace::ClockReplay> clk(a.header.num_spes + 1);
    std::vector<std::uint64_t> prev(a.header.num_spes + 1, 0);
    std::vector<std::uint64_t> times;
    times.reserve(a.records.size());
    for (const trace::Record& rec : a.records) {
        if (rec.core >= clk.size())
            continue;
        std::uint64_t t = 0;
        if (!clk[rec.core].feed(rec, t))
            continue;
        t = std::max(t, prev[rec.core]);
        prev[rec.core] = t;
        times.push_back(t);
    }
    trace::DelayOptions dopt;
    dopt.at = times[times.size() / 2];
    dopt.delta = (times.back() - times.front()) / 4 + 64;
    return trace::delay(a, dopt);
}

/** The corpus, generated and written once for the whole binary. */
const std::vector<DiffPair>&
corpus()
{
    static const std::vector<DiffPair> pairs = [] {
        const std::string base =
            (std::filesystem::temp_directory_path() /
             ("bench_ta_diff_" + std::to_string(::getpid())))
                .string();
        std::vector<DiffPair> out;
        for (std::uint64_t seed = 1; seed <= 8; ++seed) {
            trace::gen::GenOptions gopt;
            gopt.seed = seed;
            gopt.scenario =
                static_cast<int>(trace::gen::Scenario::MultiCore);
            gopt.records = 50'000;
            const trace::TraceData a = trace::gen::generate(gopt);
            const trace::TraceData b = perturb(a);
            DiffPair p;
            p.path_a = base + "_s" + std::to_string(seed) + "_a.pdt";
            p.path_b = base + "_s" + std::to_string(seed) + "_b.pdt";
            p.records = a.records.size() + b.records.size();
            trace::writeFile(p.path_a, a);
            trace::writeFile(p.path_b, b);
            out.push_back(std::move(p));
        }
        return out;
    }();
    return pairs;
}

void
BM_DiffCorpus(benchmark::State& state)
{
    const std::vector<DiffPair>& pairs = corpus();
    ta::WorkerPool pool(static_cast<unsigned>(state.range(0)));
    std::uint64_t total_records = 0;
    for (const DiffPair& p : pairs)
        total_records += p.records;
    for (auto _ : state) {
        std::vector<int> diverged(pairs.size(), 0);
        pool.parallelFor(pairs.size(), [&](std::size_t i) {
            ta::DiffFileOptions opt;
            opt.threads = 1; // corpus parallelism, not per-pair
            const ta::DiffFileOutcome out =
                ta::diffFiles(pairs[i].path_a, pairs[i].path_b, opt);
            diverged[i] = out.result.diverged;
        });
        benchmark::DoNotOptimize(diverged.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(total_records));
    state.counters["pairs"] =
        benchmark::Counter(static_cast<double>(pairs.size()));
    state.counters["threads"] =
        benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_DiffCorpus)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime() // wall clock: speedup needs physical cores
    ->Unit(benchmark::kMillisecond);

void
BM_DiffAnalyses(benchmark::State& state)
{
    trace::gen::GenOptions gopt;
    gopt.seed = 3;
    gopt.scenario = static_cast<int>(trace::gen::Scenario::MultiCore);
    gopt.records = 200'000;
    const trace::TraceData data_a = trace::gen::generate(gopt);
    const trace::TraceData data_b = perturb(data_a);
    const ta::Analysis a = ta::analyze(data_a);
    const ta::Analysis b = ta::analyze(data_b);
    for (auto _ : state) {
        const ta::DiffResult r = ta::diffAnalyses(a, b);
        benchmark::DoNotOptimize(r.windows_diverged);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) *
        static_cast<std::int64_t>(data_a.records.size() +
                                  data_b.records.size()));
}
BENCHMARK(BM_DiffAnalyses)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
