/**
 * @file
 * E1 — extension experiment: dynamic work-queue vs static split.
 *
 * The forward-looking counterpart to use case F5: instead of fixing a
 * skewed static distribution by hand (what the paper's use case
 * walks through), schedule dynamically through the interrupt
 * mailboxes and let the queue absorb the cost ramp. TA quantifies
 * both: elapsed time, imbalance, and the mailbox price paid for the
 * dynamism.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"
#include "wl/workqueue.h"

int
main()
{
    using namespace cell;

    std::cout << "E1: static split vs dynamic work queue "
                 "(64 items, cost ramp 500+150i cycles, 8 SPEs)\n"
              << "mode     elapsed(cyc)  imbalance  mboxwait%   items/SPE\n";

    for (bool dynamic : {false, true}) {
        rt::CellSystem sys;
        pdt::Pdt tracer(sys);
        wl::WorkQueueParams p;
        p.dynamic = dynamic;
        wl::WorkQueue wq(sys, p);
        wq.start();
        sys.run();
        if (!wq.verify()) {
            std::cerr << "verification failed!\n";
            return 1;
        }
        const ta::Analysis a = ta::analyze(tracer.finalize());

        double mbox = 0;
        std::uint32_t n = 0;
        for (const auto& b : a.stats.spu) {
            if (!b.ran)
                continue;
            mbox += 100.0 * static_cast<double>(b.mbox_wait_tb) /
                    static_cast<double>(b.run_tb);
            ++n;
        }
        std::cout << std::left << std::setw(8)
                  << (dynamic ? "dynamic" : "static") << std::right
                  << std::setw(13) << wq.elapsed() << std::fixed
                  << std::setprecision(2) << std::setw(11)
                  << a.stats.loadImbalance() << std::setprecision(1)
                  << std::setw(11) << (n ? mbox / n : 0.0) << "   ";
        for (auto items : wq.itemsPerSpe())
            std::cout << std::setw(4) << items;
        std::cout << "\n";
    }
    std::cout << "\n(the queue trades a little mailbox wait for a balanced "
                 "machine; the static tail-straggler disappears)\n";
    return 0;
}
