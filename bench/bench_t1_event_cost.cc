/**
 * @file
 * T1 — per-event tracing cost.
 *
 * Reconstructs the paper's per-event overhead table: for each traced
 * operation kind, a microbenchmark SPE program issues the operation
 * in a tight loop; the run is repeated untraced and traced and the
 * difference, divided by the number of operations, is the cost the
 * tracer added per call (each call records a Begin and an End event,
 * except single-marker events).
 *
 * Also prints the cost of the design alternative D3 (reading a
 * globally-coherent clock over MMIO per event instead of the local
 * decrementer), which is why PDT stamps events locally.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

namespace cell {
namespace {

using rt::CoTask;
using rt::SpuEnv;

constexpr std::uint32_t kIters = 512;

struct MicroState
{
    sim::EffAddr scratch_ea = 0;
};
MicroState g_state;

CoTask<void>
loopGet(SpuEnv& env)
{
    const sim::LsAddr buf = env.lsAlloc(128);
    for (std::uint32_t i = 0; i < kIters; ++i) {
        co_await env.mfcGet(buf, g_state.scratch_ea, 128, 0);
        co_await env.waitTagAll(1u << 0);
    }
}

CoTask<void>
loopUserEvent(SpuEnv& env)
{
    for (std::uint32_t i = 0; i < kIters; ++i)
        co_await env.userEvent(7, i);
}

CoTask<void>
loopDecrRead(SpuEnv& env)
{
    for (std::uint32_t i = 0; i < kIters; ++i)
        co_await env.readDecrementer();
}

CoTask<void>
loopMboxEcho(SpuEnv& env)
{
    // Paired with a PPE echo loop below.
    for (std::uint32_t i = 0; i < kIters; ++i) {
        co_await env.writeOutMbox(i);
        co_await env.readInMbox();
    }
}

enum class Micro
{
    GetAndWait,
    UserEvent,
    DecrRead,
    MboxEcho,
};

struct Row
{
    const char* name;
    Micro kind;
    /** Trace events (begin+end pairs counted individually) per iter. */
    double events_per_iter;
};

sim::Tick
runMicro(Micro kind, bool traced)
{
    rt::CellSystem sys;
    std::unique_ptr<pdt::Pdt> tracer;
    if (traced) {
        pdt::PdtConfig cfg;
        cfg.spu_buffer_bytes = 8192;
        tracer = std::make_unique<pdt::Pdt>(sys, cfg);
    }
    g_state.scratch_ea = sys.alloc(4096);

    sim::Tick elapsed = 0;
    sys.runPpe([&](rt::PpeEnv& env) -> CoTask<void> {
        (void)env;
        rt::SpuProgramImage img;
        img.name = "micro";
        switch (kind) {
          case Micro::GetAndWait:
            img.main = [](SpuEnv& e) { return loopGet(e); };
            break;
          case Micro::UserEvent:
            img.main = [](SpuEnv& e) { return loopUserEvent(e); };
            break;
          case Micro::DecrRead:
            img.main = [](SpuEnv& e) { return loopDecrRead(e); };
            break;
          case Micro::MboxEcho:
            img.main = [](SpuEnv& e) { return loopMboxEcho(e); };
            break;
        }
        const sim::Tick t0 = sys.engine().now();
        co_await sys.context(0).start(img);
        if (kind == Micro::MboxEcho) {
            for (std::uint32_t i = 0; i < kIters; ++i) {
                co_await sys.context(0).readOutMbox();
                co_await sys.context(0).writeInMbox(i);
            }
        }
        co_await sys.context(0).join();
        elapsed = sys.engine().now() - t0;
    });
    sys.run();
    return elapsed;
}

} // namespace
} // namespace cell

int
main()
{
    using namespace cell;

    std::cout
        << "T1: per-event tracing cost (SPU @3.2GHz core cycles)\n"
        << "operation             events/call  cost/call  cost/event\n";

    static const Row rows[] = {
        {"MFC_GET + TAG_WAIT", Micro::GetAndWait, 4.0}, // 2 Begin+End pairs
        {"USER_EVENT", Micro::UserEvent, 1.0},
        {"DECREMENTER_READ", Micro::DecrRead, 1.0},
        {"MBOX write+read pair", Micro::MboxEcho, 4.0},
    };

    pdt::PdtConfig cfg;
    for (const Row& r : rows) {
        const sim::Tick base = runMicro(r.kind, false);
        const sim::Tick traced = runMicro(r.kind, true);
        const double per_call =
            static_cast<double>(traced - base) / kIters;
        std::cout << std::left << std::setw(22) << r.name << std::right
                  << std::fixed << std::setprecision(1) << std::setw(11)
                  << r.events_per_iter << std::setw(11) << per_call
                  << std::setw(12) << per_call / r.events_per_iter << "\n";
    }

    std::cout << "\nconfigured costs: record=" << cfg.spu_record_cost
              << " cycles, filtered-check=" << cfg.filtered_check_cost
              << ", flush-issue=" << cfg.flush_issue_cost
              << ", ppe-record=" << cfg.ppe_record_cost << "\n";

    sim::MachineConfig mc;
    std::cout << "\nD3 alternative (global-clock MMIO read per event) would "
                 "cost "
              << mc.cost.ppe_mmio
              << " cycles/event in MMIO alone — vs the decrementer stamp "
                 "already included in the "
              << cfg.spu_record_cost << "-cycle record cost.\n";
    return 0;
}
