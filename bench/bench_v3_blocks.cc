/**
 * @file
 * v3 compressed-block benchmark: codec throughput and the R4
 * compression-ratio experiment.
 *
 * Throughput side: encode/decode a ~1M-record synthetic trace (same
 * shape as bench_ta_parallel's) through the v3 block codec, next to
 * the v1 fixed-record read it replaces, plus the bounded-memory
 * BlockReader streaming one block at a time. bytes_per_second counts
 * UNCOMPRESSED record bytes, so the rates compare directly.
 *
 * Ratio side: one iteration per real workload (triad, matmul, fft,
 * conv2d, pipeline, workqueue) records the trace under PDT and writes
 * it both ways. Counters report the record-region bytes/event of each
 * container and the ratio — the numbers EXPERIMENTS.md R4 quotes. The
 * shared header/name-table bytes are excluded so the ratio measures
 * the encoding itself.
 *
 *     cmake --build build --target bench   # writes BENCH_v3_blocks.json
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "trace/block.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "util/worker_pool.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace {

using namespace cell;

/** Same synthetic shape as bench_ta_parallel: nine cores, ~1M records,
 *  periodic drop markers, SPE decrementers counting down. */
trace::TraceData
bigTrace()
{
    constexpr std::uint32_t kCores = 9; // PPE + 8 SPEs
    constexpr std::uint64_t kRecords = 1u << 20;
    trace::TraceData d;
    d.header.num_spes = kCores - 1;
    d.header.core_hz = 3'200'000'000ULL;
    d.header.timebase_divider = 8;
    d.spe_programs.assign(kCores - 1, "synthetic");
    d.records.reserve(kRecords + kCores);
    std::uint32_t raw[kCores];
    for (std::uint16_t c = 0; c < kCores; ++c) {
        raw[c] = c == 0 ? 1000u : 0xFFFFF000u;
        trace::Record r{};
        r.kind = trace::kSyncRecord;
        r.core = c;
        r.a = raw[c];
        r.b = 1000;
        d.records.push_back(r);
    }
    bool begin[kCores] = {};
    std::uint64_t dropped[kCores] = {};
    for (std::uint64_t i = 0; i < kRecords; ++i) {
        const auto c = static_cast<std::uint16_t>(i % kCores);
        trace::Record r{};
        r.core = c;
        if (i % 65536 == 65535 && c != 0) {
            r.kind = trace::kDropRecord;
            r.a = 3;
            r.b = dropped[c] += 3;
        } else {
            r.kind = static_cast<std::uint8_t>(1 + (i / kCores) % 8);
            r.phase = begin[c] ? trace::kPhaseEnd : trace::kPhaseBegin;
            begin[c] = !begin[c];
        }
        raw[c] += c == 0 ? 50u : -50u;
        r.timestamp = raw[c];
        d.records.push_back(r);
    }
    d.header.record_count = d.records.size();
    return d;
}

const trace::TraceData&
cachedBigTrace()
{
    static const trace::TraceData t = bigTrace();
    return t;
}

std::uint64_t
rawBytes(const trace::TraceData& t)
{
    return t.records.size() * sizeof(trace::Record);
}

void
BM_EncodeV3(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    for (auto _ : state) {
        const auto buf =
            trace::writeBuffer(t, trace::WriteOptions{.compress = true});
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
}
BENCHMARK(BM_EncodeV3)->Unit(benchmark::kMillisecond);

void
BM_DecodeV1(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    const auto buf = trace::writeBuffer(t);
    for (auto _ : state) {
        const trace::TraceData back = trace::readBuffer(buf);
        benchmark::DoNotOptimize(back.records.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
}
BENCHMARK(BM_DecodeV1)->Unit(benchmark::kMillisecond);

void
BM_DecodeV3(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    const auto buf =
        trace::writeBuffer(t, trace::WriteOptions{.compress = true});
    for (auto _ : state) {
        const trace::TraceData back = trace::readBuffer(buf);
        benchmark::DoNotOptimize(back.records.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
    state.counters["compressed_bytes"] =
        benchmark::Counter(static_cast<double>(buf.size()));
}
BENCHMARK(BM_DecodeV3)->Unit(benchmark::kMillisecond);

void
BM_BlockReaderStream(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    const auto buf =
        trace::writeBuffer(t, trace::WriteOptions{.compress = true});
    const std::string s(buf.begin(), buf.end());
    for (auto _ : state) {
        std::istringstream is(s);
        trace::BlockReader br(is);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
}
BENCHMARK(BM_BlockReaderStream)->Unit(benchmark::kMillisecond);

std::string
tempTracePath(const std::string& stem)
{
    return (std::filesystem::temp_directory_path() / stem).string();
}

/** Write the big synthetic trace to a temp file, return its path. */
std::string
bigTraceFile(bool compress)
{
    const std::string path = tempTracePath(
        compress ? "bench_v3_big.v3.pdt" : "bench_v3_big.v1.pdt");
    trace::writeFile(path, cachedBigTrace(),
                     trace::WriteOptions{.compress = compress});
    return path;
}

void
BM_FileReadV1(benchmark::State& state)
{
    const std::string path = bigTraceFile(false);
    for (auto _ : state) {
        const trace::TraceData back = trace::readFile(path);
        benchmark::DoNotOptimize(back.records.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * rawBytes(cachedBigTrace())));
    std::remove(path.c_str());
}
BENCHMARK(BM_FileReadV1)->Iterations(3)->Unit(benchmark::kMillisecond);

void
BM_FileDecodeV3Mmap(benchmark::State& state)
{
    const std::string path = bigTraceFile(true);
    for (auto _ : state) {
        const trace::TraceData back = trace::readFile(path);
        benchmark::DoNotOptimize(back.records.data());
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * rawBytes(cachedBigTrace())));
    std::remove(path.c_str());
}
BENCHMARK(BM_FileDecodeV3Mmap)->Iterations(3)->Unit(benchmark::kMillisecond);

void
BM_BlockReaderMmap(benchmark::State& state)
{
    const std::string path = bigTraceFile(true);
    for (auto _ : state) {
        trace::BlockReader br(path);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * rawBytes(cachedBigTrace())));
    std::remove(path.c_str());
}
BENCHMARK(BM_BlockReaderMmap)->Iterations(3)->Unit(benchmark::kMillisecond);

void
BM_BlockReaderPipelined(benchmark::State& state)
{
    const std::string path = bigTraceFile(true);
    util::WorkerPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        trace::BlockReader br(path);
        br.pipeline(pool, 2);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(
        state.iterations() * rawBytes(cachedBigTrace())));
    std::remove(path.c_str());
}
BENCHMARK(BM_BlockReaderPipelined)
    ->Arg(1)
    ->Arg(2)
    ->Iterations(3)
    ->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------
// R4: compression ratio per workload (record region bytes/event).

using Factory =
    std::unique_ptr<wl::WorkloadBase> (*)(rt::CellSystem&);

trace::TraceData
recordWorkload(Factory make)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys, {});
    auto workload = make(sys);
    workload->start();
    sys.run();
    if (!workload->verify())
        throw std::runtime_error("workload verification failed");
    return tracer.finalize();
}

void
ratioBench(benchmark::State& state, Factory make)
{
    const trace::TraceData t = recordWorkload(make);
    const auto v1 = trace::writeBuffer(t);
    const auto v3 =
        trace::writeBuffer(t, trace::WriteOptions{.compress = true});
    const double n = static_cast<double>(t.records.size());
    const double shared =
        static_cast<double>(v1.size()) - n * sizeof(trace::Record);
    const double v3_region = static_cast<double>(v3.size()) - shared;
    for (auto _ : state) {
        const auto again =
            trace::writeBuffer(t, trace::WriteOptions{.compress = true});
        benchmark::DoNotOptimize(again.data());
    }
    state.counters["events"] = benchmark::Counter(n);
    state.counters["v1_bytes_per_event"] =
        benchmark::Counter(sizeof(trace::Record));
    state.counters["v3_bytes_per_event"] = benchmark::Counter(v3_region / n);
    state.counters["ratio"] =
        benchmark::Counter(n * sizeof(trace::Record) / v3_region);
}

std::unique_ptr<wl::WorkloadBase>
makeTriad(rt::CellSystem& sys)
{
    wl::TriadParams p;
    p.n_elements = 65536;
    p.n_spes = 4;
    return std::make_unique<wl::Triad>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeMatmul(rt::CellSystem& sys)
{
    wl::MatmulParams p;
    p.n = 128;
    p.n_spes = 4;
    return std::make_unique<wl::Matmul>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeFft(rt::CellSystem& sys)
{
    wl::FftParams p;
    p.fft_size = 256;
    p.n_ffts = 512;
    p.batch = 2;
    p.n_spes = 4;
    return std::make_unique<wl::Fft>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeConv2d(rt::CellSystem& sys)
{
    wl::Conv2dParams p;
    p.width = 512;
    p.height = 128;
    p.n_spes = 4;
    return std::make_unique<wl::Conv2d>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makePipeline(rt::CellSystem& sys)
{
    wl::PipelineParams p;
    p.n_elements = 32768;
    p.n_stages = 4;
    return std::make_unique<wl::Pipeline>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeWorkQueue(rt::CellSystem& sys)
{
    wl::WorkQueueParams p;
    p.n_items = 128;
    p.tile_elems = 256;
    p.n_spes = 4;
    return std::make_unique<wl::WorkQueue>(sys, p);
}

// ------------------------------------------------------------------
// R7: decode wall time per workload, v1 fixed records vs v3 columnar
// blocks. The recorded workload traces are a few hundred to a few
// thousand events — far too small to measure a decoder — so each one
// is tiled out to ~1M events first: the record mix, dictionary churn,
// and delta distributions stay the workload's own, at a size where
// per-record cost dominates the syscall noise.
//
// v1_read_ms is a full readFile() of the v1 file. v3_decode_ms is the
// streaming BlockReader decode of every block from the v3 file — the
// path the analyzer pipelines (scan, query, shard readers) actually
// consume, which hands back records in a cache-resident block buffer
// instead of materializing a whole-trace vector. v3_file_read_ms
// reports the full readFile() materialization for reference. The CI
// bench gate pins v3_decode_ms <= v1_read_ms per workload.

constexpr int kDecodeReps = 5;
constexpr std::size_t kDecodeTargetRecords = 1u << 20;

trace::TraceData
tiledTrace(const trace::TraceData& base)
{
    trace::TraceData t;
    t.header = base.header;
    t.spe_programs = base.spe_programs;
    const std::size_t n = base.records.size();
    const std::size_t reps = (kDecodeTargetRecords + n - 1) / n;
    t.records.reserve(reps * n);
    for (std::size_t k = 0; k < reps; ++k)
        t.records.insert(t.records.end(), base.records.begin(),
                         base.records.end());
    t.header.record_count = t.records.size();
    return t;
}

template <typename Fn>
double
bestMs(Fn&& fn)
{
    using clock = std::chrono::steady_clock;
    double best = 1e300;
    for (int i = 0; i <= kDecodeReps; ++i) {
        const auto t0 = clock::now();
        fn();
        const auto t1 = clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(t1 - t0).count();
        if (i > 0) // iteration 0 is the cache warm-up
            best = std::min(best, ms);
    }
    return best;
}

void
fileDecodeBench(benchmark::State& state, Factory make, const char* name)
{
    const trace::TraceData t = tiledTrace(recordWorkload(make));
    const std::string v1p =
        tempTracePath(std::string("bench_fd_") + name + ".v1.pdt");
    const std::string v3p =
        tempTracePath(std::string("bench_fd_") + name + ".v3.pdt");
    trace::writeFile(v1p, t);
    trace::writeFile(v3p, t, trace::WriteOptions{.compress = true});
    const double v1_ms = bestMs([&] {
        const trace::TraceData back = trace::readFile(v1p);
        benchmark::DoNotOptimize(back.records.data());
    });
    const double v3_ms = bestMs([&] {
        trace::BlockReader br(v3p);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    });
    const double v3_file_ms = bestMs([&] {
        const trace::TraceData back = trace::readFile(v3p);
        benchmark::DoNotOptimize(back.records.data());
    });
    for (auto _ : state) {
        trace::BlockReader br(v3p);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    }
    state.counters["events"] =
        benchmark::Counter(static_cast<double>(t.records.size()));
    state.counters["v1_read_ms"] = benchmark::Counter(v1_ms);
    state.counters["v3_decode_ms"] = benchmark::Counter(v3_ms);
    state.counters["v3_file_read_ms"] = benchmark::Counter(v3_file_ms);
    state.counters["decode_speedup"] = benchmark::Counter(v1_ms / v3_ms);
    std::remove(v1p.c_str());
    std::remove(v3p.c_str());
}

/** Block-size sensitivity of the streaming decode, on the workload
 *  that stresses the codec hardest (triad: striding DMA operands). */
void
BM_DecodeBlockSize(benchmark::State& state)
{
    static const trace::TraceData t = tiledTrace(recordWorkload(makeTriad));
    const auto records = static_cast<std::uint32_t>(state.range(0));
    const std::string path = tempTracePath("bench_fd_blocksize.v3.pdt");
    trace::writeFile(path, t,
                     trace::WriteOptions{.compress = true,
                                         .block_records = records});
    const double ms = bestMs([&] {
        trace::BlockReader br(path);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    });
    for (auto _ : state) {
        trace::BlockReader br(path);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    }
    state.counters["decode_ms"] = benchmark::Counter(ms);
    std::remove(path.c_str());
}
BENCHMARK(BM_DecodeBlockSize)
    ->Arg(2048)
    ->Arg(8192)
    ->Arg(32768)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
BM_FileDecode_triad(benchmark::State& s)
{ fileDecodeBench(s, makeTriad, "triad"); }
void
BM_FileDecode_matmul(benchmark::State& s)
{ fileDecodeBench(s, makeMatmul, "matmul"); }
void
BM_FileDecode_fft(benchmark::State& s)
{ fileDecodeBench(s, makeFft, "fft"); }
void
BM_FileDecode_conv2d(benchmark::State& s)
{ fileDecodeBench(s, makeConv2d, "conv2d"); }
void
BM_FileDecode_pipeline(benchmark::State& s)
{ fileDecodeBench(s, makePipeline, "pipeline"); }
void
BM_FileDecode_workqueue(benchmark::State& s)
{ fileDecodeBench(s, makeWorkQueue, "workqueue"); }

BENCHMARK(BM_FileDecode_triad)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FileDecode_matmul)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FileDecode_fft)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FileDecode_conv2d)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FileDecode_pipeline)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_FileDecode_workqueue)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void
BM_Ratio_triad(benchmark::State& s) { ratioBench(s, makeTriad); }
void
BM_Ratio_matmul(benchmark::State& s) { ratioBench(s, makeMatmul); }
void
BM_Ratio_fft(benchmark::State& s) { ratioBench(s, makeFft); }
void
BM_Ratio_conv2d(benchmark::State& s) { ratioBench(s, makeConv2d); }
void
BM_Ratio_pipeline(benchmark::State& s) { ratioBench(s, makePipeline); }
void
BM_Ratio_workqueue(benchmark::State& s) { ratioBench(s, makeWorkQueue); }

BENCHMARK(BM_Ratio_triad)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_matmul)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_fft)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_conv2d)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_pipeline)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_workqueue)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
