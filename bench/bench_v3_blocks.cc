/**
 * @file
 * v3 compressed-block benchmark: codec throughput and the R4
 * compression-ratio experiment.
 *
 * Throughput side: encode/decode a ~1M-record synthetic trace (same
 * shape as bench_ta_parallel's) through the v3 block codec, next to
 * the v1 fixed-record read it replaces, plus the bounded-memory
 * BlockReader streaming one block at a time. bytes_per_second counts
 * UNCOMPRESSED record bytes, so the rates compare directly.
 *
 * Ratio side: one iteration per real workload (triad, matmul, fft,
 * conv2d, pipeline, workqueue) records the trace under PDT and writes
 * it both ways. Counters report the record-region bytes/event of each
 * container and the ratio — the numbers EXPERIMENTS.md R4 quotes. The
 * shared header/name-table bytes are excluded so the ratio measures
 * the encoding itself.
 *
 *     cmake --build build --target bench   # writes BENCH_v3_blocks.json
 */

#include <benchmark/benchmark.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>

#include "pdt/tracer.h"
#include "rt/system.h"
#include "trace/block.h"
#include "trace/reader.h"
#include "trace/writer.h"
#include "wl/conv2d.h"
#include "wl/fft.h"
#include "wl/matmul.h"
#include "wl/pipeline.h"
#include "wl/triad.h"
#include "wl/workqueue.h"

namespace {

using namespace cell;

/** Same synthetic shape as bench_ta_parallel: nine cores, ~1M records,
 *  periodic drop markers, SPE decrementers counting down. */
trace::TraceData
bigTrace()
{
    constexpr std::uint32_t kCores = 9; // PPE + 8 SPEs
    constexpr std::uint64_t kRecords = 1u << 20;
    trace::TraceData d;
    d.header.num_spes = kCores - 1;
    d.header.core_hz = 3'200'000'000ULL;
    d.header.timebase_divider = 8;
    d.spe_programs.assign(kCores - 1, "synthetic");
    d.records.reserve(kRecords + kCores);
    std::uint32_t raw[kCores];
    for (std::uint16_t c = 0; c < kCores; ++c) {
        raw[c] = c == 0 ? 1000u : 0xFFFFF000u;
        trace::Record r{};
        r.kind = trace::kSyncRecord;
        r.core = c;
        r.a = raw[c];
        r.b = 1000;
        d.records.push_back(r);
    }
    bool begin[kCores] = {};
    std::uint64_t dropped[kCores] = {};
    for (std::uint64_t i = 0; i < kRecords; ++i) {
        const auto c = static_cast<std::uint16_t>(i % kCores);
        trace::Record r{};
        r.core = c;
        if (i % 65536 == 65535 && c != 0) {
            r.kind = trace::kDropRecord;
            r.a = 3;
            r.b = dropped[c] += 3;
        } else {
            r.kind = static_cast<std::uint8_t>(1 + (i / kCores) % 8);
            r.phase = begin[c] ? trace::kPhaseEnd : trace::kPhaseBegin;
            begin[c] = !begin[c];
        }
        raw[c] += c == 0 ? 50u : -50u;
        r.timestamp = raw[c];
        d.records.push_back(r);
    }
    d.header.record_count = d.records.size();
    return d;
}

const trace::TraceData&
cachedBigTrace()
{
    static const trace::TraceData t = bigTrace();
    return t;
}

std::uint64_t
rawBytes(const trace::TraceData& t)
{
    return t.records.size() * sizeof(trace::Record);
}

void
BM_EncodeV3(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    for (auto _ : state) {
        const auto buf =
            trace::writeBuffer(t, trace::WriteOptions{.compress = true});
        benchmark::DoNotOptimize(buf.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
}
BENCHMARK(BM_EncodeV3)->Unit(benchmark::kMillisecond);

void
BM_DecodeV1(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    const auto buf = trace::writeBuffer(t);
    for (auto _ : state) {
        const trace::TraceData back = trace::readBuffer(buf);
        benchmark::DoNotOptimize(back.records.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
}
BENCHMARK(BM_DecodeV1)->Unit(benchmark::kMillisecond);

void
BM_DecodeV3(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    const auto buf =
        trace::writeBuffer(t, trace::WriteOptions{.compress = true});
    for (auto _ : state) {
        const trace::TraceData back = trace::readBuffer(buf);
        benchmark::DoNotOptimize(back.records.data());
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
    state.counters["compressed_bytes"] =
        benchmark::Counter(static_cast<double>(buf.size()));
}
BENCHMARK(BM_DecodeV3)->Unit(benchmark::kMillisecond);

void
BM_BlockReaderStream(benchmark::State& state)
{
    const trace::TraceData& t = cachedBigTrace();
    const auto buf =
        trace::writeBuffer(t, trace::WriteOptions{.compress = true});
    const std::string s(buf.begin(), buf.end());
    for (auto _ : state) {
        std::istringstream is(s);
        trace::BlockReader br(is);
        trace::DecodedBlock blk;
        std::uint64_t n = 0;
        while (br.next(blk))
            n += blk.records.size();
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations() * rawBytes(t)));
}
BENCHMARK(BM_BlockReaderStream)->Unit(benchmark::kMillisecond);

// ------------------------------------------------------------------
// R4: compression ratio per workload (record region bytes/event).

using Factory =
    std::unique_ptr<wl::WorkloadBase> (*)(rt::CellSystem&);

trace::TraceData
recordWorkload(Factory make)
{
    rt::CellSystem sys;
    pdt::Pdt tracer(sys, {});
    auto workload = make(sys);
    workload->start();
    sys.run();
    if (!workload->verify())
        throw std::runtime_error("workload verification failed");
    return tracer.finalize();
}

void
ratioBench(benchmark::State& state, Factory make)
{
    const trace::TraceData t = recordWorkload(make);
    const auto v1 = trace::writeBuffer(t);
    const auto v3 =
        trace::writeBuffer(t, trace::WriteOptions{.compress = true});
    const double n = static_cast<double>(t.records.size());
    const double shared =
        static_cast<double>(v1.size()) - n * sizeof(trace::Record);
    const double v3_region = static_cast<double>(v3.size()) - shared;
    for (auto _ : state) {
        const auto again =
            trace::writeBuffer(t, trace::WriteOptions{.compress = true});
        benchmark::DoNotOptimize(again.data());
    }
    state.counters["events"] = benchmark::Counter(n);
    state.counters["v1_bytes_per_event"] =
        benchmark::Counter(sizeof(trace::Record));
    state.counters["v3_bytes_per_event"] = benchmark::Counter(v3_region / n);
    state.counters["ratio"] =
        benchmark::Counter(n * sizeof(trace::Record) / v3_region);
}

std::unique_ptr<wl::WorkloadBase>
makeTriad(rt::CellSystem& sys)
{
    wl::TriadParams p;
    p.n_elements = 65536;
    p.n_spes = 4;
    return std::make_unique<wl::Triad>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeMatmul(rt::CellSystem& sys)
{
    wl::MatmulParams p;
    p.n = 128;
    p.n_spes = 4;
    return std::make_unique<wl::Matmul>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeFft(rt::CellSystem& sys)
{
    wl::FftParams p;
    p.fft_size = 256;
    p.n_ffts = 512;
    p.batch = 2;
    p.n_spes = 4;
    return std::make_unique<wl::Fft>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeConv2d(rt::CellSystem& sys)
{
    wl::Conv2dParams p;
    p.width = 512;
    p.height = 128;
    p.n_spes = 4;
    return std::make_unique<wl::Conv2d>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makePipeline(rt::CellSystem& sys)
{
    wl::PipelineParams p;
    p.n_elements = 32768;
    p.n_stages = 4;
    return std::make_unique<wl::Pipeline>(sys, p);
}
std::unique_ptr<wl::WorkloadBase>
makeWorkQueue(rt::CellSystem& sys)
{
    wl::WorkQueueParams p;
    p.n_items = 128;
    p.tile_elems = 256;
    p.n_spes = 4;
    return std::make_unique<wl::WorkQueue>(sys, p);
}

void
BM_Ratio_triad(benchmark::State& s) { ratioBench(s, makeTriad); }
void
BM_Ratio_matmul(benchmark::State& s) { ratioBench(s, makeMatmul); }
void
BM_Ratio_fft(benchmark::State& s) { ratioBench(s, makeFft); }
void
BM_Ratio_conv2d(benchmark::State& s) { ratioBench(s, makeConv2d); }
void
BM_Ratio_pipeline(benchmark::State& s) { ratioBench(s, makePipeline); }
void
BM_Ratio_workqueue(benchmark::State& s) { ratioBench(s, makeWorkQueue); }

BENCHMARK(BM_Ratio_triad)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_matmul)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_fft)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_conv2d)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_pipeline)->Iterations(1)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Ratio_workqueue)->Iterations(1)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
