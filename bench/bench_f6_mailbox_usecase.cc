/**
 * @file
 * F6 — use case: mailbox serialization, as TA reports it.
 *
 * The reduction workload in its two coordination modes: one partial
 * result per SPE at the end, vs a mailbox ping-pong per tile. TA's
 * mailbox-wait share exposes the serialization behind the single PPE
 * reader. Expected shape: the chatty mode's elapsed time and
 * mbox-wait share jump dramatically while compute share collapses;
 * the per-SPE wait grows with SPE count (more SPEs contending for
 * the PPE's attention).
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    std::cout << "F6: TA mailbox view — reduction coordination styles\n"
              << "spes  mode          elapsed(cyc)  mboxwait%  compute%"
                 "  mbox events\n";

    for (std::uint32_t spes : {2u, 4u, 8u}) {
        for (bool chatty : {false, true}) {
            const RunOutcome r = runOnce(makeReduction(spes, chatty), true);
            const ta::Analysis a = ta::analyze(r.trace);

            double mbox = 0;
            double compute = 0;
            for (std::uint32_t s = 0; s < spes; ++s) {
                const auto& b = a.stats.spu[s];
                mbox += 100.0 * static_cast<double>(b.mbox_wait_tb) /
                        static_cast<double>(b.run_tb);
                compute += 100.0 * b.utilization();
            }
            std::uint64_t mbox_events = 0;
            for (const auto& row : a.stats.op_counts) {
                mbox_events +=
                    row[static_cast<std::size_t>(rt::ApiOp::SpuMboxRead)] +
                    row[static_cast<std::size_t>(rt::ApiOp::SpuMboxWrite)] +
                    row[static_cast<std::size_t>(rt::ApiOp::PpeMboxRead)] +
                    row[static_cast<std::size_t>(rt::ApiOp::PpeMboxWrite)];
            }
            std::cout << std::setw(4) << spes << "  " << std::left
                      << std::setw(12) << (chatty ? "per-tile" : "at-end")
                      << std::right << std::setw(14) << r.elapsed
                      << std::fixed << std::setprecision(1) << std::setw(11)
                      << mbox / spes << std::setw(10) << compute / spes
                      << std::setw(13) << mbox_events << "\n";
        }
    }
    return 0;
}
