/**
 * @file
 * F3 — overhead vs event-group filtering, and ablation D2.
 *
 * Runs triad and matmul with different group masks: everything, DMA
 * only, DMA-wait only, mailbox only, lifecycle only, and nothing
 * (tracer attached but all groups off — the pure check cost).
 * Expected shape: overhead scales with the share of events the mask
 * keeps; the all-off row isolates the few-cycles-per-call check that
 * is the price of runtime (rather than compile-time) filtering —
 * design decision D2.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    struct MaskRow
    {
        const char* name;
        pdt::GroupMask mask;
    };
    const MaskRow masks[] = {
        {"ALL", pdt::kAllGroups},
        {"DMA only", pdt::groupBit(rt::ApiGroup::Dma)},
        {"DMA_WAIT only", pdt::groupBit(rt::ApiGroup::DmaWait)},
        {"MAILBOX only", pdt::groupBit(rt::ApiGroup::Mailbox)},
        {"LIFECYCLE only", pdt::groupBit(rt::ApiGroup::Lifecycle)},
        {"NONE (check only)", 0},
    };

    std::cout << "F3: overhead vs event-group filter (8 SPEs)\n"
              << "                      triad              matmul\n"
              << "groups            slowdown  records  slowdown  records\n";

    const WorkloadFactory triad = makeTriad(8);
    const WorkloadFactory matmul = makeMatmul(8);
    const RunOutcome triad_base = runOnce(triad, false);
    const RunOutcome matmul_base = runOnce(matmul, false);

    for (const MaskRow& m : masks) {
        pdt::PdtConfig cfg;
        cfg.groups = m.mask;
        const RunOutcome t = runOnce(triad, true, cfg);
        const RunOutcome mm = runOnce(matmul, true, cfg);
        std::cout << std::left << std::setw(18) << m.name << std::right
                  << std::fixed << std::setprecision(3) << std::setw(8)
                  << slowdown(t, triad_base) << std::setw(9) << t.records
                  << std::setw(10) << slowdown(mm, matmul_base)
                  << std::setw(9) << mm.records << "\n";
    }
    return 0;
}
