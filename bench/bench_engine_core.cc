/**
 * @file
 * Engine hot-path microbenchmarks.
 *
 * Measures the raw discrete-event machinery in isolation — no machine
 * model, no workload — so regressions in the scheduler itself are
 * visible without the Cell model's noise:
 *
 *   - BM_DelayResume:    one process spinning on delay(1); each
 *                        iteration dispatches one coroutine resume.
 *   - BM_CallbackEvent:  one EventCallback scheduled + dispatched per
 *                        iteration (the SBO callable path).
 *   - BM_PingPong64:     64 processes in a notify ring (CondVar wait,
 *                        delay, notify next) — the cross-process
 *                        wakeup pattern every sync primitive uses.
 *
 * Each benchmark also reports host heap allocations per dispatched
 * event (host_allocs_per_event), counted via a global operator new
 * override. On the steady-state path this must be zero: event storage
 * is reused, payloads are inline, and coroutine frames come from the
 * frame pool.
 */

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__GLIBC__)
#include <malloc.h>
#endif

#include <benchmark/benchmark.h>

#include "src/sim/engine.h"
#include "src/sim/sync.h"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void*
operator new(std::size_t n)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(n))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace {

using cell::sim::CondVar;
using cell::sim::Engine;
using cell::sim::Task;
using cell::sim::Tick;

Task
spinner(Engine& eng)
{
    for (;;)
        co_await eng.delay(1);
}

void
BM_DelayResume(benchmark::State& state)
{
    Engine eng;
    eng.spawn(spinner(eng), "spinner");
    Tick t = 0;
    eng.run(t); // warm up: first resume + first reschedule
    const std::uint64_t d0 = eng.eventsDispatched();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    for (auto _ : state)
        eng.run(++t);
    const std::uint64_t events = eng.eventsDispatched() - d0;
    const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["host_allocs_per_event"] =
        events ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0.0;
}
BENCHMARK(BM_DelayResume);

void
BM_CallbackEvent(benchmark::State& state)
{
    Engine eng;
    std::uint64_t sink = 0;
    Tick t = 0;
    // Warm up the event storage.
    eng.schedule(t + 1, [&sink] { ++sink; });
    eng.run(++t);
    const std::uint64_t d0 = eng.eventsDispatched();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    for (auto _ : state) {
        eng.schedule(t + 1, [&sink] { ++sink; });
        eng.run(++t);
    }
    const std::uint64_t events = eng.eventsDispatched() - d0;
    const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    benchmark::DoNotOptimize(sink);
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["host_allocs_per_event"] =
        events ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0.0;
}
BENCHMARK(BM_CallbackEvent);

Task
ringMember(Engine& eng, CondVar& me, CondVar& next, const bool& stop)
{
    for (;;) {
        co_await me.wait();
        if (stop)
            co_return;
        co_await eng.delay(1);
        next.notifyOne();
    }
}

void
BM_PingPong64(benchmark::State& state)
{
    constexpr std::size_t kRing = 64;
    Engine eng;
    bool stop = false;
    std::vector<std::unique_ptr<CondVar>> cvs;
    cvs.reserve(kRing);
    for (std::size_t i = 0; i < kRing; ++i)
        cvs.push_back(std::make_unique<CondVar>(eng));
    for (std::size_t i = 0; i < kRing; ++i)
        eng.spawn(ringMember(eng, *cvs[i], *cvs[(i + 1) % kRing], stop),
                  "ring");
    Tick t = 0;
    eng.run(t); // all members reach their first wait()
    cvs[0]->notifyOne();
    eng.run(++t); // warm up one hop
    const std::uint64_t d0 = eng.eventsDispatched();
    const std::uint64_t a0 = g_allocs.load(std::memory_order_relaxed);
    for (auto _ : state)
        eng.run(++t);
    const std::uint64_t events = eng.eventsDispatched() - d0;
    const std::uint64_t allocs = g_allocs.load(std::memory_order_relaxed) - a0;
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
    state.counters["host_allocs_per_event"] =
        events ? static_cast<double>(allocs) / static_cast<double>(events)
               : 0.0;
    // Let the ring members exit cleanly before the CondVars go away.
    stop = true;
    cvs[0]->notifyOne();
}
BENCHMARK(BM_PingPong64);

#if defined(__GLIBC__)
/** Same rationale as bench/common.h: measure the engine, not malloc
 *  trim. Kept local to avoid pulling the full workload stack in. */
const bool g_alloc_tuned = [] {
    mallopt(M_TRIM_THRESHOLD, 64 << 20);
    mallopt(M_MMAP_THRESHOLD, 64 << 20);
    return true;
}();
#endif

} // namespace

BENCHMARK_MAIN();
