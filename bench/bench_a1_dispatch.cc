/**
 * @file
 * A1 — ablation: MFC dispatch policy and the tracer's dedicated tag.
 *
 * PDT flushes its buffers with DMAs on a dedicated tag group (31),
 * relying on the MFC's ability to dispatch commands out of order
 * around fence-blocked ones. This ablation runs a fence-heavy SPE
 * kernel (read-modify-write with fenced PUTs) under tracing with the
 * hardware-like oldest-eligible dispatch versus a strict-FIFO queue.
 * Expected shape: under strict FIFO the flush DMAs queue behind the
 * application's fenced commands and tracing overhead grows; with
 * bypass the dedicated tag keeps flushes off the critical path.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

namespace {

using namespace cell;
using rt::CoTask;
using rt::SpuEnv;

sim::EffAddr g_area;

/** Fence-heavy kernel: back-to-back large LS-to-LS PUT + fenced PUT
 *  pairs with no tag wait in between, so the fenced command sits
 *  ineligible in the queue while the program keeps running (and keeps
 *  emitting trace events that need flushing). The app transfers go
 *  SPE-to-SPE so they do not contend with the tracer's memory-bound
 *  flush DMAs on the MIC — isolating the queue-policy effect. */
CoTask<void>
fenceHeavy(SpuEnv& env)
{
    const sim::LsAddr buf = env.lsAlloc(16384);
    const sim::LsAddr buf2 = env.lsAlloc(16384);
    for (std::uint32_t i = 0; i < 64; ++i) {
        co_await env.mfcPut(buf, g_area, 16384, 0);
        // Fenced: ineligible until the PUT above completes.
        co_await env.mfcPutf(buf2, g_area + 16384, 16384, 0);
        // Event traffic that periodically forces a buffer flush.
        for (std::uint32_t k = 0; k < 8; ++k)
            co_await env.userEvent(k, i);
        co_await env.compute(500);
    }
    co_await env.waitTagAll(1u << 0);
}

struct A1Result
{
    sim::Tick elapsed = 0;
    std::uint64_t flush_waits = 0;
    std::uint64_t flushes = 0;
};

A1Result
run(bool bypass, bool traced)
{
    sim::MachineConfig mc;
    mc.mfc.oldest_eligible_first = bypass;
    rt::CellSystem sys(mc);
    std::unique_ptr<pdt::Pdt> tracer;
    if (traced) {
        pdt::PdtConfig cfg;
        cfg.spu_buffer_bytes = 128; // flush every two events
        tracer = std::make_unique<pdt::Pdt>(sys, cfg);
    }
    // Target SPE1's local store: LS-to-LS, MIC-free.
    g_area = sys.config().lsAperture(1) + 0x20000;

    A1Result res;
    sys.runPpe([&](rt::PpeEnv&) -> CoTask<void> {
        rt::SpuProgramImage img;
        img.name = "fence_heavy";
        img.main = fenceHeavy;
        const sim::Tick t0 = sys.engine().now();
        co_await sys.context(0).start(img);
        co_await sys.context(0).join();
        res.elapsed = sys.engine().now() - t0;
    });
    sys.run();
    if (tracer) {
        res.flush_waits = tracer->stats().spu[0].flush_wait_cycles;
        res.flushes = tracer->stats().spu[0].flushes;
    }
    return res;
}

} // namespace

int
main()
{
    std::cout << "A1: MFC dispatch policy x tracing (fence-heavy kernel, "
                 "128 B trace buffer)\n"
              << "policy             untraced     traced   overhead"
                 "   flushes  flush_wait(cyc)\n";
    for (bool bypass : {true, false}) {
        const A1Result base = run(bypass, false);
        const A1Result traced = run(bypass, true);
        std::cout << std::left << std::setw(17)
                  << (bypass ? "oldest-eligible" : "strict-FIFO")
                  << std::right << std::setw(11) << base.elapsed
                  << std::setw(11) << traced.elapsed << std::fixed
                  << std::setprecision(3) << std::setw(11)
                  << static_cast<double>(traced.elapsed) /
                         static_cast<double>(base.elapsed)
                  << std::setw(10) << traced.flushes << std::setw(17)
                  << traced.flush_waits << "\n";
    }
    std::cout << "\n(the tracer's tag-31 flushes bypass the app's fenced "
                 "tag-0 commands only under oldest-eligible dispatch)\n";
    return 0;
}
