/**
 * @file
 * F5 — use case: load imbalance, as TA reports it.
 *
 * Blocked matmul with increasing tile-distribution skew. TA's
 * per-SPE busy times and the max/mean imbalance metric quantify the
 * problem; the elapsed column shows the time the imbalance costs.
 * Expected shape: imbalance and elapsed rise together with skew;
 * per-SPE busy spreads from uniform to strongly graded.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    std::cout << "F5: TA load-balance view vs distribution skew "
                 "(matmul 128x128, 8 SPEs)\n"
              << "skew  elapsed(cyc)  imbalance   busy(us) per SPE 0..7\n";

    for (std::uint32_t skew : {0u, 2u, 4u}) {
        const RunOutcome r = runOnce(makeMatmul(8, 128, skew), true);
        const ta::Analysis a = ta::analyze(r.trace);

        std::cout << std::setw(4) << skew << std::setw(13) << r.elapsed
                  << std::fixed << std::setprecision(2) << std::setw(11)
                  << a.stats.loadImbalance() << "   ";
        for (const auto& b : a.stats.spu) {
            std::cout << std::setprecision(0) << std::setw(6)
                      << (b.ran ? a.model.tbToUs(b.busy_tb()) : 0.0);
        }
        std::cout << "\n";
    }
    return 0;
}
