/**
 * @file
 * F1 — end-to-end tracing overhead.
 *
 * Reconstructs the paper's central overhead figure: slowdown of each
 * workload with PDT attached (all groups traced) relative to the
 * untraced run, across 1/2/4/8 SPEs. The expected shape: overhead
 * tracks the event *rate* (events per compute), so chatty workloads
 * (reduction in per-tile mode, pipeline) pay more than dense-compute
 * ones (matmul), and overhead stays in the few-percent range for
 * typical kernels — the paper's "low enough to leave on" claim.
 */

#include <iomanip>
#include <iostream>

#include "bench/common.h"

int
main()
{
    using namespace cell;
    using namespace cell::bench;

    const std::uint32_t spe_counts[] = {1, 2, 4, 8};

    std::cout << "F1: tracing overhead (traced / untraced elapsed)\n"
              << "workload        1 SPE    2 SPE    4 SPE    8 SPE"
                 "   events/Mcycle(8)\n";

    for (const char* name : {"triad", "matmul", "conv2d", "fft",
                             "reduction", "pipeline", "gather"}) {
        std::cout << std::left << std::setw(12) << name << std::right;
        double last_rate = 0;
        for (std::uint32_t spes : spe_counts) {
            WorkloadFactory f;
            for (const NamedWorkload& w : standardSuite(spes)) {
                if (std::string(w.name) == name)
                    f = w.factory;
            }
            const RunOutcome base = runOnce(f, false);
            const RunOutcome traced = runOnce(f, true);
            std::cout << std::fixed << std::setprecision(3) << std::setw(9)
                      << slowdown(traced, base);
            last_rate = 1e6 * static_cast<double>(traced.records) /
                        static_cast<double>(traced.elapsed);
        }
        std::cout << std::setprecision(0) << std::setw(15) << last_rate
                  << "\n";
    }
    std::cout << "\n(shape check: overhead grows with the workload's event "
                 "rate, not with SPE count per se)\n";
    return 0;
}
