/**
 * @file
 * Scaling benchmark for the parallel trace analyzer.
 *
 * One large triad trace is generated once; BM_AnalyzeSerial runs the
 * legacy single-thread pipeline over it, BM_AnalyzeParallel/N the
 * sharded pipeline at N threads (reusing one worker pool across
 * iterations, as the CLI does). items_per_second is records analyzed
 * per second, so the scaling curve reads directly off the JSON output:
 *
 *     cmake --build build --target bench   # writes BENCH_ta_parallel.json
 *
 * Note the outputs are asserted identical elsewhere (the differential
 * harness); this file measures nothing but wall clock. Speedup above 1
 * thread requires physical cores — on a single-core host the curve is
 * flat and the parallel path only pays its (small) coordination cost.
 */

#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "ta/parallel.h"

namespace {

using namespace cell;

/**
 * One big trace, shared by every benchmark. Synthesized rather than
 * simulated: a traced run at bench scale yields only a few thousand
 * records (records scale with DMA chunks, not elements), which fits
 * in one or two shards and never exercises the parallel fan-out. A
 * synthetic 1M-record trace (~256 shards at the default shard size)
 * does, and builds in milliseconds. Shape: per-core sync records
 * first, then round-robin begin/end event pairs on all nine cores
 * with SPE decrementers counting down and the PPE timebase counting
 * up, plus a periodic drop marker so the loss path is on the clock.
 */
const trace::TraceData&
bigTrace()
{
    static const trace::TraceData data = [] {
        constexpr std::uint32_t kCores = 9; // PPE + 8 SPEs
        constexpr std::uint64_t kRecords = 1u << 20;
        trace::TraceData d;
        d.header.num_spes = kCores - 1;
        d.header.core_hz = 3'200'000'000ULL;
        d.header.timebase_divider = 8;
        d.spe_programs.assign(kCores - 1, "synthetic");
        d.records.reserve(kRecords + kCores);
        std::uint32_t raw[kCores];
        for (std::uint16_t c = 0; c < kCores; ++c) {
            raw[c] = c == 0 ? 1000u : 0xFFFFF000u;
            trace::Record r{};
            r.kind = trace::kSyncRecord;
            r.core = c;
            r.a = raw[c]; // raw stamp at the sync point
            r.b = 1000;   // timebase at the sync point
            d.records.push_back(r);
        }
        bool begin[kCores] = {};
        std::uint64_t dropped[kCores] = {};
        for (std::uint64_t i = 0; i < kRecords; ++i) {
            const auto c = static_cast<std::uint16_t>(i % kCores);
            trace::Record r{};
            r.core = c;
            if (i % 65536 == 65535 && c != 0) {
                r.kind = trace::kDropRecord;
                r.a = 3;
                r.b = dropped[c] += 3;
            } else {
                r.kind = static_cast<std::uint8_t>(1 + (i / kCores) % 8);
                r.phase = begin[c] ? trace::kPhaseEnd : trace::kPhaseBegin;
                begin[c] = !begin[c];
            }
            raw[c] += c == 0 ? 50u : -50u; // SPE decrementers count down
            r.timestamp = raw[c];
            d.records.push_back(r);
        }
        d.header.record_count = d.records.size();
        return d;
    }();
    return data;
}

void
BM_AnalyzeSerial(benchmark::State& state)
{
    const trace::TraceData& data = bigTrace();
    for (auto _ : state) {
        const ta::Analysis a = ta::analyze(data);
        benchmark::DoNotOptimize(a.stats.total_records);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(data.records.size()));
}
BENCHMARK(BM_AnalyzeSerial)->Unit(benchmark::kMillisecond);

void
BM_AnalyzeParallel(benchmark::State& state)
{
    const trace::TraceData& data = bigTrace();
    ta::WorkerPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        const ta::Analysis a = ta::analyzeParallel(data, pool);
        benchmark::DoNotOptimize(a.stats.total_records);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(data.records.size()));
    state.counters["threads"] =
        benchmark::Counter(static_cast<double>(state.range(0)));
}
BENCHMARK(BM_AnalyzeParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_BuildModelParallel(benchmark::State& state)
{
    const trace::TraceData& data = bigTrace();
    ta::WorkerPool pool(static_cast<unsigned>(state.range(0)));
    for (auto _ : state) {
        const ta::TraceModel m = ta::buildModelParallel(data, pool);
        benchmark::DoNotOptimize(m.endTb());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(data.records.size()));
}
BENCHMARK(BM_BuildModelParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
