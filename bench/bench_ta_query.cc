/**
 * @file
 * Windowed-query benchmark: indexed seek vs. full scan.
 *
 * One large synthetic trace (same shape as bench_ta_parallel's) is
 * written to a temp file twice — plain v1 and v2 with a footer index —
 * and both paths answer the same [from, to) windows. The windows are
 * centered fractions of the trace span (1/1024, 1/64, 1/8, whole), so
 * the JSON output reads as "how much does the index save as the window
 * shrinks". BM_WindowIndexedCold clears the block cache every
 * iteration to price the first-touch disk reads separately from the
 * warm steady state.
 *
 *     cmake --build build --target bench   # writes BENCH_ta_query.json
 *
 * Indexed and full-scan answers are asserted byte-identical elsewhere
 * (tests/ta/test_query_diff.cc); this file measures wall clock only.
 */

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <string>

#include "ta/parallel.h"
#include "ta/query.h"
#include "trace/writer.h"

namespace {

using namespace cell;

/** Same synthetic shape as bench_ta_parallel: nine cores, ~1M records,
 *  periodic drop markers, SPE decrementers counting down. */
trace::TraceData
bigTrace()
{
    constexpr std::uint32_t kCores = 9; // PPE + 8 SPEs
    constexpr std::uint64_t kRecords = 1u << 20;
    trace::TraceData d;
    d.header.num_spes = kCores - 1;
    d.header.core_hz = 3'200'000'000ULL;
    d.header.timebase_divider = 8;
    d.spe_programs.assign(kCores - 1, "synthetic");
    d.records.reserve(kRecords + kCores);
    std::uint32_t raw[kCores];
    for (std::uint16_t c = 0; c < kCores; ++c) {
        raw[c] = c == 0 ? 1000u : 0xFFFFF000u;
        trace::Record r{};
        r.kind = trace::kSyncRecord;
        r.core = c;
        r.a = raw[c];
        r.b = 1000;
        d.records.push_back(r);
    }
    bool begin[kCores] = {};
    std::uint64_t dropped[kCores] = {};
    for (std::uint64_t i = 0; i < kRecords; ++i) {
        const auto c = static_cast<std::uint16_t>(i % kCores);
        trace::Record r{};
        r.core = c;
        if (i % 65536 == 65535 && c != 0) {
            r.kind = trace::kDropRecord;
            r.a = 3;
            r.b = dropped[c] += 3;
        } else {
            r.kind = static_cast<std::uint8_t>(1 + (i / kCores) % 8);
            r.phase = begin[c] ? trace::kPhaseEnd : trace::kPhaseBegin;
            begin[c] = !begin[c];
        }
        raw[c] += c == 0 ? 50u : -50u;
        r.timestamp = raw[c];
        d.records.push_back(r);
    }
    d.header.record_count = d.records.size();
    return d;
}

/** The two on-disk variants plus the span the windows slice. */
struct Fixture
{
    std::string v1_path;
    std::string v2_path;
    std::uint64_t start_tb = 0;
    std::uint64_t span_tb = 0;
    std::uint64_t n_records = 0;
};

const Fixture&
fixture()
{
    static const Fixture f = [] {
        const trace::TraceData d = bigTrace();
        const std::string dir =
            std::filesystem::temp_directory_path().string();
        Fixture fx;
        fx.v1_path = dir + "/bench_ta_query.v1.pdt";
        fx.v2_path = dir + "/bench_ta_query.v2.pdt";
        trace::writeFile(fx.v1_path, d);
        trace::writeFile(fx.v2_path, d,
                         trace::WriteOptions{.index_stride =
                                                 trace::kDefaultIndexStride});
        const ta::Analysis a = ta::analyze(d);
        fx.start_tb = a.model.startTb();
        fx.span_tb = a.model.spanTb();
        fx.n_records = d.records.size();
        return fx;
    }();
    return f;
}

/** Centered window covering 1/denom of the trace span. */
void
windowFor(std::uint64_t denom, std::uint64_t& from, std::uint64_t& to)
{
    const Fixture& f = fixture();
    const std::uint64_t w = f.span_tb / denom;
    from = f.start_tb + (f.span_tb - w) / 2;
    to = from + (w == 0 ? 1 : w);
}

void
runQuery(benchmark::State& state, const std::string& path, bool force_full,
         bool cold)
{
    std::uint64_t from = 0, to = 0;
    windowFor(static_cast<std::uint64_t>(state.range(0)), from, to);
    ta::BlockCache cache; // private, so runs don't warm each other
    ta::QueryOptions opt;
    opt.threads = 4;
    opt.force_full_scan = force_full;
    opt.cache = &cache;
    std::uint64_t scanned = 0;
    bool used_index = false;
    for (auto _ : state) {
        if (cold)
            cache.clear();
        const ta::WindowResult r = ta::queryWindowFile(path, from, to, opt);
        benchmark::DoNotOptimize(r.cores.size());
        scanned = r.records_scanned;
        used_index = r.used_index;
    }
    const Fixture& f = fixture();
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(f.n_records));
    state.counters["window_frac"] =
        benchmark::Counter(1.0 / static_cast<double>(state.range(0)));
    state.counters["records_scanned"] =
        benchmark::Counter(static_cast<double>(scanned));
    state.counters["used_index"] =
        benchmark::Counter(used_index ? 1.0 : 0.0);
}

void
BM_WindowIndexed(benchmark::State& state)
{
    runQuery(state, fixture().v2_path, /*force_full=*/false, /*cold=*/false);
}
BENCHMARK(BM_WindowIndexed)
    ->Arg(1024)
    ->Arg(64)
    ->Arg(8)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

void
BM_WindowIndexedCold(benchmark::State& state)
{
    runQuery(state, fixture().v2_path, /*force_full=*/false, /*cold=*/true);
}
BENCHMARK(BM_WindowIndexedCold)
    ->Arg(1024)
    ->Arg(64)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void
BM_WindowFullScan(benchmark::State& state)
{
    // Same v2 file, index deliberately ignored: isolates the seek win
    // from any difference in the bytes on disk.
    runQuery(state, fixture().v2_path, /*force_full=*/true, /*cold=*/false);
}
BENCHMARK(BM_WindowFullScan)
    ->Arg(1024)
    ->Arg(64)
    ->Arg(8)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char** argv)
{
    ::benchmark::Initialize(&argc, argv);
    if (::benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    ::benchmark::RunSpecifiedBenchmarks();
    ::benchmark::Shutdown();
    std::remove(fixture().v1_path.c_str());
    std::remove(fixture().v2_path.c_str());
    return 0;
}
