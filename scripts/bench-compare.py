#!/usr/bin/env python3
"""Benchmark regression gate over google-benchmark JSON output.

Two checks, composable in one invocation:

  Baseline compare (two files):
      bench-compare.py bench/baselines/BENCH_bench_v3_blocks.json \
                       build-release/BENCH_bench_v3_blocks.json
    Matches benchmarks by name (the intersection — a filtered current
    run against a full baseline compares just the filtered set), prints
    a delta table, and fails if any wall time regresses by more than
    --threshold (default 15%). Counters marked higher-is-better
    (decode_speedup) gate in the opposite direction. Baselines are
    machine-specific: regenerate them on the reference machine with the
    `release` preset whenever the hardware or the workload changes
    (see bench/baselines/README.md).

  Decode invariant (--assert-decode, works with one file):
      bench-compare.py --assert-decode build/BENCH_bench_v3_blocks.json
    Every benchmark exporting both v1_read_ms and v3_decode_ms counters
    must satisfy v3_decode_ms <= v1_read_ms * --slack. This is the
    tentpole claim of the columnar codec — compressed blocks decode at
    least as fast as reading the uncompressed file — checked on the
    numbers of the machine at hand, so it is meaningful even on noisy
    shared runners where absolute baselines are not.

Exit status: 0 clean, 1 any gate tripped, 2 usage/parse error.
"""

import argparse
import json
import sys

# Counters where LARGER is better; wall times and everything else
# gate on increase.
HIGHER_IS_BETTER = {"decode_speedup", "events_per_sec", "bytes_per_second",
                    "items_per_second"}

# Counters that are facts about the run (or denominators of gated
# ratios), not product metrics — shown in the table but never gated.
INFORMATIONAL = {"events", "blocks", "records", "v3_file_read_ms",
                 "v1_read_ms"}


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        sys.exit(f"bench-compare: cannot read {path}: {e}")
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = b
    if not out:
        sys.exit(f"bench-compare: no benchmark entries in {path}")
    return out


def wall_ms(entry):
    unit = entry.get("time_unit", "ns")
    scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
    if scale is None:
        sys.exit(f"bench-compare: unknown time unit {unit!r}")
    return entry["real_time"] * scale


def counters(entry):
    skip = {"name", "run_name", "run_type", "repetitions",
            "repetition_index", "threads", "iterations", "real_time",
            "cpu_time", "time_unit", "family_index",
            "per_family_instance_index", "aggregate_name"}
    return {k: v for k, v in entry.items()
            if k not in skip and isinstance(v, (int, float))}


def compare(base, cur, threshold):
    names = [n for n in base if n in cur]
    if not names:
        sys.exit("bench-compare: baseline and current share no "
                 "benchmark names")
    failures = []
    rows = []
    for n in names:
        rows.append((n, "wall_ms", wall_ms(base[n]), wall_ms(cur[n]), False))
        bc, cc = counters(base[n]), counters(cur[n])
        for k in sorted(bc.keys() & cc.keys()):
            if k in INFORMATIONAL:
                continue
            rows.append((n, k, bc[k], cc[k], k in HIGHER_IS_BETTER))

    w = max(len(r[0]) + len(r[1]) + 1 for r in rows)
    print(f"{'benchmark/metric':<{w}}  {'baseline':>12}  {'current':>12}"
          f"  {'delta':>8}")
    for name, metric, b, c, higher in rows:
        if b <= 0:
            delta = 0.0
        else:
            delta = (c - b) / b
        regressed = (-delta if higher else delta) > threshold
        mark = "  FAIL" if regressed else ""
        print(f"{name + '/' + metric:<{w}}  {b:>12.4g}  {c:>12.4g}"
              f"  {delta:>+7.1%}{mark}")
        if regressed:
            failures.append(f"{name}/{metric}: {b:.4g} -> {c:.4g} "
                            f"({delta:+.1%}, limit {threshold:.0%})")
    return failures


def assert_decode(cur, slack):
    failures = []
    checked = 0
    for n in sorted(cur):
        c = counters(cur[n])
        if "v1_read_ms" not in c or "v3_decode_ms" not in c:
            continue
        checked += 1
        v1, v3 = c["v1_read_ms"], c["v3_decode_ms"]
        ok = v3 <= v1 * slack
        print(f"decode<=v1  {n}: v3_decode={v3:.2f}ms v1_read={v1:.2f}ms "
              f"({v3 / v1 if v1 > 0 else float('inf'):.2f}x)"
              f"{'' if ok else '  FAIL'}")
        if not ok:
            failures.append(f"{n}: v3_decode_ms {v3:.2f} > v1_read_ms "
                            f"{v1:.2f} * slack {slack:g}")
    if checked == 0:
        failures.append("no benchmark exports v1_read_ms + v3_decode_ms "
                        "counters (wrong filter or stale binary?)")
    return failures


def main():
    ap = argparse.ArgumentParser(
        description="google-benchmark JSON regression gate")
    ap.add_argument("files", nargs="+", metavar="JSON",
                    help="baseline.json current.json, or just current.json "
                         "with --assert-decode")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated wall-time regression "
                         "(fraction, default 0.15)")
    ap.add_argument("--assert-decode", action="store_true",
                    help="require v3_decode_ms <= v1_read_ms * slack on "
                         "the current (last) file")
    ap.add_argument("--slack", type=float, default=1.0,
                    help="multiplier on v1_read_ms for --assert-decode "
                         "(default 1.0: decode must win outright)")
    args = ap.parse_args()

    if len(args.files) not in (1, 2):
        ap.error("expected one or two JSON files")
    if len(args.files) == 1 and not args.assert_decode:
        ap.error("a single file only makes sense with --assert-decode")

    failures = []
    cur = load(args.files[-1])
    if len(args.files) == 2:
        failures += compare(load(args.files[0]), cur, args.threshold)
    if args.assert_decode:
        failures += assert_decode(cur, args.slack)

    if failures:
        print(f"\nbench-compare: {len(failures)} gate failure(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("\nbench-compare: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
