#!/usr/bin/env bash
# Soak test for `ta serve`: one daemon, many looping clients, faults on.
#
#   scripts/serve-soak.sh [duration_s] [clients] [ta_binary]
#
# Defaults: 60 seconds, 16 clients, build/tools/ta. The daemon serves
# the committed golden traces with serve-path fault injection enabled
# (torn reads/writes, cache clears) while every client loops the full
# query set and byte-compares each OK body against the serial CLI's
# output for the same question. Pass criteria:
#
#   - the daemon never crashes (it must still answer at the end and
#     exit 0 on shutdown);
#   - every query either matches the serial CLI byte-for-byte or fails
#     typed (exit 3 = shed/timeout) — never a wrong answer;
#   - the admission queue drains: final server-stats reports
#     queue_depth=0 and no stuck in-flight work.
#
# CI runs this with the TSan build too; any data-race report fails the
# job via the daemon's non-zero exit.

set -euo pipefail

duration="${1:-60}"
clients="${2:-16}"
repo="$(cd "$(dirname "$0")/.." && pwd)"
ta="${3:-$repo/build/tools/ta}"

[ -x "$ta" ] || { echo "serve-soak: $ta not built" >&2; exit 1; }

work="$(mktemp -d)"
sock="$work/soak.sock"
daemon_log="$work/daemon.log"
trap 'kill "$daemon_pid" 2>/dev/null || true; rm -rf "$work"' EXIT

# Serving-path faults, deterministic seed. Rates are deliberately high:
# roughly one in five reads is torn and one in ten queries loses the
# block cache; correctness must be unaffected.
cat > "$work/faults.plan" <<'EOF'
seed=42
serve_read_chop_permille=200
serve_read_delay_us=100
serve_write_chop_permille=200
serve_write_delay_us=100
serve_cache_clear_permille=100
EOF

declare -A traces=(
    [matmul]="$repo/tests/ta/golden/matmul.pdt"
    [triad]="$repo/tests/ta/golden/triad.v2.pdt"
    [drops]="$repo/tests/ta/golden/triad_drops.pdt"
)

# Expected bodies from the serial CLI (the differential oracle).
expect="$work/expect"
mkdir -p "$expect"
for name in "${!traces[@]}"; do
    "$ta" summary "${traces[$name]}" > "$expect/$name.stats"
    "$ta" loss "${traces[$name]}" > "$expect/$name.loss"
    "$ta" profile "${traces[$name]}" 40 > "$expect/$name.profile"
done

regs=()
for name in "${!traces[@]}"; do regs+=("$name=${traces[$name]}"); done
"$ta" serve "$sock" "${regs[@]}" \
    --workers 4 --queue-depth 8 --per-query 2 \
    --faults "$work/faults.plan" > "$daemon_log" 2>&1 &
daemon_pid=$!

# Wait for the socket to answer.
for _ in $(seq 1 100); do
    if "$ta" query --connect "$sock" ping >/dev/null 2>&1; then break; fi
    kill -0 "$daemon_pid" 2>/dev/null || {
        echo "serve-soak: daemon died on startup" >&2
        cat "$daemon_log" >&2
        exit 1
    }
    sleep 0.1
done

echo "serve-soak: ${clients} clients x ${duration}s against $sock"

client_loop() {
    local id="$1" deadline=$(( $(date +%s) + duration ))
    local names=(matmul triad drops) ops=(stats loss profile)
    local i=0 ok=0 typed=0 rc
    local out="$work/client$id.out"
    while [ "$(date +%s)" -lt "$deadline" ]; do
        local name="${names[$(( (id + i) % 3 ))]}"
        local op="${ops[$(( i % 3 ))]}"
        local args=("$op" "$name")
        [ "$op" = profile ] && args+=(40)
        set +e
        "$ta" query --connect "$sock" "${args[@]}" \
            --attempts 4 > "$out" 2>/dev/null
        rc=$?
        set -e
        case "$rc" in
        0)
            if ! cmp -s "$out" "$expect/$name.$op"; then
                echo "serve-soak: client $id: WRONG ANSWER for $op $name" >&2
                return 1
            fi
            ok=$((ok + 1))
            ;;
        3)  typed=$((typed + 1)) ;; # shed/timeout: allowed, typed
        *)
            echo "serve-soak: client $id: $op $name exited $rc" >&2
            return 1
            ;;
        esac
        i=$((i + 1))
    done
    echo "serve-soak: client $id: $ok ok, $typed shed/timeout"
    [ "$ok" -gt 0 ] # a client that never got an answer is a hang
}

pids=()
for c in $(seq 1 "$clients"); do
    client_loop "$c" &
    pids+=($!)
done
fail=0
for p in "${pids[@]}"; do wait "$p" || fail=1; done
[ "$fail" -eq 0 ] || { echo "serve-soak: FAILED (client error)" >&2; exit 1; }

kill -0 "$daemon_pid" 2>/dev/null || {
    echo "serve-soak: FAILED (daemon crashed)" >&2
    cat "$daemon_log" >&2
    exit 1
}

# The queue must have drained: no stuck work after the clients left.
stats="$("$ta" query --connect "$sock" server-stats)"
echo "$stats" | sed 's/^/serve-soak:   /'
echo "$stats" | grep -q '^queue_depth=0$' || {
    echo "serve-soak: FAILED (queue did not drain)" >&2
    exit 1
}
echo "$stats" | grep -Eq '^in_flight=[01]$' || {
    echo "serve-soak: FAILED (in-flight work stuck)" >&2
    exit 1
}

"$ta" query --connect "$sock" shutdown >/dev/null
wait "$daemon_pid" || {
    echo "serve-soak: FAILED (daemon exited non-zero)" >&2
    cat "$daemon_log" >&2
    exit 1
}

echo "serve-soak: OK"
