#!/usr/bin/env bash
# Local mirror of .github/workflows/ci.yml: build + test the three
# CMake presets, replay the fuzz corpus, and check the golden digests.
# Run from anywhere; everything lands in the preset build dirs
# (build/, build-asan/, build-tsan/ — all gitignored).
#
#   scripts/ci-check.sh            # all presets
#   scripts/ci-check.sh default    # just one
#   scripts/ci-check.sh --bench    # the benchmark-regression gate only
#
# The tsan preset's test run is label-filtered to the parallel/query
# suites by CMakePresets.json, same as CI. --bench mirrors the CI
# bench-gate job: Release-preset bench_v3_blocks diffed against the
# committed bench/baselines/ (>15% wall regression fails) plus the
# decode<=v1 invariant; it can be combined with presets or run alone.

set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

bench=0
presets=()
for a in "$@"; do
    case "$a" in
        --bench) bench=1 ;;
        *) presets+=("$a") ;;
    esac
done
if [ ${#presets[@]} -eq 0 ] && [ "$bench" -eq 0 ]; then
    presets=(default asan tsan)
fi

jobs="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 4)"
launcher=()
if command -v ccache >/dev/null 2>&1; then
    launcher=(-DCMAKE_C_COMPILER_LAUNCHER=ccache
              -DCMAKE_CXX_COMPILER_LAUNCHER=ccache)
fi

build_dir() { [ "$1" = default ] && echo build || echo "build-$1"; }

for p in ${presets[@]+"${presets[@]}"}; do
    # Prefer Ninja, but never fight a build dir that was already
    # configured with another generator.
    gen=()
    if [ ! -f "$(build_dir "$p")/CMakeCache.txt" ] &&
       command -v ninja >/dev/null 2>&1; then
        gen=(-G Ninja)
    fi
    echo "==> preset $p: configure"
    cmake --preset "$p" "${gen[@]}" "${launcher[@]}"
    echo "==> preset $p: build"
    cmake --build --preset "$p" -j "$jobs"
    echo "==> preset $p: test"
    ctest --preset "$p" -j "$jobs"
done

# The corpus replay, golden check and daemon soak need the
# default-preset binaries.
case " ${presets[*]-} " in *" default "*)
    echo "==> fuzz corpus replay"
    build/tests/fuzz_reader tests/trace/corpus
    build/tests/fuzz_serve_req tests/ta/corpus_serve
    echo "==> generator sweep (fresh valid + adversarial specimens)"
    # Bounded (~seconds): 48 seeded traces nobody has seen before, all
    # replayed through the strict and salvage readers. A crash here is
    # a new fuzz finding — commit the seed's specimen to the corpus.
    build/tools/trace_gen --sweep 32 --seed "${SWEEP_SEED:-1000}" \
        --out-dir build/gen-sweep/valid
    build/tools/trace_gen --sweep 16 --seed "${SWEEP_SEED:-1000}" \
        --adversarial --out-dir build/gen-sweep/adv
    build/tests/fuzz_reader build/gen-sweep/valid build/gen-sweep/adv
    echo "==> perturb-and-localize diff-corpus smoke"
    # Fresh A/B perturbation pairs through `ta diff-corpus`: output
    # must be byte-identical at 1 vs 4 threads and every injected
    # delay must be localized to a divergent window.
    build/tools/trace_gen --sweep 8 --seed "${SWEEP_SEED:-1000}" \
        --perturb --out-dir build/gen-sweep/pairs
    build/tools/ta diff-corpus build/gen-sweep/pairs/pairs.txt \
        --threads 1 > build/gen-sweep/diff_t1.txt
    build/tools/ta diff-corpus build/gen-sweep/pairs/pairs.txt \
        --threads 4 > build/gen-sweep/diff_t4.txt
    cmp build/gen-sweep/diff_t1.txt build/gen-sweep/diff_t4.txt
    n="$(grep -cv '^#' build/gen-sweep/pairs/pairs.txt)"
    [ "$n" -ge 1 ]
    [ "$(grep -c 'first divergence' build/gen-sweep/diff_t1.txt)" -eq "$n" ]
    echo "==> golden digest check"
    build/tools/ta_golden check tests/ta/golden
    echo "==> serve soak (short local run; CI does 60s x 16)"
    scripts/serve-soak.sh "${SOAK_SECONDS:-10}" "${SOAK_CLIENTS:-4}"
    ;;
esac

if [ "$bench" -eq 1 ]; then
    echo "==> bench gate: configure + build (release preset)"
    gen=()
    if [ ! -f build-release/CMakeCache.txt ] &&
       command -v ninja >/dev/null 2>&1; then
        gen=(-G Ninja)
    fi
    cmake --preset release ${gen[@]+"${gen[@]}"} ${launcher[@]+"${launcher[@]}"}
    cmake --build --preset release -j "$jobs" --target bench_v3_blocks
    echo "==> bench gate: run decode benchmarks"
    (cd build-release && ./bench/bench_v3_blocks \
        --benchmark_filter='FileDecode_|FileReadV1|BlockReaderMmap' \
        --benchmark_out=BENCH_bench_v3_blocks.json \
        --benchmark_out_format=json)
    echo "==> bench gate: compare against committed baseline"
    python3 scripts/bench-compare.py --assert-decode \
        bench/baselines/BENCH_bench_v3_blocks.json \
        build-release/BENCH_bench_v3_blocks.json
fi

label="${presets[*]-}"
[ "$bench" -eq 1 ] && label="${label:+$label }--bench"
echo "==> ci-check OK ($label)"
