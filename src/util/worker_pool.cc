/**
 * @file
 * WorkerPool implementation (moved verbatim from ta/parallel.cc, plus
 * the async task lane used by the pipelined block decoder).
 */

#include "util/worker_pool.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <stdexcept>

namespace cell::util {

WorkerPool::WorkerPool(unsigned threads)
    : n_threads_(threads != 0
                     ? threads
                     : std::max(1u, std::thread::hardware_concurrency())),
      ranges_(n_threads_)
{
    workers_.reserve(n_threads_ - 1);
    for (unsigned i = 1; i < n_threads_; ++i)
        workers_.emplace_back(&WorkerPool::workerMain, this, i);
}

WorkerPool::~WorkerPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        shutdown_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : workers_)
        t.join();
    // Tasks still queued when shutdown won the race run here, so every
    // future handed out by submit() completes.
    for (std::packaged_task<void()>& t : tasks_)
        t();
    tasks_.clear();
}

std::future<void>
WorkerPool::submit(std::function<void()> fn)
{
    std::packaged_task<void()> task(std::move(fn));
    std::future<void> fut = task.get_future();
    if (n_threads_ == 1) {
        task(); // no helpers: degrade to synchronous execution
        return fut;
    }
    {
        std::lock_guard<std::mutex> lk(mu_);
        tasks_.push_back(std::move(task));
    }
    wake_cv_.notify_one();
    return fut;
}

void
WorkerPool::execute(std::uint64_t index)
{
    const auto* fn = job_.load(std::memory_order_acquire);
    try {
        (*fn)(index);
    } catch (...) {
        std::lock_guard<std::mutex> lk(mu_);
        if (!first_error_)
            first_error_ = std::current_exception();
    }
    const std::uint64_t done =
        items_done_.fetch_add(1, std::memory_order_acq_rel) + 1;
    assert(done <= items_total_.load(std::memory_order_acquire) &&
           "WorkerPool executed an index twice");
    if (done >= items_total_.load(std::memory_order_acquire)) {
        std::lock_guard<std::mutex> lk(mu_); // pair with the caller's wait
        done_cv_.notify_all();
    }
}

bool
WorkerPool::runOne(unsigned self)
{
    // Pop the front of our own range.
    auto& my = ranges_[self].bits;
    std::uint64_t cur = my.load(std::memory_order_acquire);
    for (;;) {
        const auto b = static_cast<std::uint32_t>(cur >> 32);
        const auto e = static_cast<std::uint32_t>(cur);
        if (b >= e)
            break;
        if (my.compare_exchange_weak(cur, pack(b + 1, e),
                                     std::memory_order_acq_rel)) {
            execute(b);
            return true;
        }
    }
    // Dry: steal the upper half of the largest remaining range. Within
    // a job only the owner ever grows its own range (and only while it
    // is empty), and thieves only CAS-shrink non-empty ranges, so the
    // blind store below cannot clobber a concurrent transfer; the
    // caller refills ranges only while the pool is quiescent.
    for (;;) {
        int victim = -1;
        std::uint32_t best = 0;
        std::uint64_t vcur = 0;
        for (unsigned v = 0; v < n_threads_; ++v) {
            if (v == self)
                continue;
            const std::uint64_t c =
                ranges_[v].bits.load(std::memory_order_acquire);
            const auto b = static_cast<std::uint32_t>(c >> 32);
            const auto e = static_cast<std::uint32_t>(c);
            // A single-item range has no upper half to take (mid would
            // equal e, an index outside the range); its owner runs it.
            if (e - b >= 2 && e - b > best) {
                best = e - b;
                victim = static_cast<int>(v);
                vcur = c;
            }
        }
        if (victim < 0)
            return false;
        const auto b = static_cast<std::uint32_t>(vcur >> 32);
        const auto e = static_cast<std::uint32_t>(vcur);
        const std::uint32_t mid = b + (e - b + 1) / 2; // victim keeps [b,mid)
        if (!ranges_[static_cast<unsigned>(victim)].bits.compare_exchange_weak(
                vcur, pack(b, mid), std::memory_order_acq_rel))
            continue; // raced with the victim or another thief; rescan
        ranges_[self].bits.store(pack(mid + 1, e), std::memory_order_release);
        execute(mid);
        return true;
    }
}

void
WorkerPool::workerMain(unsigned id)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        wake_cv_.wait(lk, [&] {
            return shutdown_ || generation_ != seen || !tasks_.empty();
        });
        if (shutdown_)
            return;
        if (!tasks_.empty()) {
            std::packaged_task<void()> task = std::move(tasks_.front());
            tasks_.pop_front();
            lk.unlock();
            task(); // exceptions land in the future
            lk.lock();
            continue;
        }
        seen = generation_;
        ++active_;
        lk.unlock();
        while (runOne(id)) {
        }
        lk.lock();
        // The last worker to park lets the next parallelFor refill the
        // steal ranges: a worker still inside runOne() could hold a
        // stale snapshot of a range and, because range layouts repeat
        // across generations, CAS-steal from the *next* job and clobber
        // its own freshly refilled range. Quiescence makes that window
        // impossible.
        if (--active_ == 0)
            idle_cv_.notify_all();
    }
}

void
WorkerPool::parallelFor(std::uint64_t n,
                        const std::function<void(std::uint64_t)>& fn)
{
    if (n == 0)
        return;
    if (n_threads_ == 1 || n == 1) {
        for (std::uint64_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    if (n > std::numeric_limits<std::uint32_t>::max())
        throw std::logic_error("WorkerPool: index space too large");

    {
        std::unique_lock<std::mutex> lk(mu_);
        // Wait for every worker from the previous job to park before
        // touching the ranges (see the note in workerMain).
        idle_cv_.wait(lk, [&] { return active_ == 0; });
        first_error_ = nullptr;
        items_done_.store(0, std::memory_order_relaxed);
        items_total_.store(n, std::memory_order_relaxed);
        job_.store(&fn, std::memory_order_release);
        const std::uint64_t per = n / n_threads_;
        const std::uint64_t rem = n % n_threads_;
        std::uint64_t begin = 0;
        for (unsigned w = 0; w < n_threads_; ++w) {
            const std::uint64_t len = per + (w < rem ? 1 : 0);
            ranges_[w].bits.store(
                pack(static_cast<std::uint32_t>(begin),
                     static_cast<std::uint32_t>(begin + len)),
                std::memory_order_release);
            begin += len;
        }
        ++generation_;
    }
    wake_cv_.notify_all();
    while (runOne(0)) {
    }
    std::exception_ptr err;
    {
        std::unique_lock<std::mutex> lk(mu_);
        done_cv_.wait(lk, [&] {
            return items_done_.load(std::memory_order_acquire) >=
                   items_total_.load(std::memory_order_relaxed);
        });
        job_.store(nullptr, std::memory_order_relaxed);
        err = first_error_;
        first_error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

} // namespace cell::util
