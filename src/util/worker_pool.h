/**
 * @file
 * A persistent pool of worker threads running index-space jobs with
 * contiguous-range work stealing, plus a small async task lane.
 *
 * parallelFor(n, fn) splits [0, n) into one contiguous range per
 * worker (the calling thread is worker 0). Each worker pops indices
 * off the front of its own range; a worker whose range runs dry
 * steals the upper half of the largest remaining range. Ranges are
 * single atomic words, so pop and steal are lock-free CAS loops.
 *
 * fn must be safe to call concurrently for distinct indices. An
 * exception thrown by fn is captured and rethrown on the calling
 * thread after the job drains (the first one wins; remaining indices
 * still run). Nested parallelFor on the same pool is not supported.
 *
 * submit(fn) runs one task asynchronously on a pool worker and
 * returns a future for its completion; the pipelined trace decoder
 * (trace::BlockReader) uses it to decode block N+1 while the consumer
 * drains block N. Tasks and parallelFor jobs share the same workers
 * and may interleave freely: tasks never touch the steal ranges, and
 * the job completion barrier is driven by the calling thread, so a
 * worker busy with a task can never stall a job.
 *
 * This lives below the trace and analysis layers so both can share
 * one pool; ta/parallel.h re-exports it as ta::WorkerPool.
 */

#ifndef CELL_UTIL_WORKER_POOL_H
#define CELL_UTIL_WORKER_POOL_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace cell::util {

class WorkerPool
{
  public:
    /** @p threads total workers including the caller; 0 = hardware
     *  concurrency. A pool of 1 runs everything inline. */
    explicit WorkerPool(unsigned threads = 0);
    ~WorkerPool();

    WorkerPool(const WorkerPool&) = delete;
    WorkerPool& operator=(const WorkerPool&) = delete;

    unsigned threads() const { return n_threads_; }

    void parallelFor(std::uint64_t n,
                     const std::function<void(std::uint64_t)>& fn);

    /**
     * Run @p fn once, asynchronously, on a pool worker. The returned
     * future completes when the task finishes; an exception thrown by
     * the task is rethrown from future::get(). A pool of 1 (no helper
     * threads) executes the task inline before returning, so callers
     * degrade gracefully to synchronous behavior. Tasks still queued
     * at destruction run to completion on the destroying thread —
     * futures obtained from submit() never dangle.
     */
    std::future<void> submit(std::function<void()> fn);

  private:
    /** One steal range, packed begin:32 | end:32, cache-line apart. */
    struct alignas(64) StealRange
    {
        std::atomic<std::uint64_t> bits{0};
    };

    static constexpr std::uint64_t pack(std::uint32_t b, std::uint32_t e)
    {
        return (static_cast<std::uint64_t>(b) << 32) | e;
    }

    void workerMain(unsigned id);
    bool runOne(unsigned self);
    void execute(std::uint64_t index);

    unsigned n_threads_;
    std::vector<StealRange> ranges_;
    std::vector<std::thread> workers_; ///< n_threads_ - 1 helpers

    std::atomic<const std::function<void(std::uint64_t)>*> job_{nullptr};
    std::atomic<std::uint64_t> items_total_{0};
    std::atomic<std::uint64_t> items_done_{0};

    std::mutex mu_;
    std::condition_variable wake_cv_; ///< workers wait for a new job
    std::condition_variable done_cv_; ///< caller waits for completion
    std::condition_variable idle_cv_; ///< caller waits for quiescence
    std::uint64_t generation_ = 0;    ///< guarded by mu_
    unsigned active_ = 0;             ///< workers still draining; mu_
    bool shutdown_ = false;           ///< guarded by mu_
    std::exception_ptr first_error_;  ///< guarded by mu_
    std::deque<std::packaged_task<void()>> tasks_; ///< guarded by mu_
};

} // namespace cell::util

#endif // CELL_UTIL_WORKER_POOL_H
