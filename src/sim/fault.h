/**
 * @file
 * Deterministic fault injection.
 *
 * Real Cell traces were recorded on hardware that misbehaved: DMA
 * transfers were delayed or retried after ECC errors, the EIB saturated
 * under contention, mailbox partners stalled, and the PDT daemon's
 * main-storage arena filled faster than it drained. This module lets a
 * simulation reproduce those adverse conditions *deterministically*: a
 * FaultPlan (single seed + per-fault-class rates) drives a counter-based
 * PRNG, so the same plan always injects the same faults at the same
 * points and two runs produce byte-identical traces.
 *
 * Each (fault site, actor) pair owns an independent draw stream keyed
 * by hash(seed, site, actor, sequence). Because per-actor operation
 * order is itself deterministic (the engine dispatches in (tick, seq)
 * order), injection never depends on cross-core interleaving.
 *
 * An inert injector (default-constructed, or any plan with all rates
 * zero) costs one branch per hook point and injects nothing, so the
 * fault-free simulation is bit-for-bit identical to a build without
 * this module.
 */

#ifndef CELL_SIM_FAULT_H
#define CELL_SIM_FAULT_H

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.h"

namespace cell::sim {

/** Where a fault can strike. */
enum class FaultSite : std::uint8_t
{
    MfcDma,      ///< extra latency on one DMA command's completion
    MfcRetry,    ///< failed transfer retried by the MFC (larger penalty)
    EibTransfer, ///< contention spike holding a ring/MIC reservation
    Mailbox,     ///< stalled mailbox channel operation
    Signal,      ///< stalled signal-notification operation
    TraceArena,  ///< trace-arena exhaustion window (consulted by PDT)

    /** @name Serving-path sites (consulted by ta::serve::Server).
     *  These model an unreliable deployment rather than unreliable
     *  hardware: slow accepts, torn request reads, slow clients
     *  draining responses, and block-cache thrash. */
    ///@{
    ServeAccept,        ///< delayed connection accept/servicing
    ServeRead,          ///< request read torn into tiny delayed chunks
    ServeWrite,         ///< response write torn into tiny delayed chunks
    ServeCachePressure, ///< block cache flushed before a query (thrash)
    ///@}

    kCount,
};

constexpr std::size_t kNumFaultSites =
    static_cast<std::size_t>(FaultSite::kCount);

/** Printable site name ("MFC_DMA", "EIB", ...). */
const char* faultSiteName(FaultSite site);

/**
 * The reproducible fault schedule. Rates are per-mille (0..1000)
 * probabilities applied independently per operation; magnitudes are
 * core cycles. All-zero rates (the default) mean no injection at all.
 */
struct FaultPlan
{
    /** Seed for every draw stream. Two runs with equal plans (same
     *  seed included) inject identically. */
    std::uint64_t seed = 1;

    /** @name Delayed / failed MFC DMA transfers */
    ///@{
    std::uint32_t dma_delay_permille = 0;
    std::uint32_t dma_delay_cycles = 2'000;
    std::uint32_t dma_fail_permille = 0;
    std::uint32_t dma_retry_cycles = 10'000;
    ///@}

    /** @name EIB contention spikes (per bus reservation) */
    ///@{
    std::uint32_t eib_spike_permille = 0;
    std::uint32_t eib_spike_cycles = 4'000;
    ///@}

    /** @name Stalled mailbox / signal operations */
    ///@{
    std::uint32_t mbox_stall_permille = 0;
    std::uint32_t mbox_stall_cycles = 1'500;
    std::uint32_t signal_stall_permille = 0;
    std::uint32_t signal_stall_cycles = 1'500;
    ///@}

    /** @name Serving-path faults (ta::serve::Server sites)
     *  Delays are microseconds of real time injected by the server;
     *  "chop" sites tear one socket read/write into 1-byte chunks with
     *  a per-chunk delay, exercising partial-I/O reassembly and slow
     *  clients. Cache-pressure clears the server's block cache before
     *  the drawn query runs. */
    ///@{
    std::uint32_t serve_accept_delay_permille = 0;
    std::uint32_t serve_accept_delay_us = 2'000;
    std::uint32_t serve_read_chop_permille = 0;
    std::uint32_t serve_read_delay_us = 200;
    std::uint32_t serve_write_chop_permille = 0;
    std::uint32_t serve_write_delay_us = 200;
    std::uint32_t serve_cache_clear_permille = 0;
    ///@}

    /**
     * Mid-run trace-arena exhaustion: flush attempts in
     * [arena_exhaust_begin, arena_exhaust_end) on every SPE see the
     * arena as full (models the trace consumer falling behind). The
     * window is per-SPE in units of flush *attempts*; 0,0 = never.
     */
    std::uint64_t arena_exhaust_begin = 0;
    std::uint64_t arena_exhaust_end = 0;

    /** True if any fault class can fire. */
    bool enabled() const
    {
        return dma_delay_permille || dma_fail_permille ||
               eib_spike_permille || mbox_stall_permille ||
               signal_stall_permille || serve_accept_delay_permille ||
               serve_read_chop_permille || serve_write_chop_permille ||
               serve_cache_clear_permille ||
               arena_exhaust_end > arena_exhaust_begin;
    }

    /** Validate; @throws std::invalid_argument on bad values. */
    void validate() const;

    /**
     * Parse "key=value" lines (comments with '#'), e.g.
     *   seed=42
     *   dma_delay_permille=25
     *   dma_delay_cycles=5000
     *   arena_exhaust_begin=4
     *   arena_exhaust_end=8
     * Unknown keys throw. Returns the parsed plan on top of @p base.
     */
    static FaultPlan parse(const std::string& text);
    static FaultPlan parse(const std::string& text, const FaultPlan& base);
};

/** Injection counters (ground truth for tests and reports). */
struct FaultStats
{
    /** Faults fired, per site. */
    std::array<std::uint64_t, kNumFaultSites> injected{};
    /** Total extra cycles injected (latency-class faults). */
    std::uint64_t injected_cycles = 0;
    /** Draws taken (fired or not), per site. */
    std::array<std::uint64_t, kNumFaultSites> draws{};

    std::uint64_t totalInjected() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t v : injected)
            n += v;
        return n;
    }
};

/**
 * The injector. One per Machine; components consult it at their hook
 * points. Not thread-safe (the simulation is single-threaded).
 */
class FaultInjector
{
  public:
    /** Actor id used for PPE-side operations. */
    static constexpr std::uint32_t kPpeActor = 0xFFFFu;

    /** Inert injector: enabled() is false, every delay is zero. */
    FaultInjector() = default;

    explicit FaultInjector(FaultPlan plan);

    bool enabled() const { return enabled_; }
    const FaultPlan& plan() const { return plan_; }
    const FaultStats& stats() const { return stats_; }

    /**
     * Extra cycles to inject at @p site for @p actor (SPE index, or
     * kPpeActor). Zero when inert or the draw does not fire. Draws
     * advance only the (site, actor) stream, so unrelated sites stay
     * reproducible when one site's rate changes.
     */
    TickDelta delayAt(FaultSite site, std::uint32_t actor);

    /** Combined DMA penalty for one command: delay fault + retry fault. */
    TickDelta dmaPenalty(std::uint32_t spe)
    {
        return delayAt(FaultSite::MfcDma, spe) +
               delayAt(FaultSite::MfcRetry, spe);
    }

    /**
     * True when flush attempt @p attempt (0-based, per SPE) falls in
     * the injected arena-exhaustion window.
     */
    bool arenaExhausted(std::uint32_t spe, std::uint64_t attempt);

    /**
     * Generic rate draw: true when the (site, actor) stream fires at
     * the plan's rate for @p site. The serving path uses this for its
     * sites (magnitudes — chunk sizes, delays — are applied by the
     * server from the plan); it also works for the latency-class sim
     * sites, where it fires exactly when delayAt() would be non-zero.
     * Like every injector entry point, NOT thread-safe — the server
     * serializes calls behind its own mutex.
     */
    bool fire(FaultSite site, std::uint32_t actor);

  private:
    /** Counter-based PRNG draw for one (site, actor) stream. */
    std::uint64_t draw(FaultSite site, std::uint32_t actor);

    FaultPlan plan_{};
    bool enabled_ = false;
    FaultStats stats_;
    /** Per-site, per-actor sequence counters (actors resized lazily). */
    std::array<std::vector<std::uint64_t>, kNumFaultSites> seq_;
};

} // namespace cell::sim

#endif // CELL_SIM_FAULT_H
