/**
 * @file
 * Fault-injection implementation: counter-based PRNG draws and the
 * key=value FaultPlan parser.
 */

#include "sim/fault.h"

#include <sstream>
#include <stdexcept>

namespace cell::sim {

namespace {

/** splitmix64 finalizer — a strong, stateless 64-bit mixer. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9E37'79B9'7F4A'7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58'476D'1CE4'E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D0'49BB'1331'11EBULL;
    return x ^ (x >> 31);
}

std::uint64_t
parseU64(const std::string& key, const std::string& value)
{
    std::size_t pos = 0;
    std::uint64_t v = 0;
    try {
        v = std::stoull(value, &pos, 0);
    } catch (const std::exception&) {
        throw std::invalid_argument("FaultPlan: bad value for " + key +
                                    ": '" + value + "'");
    }
    if (pos != value.size())
        throw std::invalid_argument("FaultPlan: trailing junk in " + key +
                                    ": '" + value + "'");
    return v;
}

std::string
trim(const std::string& s)
{
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos)
        return {};
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
}

} // namespace

const char*
faultSiteName(FaultSite site)
{
    switch (site) {
      case FaultSite::MfcDma: return "MFC_DMA";
      case FaultSite::MfcRetry: return "MFC_RETRY";
      case FaultSite::EibTransfer: return "EIB";
      case FaultSite::Mailbox: return "MAILBOX";
      case FaultSite::Signal: return "SIGNAL";
      case FaultSite::TraceArena: return "TRACE_ARENA";
      case FaultSite::ServeAccept: return "SERVE_ACCEPT";
      case FaultSite::ServeRead: return "SERVE_READ";
      case FaultSite::ServeWrite: return "SERVE_WRITE";
      case FaultSite::ServeCachePressure: return "SERVE_CACHE_PRESSURE";
      case FaultSite::kCount: break;
    }
    return "?";
}

void
FaultPlan::validate() const
{
    auto checkRate = [](const char* name, std::uint32_t permille) {
        if (permille > 1000) {
            throw std::invalid_argument(std::string("FaultPlan: ") + name +
                                        " exceeds 1000 per-mille");
        }
    };
    checkRate("dma_delay_permille", dma_delay_permille);
    checkRate("dma_fail_permille", dma_fail_permille);
    checkRate("eib_spike_permille", eib_spike_permille);
    checkRate("mbox_stall_permille", mbox_stall_permille);
    checkRate("signal_stall_permille", signal_stall_permille);
    checkRate("serve_accept_delay_permille", serve_accept_delay_permille);
    checkRate("serve_read_chop_permille", serve_read_chop_permille);
    checkRate("serve_write_chop_permille", serve_write_chop_permille);
    checkRate("serve_cache_clear_permille", serve_cache_clear_permille);
    if (arena_exhaust_end < arena_exhaust_begin) {
        throw std::invalid_argument(
            "FaultPlan: arena_exhaust_end precedes arena_exhaust_begin");
    }
}

FaultPlan
FaultPlan::parse(const std::string& text)
{
    return parse(text, FaultPlan{});
}

FaultPlan
FaultPlan::parse(const std::string& text, const FaultPlan& base)
{
    FaultPlan plan = base;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (const auto hash = line.find('#'); hash != std::string::npos)
            line.erase(hash);
        line = trim(line);
        if (line.empty())
            continue;
        const auto eq = line.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                        line + "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        const std::uint64_t v = parseU64(key, value);
        auto u32 = [&]() {
            if (v > 0xFFFF'FFFFULL)
                throw std::invalid_argument("FaultPlan: " + key +
                                            " does not fit in 32 bits");
            return static_cast<std::uint32_t>(v);
        };
        if (key == "seed") plan.seed = v;
        else if (key == "dma_delay_permille") plan.dma_delay_permille = u32();
        else if (key == "dma_delay_cycles") plan.dma_delay_cycles = u32();
        else if (key == "dma_fail_permille") plan.dma_fail_permille = u32();
        else if (key == "dma_retry_cycles") plan.dma_retry_cycles = u32();
        else if (key == "eib_spike_permille") plan.eib_spike_permille = u32();
        else if (key == "eib_spike_cycles") plan.eib_spike_cycles = u32();
        else if (key == "mbox_stall_permille") plan.mbox_stall_permille = u32();
        else if (key == "mbox_stall_cycles") plan.mbox_stall_cycles = u32();
        else if (key == "signal_stall_permille")
            plan.signal_stall_permille = u32();
        else if (key == "signal_stall_cycles") plan.signal_stall_cycles = u32();
        else if (key == "serve_accept_delay_permille")
            plan.serve_accept_delay_permille = u32();
        else if (key == "serve_accept_delay_us")
            plan.serve_accept_delay_us = u32();
        else if (key == "serve_read_chop_permille")
            plan.serve_read_chop_permille = u32();
        else if (key == "serve_read_delay_us") plan.serve_read_delay_us = u32();
        else if (key == "serve_write_chop_permille")
            plan.serve_write_chop_permille = u32();
        else if (key == "serve_write_delay_us")
            plan.serve_write_delay_us = u32();
        else if (key == "serve_cache_clear_permille")
            plan.serve_cache_clear_permille = u32();
        else if (key == "arena_exhaust_begin") plan.arena_exhaust_begin = v;
        else if (key == "arena_exhaust_end") plan.arena_exhaust_end = v;
        else
            throw std::invalid_argument("FaultPlan: unknown key '" + key + "'");
    }
    plan.validate();
    return plan;
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(plan)
{
    plan_.validate();
    enabled_ = plan_.enabled();
}

std::uint64_t
FaultInjector::draw(FaultSite site, std::uint32_t actor)
{
    // kPpeActor maps to slot 0 and SPE i to slot i+1 so the lazily
    // sized counter vectors stay tiny.
    const std::size_t s = static_cast<std::size_t>(site);
    const std::size_t slot = actor == kPpeActor ? 0 : actor + 1;
    auto& counters = seq_[s];
    if (slot >= counters.size())
        counters.resize(slot + 1, 0);
    const std::uint64_t n = counters[slot]++;
    // Independent streams: each (site, actor) pair walks its own
    // counter, so changing one site's rate never shifts another's draws.
    std::uint64_t key = plan_.seed;
    key ^= mix64(static_cast<std::uint64_t>(s) + 1);
    key ^= mix64((static_cast<std::uint64_t>(actor) << 8) | 0xA5u) << 1;
    return mix64(key + n);
}

TickDelta
FaultInjector::delayAt(FaultSite site, std::uint32_t actor)
{
    if (!enabled_)
        return 0;
    std::uint32_t permille = 0;
    std::uint32_t cycles = 0;
    switch (site) {
      case FaultSite::MfcDma:
        permille = plan_.dma_delay_permille;
        cycles = plan_.dma_delay_cycles;
        break;
      case FaultSite::MfcRetry:
        permille = plan_.dma_fail_permille;
        cycles = plan_.dma_retry_cycles;
        break;
      case FaultSite::EibTransfer:
        permille = plan_.eib_spike_permille;
        cycles = plan_.eib_spike_cycles;
        break;
      case FaultSite::Mailbox:
        permille = plan_.mbox_stall_permille;
        cycles = plan_.mbox_stall_cycles;
        break;
      case FaultSite::Signal:
        permille = plan_.signal_stall_permille;
        cycles = plan_.signal_stall_cycles;
        break;
      case FaultSite::TraceArena:
      case FaultSite::ServeAccept:
      case FaultSite::ServeRead:
      case FaultSite::ServeWrite:
      case FaultSite::ServeCachePressure:
      case FaultSite::kCount:
        return 0; // windowed (arena) or magnitude-free (serve) sites
    }
    if (permille == 0)
        return 0;
    const std::size_t s = static_cast<std::size_t>(site);
    stats_.draws[s] += 1;
    if (draw(site, actor) % 1000 >= permille)
        return 0;
    stats_.injected[s] += 1;
    stats_.injected_cycles += cycles;
    return cycles;
}

bool
FaultInjector::fire(FaultSite site, std::uint32_t actor)
{
    if (!enabled_)
        return false;
    std::uint32_t permille = 0;
    switch (site) {
      case FaultSite::MfcDma: permille = plan_.dma_delay_permille; break;
      case FaultSite::MfcRetry: permille = plan_.dma_fail_permille; break;
      case FaultSite::EibTransfer: permille = plan_.eib_spike_permille; break;
      case FaultSite::Mailbox: permille = plan_.mbox_stall_permille; break;
      case FaultSite::Signal: permille = plan_.signal_stall_permille; break;
      case FaultSite::ServeAccept:
        permille = plan_.serve_accept_delay_permille;
        break;
      case FaultSite::ServeRead:
        permille = plan_.serve_read_chop_permille;
        break;
      case FaultSite::ServeWrite:
        permille = plan_.serve_write_chop_permille;
        break;
      case FaultSite::ServeCachePressure:
        permille = plan_.serve_cache_clear_permille;
        break;
      case FaultSite::TraceArena: // windowed, see arenaExhausted()
      case FaultSite::kCount:
        return false;
    }
    if (permille == 0)
        return false;
    const std::size_t s = static_cast<std::size_t>(site);
    stats_.draws[s] += 1;
    if (draw(site, actor) % 1000 >= permille)
        return false;
    stats_.injected[s] += 1;
    return true;
}

bool
FaultInjector::arenaExhausted(std::uint32_t spe, std::uint64_t attempt)
{
    (void)spe;
    if (!enabled_ || plan_.arena_exhaust_end <= plan_.arena_exhaust_begin)
        return false;
    const std::size_t s = static_cast<std::size_t>(FaultSite::TraceArena);
    stats_.draws[s] += 1;
    const bool hit = attempt >= plan_.arena_exhaust_begin &&
                     attempt < plan_.arena_exhaust_end;
    if (hit)
        stats_.injected[s] += 1;
    return hit;
}

} // namespace cell::sim
