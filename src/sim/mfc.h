/**
 * @file
 * Memory Flow Controller (MFC) — one per SPE.
 *
 * The MFC is the SPE's DMA engine. SPU code enqueues commands through
 * the channel interface (16-entry queue); PPE code enqueues through the
 * proxy interface (8-entry queue). Commands carry a tag group (0..31);
 * fence/barrier variants order commands *within* a tag group. The SPU
 * synchronizes with completion by waiting on tag-group status — the
 * canonical "DMA wait" that PDT traces and TA attributes stalls to.
 *
 * DMA-list commands (GETL/PUTL) gather/scatter up to 2048 elements per
 * command, each up to 16 KiB, with optional stall-and-notify elements.
 */

#ifndef CELL_SIM_MFC_H
#define CELL_SIM_MFC_H

#include <array>
#include <cstdint>
#include <deque>
#include <vector>

#include "sim/config.h"
#include "sim/eib.h"
#include "sim/event.h"
#include "sim/local_store.h"
#include "sim/sync.h"
#include "sim/types.h"

namespace cell::sim {

class FaultInjector;

/** Resolves effective addresses to backing storage (machine-level). */
class StorageMap
{
  public:
    virtual ~StorageMap() = default;

    /** Copy @p len bytes at @p ea into @p dst. */
    virtual void readEa(EffAddr ea, void* dst, std::size_t len) = 0;
    /** Copy @p len bytes from @p src to @p ea. */
    virtual void writeEa(EffAddr ea, const void* src, std::size_t len) = 0;
    /** True if @p ea lands in some SPE's local-store aperture. */
    virtual bool eaIsLocalStore(EffAddr ea) const = 0;
};

/** DMA direction/type. */
enum class MfcOpcode : std::uint8_t
{
    Get,     ///< main storage (or remote LS) -> local store
    Put,     ///< local store -> main storage (or remote LS)
    GetList, ///< gather via DMA list
    PutList, ///< scatter via DMA list
};

/** Printable opcode name ("GET", "PUTL", ...). */
const char* mfcOpcodeName(MfcOpcode op);

/**
 * One element of a DMA list, stored in the local store as two 32-bit
 * words: {stall-and-notify bit | transfer size, EA low 32 bits}.
 */
struct MfcListElement
{
    std::uint32_t size_and_stall; ///< bit 31 = stall-and-notify
    std::uint32_t ea_low;

    std::uint32_t size() const { return size_and_stall & 0x7FFF'FFFFu; }
    bool stallAndNotify() const { return (size_and_stall >> 31) != 0; }

    static MfcListElement make(std::uint32_t size, std::uint32_t ea_low,
                               bool stall = false)
    {
        return MfcListElement{size | (stall ? 0x8000'0000u : 0u), ea_low};
    }
};
static_assert(sizeof(MfcListElement) == 8, "list element is 8 bytes");

/** A queued MFC command. */
struct MfcCommand
{
    MfcOpcode op = MfcOpcode::Get;
    LsAddr ls = 0;
    /** Target EA; for list commands, the high 32 bits supply the EA
     *  base and @ref list_ls points at the list. */
    EffAddr ea = 0;
    /** Transfer size in bytes; for list commands, list size in bytes
     *  (number of elements * 8). */
    std::uint32_t size = 0;
    TagId tag = 0;
    bool fence = false;
    bool barrier = false;
    /** LS address of the DMA list (list commands only). */
    LsAddr list_ls = 0;
    /** Monotonic id assigned at enqueue. */
    std::uint64_t cmd_id = 0;
};

/** Cumulative MFC statistics (simulator ground truth). */
struct MfcStats
{
    std::uint64_t commands = 0;
    std::uint64_t list_commands = 0;
    std::uint64_t list_elements = 0;
    std::uint64_t bytes_get = 0;
    std::uint64_t bytes_put = 0;
    std::uint64_t total_latency = 0; ///< sum of enqueue->complete cycles
    std::uint64_t max_latency = 0;
    std::uint64_t fence_stall_cycles = 0;
    std::uint64_t stall_notify_events = 0;
};

/**
 * The MFC proper. Owns the two command queues and a dispatcher process
 * per queue; tracks per-tag-group outstanding counts for tag-status
 * waits.
 */
class Mfc
{
  public:
    /** @p faults (optional) injects delayed/retried DMA completions. */
    Mfc(Engine& engine, Eib& eib, StorageMap& storage, LocalStore& ls,
        const MachineConfig& cfg, std::uint32_t spe_index,
        FaultInjector* faults = nullptr);

    Mfc(const Mfc&) = delete;
    Mfc& operator=(const Mfc&) = delete;

    /** Start the dispatcher processes (called by Machine after wiring). */
    void start();

    /**
     * Enqueue from the SPU channel interface; suspends while the
     * 16-entry queue is full (that stall is MFC back-pressure, visible
     * to PDT as a long enqueue).
     */
    CoTask<void> enqueueSpu(MfcCommand cmd);

    /** Enqueue from the PPE proxy interface (8-entry queue). */
    CoTask<void> enqueueProxy(MfcCommand cmd);

    /** Free slots in the SPU queue (channel MFC_Cmd queue count). */
    std::size_t spuQueueSpace() const
    {
        return kMfcSpuQueueDepth - spu_queue_.size() - spu_inflight_;
    }

    /** Bitmask of tag groups in @p mask with no outstanding commands. */
    TagMask tagStatusImmediate(TagMask mask) const;

    /** Suspend until every group in @p mask has drained. */
    CoTask<TagMask> waitTagStatusAll(TagMask mask);

    /** Suspend until at least one group in @p mask has drained. */
    CoTask<TagMask> waitTagStatusAny(TagMask mask);

    /** Outstanding command count for one tag group. */
    std::uint32_t outstanding(TagId tag) const { return outstanding_[tag]; }

    /** Acknowledge a stall-and-notify pause on @p tag, resuming the list. */
    void ackListStall(TagId tag);

    /** Tag groups currently paused at a stall-and-notify element. */
    TagMask stalledTags() const { return stalled_tags_; }

    const MfcStats& stats() const { return stats_; }

    /** Validate a command's shape; throws std::invalid_argument. */
    static void validate(const MfcCommand& cmd);

    /**
     * Observer poked on every command completion (SPU event facility).
     * Takes the engine's allocation-free callable so the completion
     * path shares the event system's zero-allocation discipline.
     */
    void setOnComplete(EventCallback fn)
    {
        on_complete_ = std::move(fn);
    }

  private:
    Task dispatcher(bool proxy);
    Task listTask(MfcCommand cmd, bool proxy);
    bool eligible(const MfcCommand& cmd) const;
    void issueSimple(const MfcCommand& cmd, bool proxy);
    void finish(const MfcCommand& cmd, bool proxy);
    void moveBytes(MfcOpcode op, LsAddr ls, EffAddr ea, std::uint32_t size);
    TransferKind kindFor(MfcOpcode op, EffAddr ea) const;

    Engine& engine_;
    Eib& eib_;
    StorageMap& storage_;
    LocalStore& ls_;
    const MachineConfig& cfg_;
    std::uint32_t spe_index_;
    FaultInjector* faults_;

    std::deque<MfcCommand> spu_queue_;
    std::deque<MfcCommand> proxy_queue_;
    /** Commands removed from a queue but still transferring (they keep
     *  occupying a queue slot until completion, as on hardware). */
    std::size_t spu_inflight_ = 0;
    std::size_t proxy_inflight_ = 0;
    std::uint64_t next_cmd_id_ = 1;

    /** Per tag group: commands enqueued but not yet complete. */
    std::array<std::uint32_t, kNumTagGroups> outstanding_{};
    /** Per tag group: ids of pending commands (fence ordering checks). */
    std::array<std::vector<std::uint64_t>, kNumTagGroups> pending_ids_;
    /** Per tag group: ids of pending *barrier* commands. */
    std::array<std::vector<std::uint64_t>, kNumTagGroups> barrier_ids_;
    /** Tags paused at a stall-and-notify list element. */
    TagMask stalled_tags_ = 0;

    /** Single wakeup source: queue/tag/stall state changed. */
    CondVar cv_;
    EventCallback on_complete_;

    MfcStats stats_;
};

} // namespace cell::sim

#endif // CELL_SIM_MFC_H
