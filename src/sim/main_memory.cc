/**
 * @file
 * Sparse page container implementation.
 */

#include "sim/main_memory.h"

namespace cell::sim {

MainMemory::Page&
MainMemory::pageFor(EffAddr ea)
{
    auto key = ea >> kPageBits;
    auto it = pages_.find(key);
    if (it == pages_.end())
        it = pages_.emplace(key, Page(kPageSize, 0)).first;
    return it->second;
}

const MainMemory::Page*
MainMemory::pageForIfPresent(EffAddr ea) const
{
    auto it = pages_.find(ea >> kPageBits);
    return it == pages_.end() ? nullptr : &it->second;
}

void
MainMemory::read(EffAddr ea, void* dst, std::size_t len) const
{
    auto* out = static_cast<std::uint8_t*>(dst);
    while (len > 0) {
        const std::size_t off = ea & (kPageSize - 1);
        const std::size_t chunk = std::min(len, kPageSize - off);
        if (const Page* p = pageForIfPresent(ea))
            std::memcpy(out, p->data() + off, chunk);
        else
            std::memset(out, 0, chunk);
        out += chunk;
        ea += chunk;
        len -= chunk;
    }
}

void
MainMemory::write(EffAddr ea, const void* src, std::size_t len)
{
    const auto* in = static_cast<const std::uint8_t*>(src);
    bytes_written_ += len;
    while (len > 0) {
        const std::size_t off = ea & (kPageSize - 1);
        const std::size_t chunk = std::min(len, kPageSize - off);
        if (off == 0 && chunk == kPageSize) {
            // Full-page write: build the page straight from the source
            // instead of zero-filling 64 KiB that is about to be
            // overwritten. Overwrites an existing page just as well.
            auto key = ea >> kPageBits;
            auto it = pages_.find(key);
            if (it == pages_.end()) {
                pages_.emplace(key, Page(in, in + kPageSize));
            } else {
                std::memcpy(it->second.data(), in, kPageSize);
            }
        } else {
            std::memcpy(pageFor(ea).data() + off, in, chunk);
        }
        in += chunk;
        ea += chunk;
        len -= chunk;
    }
}

} // namespace cell::sim
