/**
 * @file
 * SPU channel-interface implementation.
 */

#include "sim/channels.h"

#include <stdexcept>

namespace cell::sim {

namespace {

[[noreturn]] void
badChannel(const char* what, std::uint32_t ch)
{
    throw std::invalid_argument(std::string("SpuChannels: ") + what +
                                " channel " + std::to_string(ch));
}

} // namespace

CoTask<void>
SpuChannels::issueCommand(std::uint32_t opcode)
{
    MfcCommand cmd;
    cmd.ls = params_.lsa;
    cmd.ea = (static_cast<EffAddr>(params_.eah) << 32) | params_.eal;
    cmd.size = params_.size;
    cmd.tag = params_.tag;

    switch (opcode) {
      case MFC_GET_CMD:
        cmd.op = MfcOpcode::Get;
        break;
      case MFC_GETF_CMD:
        cmd.op = MfcOpcode::Get;
        cmd.fence = true;
        break;
      case MFC_GETB_CMD:
        cmd.op = MfcOpcode::Get;
        cmd.barrier = true;
        break;
      case MFC_PUT_CMD:
        cmd.op = MfcOpcode::Put;
        break;
      case MFC_PUTF_CMD:
        cmd.op = MfcOpcode::Put;
        cmd.fence = true;
        break;
      case MFC_PUTB_CMD:
        cmd.op = MfcOpcode::Put;
        cmd.barrier = true;
        break;
      case MFC_GETL_CMD:
      case MFC_PUTL_CMD:
        // List commands: LSA latches the LS target; EAL carries the
        // list address inside the LS; Size is the list size in bytes.
        cmd.op = opcode == MFC_GETL_CMD ? MfcOpcode::GetList
                                        : MfcOpcode::PutList;
        cmd.list_ls = params_.eal;
        cmd.ea = static_cast<EffAddr>(params_.eah) << 32;
        break;
      default:
        badChannel("unknown MFC opcode on", MFC_Cmd);
    }
    co_await spu_.mfc().enqueueSpu(cmd);
}

std::uint32_t
SpuChannels::eventStatus(std::uint32_t mask) const
{
    std::uint32_t ev = 0;
    if (spu_.mfc().tagStatusImmediate(tag_mask_) != 0)
        ev |= MFC_TAG_STATUS_UPDATE_EVENT;
    if (!spu_.inbound().empty())
        ev |= MFC_IN_MBOX_AVAILABLE_EVENT;
    if (spu_.signal1().peek() != 0)
        ev |= MFC_SIGNAL_NOTIFY_1_EVENT;
    if (spu_.signal2().peek() != 0)
        ev |= MFC_SIGNAL_NOTIFY_2_EVENT;
    if (spu_.decrementer().read(spu_.engine().now()) & 0x8000'0000u)
        ev |= MFC_DECREMENTER_EVENT;
    return ev & mask;
}

CoTask<std::uint32_t>
SpuChannels::readEventStat()
{
    if (event_mask_ == 0)
        badChannel("SPU_RdEventStat with empty event mask on",
                   SPU_RdEventStat);
    for (;;) {
        const std::uint32_t ev = eventStatus(event_mask_);
        if (ev != 0)
            co_return ev;
        // If the decrementer event is armed but not yet pending, the
        // only "notification" is time itself: schedule a wakeup for
        // the tick its MSB sets.
        if (event_mask_ & MFC_DECREMENTER_EVENT) {
            // Counting down from v, the MSB first sets when the value
            // wraps past zero to 0xFFFFFFFF — v + 1 ticks from now.
            const std::uint32_t v =
                spu_.decrementer().read(spu_.engine().now());
            const std::uint64_t ticks = std::uint64_t{v} + 1;
            Engine& eng = spu_.engine();
            CondVar& cv = spu_.activityCv();
            eng.schedule(eng.now() + ticks * spu_.timebase().divider(),
                         [&cv] { cv.notifyAll(); });
        }
        co_await spu_.activityCv().wait();
    }
}

CoTask<void>
SpuChannels::write(std::uint32_t ch, std::uint32_t value)
{
    co_await spu_.chargeChannel();
    switch (ch) {
      case MFC_LSA:
        params_.lsa = value;
        break;
      case MFC_EAH:
        params_.eah = value;
        break;
      case MFC_EAL:
        params_.eal = value;
        break;
      case MFC_Size:
        params_.size = value;
        break;
      case MFC_TagID:
        params_.tag = value;
        break;
      case MFC_Cmd:
        co_await issueCommand(value);
        break;
      case MFC_WrTagMask:
        tag_mask_ = value;
        break;
      case MFC_WrTagUpdate:
        if (value > MFC_TAG_UPDATE_ALL)
            badChannel("bad tag-update condition on", ch);
        tag_update_cond_ = value;
        tag_stat_pending_ = true;
        break;
      case MFC_WrListStallAck:
        spu_.mfc().ackListStall(value);
        break;
      case SPU_WrDec:
        spu_.decrementer().write(spu_.engine().now(), value);
        break;
      case SPU_WrEventMask:
        event_mask_ = value;
        break;
      case SPU_WrEventAck:
        // Level-triggered model: acknowledgement is a no-op (events
        // clear when their underlying condition is consumed).
        break;
      case SPU_WrOutMbox:
        co_await spu_.outbound().push(value);
        break;
      case SPU_WrOutIntrMbox:
        co_await spu_.outboundIrq().push(value);
        break;
      default:
        badChannel("write to non-writable", ch);
    }
}

CoTask<std::uint32_t>
SpuChannels::read(std::uint32_t ch)
{
    co_await spu_.chargeChannel();
    switch (ch) {
      case MFC_RdTagStat: {
        if (!tag_stat_pending_)
            badChannel("MFC_RdTagStat without MFC_WrTagUpdate on", ch);
        tag_stat_pending_ = false;
        switch (tag_update_cond_) {
          case MFC_TAG_UPDATE_IMMEDIATE:
            co_return spu_.mfc().tagStatusImmediate(tag_mask_);
          case MFC_TAG_UPDATE_ANY:
            co_return co_await spu_.mfc().waitTagStatusAny(tag_mask_);
          default:
            co_return co_await spu_.mfc().waitTagStatusAll(tag_mask_);
        }
      }
      case MFC_RdListStallStat:
        co_return spu_.mfc().stalledTags();
      case SPU_RdInMbox:
        co_return co_await spu_.inbound().pop();
      case SPU_RdSigNotify1:
        co_return co_await spu_.signal1().read();
      case SPU_RdSigNotify2:
        co_return co_await spu_.signal2().read();
      case SPU_RdDec:
        co_return spu_.decrementer().read(spu_.engine().now());
      case SPU_RdEventStat:
        co_return co_await readEventStat();
      default:
        badChannel("read from non-readable", ch);
    }
}

std::uint32_t
SpuChannels::count(std::uint32_t ch) const
{
    switch (ch) {
      // Parameter latches never stall.
      case MFC_LSA:
      case MFC_EAH:
      case MFC_EAL:
      case MFC_Size:
      case MFC_TagID:
      case MFC_WrTagMask:
      case MFC_WrTagUpdate:
      case MFC_WrListStallAck:
      case SPU_WrDec:
      case SPU_RdDec:
        return 1;
      case MFC_Cmd:
        return static_cast<std::uint32_t>(spu_.mfc().spuQueueSpace());
      case SPU_WrEventMask:
      case SPU_WrEventAck:
        return 1;
      case SPU_RdEventStat:
        return eventStatus(event_mask_) != 0 ? 1 : 0;
      case MFC_RdTagStat:
        // An immediate update can always be read; ANY/ALL reads may
        // stall, which the architecture reports as count 0.
        return (tag_stat_pending_ &&
                tag_update_cond_ == MFC_TAG_UPDATE_IMMEDIATE)
                   ? 1
                   : 0;
      case MFC_RdListStallStat:
        return spu_.mfc().stalledTags() != 0 ? 1 : 0;
      case SPU_RdInMbox:
        return static_cast<std::uint32_t>(spu_.inbound().count());
      case SPU_WrOutMbox:
        return static_cast<std::uint32_t>(kOutboundMailboxDepth -
                                          spu_.outbound().count());
      case SPU_WrOutIntrMbox:
        return static_cast<std::uint32_t>(kOutboundMailboxDepth -
                                          spu_.outboundIrq().count());
      case SPU_RdSigNotify1:
        return spu_.signal1().peek() != 0 ? 1 : 0;
      case SPU_RdSigNotify2:
        return spu_.signal2().peek() != 0 ? 1 : 0;
      default:
        badChannel("count of unknown", ch);
    }
}

} // namespace cell::sim
