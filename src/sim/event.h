/**
 * @file
 * Allocation-free event payloads for the discrete-event engine.
 *
 * The engine's original event payload was std::function<void()>, which
 * heap-allocates for any capture larger than the implementation's tiny
 * inline buffer and drags a virtual-ish dispatch through every move the
 * priority queue makes. EventCallback replaces it: a move-only callable
 * with a 64-byte inline buffer (sized so the largest in-tree capture,
 * the MFC completion closure, stays inline) and a single manager
 * function pointer for invoke/move/destroy. Callables that do not fit
 * fall back to one heap allocation, so correctness never depends on the
 * buffer size — only speed does, and fitsInline<F> lets hot call sites
 * static_assert their closures stay on the fast path.
 */

#ifndef CELL_SIM_EVENT_H
#define CELL_SIM_EVENT_H

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace cell::sim {

/**
 * Small-buffer-optimized move-only `void()` callable.
 *
 * Invariants:
 *  - moving is noexcept and never allocates;
 *  - inline storage is used iff the callable is nothrow-move-
 *    constructible and fits kInlineCapacity (otherwise one heap
 *    allocation at construction, pointer-sized moves afterwards);
 *  - a moved-from callback is empty and safely destructible.
 */
class EventCallback
{
  public:
    /** Inline storage size; covers every closure the simulator schedules. */
    static constexpr std::size_t kInlineCapacity = 64;

    /** True if F will be stored inline (no heap allocation). */
    template <typename F>
    static constexpr bool fitsInline =
        sizeof(std::decay_t<F>) <= kInlineCapacity &&
        alignof(std::decay_t<F>) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<std::decay_t<F>>;

    EventCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback> &&
                  std::is_invocable_r_v<void, std::decay_t<F>&>>>
    EventCallback(F&& f) // NOLINT: implicit by design (lambda -> callback)
    {
        using Fn = std::decay_t<F>;
        if constexpr (fitsInline<Fn>) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
            mgr_ = &inlineManager<Fn>;
        } else {
            *reinterpret_cast<Fn**>(buf_) = new Fn(std::forward<F>(f));
            mgr_ = &heapManager<Fn>;
        }
    }

    EventCallback(EventCallback&& other) noexcept { moveFrom(other); }

    EventCallback& operator=(EventCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;

    ~EventCallback() { reset(); }

    /** True if a callable is held. */
    explicit operator bool() const noexcept { return mgr_ != nullptr; }

    /** Invoke the held callable (undefined if empty). */
    void operator()() { mgr_(Op::Invoke, buf_, nullptr); }

    /** Destroy the held callable, leaving the callback empty. */
    void reset() noexcept
    {
        if (mgr_) {
            mgr_(Op::Destroy, buf_, nullptr);
            mgr_ = nullptr;
        }
    }

  private:
    enum class Op
    {
        Invoke,
        Move,    ///< move-construct from @p other storage into @p self
        Destroy,
    };

    using Manager = void (*)(Op, void* self, void* other);

    void moveFrom(EventCallback& other) noexcept
    {
        mgr_ = other.mgr_;
        if (mgr_) {
            mgr_(Op::Move, buf_, other.buf_);
            other.mgr_ = nullptr;
        }
    }

    template <typename Fn>
    static void inlineManager(Op op, void* self, void* other)
    {
        auto* fn = std::launder(reinterpret_cast<Fn*>(self));
        switch (op) {
          case Op::Invoke:
            (*fn)();
            break;
          case Op::Move: {
            auto* src = std::launder(reinterpret_cast<Fn*>(other));
            ::new (self) Fn(std::move(*src));
            src->~Fn();
            break;
          }
          case Op::Destroy:
            fn->~Fn();
            break;
        }
    }

    template <typename Fn>
    static void heapManager(Op op, void* self, void* other)
    {
        switch (op) {
          case Op::Invoke:
            (**reinterpret_cast<Fn**>(self))();
            break;
          case Op::Move:
            *reinterpret_cast<Fn**>(self) = *reinterpret_cast<Fn**>(other);
            break;
          case Op::Destroy:
            delete *reinterpret_cast<Fn**>(self);
            break;
        }
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
    Manager mgr_ = nullptr;
};

} // namespace cell::sim

#endif // CELL_SIM_EVENT_H
