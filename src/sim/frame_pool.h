/**
 * @file
 * Size-bucketed freelist for coroutine frames.
 *
 * Every nested simulator operation (`CoTask`) and process (`Task`)
 * allocates a coroutine frame; a single workload run creates and
 * destroys thousands of them, all short-lived and drawn from a handful
 * of size classes. Routing promise `operator new/delete` through this
 * pool turns each of those malloc/free pairs into a push/pop on a
 * per-thread freelist after warm-up — zero heap traffic on the
 * steady-state path, and no allocator-trim churn between runs.
 */

#ifndef CELL_SIM_FRAME_POOL_H
#define CELL_SIM_FRAME_POOL_H

#include <cstddef>
#include <cstdint>

namespace cell::sim {

/**
 * Per-thread coroutine-frame allocator.
 *
 * Blocks are rounded up to 64-byte granularity and cached in
 * per-size-class freelists on free. Requests above the pooled range
 * (4 KiB) fall through to the global allocator. All methods are static;
 * the cache is thread-local, so distinct simulation threads never
 * contend (the engine itself is single-threaded).
 */
class FramePool
{
  public:
    /** Pooled size classes are multiples of this. */
    static constexpr std::size_t kGranularity = 64;
    /** Largest pooled request; bigger blocks use operator new. */
    static constexpr std::size_t kMaxPooled = 4096;

    static void* allocate(std::size_t bytes);
    static void deallocate(void* p, std::size_t bytes) noexcept;

    /** @name Counters (for tests asserting zero steady-state mallocs) */
    ///@{
    /** Allocations served from the freelist. */
    static std::uint64_t hits() noexcept;
    /** Allocations that had to call operator new. */
    static std::uint64_t misses() noexcept;
    ///@}

    /** Release all cached blocks back to the global allocator. */
    static void trim() noexcept;
};

} // namespace cell::sim

#endif // CELL_SIM_FRAME_POOL_H
