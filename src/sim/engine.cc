/**
 * @file
 * Engine implementation and the Task final-suspend hook.
 */

#include "sim/engine.h"

#include <stdexcept>

namespace cell::sim {

std::string
coreName(CoreId id)
{
    if (id.isPpe())
        return "PPE";
    return "SPE" + std::to_string(id.speIndex());
}

void
Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept
{
    promise_type& p = h.promise();
    p.state->done = true;
    if (p.engine) {
        // Wake joiners at the current tick, preserving schedule order.
        for (std::coroutine_handle<> j : p.state->joiners)
            p.engine->scheduleResume(j, p.engine->now());
        p.state->joiners.clear();
        p.engine->unregisterFrame(h.address());
    }
    // The coroutine is suspended at its final suspend point; destroying
    // the frame here is the canonical self-cleanup pattern.
    h.destroy();
}

Engine::~Engine()
{
    killAllProcesses();
}

void
Engine::schedule(Tick when, std::function<void()> fn)
{
    if (when < now_)
        throw std::logic_error("Engine::schedule: event in the past");
    queue_.push(Event{when, next_seq_++, std::move(fn)});
}

void
Engine::scheduleResume(std::coroutine_handle<> h, Tick when)
{
    schedule(when, [h] { h.resume(); });
}

ProcessRef
Engine::spawn(Task task, std::string name)
{
    if (!task.valid())
        throw std::invalid_argument("Engine::spawn: empty task");
    auto handle = task.release();
    handle.promise().engine = this;
    handle.promise().state->name = std::move(name);
    auto state = handle.promise().state;
    spawned_.push_back(state);
    registerFrame(handle.address());
    scheduleResume(handle, now_);
    return ProcessRef(state, this);
}

std::uint64_t
Engine::run(Tick limit)
{
    std::uint64_t n = 0;
    while (!queue_.empty()) {
        const Event& top = queue_.top();
        if (top.when > limit) {
            now_ = limit;
            break;
        }
        now_ = top.when;
        auto fn = std::move(const_cast<Event&>(top).fn);
        queue_.pop();
        fn();
        ++n;
        ++dispatched_;
    }
    if (queue_.empty() && now_ < limit && limit != ~Tick{0})
        now_ = limit;
    // Surface the first process failure nobody joined on.
    for (const auto& st : spawned_) {
        if (st->error) {
            auto err = st->error;
            st->error = nullptr;
            std::rethrow_exception(err);
        }
    }
    return n;
}

std::size_t
Engine::processesCompleted() const
{
    std::size_t n = 0;
    for (const auto& st : spawned_)
        n += st->done ? 1 : 0;
    return n;
}

void
Engine::killAllProcesses()
{
    // Destroying a frame may spawn no new work (destructors only), but it
    // does unregister itself via unregisterFrame, so iterate on copies.
    auto frames = live_frames_;
    for (void* addr : frames) {
        if (!live_frames_.count(addr))
            continue; // already destroyed as a side effect
        live_frames_.erase(addr);
        std::coroutine_handle<>::from_address(addr).destroy();
    }
    live_frames_.clear();
    // Drop pending events; they may reference destroyed frames.
    queue_ = {};
}

} // namespace cell::sim
