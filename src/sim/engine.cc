/**
 * @file
 * Engine implementation and the Task final-suspend hook.
 */

#include "sim/engine.h"

#include <stdexcept>
#include <utility>

namespace cell::sim {

std::string
coreName(CoreId id)
{
    if (id.isPpe())
        return "PPE";
    return "SPE" + std::to_string(id.speIndex());
}

void
Task::promise_type::FinalAwaiter::await_suspend(
    std::coroutine_handle<promise_type> h) noexcept
{
    promise_type& p = h.promise();
    p.state->done = true;
    if (p.engine) {
        // Wake joiners at the current tick, preserving schedule order.
        for (std::coroutine_handle<> j : p.state->joiners)
            p.engine->scheduleResume(j, p.engine->now());
        p.state->joiners.clear();
        p.engine->noteProcessFinished(p.state);
        p.engine->unregisterFrame(h.address());
    }
    // The coroutine is suspended at its final suspend point; destroying
    // the frame here is the canonical self-cleanup pattern.
    h.destroy();
}

Engine::~Engine()
{
    killAllProcesses();
}

void
Engine::throwPastEvent()
{
    throw std::logic_error("Engine::schedule: event in the past");
}

void
Engine::schedule(Tick when, EventCallback fn)
{
    if (when < now_)
        throwPastEvent();
    Event ev;
    ev.when = when;
    ev.seq = next_seq_++;
    ev.fn = std::move(fn);
    enqueue(std::move(ev));
}

void
Engine::heapPush(Event&& ev)
{
    heap_.push_back(std::move(ev));
    // Sift up.
    std::size_t i = heap_.size() - 1;
    while (i > 0) {
        const std::size_t parent = (i - 1) / 2;
        if (!before(heap_[i], heap_[parent]))
            break;
        std::swap(heap_[i], heap_[parent]);
        i = parent;
    }
}

Engine::Event
Engine::heapPop()
{
    Event top = std::move(heap_.front());
    Event last = std::move(heap_.back());
    heap_.pop_back();
    if (!heap_.empty()) {
        // Sift the former last element down from the root.
        const std::size_t n = heap_.size();
        std::size_t i = 0;
        for (;;) {
            std::size_t smallest = i;
            const std::size_t l = 2 * i + 1;
            const std::size_t r = 2 * i + 2;
            if (l < n && before(heap_[l], smallest == i ? last : heap_[smallest]))
                smallest = l;
            if (r < n && before(heap_[r], smallest == i ? last : heap_[smallest]))
                smallest = r;
            if (smallest == i)
                break;
            heap_[i] = std::move(heap_[smallest]);
            i = smallest;
        }
        heap_[i] = std::move(last);
    }
    return top;
}

ProcessRef
Engine::spawn(Task task, std::string name)
{
    if (!task.valid())
        throw std::invalid_argument("Engine::spawn: empty task");
    auto handle = task.release();
    handle.promise().engine = this;
    handle.promise().state->name = std::move(name);
    auto state = handle.promise().state;
    ++spawn_count_;
    registerFrame(handle.address());
    scheduleResume(handle, now_);
    return ProcessRef(state, this);
}

void
Engine::noteProcessFinished(const std::shared_ptr<ProcessState>& state)
{
    ++completed_count_;
    // Keep only failing processes; completed clean ones are dropped so
    // long simulations do not accumulate per-process state.
    if (state->error)
        failed_.push_back(state);
}

std::uint64_t
Engine::run(Tick limit)
{
    std::uint64_t n = 0;
    for (;;) {
        // Drain the current-tick batch in FIFO (== sequence) order.
        // Dispatching may append new same-tick events; the cursor walk
        // picks them up in order. killAllProcesses() may clear the
        // batch mid-drain, which the size check observes immediately.
        while (batch_pos_ < batch_.size()) {
            Event ev = std::move(batch_[batch_pos_]);
            ++batch_pos_;
            dispatch(ev);
            ++n;
            ++dispatched_;
        }
        batch_.clear(); // keeps capacity: pooled across ticks and runs
        batch_pos_ = 0;

        if (heap_.empty())
            break;
        const Tick t = heap_.front().when;
        if (t > limit)
            break;
        now_ = t;
        // Pull every event at this tick into the batch in one pass;
        // they leave the (tick, seq)-ordered heap in sequence order.
        do {
            batch_.push_back(heapPop());
        } while (!heap_.empty() && heap_.front().when == t);
    }
    if (now_ < limit && limit != ~Tick{0})
        now_ = limit;
    // Surface the first process failure nobody joined on.
    if (!failed_.empty())
        surfaceFailure();
    return n;
}

void
Engine::surfaceFailure()
{
    // Joiners may have consumed errors since the process finished;
    // drop those entries. Rethrow the first live error, keeping any
    // later failures queued for subsequent run() calls.
    while (!failed_.empty()) {
        auto state = failed_.front();
        failed_.erase(failed_.begin());
        if (state->error) {
            auto err = state->error;
            state->error = nullptr;
            std::rethrow_exception(err);
        }
    }
}

void
Engine::killAllProcesses()
{
    // Destroying a frame may spawn no new work (destructors only), but it
    // does unregister itself via unregisterFrame, so iterate on copies.
    auto frames = live_frames_;
    for (void* addr : frames) {
        if (!live_frames_.count(addr))
            continue; // already destroyed as a side effect
        live_frames_.erase(addr);
        std::coroutine_handle<>::from_address(addr).destroy();
    }
    live_frames_.clear();
    // Drop pending events; they may reference destroyed frames. clear()
    // keeps the pooled storage so a reused engine stays allocation-free.
    heap_.clear();
    batch_.clear();
    batch_pos_ = 0;
}

} // namespace cell::sim
