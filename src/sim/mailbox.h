/**
 * @file
 * SPE mailbox channels.
 *
 * Each SPE has three mailboxes for 32-bit messages:
 *   - inbound (PPE -> SPU), 4 entries deep;
 *   - outbound (SPU -> PPE), 1 entry;
 *   - outbound-interrupt (SPU -> PPE, raises an interrupt), 1 entry.
 *
 * SPU channel accesses block when the mailbox is empty (reads) or full
 * (writes); those blocking intervals are precisely what PDT records as
 * mailbox-stall events.
 */

#ifndef CELL_SIM_MAILBOX_H
#define CELL_SIM_MAILBOX_H

#include <cstdint>
#include <deque>
#include <functional>

#include "sim/sync.h"
#include "sim/types.h"

namespace cell::sim {

/**
 * A bounded 32-bit message queue with simulated blocking semantics.
 */
class Mailbox
{
  public:
    Mailbox(Engine& engine, std::size_t depth) : depth_(depth), cv_(engine) {}

    Mailbox(const Mailbox&) = delete;
    Mailbox& operator=(const Mailbox&) = delete;

    std::size_t depth() const { return depth_; }
    std::size_t count() const { return fifo_.size(); }
    bool full() const { return fifo_.size() >= depth_; }
    bool empty() const { return fifo_.empty(); }

    /** Non-blocking push. @return false when full. */
    bool tryPush(std::uint32_t value)
    {
        if (full())
            return false;
        fifo_.push_back(value);
        cv_.notifyAll();
        if (on_change_)
            on_change_();
        return true;
    }

    /** Non-blocking pop. @return false when empty. */
    bool tryPop(std::uint32_t& value)
    {
        if (empty())
            return false;
        value = fifo_.front();
        fifo_.pop_front();
        cv_.notifyAll();
        if (on_change_)
            on_change_();
        return true;
    }

    /** Observer poked on every state change (the SPU event facility). */
    void setOnChange(std::function<void()> fn) { on_change_ = std::move(fn); }

    /** Blocking push: suspends the calling process while full. */
    CoTask<void> push(std::uint32_t value)
    {
        while (!tryPush(value))
            co_await cv_.wait();
    }

    /** Blocking pop: suspends the calling process while empty. */
    CoTask<std::uint32_t> pop()
    {
        std::uint32_t v = 0;
        while (!tryPop(v))
            co_await cv_.wait();
        co_return v;
    }

    /** Wakeup source for composite waits (e.g. PPE poll loops). */
    CondVar& condvar() { return cv_; }

  private:
    std::size_t depth_;
    std::deque<std::uint32_t> fifo_;
    CondVar cv_;
    std::function<void()> on_change_;
};

} // namespace cell::sim

#endif // CELL_SIM_MAILBOX_H
