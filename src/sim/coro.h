/**
 * @file
 * C++20 coroutine process layer for the discrete-event engine.
 *
 * Simulated activities (an SPU program, a DMA engine, the PPE main
 * program) are coroutines of type Task. A Task is spawned onto an
 * Engine, which resumes it as simulated time advances. Inside a Task,
 * code awaits:
 *
 *   - Engine::delay(n)   -- advance simulated time by n cycles
 *   - OneShotEvent       -- a level-triggered one-shot condition
 *   - CondVar            -- an edge-triggered wakeup (re-check loop)
 *   - ProcessRef::join() -- completion of another process
 *
 * All resumptions are funnelled through the Engine so the simulation
 * stays single-threaded and deterministic.
 */

#ifndef CELL_SIM_CORO_H
#define CELL_SIM_CORO_H

#include <coroutine>
#include <exception>
#include <memory>
#include <utility>
#include <vector>

#include "sim/frame_pool.h"
#include "sim/types.h"

namespace cell::sim {

class Engine;

/**
 * Shared completion state of one simulated process.
 *
 * Lifetime: held by the coroutine promise until the frame is destroyed
 * at final suspend, and by any ProcessRef/joiner. The Engine itself
 * retains a reference only for processes that finish with an
 * unconsumed error (so run() can surface it); cleanly completed
 * processes leave no per-process state behind in the engine.
 */
struct ProcessState
{
    bool done = false;
    std::exception_ptr error;
    /** Coroutines waiting for this process to finish. */
    std::vector<std::coroutine_handle<>> joiners;
    /** Printable name, for diagnostics. */
    std::string name;
};

/**
 * A fire-and-forget simulated process.
 *
 * Created by calling a coroutine function returning Task; it does not
 * start executing until handed to Engine::spawn(). Task is move-only
 * and owns the coroutine frame until spawned.
 */
class [[nodiscard]] Task
{
  public:
    struct promise_type
    {
        std::shared_ptr<ProcessState> state = std::make_shared<ProcessState>();
        Engine* engine = nullptr;

        void* operator new(std::size_t n) { return FramePool::allocate(n); }
        void operator delete(void* p, std::size_t n) noexcept
        {
            FramePool::deallocate(p, n);
        }

        Task get_return_object()
        {
            return Task(std::coroutine_handle<promise_type>::from_promise(*this));
        }
        std::suspend_always initial_suspend() noexcept { return {}; }

        /** Final suspend: mark done, wake joiners; Engine destroys the frame. */
        struct FinalAwaiter
        {
            bool await_ready() noexcept { return false; }
            void await_suspend(std::coroutine_handle<promise_type> h) noexcept;
            void await_resume() noexcept {}
        };
        FinalAwaiter final_suspend() noexcept { return {}; }

        void return_void() {}
        void unhandled_exception() { state->error = std::current_exception(); }
    };

    Task() = default;
    explicit Task(std::coroutine_handle<promise_type> h) : handle_(h) {}
    Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
    Task& operator=(Task&& other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, {});
        }
        return *this;
    }
    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { destroy(); }

    bool valid() const { return static_cast<bool>(handle_); }

    /** Release ownership of the coroutine frame (used by Engine::spawn). */
    std::coroutine_handle<promise_type> release() { return std::exchange(handle_, {}); }

  private:
    void destroy()
    {
        if (handle_)
            handle_.destroy();
        handle_ = {};
    }

    std::coroutine_handle<promise_type> handle_;
};

/**
 * Handle to a spawned process; lets other processes join it and
 * inspect completion. Copyable (shared state).
 */
class ProcessRef
{
  public:
    ProcessRef() = default;
    ProcessRef(std::shared_ptr<ProcessState> state, Engine* engine)
        : state_(std::move(state)), engine_(engine)
    {}

    bool valid() const { return static_cast<bool>(state_); }
    bool done() const { return state_ && state_->done; }

    /** Exception raised by the process, if any (null otherwise). */
    std::exception_ptr error() const { return state_ ? state_->error : nullptr; }

    /**
     * Awaitable that suspends until the process completes. Rethrows the
     * process's exception, if any, in the joining coroutine.
     */
    struct JoinAwaiter
    {
        std::shared_ptr<ProcessState> state;

        bool await_ready() const { return state->done; }
        void await_suspend(std::coroutine_handle<> h) { state->joiners.push_back(h); }
        void await_resume() const
        {
            if (state->error) {
                auto err = state->error;
                state->error = nullptr; // consumed by the joiner
                std::rethrow_exception(err);
            }
        }
    };

    JoinAwaiter join() const { return JoinAwaiter{state_}; }

  private:
    std::shared_ptr<ProcessState> state_;
    Engine* engine_ = nullptr;
};

/**
 * A lazy, awaitable sub-coroutine returning T.
 *
 * Used for nested "blocking" operations inside a process: the caller
 * co_awaits a CoTask, the callee runs (possibly suspending on engine
 * primitives), and control returns to the caller with the result via
 * symmetric transfer. CoTask owns the callee frame; destroying an
 * outer process therefore unwinds nested operations correctly.
 */
template <typename T>
class [[nodiscard]] CoTask
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }
        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }
        void await_resume() const noexcept {}
    };

    struct PromiseBase
    {
        std::exception_ptr error;
        std::coroutine_handle<> continuation;

        void* operator new(std::size_t n) { return FramePool::allocate(n); }
        void operator delete(void* p, std::size_t n) noexcept
        {
            FramePool::deallocate(p, n);
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void unhandled_exception() { error = std::current_exception(); }
    };

    struct promise_type : PromiseBase
    {
        // Result storage; monostate-like for void via specialization below.
        alignas(T) unsigned char storage[sizeof(T)];
        bool has_value = false;

        CoTask get_return_object() { return CoTask(Handle::from_promise(*this)); }
        template <typename U>
        void return_value(U&& v)
        {
            ::new (static_cast<void*>(storage)) T(std::forward<U>(v));
            has_value = true;
        }
        ~promise_type()
        {
            if (has_value)
                reinterpret_cast<T*>(storage)->~T();
        }
    };

    CoTask() = default;
    explicit CoTask(Handle h) : handle_(h) {}
    CoTask(CoTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    CoTask& operator=(CoTask&& o) noexcept
    {
        if (this != &o) {
            if (handle_)
                handle_.destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }
    CoTask(const CoTask&) = delete;
    CoTask& operator=(const CoTask&) = delete;
    ~CoTask()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller)
    {
        handle_.promise().continuation = caller;
        return handle_; // start (or resume into) the callee
    }
    T await_resume()
    {
        auto& p = handle_.promise();
        if (p.error)
            std::rethrow_exception(p.error);
        return std::move(*reinterpret_cast<T*>(p.storage));
    }

  private:
    Handle handle_;
};

/** Void specialization of CoTask. */
template <>
class [[nodiscard]] CoTask<void>
{
  public:
    struct promise_type;
    using Handle = std::coroutine_handle<promise_type>;

    struct FinalAwaiter
    {
        bool await_ready() const noexcept { return false; }
        std::coroutine_handle<>
        await_suspend(Handle h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }
        void await_resume() const noexcept {}
    };

    struct promise_type
    {
        std::exception_ptr error;
        std::coroutine_handle<> continuation;

        void* operator new(std::size_t n) { return FramePool::allocate(n); }
        void operator delete(void* p, std::size_t n) noexcept
        {
            FramePool::deallocate(p, n);
        }

        CoTask get_return_object() { return CoTask(Handle::from_promise(*this)); }
        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { error = std::current_exception(); }
    };

    CoTask() = default;
    explicit CoTask(Handle h) : handle_(h) {}
    CoTask(CoTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
    CoTask& operator=(CoTask&& o) noexcept
    {
        if (this != &o) {
            if (handle_)
                handle_.destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }
    CoTask(const CoTask&) = delete;
    CoTask& operator=(const CoTask&) = delete;
    ~CoTask()
    {
        if (handle_)
            handle_.destroy();
    }

    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(std::coroutine_handle<> caller)
    {
        handle_.promise().continuation = caller;
        return handle_;
    }
    void await_resume()
    {
        if (handle_.promise().error)
            std::rethrow_exception(handle_.promise().error);
    }

  private:
    Handle handle_;
};

} // namespace cell::sim

#endif // CELL_SIM_CORO_H
