/**
 * @file
 * Machine assembly and effective-address routing.
 */

#include "sim/machine.h"

#include <stdexcept>

namespace cell::sim {

Machine::Machine(MachineConfig cfg)
    : cfg_(cfg),
      engine_(),
      timebase_(cfg.timebase_divider),
      memory_(),
      faults_(cfg.faults),
      eib_(cfg.eib, &faults_)
{
    spes_.reserve(cfg_.num_spes);
    for (std::uint32_t i = 0; i < cfg_.num_spes; ++i) {
        spes_.push_back(
            std::make_unique<Spu>(engine_, eib_, *this, cfg_, i, &faults_));
    }
    for (auto& spe : spes_)
        spe->mfc().start();
}

Machine::~Machine()
{
    // Destroy all coroutine frames while the components their locals
    // reference are still alive.
    engine_.killAllProcesses();
}

ProcessRef
Machine::spawnPpe(Task task, std::string name)
{
    return engine_.spawn(std::move(task), std::move(name));
}

Spu*
Machine::apertureOwner(EffAddr ea, std::size_t len)
{
    if (!cfg_.eaIsLocalStore(ea))
        return nullptr;
    const EffAddr rel = ea - cfg_.ls_map_base;
    const auto spe_index = static_cast<std::uint32_t>(rel / cfg_.ls_map_stride);
    const EffAddr offset = rel % cfg_.ls_map_stride;
    if (spe_index >= spes_.size())
        throw std::out_of_range("EA maps past the last SPE's LS aperture");
    if (offset + len > kLocalStoreSize) {
        throw std::out_of_range(
            "DMA touches an LS aperture beyond the 256 KiB local store");
    }
    return spes_[spe_index].get();
}

void
Machine::readEa(EffAddr ea, void* dst, std::size_t len)
{
    if (Spu* spe = apertureOwner(ea, len)) {
        const EffAddr offset = (ea - cfg_.ls_map_base) % cfg_.ls_map_stride;
        spe->localStore().read(static_cast<LsAddr>(offset), dst, len);
        return;
    }
    memory_.read(ea, dst, len);
}

void
Machine::writeEa(EffAddr ea, const void* src, std::size_t len)
{
    if (Spu* spe = apertureOwner(ea, len)) {
        const EffAddr offset = (ea - cfg_.ls_map_base) % cfg_.ls_map_stride;
        spe->localStore().write(static_cast<LsAddr>(offset), src, len);
        return;
    }
    memory_.write(ea, src, len);
}

bool
Machine::eaIsLocalStore(EffAddr ea) const
{
    return cfg_.eaIsLocalStore(ea);
}

} // namespace cell::sim
