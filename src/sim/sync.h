/**
 * @file
 * Synchronization primitives for simulated processes.
 *
 * These are *simulation-level* primitives (they suspend coroutines and
 * wake them through the Engine), not host-thread primitives.
 */

#ifndef CELL_SIM_SYNC_H
#define CELL_SIM_SYNC_H

#include <coroutine>
#include <vector>

#include "sim/engine.h"

namespace cell::sim {

/**
 * Edge-triggered wakeup: processes co_await wait() and are resumed by
 * notifyAll()/notifyOne(). As with host condition variables, a waiter
 * must re-check its predicate in a loop after waking.
 */
class CondVar
{
  public:
    explicit CondVar(Engine& engine) : engine_(engine) {}

    CondVar(const CondVar&) = delete;
    CondVar& operator=(const CondVar&) = delete;

    struct WaitAwaiter
    {
        CondVar& cv;

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h) { cv.waiters_.push_back(h); }
        void await_resume() const noexcept {}
    };

    /** Suspend until the next notify. Always re-check the predicate. */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

    /** Wake every current waiter (at the current tick, in wait order). */
    void notifyAll()
    {
        for (auto h : waiters_)
            engine_.scheduleResume(h, engine_.now());
        waiters_.clear();
    }

    /** Wake the longest-waiting process, if any. */
    void notifyOne()
    {
        if (waiters_.empty())
            return;
        engine_.scheduleResume(waiters_.front(), engine_.now());
        waiters_.erase(waiters_.begin());
    }

    /** Number of processes currently blocked on this variable. */
    std::size_t waiterCount() const { return waiters_.size(); }

  private:
    Engine& engine_;
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * Level-triggered one-shot event. Once set() it stays set; waiters that
 * arrive afterwards do not suspend.
 */
class OneShotEvent
{
  public:
    explicit OneShotEvent(Engine& engine) : engine_(engine) {}

    OneShotEvent(const OneShotEvent&) = delete;
    OneShotEvent& operator=(const OneShotEvent&) = delete;

    bool isSet() const { return set_; }

    /** Fire the event; wakes all waiters. Idempotent. */
    void set()
    {
        if (set_)
            return;
        set_ = true;
        for (auto h : waiters_)
            engine_.scheduleResume(h, engine_.now());
        waiters_.clear();
    }

    struct WaitAwaiter
    {
        OneShotEvent& ev;

        bool await_ready() const noexcept { return ev.set_; }
        void await_suspend(std::coroutine_handle<> h) { ev.waiters_.push_back(h); }
        void await_resume() const noexcept {}
    };

    /** Suspend until set() has been called (no-op if already set). */
    WaitAwaiter wait() { return WaitAwaiter{*this}; }

  private:
    Engine& engine_;
    bool set_ = false;
    std::vector<std::coroutine_handle<>> waiters_;
};

/**
 * Counting semaphore over simulated time; acquire() suspends while the
 * count is zero. FIFO fairness.
 */
class SimSemaphore
{
  public:
    SimSemaphore(Engine& engine, std::size_t initial)
        : engine_(engine), count_(initial)
    {}

    struct Acquire
    {
        SimSemaphore& sem;

        bool await_ready() const noexcept { return false; }
        bool await_suspend(std::coroutine_handle<> h)
        {
            if (sem.pending_.empty() && sem.count_ > 0) {
                --sem.count_;
                return false; // unit taken, resume immediately
            }
            sem.pending_.push_back(h);
            return true;
        }
        void await_resume() const noexcept {}
    };

    /** Awaitable acquiring one unit. */
    Acquire acquire() { return Acquire{*this}; }

    /** Release one unit; wakes the longest waiter if any. */
    void release()
    {
        ++count_;
        drainIfPossible();
    }

    std::size_t available() const { return count_; }
    std::size_t waiting() const { return pending_.size(); }

  private:
    void drainIfPossible()
    {
        while (count_ > 0 && !pending_.empty()) {
            --count_;
            engine_.scheduleResume(pending_.front(), engine_.now());
            pending_.erase(pending_.begin());
        }
    }

    Engine& engine_;
    std::size_t count_;
    std::vector<std::coroutine_handle<>> pending_;
};

} // namespace cell::sim

#endif // CELL_SIM_SYNC_H
