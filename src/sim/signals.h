/**
 * @file
 * SPE signal-notification registers.
 *
 * Each SPE has two 32-bit signal-notification registers. Writers (the
 * PPE or other SPEs via MMIO/DMA) deposit bits; the SPU reads a
 * register through its channel interface, which blocks until the value
 * is non-zero and clears it on read. Each register is independently
 * configured in OR mode (writes accumulate bits — many-to-one
 * signalling) or overwrite mode (last write wins).
 */

#ifndef CELL_SIM_SIGNALS_H
#define CELL_SIM_SIGNALS_H

#include <cstdint>
#include <functional>

#include "sim/sync.h"
#include "sim/types.h"

namespace cell::sim {

/** Accumulation behaviour of a signal-notification register. */
enum class SignalMode : std::uint8_t
{
    Or,        ///< writes OR into the register (default for sync fan-in)
    Overwrite, ///< writes replace the register
};

/** One signal-notification register. */
class SignalRegister
{
  public:
    SignalRegister(Engine& engine, SignalMode mode)
        : mode_(mode), cv_(engine)
    {}

    SignalRegister(const SignalRegister&) = delete;
    SignalRegister& operator=(const SignalRegister&) = delete;

    SignalMode mode() const { return mode_; }
    void setMode(SignalMode m) { mode_ = m; }

    /** Current value without consuming it. */
    std::uint32_t peek() const { return value_; }

    /** External write (PPE MMIO or sndsig DMA from another SPE). */
    void post(std::uint32_t bits)
    {
        if (mode_ == SignalMode::Or)
            value_ |= bits;
        else
            value_ = bits;
        if (value_ != 0) {
            cv_.notifyAll();
            if (on_change_)
                on_change_();
        }
    }

    /** Observer poked on posts (the SPU event facility). */
    void setOnChange(std::function<void()> fn) { on_change_ = std::move(fn); }

    /** Non-blocking SPU read: clears and returns, or false if zero. */
    bool tryRead(std::uint32_t& out)
    {
        if (value_ == 0)
            return false;
        out = value_;
        value_ = 0;
        return true;
    }

    /** Blocking SPU channel read: waits for non-zero, clears, returns. */
    CoTask<std::uint32_t> read()
    {
        std::uint32_t v = 0;
        while (!tryRead(v))
            co_await cv_.wait();
        co_return v;
    }

  private:
    SignalMode mode_;
    std::uint32_t value_ = 0;
    CondVar cv_;
    std::function<void()> on_change_;
};

} // namespace cell::sim

#endif // CELL_SIM_SIGNALS_H
