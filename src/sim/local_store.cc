/**
 * @file
 * MFC DMA shape validation.
 */

#include "sim/local_store.h"

#include <string>

namespace cell::sim {

void
LocalStore::checkDmaShape(LsAddr ls_addr, EffAddr ea, std::size_t len)
{
    auto fail = [&](const char* why) {
        throw std::invalid_argument(
            std::string("MFC DMA shape violation: ") + why +
            " (ls=0x" + std::to_string(ls_addr) +
            ", ea=0x" + std::to_string(ea) +
            ", len=" + std::to_string(len) + ")");
    };

    if (len == 0)
        fail("zero-length transfer");
    if (len > kMaxDmaSize)
        fail("transfer larger than 16 KiB");

    if (len == 1 || len == 2 || len == 4 || len == 8) {
        // Small transfers: naturally aligned, and the low 4 bits of the
        // LS address and EA must match (same quadword offset).
        if (ls_addr % len != 0 || ea % len != 0)
            fail("small transfer not naturally aligned");
        if ((ls_addr & 0xF) != (ea & 0xF))
            fail("small transfer quadword offsets differ");
        return;
    }

    if (len % 16 != 0)
        fail("length must be 1/2/4/8 or a multiple of 16");
    if (ls_addr % 16 != 0)
        fail("LS address not 16-byte aligned");
    if (ea % 16 != 0)
        fail("effective address not 16-byte aligned");
}

} // namespace cell::sim
