/**
 * @file
 * The assembled Cell BE machine: one PPE, N SPEs, the EIB, and main
 * storage, all driven by one deterministic event engine.
 */

#ifndef CELL_SIM_MACHINE_H
#define CELL_SIM_MACHINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/decrementer.h"
#include "sim/eib.h"
#include "sim/engine.h"
#include "sim/fault.h"
#include "sim/main_memory.h"
#include "sim/mfc.h"
#include "sim/spu.h"

namespace cell::sim {

/** Ground-truth PPE accounting. */
struct PpeStats
{
    std::uint64_t compute_cycles = 0;
    std::uint64_t mmio_cycles = 0;
    std::uint64_t wait_cycles = 0;
};

/**
 * The machine. Also implements StorageMap: effective addresses inside
 * an SPE's local-store aperture route to that SPE's LS; everything
 * else is main storage. A single DMA transfer must not straddle an
 * aperture boundary (hardware would raise an MFC error; we throw).
 */
class Machine : public StorageMap
{
  public:
    explicit Machine(MachineConfig cfg = {});
    ~Machine() override;

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    Engine& engine() { return engine_; }
    MainMemory& memory() { return memory_; }
    Eib& eib() { return eib_; }
    FaultInjector& faults() { return faults_; }
    const FaultInjector& faults() const { return faults_; }
    const MachineConfig& config() const { return cfg_; }
    const Timebase& timebase() const { return timebase_; }

    std::uint32_t numSpes() const { return static_cast<std::uint32_t>(spes_.size()); }
    Spu& spe(std::uint32_t i) { return *spes_.at(i); }
    const Spu& spe(std::uint32_t i) const { return *spes_.at(i); }

    PpeStats& ppeStats() { return ppe_stats_; }

    /** PPE timebase read (costs cost.ppe_timebase_read when charged
     *  through rt::PpeEnv; raw read here is free). */
    std::uint64_t readTimebase() const { return timebase_.read(engine_.now()); }

    /** Spawn a PPE-side process (e.g. the main program). */
    ProcessRef spawnPpe(Task task, std::string name = "ppe");

    /** Run the machine until quiescence or @p limit. */
    std::uint64_t run(Tick limit = ~Tick{0}) { return engine_.run(limit); }

    /** @name StorageMap */
    ///@{
    void readEa(EffAddr ea, void* dst, std::size_t len) override;
    void writeEa(EffAddr ea, const void* src, std::size_t len) override;
    bool eaIsLocalStore(EffAddr ea) const override;
    ///@}

    /** Convert engine ticks to nanoseconds (display only). */
    double ticksToNs(Tick t) const
    {
        return static_cast<double>(t) * 1e9 / static_cast<double>(cfg_.core_hz);
    }

  private:
    /** Locate the SPE (if any) whose LS aperture contains @p ea. */
    Spu* apertureOwner(EffAddr ea, std::size_t len);

    MachineConfig cfg_;
    Engine engine_;
    Timebase timebase_;
    MainMemory memory_;
    /** Declared before eib_/spes_: they capture a pointer to it. */
    FaultInjector faults_;
    Eib eib_;
    std::vector<std::unique_ptr<Spu>> spes_;
    PpeStats ppe_stats_;
};

} // namespace cell::sim

#endif // CELL_SIM_MACHINE_H
