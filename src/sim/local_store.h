/**
 * @file
 * SPE local store: 256 KiB of private, software-managed memory.
 *
 * The local store is the only memory an SPU can load/store directly;
 * everything else moves through MFC DMA. This model enforces bounds
 * and the MFC's DMA alignment rules.
 */

#ifndef CELL_SIM_LOCAL_STORE_H
#define CELL_SIM_LOCAL_STORE_H

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "sim/types.h"

namespace cell::sim {

/**
 * One SPE's local store.
 *
 * Provides raw byte access for DMA and typed access for SPU program
 * code. All accesses are bounds-checked; out-of-range access throws,
 * modeling the hardware's LS wrap as a program error instead (silent
 * wrap-around hides bugs that this reproduction wants to surface).
 */
class LocalStore
{
  public:
    LocalStore() : bytes_(kLocalStoreSize, 0) {}

    std::size_t size() const { return kLocalStoreSize; }

    /** Raw pointer for bulk copies (bounds must be pre-checked). */
    std::uint8_t* data() { return bytes_.data(); }
    const std::uint8_t* data() const { return bytes_.data(); }

    /** Copy @p len bytes out of the LS starting at @p addr. */
    void read(LsAddr addr, void* dst, std::size_t len) const
    {
        checkRange(addr, len);
        std::memcpy(dst, bytes_.data() + addr, len);
    }

    /** Copy @p len bytes into the LS starting at @p addr. */
    void write(LsAddr addr, const void* src, std::size_t len)
    {
        checkRange(addr, len);
        std::memcpy(bytes_.data() + addr, src, len);
    }

    /** Typed load (SPU load instruction). */
    template <typename T>
    T load(LsAddr addr) const
    {
        T v;
        read(addr, &v, sizeof(T));
        return v;
    }

    /** Typed store (SPU store instruction). */
    template <typename T>
    void store(LsAddr addr, const T& v)
    {
        write(addr, &v, sizeof(T));
    }

    /**
     * Bounds-checked raw window: pointer to @p len bytes at @p addr.
     * One range check up front, then direct access — the fast path for
     * per-element tile loops that would otherwise pay a check per
     * load/store.
     */
    std::uint8_t* span(LsAddr addr, std::size_t len)
    {
        checkRange(addr, len);
        return bytes_.data() + addr;
    }
    const std::uint8_t* span(LsAddr addr, std::size_t len) const
    {
        checkRange(addr, len);
        return bytes_.data() + addr;
    }

    /** Zero a range. */
    void clear(LsAddr addr, std::size_t len)
    {
        checkRange(addr, len);
        std::memset(bytes_.data() + addr, 0, len);
    }

    /**
     * Validate MFC DMA alignment/size rules for a transfer touching
     * this LS. Legal sizes: 1, 2, 4, 8 bytes (naturally aligned, with
     * matching low EA/LS address bits) or a multiple of 16 up to
     * 16 KiB with 16-byte aligned addresses.
     *
     * @throws std::invalid_argument on violation.
     */
    static void checkDmaShape(LsAddr ls_addr, EffAddr ea, std::size_t len);

  private:
    void checkRange(LsAddr addr, std::size_t len) const
    {
        if (static_cast<std::size_t>(addr) + len > kLocalStoreSize)
            throw std::out_of_range("LocalStore: access beyond 256 KiB");
    }

    std::vector<std::uint8_t> bytes_;
};

} // namespace cell::sim

#endif // CELL_SIM_LOCAL_STORE_H
