/**
 * @file
 * The SPU's architected channel interface.
 *
 * Real SPU code talks to the outside world exclusively through 128
 * numbered channels accessed with rdch/wrch/rchcnt instructions; the
 * SDK intrinsics (mfc_get, spu_read_in_mbox, ...) are thin wrappers
 * over them. This adapter exposes that layer faithfully on the
 * simulated SPE: an MFC command is issued by writing MFC_LSA, MFC_EAH,
 * MFC_EAL, MFC_Size, MFC_TagID and finally MFC_Cmd with the opcode;
 * tag waits go through MFC_WrTagMask / MFC_WrTagUpdate / MFC_RdTagStat;
 * mailboxes, signals and the decrementer have their architected
 * numbers. Channel *counts* (rchcnt) report, per the architecture, how
 * many reads/writes would complete without stalling.
 *
 * The higher-level rt::SpuEnv is what applications normally use; this
 * layer exists for fidelity (PDT-era SPU code and the SDK runtime are
 * written against it) and is fully covered by tests.
 */

#ifndef CELL_SIM_CHANNELS_H
#define CELL_SIM_CHANNELS_H

#include <cstdint>

#include "sim/spu.h"

namespace cell::sim {

/** Architected SPU channel numbers (CBEA v1.1, table 9-1 subset). */
enum SpuChannel : std::uint32_t
{
    SPU_RdEventStat = 0,
    SPU_WrEventMask = 1,
    SPU_WrEventAck = 2,
    SPU_RdSigNotify1 = 3,
    SPU_RdSigNotify2 = 4,
    SPU_WrDec = 7,
    SPU_RdDec = 8,
    MFC_WrMSSyncReq = 9,
    MFC_LSA = 16,
    MFC_EAH = 17,
    MFC_EAL = 18,
    MFC_Size = 19,
    MFC_TagID = 20,
    MFC_Cmd = 21,
    MFC_WrTagMask = 22,
    MFC_WrTagUpdate = 23,
    MFC_RdTagStat = 24,
    MFC_RdListStallStat = 25,
    MFC_WrListStallAck = 26,
    SPU_WrOutMbox = 28,
    SPU_RdInMbox = 29,
    SPU_WrOutIntrMbox = 30,
};

/** MFC command opcodes as written to MFC_Cmd (CBEA encodings). */
enum MfcCmdOpcode : std::uint32_t
{
    MFC_PUT_CMD = 0x20,
    MFC_PUTF_CMD = 0x21,
    MFC_PUTB_CMD = 0x22,
    MFC_GET_CMD = 0x40,
    MFC_GETF_CMD = 0x41,
    MFC_GETB_CMD = 0x42,
    MFC_PUTL_CMD = 0x24,
    MFC_GETL_CMD = 0x44,
};

/**
 * SPU event-status bits (the select-style wait sources). The bit
 * assignments follow the CBEA layout; semantics here are
 * level-triggered against current state, a documented simplification
 * of the hardware's edge latching (SPU_WrEventAck is accepted and
 * ignored accordingly).
 */
enum SpuEventBits : std::uint32_t
{
    /** A tag group enabled in MFC_WrTagMask has no outstanding
     *  commands. */
    MFC_TAG_STATUS_UPDATE_EVENT = 0x0000'0001,
    /** The decrementer's most significant bit is set (it counted
     *  through zero). */
    MFC_DECREMENTER_EVENT = 0x0000'0020,
    /** The inbound mailbox has a message. */
    MFC_IN_MBOX_AVAILABLE_EVENT = 0x0000'0010,
    /** Signal-notification register 1 / 2 is non-zero. */
    MFC_SIGNAL_NOTIFY_1_EVENT = 0x0000'0100,
    MFC_SIGNAL_NOTIFY_2_EVENT = 0x0000'0200,
};

/** MFC_WrTagUpdate conditions. */
enum TagUpdateCondition : std::uint32_t
{
    MFC_TAG_UPDATE_IMMEDIATE = 0,
    MFC_TAG_UPDATE_ANY = 1,
    MFC_TAG_UPDATE_ALL = 2,
};

/**
 * Channel-interface adapter for one SPE.
 *
 * Blocking channels (mailbox reads on empty, MFC_Cmd on a full queue,
 * MFC_RdTagStat after a non-immediate update) suspend the calling
 * process exactly as the hardware stalls the SPU. Every access
 * charges the configured channel cost.
 */
class SpuChannels
{
  public:
    explicit SpuChannels(Spu& spu) : spu_(spu) {}

    SpuChannels(const SpuChannels&) = delete;
    SpuChannels& operator=(const SpuChannels&) = delete;

    /** wrch: write @p value to channel @p ch. May suspend. */
    CoTask<void> write(std::uint32_t ch, std::uint32_t value);

    /** rdch: read channel @p ch. May suspend. */
    CoTask<std::uint32_t> read(std::uint32_t ch);

    /**
     * rchcnt: the channel's count — how many rdch/wrch on it would
     * currently complete without stalling.
     */
    std::uint32_t count(std::uint32_t ch) const;

    /** The MFC parameter latch state (visible for tests). */
    struct CmdParams
    {
        std::uint32_t lsa = 0;
        std::uint32_t eah = 0;
        std::uint32_t eal = 0;
        std::uint32_t size = 0;
        std::uint32_t tag = 0;
    };
    const CmdParams& params() const { return params_; }

  private:
    CoTask<void> issueCommand(std::uint32_t opcode);
    /** Current (level) event status against @p mask. */
    std::uint32_t eventStatus(std::uint32_t mask) const;
    /** Blocking SPU_RdEventStat. */
    CoTask<std::uint32_t> readEventStat();

    Spu& spu_;
    CmdParams params_;
    TagMask tag_mask_ = 0;
    /** Result latched for MFC_RdTagStat by MFC_WrTagUpdate. */
    bool tag_stat_pending_ = false;
    std::uint32_t tag_update_cond_ = MFC_TAG_UPDATE_IMMEDIATE;
    std::uint32_t event_mask_ = 0;
};

} // namespace cell::sim

#endif // CELL_SIM_CHANNELS_H
