/**
 * @file
 * Sparse main-storage model (the Cell's XDR DRAM).
 *
 * Backed by 64 KiB pages allocated on first touch, so workloads can use
 * realistic effective addresses without the host paying for the whole
 * address space.
 */

#ifndef CELL_SIM_MAIN_MEMORY_H
#define CELL_SIM_MAIN_MEMORY_H

#include <cstdint>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "sim/types.h"

namespace cell::sim {

/**
 * Functional model of main storage. Purely a byte container; timing is
 * the EIB/MIC model's job.
 */
class MainMemory
{
  public:
    static constexpr std::size_t kPageBits = 16;
    static constexpr std::size_t kPageSize = std::size_t{1} << kPageBits;

    MainMemory() = default;

    MainMemory(const MainMemory&) = delete;
    MainMemory& operator=(const MainMemory&) = delete;

    /** Copy @p len bytes from memory at @p ea into @p dst. Unbacked
     *  pages read as zero without being allocated. */
    void read(EffAddr ea, void* dst, std::size_t len) const;

    /** Copy @p len bytes from @p src into memory at @p ea. */
    void write(EffAddr ea, const void* src, std::size_t len);

    /** Typed peek. */
    template <typename T>
    T peek(EffAddr ea) const
    {
        T v;
        read(ea, &v, sizeof(T));
        return v;
    }

    /** Typed poke. */
    template <typename T>
    void poke(EffAddr ea, const T& v)
    {
        write(ea, &v, sizeof(T));
    }

    /** Number of 64 KiB pages currently backed. */
    std::size_t pagesAllocated() const { return pages_.size(); }

    /** Total bytes ever written (diagnostics). */
    std::uint64_t bytesWritten() const { return bytes_written_; }

  private:
    using Page = std::vector<std::uint8_t>;

    Page& pageFor(EffAddr ea);
    const Page* pageForIfPresent(EffAddr ea) const;

    std::unordered_map<std::uint64_t, Page> pages_;
    std::uint64_t bytes_written_ = 0;
};

} // namespace cell::sim

#endif // CELL_SIM_MAIN_MEMORY_H
