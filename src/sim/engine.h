/**
 * @file
 * Deterministic discrete-event simulation engine.
 *
 * Events are ordered by (tick, sequence): events scheduled for the same
 * tick fire in the order they were scheduled, which makes the whole
 * simulation reproducible run-to-run. Internally the engine keeps two
 * structures (see docs/MODEL.md, "Engine internals"):
 *
 *  - an index-based binary min-heap of *future* events (when > now),
 *    with storage reused across run() calls;
 *  - a FIFO batch of *current-tick* events. Scheduling at the current
 *    tick appends here directly — no heap traffic — and when simulated
 *    time advances to a new tick every event at that tick is drained
 *    into the batch once and dispatched in sequence order.
 *
 * Event payloads are a tagged fast path: a bare coroutine_handle for
 * process resumption (the overwhelmingly common case) or an
 * EventCallback (small-buffer-optimized callable) for plain callbacks.
 * Neither allocates on the steady-state path.
 */

#ifndef CELL_SIM_ENGINE_H
#define CELL_SIM_ENGINE_H

#include <coroutine>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/coro.h"
#include "sim/event.h"
#include "sim/types.h"

namespace cell::sim {

/**
 * Discrete-event scheduler and process manager.
 *
 * Single-threaded: all simulated concurrency is cooperative, expressed
 * as coroutines (Task) resumed by the engine in deterministic order.
 */
class Engine
{
  public:
    Engine() = default;
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Current simulated time in core cycles. */
    Tick now() const { return now_; }

    /** Schedule a plain callback at absolute tick @p when (>= now). */
    void schedule(Tick when, EventCallback fn);

    /** Schedule a plain callback @p delta cycles from now. */
    void scheduleAfter(TickDelta delta, EventCallback fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Start a process. The coroutine begins executing at the current
     * tick (before any later-scheduled event).
     *
     * @param task  the coroutine to run
     * @param name  diagnostic name recorded in the process state
     * @return a joinable reference to the process
     */
    ProcessRef spawn(Task task, std::string name = {});

    /** Awaitable: resume the awaiting coroutine @p delta cycles from now. */
    struct DelayAwaiter
    {
        Engine& engine;
        TickDelta delta;

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h)
        {
            engine.scheduleResume(h, engine.now() + delta);
        }
        void await_resume() const noexcept {}
    };

    /** Suspend the calling process for @p delta cycles (0 == yield). */
    DelayAwaiter delay(TickDelta delta) { return DelayAwaiter{*this, delta}; }

    /** Schedule resumption of a suspended coroutine at @p when. */
    void scheduleResume(std::coroutine_handle<> h, Tick when)
    {
        if (when < now_)
            throwPastEvent();
        Event ev;
        ev.when = when;
        ev.seq = next_seq_++;
        ev.resume = h;
        enqueue(std::move(ev));
    }

    /**
     * Run until the event queue drains or @p limit ticks is reached.
     *
     * @param limit  hard stop; the default is effectively "run to quiescence"
     * @return number of events dispatched
     *
     * Throws (rethrows) the first unconsumed exception raised by any
     * spawned process.
     */
    std::uint64_t run(Tick limit = ~Tick{0});

    /** True if no events remain. */
    bool idle() const { return heap_.empty() && batch_pos_ >= batch_.size(); }

    /** Number of events dispatched so far. */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Number of processes that have been spawned. */
    std::size_t processesSpawned() const { return spawn_count_; }

    /** Number of spawned processes that have run to completion. */
    std::size_t processesCompleted() const { return completed_count_; }

    /**
     * Destroy all still-suspended process frames. After this the engine
     * must not be run again; used at teardown so coroutine locals are
     * released before the machine components they reference.
     */
    void killAllProcesses();

    /** @name Internal hooks used by the coroutine machinery. */
    ///@{
    void registerFrame(void* frame) { live_frames_.insert(frame); }
    void unregisterFrame(void* frame) { live_frames_.erase(frame); }
    /** Called at each process's final suspend: accounting + error list. */
    void noteProcessFinished(const std::shared_ptr<ProcessState>& state);
    ///@}

  private:
    /**
     * One scheduled event. `resume` is the dedicated fast path (a bare
     * coroutine resumption, as produced by delay()/scheduleResume());
     * when it is null, `fn` holds the callback. Moves are cheap: three
     * words plus, for callback events only, one manager-function call.
     */
    struct Event
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        std::coroutine_handle<> resume{};
        EventCallback fn;
    };

    /** (tick, seq) strict weak ordering; a precedes b => a fires first. */
    static bool before(const Event& a, const Event& b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void enqueue(Event&& ev)
    {
        if (ev.when == now_)
            batch_.push_back(std::move(ev)); // same tick: straight to FIFO
        else
            heapPush(std::move(ev));
    }

    void heapPush(Event&& ev);
    Event heapPop();
    static void dispatch(Event& ev)
    {
        if (ev.resume)
            ev.resume.resume();
        else
            ev.fn();
    }
    [[noreturn]] static void throwPastEvent();
    void surfaceFailure();

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;

    /** Future events (when > now at loop boundaries), binary min-heap. */
    std::vector<Event> heap_;
    /** Current-tick events in sequence order; batch_pos_ is the cursor. */
    std::vector<Event> batch_;
    std::size_t batch_pos_ = 0;

    std::uint64_t spawn_count_ = 0;
    std::uint64_t completed_count_ = 0;
    /** Processes that finished with an unconsumed error (usually empty). */
    std::vector<std::shared_ptr<ProcessState>> failed_;
    std::unordered_set<void*> live_frames_;
};

} // namespace cell::sim

#endif // CELL_SIM_ENGINE_H
