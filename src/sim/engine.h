/**
 * @file
 * Deterministic discrete-event simulation engine.
 *
 * The engine keeps a priority queue of (tick, sequence) ordered events.
 * Events scheduled for the same tick fire in the order they were
 * scheduled, which makes the whole simulation reproducible run-to-run.
 */

#ifndef CELL_SIM_ENGINE_H
#define CELL_SIM_ENGINE_H

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "sim/coro.h"
#include "sim/types.h"

namespace cell::sim {

/**
 * Discrete-event scheduler and process manager.
 *
 * Single-threaded: all simulated concurrency is cooperative, expressed
 * as coroutines (Task) resumed by the engine in deterministic order.
 */
class Engine
{
  public:
    Engine() = default;
    ~Engine();

    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;

    /** Current simulated time in core cycles. */
    Tick now() const { return now_; }

    /** Schedule a plain callback at absolute tick @p when (>= now). */
    void schedule(Tick when, std::function<void()> fn);

    /** Schedule a plain callback @p delta cycles from now. */
    void scheduleAfter(TickDelta delta, std::function<void()> fn)
    {
        schedule(now_ + delta, std::move(fn));
    }

    /**
     * Start a process. The coroutine begins executing at the current
     * tick (before any later-scheduled event).
     *
     * @param task  the coroutine to run
     * @param name  diagnostic name recorded in the process state
     * @return a joinable reference to the process
     */
    ProcessRef spawn(Task task, std::string name = {});

    /** Awaitable: resume the awaiting coroutine @p delta cycles from now. */
    struct DelayAwaiter
    {
        Engine& engine;
        TickDelta delta;

        bool await_ready() const noexcept { return false; }
        void await_suspend(std::coroutine_handle<> h)
        {
            engine.scheduleResume(h, engine.now() + delta);
        }
        void await_resume() const noexcept {}
    };

    /** Suspend the calling process for @p delta cycles (0 == yield). */
    DelayAwaiter delay(TickDelta delta) { return DelayAwaiter{*this, delta}; }

    /** Schedule resumption of a suspended coroutine at @p when. */
    void scheduleResume(std::coroutine_handle<> h, Tick when);

    /**
     * Run until the event queue drains or @p limit ticks is reached.
     *
     * @param limit  hard stop; the default is effectively "run to quiescence"
     * @return number of events dispatched
     *
     * Throws (rethrows) the first unconsumed exception raised by any
     * spawned process.
     */
    std::uint64_t run(Tick limit = ~Tick{0});

    /** True if no events remain. */
    bool idle() const { return queue_.empty(); }

    /** Number of events dispatched so far. */
    std::uint64_t eventsDispatched() const { return dispatched_; }

    /** Number of processes that have been spawned. */
    std::size_t processesSpawned() const { return spawned_.size(); }

    /** Number of spawned processes that have run to completion. */
    std::size_t processesCompleted() const;

    /**
     * Destroy all still-suspended process frames. After this the engine
     * must not be run again; used at teardown so coroutine locals are
     * released before the machine components they reference.
     */
    void killAllProcesses();

    /** @name Internal hooks used by the coroutine machinery. */
    ///@{
    void registerFrame(void* frame) { live_frames_.insert(frame); }
    void unregisterFrame(void* frame) { live_frames_.erase(frame); }
    ///@}

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::function<void()> fn;

        bool operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dispatched_ = 0;
    std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
    std::vector<std::shared_ptr<ProcessState>> spawned_;
    std::unordered_set<void*> live_frames_;
};

} // namespace cell::sim

#endif // CELL_SIM_ENGINE_H
