/**
 * @file
 * SPU core model: one Synergistic Processing Element's processor side.
 *
 * The SPU itself is not an instruction-level model; SPE programs are
 * C++ coroutines (see rt::SpuEnv) that charge compute time explicitly
 * and interact with the world only through the channel interface this
 * class fronts: the MFC command/tag channels, mailboxes, signal
 * notification, and the decrementer. That is exactly the surface PDT
 * instruments, so event streams match the real tool's.
 */

#ifndef CELL_SIM_SPU_H
#define CELL_SIM_SPU_H

#include <cstdint>
#include <memory>

#include "sim/config.h"
#include "sim/decrementer.h"
#include "sim/local_store.h"
#include "sim/mailbox.h"
#include "sim/mfc.h"
#include "sim/signals.h"
#include "sim/sync.h"

namespace cell::sim {

/** Why an SPU was stalled; mirrors the stall classes TA reports. */
enum class SpuStallKind : std::uint8_t
{
    DmaWait,     ///< waiting on MFC tag status
    MailboxWait, ///< blocked mailbox channel access
    SignalWait,  ///< blocked signal-notification read
    QueueWait,   ///< MFC command queue full at enqueue
};

/** Ground-truth per-SPU accounting (independent of PDT's own view). */
struct SpuStats
{
    std::uint64_t compute_cycles = 0;
    std::uint64_t channel_cycles = 0;
    std::uint64_t dma_wait_cycles = 0;
    std::uint64_t mbox_wait_cycles = 0;
    std::uint64_t signal_wait_cycles = 0;
    std::uint64_t queue_wait_cycles = 0;
    std::uint64_t tracer_cycles = 0; ///< overhead charged by PDT
    Tick run_start = 0;
    Tick run_end = 0;

    std::uint64_t totalStall() const
    {
        return dma_wait_cycles + mbox_wait_cycles + signal_wait_cycles +
               queue_wait_cycles;
    }

    void addStall(SpuStallKind kind, std::uint64_t cycles)
    {
        switch (kind) {
          case SpuStallKind::DmaWait: dma_wait_cycles += cycles; break;
          case SpuStallKind::MailboxWait: mbox_wait_cycles += cycles; break;
          case SpuStallKind::SignalWait: signal_wait_cycles += cycles; break;
          case SpuStallKind::QueueWait: queue_wait_cycles += cycles; break;
        }
    }
};

/**
 * One SPE: local store, MFC, mailboxes, signals, decrementer, and the
 * SPU-side accounting.
 */
class Spu
{
  public:
    Spu(Engine& engine, Eib& eib, StorageMap& storage,
        const MachineConfig& cfg, std::uint32_t index,
        FaultInjector* faults = nullptr)
        : index_(index),
          engine_(engine),
          cfg_(cfg),
          timebase_(cfg.timebase_divider),
          ls_(),
          mfc_(engine, eib, storage, ls_, cfg, index, faults),
          inbound_(engine, kInboundMailboxDepth),
          outbound_(engine, kOutboundMailboxDepth),
          outbound_irq_(engine, kOutboundMailboxDepth),
          signal1_(engine, SignalMode::Or),
          signal2_(engine, SignalMode::Or),
          decrementer_(timebase_),
          activity_cv_(engine)
    {
        // Wire every event source to the activity wakeup so the SPU
        // event facility (SPU_RdEventStat) can sleep on "anything
        // changed" instead of polling.
        auto poke = [this] { activity_cv_.notifyAll(); };
        inbound_.setOnChange(poke);
        signal1_.setOnChange(poke);
        signal2_.setOnChange(poke);
        mfc_.setOnComplete(poke);
    }

    Spu(const Spu&) = delete;
    Spu& operator=(const Spu&) = delete;

    std::uint32_t index() const { return index_; }
    CoreId coreId() const { return CoreId::spe(index_); }

    LocalStore& localStore() { return ls_; }
    const LocalStore& localStore() const { return ls_; }
    Mfc& mfc() { return mfc_; }
    Mailbox& inbound() { return inbound_; }
    Mailbox& outbound() { return outbound_; }
    Mailbox& outboundIrq() { return outbound_irq_; }
    SignalRegister& signal1() { return signal1_; }
    SignalRegister& signal2() { return signal2_; }
    Decrementer& decrementer() { return decrementer_; }
    const Timebase& timebase() const { return timebase_; }

    SpuStats& stats() { return stats_; }
    const SpuStats& stats() const { return stats_; }

    /** Charge @p cycles of SPU computation (delays the calling process). */
    CoTask<void> compute(TickDelta cycles)
    {
        stats_.compute_cycles += cycles;
        co_await engine_.delay(cycles);
    }

    /** Charge the fixed channel-access cost. */
    CoTask<void> chargeChannel()
    {
        stats_.channel_cycles += cfg_.cost.spu_channel;
        co_await engine_.delay(cfg_.cost.spu_channel);
    }

    Engine& engine() { return engine_; }
    const MachineConfig& config() const { return cfg_; }

    /** Wakeup source covering all SPU event-facility conditions. */
    CondVar& activityCv() { return activity_cv_; }

  private:
    std::uint32_t index_;
    Engine& engine_;
    const MachineConfig& cfg_;
    Timebase timebase_;
    LocalStore ls_;
    Mfc mfc_;
    Mailbox inbound_;
    Mailbox outbound_;
    Mailbox outbound_irq_;
    SignalRegister signal1_;
    SignalRegister signal2_;
    Decrementer decrementer_;
    CondVar activity_cv_;
    SpuStats stats_;
};

} // namespace cell::sim

#endif // CELL_SIM_SPU_H
