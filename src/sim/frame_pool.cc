/**
 * @file
 * Coroutine-frame freelist implementation.
 */

#include "sim/frame_pool.h"

#include <new>
#include <vector>

namespace cell::sim {

namespace {

constexpr std::size_t kBuckets = FramePool::kMaxPooled / FramePool::kGranularity;
/** Per-bucket cache cap: bounds idle memory at ~16 MiB worst case. */
constexpr std::size_t kMaxPerBucket = 1024;

struct Cache
{
    std::vector<void*> free_list[kBuckets];
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    ~Cache()
    {
        for (auto& bucket : free_list)
            for (void* p : bucket)
                ::operator delete(p);
    }
};

Cache&
cache()
{
    thread_local Cache tls;
    return tls;
}

/** Bucket index for a request, or kBuckets if not pooled. */
inline std::size_t
bucketFor(std::size_t bytes)
{
    if (bytes == 0 || bytes > FramePool::kMaxPooled)
        return kBuckets;
    return (bytes - 1) / FramePool::kGranularity;
}

} // namespace

void*
FramePool::allocate(std::size_t bytes)
{
    const std::size_t idx = bucketFor(bytes);
    if (idx >= kBuckets)
        return ::operator new(bytes);
    Cache& c = cache();
    auto& bucket = c.free_list[idx];
    if (!bucket.empty()) {
        void* p = bucket.back();
        bucket.pop_back();
        ++c.hits;
        return p;
    }
    ++c.misses;
    return ::operator new((idx + 1) * kGranularity);
}

void
FramePool::deallocate(void* p, std::size_t bytes) noexcept
{
    if (!p)
        return;
    const std::size_t idx = bucketFor(bytes);
    if (idx >= kBuckets) {
        ::operator delete(p);
        return;
    }
    auto& bucket = cache().free_list[idx];
    if (bucket.size() >= kMaxPerBucket) {
        ::operator delete(p);
        return;
    }
    bucket.push_back(p);
}

std::uint64_t
FramePool::hits() noexcept
{
    return cache().hits;
}

std::uint64_t
FramePool::misses() noexcept
{
    return cache().misses;
}

void
FramePool::trim() noexcept
{
    for (auto& bucket : cache().free_list) {
        for (void* p : bucket)
            ::operator delete(p);
        bucket.clear();
        bucket.shrink_to_fit();
    }
}

} // namespace cell::sim
