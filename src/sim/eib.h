/**
 * @file
 * Element Interconnect Bus timing model.
 *
 * The EIB is modeled as four data rings plus a shared memory-interface
 * controller (MIC), each a FIFO resource with a "next free" time. A
 * transfer reserves the least-loaded ring (and the MIC if it touches
 * main storage); its completion time follows from the ring's byte rate
 * and the fixed command/memory latencies. This reservation model
 * captures bandwidth sharing and queueing contention — the properties
 * that shape DMA-wait intervals in PDT traces — without simulating
 * individual bus phases.
 */

#ifndef CELL_SIM_EIB_H
#define CELL_SIM_EIB_H

#include <cstdint>
#include <vector>

#include "sim/config.h"
#include "sim/types.h"

namespace cell::sim {

class FaultInjector;

/** What a transfer touches, which decides the resources it reserves. */
enum class TransferKind : std::uint8_t
{
    MemoryToLs,  ///< GET from main storage
    LsToMemory,  ///< PUT to main storage
    LsToLs,      ///< GET/PUT against another SPE's LS aperture
};

/** Resolved schedule for one transfer. */
struct EibGrant
{
    Tick start;       ///< when data starts moving
    Tick complete;    ///< when the last byte lands
    std::uint32_t ring; ///< ring index granted
};

/** Cumulative EIB statistics. */
struct EibStats
{
    std::uint64_t transfers = 0;
    std::uint64_t bytes = 0;
    std::uint64_t memory_transfers = 0;
    std::uint64_t ls_to_ls_transfers = 0;
    /** Total cycles transfers spent queued behind busy resources. */
    std::uint64_t queue_wait_cycles = 0;
};

/**
 * EIB arbiter. One per machine; MFCs call reserve() when they issue a
 * DMA command and then sleep until the returned completion tick.
 */
class Eib
{
  public:
    /** @p faults (optional) lets the injector model contention spikes
     *  as extra ring/MIC occupancy that delays later transfers too. */
    explicit Eib(const EibConfig& cfg, FaultInjector* faults = nullptr);

    /**
     * Reserve bus (and MIC) time for a transfer of @p bytes issued at
     * @p now. Deterministic: equal-load ties pick the lowest ring.
     */
    EibGrant reserve(TransferKind kind, std::size_t bytes, Tick now);

    const EibStats& stats() const { return stats_; }

    /** Cycles needed to move @p bytes on one ring (no queueing). */
    TickDelta ringOccupancy(std::size_t bytes) const;

    /** Cycles the MIC is busy moving @p bytes (no queueing). */
    TickDelta micOccupancy(std::size_t bytes) const;

  private:
    EibConfig cfg_;
    FaultInjector* faults_;
    std::vector<Tick> ring_free_;
    Tick mic_free_ = 0;
    EibStats stats_;
};

} // namespace cell::sim

#endif // CELL_SIM_EIB_H
