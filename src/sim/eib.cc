/**
 * @file
 * EIB reservation arithmetic.
 */

#include "sim/eib.h"

#include <algorithm>

#include "sim/fault.h"

namespace cell::sim {

Eib::Eib(const EibConfig& cfg, FaultInjector* faults)
    : cfg_(cfg), faults_(faults), ring_free_(cfg.num_rings, 0)
{}

TickDelta
Eib::ringOccupancy(std::size_t bytes) const
{
    const std::uint64_t bus_cycles =
        (bytes + cfg_.bytes_per_bus_cycle - 1) / cfg_.bytes_per_bus_cycle;
    return bus_cycles * cfg_.bus_cycle_divider;
}

TickDelta
Eib::micOccupancy(std::size_t bytes) const
{
    return (bytes + cfg_.mic_bytes_per_cycle - 1) / cfg_.mic_bytes_per_cycle;
}

EibGrant
Eib::reserve(TransferKind kind, std::size_t bytes, Tick now)
{
    const bool touches_memory = kind != TransferKind::LsToLs;

    // Earliest the command phase completes.
    const Tick ready = now + cfg_.command_latency;

    // Least-loaded ring; ties resolve to the lowest index so the
    // simulation is deterministic.
    std::uint32_t ring = 0;
    for (std::uint32_t i = 1; i < ring_free_.size(); ++i) {
        if (ring_free_[i] < ring_free_[ring])
            ring = i;
    }

    Tick start = std::max(ready, ring_free_[ring]);
    TickDelta occupancy = ringOccupancy(bytes);
    if (touches_memory) {
        start = std::max(start, mic_free_);
        occupancy = std::max(occupancy, micOccupancy(bytes));
    }
    // An injected contention spike holds the granted resources longer,
    // so it delays this transfer *and* queues up everything behind it —
    // the same shape real EIB saturation has. The EIB is one shared
    // resource, so all spikes draw from a single actor stream.
    if (faults_ && faults_->enabled())
        occupancy += faults_->delayAt(FaultSite::EibTransfer, 0);
    // Resources are held for the data phase only; DRAM access latency
    // is pipelined (it delays this transfer's completion but not the
    // next transfer's start), so small transfers still sustain the
    // MIC's byte rate.
    const Tick complete =
        start + occupancy + (touches_memory ? cfg_.memory_latency : 0);

    ring_free_[ring] = start + occupancy;
    if (touches_memory)
        mic_free_ = start + occupancy;

    stats_.transfers += 1;
    stats_.bytes += bytes;
    stats_.memory_transfers += touches_memory ? 1 : 0;
    stats_.ls_to_ls_transfers += touches_memory ? 0 : 1;
    stats_.queue_wait_cycles += start - ready;

    return EibGrant{start, complete, ring};
}

} // namespace cell::sim
