/**
 * @file
 * Machine configuration for the simulated Cell Broadband Engine.
 *
 * Defaults approximate the 3.2 GHz Cell BE the paper's tools ran on
 * (QS20-class blade): 8 SPEs, a 4-ring EIB at half core clock moving
 * 16 bytes per bus cycle per ring, 25.6 GB/s XDR memory, and a
 * timebase/decrementer clock derived from the core clock.
 *
 * All timing is expressed in integral core-clock cycles so simulation
 * results are exactly reproducible.
 */

#ifndef CELL_SIM_CONFIG_H
#define CELL_SIM_CONFIG_H

#include <cstddef>
#include <cstdint>

#include "sim/fault.h"
#include "sim/types.h"

namespace cell::sim {

/** Element Interconnect Bus parameters. */
struct EibConfig
{
    /** Number of data rings (real EIB: 4). */
    std::uint32_t num_rings = 4;
    /** Bytes moved per bus cycle on one ring (real EIB: 16). */
    std::uint32_t bytes_per_bus_cycle = 16;
    /** Core cycles per EIB bus cycle (EIB runs at half core clock). */
    std::uint32_t bus_cycle_divider = 2;
    /** Fixed command-phase latency per transfer, in core cycles. */
    TickDelta command_latency = 50;
    /** Bytes per core cycle the memory interface controller sustains
     *  (25.6 GB/s at 3.2 GHz == 8 B/cycle). */
    std::uint32_t mic_bytes_per_cycle = 8;
    /** Additional fixed latency for transfers touching main storage. */
    TickDelta memory_latency = 100;
};

/** Memory Flow Controller parameters (one MFC per SPE). */
struct MfcConfig
{
    /** Core cycles to accept one DMA command into the queue. */
    TickDelta issue_latency = 10;
    /** Core cycles to fetch one DMA-list element from local store. */
    TickDelta list_element_latency = 4;
    /** Dispatch policy: true (hardware-like) lets independent tag
     *  groups bypass fence/barrier-blocked commands; false is a
     *  strict-FIFO ablation where a blocked head stalls the queue —
     *  including the tracer's flush DMAs. */
    bool oldest_eligible_first = true;
};

/** SPU channel-interface and PPE MMIO costs. */
struct AccessCostConfig
{
    /** SPU channel read/write cost (rdch/wrch), core cycles. */
    TickDelta spu_channel = 6;
    /** PPE MMIO access to SPE problem state, core cycles. */
    TickDelta ppe_mmio = 120;
    /** PPE access to its own timebase register, core cycles. */
    TickDelta ppe_timebase_read = 10;
};

/** Complete machine configuration. */
struct MachineConfig
{
    /** Number of SPEs (the paper's machines expose 8). */
    std::uint32_t num_spes = 8;
    /** Core clock in Hz; display/conversion only, never used for timing. */
    std::uint64_t core_hz = 3'200'000'000ULL;
    /** Core cycles per timebase tick (3.2 GHz / 120 ~= 26.67 MHz). */
    std::uint32_t timebase_divider = 120;
    /** Base effective address where SPE local stores are mapped.
     *  SPE i's LS occupies [ls_map_base + i*ls_map_stride, +256 KiB). */
    EffAddr ls_map_base = 0x4000'0000'0000ULL;
    /** Stride between consecutive SPE LS apertures. */
    EffAddr ls_map_stride = 0x10'0000ULL; // 1 MiB

    EibConfig eib;
    MfcConfig mfc;
    AccessCostConfig cost;
    /** Deterministic fault-injection plan (inert by default, so the
     *  fault-free simulation is byte-identical with or without it). */
    FaultPlan faults;

    /** Effective address of SPE @p index 's local-store aperture. */
    EffAddr lsAperture(std::uint32_t index) const
    {
        return ls_map_base + static_cast<EffAddr>(index) * ls_map_stride;
    }

    /** True if @p ea falls inside some SPE's LS aperture (given num_spes). */
    bool eaIsLocalStore(EffAddr ea) const
    {
        return ea >= ls_map_base &&
               ea < ls_map_base + static_cast<EffAddr>(num_spes) * ls_map_stride;
    }
};

} // namespace cell::sim

#endif // CELL_SIM_CONFIG_H
