/**
 * @file
 * MFC implementation: command queues, dispatchers, tag bookkeeping.
 *
 * Dispatch policy: each queue has one dispatcher process that selects
 * the *oldest eligible* command. A command is eligible unless (a) an
 * earlier pending barrier command exists in its tag group, or (b) it
 * is itself fenced/barriered and earlier same-tag commands are still
 * pending. This allows independent tag groups to bypass blocked ones,
 * as the hardware does, which matters for PDT: trace-flush DMAs use a
 * dedicated tag and must not queue behind fenced application commands.
 */

#include "sim/mfc.h"

#include <algorithm>
#include <stdexcept>

#include "sim/fault.h"

namespace cell::sim {

const char*
mfcOpcodeName(MfcOpcode op)
{
    switch (op) {
      case MfcOpcode::Get: return "GET";
      case MfcOpcode::Put: return "PUT";
      case MfcOpcode::GetList: return "GETL";
      case MfcOpcode::PutList: return "PUTL";
    }
    return "?";
}

Mfc::Mfc(Engine& engine, Eib& eib, StorageMap& storage, LocalStore& ls,
         const MachineConfig& cfg, std::uint32_t spe_index,
         FaultInjector* faults)
    : engine_(engine), eib_(eib), storage_(storage), ls_(ls), cfg_(cfg),
      spe_index_(spe_index), faults_(faults), cv_(engine)
{}

void
Mfc::start()
{
    engine_.spawn(dispatcher(false), "mfc" + std::to_string(spe_index_) + ".spu");
    engine_.spawn(dispatcher(true), "mfc" + std::to_string(spe_index_) + ".proxy");
}

void
Mfc::validate(const MfcCommand& cmd)
{
    if (cmd.tag >= kNumTagGroups)
        throw std::invalid_argument("MFC: tag group out of range");
    switch (cmd.op) {
      case MfcOpcode::Get:
      case MfcOpcode::Put:
        LocalStore::checkDmaShape(cmd.ls, cmd.ea, cmd.size);
        break;
      case MfcOpcode::GetList:
      case MfcOpcode::PutList:
        if (cmd.size == 0 || cmd.size % sizeof(MfcListElement) != 0)
            throw std::invalid_argument("MFC: list size not a multiple of 8");
        if (cmd.size / sizeof(MfcListElement) > 2048)
            throw std::invalid_argument("MFC: list longer than 2048 elements");
        if (cmd.list_ls % 8 != 0)
            throw std::invalid_argument("MFC: list address not 8-byte aligned");
        if (cmd.ls % 16 != 0)
            throw std::invalid_argument("MFC: list LS target not 16-byte aligned");
        break;
    }
}

CoTask<void>
Mfc::enqueueSpu(MfcCommand cmd)
{
    validate(cmd);
    while (spu_queue_.size() + spu_inflight_ >= kMfcSpuQueueDepth)
        co_await cv_.wait();
    cmd.cmd_id = next_cmd_id_++;
    outstanding_[cmd.tag] += 1;
    pending_ids_[cmd.tag].push_back(cmd.cmd_id);
    if (cmd.barrier)
        barrier_ids_[cmd.tag].push_back(cmd.cmd_id);
    spu_queue_.push_back(cmd);
    cv_.notifyAll();
}

CoTask<void>
Mfc::enqueueProxy(MfcCommand cmd)
{
    validate(cmd);
    while (proxy_queue_.size() + proxy_inflight_ >= kMfcProxyQueueDepth)
        co_await cv_.wait();
    cmd.cmd_id = next_cmd_id_++;
    outstanding_[cmd.tag] += 1;
    pending_ids_[cmd.tag].push_back(cmd.cmd_id);
    if (cmd.barrier)
        barrier_ids_[cmd.tag].push_back(cmd.cmd_id);
    proxy_queue_.push_back(cmd);
    cv_.notifyAll();
}

bool
Mfc::eligible(const MfcCommand& cmd) const
{
    // Blocked behind an earlier pending barrier in the same tag group?
    for (std::uint64_t id : barrier_ids_[cmd.tag]) {
        if (id < cmd.cmd_id)
            return false;
    }
    // Fenced/barriered commands wait for all earlier same-tag commands.
    if (cmd.fence || cmd.barrier) {
        for (std::uint64_t id : pending_ids_[cmd.tag]) {
            if (id < cmd.cmd_id)
                return false;
        }
    }
    return true;
}

TransferKind
Mfc::kindFor(MfcOpcode op, EffAddr ea) const
{
    if (storage_.eaIsLocalStore(ea))
        return TransferKind::LsToLs;
    return (op == MfcOpcode::Get || op == MfcOpcode::GetList)
        ? TransferKind::MemoryToLs
        : TransferKind::LsToMemory;
}

void
Mfc::moveBytes(MfcOpcode op, LsAddr ls, EffAddr ea, std::uint32_t size)
{
    // A 16 KiB scratch covers the largest legal single transfer.
    std::uint8_t scratch[kMaxDmaSize];
    if (op == MfcOpcode::Get || op == MfcOpcode::GetList) {
        storage_.readEa(ea, scratch, size);
        ls_.write(ls, scratch, size);
    } else {
        ls_.read(ls, scratch, size);
        storage_.writeEa(ea, scratch, size);
    }
}

void
Mfc::finish(const MfcCommand& cmd, bool proxy)
{
    auto& ids = pending_ids_[cmd.tag];
    ids.erase(std::remove(ids.begin(), ids.end(), cmd.cmd_id), ids.end());
    if (cmd.barrier) {
        auto& bids = barrier_ids_[cmd.tag];
        bids.erase(std::remove(bids.begin(), bids.end(), cmd.cmd_id), bids.end());
    }
    outstanding_[cmd.tag] -= 1;
    if (proxy)
        proxy_inflight_ -= 1;
    else
        spu_inflight_ -= 1;
    cv_.notifyAll();
    if (on_complete_)
        on_complete_();
}

void
Mfc::issueSimple(const MfcCommand& cmd, bool proxy)
{
    const EibGrant grant =
        eib_.reserve(kindFor(cmd.op, cmd.ea), cmd.size, engine_.now());
    if (cmd.op == MfcOpcode::Get)
        stats_.bytes_get += cmd.size;
    else
        stats_.bytes_put += cmd.size;
    // Injected faults push this command's completion out: a delay fault
    // models arbitration hiccups, a fail fault models a transfer the
    // MFC retried after an error. Either way the data still lands.
    Tick complete_at = grant.complete;
    if (faults_ && faults_->enabled())
        complete_at += faults_->dmaPenalty(spe_index_);
    const Tick enqueued_at = engine_.now();
    auto complete = [this, cmd, proxy, enqueued_at] {
        moveBytes(cmd.op, cmd.ls, cmd.ea, cmd.size);
        const std::uint64_t lat = engine_.now() - enqueued_at;
        stats_.total_latency += lat;
        stats_.max_latency = std::max(stats_.max_latency, lat);
        finish(cmd, proxy);
    };
    // The completion closure is the largest event the simulator
    // schedules; keep it on the engine's inline (allocation-free) path.
    static_assert(EventCallback::fitsInline<decltype(complete)>);
    engine_.schedule(complete_at, std::move(complete));
}

Task
Mfc::listTask(MfcCommand cmd, bool proxy)
{
    const std::uint32_t n_elems = cmd.size / sizeof(MfcListElement);
    const EffAddr ea_high = cmd.ea & 0xFFFF'FFFF'0000'0000ULL;
    LsAddr ls = cmd.ls;
    const Tick started_at = engine_.now();

    stats_.list_commands += 1;

    for (std::uint32_t i = 0; i < n_elems; ++i) {
        co_await engine_.delay(cfg_.mfc.list_element_latency);
        const auto elem = ls_.load<MfcListElement>(
            cmd.list_ls + i * sizeof(MfcListElement));
        const std::uint32_t esize = elem.size();
        if (esize > 0) {
            const EffAddr ea = ea_high | elem.ea_low;
            LocalStore::checkDmaShape(ls, ea, esize);
            const MfcOpcode eop = cmd.op == MfcOpcode::GetList
                ? MfcOpcode::Get : MfcOpcode::Put;
            const EibGrant grant =
                eib_.reserve(kindFor(cmd.op, ea), esize, engine_.now());
            TickDelta penalty = 0;
            if (faults_ && faults_->enabled())
                penalty = faults_->dmaPenalty(spe_index_);
            co_await engine_.delay(grant.complete - engine_.now() + penalty);
            moveBytes(eop, ls, ea, esize);
            if (eop == MfcOpcode::Get)
                stats_.bytes_get += esize;
            else
                stats_.bytes_put += esize;
            // LS address advances to the next 16-byte boundary.
            ls += (esize + 15u) & ~15u;
        }
        stats_.list_elements += 1;

        if (elem.stallAndNotify()) {
            stats_.stall_notify_events += 1;
            stalled_tags_ |= (1u << cmd.tag);
            cv_.notifyAll();
            while (stalled_tags_ & (1u << cmd.tag))
                co_await cv_.wait();
        }
    }

    const std::uint64_t lat = engine_.now() - started_at;
    stats_.total_latency += lat;
    stats_.max_latency = std::max(stats_.max_latency, lat);
    finish(cmd, proxy);
}

void
Mfc::ackListStall(TagId tag)
{
    stalled_tags_ &= ~(1u << tag);
    cv_.notifyAll();
}

Task
Mfc::dispatcher(bool proxy)
{
    auto& queue = proxy ? proxy_queue_ : spu_queue_;
    auto& inflight = proxy ? proxy_inflight_ : spu_inflight_;

    for (;;) {
        // Find the oldest eligible command.
        auto it = queue.end();
        Tick blocked_since = engine_.now();
        for (;;) {
            if (cfg_.mfc.oldest_eligible_first) {
                it = std::find_if(
                    queue.begin(), queue.end(),
                    [this](const MfcCommand& c) { return eligible(c); });
            } else {
                // Strict FIFO ablation: only the head may dispatch.
                it = (!queue.empty() && eligible(queue.front()))
                    ? queue.begin()
                    : queue.end();
            }
            if (it != queue.end())
                break;
            co_await cv_.wait();
        }
        if (!queue.empty() && engine_.now() > blocked_since)
            stats_.fence_stall_cycles += engine_.now() - blocked_since;

        MfcCommand cmd = *it;
        queue.erase(it);
        inflight += 1;
        stats_.commands += 1;
        cv_.notifyAll(); // a queue slot's state changed

        co_await engine_.delay(cfg_.mfc.issue_latency);

        if (cmd.op == MfcOpcode::Get || cmd.op == MfcOpcode::Put)
            issueSimple(cmd, proxy);
        else
            engine_.spawn(listTask(cmd, proxy),
                          "mfc" + std::to_string(spe_index_) + ".list");
    }
}

TagMask
Mfc::tagStatusImmediate(TagMask mask) const
{
    TagMask done = 0;
    for (std::uint32_t t = 0; t < kNumTagGroups; ++t) {
        if ((mask & (1u << t)) && outstanding_[t] == 0)
            done |= (1u << t);
    }
    return done;
}

CoTask<TagMask>
Mfc::waitTagStatusAll(TagMask mask)
{
    while ((tagStatusImmediate(mask) & mask) != mask)
        co_await cv_.wait();
    co_return mask;
}

CoTask<TagMask>
Mfc::waitTagStatusAny(TagMask mask)
{
    TagMask done = tagStatusImmediate(mask) & mask;
    while (done == 0) {
        co_await cv_.wait();
        done = tagStatusImmediate(mask) & mask;
    }
    co_return done;
}

} // namespace cell::sim
