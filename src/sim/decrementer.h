/**
 * @file
 * Timebase and decrementer models.
 *
 * The PPE exposes a 64-bit timebase register counting up at the
 * timebase frequency. Each SPU has a 32-bit decrementer counting *down*
 * at the same frequency, restartable via a channel write. PDT stamps
 * SPE events with the decrementer (cheap channel read) and relies on
 * synchronization records to map decrementer values back onto the
 * global timebase — including across 32-bit wrap-arounds. That mapping
 * is one of the trace analyzer's correctness obligations, so the model
 * keeps the inconvenient hardware behaviour (down-counting, wrapping).
 */

#ifndef CELL_SIM_DECREMENTER_H
#define CELL_SIM_DECREMENTER_H

#include <cstdint>

#include "sim/types.h"

namespace cell::sim {

/** Converts engine ticks to timebase ticks. */
class Timebase
{
  public:
    explicit Timebase(std::uint32_t divider) : divider_(divider) {}

    /** 64-bit timebase value at engine tick @p now. */
    std::uint64_t read(Tick now) const { return now / divider_; }

    std::uint32_t divider() const { return divider_; }

  private:
    std::uint32_t divider_;
};

/**
 * One SPU's 32-bit down-counting decrementer.
 *
 * The SPU writes a start value and the counter decrements once per
 * timebase tick, wrapping modulo 2^32.
 */
class Decrementer
{
  public:
    explicit Decrementer(const Timebase& tb) : tb_(tb) {}

    /** SPU channel write: (re)load the decrementer with @p value. */
    void write(Tick now, std::uint32_t value)
    {
        base_value_ = value;
        base_tb_ = tb_.read(now);
    }

    /** SPU channel read: current decrementer value (wraps). */
    std::uint32_t read(Tick now) const
    {
        const std::uint64_t elapsed = tb_.read(now) - base_tb_;
        return static_cast<std::uint32_t>(base_value_ - elapsed);
    }

  private:
    const Timebase& tb_;
    std::uint32_t base_value_ = 0xFFFF'FFFFu;
    std::uint64_t base_tb_ = 0;
};

} // namespace cell::sim

#endif // CELL_SIM_DECREMENTER_H
