/**
 * @file
 * Fundamental types shared across the Cell BE machine model.
 *
 * Simulated time is measured in CPU cycles of the SPU/PPU core clock
 * (3.2 GHz on the machines the paper used). All slower clock domains
 * (the EIB bus clock at half speed, the timebase/decrementer clock) are
 * expressed as integral divisors of the core clock so that the whole
 * simulation is exact integer arithmetic and therefore deterministic.
 */

#ifndef CELL_SIM_TYPES_H
#define CELL_SIM_TYPES_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace cell::sim {

/** Simulated time in core-clock cycles. */
using Tick = std::uint64_t;

/** A span of simulated time in core-clock cycles. */
using TickDelta = std::uint64_t;

/** Effective (main-storage) address as seen by the PPE and the MFCs. */
using EffAddr = std::uint64_t;

/** Local-store address inside one SPE (0 .. 256 KiB). */
using LsAddr = std::uint32_t;

/** Identifier of a core: 0 == PPE, 1..N == SPE (id - 1). */
struct CoreId
{
    std::uint32_t value = 0;

    static constexpr CoreId ppe() { return CoreId{0}; }
    static constexpr CoreId spe(std::uint32_t index) { return CoreId{index + 1}; }

    constexpr bool isPpe() const { return value == 0; }
    constexpr bool isSpe() const { return value != 0; }

    /** Index of the SPE (valid only when isSpe()). */
    constexpr std::uint32_t speIndex() const { return value - 1; }

    constexpr auto operator<=>(const CoreId&) const = default;
};

/** Human-readable core name ("PPE", "SPE0", ...). */
std::string coreName(CoreId id);

/** MFC tag-group id, 0..31. */
using TagId = std::uint32_t;

/** Bitmask over the 32 MFC tag groups. */
using TagMask = std::uint32_t;

constexpr std::uint32_t kNumTagGroups = 32;

/** Size of one SPE local store: 256 KiB, fixed by the architecture. */
constexpr std::size_t kLocalStoreSize = 256 * 1024;

/** Largest single DMA transfer the MFC accepts: 16 KiB. */
constexpr std::size_t kMaxDmaSize = 16 * 1024;

/** Depth of the SPU-side MFC command queue. */
constexpr std::size_t kMfcSpuQueueDepth = 16;

/** Depth of the proxy (PPE-side) MFC command queue. */
constexpr std::size_t kMfcProxyQueueDepth = 8;

/** Depth of the SPU inbound mailbox (PPE -> SPU). */
constexpr std::size_t kInboundMailboxDepth = 4;

/** Depth of the SPU outbound mailboxes (SPU -> PPE). */
constexpr std::size_t kOutboundMailboxDepth = 1;

} // namespace cell::sim

#endif // CELL_SIM_TYPES_H
