/**
 * @file
 * Batched FFT implementation.
 */

#include "wl/fft.h"

#include <cmath>
#include <stdexcept>

namespace cell::wl {

namespace {

struct FftBlock
{
    EffAddr in;
    EffAddr out;
    std::uint32_t fft_size;
    std::uint32_t first_fft;
    std::uint32_t n_ffts;
    std::uint32_t batch;
    std::uint32_t cycles_per_butterfly;
    std::uint32_t pad[7];
};
static_assert(sizeof(FftBlock) == 64, "param block is 64 bytes");

bool
isPow2(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** In-place radix-2 over interleaved re/im floats in a buffer. */
template <typename LoadStore>
void
fftInPlace(LoadStore&& ls, std::uint32_t n, std::uint32_t cplx_base)
{
    // cplx_base indexes complex elements: element i is floats
    // (2i, 2i+1).
    auto re = [&](std::uint32_t i) { return cplx_base + 2 * i; };
    auto im = [&](std::uint32_t i) { return cplx_base + 2 * i + 1; };

    // Bit reversal permutation.
    for (std::uint32_t i = 1, j = 0; i < n; ++i) {
        std::uint32_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j) {
            std::swap(ls.at(re(i)), ls.at(re(j)));
            std::swap(ls.at(im(i)), ls.at(im(j)));
        }
    }
    // Butterfly passes.
    for (std::uint32_t len = 2; len <= n; len <<= 1) {
        const float ang = -2.0f * 3.14159265358979323846f /
                          static_cast<float>(len);
        const float wr = std::cos(ang);
        const float wi = std::sin(ang);
        for (std::uint32_t i = 0; i < n; i += len) {
            float cur_r = 1.0f;
            float cur_i = 0.0f;
            for (std::uint32_t k = 0; k < len / 2; ++k) {
                const std::uint32_t a = i + k;
                const std::uint32_t b = i + k + len / 2;
                const float br = ls.at(re(b)) * cur_r - ls.at(im(b)) * cur_i;
                const float bi = ls.at(re(b)) * cur_i + ls.at(im(b)) * cur_r;
                const float ar = ls.at(re(a));
                const float ai = ls.at(im(a));
                ls.at(re(a)) = ar + br;
                ls.at(im(a)) = ai + bi;
                ls.at(re(b)) = ar - br;
                ls.at(im(b)) = ai - bi;
                const float nr = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = nr;
            }
        }
    }
}

/** Host-side float-array adapter. */
struct HostArray
{
    float* data;
    float& at(std::uint32_t i) { return data[i]; }
};

} // namespace

void
Fft::referenceFft(std::complex<float>* data, std::uint32_t n)
{
    HostArray arr{reinterpret_cast<float*>(data)};
    fftInPlace(arr, n, 0);
}

Fft::Fft(rt::CellSystem& sys, FftParams p) : WorkloadBase(sys), p_(p)
{
    if (!isPow2(p_.fft_size) || p_.fft_size < 8 || p_.fft_size > 1024)
        throw std::invalid_argument("Fft: size must be a power of 2 in 8..1024");
    if (p_.batch == 0 || p_.n_ffts % p_.batch != 0)
        throw std::invalid_argument("Fft: n_ffts must be a multiple of batch");
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("Fft: bad n_spes");
    // Two double-buffered batches must fit comfortably in LS.
    if (2ull * p_.batch * p_.fft_size * 8 > 160 * 1024)
        throw std::invalid_argument("Fft: batch too large for local store");

    Lcg rng(0xFF7);
    host_in_.resize(std::size_t{p_.n_ffts} * p_.fft_size);
    for (auto& v : host_in_)
        v = {rng.nextFloat() - 0.5f, rng.nextFloat() - 0.5f};
    in_ = uploadVector(sys_, host_in_);
    out_ = sys_.alloc(host_in_.size() * sizeof(std::complex<float>));
}

void
Fft::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "fft.ppe");
}

CoTask<void>
Fft::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    const std::uint32_t batches = p_.n_ffts / p_.batch;
    std::uint32_t done = 0;
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        const std::uint32_t own =
            batches / p_.n_spes + (s < batches % p_.n_spes ? 1 : 0);
        FftBlock pb{};
        pb.in = in_;
        pb.out = out_;
        pb.fft_size = p_.fft_size;
        pb.first_fft = done * p_.batch;
        pb.n_ffts = own * p_.batch;
        pb.batch = p_.batch;
        pb.cycles_per_butterfly = p_.cycles_per_butterfly;
        done += own;

        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));
        rt::SpuProgramImage img;
        img.name = "fft_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);
    }
    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();
    end_tick_ = sys_.engine().now();
}

CoTask<void>
Fft::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(FftBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(FftBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<FftBlock>(pb_ls);
    if (pb.n_ffts == 0)
        co_return;

    const std::uint32_t fft_bytes = pb.fft_size * 8;
    const std::uint32_t batch_bytes = pb.batch * fft_bytes;
    LsAddr buf[2] = {env.lsAlloc(batch_bytes), env.lsAlloc(batch_bytes)};

    const std::uint32_t n_batches = pb.n_ffts / pb.batch;
    auto batchEa = [&](EffAddr base, std::uint32_t bt) {
        return base + (std::uint64_t{pb.first_fft} + bt * pb.batch) *
                          fft_bytes;
    };

    co_await env.getLarge(buf[0], batchEa(pb.in, 0), batch_bytes, 0);
    for (std::uint32_t bt = 0; bt < n_batches; ++bt) {
        const std::uint32_t slot = bt % 2;
        co_await env.waitTagAll(1u << slot);
        if (bt + 1 < n_batches) {
            // Fenced: buf[slot^1] may still be draining its PUT on the
            // same tag group; the fence orders the refill after it.
            co_await env.getLargef(buf[slot ^ 1],
                                   batchEa(pb.in, bt + 1), batch_bytes,
                                   slot ^ 1);
        }

        // LS float adapter: float index -> LS byte address.
        struct LsFloats
        {
            sim::LocalStore& ls;
            LsAddr base;
            float tmp; // scratch for at() returning a reference-like
            float& at(std::uint32_t i)
            {
                // Direct reference into LS backing storage; safe
                // because LS is a plain byte array.
                return *reinterpret_cast<float*>(ls.data() + base + i * 4);
            }
        } floats{env.ls(), buf[slot], 0.0f};

        std::uint32_t log2n = 0;
        while ((1u << log2n) < pb.fft_size)
            ++log2n;
        for (std::uint32_t f = 0; f < pb.batch; ++f)
            fftInPlace(floats, pb.fft_size, f * pb.fft_size * 2);
        const std::uint64_t butterflies =
            std::uint64_t{pb.batch} * (pb.fft_size / 2) * log2n;
        co_await env.compute(butterflies * pb.cycles_per_butterfly + 150);

        co_await env.putLarge(buf[slot], batchEa(pb.out, bt), batch_bytes,
                              slot);
    }
    co_await env.waitTagAll(0x3);
}

bool
Fft::verify() const
{
    auto got = downloadVector<std::complex<float>>(
        sys_, out_, host_in_.size());
    std::vector<std::complex<float>> want = host_in_;
    for (std::uint32_t f = 0; f < p_.n_ffts; ++f)
        referenceFft(want.data() + std::size_t{f} * p_.fft_size,
                     p_.fft_size);
    for (std::size_t i = 0; i < want.size(); ++i) {
        if (!nearlyEqual(got[i].real(), want[i].real(), 1e-3f) ||
            !nearlyEqual(got[i].imag(), want[i].imag(), 1e-3f))
            return false;
    }
    return true;
}

} // namespace cell::wl
