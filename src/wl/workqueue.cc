/**
 * @file
 * Work-queue implementation.
 */

#include "wl/workqueue.h"

#include <stdexcept>

namespace cell::wl {

namespace {

/** Per-item descriptor, fetched by the worker with a 32-byte GET. */
struct ItemDesc
{
    EffAddr in;
    EffAddr out;
    std::uint32_t count;
    std::uint32_t cost;
    std::uint64_t pad;
};
static_assert(sizeof(ItemDesc) == 32, "descriptor is 32 bytes");

/** Startup parameter block. */
struct WqBlock
{
    EffAddr items;
    std::uint32_t first;
    std::uint32_t count;
    std::uint32_t dynamic;
    std::uint32_t tile_elems;
    std::uint32_t pad[2];
};
static_assert(sizeof(WqBlock) == 32, "param block is 32 bytes");

} // namespace

WorkQueue::WorkQueue(rt::CellSystem& sys, WorkQueueParams p)
    : WorkloadBase(sys), p_(p), items_per_spe_(sys.numSpes(), 0)
{
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("WorkQueue: bad n_spes");
    if (p_.tile_elems % 4 != 0 || p_.tile_elems * 4 > sim::kMaxDmaSize)
        throw std::invalid_argument("WorkQueue: bad tile size");
    if (p_.n_items == 0)
        throw std::invalid_argument("WorkQueue: no items");

    Lcg rng(0x90B);
    host_in_.resize(std::size_t{p_.n_items} * p_.tile_elems);
    for (auto& v : host_in_)
        v = rng.nextFloat();
    in_ = uploadVector(sys_, host_in_);
    out_ = sys_.alloc(host_in_.size() * 4);

    // Build the descriptor table: cost ramps with the item index, so
    // a contiguous static split is badly imbalanced.
    std::vector<ItemDesc> descs(p_.n_items);
    for (std::uint32_t i = 0; i < p_.n_items; ++i) {
        descs[i].in = in_ + std::uint64_t{i} * p_.tile_elems * 4;
        descs[i].out = out_ + std::uint64_t{i} * p_.tile_elems * 4;
        descs[i].count = p_.tile_elems;
        descs[i].cost = p_.cost_base + p_.cost_slope * i;
    }
    items_ea_ = uploadVector(sys_, descs);
}

void
WorkQueue::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "wq.ppe");
}

CoTask<void>
WorkQueue::dispatcher(std::uint32_t spe)
{
    // Models one libspe2 event-handler thread serving one SPE.
    for (;;) {
        const std::uint32_t msg = co_await sys_.context(spe).readOutIrqMbox();
        if (msg != kReady)
            throw std::logic_error("WorkQueue: unexpected worker message");
        if (next_item_ >= p_.n_items) {
            co_await sys_.context(spe).writeInMbox(kStop);
            co_return;
        }
        const std::uint32_t item = next_item_++;
        items_per_spe_[spe] += 1;
        co_await sys_.context(spe).writeInMbox(item);
    }
}

CoTask<void>
WorkQueue::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    std::uint32_t handed = 0;
    std::vector<sim::ProcessRef> dispatchers;
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        WqBlock pb{};
        pb.items = items_ea_;
        pb.dynamic = p_.dynamic ? 1 : 0;
        pb.tile_elems = p_.tile_elems;
        if (!p_.dynamic) {
            const std::uint32_t own = p_.n_items / p_.n_spes +
                                      (s < p_.n_items % p_.n_spes ? 1 : 0);
            pb.first = handed;
            pb.count = own;
            handed += own;
            items_per_spe_[s] = own;
        }
        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));

        rt::SpuProgramImage img;
        img.name = p_.dynamic ? "wq_dyn_spu" : "wq_static_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);

        if (p_.dynamic) {
            dispatchers.push_back(sys_.engine().spawn(
                [](WorkQueue* self, std::uint32_t spe) -> sim::Task {
                    co_await self->dispatcher(spe);
                }(this, s),
                "wq.dispatch" + std::to_string(s)));
        }
    }
    for (auto& d : dispatchers)
        co_await d.join();
    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();
    end_tick_ = sys_.engine().now();
}

CoTask<void>
WorkQueue::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(WqBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(WqBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<WqBlock>(pb_ls);

    const std::uint32_t tile_bytes = pb.tile_elems * 4;
    const LsAddr desc_ls = env.lsAlloc(sizeof(ItemDesc), 16);
    const LsAddr tile = env.lsAlloc(tile_bytes);

    auto process = [&](std::uint32_t item) -> CoTask<void> {
        co_await env.mfcGet(desc_ls,
                            pb.items + std::uint64_t{item} * sizeof(ItemDesc),
                            sizeof(ItemDesc), 1);
        co_await env.waitTagAll(1u << 1);
        const auto d = env.ls().load<ItemDesc>(desc_ls);
        co_await env.mfcGet(tile, d.in, d.count * 4, 1);
        co_await env.waitTagAll(1u << 1);
        for (std::uint32_t i = 0; i < d.count; ++i) {
            env.ls().store<float>(
                tile + i * 4, 2.0f * env.ls().load<float>(tile + i * 4) + 1.0f);
        }
        co_await env.compute(d.cost);
        co_await env.mfcPut(tile, d.out, d.count * 4, 1);
        co_await env.waitTagAll(1u << 1);
    };

    if (pb.dynamic) {
        co_await env.writeOutIrqMbox(kReady);
        for (;;) {
            const std::uint32_t item = co_await env.readInMbox();
            if (item == kStop)
                break;
            co_await process(item);
            co_await env.writeOutIrqMbox(kReady);
        }
    } else {
        for (std::uint32_t i = 0; i < pb.count; ++i)
            co_await process(pb.first + i);
    }
}

bool
WorkQueue::verify() const
{
    const auto got = downloadVector<float>(sys_, out_, host_in_.size());
    for (std::size_t i = 0; i < host_in_.size(); ++i) {
        if (!nearlyEqual(got[i], 2.0f * host_in_[i] + 1.0f))
            return false;
    }
    // In dynamic mode every item was handed out exactly once.
    std::uint64_t total = 0;
    for (auto n : items_per_spe_)
        total += n;
    return total == p_.n_items;
}

} // namespace cell::wl
