/**
 * @file
 * Sparse row gather via MFC DMA lists.
 *
 * A table of 128-byte rows is gathered through an index array: each
 * SPE fetches its slice of indices, then processes batches of 32
 * random rows with a single GETL (one list element per row), reduces
 * every row to its sum, and PUTs the 32 sums back. Irregular,
 * list-heavy DMA with data-dependent EIB behaviour — the access
 * pattern PDT's DMA statistics are most interesting for.
 */

#ifndef CELL_WL_GATHER_H
#define CELL_WL_GATHER_H

#include "wl/common.h"

namespace cell::wl {

struct GatherParams
{
    std::uint32_t table_rows = 4096; ///< 128-byte rows in the table
    std::uint32_t n_indices = 8192;  ///< multiple of 32
    std::uint32_t n_spes = 8;
    std::uint32_t compute_per_row = 40; ///< cycles to reduce one row
};

/** The gather workload. */
class Gather : public WorkloadBase
{
  public:
    static constexpr std::uint32_t kRowFloats = 32;
    static constexpr std::uint32_t kRowBytes = kRowFloats * 4;
    static constexpr std::uint32_t kBatch = 32;

    Gather(rt::CellSystem& sys, GatherParams p);

    void start() override;
    bool verify() const override;

    const GatherParams& params() const { return p_; }

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    GatherParams p_;
    EffAddr table_ = 0;
    EffAddr index_ = 0;
    EffAddr out_ = 0;
    std::vector<float> host_table_;
    std::vector<std::uint32_t> host_index_;
};

} // namespace cell::wl

#endif // CELL_WL_GATHER_H
