/**
 * @file
 * Shared workload helpers: deterministic data generation, host<->
 * simulated-memory transfer, float<->mailbox bit casting, and the
 * base class all workloads follow.
 *
 * A workload object owns everything its coroutines reference, so it
 * must outlive CellSystem::run(). Usage pattern:
 *
 *   rt::CellSystem sys(cfg);
 *   wl::Triad wl(sys, params);   // allocates + fills inputs
 *   wl.start();                  // spawns the PPE main program
 *   sys.run();                   // simulate to completion
 *   assert(wl.verify());
 *   sim::Tick t = wl.elapsed();  // PPE-measured wall time
 */

#ifndef CELL_WL_COMMON_H
#define CELL_WL_COMMON_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "rt/system.h"

namespace cell::wl {

using rt::CoTask;
using rt::PpeEnv;
using rt::SpuEnv;
using sim::EffAddr;
using sim::LsAddr;
using sim::TagId;
using sim::Tick;

/** Deterministic 32-bit LCG (fixed seed => reproducible inputs). */
class Lcg
{
  public:
    explicit Lcg(std::uint32_t seed) : state_(seed ? seed : 1) {}

    std::uint32_t next()
    {
        state_ = state_ * 1664525u + 1013904223u;
        return state_;
    }

    /** Uniform float in [0, 1). */
    float nextFloat()
    {
        return static_cast<float>(next() >> 8) / static_cast<float>(1 << 24);
    }

    /** Uniform integer in [0, n). */
    std::uint32_t nextBelow(std::uint32_t n) { return next() % n; }

  private:
    std::uint32_t state_;
};

/** Bit-cast float to a mailbox word and back. */
inline std::uint32_t
floatToWord(float f)
{
    std::uint32_t w;
    std::memcpy(&w, &f, 4);
    return w;
}

inline float
wordToFloat(std::uint32_t w)
{
    float f;
    std::memcpy(&f, &w, 4);
    return f;
}

/** Allocate main storage and copy a host vector into it. */
template <typename T>
EffAddr
uploadVector(rt::CellSystem& sys, const std::vector<T>& data,
             std::uint64_t align = 128)
{
    const EffAddr ea = sys.alloc(data.size() * sizeof(T), align);
    sys.machine().memory().write(ea, data.data(), data.size() * sizeof(T));
    return ea;
}

/** Copy a region of simulated main storage into a host vector. */
template <typename T>
std::vector<T>
downloadVector(rt::CellSystem& sys, EffAddr ea, std::size_t count)
{
    std::vector<T> out(count);
    sys.machine().memory().read(ea, out.data(), count * sizeof(T));
    return out;
}

/** Relative-error float comparison for verification. */
inline bool
nearlyEqual(float a, float b, float rel = 1e-4f)
{
    const float diff = a > b ? a - b : b - a;
    const float mag = (a < 0 ? -a : a) + (b < 0 ? -b : b) + 1e-6f;
    return diff <= rel * mag;
}

/**
 * Base class: keeps the system reference and the PPE-measured
 * start/end times every workload reports.
 */
class WorkloadBase
{
  public:
    explicit WorkloadBase(rt::CellSystem& sys) : sys_(sys) {}
    virtual ~WorkloadBase() = default;

    WorkloadBase(const WorkloadBase&) = delete;
    WorkloadBase& operator=(const WorkloadBase&) = delete;

    /** Spawn the PPE main program (call once, before sys.run()). */
    virtual void start() = 0;

    /** Check results against a host-computed reference. */
    virtual bool verify() const = 0;

    /** PPE-observed cycles from work start to all-SPEs-joined. */
    Tick elapsed() const { return end_tick_ - start_tick_; }
    Tick startTick() const { return start_tick_; }
    Tick endTick() const { return end_tick_; }

  protected:
    rt::CellSystem& sys_;
    Tick start_tick_ = 0;
    Tick end_tick_ = 0;
};

} // namespace cell::wl

#endif // CELL_WL_COMMON_H
