/**
 * @file
 * Shared workload helpers: deterministic data generation, host<->
 * simulated-memory transfer, float<->mailbox bit casting, and the
 * base class all workloads follow.
 *
 * A workload object owns everything its coroutines reference, so it
 * must outlive CellSystem::run(). Usage pattern:
 *
 *   rt::CellSystem sys(cfg);
 *   wl::Triad wl(sys, params);   // allocates + fills inputs
 *   wl.start();                  // spawns the PPE main program
 *   sys.run();                   // simulate to completion
 *   assert(wl.verify());
 *   sim::Tick t = wl.elapsed();  // PPE-measured wall time
 */

#ifndef CELL_WL_COMMON_H
#define CELL_WL_COMMON_H

#include <cstdint>
#include <cstring>
#include <vector>

#include "rt/system.h"

namespace cell::wl {

using rt::CoTask;
using rt::PpeEnv;
using rt::SpuEnv;
using sim::EffAddr;
using sim::LsAddr;
using sim::TagId;
using sim::Tick;

/** Deterministic 32-bit LCG (fixed seed => reproducible inputs). */
class Lcg
{
  public:
    explicit Lcg(std::uint32_t seed) : state_(seed ? seed : 1) {}

    std::uint32_t next()
    {
        state_ = state_ * 1664525u + 1013904223u;
        return state_;
    }

    /** Uniform float in [0, 1). */
    float nextFloat()
    {
        return static_cast<float>(next() >> 8) / static_cast<float>(1 << 24);
    }

    /** Uniform integer in [0, n). */
    std::uint32_t nextBelow(std::uint32_t n) { return next() % n; }

  private:
    std::uint32_t state_;
};

/**
 * Fill @p a and @p b with the exact sequence
 *
 *   a[i] = rng.nextFloat(); b[i] = rng.nextFloat();   // i = 0..n-1
 *
 * for `Lcg rng(seed)`, but ~3x faster. An LCG admits O(1) jump-ahead
 * (x_{n+k} = A^k x_n + (A^{k-1}+...+1) C mod 2^32), so the single
 * serial multiply-add chain is split into four independent lanes the
 * CPU can overlap. Bit-identical to the scalar loop by construction.
 */
inline void
lcgFillFloatPair(std::uint32_t seed, std::vector<float>& a,
                 std::vector<float>& b, std::uint32_t n)
{
    constexpr std::uint32_t A = 1664525u, C = 1013904223u;
    a.resize(n);
    b.resize(n);
    Lcg scalar(seed);
    if (n < 2 || n % 2 != 0) {
        for (std::uint32_t i = 0; i < n; ++i) {
            a[i] = scalar.nextFloat();
            b[i] = scalar.nextFloat();
        }
        return;
    }
    // Lane starting states x1..x4 (x0 is the seed, x1 the first draw).
    std::uint32_t s0 = (seed ? seed : 1);
    s0 = s0 * A + C;                 // x1 -> a[0], a[2], ...
    std::uint32_t s1 = s0 * A + C;   // x2 -> b[0], b[2], ...
    std::uint32_t s2 = s1 * A + C;   // x3 -> a[1], a[3], ...
    std::uint32_t s3 = s2 * A + C;   // x4 -> b[1], b[3], ...
    constexpr std::uint32_t A4 = A * A * A * A;
    constexpr std::uint32_t C4 = (A * A * A + A * A + A + 1u) * C;
    constexpr float kInv = 1.0f / static_cast<float>(1 << 24);
    std::uint32_t i = 0;
    for (; i + 1 < n; i += 2) {
        a[i] = static_cast<float>(s0 >> 8) * kInv;
        b[i] = static_cast<float>(s1 >> 8) * kInv;
        a[i + 1] = static_cast<float>(s2 >> 8) * kInv;
        b[i + 1] = static_cast<float>(s3 >> 8) * kInv;
        s0 = s0 * A4 + C4;
        s1 = s1 * A4 + C4;
        s2 = s2 * A4 + C4;
        s3 = s3 * A4 + C4;
    }
}

/** Bit-cast float to a mailbox word and back. */
inline std::uint32_t
floatToWord(float f)
{
    std::uint32_t w;
    std::memcpy(&w, &f, 4);
    return w;
}

inline float
wordToFloat(std::uint32_t w)
{
    float f;
    std::memcpy(&f, &w, 4);
    return f;
}

/** Allocate main storage and copy a host vector into it. */
template <typename T>
EffAddr
uploadVector(rt::CellSystem& sys, const std::vector<T>& data,
             std::uint64_t align = 128)
{
    const EffAddr ea = sys.alloc(data.size() * sizeof(T), align);
    sys.machine().memory().write(ea, data.data(), data.size() * sizeof(T));
    return ea;
}

/** Copy a region of simulated main storage into a host vector. */
template <typename T>
std::vector<T>
downloadVector(rt::CellSystem& sys, EffAddr ea, std::size_t count)
{
    std::vector<T> out(count);
    sys.machine().memory().read(ea, out.data(), count * sizeof(T));
    return out;
}

/** Relative-error float comparison for verification. */
inline bool
nearlyEqual(float a, float b, float rel = 1e-4f)
{
    const float diff = a > b ? a - b : b - a;
    const float mag = (a < 0 ? -a : a) + (b < 0 ? -b : b) + 1e-6f;
    return diff <= rel * mag;
}

/**
 * Base class: keeps the system reference and the PPE-measured
 * start/end times every workload reports.
 */
class WorkloadBase
{
  public:
    explicit WorkloadBase(rt::CellSystem& sys) : sys_(sys) {}
    virtual ~WorkloadBase() = default;

    WorkloadBase(const WorkloadBase&) = delete;
    WorkloadBase& operator=(const WorkloadBase&) = delete;

    /** Spawn the PPE main program (call once, before sys.run()). */
    virtual void start() = 0;

    /** Check results against a host-computed reference. */
    virtual bool verify() const = 0;

    /** PPE-observed cycles from work start to all-SPEs-joined. */
    Tick elapsed() const { return end_tick_ - start_tick_; }
    Tick startTick() const { return start_tick_; }
    Tick endTick() const { return end_tick_; }

  protected:
    rt::CellSystem& sys_;
    Tick start_tick_ = 0;
    Tick end_tick_ = 0;
};

} // namespace cell::wl

#endif // CELL_WL_COMMON_H
