/**
 * @file
 * 3x3 convolution over a 2-D float image, row-band parallel.
 *
 * Each SPE filters a contiguous band of output rows. It keeps a
 * rolling window of three input rows in local store, prefetching the
 * next row (double buffered) while the current output row computes —
 * the streaming-with-halo pattern typical of Cell image kernels.
 * Borders are edge-replicated.
 */

#ifndef CELL_WL_CONV2D_H
#define CELL_WL_CONV2D_H

#include <array>

#include "wl/common.h"

namespace cell::wl {

struct Conv2dParams
{
    std::uint32_t width = 512;  ///< multiple of 4, <= 4096
    std::uint32_t height = 256;
    std::uint32_t n_spes = 8;
    /** 3x3 kernel, row-major. Default: sharpen. */
    std::array<float, 9> kernel{0.f, -1.f, 0.f, -1.f, 5.f, -1.f, 0.f, -1.f, 0.f};
    std::uint32_t compute_per_pixel = 11; ///< 9 madds + addressing
};

/** The convolution workload. */
class Conv2d : public WorkloadBase
{
  public:
    Conv2d(rt::CellSystem& sys, Conv2dParams p);

    void start() override;
    bool verify() const override;

    const Conv2dParams& params() const { return p_; }

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    Conv2dParams p_;
    EffAddr in_ = 0;
    EffAddr out_ = 0;
    std::vector<float> host_in_;
};

} // namespace cell::wl

#endif // CELL_WL_CONV2D_H
