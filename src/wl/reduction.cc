/**
 * @file
 * Dot-product reduction implementation.
 */

#include "wl/reduction.h"

#include <stdexcept>

namespace cell::wl {

namespace {

struct ReduceBlock
{
    EffAddr a;
    EffAddr b;
    std::uint32_t count;
    std::uint32_t tile_elems;
    std::uint32_t report_every_tile;
    std::uint32_t compute_per_elem;
    std::uint32_t pad[8];
};
static_assert(sizeof(ReduceBlock) == 64, "param block is 64 bytes");

} // namespace

Reduction::Reduction(rt::CellSystem& sys, ReductionParams p)
    : WorkloadBase(sys), p_(p)
{
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("Reduction: bad n_spes");
    if (p_.n_elements % 4 != 0 || p_.tile_elems % 4 != 0 ||
        p_.tile_elems * 4 > sim::kMaxDmaSize)
        throw std::invalid_argument("Reduction: bad sizes");

    Lcg rng(0xD07);
    host_a_.resize(p_.n_elements);
    host_b_.resize(p_.n_elements);
    for (std::uint32_t i = 0; i < p_.n_elements; ++i) {
        host_a_[i] = rng.nextFloat();
        host_b_[i] = rng.nextFloat();
    }
    a_ = uploadVector(sys_, host_a_);
    b_ = uploadVector(sys_, host_b_);
}

void
Reduction::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "reduce.ppe");
}

CoTask<void>
Reduction::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    const std::uint32_t n = p_.n_elements / 4;
    std::uint32_t done = 0;
    std::vector<std::uint32_t> tiles_per_spe(p_.n_spes);
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        const std::uint32_t quads = n / p_.n_spes + (s < n % p_.n_spes ? 1 : 0);
        ReduceBlock pb{};
        pb.a = a_ + std::uint64_t{done} * 16;
        pb.b = b_ + std::uint64_t{done} * 16;
        pb.count = quads * 4;
        pb.tile_elems = p_.tile_elems;
        pb.report_every_tile = p_.report_every_tile ? 1 : 0;
        pb.compute_per_elem = p_.compute_per_elem;
        done += quads;
        tiles_per_spe[s] =
            (pb.count + p_.tile_elems - 1) / p_.tile_elems;

        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));
        rt::SpuProgramImage img;
        img.name = "reduce_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);
    }

    double acc = 0.0;
    if (p_.report_every_tile) {
        // Chatty mode: collect round-robin, acknowledging each tile.
        std::uint32_t rounds = 0;
        for (std::uint32_t s = 0; s < p_.n_spes; ++s)
            rounds = std::max(rounds, tiles_per_spe[s]);
        for (std::uint32_t r = 0; r < rounds; ++r) {
            for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
                if (r >= tiles_per_spe[s])
                    continue;
                const std::uint32_t w =
                    co_await sys_.context(s).readOutMbox();
                acc += wordToFloat(w);
                co_await sys_.context(s).writeInMbox(1); // ack
            }
        }
    } else {
        for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
            if (tiles_per_spe[s] == 0)
                continue;
            const std::uint32_t w = co_await sys_.context(s).readOutMbox();
            acc += wordToFloat(w);
        }
    }
    result_ = static_cast<float>(acc);

    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();
    end_tick_ = sys_.engine().now();
}

CoTask<void>
Reduction::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(ReduceBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(ReduceBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<ReduceBlock>(pb_ls);
    if (pb.count == 0)
        co_return;

    const std::uint32_t tile_bytes = pb.tile_elems * 4;
    LsAddr buf_a[2] = {env.lsAlloc(tile_bytes), env.lsAlloc(tile_bytes)};
    LsAddr buf_b[2] = {env.lsAlloc(tile_bytes), env.lsAlloc(tile_bytes)};

    const std::uint32_t n_tiles =
        (pb.count + pb.tile_elems - 1) / pb.tile_elems;
    auto tile_count = [&](std::uint32_t t) {
        return std::min(pb.tile_elems, pb.count - t * pb.tile_elems);
    };

    // Prefetch tile 0.
    {
        const std::uint32_t bytes = tile_count(0) * 4;
        co_await env.mfcGet(buf_a[0], pb.a, bytes, 0);
        co_await env.mfcGet(buf_b[0], pb.b, bytes, 0);
    }

    double total = 0.0;
    for (std::uint32_t t = 0; t < n_tiles; ++t) {
        const std::uint32_t slot = t % 2;
        co_await env.waitTagAll(1u << slot);
        if (t + 1 < n_tiles) {
            const std::uint32_t nb = tile_count(t + 1) * 4;
            co_await env.mfcGet(buf_a[slot ^ 1],
                                pb.a + std::uint64_t{t + 1} * tile_bytes, nb,
                                slot ^ 1);
            co_await env.mfcGet(buf_b[slot ^ 1],
                                pb.b + std::uint64_t{t + 1} * tile_bytes, nb,
                                slot ^ 1);
        }

        const std::uint32_t cnt = tile_count(t);
        double tile_sum = 0.0;
        for (std::uint32_t i = 0; i < cnt; ++i) {
            tile_sum += static_cast<double>(
                            env.ls().load<float>(buf_a[slot] + i * 4)) *
                        env.ls().load<float>(buf_b[slot] + i * 4);
        }
        co_await env.compute(std::uint64_t{cnt} * pb.compute_per_elem + 80);

        if (pb.report_every_tile) {
            co_await env.writeOutMbox(
                floatToWord(static_cast<float>(tile_sum)));
            co_await env.readInMbox(); // wait for the PPE ack
        } else {
            total += tile_sum;
        }
    }

    if (!pb.report_every_tile)
        co_await env.writeOutMbox(floatToWord(static_cast<float>(total)));
}

bool
Reduction::verify() const
{
    double want = 0.0;
    for (std::uint32_t i = 0; i < p_.n_elements; ++i)
        want += static_cast<double>(host_a_[i]) * host_b_[i];
    return nearlyEqual(result_, static_cast<float>(want), 1e-3f);
}

} // namespace cell::wl
