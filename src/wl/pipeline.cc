/**
 * @file
 * SPE pipeline implementation.
 */

#include "wl/pipeline.h"

#include <stdexcept>

namespace cell::wl {

namespace {

struct PipeBlock
{
    EffAddr in;
    EffAddr out;
    EffAddr prev_aperture; ///< LS aperture EA of the previous stage
    std::uint32_t n_elements;
    std::uint32_t tile_elems;
    std::uint32_t stage;
    std::uint32_t n_stages;
    std::uint32_t prev_spe;
    std::uint32_t next_spe;
    float w;
    float b;
    std::uint32_t compute_per_elem;
    std::uint32_t user_events;
};
static_assert(sizeof(PipeBlock) == 64, "param block is 64 bytes");

} // namespace

Pipeline::Pipeline(rt::CellSystem& sys, PipelineParams p)
    : WorkloadBase(sys), p_(p)
{
    if (p_.n_stages < 2 || p_.n_stages > sys.numSpes())
        throw std::invalid_argument("Pipeline: stages must be 2..numSpes");
    if (p_.n_elements % 4 != 0 || p_.tile_elems % 4 != 0 ||
        p_.n_elements % p_.tile_elems != 0 ||
        p_.tile_elems * 4 > sim::kMaxDmaSize)
        throw std::invalid_argument("Pipeline: bad sizes");

    Lcg rng(0x919E);
    host_in_.resize(p_.n_elements);
    for (auto& v : host_in_)
        v = rng.nextFloat();
    in_ = uploadVector(sys_, host_in_);
    out_ = sys_.alloc(std::uint64_t{p_.n_elements} * 4);
}

void
Pipeline::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "pipe.ppe");
}

CoTask<void>
Pipeline::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    for (std::uint32_t s = 0; s < p_.n_stages; ++s) {
        PipeBlock pb{};
        pb.in = in_;
        pb.out = out_;
        pb.prev_aperture =
            s > 0 ? sys_.config().lsAperture(s - 1) : 0;
        pb.n_elements = p_.n_elements;
        pb.tile_elems = p_.tile_elems;
        pb.stage = s;
        pb.n_stages = p_.n_stages;
        pb.prev_spe = s > 0 ? s - 1 : 0;
        pb.next_spe = s + 1 < p_.n_stages ? s + 1 : 0;
        pb.w = p_.w;
        pb.b = p_.b;
        pb.compute_per_elem = p_.compute_per_elem;
        pb.user_events = p_.user_events ? 1 : 0;

        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));
        rt::SpuProgramImage img;
        img.name = "pipeline_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);
    }

    // Wire the hand-off addresses: every producer publishes its two
    // out-buffer LS addresses; the PPE forwards them to the consumer.
    for (std::uint32_t s = 0; s + 1 < p_.n_stages; ++s) {
        const std::uint32_t b0 = co_await sys_.context(s).readOutMbox();
        const std::uint32_t b1 = co_await sys_.context(s).readOutMbox();
        co_await sys_.context(s + 1).writeInMbox(b0);
        co_await sys_.context(s + 1).writeInMbox(b1);
    }

    for (std::uint32_t s = 0; s < p_.n_stages; ++s)
        co_await sys_.context(s).join();
    end_tick_ = sys_.engine().now();
}

CoTask<void>
Pipeline::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(PipeBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(PipeBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<PipeBlock>(pb_ls);

    const bool first = pb.stage == 0;
    const bool last = pb.stage + 1 == pb.n_stages;
    const std::uint32_t tile_bytes = pb.tile_elems * 4;
    const std::uint32_t n_tiles = pb.n_elements / pb.tile_elems;

    LsAddr in_buf[2] = {env.lsAlloc(tile_bytes), env.lsAlloc(tile_bytes)};
    LsAddr out_buf[2] = {env.lsAlloc(tile_bytes), env.lsAlloc(tile_bytes)};

    // Publish my out buffers / learn the producer's.
    LsAddr prev_out[2] = {0, 0};
    if (!last) {
        co_await env.writeOutMbox(out_buf[0]);
        co_await env.writeOutMbox(out_buf[1]);
    }
    if (!first) {
        prev_out[0] = co_await env.readInMbox();
        prev_out[1] = co_await env.readInMbox();
    }

    std::uint32_t filled_mask = 0; ///< producer's "slot filled" bits seen
    std::uint32_t freed_mask = 0;  ///< consumer's "slot freed" bits seen

    for (std::uint32_t t = 0; t < n_tiles; ++t) {
        const std::uint32_t slot = t % 2;
        const std::uint32_t bit = 1u << slot;

        // --- acquire the input tile into in_buf[slot] ---
        if (first) {
            co_await env.mfcGet(in_buf[slot],
                                pb.in + std::uint64_t{t} * tile_bytes,
                                tile_bytes, slot);
            co_await env.waitTagAll(bit);
        } else {
            while (!(filled_mask & bit))
                filled_mask |= co_await env.readSignal1();
            filled_mask &= ~bit;
            co_await env.mfcGet(in_buf[slot],
                                pb.prev_aperture + prev_out[slot],
                                tile_bytes, slot);
            co_await env.waitTagAll(bit);
            co_await env.sendSignal(pb.prev_spe, 2, bit);
        }

        // --- make sure out_buf[slot] is reusable ---
        if (!last) {
            if (t >= 2) {
                while (!(freed_mask & bit))
                    freed_mask |= co_await env.readSignal2();
                freed_mask &= ~bit;
            }
        } else if (t >= 2) {
            co_await env.waitTagAll(1u << (4 + slot)); // previous PUT
        }

        // --- transform ---
        for (std::uint32_t i = 0; i < pb.tile_elems; ++i) {
            const float x = env.ls().load<float>(in_buf[slot] + i * 4);
            env.ls().store<float>(out_buf[slot] + i * 4, pb.w * x + pb.b);
        }
        co_await env.compute(
            std::uint64_t{pb.tile_elems} * pb.compute_per_elem + 60);
        if (pb.user_events)
            co_await env.userEvent(pb.stage, t);

        // --- hand off ---
        if (!last) {
            co_await env.sendSignal(pb.next_spe, 1, bit);
        } else {
            co_await env.mfcPut(out_buf[slot],
                                pb.out + std::uint64_t{t} * tile_bytes,
                                tile_bytes, static_cast<TagId>(4 + slot));
        }
    }

    if (last)
        co_await env.waitTagAll((1u << 4) | (1u << 5));
}

bool
Pipeline::verify() const
{
    const auto got = downloadVector<float>(sys_, out_, p_.n_elements);
    for (std::uint32_t i = 0; i < p_.n_elements; ++i) {
        float want = host_in_[i];
        for (std::uint32_t s = 0; s < p_.n_stages; ++s)
            want = p_.w * want + p_.b;
        if (!nearlyEqual(got[i], want, 1e-3f))
            return false;
    }
    return true;
}

} // namespace cell::wl
