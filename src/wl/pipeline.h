/**
 * @file
 * SPE-to-SPE software pipeline.
 *
 * N SPEs form a chain: stage 0 streams tiles in from main storage,
 * every stage applies y = w*x + b and forwards the tile to the next
 * stage with an LS-to-LS DMA (the consumer pulls from the producer's
 * local-store aperture), and the last stage writes results back.
 * Flow control is pure SPE-to-SPE signalling: the producer raises
 * "slot filled" on the consumer's signal register 1, the consumer
 * raises "slot free" on the producer's register 2 — no PPE in the
 * loop. The tile hand-off addresses are exchanged at startup through
 * the mailboxes via the PPE.
 *
 * Stages also mark each processed tile with a PDT user event, which
 * the pipeline example uses to show custom events in the analyzer.
 */

#ifndef CELL_WL_PIPELINE_H
#define CELL_WL_PIPELINE_H

#include "wl/common.h"

namespace cell::wl {

struct PipelineParams
{
    std::uint32_t n_elements = 1 << 14; ///< multiple of 4
    std::uint32_t tile_elems = 512;     ///< multiple of 4
    std::uint32_t n_stages = 4;         ///< 2..num SPEs
    float w = 1.5f;
    float b = 0.25f;
    std::uint32_t compute_per_elem = 3;
    /** Emit a user event per processed tile. */
    bool user_events = false;
};

/** The pipeline workload. */
class Pipeline : public WorkloadBase
{
  public:
    Pipeline(rt::CellSystem& sys, PipelineParams p);

    void start() override;
    bool verify() const override;

    const PipelineParams& params() const { return p_; }

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    PipelineParams p_;
    EffAddr in_ = 0;
    EffAddr out_ = 0;
    std::vector<float> host_in_;
};

} // namespace cell::wl

#endif // CELL_WL_PIPELINE_H
