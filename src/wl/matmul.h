/**
 * @file
 * Blocked single-precision matrix multiply, C = A x B.
 *
 * Matrices are N x N floats, row-major in main storage, processed in
 * 32 x 32 tiles. A tile is not contiguous in memory, so tile fetches
 * use MFC DMA *lists* (one 128-byte element per tile row) — the same
 * structure the SDK's matrix kernels used, and a rich event source
 * for PDT.
 *
 * The `skew` parameter deliberately misdistributes tiles across SPEs
 * (SPE s gets a share proportional to 1 + skew * s) to create the
 * load-imbalance picture of use case F5; skew = 0 is the balanced
 * baseline.
 */

#ifndef CELL_WL_MATMUL_H
#define CELL_WL_MATMUL_H

#include "wl/common.h"

namespace cell::wl {

struct MatmulParams
{
    /** Matrix dimension; must be a multiple of 32. */
    std::uint32_t n = 128;
    std::uint32_t n_spes = 8;
    /** Load skew: SPE s's tile share is proportional to 1 + skew*s. */
    std::uint32_t skew = 0;
    /** Cycles charged per 32x32x32 tile multiply (2*32^3 flops at
     *  8 flops/cycle = 8192). */
    std::uint32_t cycles_per_tile_mult = 8192;
};

/** The blocked matmul workload. */
class Matmul : public WorkloadBase
{
  public:
    static constexpr std::uint32_t kTile = 32;

    Matmul(rt::CellSystem& sys, MatmulParams p);

    void start() override;
    bool verify() const override;

    const MatmulParams& params() const { return p_; }

    /** Tiles assigned to SPE @p s under the current skew. */
    std::uint32_t tilesForSpe(std::uint32_t s) const;

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    MatmulParams p_;
    EffAddr a_ = 0;
    EffAddr b_ = 0;
    EffAddr c_ = 0;
    std::vector<float> host_a_;
    std::vector<float> host_b_;
};

} // namespace cell::wl

#endif // CELL_WL_MATMUL_H
