/**
 * @file
 * Parallel dot product with mailbox coordination.
 *
 * Each SPE reduces its slice of two vectors tile by tile and reports
 * partial results to the PPE through its outbound mailbox. Two
 * coordination styles, selected by `report_every_tile`:
 *
 *   - false: one mailbox message per SPE at the end (the right way);
 *   - true:  a message per *tile*, with the PPE acknowledging each one
 *            through the inbound mailbox — a chatty ping-pong that
 *            serializes SPEs behind the single PPE reader. This is the
 *            pathological pattern of use case F6, which TA exposes as
 *            dominant mailbox-stall time.
 */

#ifndef CELL_WL_REDUCTION_H
#define CELL_WL_REDUCTION_H

#include "wl/common.h"

namespace cell::wl {

struct ReductionParams
{
    std::uint32_t n_elements = 1 << 16; ///< multiple of 4
    std::uint32_t n_spes = 8;
    std::uint32_t tile_elems = 1024;    ///< multiple of 4
    /** Chatty per-tile mailbox reporting (the bad pattern). */
    bool report_every_tile = false;
    std::uint32_t compute_per_elem = 2;
};

/** The dot-product workload. */
class Reduction : public WorkloadBase
{
  public:
    Reduction(rt::CellSystem& sys, ReductionParams p);

    void start() override;
    bool verify() const override;

    /** The dot product the PPE accumulated from mailbox messages. */
    float result() const { return result_; }

    const ReductionParams& params() const { return p_; }

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    ReductionParams p_;
    EffAddr a_ = 0;
    EffAddr b_ = 0;
    std::vector<float> host_a_;
    std::vector<float> host_b_;
    float result_ = 0.0f;
};

} // namespace cell::wl

#endif // CELL_WL_REDUCTION_H
