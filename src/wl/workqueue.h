/**
 * @file
 * Master-worker work queue with deliberately uneven item costs.
 *
 * The PPE owns a queue of work items whose compute cost ramps up
 * steeply across the item index. Two scheduling modes:
 *
 *   - Static: items are split contiguously up front — the SPE that
 *     draws the expensive tail becomes the straggler.
 *   - Dynamic: each SPE announces readiness through its outbound-
 *     interrupt mailbox; a per-SPE PPE dispatcher (modeling libspe2's
 *     event-handler threads) hands it the next item through the
 *     inbound mailbox. Work self-balances.
 *
 * Item payload: scale-accumulate over a tile of floats, cost
 * proportional to the item's weight. The same pattern the paper-era
 * SDK demos used for irregular offload, and a rich mailbox/lifecycle
 * event source for PDT.
 */

#ifndef CELL_WL_WORKQUEUE_H
#define CELL_WL_WORKQUEUE_H

#include "wl/common.h"

namespace cell::wl {

struct WorkQueueParams
{
    std::uint32_t n_items = 64;
    std::uint32_t tile_elems = 512; ///< multiple of 4
    std::uint32_t n_spes = 8;
    /** Dynamic (queue) vs static (contiguous pre-split) scheduling. */
    bool dynamic = true;
    /** Item i costs base + slope * i cycles of compute. */
    std::uint32_t cost_base = 500;
    std::uint32_t cost_slope = 150;
};

/** The work-queue workload. */
class WorkQueue : public WorkloadBase
{
  public:
    WorkQueue(rt::CellSystem& sys, WorkQueueParams p);

    void start() override;
    bool verify() const override;

    /** Items each SPE ended up processing (filled during the run). */
    const std::vector<std::uint32_t>& itemsPerSpe() const
    {
        return items_per_spe_;
    }

    const WorkQueueParams& params() const { return p_; }

  private:
    static constexpr std::uint32_t kStop = 0xFFFF'FFFFu;
    static constexpr std::uint32_t kReady = 0x600Du;

    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> dispatcher(std::uint32_t spe);
    CoTask<void> spuMain(SpuEnv& env);

    WorkQueueParams p_;
    EffAddr in_ = 0;
    EffAddr out_ = 0;
    EffAddr items_ea_ = 0; ///< per-item descriptor table
    std::vector<float> host_in_;
    std::uint32_t next_item_ = 0; ///< shared queue cursor (dynamic)
    std::vector<std::uint32_t> items_per_spe_;
};

} // namespace cell::wl

#endif // CELL_WL_WORKQUEUE_H
