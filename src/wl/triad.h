/**
 * @file
 * Streaming triad: C[i] = A[i] + s * B[i].
 *
 * The canonical SPE streaming kernel and the paper's flagship use
 * case: each SPE walks its slice of the arrays tile by tile, DMAing
 * tiles in and results out. The `buffering` parameter selects single,
 * double, or triple buffering — with one buffer the SPU waits for
 * every DMA; with two+ the next tile's GET overlaps the current
 * tile's compute, which is precisely the difference PDT+TA visualize.
 */

#ifndef CELL_WL_TRIAD_H
#define CELL_WL_TRIAD_H

#include "wl/common.h"

namespace cell::wl {

struct TriadParams
{
    /** Total elements (split across SPEs). */
    std::uint32_t n_elements = 1 << 16;
    /** SPEs to use. */
    std::uint32_t n_spes = 8;
    /** Elements per tile (tile bytes = 4 * this; <= 16 KiB / 4). */
    std::uint32_t tile_elems = 1024;
    /** 1 = single buffered, 2 = double, 3 = triple. */
    std::uint32_t buffering = 2;
    /** Extra compute cycles charged per element (arithmetic weight). */
    std::uint32_t compute_per_elem = 4;
    float scale = 2.5f;
};

/** The triad workload. */
class Triad : public WorkloadBase
{
  public:
    Triad(rt::CellSystem& sys, TriadParams p);

    void start() override;
    bool verify() const override;

    const TriadParams& params() const { return p_; }

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    TriadParams p_;
    EffAddr a_ = 0;
    EffAddr b_ = 0;
    EffAddr c_ = 0;
    std::vector<float> host_a_;
    std::vector<float> host_b_;
};

} // namespace cell::wl

#endif // CELL_WL_TRIAD_H
