/**
 * @file
 * Batched radix-2 complex FFT.
 *
 * The Cell SDK's flagship demo (FFT16M) streamed batches of
 * fixed-size FFTs through the SPEs; this workload reproduces that
 * pattern: each SPE GETs a batch of n-point complex-float signals,
 * runs an in-place iterative radix-2 FFT (bit-reversal + butterfly
 * passes, real arithmetic in the local store), and PUTs the spectra
 * back, double-buffering batches. Compute cost is charged per
 * butterfly. Verification recomputes the same algorithm on the host.
 */

#ifndef CELL_WL_FFT_H
#define CELL_WL_FFT_H

#include <complex>

#include "wl/common.h"

namespace cell::wl {

struct FftParams
{
    /** Points per FFT; power of two, 8..1024. */
    std::uint32_t fft_size = 256;
    /** Number of independent FFTs. */
    std::uint32_t n_ffts = 128;
    /** FFTs per SPE batch (batch bytes = 8 * fft_size * this,
     *  <= 16 KiB per DMA chunk is handled via getLarge). */
    std::uint32_t batch = 4;
    std::uint32_t n_spes = 8;
    /** Cycles charged per butterfly (complex mul + 2 adds). */
    std::uint32_t cycles_per_butterfly = 4;
};

/** The batched-FFT workload. */
class Fft : public WorkloadBase
{
  public:
    Fft(rt::CellSystem& sys, FftParams p);

    void start() override;
    bool verify() const override;

    const FftParams& params() const { return p_; }

    /** The reference transform (also what the SPEs run). */
    static void referenceFft(std::complex<float>* data, std::uint32_t n);

  private:
    CoTask<void> ppeMain(PpeEnv& env);
    CoTask<void> spuMain(SpuEnv& env);

    FftParams p_;
    EffAddr in_ = 0;
    EffAddr out_ = 0;
    std::vector<std::complex<float>> host_in_;
};

} // namespace cell::wl

#endif // CELL_WL_FFT_H
