/**
 * @file
 * Streaming triad implementation.
 */

#include "wl/triad.h"

#include <stdexcept>

namespace cell::wl {

namespace {

/** Parameter block each SPE fetches from main storage at startup. */
struct TriadBlock
{
    EffAddr a;
    EffAddr b;
    EffAddr c;
    std::uint32_t count;        ///< elements this SPE owns
    std::uint32_t tile_elems;
    std::uint32_t buffering;
    std::uint32_t compute_per_elem;
    float scale;
    std::uint32_t pad[5];
};
static_assert(sizeof(TriadBlock) == 64, "param block stays 64 bytes");

} // namespace

Triad::Triad(rt::CellSystem& sys, TriadParams p) : WorkloadBase(sys), p_(p)
{
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("Triad: bad n_spes");
    if (p_.tile_elems == 0 || p_.tile_elems % 4 != 0 ||
        p_.tile_elems * 4 > sim::kMaxDmaSize)
        throw std::invalid_argument("Triad: tile must be 4..4096 elems, x4");
    if (p_.buffering < 1 || p_.buffering > 3)
        throw std::invalid_argument("Triad: buffering must be 1..3");
    if (p_.n_elements % 4 != 0)
        throw std::invalid_argument("Triad: n_elements must be multiple of 4");

    lcgFillFloatPair(0x771AD, host_a_, host_b_, p_.n_elements);
    a_ = uploadVector(sys_, host_a_);
    b_ = uploadVector(sys_, host_b_);
    c_ = sys_.alloc(std::uint64_t{p_.n_elements} * 4);
}

void
Triad::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "triad.ppe");
}

CoTask<void>
Triad::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    // Slice the arrays; each SPE's share is a multiple of 4 elements.
    const std::uint32_t n = p_.n_elements / 4;
    std::uint32_t done = 0;
    std::vector<EffAddr> blocks(p_.n_spes);
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        const std::uint32_t quads = n / p_.n_spes + (s < n % p_.n_spes ? 1 : 0);
        TriadBlock pb{};
        pb.a = a_ + std::uint64_t{done} * 16;
        pb.b = b_ + std::uint64_t{done} * 16;
        pb.c = c_ + std::uint64_t{done} * 16;
        pb.count = quads * 4;
        pb.tile_elems = p_.tile_elems;
        pb.buffering = p_.buffering;
        pb.compute_per_elem = p_.compute_per_elem;
        pb.scale = p_.scale;
        blocks[s] = sys_.alloc(sizeof(TriadBlock));
        sys_.machine().memory().write(blocks[s], &pb, sizeof(pb));
        done += quads;

        rt::SpuProgramImage img;
        img.name = "triad_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, blocks[s]);
    }
    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();

    end_tick_ = sys_.engine().now();
}

CoTask<void>
Triad::spuMain(SpuEnv& env)
{
    // Fetch the parameter block.
    const LsAddr pb_ls = env.lsAlloc(sizeof(TriadBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(TriadBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<TriadBlock>(pb_ls);
    if (pb.count == 0)
        co_return;

    const std::uint32_t tile_bytes = pb.tile_elems * 4;
    const std::uint32_t nbuf = pb.buffering;
    LsAddr buf_a[3] = {}, buf_b[3] = {}, buf_c[3] = {};
    for (std::uint32_t i = 0; i < nbuf; ++i) {
        buf_a[i] = env.lsAlloc(tile_bytes);
        buf_b[i] = env.lsAlloc(tile_bytes);
        buf_c[i] = env.lsAlloc(tile_bytes);
    }

    const std::uint32_t n_tiles =
        (pb.count + pb.tile_elems - 1) / pb.tile_elems;
    auto tile_count = [&](std::uint32_t t) {
        return std::min(pb.tile_elems, pb.count - t * pb.tile_elems);
    };

    // Prologue: prefetch the first `nbuf` tiles, tag == slot.
    for (std::uint32_t t = 0; t < std::min(nbuf, n_tiles); ++t) {
        const std::uint32_t bytes = tile_count(t) * 4;
        co_await env.mfcGet(buf_a[t], pb.a + std::uint64_t{t} * tile_bytes,
                            bytes, t);
        co_await env.mfcGet(buf_b[t], pb.b + std::uint64_t{t} * tile_bytes,
                            bytes, t);
    }

    for (std::uint32_t t = 0; t < n_tiles; ++t) {
        const std::uint32_t slot = t % nbuf;
        const std::uint32_t cnt = tile_count(t);

        // Wait for this slot's GET (and its previous PUT, same tag).
        co_await env.waitTagAll(1u << slot);

        // Compute the tile (real arithmetic + modeled cycles). One
        // bounds check per operand, then raw LS pointers: keeps the
        // host loop vectorizable instead of re-deriving the LS base
        // through the coroutine frame on every element.
        {
            sim::LocalStore& ls = env.ls();
            const float* ta = reinterpret_cast<const float*>(
                ls.span(buf_a[slot], std::size_t{cnt} * 4));
            const float* tb = reinterpret_cast<const float*>(
                ls.span(buf_b[slot], std::size_t{cnt} * 4));
            float* tc = reinterpret_cast<float*>(
                ls.span(buf_c[slot], std::size_t{cnt} * 4));
            const float scale = pb.scale;
            for (std::uint32_t i = 0; i < cnt; ++i)
                tc[i] = ta[i] + scale * tb[i];
        }
        co_await env.compute(std::uint64_t{cnt} * pb.compute_per_elem + 100);

        // Write the result tile out and prefetch tile t + nbuf.
        co_await env.mfcPut(buf_c[slot], pb.c + std::uint64_t{t} * tile_bytes,
                            cnt * 4, slot);
        const std::uint32_t nt = t + nbuf;
        if (nt < n_tiles) {
            const std::uint32_t nbytes = tile_count(nt) * 4;
            co_await env.mfcGet(buf_a[slot],
                                pb.a + std::uint64_t{nt} * tile_bytes, nbytes,
                                slot);
            co_await env.mfcGet(buf_b[slot],
                                pb.b + std::uint64_t{nt} * tile_bytes, nbytes,
                                slot);
        }
    }

    // Drain all outstanding PUTs before stopping.
    co_await env.waitTagAll((1u << nbuf) - 1);
}

bool
Triad::verify() const
{
    // Compare in 16 KiB chunks through a stack buffer instead of
    // downloading the full array: no allocation, and the branch-free
    // violation count vectorizes (only pass/fail is needed).
    constexpr std::uint32_t kChunk = 4096;
    float buf[kChunk];
    std::uint32_t bad = 0;
    for (std::uint32_t base = 0; base < p_.n_elements; base += kChunk) {
        const std::uint32_t n = std::min(kChunk, p_.n_elements - base);
        sys_.machine().memory().read(c_ + std::uint64_t{base} * 4, buf,
                                     std::size_t{n} * 4);
        for (std::uint32_t i = 0; i < n; ++i) {
            const float want =
                host_a_[base + i] + p_.scale * host_b_[base + i];
            bad += !nearlyEqual(buf[i], want);
        }
    }
    return bad == 0;
}

} // namespace cell::wl
