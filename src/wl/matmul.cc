/**
 * @file
 * Blocked matmul implementation.
 */

#include "wl/matmul.h"

#include <stdexcept>

namespace cell::wl {

namespace {

struct MatmulBlock
{
    EffAddr a;
    EffAddr b;
    EffAddr c;
    std::uint32_t n;           ///< matrix dimension
    std::uint32_t first_tile;  ///< first owned C tile (linear index)
    std::uint32_t tile_count;  ///< owned C tiles
    std::uint32_t cycles_per_tile_mult;
    std::uint32_t pad[6];
};
static_assert(sizeof(MatmulBlock) == 64, "param block is one DMA quadline");

constexpr std::uint32_t kT = Matmul::kTile;
constexpr std::uint32_t kTileBytes = kT * kT * 4;     // 4 KiB
constexpr std::uint32_t kRowBytes = kT * 4;           // 128 B
constexpr std::uint32_t kListBytes = kT * 8;          // 32 elements

} // namespace

Matmul::Matmul(rt::CellSystem& sys, MatmulParams p) : WorkloadBase(sys), p_(p)
{
    if (p_.n == 0 || p_.n % kTile != 0)
        throw std::invalid_argument("Matmul: n must be a multiple of 32");
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("Matmul: bad n_spes");

    Lcg rng(0x3A73);
    host_a_.resize(std::size_t{p_.n} * p_.n);
    host_b_.resize(std::size_t{p_.n} * p_.n);
    for (auto& v : host_a_)
        v = rng.nextFloat() - 0.5f;
    for (auto& v : host_b_)
        v = rng.nextFloat() - 0.5f;
    a_ = uploadVector(sys_, host_a_);
    b_ = uploadVector(sys_, host_b_);
    c_ = sys_.alloc(std::uint64_t{p_.n} * p_.n * 4);
}

std::uint32_t
Matmul::tilesForSpe(std::uint32_t s) const
{
    const std::uint32_t tiles_dim = p_.n / kTile;
    const std::uint32_t total = tiles_dim * tiles_dim;
    // Shares proportional to 1 + skew * s, distributed largest-
    // remainder style but deterministic and simple: prefix sums.
    std::uint64_t wsum = 0;
    for (std::uint32_t i = 0; i < p_.n_spes; ++i)
        wsum += 1 + std::uint64_t{p_.skew} * i;
    const std::uint64_t w = 1 + std::uint64_t{p_.skew} * s;
    std::uint64_t before = 0;
    for (std::uint32_t i = 0; i < s; ++i)
        before += 1 + std::uint64_t{p_.skew} * i;
    const auto lo = static_cast<std::uint32_t>(before * total / wsum);
    const auto hi = static_cast<std::uint32_t>((before + w) * total / wsum);
    return hi - lo;
}

void
Matmul::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "matmul.ppe");
}

CoTask<void>
Matmul::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    std::uint32_t next_tile = 0;
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        MatmulBlock pb{};
        pb.a = a_;
        pb.b = b_;
        pb.c = c_;
        pb.n = p_.n;
        pb.first_tile = next_tile;
        pb.tile_count = tilesForSpe(s);
        pb.cycles_per_tile_mult = p_.cycles_per_tile_mult;
        next_tile += pb.tile_count;

        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));

        rt::SpuProgramImage img;
        img.name = "matmul_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);
    }
    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();

    end_tick_ = sys_.engine().now();
}

CoTask<void>
Matmul::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(MatmulBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(MatmulBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<MatmulBlock>(pb_ls);
    if (pb.tile_count == 0)
        co_return;

    const std::uint32_t tiles_dim = pb.n / kT;
    const std::uint32_t row_stride = pb.n * 4;

    // LS layout: double-buffered A/B tile pairs, one C accumulator,
    // and DMA lists for the in-flight fetches plus the C writeback.
    LsAddr buf_a[2] = {env.lsAlloc(kTileBytes), env.lsAlloc(kTileBytes)};
    LsAddr buf_b[2] = {env.lsAlloc(kTileBytes), env.lsAlloc(kTileBytes)};
    const LsAddr buf_c = env.lsAlloc(kTileBytes);
    LsAddr list_a[2] = {env.lsAlloc(kListBytes, 8), env.lsAlloc(kListBytes, 8)};
    LsAddr list_b[2] = {env.lsAlloc(kListBytes, 8), env.lsAlloc(kListBytes, 8)};
    const LsAddr list_c = env.lsAlloc(kListBytes, 8);

    // EA of tile (ti, tj) row r.
    auto tileRowEa = [&](EffAddr base, std::uint32_t ti, std::uint32_t tj,
                         std::uint32_t r) {
        return base +
               (std::uint64_t{ti} * kT + r) * row_stride +
               std::uint64_t{tj} * kRowBytes;
    };
    // Build a 32-row gather/scatter list for a tile.
    auto buildList = [&](LsAddr list, EffAddr base, std::uint32_t ti,
                         std::uint32_t tj) {
        for (std::uint32_t r = 0; r < kT; ++r) {
            const EffAddr ea = tileRowEa(base, ti, tj, r);
            env.ls().store(list + r * 8,
                           sim::MfcListElement::make(
                               kRowBytes,
                               static_cast<std::uint32_t>(ea)));
        }
        return base & 0xFFFF'FFFF'0000'0000ULL;
    };
    // Issue the GETL pair for step k of tile (ti, tj) into slot.
    auto fetchPair = [&](std::uint32_t slot, std::uint32_t ti,
                         std::uint32_t tj, std::uint32_t k) -> CoTask<void> {
        const EffAddr ha = buildList(list_a[slot], pb.a, ti, k);
        co_await env.mfcGetList(buf_a[slot], ha, list_a[slot], kListBytes,
                                slot);
        const EffAddr hb = buildList(list_b[slot], pb.b, k, tj);
        co_await env.mfcGetList(buf_b[slot], hb, list_b[slot], kListBytes,
                                slot);
    };

    for (std::uint32_t t = 0; t < pb.tile_count; ++t) {
        const std::uint32_t ct = pb.first_tile + t;
        const std::uint32_t ti = ct / tiles_dim;
        const std::uint32_t tj = ct % tiles_dim;

        env.ls().clear(buf_c, kTileBytes);
        co_await fetchPair(0, ti, tj, 0);

        for (std::uint32_t k = 0; k < tiles_dim; ++k) {
            const std::uint32_t slot = k % 2;
            co_await env.waitTagAll(1u << slot);
            if (k + 1 < tiles_dim)
                co_await fetchPair(slot ^ 1, ti, tj, k + 1);

            // 32x32x32 tile multiply-accumulate (real arithmetic).
            for (std::uint32_t i = 0; i < kT; ++i) {
                for (std::uint32_t j = 0; j < kT; ++j) {
                    float acc =
                        env.ls().load<float>(buf_c + (i * kT + j) * 4);
                    for (std::uint32_t kk = 0; kk < kT; ++kk) {
                        acc += env.ls().load<float>(
                                   buf_a[slot] + (i * kT + kk) * 4) *
                               env.ls().load<float>(
                                   buf_b[slot] + (kk * kT + j) * 4);
                    }
                    env.ls().store<float>(buf_c + (i * kT + j) * 4, acc);
                }
            }
            co_await env.compute(pb.cycles_per_tile_mult);
        }

        // Scatter the finished C tile with a PUTL on tag 2.
        const EffAddr hc = buildList(list_c, pb.c, ti, tj);
        co_await env.mfcPutList(buf_c, hc, list_c, kListBytes, 2);
        co_await env.waitTagAll(1u << 2);
    }
}

bool
Matmul::verify() const
{
    const auto got = downloadVector<float>(sys_, c_,
                                           std::size_t{p_.n} * p_.n);
    // Host reference (blocked the same way to match float ordering).
    for (std::uint32_t i = 0; i < p_.n; ++i) {
        for (std::uint32_t j = 0; j < p_.n; ++j) {
            float want = 0.0f;
            for (std::uint32_t k = 0; k < p_.n; ++k)
                want += host_a_[std::size_t{i} * p_.n + k] *
                        host_b_[std::size_t{k} * p_.n + j];
            if (!nearlyEqual(got[std::size_t{i} * p_.n + j], want, 1e-3f))
                return false;
        }
    }
    return true;
}

} // namespace cell::wl
