/**
 * @file
 * Sparse gather implementation.
 */

#include "wl/gather.h"

#include <stdexcept>

namespace cell::wl {

namespace {

struct GatherBlock
{
    EffAddr table;
    EffAddr index;
    EffAddr out;
    std::uint32_t index_first;
    std::uint32_t index_count; ///< multiple of 32
    std::uint32_t compute_per_row;
    std::uint32_t pad[7];
};
static_assert(sizeof(GatherBlock) == 64, "param block is 64 bytes");

} // namespace

Gather::Gather(rt::CellSystem& sys, GatherParams p) : WorkloadBase(sys), p_(p)
{
    if (p_.n_indices % kBatch != 0)
        throw std::invalid_argument("Gather: n_indices must be x32");
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("Gather: bad n_spes");
    if (p_.table_rows == 0)
        throw std::invalid_argument("Gather: empty table");

    Lcg rng(0x6A7);
    host_table_.resize(std::size_t{p_.table_rows} * kRowFloats);
    for (auto& v : host_table_)
        v = rng.nextFloat();
    host_index_.resize(p_.n_indices);
    for (auto& ix : host_index_)
        ix = rng.nextBelow(p_.table_rows);
    table_ = uploadVector(sys_, host_table_);
    index_ = uploadVector(sys_, host_index_);
    out_ = sys_.alloc(std::uint64_t{p_.n_indices} * 4);
}

void
Gather::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "gather.ppe");
}

CoTask<void>
Gather::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    const std::uint32_t batches = p_.n_indices / kBatch;
    std::uint32_t done = 0;
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        const std::uint32_t own =
            batches / p_.n_spes + (s < batches % p_.n_spes ? 1 : 0);
        GatherBlock pb{};
        pb.table = table_;
        pb.index = index_;
        pb.out = out_;
        pb.index_first = done * kBatch;
        pb.index_count = own * kBatch;
        pb.compute_per_row = p_.compute_per_row;
        done += own;

        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));
        rt::SpuProgramImage img;
        img.name = "gather_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);
    }
    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();
    end_tick_ = sys_.engine().now();
}

CoTask<void>
Gather::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(GatherBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(GatherBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<GatherBlock>(pb_ls);
    if (pb.index_count == 0)
        co_return;

    // Fetch this SPE's whole index slice up front.
    const std::uint32_t index_bytes = pb.index_count * 4;
    const LsAddr idx_ls = env.lsAlloc(index_bytes);
    co_await env.getLarge(idx_ls, pb.index + std::uint64_t{pb.index_first} * 4,
                          index_bytes, 0);
    co_await env.waitTagAll(1u << 0);

    const std::uint32_t n_batches = pb.index_count / kBatch;
    LsAddr rows[2] = {env.lsAlloc(kBatch * kRowBytes),
                      env.lsAlloc(kBatch * kRowBytes)};
    LsAddr lists[2] = {env.lsAlloc(kBatch * 8, 8), env.lsAlloc(kBatch * 8, 8)};
    LsAddr sums[2] = {env.lsAlloc(kBatch * 4), env.lsAlloc(kBatch * 4)};

    auto issueBatch = [&](std::uint32_t bt, std::uint32_t slot)
        -> CoTask<void> {
        for (std::uint32_t i = 0; i < kBatch; ++i) {
            const std::uint32_t ix = env.ls().load<std::uint32_t>(
                idx_ls + (bt * kBatch + i) * 4);
            const EffAddr ea = pb.table + std::uint64_t{ix} * kRowBytes;
            env.ls().store(lists[slot] + i * 8,
                           sim::MfcListElement::make(
                               kRowBytes, static_cast<std::uint32_t>(ea)));
        }
        co_await env.mfcGetList(rows[slot],
                                pb.table & 0xFFFF'FFFF'0000'0000ULL,
                                lists[slot], kBatch * 8, slot);
    };

    co_await issueBatch(0, 0);
    for (std::uint32_t bt = 0; bt < n_batches; ++bt) {
        const std::uint32_t slot = bt % 2;
        // Wait for this slot's GETL and for its previous sums PUT.
        co_await env.waitTagAll((1u << slot) | (1u << (4 + slot)));
        if (bt + 1 < n_batches)
            co_await issueBatch(bt + 1, slot ^ 1);

        for (std::uint32_t i = 0; i < kBatch; ++i) {
            float acc = 0.0f;
            for (std::uint32_t f = 0; f < kRowFloats; ++f)
                acc += env.ls().load<float>(rows[slot] +
                                            (i * kRowFloats + f) * 4);
            env.ls().store<float>(sums[slot] + i * 4, acc);
        }
        co_await env.compute(std::uint64_t{kBatch} * pb.compute_per_row + 90);

        co_await env.mfcPut(
            sums[slot],
            pb.out + (std::uint64_t{pb.index_first} + bt * kBatch) * 4,
            kBatch * 4, static_cast<TagId>(4 + slot));
    }
    co_await env.waitTagAll((1u << 4) | (1u << 5));
}

bool
Gather::verify() const
{
    const auto got = downloadVector<float>(sys_, out_, p_.n_indices);
    for (std::uint32_t i = 0; i < p_.n_indices; ++i) {
        float want = 0.0f;
        const std::uint32_t row = host_index_[i];
        for (std::uint32_t f = 0; f < kRowFloats; ++f)
            want += host_table_[std::size_t{row} * kRowFloats + f];
        if (!nearlyEqual(got[i], want, 1e-3f))
            return false;
    }
    return true;
}

} // namespace cell::wl
