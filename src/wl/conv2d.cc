/**
 * @file
 * Row-band 3x3 convolution implementation.
 */

#include "wl/conv2d.h"

#include <stdexcept>

namespace cell::wl {

namespace {

struct ConvBlock
{
    EffAddr in;
    EffAddr out;
    std::uint32_t width;
    std::uint32_t height;
    std::uint32_t row_first;  ///< first output row
    std::uint32_t row_count;
    std::uint32_t compute_per_pixel;
    float kernel[9];
    std::uint32_t pad[5];
};
static_assert(sizeof(ConvBlock) == 96, "param block is 96 bytes");

} // namespace

Conv2d::Conv2d(rt::CellSystem& sys, Conv2dParams p) : WorkloadBase(sys), p_(p)
{
    if (p_.width % 4 != 0 || p_.width * 4 > sim::kMaxDmaSize || p_.width < 8)
        throw std::invalid_argument("Conv2d: width must be 8..4096, x4");
    if (p_.height < 2)
        throw std::invalid_argument("Conv2d: height too small");
    if (p_.n_spes == 0 || p_.n_spes > sys.numSpes())
        throw std::invalid_argument("Conv2d: bad n_spes");

    Lcg rng(0xC04);
    host_in_.resize(std::size_t{p_.width} * p_.height);
    for (auto& v : host_in_)
        v = rng.nextFloat();
    in_ = uploadVector(sys_, host_in_);
    out_ = sys_.alloc(std::uint64_t{p_.width} * p_.height * 4);
}

void
Conv2d::start()
{
    sys_.runPpe([this](PpeEnv& env) { return ppeMain(env); }, "conv.ppe");
}

CoTask<void>
Conv2d::ppeMain(PpeEnv& env)
{
    (void)env;
    start_tick_ = sys_.engine().now();

    std::uint32_t row = 0;
    for (std::uint32_t s = 0; s < p_.n_spes; ++s) {
        const std::uint32_t rows =
            p_.height / p_.n_spes + (s < p_.height % p_.n_spes ? 1 : 0);
        ConvBlock pb{};
        pb.in = in_;
        pb.out = out_;
        pb.width = p_.width;
        pb.height = p_.height;
        pb.row_first = row;
        pb.row_count = rows;
        pb.compute_per_pixel = p_.compute_per_pixel;
        for (int k = 0; k < 9; ++k)
            pb.kernel[k] = p_.kernel[static_cast<std::size_t>(k)];
        row += rows;

        const EffAddr pb_ea = sys_.alloc(sizeof(pb));
        sys_.machine().memory().write(pb_ea, &pb, sizeof(pb));
        rt::SpuProgramImage img;
        img.name = "conv2d_spu";
        img.main = [this](SpuEnv& e) { return spuMain(e); };
        co_await sys_.context(s).start(img, pb_ea);
    }
    for (std::uint32_t s = 0; s < p_.n_spes; ++s)
        co_await sys_.context(s).join();
    end_tick_ = sys_.engine().now();
}

CoTask<void>
Conv2d::spuMain(SpuEnv& env)
{
    const LsAddr pb_ls = env.lsAlloc(sizeof(ConvBlock), 16);
    co_await env.mfcGet(pb_ls, env.argp(), sizeof(ConvBlock), 0);
    co_await env.waitTagAll(1u << 0);
    const auto pb = env.ls().load<ConvBlock>(pb_ls);
    if (pb.row_count == 0)
        co_return;

    const std::uint32_t row_bytes = pb.width * 4;
    // Rolling window of 4 row buffers (3 live + 1 prefetch) + 2 output.
    LsAddr rows[4];
    for (auto& r : rows)
        r = env.lsAlloc(row_bytes);
    LsAddr out_buf[2] = {env.lsAlloc(row_bytes), env.lsAlloc(row_bytes)};

    auto clampRow = [&](std::int64_t y) {
        if (y < 0)
            return std::uint32_t{0};
        if (y >= pb.height)
            return pb.height - 1;
        return static_cast<std::uint32_t>(y);
    };
    auto rowEa = [&](std::uint32_t y) {
        return pb.in + std::uint64_t{y} * row_bytes;
    };

    // Load the initial window: input rows (first-1, first, first+1)
    // into slots 0..2 on tags 0..2.
    const std::int64_t first = pb.row_first;
    for (int i = 0; i < 3; ++i) {
        co_await env.mfcGet(rows[i], rowEa(clampRow(first - 1 + i)),
                            row_bytes, static_cast<TagId>(i % 3));
    }
    co_await env.waitTagAll(0x7);

    for (std::uint32_t r = 0; r < pb.row_count; ++r) {
        const std::uint32_t y = pb.row_first + r;
        const std::uint32_t top = r % 4;          // y-1
        const std::uint32_t mid = (r + 1) % 4;    // y
        const std::uint32_t bot = (r + 2) % 4;    // y+1
        const std::uint32_t next = (r + 3) % 4;   // prefetch y+2
        const std::uint32_t oslot = r % 2;

        // Prefetch the next bottom row while this row computes.
        if (r + 1 < pb.row_count) {
            co_await env.mfcGet(rows[next], rowEa(clampRow(
                                    static_cast<std::int64_t>(y) + 2)),
                                row_bytes, 3);
        }
        // Make sure the previous PUT of this output slot drained.
        co_await env.waitTagAll(1u << (4 + oslot));

        auto at = [&](std::uint32_t slot, std::int64_t x) {
            if (x < 0)
                x = 0;
            if (x >= pb.width)
                x = pb.width - 1;
            return env.ls().load<float>(rows[slot] +
                                        static_cast<LsAddr>(x) * 4);
        };
        for (std::uint32_t x = 0; x < pb.width; ++x) {
            const std::int64_t xi = x;
            float acc = 0.0f;
            const std::uint32_t slots[3] = {top, mid, bot};
            for (int ky = 0; ky < 3; ++ky) {
                for (int kx = 0; kx < 3; ++kx) {
                    acc += pb.kernel[ky * 3 + kx] *
                           at(slots[ky], xi + kx - 1);
                }
            }
            env.ls().store<float>(out_buf[oslot] + x * 4, acc);
        }
        co_await env.compute(std::uint64_t{pb.width} * pb.compute_per_pixel +
                             120);

        co_await env.mfcPut(out_buf[oslot],
                            pb.out + std::uint64_t{y} * row_bytes, row_bytes,
                            static_cast<TagId>(4 + oslot));
        // Wait for the prefetched row before the window rolls.
        if (r + 1 < pb.row_count)
            co_await env.waitTagAll(1u << 3);
    }
    co_await env.waitTagAll((1u << 4) | (1u << 5));
}

bool
Conv2d::verify() const
{
    const auto got =
        downloadVector<float>(sys_, out_, std::size_t{p_.width} * p_.height);
    auto ref = [&](std::int64_t y, std::int64_t x) {
        y = std::max<std::int64_t>(0, std::min<std::int64_t>(y, p_.height - 1));
        x = std::max<std::int64_t>(0, std::min<std::int64_t>(x, p_.width - 1));
        return host_in_[static_cast<std::size_t>(y) * p_.width +
                        static_cast<std::size_t>(x)];
    };
    for (std::uint32_t y = 0; y < p_.height; ++y) {
        for (std::uint32_t x = 0; x < p_.width; ++x) {
            float want = 0.0f;
            for (int ky = 0; ky < 3; ++ky)
                for (int kx = 0; kx < 3; ++kx)
                    want += p_.kernel[static_cast<std::size_t>(ky * 3 + kx)] *
                            ref(std::int64_t{y} + ky - 1,
                                std::int64_t{x} + kx - 1);
            if (!nearlyEqual(got[std::size_t{y} * p_.width + x], want, 1e-3f))
                return false;
        }
    }
    return true;
}

} // namespace cell::wl
