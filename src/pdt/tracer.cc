/**
 * @file
 * PDT tracer implementation.
 */

#include "pdt/tracer.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace cell::pdt {

using rt::ApiEvent;
using rt::ApiOp;
using rt::ApiPhase;
using sim::CoTask;
using sim::EffAddr;
using sim::LsAddr;
using sim::Tick;
using trace::Record;

Pdt::Pdt(rt::CellSystem& sys, PdtConfig cfg) : sys_(sys), cfg_(cfg)
{
    cfg_.validate();

    const std::uint32_t n = sys_.numSpes();
    spu_state_.resize(n);
    stats_.spu.resize(n);

    // Reserve LS space for the trace buffers at the top of each SPE's
    // local store (the real tool linked its buffers into the image).
    const std::uint32_t halves = cfg_.double_buffered ? 2 : 1;
    const std::uint32_t reserve = halves * cfg_.spu_buffer_bytes;
    const std::uint32_t limit =
        (sim::kLocalStoreSize - reserve) & ~15u; // 16-byte aligned
    sys_.setSpuLsLimit(limit);

    for (std::uint32_t i = 0; i < n; ++i) {
        spu_state_[i].buf_base = limit;
        spu_state_[i].arena_base =
            sys_.alloc(cfg_.arena_bytes_per_spe, 128);
    }

    sys_.setHook(this);
    attached_ = true;
}

Pdt::~Pdt()
{
    detach();
}

void
Pdt::detach()
{
    if (attached_) {
        sys_.setHook(nullptr);
        sys_.setSpuLsLimit(sim::kLocalStoreSize);
        attached_ = false;
    }
}

std::uint32_t
Pdt::spuTimestamp(std::uint32_t spe) const
{
    sim::Spu& spu = sys_.machine().spe(spe);
    return spu.decrementer().read(sys_.engine().now());
}

Record
Pdt::makeSpuRecord(std::uint32_t spe, const ApiEvent& ev) const
{
    Record rec;
    rec.kind = static_cast<std::uint8_t>(ev.op);
    rec.phase = static_cast<std::uint8_t>(ev.phase);
    rec.core = static_cast<std::uint16_t>(ev.core.value);
    rec.timestamp = spuTimestamp(spe);
    rec.a = ev.a;
    rec.b = ev.b;
    rec.c = static_cast<std::uint32_t>(ev.c);
    rec.d = static_cast<std::uint32_t>(ev.d);
    return rec;
}

Record
Pdt::makeSpuSync(std::uint32_t spe) const
{
    Record rec{};
    rec.kind = trace::kSyncRecord;
    rec.phase = trace::kPhaseBegin;
    rec.core = static_cast<std::uint16_t>(spe + 1);
    rec.timestamp = spuTimestamp(spe);
    rec.a = rec.timestamp;
    rec.b = sys_.machine().readTimebase();
    return rec;
}

void
Pdt::appendToHalf(std::uint32_t spe, Record rec)
{
    SpuState& st = spu_state_[spe];
    sim::LocalStore& ls = sys_.machine().spe(spe).localStore();
    auto& ctr = stats_.spu[spe];

    auto put = [&](const Record& r) {
        const LsAddr addr = st.buf_base + st.half * cfg_.spu_buffer_bytes +
                            st.cursor * static_cast<std::uint32_t>(sizeof(Record));
        ls.write(addr, &r, sizeof(Record));
        st.cursor += 1;
        ctr.records += 1;
    };

    if (st.cursor == 0) {
        // Fresh half: sync record first, then a marker describing the
        // previous flush (if any).
        put(makeSpuSync(spe));
        if (st.have_flush_marker) {
            Record marker{};
            marker.kind = trace::kFlushRecord;
            marker.core = static_cast<std::uint16_t>(spe + 1);
            marker.timestamp = spuTimestamp(spe);
            marker.a = st.marker_records;
            marker.b = st.marker_wait;
            put(marker);
            st.have_flush_marker = false;
        }
    }
    put(rec);
}

CoTask<void>
Pdt::drainFlushes(std::uint32_t spe)
{
    SpuState& st = spu_state_[spe];
    if (!st.outstanding[0] && !st.outstanding[1])
        co_return;
    sim::Spu& spu = sys_.machine().spe(spe);
    const Tick t0 = sys_.engine().now();
    co_await spu.mfc().waitTagStatusAll(1u << cfg_.trace_tag);
    const Tick waited = sys_.engine().now() - t0;
    stats_.spu[spe].flush_wait_cycles += waited;
    spu.stats().tracer_cycles += waited;
    st.outstanding[0] = false;
    st.outstanding[1] = false;
}

CoTask<void>
Pdt::flushHalf(std::uint32_t spe, bool final_flush)
{
    SpuState& st = spu_state_[spe];
    sim::Spu& spu = sys_.machine().spe(spe);
    auto& ctr = stats_.spu[spe];

    if (st.cursor == 0) {
        if (final_flush)
            co_await drainFlushes(spe);
        co_return;
    }

    const std::uint32_t bytes =
        st.cursor * static_cast<std::uint32_t>(sizeof(Record));

    if (st.arena_cursor + bytes > cfg_.arena_bytes_per_spe) {
        if (!cfg_.wrap_arena) {
            // Stop tracing this SPE rather than corrupt data.
            ctr.overflowed = true;
            st.cursor = 0;
            co_return;
        }
        // Flight-recorder mode: wrap to the start of the arena.
        st.arena_cursor = 0;
    }
    if (cfg_.wrap_arena) {
        // Drop any previously-flushed segment this write overwrites;
        // the surviving segments are the most recent window.
        const std::uint64_t lo = st.arena_cursor;
        const std::uint64_t hi = st.arena_cursor + bytes;
        auto overlaps = [&](const std::pair<std::uint64_t,
                                            std::uint32_t>& seg) {
            const bool hit = seg.first < hi && lo < seg.first + seg.second;
            if (hit)
                ctr.dropped += seg.second / sizeof(Record);
            return hit;
        };
        st.segments.erase(std::remove_if(st.segments.begin(),
                                         st.segments.end(), overlaps),
                          st.segments.end());
    }

    // With one tag for all trace flushes, wait for the *previous*
    // flush before issuing this one; in double-buffered mode that
    // flush has had a whole half-fill time to complete, so this wait
    // is usually zero — exactly the design point D1 ablates.
    const Tick t0 = sys_.engine().now();
    co_await drainFlushes(spe);

    const EffAddr dst = st.arena_base + st.arena_cursor;
    st.segments.emplace_back(st.arena_cursor, bytes);
    st.arena_cursor += bytes;

    // Charge the DMA setup (channel writes) and enqueue the real PUT.
    spu.stats().tracer_cycles += cfg_.flush_issue_cost;
    co_await sys_.engine().delay(cfg_.flush_issue_cost);

    sim::MfcCommand put;
    put.op = sim::MfcOpcode::Put;
    put.ls = st.buf_base + st.half * cfg_.spu_buffer_bytes;
    put.ea = dst;
    put.size = bytes;
    put.tag = cfg_.trace_tag;
    co_await spu.mfc().enqueueSpu(put);
    st.outstanding[st.half] = true;

    ctr.flushes += 1;
    ctr.bytes_flushed += bytes;
    st.have_flush_marker = true;
    st.marker_records = st.cursor;
    st.marker_wait = sys_.engine().now() - t0 - cfg_.flush_issue_cost;

    if (cfg_.double_buffered)
        st.half ^= 1;
    st.cursor = 0;

    if (final_flush || !cfg_.double_buffered)
        co_await drainFlushes(spe);
}

CoTask<void>
Pdt::recordSpu(std::uint32_t spe, const ApiEvent& ev)
{
    SpuState& st = spu_state_[spe];
    sim::Spu& spu = sys_.machine().spe(spe);
    auto& ctr = stats_.spu[spe];

    const bool spe_enabled = (cfg_.spe_mask & (1u << spe)) != 0;
    const bool enabled = spe_enabled && groupEnabled(ev.op) && !ctr.overflowed;

    if (!st.initialized && ev.op == ApiOp::SpuStart) {
        st.initialized = true;
        st.half = 0;
        st.cursor = 0;
    }

    // A decrementer *write* rebases the SPU's clock and invalidates
    // the current sync point; re-pin it before recording anything
    // else (even when the DECREMENTER group is filtered — the write
    // still happened), or every later timestamp on this SPE
    // reconstructs as garbage.
    if (ev.op == ApiOp::SpuDecrWrite && spe_enabled && !ctr.overflowed) {
        appendToHalf(spe, makeSpuSync(spe));
        spu.stats().tracer_cycles += cfg_.spu_record_cost;
        co_await sys_.engine().delay(cfg_.spu_record_cost);
        if (st.cursor >= cfg_.recordsPerHalf())
            co_await flushHalf(spe, false);
    }

    if (!enabled) {
        // Filtered events still pay the enabled-check.
        if (ctr.overflowed && spe_enabled && groupEnabled(ev.op))
            ctr.dropped += 1;
        else
            ctr.filtered += 1;
        spu.stats().tracer_cycles += cfg_.filtered_check_cost;
        co_await sys_.engine().delay(cfg_.filtered_check_cost);
    } else {
        appendToHalf(spe, makeSpuRecord(spe, ev));
        ctr.events += 1;
        spu.stats().tracer_cycles += cfg_.spu_record_cost;
        co_await sys_.engine().delay(cfg_.spu_record_cost);

        if (st.cursor >= cfg_.recordsPerHalf())
            co_await flushHalf(spe, false);
    }

    // Program end: push out whatever remains, even if the stop event
    // itself was filtered.
    if (ev.op == ApiOp::SpuStop)
        co_await flushHalf(spe, true);
}

CoTask<void>
Pdt::recordPpe(const ApiEvent& ev)
{
    if (!cfg_.trace_ppe || !groupEnabled(ev.op)) {
        stats_.ppe_filtered += 1;
        stats_.ppe_tracer_cycles += cfg_.filtered_check_cost;
        co_await sys_.engine().delay(cfg_.filtered_check_cost);
        co_return;
    }

    const std::uint64_t tb = sys_.machine().readTimebase();

    if (ppe_records_.empty() || ppe_since_sync_ >= cfg_.ppe_sync_interval) {
        Record sync{};
        sync.kind = trace::kSyncRecord;
        sync.core = 0;
        sync.timestamp = static_cast<std::uint32_t>(tb);
        sync.a = sync.timestamp;
        sync.b = tb;
        ppe_records_.push_back(sync);
        stats_.ppe_records += 1;
        ppe_since_sync_ = 0;
    }

    Record rec;
    rec.kind = static_cast<std::uint8_t>(ev.op);
    rec.phase = static_cast<std::uint8_t>(ev.phase);
    rec.core = 0;
    rec.timestamp = static_cast<std::uint32_t>(tb);
    rec.a = ev.a;
    rec.b = ev.b;
    rec.c = static_cast<std::uint32_t>(ev.c);
    rec.d = static_cast<std::uint32_t>(ev.d);
    ppe_records_.push_back(rec);
    stats_.ppe_records += 1;
    stats_.ppe_events += 1;
    ppe_since_sync_ += 1;

    stats_.ppe_tracer_cycles += cfg_.ppe_record_cost;
    co_await sys_.engine().delay(cfg_.ppe_record_cost);
}

CoTask<void>
Pdt::onApiEvent(const ApiEvent& ev)
{
    if (ev.core.isPpe())
        return recordPpe(ev);
    return recordSpu(ev.core.speIndex(), ev);
}

trace::TraceData
Pdt::finalize() const
{
    trace::TraceData out;
    out.header.num_spes = sys_.numSpes();
    out.header.core_hz = sys_.config().core_hz;
    out.header.timebase_divider = sys_.config().timebase_divider;

    out.spe_programs.resize(sys_.numSpes());
    for (std::uint32_t i = 0; i < sys_.numSpes(); ++i)
        out.spe_programs[i] = sys_.programName(i);

    // PPE stream first.
    out.records = ppe_records_;

    // Then each SPE's flushed segments, parsed back out of simulated
    // main storage (the DMA really moved these bytes).
    for (std::uint32_t i = 0; i < sys_.numSpes(); ++i) {
        const SpuState& st = spu_state_[i];
        for (const auto& [offset, bytes] : st.segments) {
            const std::uint32_t n_recs =
                bytes / static_cast<std::uint32_t>(sizeof(Record));
            std::vector<Record> chunk(n_recs);
            sys_.machine().memory().read(st.arena_base + offset,
                                         chunk.data(), bytes);
            out.records.insert(out.records.end(), chunk.begin(), chunk.end());
        }
    }

    out.header.record_count = out.records.size();
    return out;
}

} // namespace cell::pdt
