/**
 * @file
 * PDT tracer implementation.
 */

#include "pdt/tracer.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

namespace cell::pdt {

using rt::ApiEvent;
using rt::ApiOp;
using rt::ApiPhase;
using sim::CoTask;
using sim::EffAddr;
using sim::LsAddr;
using sim::Tick;
using trace::Record;

Pdt::Pdt(rt::CellSystem& sys, PdtConfig cfg) : sys_(sys), cfg_(cfg)
{
    cfg_.validate();

    const std::uint32_t n = sys_.numSpes();
    spu_state_.resize(n);
    stats_.spu.resize(n);

    // Reserve LS space for the trace buffers at the top of each SPE's
    // local store (the real tool linked its buffers into the image).
    const std::uint32_t halves = cfg_.double_buffered ? 2 : 1;
    const std::uint32_t reserve = halves * cfg_.spu_buffer_bytes;
    const std::uint32_t limit =
        (sim::kLocalStoreSize - reserve) & ~15u; // 16-byte aligned
    sys_.setSpuLsLimit(limit);

    for (std::uint32_t i = 0; i < n; ++i) {
        spu_state_[i].buf_base = limit;
        spu_state_[i].arena_base =
            sys_.alloc(cfg_.arena_bytes_per_spe, 128);
    }

    sys_.setHook(this);
    attached_ = true;
}

Pdt::~Pdt()
{
    detach();
}

void
Pdt::detach()
{
    if (attached_) {
        sys_.setHook(nullptr);
        sys_.setSpuLsLimit(sim::kLocalStoreSize);
        attached_ = false;
    }
}

std::uint32_t
Pdt::spuTimestamp(std::uint32_t spe) const
{
    sim::Spu& spu = sys_.machine().spe(spe);
    return spu.decrementer().read(sys_.engine().now());
}

Record
Pdt::makeSpuRecord(std::uint32_t spe, const ApiEvent& ev) const
{
    Record rec;
    rec.kind = static_cast<std::uint8_t>(ev.op);
    rec.phase = static_cast<std::uint8_t>(ev.phase);
    rec.core = static_cast<std::uint16_t>(ev.core.value);
    rec.timestamp = spuTimestamp(spe);
    rec.a = ev.a;
    rec.b = ev.b;
    rec.c = static_cast<std::uint32_t>(ev.c);
    rec.d = static_cast<std::uint32_t>(ev.d);
    return rec;
}

Record
Pdt::makeSpuSync(std::uint32_t spe) const
{
    Record rec{};
    rec.kind = trace::kSyncRecord;
    rec.phase = trace::kPhaseBegin;
    rec.core = static_cast<std::uint16_t>(spe + 1);
    rec.timestamp = spuTimestamp(spe);
    rec.a = rec.timestamp;
    rec.b = sys_.machine().readTimebase();
    return rec;
}

void
Pdt::appendToHalf(std::uint32_t spe, Record rec)
{
    SpuState& st = spu_state_[spe];
    sim::LocalStore& ls = sys_.machine().spe(spe).localStore();
    auto& ctr = stats_.spu[spe];

    auto put = [&](const Record& r) {
        const LsAddr addr = st.buf_base + st.half * cfg_.spu_buffer_bytes +
                            st.cursor * static_cast<std::uint32_t>(sizeof(Record));
        ls.write(addr, &r, sizeof(Record));
        st.cursor += 1;
        ctr.records += 1;
        if (r.kind < trace::kSyncRecord)
            st.cursor_events += 1;
    };

    if (st.cursor == 0) {
        // Fresh half: sync record first, then a marker describing the
        // previous flush (if any), then a drop marker claiming any
        // events lost since the last marker that made it out.
        put(makeSpuSync(spe));
        if (st.have_flush_marker) {
            Record marker{};
            marker.kind = trace::kFlushRecord;
            marker.core = static_cast<std::uint16_t>(spe + 1);
            marker.timestamp = spuTimestamp(spe);
            marker.a = st.marker_records;
            marker.b = st.marker_wait;
            put(marker);
            st.have_flush_marker = false;
        }
        if (st.pending_drops > 0) {
            Record gap{};
            gap.kind = trace::kDropRecord;
            gap.core = static_cast<std::uint16_t>(spe + 1);
            gap.timestamp = spuTimestamp(spe);
            gap.a = st.pending_drops;
            gap.b = ctr.dropped;
            put(gap);
            // The claim is provisional: it returns to pending_drops if
            // this half is discarded instead of flushed.
            st.half_claimed += st.pending_drops;
            st.pending_drops = 0;
        }
    }
    put(rec);
}

CoTask<void>
Pdt::drainFlushes(std::uint32_t spe)
{
    SpuState& st = spu_state_[spe];
    if (!st.outstanding[0] && !st.outstanding[1])
        co_return;
    sim::Spu& spu = sys_.machine().spe(spe);
    const Tick t0 = sys_.engine().now();
    co_await spu.mfc().waitTagStatusAll(1u << cfg_.trace_tag);
    const Tick waited = sys_.engine().now() - t0;
    stats_.spu[spe].flush_wait_cycles += waited;
    spu.stats().tracer_cycles += waited;
    st.outstanding[0] = false;
    st.outstanding[1] = false;
}

CoTask<void>
Pdt::flushHalf(std::uint32_t spe, bool final_flush)
{
    SpuState& st = spu_state_[spe];
    sim::Spu& spu = sys_.machine().spe(spe);
    auto& ctr = stats_.spu[spe];

    if (st.cursor == 0) {
        if (final_flush)
            co_await drainFlushes(spe);
        co_return;
    }

    const std::uint32_t bytes =
        st.cursor * static_cast<std::uint32_t>(sizeof(Record));
    const OverflowPolicy policy = cfg_.effectivePolicy();

    bool room = arenaRoom(spe, bytes);
    if (!room && policy == OverflowPolicy::BlockAndFlush) {
        // Bounded retry with backoff: each round charges tracer time
        // on the SPU (the application stalls — that's the price of
        // this policy) and re-checks; injected arena exhaustion is
        // windowed on attempts, so waiting can genuinely succeed.
        for (std::uint32_t r = 0; r < cfg_.block_max_retries && !room; ++r) {
            ctr.block_retries += 1;
            const Tick w0 = sys_.engine().now();
            co_await drainFlushes(spe);
            spu.stats().tracer_cycles += cfg_.block_backoff_cycles;
            co_await sys_.engine().delay(cfg_.block_backoff_cycles);
            ctr.flush_wait_cycles += sys_.engine().now() - w0;
            room = arenaRoom(spe, bytes);
        }
    }
    if (!room) {
        ctr.failed_flushes += 1;
        if (policy == OverflowPolicy::Stop) {
            // Stop tracing this SPE rather than corrupt data; the
            // discarded half and every later event count as dropped.
            ctr.overflowed = true;
            dropCurrentHalf(spe);
            co_return;
        }
        // DropWithMarker, exhausted BlockAndFlush, and WrapOldest
        // under injected exhaustion all shed this half and note the
        // loss for the next drop marker.
        dropCurrentHalf(spe);
        co_return;
    }
    if (policy == OverflowPolicy::WrapOldest) {
        if (st.arena_cursor + bytes > cfg_.arena_bytes_per_spe) {
            // Flight-recorder mode: wrap to the start of the arena.
            st.arena_cursor = 0;
        }
        // Drop any previously-flushed segment this write overwrites;
        // the surviving segments are the most recent window. Lost
        // events (and any drop marker the segment carried) go back
        // into the pending-drop accounting.
        const std::uint64_t lo = st.arena_cursor;
        const std::uint64_t hi = st.arena_cursor + bytes;
        auto overlaps = [&](const Segment& seg) {
            const bool hit = seg.offset < hi && lo < seg.offset + seg.bytes;
            if (hit) {
                ctr.dropped += seg.events;
                st.pending_drops += seg.events + seg.marker_drops;
            }
            return hit;
        };
        st.segments.erase(std::remove_if(st.segments.begin(),
                                         st.segments.end(), overlaps),
                          st.segments.end());
    }

    // With one tag for all trace flushes, wait for the *previous*
    // flush before issuing this one; in double-buffered mode that
    // flush has had a whole half-fill time to complete, so this wait
    // is usually zero — exactly the design point D1 ablates.
    const Tick t0 = sys_.engine().now();
    co_await drainFlushes(spe);

    const EffAddr dst = st.arena_base + st.arena_cursor;
    st.segments.push_back(
        Segment{st.arena_cursor, bytes, st.cursor_events, st.half_claimed});
    st.half_claimed = 0;
    st.arena_cursor += bytes;

    // Charge the DMA setup (channel writes) and enqueue the real PUT.
    spu.stats().tracer_cycles += cfg_.flush_issue_cost;
    co_await sys_.engine().delay(cfg_.flush_issue_cost);

    sim::MfcCommand put;
    put.op = sim::MfcOpcode::Put;
    put.ls = st.buf_base + st.half * cfg_.spu_buffer_bytes;
    put.ea = dst;
    put.size = bytes;
    put.tag = cfg_.trace_tag;
    co_await spu.mfc().enqueueSpu(put);
    st.outstanding[st.half] = true;

    ctr.flushes += 1;
    ctr.bytes_flushed += bytes;
    st.have_flush_marker = true;
    st.marker_records = st.cursor;
    st.marker_wait = sys_.engine().now() - t0 - cfg_.flush_issue_cost;

    if (cfg_.double_buffered)
        st.half ^= 1;
    st.cursor = 0;
    st.cursor_events = 0;
    assert(dropAccountingConsistent(spe));

    if (final_flush || !cfg_.double_buffered)
        co_await drainFlushes(spe);
}

bool
Pdt::arenaRoom(std::uint32_t spe, std::uint32_t bytes)
{
    SpuState& st = spu_state_[spe];
    const std::uint64_t attempt = st.flush_attempts++;
    sim::FaultInjector& faults = sys_.machine().faults();
    if (faults.enabled() && faults.arenaExhausted(spe, attempt))
        return false;
    if (cfg_.effectivePolicy() == OverflowPolicy::WrapOldest)
        return true; // wrapping makes room by overwriting
    return st.arena_cursor + bytes <= cfg_.arena_bytes_per_spe;
}

void
Pdt::dropCurrentHalf(std::uint32_t spe)
{
    SpuState& st = spu_state_[spe];
    auto& ctr = stats_.spu[spe];
    ctr.dropped += st.cursor_events;
    // Lost events join the pending pool; a drop marker already written
    // into this (now discarded) half returns its claim too.
    st.pending_drops += st.cursor_events + st.half_claimed;
    st.half_claimed = 0;
    st.cursor = 0;
    st.cursor_events = 0;
    assert(dropAccountingConsistent(spe));
}

bool
Pdt::dropAccountingConsistent(std::uint32_t spe) const
{
    const SpuState& st = spu_state_[spe];
    std::uint64_t claimed = st.pending_drops + st.half_claimed;
    for (const Segment& seg : st.segments)
        claimed += seg.marker_drops;
    return claimed == stats_.spu[spe].dropped;
}

CoTask<void>
Pdt::recordSpu(std::uint32_t spe, const ApiEvent& ev)
{
    SpuState& st = spu_state_[spe];
    sim::Spu& spu = sys_.machine().spe(spe);
    auto& ctr = stats_.spu[spe];

    const bool spe_enabled = (cfg_.spe_mask & (1u << spe)) != 0;
    const bool enabled = spe_enabled && groupEnabled(ev.op) && !ctr.overflowed;

    if (!st.initialized && ev.op == ApiOp::SpuStart) {
        st.initialized = true;
        st.half = 0;
        st.cursor = 0;
    }

    // A decrementer *write* rebases the SPU's clock and invalidates
    // the current sync point; re-pin it before recording anything
    // else (even when the DECREMENTER group is filtered — the write
    // still happened), or every later timestamp on this SPE
    // reconstructs as garbage.
    if (ev.op == ApiOp::SpuDecrWrite && spe_enabled && !ctr.overflowed) {
        appendToHalf(spe, makeSpuSync(spe));
        spu.stats().tracer_cycles += cfg_.spu_record_cost;
        co_await sys_.engine().delay(cfg_.spu_record_cost);
        if (st.cursor >= cfg_.recordsPerHalf())
            co_await flushHalf(spe, false);
    }

    if (!enabled) {
        // Filtered events still pay the enabled-check.
        if (ctr.overflowed && spe_enabled && groupEnabled(ev.op)) {
            // Lost to the Stop policy; the finalize footer's drop
            // marker accounts for these (same pool as discarded-half
            // events, so totals stay exact).
            ctr.dropped += 1;
            st.pending_drops += 1;
        } else {
            ctr.filtered += 1;
        }
        spu.stats().tracer_cycles += cfg_.filtered_check_cost;
        co_await sys_.engine().delay(cfg_.filtered_check_cost);
    } else {
        appendToHalf(spe, makeSpuRecord(spe, ev));
        ctr.events += 1;
        spu.stats().tracer_cycles += cfg_.spu_record_cost;
        co_await sys_.engine().delay(cfg_.spu_record_cost);

        if (st.cursor >= cfg_.recordsPerHalf())
            co_await flushHalf(spe, false);
    }

    // Program end: push out whatever remains, even if the stop event
    // itself was filtered.
    if (ev.op == ApiOp::SpuStop)
        co_await flushHalf(spe, true);
}

CoTask<void>
Pdt::recordPpe(const ApiEvent& ev)
{
    if (!cfg_.trace_ppe || !groupEnabled(ev.op)) {
        stats_.ppe_filtered += 1;
        stats_.ppe_tracer_cycles += cfg_.filtered_check_cost;
        co_await sys_.engine().delay(cfg_.filtered_check_cost);
        co_return;
    }

    const std::uint64_t tb = sys_.machine().readTimebase();

    if (ppe_records_.empty() || ppe_since_sync_ >= cfg_.ppe_sync_interval) {
        Record sync{};
        sync.kind = trace::kSyncRecord;
        sync.core = 0;
        sync.timestamp = static_cast<std::uint32_t>(tb);
        sync.a = sync.timestamp;
        sync.b = tb;
        ppe_records_.push_back(sync);
        stats_.ppe_records += 1;
        ppe_since_sync_ = 0;
    }

    Record rec;
    rec.kind = static_cast<std::uint8_t>(ev.op);
    rec.phase = static_cast<std::uint8_t>(ev.phase);
    rec.core = 0;
    rec.timestamp = static_cast<std::uint32_t>(tb);
    rec.a = ev.a;
    rec.b = ev.b;
    rec.c = static_cast<std::uint32_t>(ev.c);
    rec.d = static_cast<std::uint32_t>(ev.d);
    ppe_records_.push_back(rec);
    stats_.ppe_records += 1;
    stats_.ppe_events += 1;
    ppe_since_sync_ += 1;

    stats_.ppe_tracer_cycles += cfg_.ppe_record_cost;
    co_await sys_.engine().delay(cfg_.ppe_record_cost);
}

CoTask<void>
Pdt::onApiEvent(const ApiEvent& ev)
{
    if (ev.core.isPpe())
        return recordPpe(ev);
    return recordSpu(ev.core.speIndex(), ev);
}

trace::TraceData
Pdt::finalize() const
{
    trace::TraceData out;
    out.header.num_spes = sys_.numSpes();
    out.header.core_hz = sys_.config().core_hz;
    out.header.timebase_divider = sys_.config().timebase_divider;

    out.spe_programs.resize(sys_.numSpes());
    for (std::uint32_t i = 0; i < sys_.numSpes(); ++i)
        out.spe_programs[i] = sys_.programName(i);

    // PPE stream first.
    out.records = ppe_records_;

    // Then each SPE's flushed segments, parsed back out of simulated
    // main storage (the DMA really moved these bytes).
    for (std::uint32_t i = 0; i < sys_.numSpes(); ++i) {
        const SpuState& st = spu_state_[i];
        for (const Segment& seg : st.segments) {
            const std::uint32_t n_recs =
                seg.bytes / static_cast<std::uint32_t>(sizeof(Record));
            std::vector<Record> chunk(n_recs);
            sys_.machine().memory().read(st.arena_base + seg.offset,
                                         chunk.data(), seg.bytes);
            out.records.insert(out.records.end(), chunk.begin(), chunk.end());
        }
        // Drops that never got a marker into a flushed half (trailing
        // losses, Stop-policy tails) are declared in a footer, so the
        // markers in any trace sum to exactly the dropped counter.
        const std::uint64_t unclaimed = st.pending_drops + st.half_claimed;
        if (unclaimed > 0) {
            out.records.push_back(makeSpuSync(i));
            Record gap{};
            gap.kind = trace::kDropRecord;
            gap.core = static_cast<std::uint16_t>(i + 1);
            gap.timestamp = spuTimestamp(i);
            gap.a = unclaimed;
            gap.b = stats_.spu[i].dropped;
            out.records.push_back(gap);
        }
    }

    out.header.record_count = out.records.size();
    return out;
}

} // namespace cell::pdt
