/**
 * @file
 * PDT — the Performance Debugging Tool (the paper's contribution).
 *
 * Architecture, mirroring the ISPASS'08 description:
 *
 *  - The runtime's API layer is instrumented (rt::ApiHook): every SDK
 *    call emits Begin/End events.
 *  - On each SPE, events are formatted into 32-byte records stamped
 *    with the local decrementer and stored into a small local-store
 *    buffer (two halves, double-buffered). When a half fills it is
 *    flushed to a per-SPE main-storage arena with a real MFC DMA on a
 *    dedicated tag group; meanwhile recording continues into the other
 *    half. Each half begins with a clock-sync record (decrementer ↔
 *    64-bit timebase) so the analyzer can rebuild a global timeline,
 *    and a flush-marker record documenting the previous flush.
 *  - On the PPE, events are appended to a memory buffer directly and
 *    stamped with the timebase (low 32 bits + periodic sync records).
 *  - Event groups and SPE participation are runtime-configurable; a
 *    filtered-out event costs only a cheap enabled-check.
 *
 * Everything the tracer does costs simulated time on the traced core,
 * so tracing perturbs the application exactly as it did on hardware —
 * that perturbation is the subject of the paper's overhead evaluation.
 */

#ifndef CELL_PDT_TRACER_H
#define CELL_PDT_TRACER_H

#include <cstdint>
#include <vector>

#include "pdt/config.h"
#include "rt/system.h"
#include "trace/format.h"

namespace cell::pdt {

/** Per-SPE tracer counters. */
struct SpuTracerCounters
{
    std::uint64_t records = 0;      ///< records written (incl. sync/flush)
    std::uint64_t events = 0;       ///< API events recorded
    std::uint64_t filtered = 0;     ///< events skipped by group/SPE filter
    /** API events lost — to arena overflow, discarded halves, or
     *  overwritten flight-recorder windows. Exact: every lost event is
     *  counted exactly once, and the drop markers in the final trace
     *  sum to exactly this value. */
    std::uint64_t dropped = 0;
    std::uint64_t flushes = 0;
    std::uint64_t failed_flushes = 0; ///< flush attempts with no arena room
    std::uint64_t bytes_flushed = 0;
    std::uint64_t flush_wait_cycles = 0; ///< stalls waiting for a free half
    std::uint64_t block_retries = 0; ///< BlockAndFlush retry rounds taken
    bool overflowed = false;
};

/** Whole-tool counters. */
struct PdtStats
{
    std::vector<SpuTracerCounters> spu; ///< indexed by SPE
    std::uint64_t ppe_records = 0;
    std::uint64_t ppe_events = 0;
    std::uint64_t ppe_filtered = 0;
    std::uint64_t ppe_tracer_cycles = 0;

    std::uint64_t totalSpuRecords() const
    {
        std::uint64_t n = 0;
        for (const auto& s : spu)
            n += s.records;
        return n;
    }
    std::uint64_t totalRecords() const { return totalSpuRecords() + ppe_records; }
};

/**
 * The tracer. Construct with the system to instrument; it installs
 * itself as the runtime hook and reserves local-store space for its
 * buffers. After the simulation finishes, finalize() assembles the
 * trace (parsing the flushed record bytes back out of simulated main
 * storage) for the analyzer or for trace::writeFile.
 */
class Pdt : public rt::ApiHook
{
  public:
    Pdt(rt::CellSystem& sys, PdtConfig cfg = {});
    ~Pdt() override;

    Pdt(const Pdt&) = delete;
    Pdt& operator=(const Pdt&) = delete;

    /** rt::ApiHook */
    sim::CoTask<void> onApiEvent(const rt::ApiEvent& ev) override;

    /**
     * Build the trace from everything recorded so far. Call after the
     * simulation has quiesced (all flush DMAs complete). Record order
     * in the file is: PPE stream, then each SPE's stream; the analyzer
     * orders globally by reconstructed time.
     */
    trace::TraceData finalize() const;

    const PdtConfig& config() const { return cfg_; }
    const PdtStats& stats() const { return stats_; }

    /** Drop-accounting invariant for one SPE: unclaimed + half-claimed
     *  + in-segment marker sums == the dropped counter. Always true;
     *  exposed so tests can assert it at any point. */
    bool dropAccountingConsistent(std::uint32_t spe) const;

    /** Detach from the system (restores a null hook). */
    void detach();

  private:
    /** One flushed chunk of the arena. */
    struct Segment
    {
        std::uint64_t offset = 0;   ///< arena offset in bytes
        std::uint32_t bytes = 0;
        /** API-event records inside (excludes sync/flush/drop records). */
        std::uint32_t events = 0;
        /** Drops claimed by the kDropRecord this segment carries. */
        std::uint64_t marker_drops = 0;
    };

    struct SpuState
    {
        bool initialized = false;
        sim::LsAddr buf_base = 0;   ///< LS base of half 0
        std::uint32_t half = 0;     ///< half being filled
        std::uint32_t cursor = 0;   ///< records used in current half
        /** API-event records in the current half (kind < 200). */
        std::uint32_t cursor_events = 0;
        bool outstanding[2] = {false, false}; ///< flush DMA in flight
        sim::EffAddr arena_base = 0;
        std::uint64_t arena_cursor = 0; ///< bytes used
        /** Flushed chunks, in write order. */
        std::vector<Segment> segments;
        /** Pending flush-marker payload for the next half. */
        bool have_flush_marker = false;
        std::uint64_t marker_records = 0;
        std::uint64_t marker_wait = 0;
        /** Flush attempts so far (feeds fault-injected exhaustion). */
        std::uint64_t flush_attempts = 0;
        /** Dropped events not yet claimed by an in-trace drop marker. */
        std::uint64_t pending_drops = 0;
        /** Drops claimed by the marker in the half being filled; they
         *  return to pending_drops if this half is discarded. */
        std::uint64_t half_claimed = 0;
    };

    sim::CoTask<void> recordSpu(std::uint32_t spe, const rt::ApiEvent& ev);
    sim::CoTask<void> recordPpe(const rt::ApiEvent& ev);

    /** Write one record into the current half (handles the sync/flush
     *  preamble when the half is fresh). Functional LS write. */
    void appendToHalf(std::uint32_t spe, trace::Record rec);

    /** Issue the DMA flush of the current half and rotate halves. */
    sim::CoTask<void> flushHalf(std::uint32_t spe, bool final_flush);

    /** Wait until no trace-flush DMA is outstanding. */
    sim::CoTask<void> drainFlushes(std::uint32_t spe);

    /** One flush attempt's arena-room check (consults fault injection). */
    bool arenaRoom(std::uint32_t spe, std::uint32_t bytes);

    /** Discard the current half, moving its events into the drop
     *  accounting (dropped + pending_drops). */
    void dropCurrentHalf(std::uint32_t spe);

    trace::Record makeSpuRecord(std::uint32_t spe, const rt::ApiEvent& ev) const;
    trace::Record makeSpuSync(std::uint32_t spe) const;
    std::uint32_t spuTimestamp(std::uint32_t spe) const;

    bool groupEnabled(rt::ApiOp op) const
    {
        return (cfg_.groups & groupBit(rt::apiOpGroup(op))) != 0;
    }

    rt::CellSystem& sys_;
    PdtConfig cfg_;
    std::vector<SpuState> spu_state_;
    std::vector<trace::Record> ppe_records_;
    std::uint32_t ppe_since_sync_ = 0;
    PdtStats stats_;
    bool attached_ = false;
};

} // namespace cell::pdt

#endif // CELL_PDT_TRACER_H
