/**
 * @file
 * PDT runtime configuration.
 *
 * The real tool was configured through an XML file + environment
 * variables choosing which event groups to record, per-SPE enables,
 * and buffer sizes. This reproduction keeps the same knobs as a plain
 * struct (and a tiny key=value parser for the examples).
 */

#ifndef CELL_PDT_CONFIG_H
#define CELL_PDT_CONFIG_H

#include <cstdint>
#include <string>

#include "rt/hooks.h"
#include "sim/types.h"

namespace cell::pdt {

/** Bitmask over rt::ApiGroup. */
using GroupMask = std::uint32_t;

constexpr GroupMask kAllGroups = (1u << rt::kNumApiGroups) - 1;

constexpr GroupMask
groupBit(rt::ApiGroup g)
{
    return 1u << static_cast<unsigned>(g);
}

/**
 * What the tracer does when a buffer half cannot be flushed (the
 * main-storage arena is full, or fault injection says the trace
 * consumer has fallen behind).
 */
enum class OverflowPolicy : std::uint8_t
{
    /** Stop tracing this SPE entirely (legacy default). The trace ends
     *  at the overflow point; later events count as dropped. */
    Stop,
    /** Discard the unflushable half, keep tracing, and emit a
     *  kDropRecord in the next half that does flush, carrying the
     *  exact number of events lost. */
    DropWithMarker,
    /** Retry the flush with bounded backoff (each retry charges tracer
     *  cycles on the SPU); fall back to drop-with-marker when the
     *  retries are exhausted. */
    BlockAndFlush,
    /** Flight recorder: wrap the arena and overwrite the oldest
     *  flushes; the trace keeps the most recent window. Overwritten
     *  events are reported through drop markers too. */
    WrapOldest,
};

/** Printable policy name ("stop", "drop", "block", "wrap"). */
const char* overflowPolicyName(OverflowPolicy p);

/** Tracer configuration. */
struct PdtConfig
{
    /** Which event groups to record. */
    GroupMask groups = kAllGroups;
    /** Which SPEs to trace (bit i = SPE i). PPE is always traced when
     *  any group is enabled. */
    std::uint32_t spe_mask = 0xFFFF'FFFFu;
    /** Record PPE-side events at all. */
    bool trace_ppe = true;

    /** Bytes per SPE trace-buffer *half*; two halves when
     *  double_buffered. Must be a multiple of 32 and <= 16 KiB. */
    std::uint32_t spu_buffer_bytes = 4096;
    /** Double-buffer the SPU trace buffer (the paper's design); false
     *  = single buffer with a blocking flush (ablation D1). */
    bool double_buffered = true;
    /** MFC tag group reserved for trace-flush DMA. */
    sim::TagId trace_tag = 31;

    /** Main-storage arena bytes per SPE for flushed records. */
    std::uint64_t arena_bytes_per_spe = 16ull << 20;
    /** Flight-recorder mode: when the arena fills, wrap around and
     *  overwrite the oldest flushes instead of stopping — the trace
     *  then holds the most recent window of events. Legacy alias for
     *  overflow_policy = WrapOldest. */
    bool wrap_arena = false;

    /** What to do when a buffer half cannot be flushed. */
    OverflowPolicy overflow_policy = OverflowPolicy::Stop;
    /** BlockAndFlush: flush retries before falling back to dropping. */
    std::uint32_t block_max_retries = 8;
    /** BlockAndFlush: SPU cycles charged (and waited) per retry. */
    std::uint32_t block_backoff_cycles = 2'000;

    /** The policy actually in force (wrap_arena promotes Stop to
     *  WrapOldest so existing configs keep their behaviour). */
    OverflowPolicy effectivePolicy() const
    {
        if (wrap_arena && overflow_policy == OverflowPolicy::Stop)
            return OverflowPolicy::WrapOldest;
        return overflow_policy;
    }

    /** SPU cycles to format+store one record (incl. decrementer read). */
    std::uint32_t spu_record_cost = 40;
    /** SPU cycles for the enabled-check of a filtered-out event. */
    std::uint32_t filtered_check_cost = 4;
    /** SPU cycles to set up one flush DMA (channel writes). */
    std::uint32_t flush_issue_cost = 30;
    /** PPE cycles to record one event. */
    std::uint32_t ppe_record_cost = 24;
    /** Emit a PPE sync record every this many PPE records. */
    std::uint32_t ppe_sync_interval = 1024;

    /** Records per buffer half (derived). */
    std::uint32_t recordsPerHalf() const { return spu_buffer_bytes / 32; }

    /** Validate; @throws std::invalid_argument on bad values. */
    void validate() const;

    /**
     * Parse "key=value" lines (comments with '#') into a config, e.g.
     *   groups=DMA,MAILBOX
     *   buffer=8192
     *   double_buffer=0
     *   spes=0x0F
     *   overflow=drop        # stop | drop | block | wrap
     * Unknown keys throw. Returns the parsed config on top of @p base.
     */
    static PdtConfig parse(const std::string& text);
    static PdtConfig parse(const std::string& text, const PdtConfig& base);
};

} // namespace cell::pdt

#endif // CELL_PDT_CONFIG_H
