/**
 * @file
 * PdtConfig validation and key=value parsing.
 */

#include "pdt/config.h"

#include <sstream>
#include <stdexcept>

namespace cell::pdt {

const char*
overflowPolicyName(OverflowPolicy p)
{
    switch (p) {
      case OverflowPolicy::Stop: return "stop";
      case OverflowPolicy::DropWithMarker: return "drop";
      case OverflowPolicy::BlockAndFlush: return "block";
      case OverflowPolicy::WrapOldest: return "wrap";
    }
    return "?";
}

void
PdtConfig::validate() const
{
    if (spu_buffer_bytes == 0 || spu_buffer_bytes % 32 != 0)
        throw std::invalid_argument(
            "PdtConfig: spu_buffer_bytes must be a non-zero multiple of 32");
    if (spu_buffer_bytes > sim::kMaxDmaSize)
        throw std::invalid_argument(
            "PdtConfig: spu_buffer_bytes must not exceed one DMA (16 KiB)");
    if (recordsPerHalf() < 4)
        throw std::invalid_argument(
            "PdtConfig: buffer half must hold at least 4 records "
            "(sync + flush marker + events)");
    if (trace_tag >= sim::kNumTagGroups)
        throw std::invalid_argument("PdtConfig: trace_tag out of range");
    if (arena_bytes_per_spe < spu_buffer_bytes)
        throw std::invalid_argument(
            "PdtConfig: arena smaller than one buffer half");
    if (overflow_policy == OverflowPolicy::BlockAndFlush &&
        block_max_retries == 0) {
        throw std::invalid_argument(
            "PdtConfig: block policy needs at least one retry");
    }
}

namespace {

GroupMask
parseGroups(const std::string& value)
{
    if (value == "ALL")
        return kAllGroups;
    if (value == "NONE")
        return 0;
    GroupMask mask = 0;
    std::istringstream ss(value);
    std::string item;
    while (std::getline(ss, item, ',')) {
        bool found = false;
        for (unsigned g = 0; g < rt::kNumApiGroups; ++g) {
            if (item == rt::apiGroupName(static_cast<rt::ApiGroup>(g))) {
                mask |= 1u << g;
                found = true;
                break;
            }
        }
        if (!found)
            throw std::invalid_argument("PdtConfig: unknown group '" + item + "'");
    }
    return mask;
}

std::uint64_t
parseNumber(const std::string& value)
{
    return std::stoull(value, nullptr, 0); // handles 0x... too
}

OverflowPolicy
parsePolicy(const std::string& value)
{
    if (value == "stop") return OverflowPolicy::Stop;
    if (value == "drop") return OverflowPolicy::DropWithMarker;
    if (value == "block") return OverflowPolicy::BlockAndFlush;
    if (value == "wrap") return OverflowPolicy::WrapOldest;
    throw std::invalid_argument("PdtConfig: unknown overflow policy '" +
                                value + "'");
}

} // namespace

PdtConfig
PdtConfig::parse(const std::string& text)
{
    return parse(text, PdtConfig{});
}

PdtConfig
PdtConfig::parse(const std::string& text, const PdtConfig& base)
{
    PdtConfig cfg = base;
    std::istringstream ss(text);
    std::string line;
    while (std::getline(ss, line)) {
        const auto hash = line.find('#');
        if (hash != std::string::npos)
            line.erase(hash);
        // Trim whitespace.
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos)
            continue;
        const auto last = line.find_last_not_of(" \t\r");
        line = line.substr(first, last - first + 1);

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            throw std::invalid_argument("PdtConfig: expected key=value: " + line);
        const std::string key = line.substr(0, eq);
        const std::string value = line.substr(eq + 1);

        if (key == "groups") {
            cfg.groups = parseGroups(value);
        } else if (key == "spes") {
            cfg.spe_mask = static_cast<std::uint32_t>(parseNumber(value));
        } else if (key == "trace_ppe") {
            cfg.trace_ppe = parseNumber(value) != 0;
        } else if (key == "buffer") {
            cfg.spu_buffer_bytes = static_cast<std::uint32_t>(parseNumber(value));
        } else if (key == "double_buffer") {
            cfg.double_buffered = parseNumber(value) != 0;
        } else if (key == "arena") {
            cfg.arena_bytes_per_spe = parseNumber(value);
        } else if (key == "wrap") {
            cfg.wrap_arena = parseNumber(value) != 0;
        } else if (key == "overflow") {
            cfg.overflow_policy = parsePolicy(value);
        } else if (key == "block_retries") {
            cfg.block_max_retries = static_cast<std::uint32_t>(parseNumber(value));
        } else if (key == "block_backoff") {
            cfg.block_backoff_cycles =
                static_cast<std::uint32_t>(parseNumber(value));
        } else if (key == "record_cost") {
            cfg.spu_record_cost = static_cast<std::uint32_t>(parseNumber(value));
        } else {
            throw std::invalid_argument("PdtConfig: unknown key '" + key + "'");
        }
    }
    cfg.validate();
    return cfg;
}

} // namespace cell::pdt
