/**
 * @file
 * TA facade: run the full analysis pipeline on a trace and print the
 * tool's textual views (summary, stall breakdown, DMA report, event
 * counts) or export machine-readable CSV.
 */

#ifndef CELL_TA_ANALYZER_H
#define CELL_TA_ANALYZER_H

#include <iosfwd>
#include <string>

#include "ta/intervals.h"
#include "ta/model.h"
#include "ta/stats.h"
#include "trace/reader.h"

namespace cell::ta {

/** The complete analysis of one trace. */
struct Analysis
{
    TraceModel model;
    IntervalSet intervals;
    TraceStats stats;
};

/** Run model building, interval matching and statistics. @p lenient
 *  tolerates streams damaged by salvage (events whose sync record was
 *  lost are skipped, see TraceModel::leniencySkipped()). */
Analysis analyze(const trace::TraceData& trace, bool lenient = false);

/** Load a trace file and analyze it. */
Analysis analyzeFile(const std::string& path);

/** Load a (possibly damaged) trace file in salvage mode and analyze
 *  the recovered subset leniently. @p report receives what salvage
 *  had to skip. */
Analysis analyzeFileSalvage(const std::string& path,
                            trace::ReadReport& report);

/** One-paragraph overview: span, per-core record counts, utilization. */
void printSummary(std::ostream& os, const Analysis& a);

/** Per-SPE time breakdown table (compute / dma / waits), percentages. */
void printStallBreakdown(std::ostream& os, const Analysis& a);

/** Per-SPE DMA statistics: commands, bytes, latency distribution. */
void printDmaReport(std::ostream& os, const Analysis& a);

/** Text-bar histogram of DMA latencies, aggregated over SPEs. */
void printDmaHistogram(std::ostream& os, const Analysis& a);

/** Per-op event count table. */
void printEventCounts(std::ostream& os, const Analysis& a);

/** Tracing self-observation: flushes, flush waits, record volume. */
void printTracingReport(std::ostream& os, const Analysis& a);

/** Per-core event-loss table: recorded vs dropped events, drop
 *  markers, gap-spanning intervals, loss percentage. Prints a single
 *  "no event loss" line when the trace is complete. */
void printLossReport(std::ostream& os, const Analysis& a);

/** CSV: one row per SPE with the breakdown columns. */
void exportBreakdownCsv(std::ostream& os, const Analysis& a);

/** CSV: one row per interval (core,class,op,start_us,dur_us). */
void exportIntervalsCsv(std::ostream& os, const Analysis& a);

/** CSV: one row per DMA command with its observed completion
 *  (spe,op,ls,ea,size,tag,issue_us,latency_us,observed). */
void exportDmaTransfersCsv(std::ostream& os, const Analysis& a);

/** Every textual view and CSV export concatenated into one string —
 *  the canonical byte-compare artifact for the serial-vs-parallel
 *  differential tests and the committed golden-trace digests. */
std::string fullReport(const Analysis& a);

/** FNV-1a 64-bit hash (golden-trace report digests). */
std::uint64_t fnv1a64(const std::string& data);

} // namespace cell::ta

#endif // CELL_TA_ANALYZER_H
