/**
 * @file
 * TA facade: run the full analysis pipeline on a trace and print the
 * tool's textual views (summary, stall breakdown, DMA report, event
 * counts) or export machine-readable CSV.
 */

#ifndef CELL_TA_ANALYZER_H
#define CELL_TA_ANALYZER_H

#include <iosfwd>
#include <string>

#include "ta/intervals.h"
#include "ta/model.h"
#include "ta/stats.h"

namespace cell::ta {

/** The complete analysis of one trace. */
struct Analysis
{
    TraceModel model;
    IntervalSet intervals;
    TraceStats stats;
};

/** Run model building, interval matching and statistics. */
Analysis analyze(const trace::TraceData& trace);

/** Load a trace file and analyze it. */
Analysis analyzeFile(const std::string& path);

/** One-paragraph overview: span, per-core record counts, utilization. */
void printSummary(std::ostream& os, const Analysis& a);

/** Per-SPE time breakdown table (compute / dma / waits), percentages. */
void printStallBreakdown(std::ostream& os, const Analysis& a);

/** Per-SPE DMA statistics: commands, bytes, latency distribution. */
void printDmaReport(std::ostream& os, const Analysis& a);

/** Text-bar histogram of DMA latencies, aggregated over SPEs. */
void printDmaHistogram(std::ostream& os, const Analysis& a);

/** Per-op event count table. */
void printEventCounts(std::ostream& os, const Analysis& a);

/** Tracing self-observation: flushes, flush waits, record volume. */
void printTracingReport(std::ostream& os, const Analysis& a);

/** CSV: one row per SPE with the breakdown columns. */
void exportBreakdownCsv(std::ostream& os, const Analysis& a);

/** CSV: one row per interval (core,class,op,start_us,dur_us). */
void exportIntervalsCsv(std::ostream& os, const Analysis& a);

/** CSV: one row per DMA command with its observed completion
 *  (spe,op,ls,ea,size,tag,issue_us,latency_us,observed). */
void exportDmaTransfersCsv(std::ostream& os, const Analysis& a);

} // namespace cell::ta

#endif // CELL_TA_ANALYZER_H
