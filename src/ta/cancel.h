/**
 * @file
 * Cooperative cancellation for long-running analyses.
 *
 * A CancelToken couples an optional wall-clock deadline with an
 * optional external stop flag (e.g. a server's shutdown flag). Workers
 * poll it at natural work boundaries — per block in the indexed query
 * replay, per shard in the parallel pipeline — by calling checkpoint(),
 * which throws DeadlineExceeded once the token trips. The throw rides
 * the existing first-exception capture in WorkerPool, so a timed-out
 * parallel analysis drains its remaining shards through fast-failing
 * checkpoints and frees its workers instead of running to completion.
 *
 * Checks are cheap (one relaxed atomic load; a steady_clock read only
 * when a deadline is armed) and the token is safe to poll from many
 * threads concurrently. cancel() may race checkpoint() freely: the
 * only guarantee, and the only one needed, is that a tripped token
 * stays tripped.
 */

#ifndef CELL_TA_CANCEL_H
#define CELL_TA_CANCEL_H

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <string>

namespace cell::ta {

/** Thrown by CancelToken::checkpoint() when the token has tripped.
 *  Derives from std::runtime_error so existing catch sites treat it
 *  as a failed analysis; callers that care (the serve layer) catch it
 *  first and map it to a typed timeout response. */
class DeadlineExceeded : public std::runtime_error
{
  public:
    explicit DeadlineExceeded(const std::string& where)
        : std::runtime_error("deadline exceeded in " + where)
    {
    }
};

class CancelToken
{
  public:
    using Clock = std::chrono::steady_clock;

    /** A default token never trips. */
    CancelToken() = default;

    CancelToken(const CancelToken&) = delete;
    CancelToken& operator=(const CancelToken&) = delete;

    /** Arm a wall-clock deadline. */
    void setDeadline(Clock::time_point tp)
    {
        deadline_ = tp;
        has_deadline_ = true;
    }

    void setDeadlineAfter(std::chrono::milliseconds ms)
    {
        setDeadline(Clock::now() + ms);
    }

    /** Couple to an external stop flag (not owned; must outlive the
     *  token). A set flag trips the token on the next check. */
    void bindStopFlag(const std::atomic<bool>* flag) { stop_ = flag; }

    /** Trip the token explicitly. */
    void cancel() { cancelled_.store(true, std::memory_order_relaxed); }

    /** True once cancelled, the stop flag is set, or the deadline has
     *  passed. */
    bool expired() const
    {
        if (cancelled_.load(std::memory_order_relaxed))
            return true;
        if (stop_ && stop_->load(std::memory_order_relaxed))
            return true;
        return has_deadline_ && Clock::now() >= deadline_;
    }

    /** @throws DeadlineExceeded when expired(); @p where names the
     *  work site for the diagnostic. */
    void checkpoint(const char* where) const
    {
        if (expired())
            throw DeadlineExceeded(where);
    }

  private:
    std::atomic<bool> cancelled_{false};
    const std::atomic<bool>* stop_ = nullptr;
    bool has_deadline_ = false;
    Clock::time_point deadline_{};
};

} // namespace cell::ta

#endif // CELL_TA_CANCEL_H
