#include "ta/serve.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "ta/parallel.h"
#include "ta/profile.h"

namespace cell::ta::serve {

namespace {

// --- little-endian packing --------------------------------------------------

void
put8(std::vector<std::uint8_t>& v, std::uint8_t x)
{
    v.push_back(x);
}

void
put16(std::vector<std::uint8_t>& v, std::uint16_t x)
{
    v.push_back(static_cast<std::uint8_t>(x));
    v.push_back(static_cast<std::uint8_t>(x >> 8));
}

void
put32(std::vector<std::uint8_t>& v, std::uint32_t x)
{
    for (int i = 0; i < 4; ++i)
        v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

void
put64(std::vector<std::uint8_t>& v, std::uint64_t x)
{
    for (int i = 0; i < 8; ++i)
        v.push_back(static_cast<std::uint8_t>(x >> (8 * i)));
}

std::uint16_t
get16(const std::uint8_t* p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
get32(const std::uint8_t* p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t
get64(const std::uint8_t* p)
{
    return static_cast<std::uint64_t>(get32(p)) |
           (static_cast<std::uint64_t>(get32(p + 4)) << 32);
}

constexpr std::uint8_t kFlagSalvage = 0x1;
constexpr std::uint8_t kFlagWindowed = 0x2;

// --- socket helpers ---------------------------------------------------------

bool
sendAll(int fd, const std::uint8_t* p, std::size_t n)
{
    while (n > 0) {
        const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
        if (k < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        p += static_cast<std::size_t>(k);
        n -= static_cast<std::size_t>(k);
    }
    return true;
}

/** recv with a polling loop so @p stop can break a stalled read.
 *  Returns bytes read, 0 on EOF, -1 on error/stop. */
ssize_t
recvSome(int fd, std::uint8_t* buf, std::size_t cap,
         const std::atomic<bool>& stop)
{
    while (!stop.load(std::memory_order_relaxed)) {
        pollfd pfd{fd, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return -1;
        }
        if (pr == 0)
            continue; // timeout; re-check stop
        const ssize_t k = ::recv(fd, buf, cap, 0);
        if (k < 0 && errno == EINTR)
            continue;
        return k;
    }
    return -1;
}

std::uint64_t
splitmix64(std::uint64_t& state)
{
    state += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

} // namespace

// ---------------------------------------------------------------------------
// Protocol
// ---------------------------------------------------------------------------

const char*
opName(Op op)
{
    switch (op) {
        case Op::Ping: return "ping";
        case Op::Window: return "window";
        case Op::Profile: return "profile";
        case Op::Loss: return "loss";
        case Op::Stats: return "stats";
        case Op::ServerStats: return "server-stats";
        case Op::Shutdown: return "shutdown";
    }
    return "?";
}

const char*
statusName(Status s)
{
    switch (s) {
        case Status::Ok: return "OK";
        case Status::RetryAfter: return "RETRY_AFTER";
        case Status::Timeout: return "TIMEOUT";
        case Status::BadRequest: return "BAD_REQUEST";
        case Status::NotFound: return "NOT_FOUND";
        case Status::Error: return "ERROR";
        case Status::ShuttingDown: return "SHUTTING_DOWN";
    }
    return "?";
}

std::vector<std::uint8_t>
encodeRequest(const Request& req)
{
    std::vector<std::uint8_t> v;
    const std::size_t body = kRequestFixedBytes + req.name.size();
    v.reserve(8 + body);
    put32(v, kRequestMagic);
    put32(v, static_cast<std::uint32_t>(body));
    put8(v, static_cast<std::uint8_t>(req.op));
    std::uint8_t flags = 0;
    if (req.salvage)
        flags |= kFlagSalvage;
    if (req.windowed)
        flags |= kFlagWindowed;
    put8(v, flags);
    put16(v, req.buckets);
    put32(v, req.deadline_ms);
    put64(v, req.from);
    put64(v, req.to);
    put16(v, static_cast<std::uint16_t>(req.name.size()));
    v.insert(v.end(), req.name.begin(), req.name.end());
    return v;
}

Decode
decodeRequest(const std::uint8_t* data, std::size_t len, Request& out,
              std::size_t& consumed, std::string& error)
{
    consumed = 0;
    error.clear();
    if (len < 8)
        return Decode::NeedMore;
    if (get32(data) != kRequestMagic) {
        error = "bad request magic";
        return Decode::Bad;
    }
    const std::uint32_t body = get32(data + 4);
    if (body < kRequestFixedBytes || body > kMaxRequestBody) {
        error = "request body length " + std::to_string(body) +
                " out of range";
        return Decode::Bad;
    }
    if (len < 8 + static_cast<std::size_t>(body))
        return Decode::NeedMore;
    const std::uint8_t* p = data + 8;
    const std::uint8_t op = p[0];
    if (op < static_cast<std::uint8_t>(Op::Ping) ||
        op > static_cast<std::uint8_t>(Op::Shutdown)) {
        error = "unknown op " + std::to_string(op);
        return Decode::Bad;
    }
    const std::uint8_t flags = p[1];
    if (flags & ~(kFlagSalvage | kFlagWindowed)) {
        error = "unknown request flags";
        return Decode::Bad;
    }
    const std::uint16_t name_len = get16(p + 24);
    if (name_len != body - kRequestFixedBytes) {
        error = "name length does not match body length";
        return Decode::Bad;
    }
    out.op = static_cast<Op>(op);
    out.salvage = (flags & kFlagSalvage) != 0;
    out.windowed = (flags & kFlagWindowed) != 0;
    out.buckets = get16(p + 2);
    out.deadline_ms = get32(p + 4);
    out.from = get64(p + 8);
    out.to = get64(p + 16);
    out.name.assign(reinterpret_cast<const char*>(p + kRequestFixedBytes),
                    name_len);
    consumed = 8 + body;
    return Decode::Ok;
}

std::vector<std::uint8_t>
encodeResponse(const Response& rsp)
{
    std::vector<std::uint8_t> v;
    const std::size_t payload = 9 + rsp.warning.size() + rsp.body.size();
    v.reserve(8 + payload);
    put32(v, kResponseMagic);
    put32(v, static_cast<std::uint32_t>(payload));
    put8(v, static_cast<std::uint8_t>(rsp.status));
    put32(v, static_cast<std::uint32_t>(rsp.warning.size()));
    v.insert(v.end(), rsp.warning.begin(), rsp.warning.end());
    put32(v, static_cast<std::uint32_t>(rsp.body.size()));
    v.insert(v.end(), rsp.body.begin(), rsp.body.end());
    return v;
}

Decode
decodeResponse(const std::uint8_t* data, std::size_t len, Response& out,
               std::size_t& consumed, std::string& error)
{
    consumed = 0;
    error.clear();
    if (len < 8)
        return Decode::NeedMore;
    if (get32(data) != kResponseMagic) {
        error = "bad response magic";
        return Decode::Bad;
    }
    const std::uint32_t payload = get32(data + 4);
    if (payload < 9 || payload > kMaxResponsePayload) {
        error = "response payload length " + std::to_string(payload) +
                " out of range";
        return Decode::Bad;
    }
    if (len < 8 + static_cast<std::size_t>(payload))
        return Decode::NeedMore;
    const std::uint8_t* p = data + 8;
    const std::uint8_t status = p[0];
    if (status > static_cast<std::uint8_t>(Status::ShuttingDown)) {
        error = "unknown status " + std::to_string(status);
        return Decode::Bad;
    }
    const std::uint32_t warn_len = get32(p + 1);
    if (warn_len > payload - 9) {
        error = "warning length exceeds payload";
        return Decode::Bad;
    }
    const std::uint32_t body_len = get32(p + 5 + warn_len);
    if (body_len != payload - 9 - warn_len) {
        error = "body length does not match payload";
        return Decode::Bad;
    }
    out.status = static_cast<Status>(status);
    out.warning.assign(reinterpret_cast<const char*>(p + 5), warn_len);
    out.body.assign(reinterpret_cast<const char*>(p + 9 + warn_len),
                    body_len);
    consumed = 8 + payload;
    return Decode::Ok;
}

// ---------------------------------------------------------------------------
// AdmissionQueue
// ---------------------------------------------------------------------------

AdmissionQueue::AdmissionQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity)
{
}

bool
AdmissionQueue::tryPush(std::function<void()> job)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (closed_ || q_.size() >= capacity_)
            return false;
        q_.push_back(std::move(job));
        peak_ = std::max(peak_, q_.size());
    }
    cv_.notify_one();
    return true;
}

bool
AdmissionQueue::pop(std::function<void()>& out)
{
    std::unique_lock<std::mutex> lk(mu_);
    cv_.wait(lk, [&] { return closed_ || !q_.empty(); });
    if (closed_)
        return false; // pending jobs are dropped; conn waits time out
    out = std::move(q_.front());
    q_.pop_front();
    return true;
}

void
AdmissionQueue::close()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        closed_ = true;
        q_.clear();
    }
    cv_.notify_all();
}

std::size_t
AdmissionQueue::depth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return q_.size();
}

std::size_t
AdmissionQueue::peakDepth() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return peak_;
}

// ---------------------------------------------------------------------------
// ThreadBudget
// ---------------------------------------------------------------------------

ThreadBudget::ThreadBudget(unsigned tokens) : free_(tokens == 0 ? 1 : tokens)
{
}

unsigned
ThreadBudget::acquire(unsigned want, const CancelToken* cancel)
{
    want = std::max(1u, want);
    std::unique_lock<std::mutex> lk(mu_);
    while (free_ == 0) {
        if (cancel) {
            cancel->checkpoint("ThreadBudget::acquire");
            cv_.wait_for(lk, std::chrono::milliseconds(10));
        } else {
            cv_.wait(lk);
        }
    }
    const unsigned granted = std::min(want, free_);
    free_ -= granted;
    return granted;
}

void
ThreadBudget::release(unsigned n)
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        free_ += n;
    }
    cv_.notify_all();
}

unsigned
ThreadBudget::available() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return free_;
}

// ---------------------------------------------------------------------------
// ServerStatsSnapshot
// ---------------------------------------------------------------------------

std::string
ServerStatsSnapshot::toText() const
{
    std::ostringstream os;
    os << "accepted=" << accepted << "\n"
       << "rejected_connections=" << rejected_connections << "\n"
       << "requests=" << requests << "\n"
       << "shed=" << shed << "\n"
       << "timeouts=" << timeouts << "\n"
       << "bad_requests=" << bad_requests << "\n"
       << "not_found=" << not_found << "\n"
       << "errors=" << errors << "\n"
       << "salvaged=" << salvaged << "\n"
       << "revalidated=" << revalidated << "\n"
       << "completed=" << completed << "\n"
       << "faults_injected=" << faults_injected << "\n"
       << "queue_depth=" << queue_depth << "\n"
       << "queue_peak=" << queue_peak << "\n"
       << "in_flight=" << in_flight << "\n";
    return os.str();
}

// ---------------------------------------------------------------------------
// Server
// ---------------------------------------------------------------------------

/** One accepted connection. The fd is owned by the Conn and closed by
 *  the destructor, never by a raw close() — a worker may still hold a
 *  shared_ptr while writing a late response, and closing under it
 *  would let the kernel recycle the fd mid-write. */
struct Server::Conn
{
    int fd = -1;
    std::thread thread;
    std::atomic<bool> finished{false};

    /** One outstanding request per connection: the conn thread parks
     *  here while a worker executes and writes the response. */
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;

    /** Serializes writes (worker response vs conn-thread error reply). */
    std::mutex write_mu;

    ~Conn()
    {
        if (fd >= 0)
            ::close(fd);
    }
};

Server::Server(ServerConfig cfg)
    : cfg_(std::move(cfg)),
      queue_(cfg_.queue_depth),
      budget_(cfg_.thread_budget != 0
                  ? cfg_.thread_budget
                  : std::max(1u, std::thread::hardware_concurrency())),
      cache_(cfg_.cache_bytes),
      injector_(cfg_.faults)
{
    if (cfg_.workers == 0)
        cfg_.workers = 1;
    if (cfg_.per_query_threads == 0)
        cfg_.per_query_threads = 1;
    if (cfg_.default_deadline_ms == 0)
        cfg_.default_deadline_ms = 10'000;
    if (cfg_.max_deadline_ms < cfg_.default_deadline_ms)
        cfg_.max_deadline_ms = cfg_.default_deadline_ms;
}

Server::~Server()
{
    stop();
}

void
Server::registerTrace(const std::string& name, const std::string& path)
{
    std::lock_guard<std::mutex> lk(corpus_mu_);
    corpus_[name] = Registered{path, std::string()};
}

bool
Server::fireFault(sim::FaultSite site)
{
    if (!injector_.enabled())
        return false;
    // The injector is single-threaded by contract; the serving path
    // serializes every draw behind this mutex (draw ORDER across
    // concurrent requests follows the arrival interleaving, but the
    // set of firing draw indices is fixed by the seed).
    std::lock_guard<std::mutex> lk(fault_mu_);
    return injector_.fire(site, 0);
}

void
Server::start()
{
    if (running_)
        throw std::runtime_error("serve: already running");
    if (cfg_.socket_path.empty())
        throw std::runtime_error("serve: no socket path configured");

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (cfg_.socket_path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("serve: socket path too long: " +
                                 cfg_.socket_path);
    std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);

    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        throw std::runtime_error("serve: socket(): " +
                                 std::string(std::strerror(errno)));
    ::unlink(cfg_.socket_path.c_str());
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd_, 64) != 0) {
        const std::string err = std::strerror(errno);
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("serve: cannot bind " + cfg_.socket_path +
                                 ": " + err);
    }

    stopping_ = false;
    shutdown_requested_ = false;
    running_ = true;
    for (unsigned i = 0; i < cfg_.workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    accept_thread_ = std::thread([this] { acceptLoop(); });
}

void
Server::stop()
{
    if (!running_)
        return;
    stopping_ = true;
    queue_.close();

    // Unblock accept() with shutdown() only; the close (and the write
    // to listen_fd_) waits until the acceptor has joined, so the
    // accept loop never polls a concurrently-closed or reused fd.
    if (listen_fd_ >= 0)
        ::shutdown(listen_fd_, SHUT_RDWR);
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }

    // Unblock every connection read.
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        for (const auto& c : conns_)
            if (c->fd >= 0)
                ::shutdown(c->fd, SHUT_RDWR);
    }

    for (std::thread& w : workers_)
        if (w.joinable())
            w.join();
    workers_.clear();

    reapConnections(/*join_all=*/true);

    ::unlink(cfg_.socket_path.c_str());
    running_ = false;
}

void
Server::requestShutdown()
{
    shutdown_requested_ = true;
    shutdown_cv_.notify_all();
}

bool
Server::shutdownRequested() const
{
    return shutdown_requested_;
}

void
Server::waitShutdownRequested()
{
    std::unique_lock<std::mutex> lk(shutdown_mu_);
    while (!shutdown_requested_)
        shutdown_cv_.wait_for(lk, std::chrono::milliseconds(200));
}

ServerStatsSnapshot
Server::stats() const
{
    ServerStatsSnapshot s;
    s.accepted = accepted_;
    s.rejected_connections = rejected_connections_;
    s.requests = requests_;
    s.shed = shed_;
    s.timeouts = timeouts_;
    s.bad_requests = bad_requests_;
    s.not_found = not_found_;
    s.errors = errors_;
    s.salvaged = salvaged_;
    s.revalidated = revalidated_;
    s.completed = completed_;
    s.queue_depth = queue_.depth();
    s.queue_peak = queue_.peakDepth();
    s.in_flight = in_flight_;
    {
        std::lock_guard<std::mutex> lk(fault_mu_);
        const sim::FaultStats& fs = injector_.stats();
        for (std::uint64_t n : fs.injected)
            s.faults_injected += n;
    }
    return s;
}

void
Server::reapConnections(bool join_all)
{
    std::vector<std::shared_ptr<Conn>> dead;
    {
        std::lock_guard<std::mutex> lk(conns_mu_);
        auto it = conns_.begin();
        while (it != conns_.end()) {
            if (join_all || (*it)->finished) {
                dead.push_back(*it);
                it = conns_.erase(it);
            } else {
                ++it;
            }
        }
    }
    for (const auto& c : dead)
        if (c->thread.joinable())
            c->thread.join();
}

void
Server::acceptLoop()
{
    while (!stopping_) {
        pollfd pfd{listen_fd_, POLLIN, 0};
        const int pr = ::poll(&pfd, 1, 200);
        reapConnections(/*join_all=*/false);
        if (pr <= 0)
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        if (stopping_) {
            ::close(fd);
            break;
        }
        if (fireFault(sim::FaultSite::ServeAccept))
            std::this_thread::sleep_for(std::chrono::microseconds(
                cfg_.faults.serve_accept_delay_us));

        std::size_t active;
        {
            std::lock_guard<std::mutex> lk(conns_mu_);
            active = conns_.size();
        }
        if (active >= cfg_.max_connections) {
            // Shed the whole connection with a typed response: the
            // client backs off exactly as it does for a shed request.
            const auto frame = encodeResponse(
                Response{Status::RetryAfter, "",
                         "server at connection limit; retry with backoff"});
            sendAll(fd, frame.data(), frame.size());
            ::close(fd);
            rejected_connections_ += 1;
            continue;
        }

        auto c = std::make_shared<Conn>();
        c->fd = fd;
        {
            std::lock_guard<std::mutex> lk(conns_mu_);
            conns_.push_back(c);
        }
        accepted_ += 1;
        c->thread = std::thread([this, c] { connLoop(c); });
    }
}

void
Server::writeResponse(const std::shared_ptr<Conn>& c, const Response& r)
{
    const std::vector<std::uint8_t> frame = encodeResponse(r);
    std::lock_guard<std::mutex> lk(c->write_mu);
    if (fireFault(sim::FaultSite::ServeWrite)) {
        // Torn write: dribble the frame out in small chunks with a
        // delay between them. The client must reassemble.
        const std::size_t chunk =
            std::max<std::size_t>(1, frame.size() / 8);
        std::size_t off = 0;
        while (off < frame.size()) {
            const std::size_t n = std::min(chunk, frame.size() - off);
            if (!sendAll(c->fd, frame.data() + off, n))
                return; // peer is gone; nothing to clean up
            off += n;
            std::this_thread::sleep_for(std::chrono::microseconds(
                cfg_.faults.serve_write_delay_us));
        }
        return;
    }
    sendAll(c->fd, frame.data(), frame.size());
}

void
Server::connLoop(std::shared_ptr<Conn> c)
{
    std::vector<std::uint8_t> buf;
    bool chop = false;       // torn-read injection for the current frame
    bool drawn = false;      // one ServeRead draw per frame
    while (!stopping_) {
        Request req;
        std::size_t consumed = 0;
        std::string err;
        const Decode d =
            decodeRequest(buf.data(), buf.size(), req, consumed, err);
        if (d == Decode::Ok) {
            buf.erase(buf.begin(),
                      buf.begin() + static_cast<std::ptrdiff_t>(consumed));
            drawn = false;
            chop = false;
            handleRequest(c, std::move(req));
            continue;
        }
        if (d == Decode::Bad) {
            // A poisoned stream costs the connection, never the
            // daemon: reply with the parse error and hang up.
            bad_requests_ += 1;
            writeResponse(c, Response{Status::BadRequest, "",
                                      "bad request: " + err});
            break;
        }
        // NeedMore: pull bytes off the socket.
        if (!drawn) {
            drawn = true;
            chop = fireFault(sim::FaultSite::ServeRead);
        }
        std::uint8_t tmp[4096];
        const std::size_t cap = chop ? 1 : sizeof(tmp);
        const ssize_t k = recvSome(c->fd, tmp, cap, stopping_);
        if (k <= 0)
            break; // EOF, error, or server stop
        buf.insert(buf.end(), tmp, tmp + k);
        if (chop)
            std::this_thread::sleep_for(std::chrono::microseconds(
                cfg_.faults.serve_read_delay_us));
    }
    ::shutdown(c->fd, SHUT_RDWR); // fd itself closes with the Conn
    c->finished = true;
}

void
Server::handleRequest(const std::shared_ptr<Conn>& c, Request req)
{
    requests_ += 1;
    if (stopping_) {
        writeResponse(c, Response{Status::ShuttingDown, "",
                                  "server is shutting down"});
        return;
    }
    {
        std::lock_guard<std::mutex> lk(c->mu);
        c->done = false;
    }
    auto job = [this, c, r = std::move(req)] {
        in_flight_ += 1;
        Response rsp = execute(r);
        in_flight_ -= 1;
        writeResponse(c, rsp);
        {
            std::lock_guard<std::mutex> lk(c->mu);
            c->done = true;
        }
        c->cv.notify_all();
    };
    if (!queue_.tryPush(std::move(job))) {
        // Admission control: full queue sheds immediately with a typed
        // status instead of building unbounded backlog.
        shed_ += 1;
        writeResponse(c, Response{stopping_ ? Status::ShuttingDown
                                            : Status::RetryAfter,
                                  "",
                                  "request queue full; retry with backoff"});
        return;
    }
    // Park until the worker answers (one outstanding request per
    // connection keeps responses from interleaving). On server stop
    // the queued job may be dropped — the stop flag breaks the wait.
    std::unique_lock<std::mutex> lk(c->mu);
    while (!c->done && !stopping_)
        c->cv.wait_for(lk, std::chrono::milliseconds(100));
}

void
Server::workerLoop()
{
    std::function<void()> job;
    while (queue_.pop(job)) {
        job();
        job = nullptr; // release the Conn ref before blocking again
    }
}

std::string
Server::runQuery(const Request& req, const std::string& path,
                 unsigned threads, const CancelToken* cancel, bool salvage,
                 std::string& warn)
{
    const auto salvageWarn = [&warn](const trace::ReadReport& rep) {
        // Mirror the CLI's stderr lines byte for byte, so a served
        // salvage warning equals `ta --salvage`'s diagnostics.
        if (!rep.salvaged)
            return;
        warn += "ta: " + rep.summary() + "\n";
        for (const std::string& note : rep.notes)
            warn += "ta:   " + note + "\n";
    };
    const auto loadAnalysis = [&]() -> Analysis {
        ParallelOptions popt;
        popt.threads = threads;
        popt.cancel = cancel;
        if (!salvage)
            return analyzeFileParallel(path, popt);
        trace::ReadReport rep;
        Analysis a = analyzeFileSalvageParallel(path, rep, popt);
        salvageWarn(rep);
        return a;
    };

    std::ostringstream os;
    switch (req.op) {
        case Op::Window: {
            QueryOptions qopt;
            qopt.threads = threads;
            qopt.salvage = salvage;
            qopt.cache = &cache_;
            qopt.cancel = cancel;
            trace::ReadReport rep;
            qopt.salvage_report = &rep;
            const WindowResult w =
                queryWindowFile(path, req.from, req.to, qopt);
            salvageWarn(rep);
            return windowReport(w);
        }
        case Op::Profile: {
            const std::uint32_t buckets = req.buckets ? req.buckets : 60;
            if (req.windowed) {
                QueryOptions qopt;
                qopt.threads = threads;
                qopt.salvage = salvage;
                qopt.cache = &cache_;
                qopt.cancel = cancel;
                trace::ReadReport rep;
                qopt.salvage_report = &rep;
                const WindowResult w =
                    queryWindowFile(path, req.from, req.to, qopt);
                salvageWarn(rep);
                printActivity(os, windowAnalysis(w), buckets);
            } else {
                printActivity(os, loadAnalysis(), buckets);
            }
            return os.str();
        }
        case Op::Loss:
            printLossReport(os, loadAnalysis());
            return os.str();
        case Op::Stats:
            printSummary(os, loadAnalysis());
            return os.str();
        default:
            throw std::runtime_error("serve: not a query op");
    }
}

Response
Server::execute(const Request& req)
{
    // Ops that never touch a trace.
    switch (req.op) {
        case Op::Ping:
            completed_ += 1;
            return Response{Status::Ok, "", "pong\n"};
        case Op::ServerStats:
            completed_ += 1;
            return Response{Status::Ok, "", stats().toText()};
        case Op::Shutdown:
            completed_ += 1;
            requestShutdown();
            return Response{Status::Ok, "", "shutting down\n"};
        default:
            break;
    }

    std::string path;
    {
        std::lock_guard<std::mutex> lk(corpus_mu_);
        const auto it = corpus_.find(req.name);
        if (it == corpus_.end()) {
            not_found_ += 1;
            return Response{Status::NotFound, "",
                            "unknown trace: " + req.name};
        }
        path = it->second.path;
    }

    // Deadline: client value clamped to the server ceiling; zero means
    // the server default. Bound to the stop flag so stop() cancels
    // in-flight queries too.
    CancelToken token;
    token.bindStopFlag(&stopping_);
    const std::uint32_t deadline_ms =
        std::min(req.deadline_ms != 0 ? req.deadline_ms
                                      : cfg_.default_deadline_ms,
                 cfg_.max_deadline_ms);
    token.setDeadlineAfter(std::chrono::milliseconds(deadline_ms));

    if (fireFault(sim::FaultSite::ServeCachePressure))
        cache_.clear(); // thrash injection: every block refetches

    std::string warn;

    // Revalidate the registered file's identity. The BlockCache key
    // already carries the fingerprint (stale blocks are impossible);
    // this surfaces the change to the client as a note.
    try {
        const std::string id = BlockCache::fileId(path);
        std::lock_guard<std::mutex> lk(corpus_mu_);
        auto it = corpus_.find(req.name);
        if (it != corpus_.end()) {
            if (!it->second.file_id.empty() && it->second.file_id != id) {
                revalidated_ += 1;
                warn += "note: trace file changed on disk; cache "
                        "identity revalidated\n";
            }
            it->second.file_id = id;
        }
    } catch (const std::exception&) {
        // Unreadable file: fall through, the query will diagnose it.
    }

    unsigned granted = 0;
    try {
        granted = budget_.acquire(
            std::min(cfg_.per_query_threads,
                     std::max(1u, std::thread::hardware_concurrency())),
            &token);
        struct Release
        {
            ThreadBudget& b;
            unsigned n;
            ~Release() { b.release(n); }
        } release{budget_, granted};

        std::string body;
        try {
            body = runQuery(req, path, granted, &token, req.salvage, warn);
        } catch (const DeadlineExceeded&) {
            throw;
        } catch (const std::exception& e) {
            if (req.salvage) {
                errors_ += 1;
                return Response{Status::Error, warn, e.what()};
            }
            // Graceful degradation: a trace that fails strict reading
            // is answered from a salvage analysis with an explicit
            // loss warning instead of an error.
            std::string salvage_warn;
            try {
                body = runQuery(req, path, granted, &token, true,
                                salvage_warn);
            } catch (const DeadlineExceeded&) {
                throw;
            } catch (const std::exception& e2) {
                errors_ += 1;
                return Response{Status::Error, warn,
                                std::string("strict: ") + e.what() +
                                    "; salvage: " + e2.what()};
            }
            salvaged_ += 1;
            warn += "warning: strict read failed (" +
                    std::string(e.what()) +
                    "); degraded to salvage analysis\n";
            warn += salvage_warn;
        }
        completed_ += 1;
        return Response{Status::Ok, warn, body};
    } catch (const DeadlineExceeded& e) {
        timeouts_ += 1;
        return Response{stopping_ ? Status::ShuttingDown : Status::Timeout,
                        warn,
                        std::string(e.what()) + " (deadline " +
                            std::to_string(deadline_ms) + " ms)"};
    } catch (const std::exception& e) {
        errors_ += 1;
        return Response{Status::Error, warn, e.what()};
    }
}

// ---------------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------------

Client::Client(std::string socket_path, ClientOptions opt)
    : path_(std::move(socket_path)), opt_(opt)
{
    if (opt_.max_attempts == 0)
        opt_.max_attempts = 1;
    if (opt_.base_backoff_ms == 0)
        opt_.base_backoff_ms = 1;
    if (opt_.max_backoff_ms < opt_.base_backoff_ms)
        opt_.max_backoff_ms = opt_.base_backoff_ms;
}

Client::~Client()
{
    closeFd();
}

void
Client::closeFd()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
Client::ensureConnected()
{
    if (fd_ >= 0)
        return;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path_.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("client: socket path too long: " + path_);
    std::strncpy(addr.sun_path, path_.c_str(), sizeof(addr.sun_path) - 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("client: socket(): " +
                                 std::string(std::strerror(errno)));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
        const std::string err = std::strerror(errno);
        ::close(fd);
        throw std::runtime_error("client: cannot connect to " + path_ +
                                 ": " + err);
    }
    fd_ = fd;
}

Response
Client::call(const Request& req)
{
    ensureConnected();
    const std::vector<std::uint8_t> frame = encodeRequest(req);
    if (!sendAll(fd_, frame.data(), frame.size())) {
        closeFd();
        throw std::runtime_error("client: send failed: " +
                                 std::string(std::strerror(errno)));
    }
    std::vector<std::uint8_t> buf;
    for (;;) {
        Response rsp;
        std::size_t consumed = 0;
        std::string err;
        const Decode d =
            decodeResponse(buf.data(), buf.size(), rsp, consumed, err);
        if (d == Decode::Ok)
            return rsp;
        if (d == Decode::Bad) {
            closeFd();
            throw std::runtime_error("client: bad response frame: " + err);
        }
        std::uint8_t tmp[65536];
        ssize_t k;
        do {
            k = ::recv(fd_, tmp, sizeof(tmp), 0);
        } while (k < 0 && errno == EINTR);
        if (k <= 0) {
            closeFd();
            throw std::runtime_error(
                "client: connection closed mid-response");
        }
        buf.insert(buf.end(), tmp, tmp + k);
    }
}

Response
Client::callWithRetry(const Request& req)
{
    std::uint64_t rng = opt_.backoff_seed;
    Response last;
    bool have_last = false;
    for (unsigned attempt = 0; attempt < opt_.max_attempts; ++attempt) {
        if (attempt > 0) {
            // Jittered exponential backoff: [b/2, b] where b doubles
            // per attempt up to the cap. Deterministic per seed, so
            // tests replay the same schedule.
            std::uint64_t b = opt_.base_backoff_ms;
            for (unsigned i = 1; i < attempt; ++i) {
                b *= 2;
                if (b >= opt_.max_backoff_ms)
                    break;
            }
            b = std::min<std::uint64_t>(b, opt_.max_backoff_ms);
            const std::uint64_t half = std::max<std::uint64_t>(1, b / 2);
            const std::uint64_t wait =
                half + splitmix64(rng) % (b - half + 1);
            std::this_thread::sleep_for(std::chrono::milliseconds(wait));
        }
        try {
            last = call(req);
            have_last = true;
        } catch (const std::exception&) {
            if (attempt + 1 == opt_.max_attempts)
                throw;
            closeFd();
            continue; // transport failure: reconnect and retry
        }
        if (last.status != Status::RetryAfter &&
            last.status != Status::Timeout)
            return last;
    }
    if (!have_last)
        throw std::runtime_error("client: no response after retries");
    return last; // exhausted: hand back the typed shed/timeout
}

} // namespace cell::ta::serve
